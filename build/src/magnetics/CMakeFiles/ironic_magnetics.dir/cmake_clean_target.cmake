file(REMOVE_RECURSE
  "libironic_magnetics.a"
)
