
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/magnetics/coil.cpp" "src/magnetics/CMakeFiles/ironic_magnetics.dir/coil.cpp.o" "gcc" "src/magnetics/CMakeFiles/ironic_magnetics.dir/coil.cpp.o.d"
  "/root/repo/src/magnetics/coil_design.cpp" "src/magnetics/CMakeFiles/ironic_magnetics.dir/coil_design.cpp.o" "gcc" "src/magnetics/CMakeFiles/ironic_magnetics.dir/coil_design.cpp.o.d"
  "/root/repo/src/magnetics/coupling.cpp" "src/magnetics/CMakeFiles/ironic_magnetics.dir/coupling.cpp.o" "gcc" "src/magnetics/CMakeFiles/ironic_magnetics.dir/coupling.cpp.o.d"
  "/root/repo/src/magnetics/elliptic.cpp" "src/magnetics/CMakeFiles/ironic_magnetics.dir/elliptic.cpp.o" "gcc" "src/magnetics/CMakeFiles/ironic_magnetics.dir/elliptic.cpp.o.d"
  "/root/repo/src/magnetics/link.cpp" "src/magnetics/CMakeFiles/ironic_magnetics.dir/link.cpp.o" "gcc" "src/magnetics/CMakeFiles/ironic_magnetics.dir/link.cpp.o.d"
  "/root/repo/src/magnetics/optimize.cpp" "src/magnetics/CMakeFiles/ironic_magnetics.dir/optimize.cpp.o" "gcc" "src/magnetics/CMakeFiles/ironic_magnetics.dir/optimize.cpp.o.d"
  "/root/repo/src/magnetics/polygon.cpp" "src/magnetics/CMakeFiles/ironic_magnetics.dir/polygon.cpp.o" "gcc" "src/magnetics/CMakeFiles/ironic_magnetics.dir/polygon.cpp.o.d"
  "/root/repo/src/magnetics/tissue.cpp" "src/magnetics/CMakeFiles/ironic_magnetics.dir/tissue.cpp.o" "gcc" "src/magnetics/CMakeFiles/ironic_magnetics.dir/tissue.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ironic_util.dir/DependInfo.cmake"
  "/root/repo/build/src/spice/CMakeFiles/ironic_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/ironic_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
