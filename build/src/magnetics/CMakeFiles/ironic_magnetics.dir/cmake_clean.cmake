file(REMOVE_RECURSE
  "CMakeFiles/ironic_magnetics.dir/coil.cpp.o"
  "CMakeFiles/ironic_magnetics.dir/coil.cpp.o.d"
  "CMakeFiles/ironic_magnetics.dir/coil_design.cpp.o"
  "CMakeFiles/ironic_magnetics.dir/coil_design.cpp.o.d"
  "CMakeFiles/ironic_magnetics.dir/coupling.cpp.o"
  "CMakeFiles/ironic_magnetics.dir/coupling.cpp.o.d"
  "CMakeFiles/ironic_magnetics.dir/elliptic.cpp.o"
  "CMakeFiles/ironic_magnetics.dir/elliptic.cpp.o.d"
  "CMakeFiles/ironic_magnetics.dir/link.cpp.o"
  "CMakeFiles/ironic_magnetics.dir/link.cpp.o.d"
  "CMakeFiles/ironic_magnetics.dir/optimize.cpp.o"
  "CMakeFiles/ironic_magnetics.dir/optimize.cpp.o.d"
  "CMakeFiles/ironic_magnetics.dir/polygon.cpp.o"
  "CMakeFiles/ironic_magnetics.dir/polygon.cpp.o.d"
  "CMakeFiles/ironic_magnetics.dir/tissue.cpp.o"
  "CMakeFiles/ironic_magnetics.dir/tissue.cpp.o.d"
  "libironic_magnetics.a"
  "libironic_magnetics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ironic_magnetics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
