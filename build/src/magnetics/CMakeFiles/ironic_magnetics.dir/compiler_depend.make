# Empty compiler generated dependencies file for ironic_magnetics.
# This may be replaced when dependencies are built.
