file(REMOVE_RECURSE
  "libironic_rf.a"
)
