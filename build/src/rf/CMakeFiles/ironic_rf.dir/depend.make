# Empty dependencies file for ironic_rf.
# This may be replaced when dependencies are built.
