file(REMOVE_RECURSE
  "CMakeFiles/ironic_rf.dir/classe.cpp.o"
  "CMakeFiles/ironic_rf.dir/classe.cpp.o.d"
  "CMakeFiles/ironic_rf.dir/matching.cpp.o"
  "CMakeFiles/ironic_rf.dir/matching.cpp.o.d"
  "libironic_rf.a"
  "libironic_rf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ironic_rf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
