
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spice/ac.cpp" "src/spice/CMakeFiles/ironic_spice.dir/ac.cpp.o" "gcc" "src/spice/CMakeFiles/ironic_spice.dir/ac.cpp.o.d"
  "/root/repo/src/spice/circuit.cpp" "src/spice/CMakeFiles/ironic_spice.dir/circuit.cpp.o" "gcc" "src/spice/CMakeFiles/ironic_spice.dir/circuit.cpp.o.d"
  "/root/repo/src/spice/devices_nonlinear.cpp" "src/spice/CMakeFiles/ironic_spice.dir/devices_nonlinear.cpp.o" "gcc" "src/spice/CMakeFiles/ironic_spice.dir/devices_nonlinear.cpp.o.d"
  "/root/repo/src/spice/devices_passive.cpp" "src/spice/CMakeFiles/ironic_spice.dir/devices_passive.cpp.o" "gcc" "src/spice/CMakeFiles/ironic_spice.dir/devices_passive.cpp.o.d"
  "/root/repo/src/spice/devices_sources.cpp" "src/spice/CMakeFiles/ironic_spice.dir/devices_sources.cpp.o" "gcc" "src/spice/CMakeFiles/ironic_spice.dir/devices_sources.cpp.o.d"
  "/root/repo/src/spice/engine.cpp" "src/spice/CMakeFiles/ironic_spice.dir/engine.cpp.o" "gcc" "src/spice/CMakeFiles/ironic_spice.dir/engine.cpp.o.d"
  "/root/repo/src/spice/netlist_parser.cpp" "src/spice/CMakeFiles/ironic_spice.dir/netlist_parser.cpp.o" "gcc" "src/spice/CMakeFiles/ironic_spice.dir/netlist_parser.cpp.o.d"
  "/root/repo/src/spice/trace.cpp" "src/spice/CMakeFiles/ironic_spice.dir/trace.cpp.o" "gcc" "src/spice/CMakeFiles/ironic_spice.dir/trace.cpp.o.d"
  "/root/repo/src/spice/waveform.cpp" "src/spice/CMakeFiles/ironic_spice.dir/waveform.cpp.o" "gcc" "src/spice/CMakeFiles/ironic_spice.dir/waveform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/ironic_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ironic_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
