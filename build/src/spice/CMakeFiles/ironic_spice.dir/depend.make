# Empty dependencies file for ironic_spice.
# This may be replaced when dependencies are built.
