file(REMOVE_RECURSE
  "libironic_spice.a"
)
