file(REMOVE_RECURSE
  "CMakeFiles/ironic_spice.dir/ac.cpp.o"
  "CMakeFiles/ironic_spice.dir/ac.cpp.o.d"
  "CMakeFiles/ironic_spice.dir/circuit.cpp.o"
  "CMakeFiles/ironic_spice.dir/circuit.cpp.o.d"
  "CMakeFiles/ironic_spice.dir/devices_nonlinear.cpp.o"
  "CMakeFiles/ironic_spice.dir/devices_nonlinear.cpp.o.d"
  "CMakeFiles/ironic_spice.dir/devices_passive.cpp.o"
  "CMakeFiles/ironic_spice.dir/devices_passive.cpp.o.d"
  "CMakeFiles/ironic_spice.dir/devices_sources.cpp.o"
  "CMakeFiles/ironic_spice.dir/devices_sources.cpp.o.d"
  "CMakeFiles/ironic_spice.dir/engine.cpp.o"
  "CMakeFiles/ironic_spice.dir/engine.cpp.o.d"
  "CMakeFiles/ironic_spice.dir/netlist_parser.cpp.o"
  "CMakeFiles/ironic_spice.dir/netlist_parser.cpp.o.d"
  "CMakeFiles/ironic_spice.dir/trace.cpp.o"
  "CMakeFiles/ironic_spice.dir/trace.cpp.o.d"
  "CMakeFiles/ironic_spice.dir/waveform.cpp.o"
  "CMakeFiles/ironic_spice.dir/waveform.cpp.o.d"
  "libironic_spice.a"
  "libironic_spice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ironic_spice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
