file(REMOVE_RECURSE
  "libironic_util.a"
)
