file(REMOVE_RECURSE
  "CMakeFiles/ironic_util.dir/interp.cpp.o"
  "CMakeFiles/ironic_util.dir/interp.cpp.o.d"
  "CMakeFiles/ironic_util.dir/log.cpp.o"
  "CMakeFiles/ironic_util.dir/log.cpp.o.d"
  "CMakeFiles/ironic_util.dir/rng.cpp.o"
  "CMakeFiles/ironic_util.dir/rng.cpp.o.d"
  "CMakeFiles/ironic_util.dir/stats.cpp.o"
  "CMakeFiles/ironic_util.dir/stats.cpp.o.d"
  "CMakeFiles/ironic_util.dir/table.cpp.o"
  "CMakeFiles/ironic_util.dir/table.cpp.o.d"
  "libironic_util.a"
  "libironic_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ironic_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
