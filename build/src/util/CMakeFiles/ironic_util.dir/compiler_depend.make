# Empty compiler generated dependencies file for ironic_util.
# This may be replaced when dependencies are built.
