# Empty compiler generated dependencies file for ironic_core.
# This may be replaced when dependencies are built.
