file(REMOVE_RECURSE
  "CMakeFiles/ironic_core.dir/budget.cpp.o"
  "CMakeFiles/ironic_core.dir/budget.cpp.o.d"
  "CMakeFiles/ironic_core.dir/system.cpp.o"
  "CMakeFiles/ironic_core.dir/system.cpp.o.d"
  "CMakeFiles/ironic_core.dir/tolerance.cpp.o"
  "CMakeFiles/ironic_core.dir/tolerance.cpp.o.d"
  "libironic_core.a"
  "libironic_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ironic_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
