file(REMOVE_RECURSE
  "libironic_core.a"
)
