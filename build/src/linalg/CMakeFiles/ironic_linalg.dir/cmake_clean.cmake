file(REMOVE_RECURSE
  "CMakeFiles/ironic_linalg.dir/complex_matrix.cpp.o"
  "CMakeFiles/ironic_linalg.dir/complex_matrix.cpp.o.d"
  "CMakeFiles/ironic_linalg.dir/lu.cpp.o"
  "CMakeFiles/ironic_linalg.dir/lu.cpp.o.d"
  "CMakeFiles/ironic_linalg.dir/matrix.cpp.o"
  "CMakeFiles/ironic_linalg.dir/matrix.cpp.o.d"
  "libironic_linalg.a"
  "libironic_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ironic_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
