# Empty dependencies file for ironic_linalg.
# This may be replaced when dependencies are built.
