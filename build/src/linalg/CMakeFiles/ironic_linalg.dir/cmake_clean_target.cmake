file(REMOVE_RECURSE
  "libironic_linalg.a"
)
