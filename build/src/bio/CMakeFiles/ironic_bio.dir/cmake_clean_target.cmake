file(REMOVE_RECURSE
  "libironic_bio.a"
)
