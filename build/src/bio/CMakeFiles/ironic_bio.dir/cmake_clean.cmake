file(REMOVE_RECURSE
  "CMakeFiles/ironic_bio.dir/adc.cpp.o"
  "CMakeFiles/ironic_bio.dir/adc.cpp.o.d"
  "CMakeFiles/ironic_bio.dir/cell.cpp.o"
  "CMakeFiles/ironic_bio.dir/cell.cpp.o.d"
  "CMakeFiles/ironic_bio.dir/drift.cpp.o"
  "CMakeFiles/ironic_bio.dir/drift.cpp.o.d"
  "CMakeFiles/ironic_bio.dir/interface.cpp.o"
  "CMakeFiles/ironic_bio.dir/interface.cpp.o.d"
  "CMakeFiles/ironic_bio.dir/potentiostat.cpp.o"
  "CMakeFiles/ironic_bio.dir/potentiostat.cpp.o.d"
  "libironic_bio.a"
  "libironic_bio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ironic_bio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
