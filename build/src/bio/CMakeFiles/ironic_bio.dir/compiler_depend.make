# Empty compiler generated dependencies file for ironic_bio.
# This may be replaced when dependencies are built.
