# Empty compiler generated dependencies file for ironic_comms.
# This may be replaced when dependencies are built.
