file(REMOVE_RECURSE
  "CMakeFiles/ironic_comms.dir/ask.cpp.o"
  "CMakeFiles/ironic_comms.dir/ask.cpp.o.d"
  "CMakeFiles/ironic_comms.dir/bitstream.cpp.o"
  "CMakeFiles/ironic_comms.dir/bitstream.cpp.o.d"
  "CMakeFiles/ironic_comms.dir/interleave.cpp.o"
  "CMakeFiles/ironic_comms.dir/interleave.cpp.o.d"
  "CMakeFiles/ironic_comms.dir/line_code.cpp.o"
  "CMakeFiles/ironic_comms.dir/line_code.cpp.o.d"
  "CMakeFiles/ironic_comms.dir/lsk.cpp.o"
  "CMakeFiles/ironic_comms.dir/lsk.cpp.o.d"
  "CMakeFiles/ironic_comms.dir/protocol.cpp.o"
  "CMakeFiles/ironic_comms.dir/protocol.cpp.o.d"
  "libironic_comms.a"
  "libironic_comms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ironic_comms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
