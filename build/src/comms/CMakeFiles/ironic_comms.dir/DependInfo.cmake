
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/comms/ask.cpp" "src/comms/CMakeFiles/ironic_comms.dir/ask.cpp.o" "gcc" "src/comms/CMakeFiles/ironic_comms.dir/ask.cpp.o.d"
  "/root/repo/src/comms/bitstream.cpp" "src/comms/CMakeFiles/ironic_comms.dir/bitstream.cpp.o" "gcc" "src/comms/CMakeFiles/ironic_comms.dir/bitstream.cpp.o.d"
  "/root/repo/src/comms/interleave.cpp" "src/comms/CMakeFiles/ironic_comms.dir/interleave.cpp.o" "gcc" "src/comms/CMakeFiles/ironic_comms.dir/interleave.cpp.o.d"
  "/root/repo/src/comms/line_code.cpp" "src/comms/CMakeFiles/ironic_comms.dir/line_code.cpp.o" "gcc" "src/comms/CMakeFiles/ironic_comms.dir/line_code.cpp.o.d"
  "/root/repo/src/comms/lsk.cpp" "src/comms/CMakeFiles/ironic_comms.dir/lsk.cpp.o" "gcc" "src/comms/CMakeFiles/ironic_comms.dir/lsk.cpp.o.d"
  "/root/repo/src/comms/protocol.cpp" "src/comms/CMakeFiles/ironic_comms.dir/protocol.cpp.o" "gcc" "src/comms/CMakeFiles/ironic_comms.dir/protocol.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/spice/CMakeFiles/ironic_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ironic_util.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/ironic_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
