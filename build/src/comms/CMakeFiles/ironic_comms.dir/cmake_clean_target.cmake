file(REMOVE_RECURSE
  "libironic_comms.a"
)
