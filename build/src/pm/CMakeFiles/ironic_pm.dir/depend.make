# Empty dependencies file for ironic_pm.
# This may be replaced when dependencies are built.
