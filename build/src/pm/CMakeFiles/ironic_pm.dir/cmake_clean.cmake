file(REMOVE_RECURSE
  "CMakeFiles/ironic_pm.dir/bandgap.cpp.o"
  "CMakeFiles/ironic_pm.dir/bandgap.cpp.o.d"
  "CMakeFiles/ironic_pm.dir/demodulator.cpp.o"
  "CMakeFiles/ironic_pm.dir/demodulator.cpp.o.d"
  "CMakeFiles/ironic_pm.dir/digital.cpp.o"
  "CMakeFiles/ironic_pm.dir/digital.cpp.o.d"
  "CMakeFiles/ironic_pm.dir/load.cpp.o"
  "CMakeFiles/ironic_pm.dir/load.cpp.o.d"
  "CMakeFiles/ironic_pm.dir/por.cpp.o"
  "CMakeFiles/ironic_pm.dir/por.cpp.o.d"
  "CMakeFiles/ironic_pm.dir/rectifier.cpp.o"
  "CMakeFiles/ironic_pm.dir/rectifier.cpp.o.d"
  "CMakeFiles/ironic_pm.dir/regulator.cpp.o"
  "CMakeFiles/ironic_pm.dir/regulator.cpp.o.d"
  "libironic_pm.a"
  "libironic_pm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ironic_pm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
