
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pm/bandgap.cpp" "src/pm/CMakeFiles/ironic_pm.dir/bandgap.cpp.o" "gcc" "src/pm/CMakeFiles/ironic_pm.dir/bandgap.cpp.o.d"
  "/root/repo/src/pm/demodulator.cpp" "src/pm/CMakeFiles/ironic_pm.dir/demodulator.cpp.o" "gcc" "src/pm/CMakeFiles/ironic_pm.dir/demodulator.cpp.o.d"
  "/root/repo/src/pm/digital.cpp" "src/pm/CMakeFiles/ironic_pm.dir/digital.cpp.o" "gcc" "src/pm/CMakeFiles/ironic_pm.dir/digital.cpp.o.d"
  "/root/repo/src/pm/load.cpp" "src/pm/CMakeFiles/ironic_pm.dir/load.cpp.o" "gcc" "src/pm/CMakeFiles/ironic_pm.dir/load.cpp.o.d"
  "/root/repo/src/pm/por.cpp" "src/pm/CMakeFiles/ironic_pm.dir/por.cpp.o" "gcc" "src/pm/CMakeFiles/ironic_pm.dir/por.cpp.o.d"
  "/root/repo/src/pm/rectifier.cpp" "src/pm/CMakeFiles/ironic_pm.dir/rectifier.cpp.o" "gcc" "src/pm/CMakeFiles/ironic_pm.dir/rectifier.cpp.o.d"
  "/root/repo/src/pm/regulator.cpp" "src/pm/CMakeFiles/ironic_pm.dir/regulator.cpp.o" "gcc" "src/pm/CMakeFiles/ironic_pm.dir/regulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/spice/CMakeFiles/ironic_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/rf/CMakeFiles/ironic_rf.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ironic_util.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/ironic_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
