file(REMOVE_RECURSE
  "libironic_pm.a"
)
