file(REMOVE_RECURSE
  "libironic_patch.a"
)
