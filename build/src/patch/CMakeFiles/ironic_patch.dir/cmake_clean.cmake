file(REMOVE_RECURSE
  "CMakeFiles/ironic_patch.dir/battery.cpp.o"
  "CMakeFiles/ironic_patch.dir/battery.cpp.o.d"
  "CMakeFiles/ironic_patch.dir/controller.cpp.o"
  "CMakeFiles/ironic_patch.dir/controller.cpp.o.d"
  "CMakeFiles/ironic_patch.dir/firmware.cpp.o"
  "CMakeFiles/ironic_patch.dir/firmware.cpp.o.d"
  "CMakeFiles/ironic_patch.dir/power_model.cpp.o"
  "CMakeFiles/ironic_patch.dir/power_model.cpp.o.d"
  "CMakeFiles/ironic_patch.dir/scheduler.cpp.o"
  "CMakeFiles/ironic_patch.dir/scheduler.cpp.o.d"
  "libironic_patch.a"
  "libironic_patch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ironic_patch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
