
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/patch/battery.cpp" "src/patch/CMakeFiles/ironic_patch.dir/battery.cpp.o" "gcc" "src/patch/CMakeFiles/ironic_patch.dir/battery.cpp.o.d"
  "/root/repo/src/patch/controller.cpp" "src/patch/CMakeFiles/ironic_patch.dir/controller.cpp.o" "gcc" "src/patch/CMakeFiles/ironic_patch.dir/controller.cpp.o.d"
  "/root/repo/src/patch/firmware.cpp" "src/patch/CMakeFiles/ironic_patch.dir/firmware.cpp.o" "gcc" "src/patch/CMakeFiles/ironic_patch.dir/firmware.cpp.o.d"
  "/root/repo/src/patch/power_model.cpp" "src/patch/CMakeFiles/ironic_patch.dir/power_model.cpp.o" "gcc" "src/patch/CMakeFiles/ironic_patch.dir/power_model.cpp.o.d"
  "/root/repo/src/patch/scheduler.cpp" "src/patch/CMakeFiles/ironic_patch.dir/scheduler.cpp.o" "gcc" "src/patch/CMakeFiles/ironic_patch.dir/scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ironic_util.dir/DependInfo.cmake"
  "/root/repo/build/src/comms/CMakeFiles/ironic_comms.dir/DependInfo.cmake"
  "/root/repo/build/src/spice/CMakeFiles/ironic_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/ironic_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
