# Empty dependencies file for ironic_patch.
# This may be replaced when dependencies are built.
