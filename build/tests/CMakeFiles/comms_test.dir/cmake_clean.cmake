file(REMOVE_RECURSE
  "CMakeFiles/comms_test.dir/comms_test.cpp.o"
  "CMakeFiles/comms_test.dir/comms_test.cpp.o.d"
  "comms_test"
  "comms_test.pdb"
  "comms_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comms_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
