
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/comms_test.cpp" "tests/CMakeFiles/comms_test.dir/comms_test.cpp.o" "gcc" "tests/CMakeFiles/comms_test.dir/comms_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/comms/CMakeFiles/ironic_comms.dir/DependInfo.cmake"
  "/root/repo/build/src/spice/CMakeFiles/ironic_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/ironic_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ironic_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
