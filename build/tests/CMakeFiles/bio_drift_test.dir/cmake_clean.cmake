file(REMOVE_RECURSE
  "CMakeFiles/bio_drift_test.dir/bio_drift_test.cpp.o"
  "CMakeFiles/bio_drift_test.dir/bio_drift_test.cpp.o.d"
  "bio_drift_test"
  "bio_drift_test.pdb"
  "bio_drift_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bio_drift_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
