# Empty dependencies file for bio_drift_test.
# This may be replaced when dependencies are built.
