file(REMOVE_RECURSE
  "CMakeFiles/pm_rectifier_test.dir/pm_rectifier_test.cpp.o"
  "CMakeFiles/pm_rectifier_test.dir/pm_rectifier_test.cpp.o.d"
  "pm_rectifier_test"
  "pm_rectifier_test.pdb"
  "pm_rectifier_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pm_rectifier_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
