# Empty compiler generated dependencies file for pm_rectifier_test.
# This may be replaced when dependencies are built.
