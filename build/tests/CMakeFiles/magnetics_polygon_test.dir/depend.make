# Empty dependencies file for magnetics_polygon_test.
# This may be replaced when dependencies are built.
