file(REMOVE_RECURSE
  "CMakeFiles/magnetics_polygon_test.dir/magnetics_polygon_test.cpp.o"
  "CMakeFiles/magnetics_polygon_test.dir/magnetics_polygon_test.cpp.o.d"
  "magnetics_polygon_test"
  "magnetics_polygon_test.pdb"
  "magnetics_polygon_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/magnetics_polygon_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
