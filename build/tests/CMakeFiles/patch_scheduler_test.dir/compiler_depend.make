# Empty compiler generated dependencies file for patch_scheduler_test.
# This may be replaced when dependencies are built.
