file(REMOVE_RECURSE
  "CMakeFiles/patch_scheduler_test.dir/patch_scheduler_test.cpp.o"
  "CMakeFiles/patch_scheduler_test.dir/patch_scheduler_test.cpp.o.d"
  "patch_scheduler_test"
  "patch_scheduler_test.pdb"
  "patch_scheduler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/patch_scheduler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
