file(REMOVE_RECURSE
  "CMakeFiles/spice_subckt_test.dir/spice_subckt_test.cpp.o"
  "CMakeFiles/spice_subckt_test.dir/spice_subckt_test.cpp.o.d"
  "spice_subckt_test"
  "spice_subckt_test.pdb"
  "spice_subckt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spice_subckt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
