# Empty compiler generated dependencies file for spice_subckt_test.
# This may be replaced when dependencies are built.
