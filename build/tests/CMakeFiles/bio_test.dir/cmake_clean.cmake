file(REMOVE_RECURSE
  "CMakeFiles/bio_test.dir/bio_test.cpp.o"
  "CMakeFiles/bio_test.dir/bio_test.cpp.o.d"
  "bio_test"
  "bio_test.pdb"
  "bio_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bio_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
