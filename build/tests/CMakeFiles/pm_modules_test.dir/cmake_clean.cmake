file(REMOVE_RECURSE
  "CMakeFiles/pm_modules_test.dir/pm_modules_test.cpp.o"
  "CMakeFiles/pm_modules_test.dir/pm_modules_test.cpp.o.d"
  "pm_modules_test"
  "pm_modules_test.pdb"
  "pm_modules_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pm_modules_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
