# Empty dependencies file for pm_modules_test.
# This may be replaced when dependencies are built.
