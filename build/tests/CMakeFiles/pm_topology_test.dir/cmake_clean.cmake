file(REMOVE_RECURSE
  "CMakeFiles/pm_topology_test.dir/pm_topology_test.cpp.o"
  "CMakeFiles/pm_topology_test.dir/pm_topology_test.cpp.o.d"
  "pm_topology_test"
  "pm_topology_test.pdb"
  "pm_topology_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pm_topology_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
