# Empty compiler generated dependencies file for pm_topology_test.
# This may be replaced when dependencies are built.
