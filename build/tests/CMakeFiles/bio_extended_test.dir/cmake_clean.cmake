file(REMOVE_RECURSE
  "CMakeFiles/bio_extended_test.dir/bio_extended_test.cpp.o"
  "CMakeFiles/bio_extended_test.dir/bio_extended_test.cpp.o.d"
  "bio_extended_test"
  "bio_extended_test.pdb"
  "bio_extended_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bio_extended_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
