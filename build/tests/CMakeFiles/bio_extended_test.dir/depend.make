# Empty dependencies file for bio_extended_test.
# This may be replaced when dependencies are built.
