# Empty dependencies file for pm_digital_test.
# This may be replaced when dependencies are built.
