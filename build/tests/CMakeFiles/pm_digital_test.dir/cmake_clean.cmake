file(REMOVE_RECURSE
  "CMakeFiles/pm_digital_test.dir/pm_digital_test.cpp.o"
  "CMakeFiles/pm_digital_test.dir/pm_digital_test.cpp.o.d"
  "pm_digital_test"
  "pm_digital_test.pdb"
  "pm_digital_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pm_digital_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
