file(REMOVE_RECURSE
  "CMakeFiles/magnetics_test.dir/magnetics_test.cpp.o"
  "CMakeFiles/magnetics_test.dir/magnetics_test.cpp.o.d"
  "magnetics_test"
  "magnetics_test.pdb"
  "magnetics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/magnetics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
