# Empty compiler generated dependencies file for magnetics_test.
# This may be replaced when dependencies are built.
