file(REMOVE_RECURSE
  "CMakeFiles/comms_protocol_test.dir/comms_protocol_test.cpp.o"
  "CMakeFiles/comms_protocol_test.dir/comms_protocol_test.cpp.o.d"
  "comms_protocol_test"
  "comms_protocol_test.pdb"
  "comms_protocol_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comms_protocol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
