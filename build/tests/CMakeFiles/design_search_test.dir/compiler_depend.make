# Empty compiler generated dependencies file for design_search_test.
# This may be replaced when dependencies are built.
