file(REMOVE_RECURSE
  "CMakeFiles/design_search_test.dir/design_search_test.cpp.o"
  "CMakeFiles/design_search_test.dir/design_search_test.cpp.o.d"
  "design_search_test"
  "design_search_test.pdb"
  "design_search_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/design_search_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
