file(REMOVE_RECURSE
  "CMakeFiles/comms_linecode_test.dir/comms_linecode_test.cpp.o"
  "CMakeFiles/comms_linecode_test.dir/comms_linecode_test.cpp.o.d"
  "comms_linecode_test"
  "comms_linecode_test.pdb"
  "comms_linecode_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comms_linecode_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
