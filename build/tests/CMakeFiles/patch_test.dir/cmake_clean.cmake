file(REMOVE_RECURSE
  "CMakeFiles/patch_test.dir/patch_test.cpp.o"
  "CMakeFiles/patch_test.dir/patch_test.cpp.o.d"
  "patch_test"
  "patch_test.pdb"
  "patch_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/patch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
