# Empty compiler generated dependencies file for bench_link_datarates.
# This may be replaced when dependencies are built.
