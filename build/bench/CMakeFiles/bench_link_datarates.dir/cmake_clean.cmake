file(REMOVE_RECURSE
  "CMakeFiles/bench_link_datarates.dir/bench_link_datarates.cpp.o"
  "CMakeFiles/bench_link_datarates.dir/bench_link_datarates.cpp.o.d"
  "bench_link_datarates"
  "bench_link_datarates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_link_datarates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
