file(REMOVE_RECURSE
  "CMakeFiles/bench_classe_pa.dir/bench_classe_pa.cpp.o"
  "CMakeFiles/bench_classe_pa.dir/bench_classe_pa.cpp.o.d"
  "bench_classe_pa"
  "bench_classe_pa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_classe_pa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
