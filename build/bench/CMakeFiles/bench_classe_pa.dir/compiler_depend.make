# Empty compiler generated dependencies file for bench_classe_pa.
# This may be replaced when dependencies are built.
