file(REMOVE_RECURSE
  "CMakeFiles/bench_power_distance.dir/bench_power_distance.cpp.o"
  "CMakeFiles/bench_power_distance.dir/bench_power_distance.cpp.o.d"
  "bench_power_distance"
  "bench_power_distance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_power_distance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
