# Empty dependencies file for bench_power_distance.
# This may be replaced when dependencies are built.
