# Empty compiler generated dependencies file for bench_sigma_delta_adc.
# This may be replaced when dependencies are built.
