file(REMOVE_RECURSE
  "CMakeFiles/bench_sigma_delta_adc.dir/bench_sigma_delta_adc.cpp.o"
  "CMakeFiles/bench_sigma_delta_adc.dir/bench_sigma_delta_adc.cpp.o.d"
  "bench_sigma_delta_adc"
  "bench_sigma_delta_adc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sigma_delta_adc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
