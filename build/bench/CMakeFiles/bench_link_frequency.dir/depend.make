# Empty dependencies file for bench_link_frequency.
# This may be replaced when dependencies are built.
