file(REMOVE_RECURSE
  "CMakeFiles/bench_link_frequency.dir/bench_link_frequency.cpp.o"
  "CMakeFiles/bench_link_frequency.dir/bench_link_frequency.cpp.o.d"
  "bench_link_frequency"
  "bench_link_frequency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_link_frequency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
