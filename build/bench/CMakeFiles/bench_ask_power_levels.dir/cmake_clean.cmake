file(REMOVE_RECURSE
  "CMakeFiles/bench_ask_power_levels.dir/bench_ask_power_levels.cpp.o"
  "CMakeFiles/bench_ask_power_levels.dir/bench_ask_power_levels.cpp.o.d"
  "bench_ask_power_levels"
  "bench_ask_power_levels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ask_power_levels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
