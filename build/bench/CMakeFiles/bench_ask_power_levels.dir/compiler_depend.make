# Empty compiler generated dependencies file for bench_ask_power_levels.
# This may be replaced when dependencies are built.
