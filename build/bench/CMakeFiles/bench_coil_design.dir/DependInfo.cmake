
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_coil_design.cpp" "bench/CMakeFiles/bench_coil_design.dir/bench_coil_design.cpp.o" "gcc" "bench/CMakeFiles/bench_coil_design.dir/bench_coil_design.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ironic_core.dir/DependInfo.cmake"
  "/root/repo/build/src/magnetics/CMakeFiles/ironic_magnetics.dir/DependInfo.cmake"
  "/root/repo/build/src/bio/CMakeFiles/ironic_bio.dir/DependInfo.cmake"
  "/root/repo/build/src/pm/CMakeFiles/ironic_pm.dir/DependInfo.cmake"
  "/root/repo/build/src/rf/CMakeFiles/ironic_rf.dir/DependInfo.cmake"
  "/root/repo/build/src/patch/CMakeFiles/ironic_patch.dir/DependInfo.cmake"
  "/root/repo/build/src/comms/CMakeFiles/ironic_comms.dir/DependInfo.cmake"
  "/root/repo/build/src/spice/CMakeFiles/ironic_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/ironic_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ironic_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
