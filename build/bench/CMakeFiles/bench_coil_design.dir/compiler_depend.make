# Empty compiler generated dependencies file for bench_coil_design.
# This may be replaced when dependencies are built.
