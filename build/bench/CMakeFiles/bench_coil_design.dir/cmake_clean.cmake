file(REMOVE_RECURSE
  "CMakeFiles/bench_coil_design.dir/bench_coil_design.cpp.o"
  "CMakeFiles/bench_coil_design.dir/bench_coil_design.cpp.o.d"
  "bench_coil_design"
  "bench_coil_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_coil_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
