file(REMOVE_RECURSE
  "CMakeFiles/bench_tolerance_yield.dir/bench_tolerance_yield.cpp.o"
  "CMakeFiles/bench_tolerance_yield.dir/bench_tolerance_yield.cpp.o.d"
  "bench_tolerance_yield"
  "bench_tolerance_yield.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tolerance_yield.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
