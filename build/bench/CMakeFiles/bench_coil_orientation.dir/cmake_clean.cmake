file(REMOVE_RECURSE
  "CMakeFiles/bench_coil_orientation.dir/bench_coil_orientation.cpp.o"
  "CMakeFiles/bench_coil_orientation.dir/bench_coil_orientation.cpp.o.d"
  "bench_coil_orientation"
  "bench_coil_orientation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_coil_orientation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
