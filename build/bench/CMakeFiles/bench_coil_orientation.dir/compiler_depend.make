# Empty compiler generated dependencies file for bench_coil_orientation.
# This may be replaced when dependencies are built.
