# Empty dependencies file for bench_rectifier_impedance.
# This may be replaced when dependencies are built.
