file(REMOVE_RECURSE
  "CMakeFiles/bench_rectifier_impedance.dir/bench_rectifier_impedance.cpp.o"
  "CMakeFiles/bench_rectifier_impedance.dir/bench_rectifier_impedance.cpp.o.d"
  "bench_rectifier_impedance"
  "bench_rectifier_impedance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rectifier_impedance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
