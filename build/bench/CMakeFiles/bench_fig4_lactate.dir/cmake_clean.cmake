file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_lactate.dir/bench_fig4_lactate.cpp.o"
  "CMakeFiles/bench_fig4_lactate.dir/bench_fig4_lactate.cpp.o.d"
  "bench_fig4_lactate"
  "bench_fig4_lactate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_lactate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
