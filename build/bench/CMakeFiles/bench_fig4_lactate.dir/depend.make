# Empty dependencies file for bench_fig4_lactate.
# This may be replaced when dependencies are built.
