# Empty compiler generated dependencies file for link_tuning.
# This may be replaced when dependencies are built.
