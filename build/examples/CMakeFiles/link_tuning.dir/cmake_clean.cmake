file(REMOVE_RECURSE
  "CMakeFiles/link_tuning.dir/link_tuning.cpp.o"
  "CMakeFiles/link_tuning.dir/link_tuning.cpp.o.d"
  "link_tuning"
  "link_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/link_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
