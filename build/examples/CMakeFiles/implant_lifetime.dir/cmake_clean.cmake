file(REMOVE_RECURSE
  "CMakeFiles/implant_lifetime.dir/implant_lifetime.cpp.o"
  "CMakeFiles/implant_lifetime.dir/implant_lifetime.cpp.o.d"
  "implant_lifetime"
  "implant_lifetime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/implant_lifetime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
