# Empty dependencies file for implant_lifetime.
# This may be replaced when dependencies are built.
