# Empty dependencies file for lactate_monitoring.
# This may be replaced when dependencies are built.
