file(REMOVE_RECURSE
  "CMakeFiles/lactate_monitoring.dir/lactate_monitoring.cpp.o"
  "CMakeFiles/lactate_monitoring.dir/lactate_monitoring.cpp.o.d"
  "lactate_monitoring"
  "lactate_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lactate_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
