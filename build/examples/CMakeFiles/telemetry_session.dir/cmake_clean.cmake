file(REMOVE_RECURSE
  "CMakeFiles/telemetry_session.dir/telemetry_session.cpp.o"
  "CMakeFiles/telemetry_session.dir/telemetry_session.cpp.o.d"
  "telemetry_session"
  "telemetry_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telemetry_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
