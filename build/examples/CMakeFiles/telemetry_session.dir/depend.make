# Empty dependencies file for telemetry_session.
# This may be replaced when dependencies are built.
