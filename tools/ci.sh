#!/usr/bin/env bash
# Offline CI gate for the ironic tree. Mirrors .github/workflows/ci.yml so
# the same correctness bar can be enforced on a disconnected box:
#
#   1. release   Release-mode build with -Werror, full ctest suite
#   2. sanitize  ASan+UBSan build (halt-on-error), full ctest suite
#   3. tsan      ThreadSanitizer build, exec/sweep/rng/obs/fault subset
#                plus the solver-backend suites (campaign workers solve
#                circuits concurrently; the rest of the numeric suite
#                stays on ASan) and the telemetry drainer / sharded-merge
#                races (TelemetrySink, Profiler, MetricsShard)
#   4. tidy      clang-tidy over src/ and tools/ (skips if not installed)
#   5. lint      netlist_lint --strict over every shipped .cir netlist,
#                and the broken fixtures must FAIL
#   6. analyze   netlist_analyze --strict over every shipped netlist
#                (clean envelopes, fill prediction, dt planning), the
#                static solver choice pinned against what the engine
#                engages (tissue ladder -> sparse, small examples ->
#                dense), the spice.analysis.* telemetry schema pinned
#                via trace_validate, and fault campaign fingerprints
#                bit-identical with --analysis-hints on vs off
#   7. fault     fault_runner over every registered campaign, plus the
#                exit-code contract (unwritable --out and --telemetry must
#                exit 2), the sparse-backend acceptance campaign
#                (fingerprints must be thread-count invariant per
#                backend), and the trace_validate pins on the
#                spice.solver.*, obs.telemetry.*, prof.<zone>.* and
#                cohort.* telemetry
#   8. fleet     fleet_runner 1000-session smoke with solo-parity spot
#                checks (--verify-solo exits 1 on any fingerprint
#                mismatch), checkpoint forking pinned to exactly one
#                charge-up capture, the fleet fingerprint bit-identical
#                across two thread counts, and the fleet.* / cohort.fleet.*
#                telemetry schema pinned via trace_validate
#   9. chaos     fleet supervision: injected chaos is contained (exact
#                fleet.failed/quarantined pins, exit code 1), a
#                retried-to-health chaos run is bit-identical to a
#                no-chaos run (exit 0), kill -9 mid-run + --resume
#                reproduces the uninterrupted fingerprint from the
#                journal (telemetry_tail tolerates the torn tail), and
#                the exit-code contract (0 healthy / 1 failures / 2
#                usage) holds end to end
#  10. linkphy   the LinkPhy backend contract: backend #1 (inductive)
#                campaign fingerprints bit-identical across thread counts
#                (the exact pre-refactor value pins live in
#                link_neutrality_test), the magnetoelectric campaign
#                fingerprint pinned across three thread counts, the
#                bio-impedance campaign and fleet smoke (stateless
#                workload -> zero charge-ups, zero forks), the --link
#                exit-2 contract on all three runners, and the link.*
#                telemetry schema pinned via trace_validate
#  11. obs       bench_obs_overhead in-process budget gate (instrumented
#                fault campaign must stay within 5% of the obs-off run),
#                and every *committed* BENCH_*.json must have been
#                produced with observability compiled in
#
# Usage: tools/ci.sh [release|sanitize|tsan|tidy|lint|analyze|fault|fleet|chaos|linkphy|obs|all]   (default: all)
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
JOBS="${JOBS:-$(nproc 2>/dev/null || echo 4)}"
STAGE="${1:-all}"

log() { printf '\n==== ci: %s ====\n' "$*"; }

run_release() {
  log "release build (-Werror) + ctest"
  cmake -B "$ROOT/build-ci-release" -S "$ROOT" \
    -DCMAKE_BUILD_TYPE=Release \
    -DIRONIC_WARNINGS_AS_ERRORS=ON
  cmake --build "$ROOT/build-ci-release" -j "$JOBS"
  ctest --test-dir "$ROOT/build-ci-release" --output-on-failure -j "$JOBS"
}

run_sanitize() {
  log "ASan+UBSan build + ctest"
  cmake -B "$ROOT/build-ci-asan" -S "$ROOT" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DIRONIC_WARNINGS_AS_ERRORS=ON \
    -DIRONIC_SANITIZE="address;undefined"
  cmake --build "$ROOT/build-ci-asan" -j "$JOBS"
  ASAN_OPTIONS=detect_leaks=0:halt_on_error=1 \
  UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1 \
    ctest --test-dir "$ROOT/build-ci-asan" --output-on-failure -j "$JOBS"
}

run_tsan() {
  log "TSan build + exec/sweep/rng/obs/fault tests"
  cmake -B "$ROOT/build-ci-tsan" -S "$ROOT" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DIRONIC_WARNINGS_AS_ERRORS=ON \
    -DIRONIC_TSAN=ON
  cmake --build "$ROOT/build-ci-tsan" -j "$JOBS" \
    --target exec_test sweep_test rng_stream_test obs_test \
             obs_telemetry_test fault_session_test fault_campaign_test \
             linalg_sparse_test spice_solver_equiv_test
  TSAN_OPTIONS=halt_on_error=1:second_deadlock_stack=1 \
    ctest --test-dir "$ROOT/build-ci-tsan" --output-on-failure -j "$JOBS" \
      -R '^(ThreadPool|ParallelFor|ExecTolerance|ObsConcurrency|Sweep|SweepAxis|RngStream|Metrics|Trace|RunReport|Session|FaultCampaign|SparseSolver|SolverEquiv|TelemetrySink|Profiler)'
}

run_tidy() {
  log "clang-tidy"
  # The tidy target itself degrades to a notice when clang-tidy is absent.
  cmake -B "$ROOT/build-ci-release" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release
  cmake --build "$ROOT/build-ci-release" --target tidy
}

run_lint() {
  log "netlist_lint sweep"
  cmake -B "$ROOT/build-ci-release" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release
  cmake --build "$ROOT/build-ci-release" -j "$JOBS" --target netlist_lint
  local lint="$ROOT/build-ci-release/tools/netlist_lint"
  # Shipped netlists: zero diagnostics, even at DC, even as warnings.
  "$lint" --strict --dc "$ROOT"/examples/netlists/*.cir
  # Broken fixtures: the linter must refuse them.
  if "$lint" --dc "$ROOT"/tests/netlists/*.cir; then
    echo "ci: FAIL -- broken fixtures were not flagged" >&2
    exit 1
  fi
  echo "ci: broken fixtures correctly flagged"
}

run_analyze() {
  log "netlist_analyze sweep + static-choice, schema, and hint-fingerprint pins"
  cmake -B "$ROOT/build-ci-release" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release
  cmake --build "$ROOT/build-ci-release" -j "$JOBS" \
    --target netlist_analyze fault_runner trace_validate
  local analyzer="$ROOT/build-ci-release/tools/netlist_analyze"
  local runner="$ROOT/build-ci-release/tools/fault_runner"
  local validator="$ROOT/build-ci-release/tools/trace_validate"
  # Shipped netlists: the whole pipeline (lint + envelope + sparsity +
  # timescale) must come back clean, warnings included.
  "$analyzer" --strict --quiet "$ROOT"/examples/netlists/*.cir
  # The static dense/sparse choice must match what the engine engages:
  # the 122-unknown tissue ladder goes sparse (the small examples are
  # pinned dense by the Analysis.* ctest gate). The JSON sweep also
  # leaves behind the BENCH report whose spice.analysis.* schema is
  # pinned below.
  local ladder="$ROOT/build-ci-release/analyze_ladder.json"
  IRONIC_REPORT_DIR="$ROOT/build-ci-release" \
    "$analyzer" --json "$ROOT/examples/netlists/tissue_ladder.cir" > "$ladder"
  grep -q '"solver_choice": "sparse"' "$ladder"
  grep -q '"unknowns": 122' "$ladder"
  "$validator" --require-obs \
    --require spice.analysis.runs \
    --require spice.analysis.lint_ns \
    --require spice.analysis.envelope_ns \
    --require spice.analysis.sparsity_ns \
    --require spice.analysis.timescale_ns \
    --require spice.analysis.last_unknowns \
    --require spice.analysis.last_factor_nnz \
    --require spice.analysis.last_dt_recommend \
    "$ROOT/build-ci-release/BENCH_netlist_analyze.json"
  # Analysis hints must be invisible to the campaign fingerprints: the
  # static solver choice agrees with the engine's auto pick and the dt
  # hint only fills options left at auto.
  local plain="$ROOT/build-ci-release/fault_hints_off.json"
  local hinted="$ROOT/build-ci-release/fault_hints_on.json"
  "$runner" --out "$plain" all
  "$runner" --analysis-hints --out "$hinted" all
  if ! diff <(grep '"fingerprint"' "$plain") <(grep '"fingerprint"' "$hinted"); then
    echo "ci: FAIL -- fingerprints changed under --analysis-hints" >&2
    exit 1
  fi
  echo "ci: analyzer sweep clean; ladder goes sparse; analysis schema" \
       "pinned; hint fingerprints bit-identical"
}

run_fault() {
  log "fault campaigns (fault_runner all) + exit-code contract"
  cmake -B "$ROOT/build-ci-release" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release
  cmake --build "$ROOT/build-ci-release" -j "$JOBS" \
    --target fault_runner trace_validate
  local runner="$ROOT/build-ci-release/tools/fault_runner"
  local validator="$ROOT/build-ci-release/tools/trace_validate"
  local out="$ROOT/build-ci-release/fault_campaigns.json"
  # Every registered campaign must complete, on >1 thread, and land its
  # JSON report (the determinism/zero-loss assertions live in ctest).
  "$runner" --threads 2 --out "$out" all
  test -s "$out"
  # An unwritable --out must exit 2, distinct from a failed campaign.
  local rc=0
  "$runner" --out /nonexistent-ci-dir/fault.json ask_burst_coupling_drop \
    >/dev/null 2>&1 || rc=$?
  if [ "$rc" -ne 2 ]; then
    echo "ci: FAIL -- unwritable --out exited $rc, want 2" >&2
    exit 1
  fi
  # An unwritable --telemetry path must exit 2 as well.
  rc=0
  "$runner" --telemetry /nonexistent-ci-dir/t.jsonl ask_burst_coupling_drop \
    >/dev/null 2>&1 || rc=$?
  if [ "$rc" -ne 2 ]; then
    echo "ci: FAIL -- unwritable --telemetry exited $rc, want 2" >&2
    exit 1
  fi
  # Sparse-backend acceptance campaign: every campaign again under
  # --solver sparse, at two thread counts — the per-scenario fingerprints
  # must be bit-identical, or the backend leaks state across scenarios.
  # The wide leg streams JSONL telemetry while it runs, so the report it
  # leaves behind carries live obs.telemetry.* counters.
  local sp1="$ROOT/build-ci-release/fault_sparse_t1.json"
  local sp4="$ROOT/build-ci-release/fault_sparse_t4.json"
  local stream="$ROOT/build-ci-release/fault_sparse_t4.telemetry.jsonl"
  IRONIC_REPORT_DIR="$ROOT/build-ci-release" \
    "$runner" --solver sparse --threads 1 --out "$sp1" all
  IRONIC_REPORT_DIR="$ROOT/build-ci-release" \
    "$runner" --solver sparse --threads 4 --telemetry "$stream" \
    --out "$sp4" all
  if ! diff <(grep '"fingerprint"' "$sp1") <(grep '"fingerprint"' "$sp4"); then
    echo "ci: FAIL -- sparse fault fingerprints differ across thread counts" >&2
    exit 1
  fi
  test -s "$stream"
  # The run report the sparse campaign emits must carry the solver-layer
  # telemetry (DESIGN.md §11), the streaming-sink counters, the profiler
  # zone totals, and the cohort percentile aggregates (DESIGN.md §12) —
  # pin the names so a registry rename or a silently-dead counter fails
  # CI instead of an offline dashboard.
  "$validator" --require-obs \
    --require spice.solver.factorizations \
    --require spice.solver.refactorizations \
    --require spice.solver.factor_skips \
    --require spice.solver.pattern_builds \
    --require spice.solver.pattern_reuses \
    --require obs.telemetry.emitted \
    --require obs.telemetry.written \
    --require obs.telemetry.flushes \
    --require prof.spice.newton.inclusive_ns \
    --require prof.spice.stamp.inclusive_ns \
    --require prof.spice.lu_factor.inclusive_ns \
    --require prof.spice.lu_solve.inclusive_ns \
    --require prof.comms.exchange.inclusive_ns \
    --require cohort.ask_burst_coupling_drop.fault.scenario.exchange_latency_s.p99 \
    --require cohort.ask_burst_coupling_drop.fault.scenario.retries.p50 \
    --require cohort.brownout_shedding.fault.scenario.brownouts.max \
    "$ROOT/build-ci-release/BENCH_fault_resilience.json"
  echo "ci: campaigns wrote $out; sparse fingerprints thread-count" \
       "invariant; exit-code and telemetry contracts hold"
}

run_fleet() {
  log "fleet 1000-session smoke + solo parity + thread-count invariance"
  cmake -B "$ROOT/build-ci-release" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release
  cmake --build "$ROOT/build-ci-release" -j "$JOBS" \
    --target fleet_runner trace_validate
  local runner="$ROOT/build-ci-release/tools/fleet_runner"
  local validator="$ROOT/build-ci-release/tools/trace_validate"
  # 1000 concurrent sessions, one exchange each: completes in seconds at
  # 4 threads because every session forks the single shared charge-up
  # checkpoint. --verify-solo re-runs two sessions alone (private
  # charge-up) and exits 1 if either diverges from its fleet twin. The
  # run leaves behind the BENCH report whose schema is pinned below.
  local smoke="$ROOT/build-ci-release/fleet_smoke.json"
  local stream="$ROOT/build-ci-release/fleet_smoke.telemetry.jsonl"
  IRONIC_REPORT_DIR="$ROOT/build-ci-release" \
    "$runner" --sessions 1000 --threads 4 --exchanges 1 \
    --verify-solo 2 --telemetry "$stream" --out "$smoke"
  test -s "$stream"
  # Forking must have amortized the charge-up: one capture, 1000 forks.
  grep -q '"charge_captures": 1' "$smoke"
  grep -q '"checkpoint_forks": 1000' "$smoke"
  # The fleet fingerprint must be bit-identical across thread counts.
  local t1="$ROOT/build-ci-release/fleet_t1.json"
  local t3="$ROOT/build-ci-release/fleet_t3.json"
  "$runner" --sessions 24 --threads 1 --exchanges 2 --out "$t1"
  "$runner" --sessions 24 --threads 3 --exchanges 2 --out "$t3"
  if ! diff <(grep '"fingerprint"' "$t1") <(grep '"fingerprint"' "$t3"); then
    echo "ci: FAIL -- fleet fingerprints differ across thread counts" >&2
    exit 1
  fi
  # An unwritable --out must exit 2, same contract as the other runners.
  local rc=0
  "$runner" --sessions 2 --exchanges 1 --out /nonexistent-ci-dir/fleet.json \
    >/dev/null 2>&1 || rc=$?
  if [ "$rc" -ne 2 ]; then
    echo "ci: FAIL -- unwritable --out exited $rc, want 2" >&2
    exit 1
  fi
  # Pin the fleet roll-ups and the per-cohort aggregates (DESIGN.md §14)
  # so a metric rename or a silently-dead gauge fails CI.
  "$validator" --require-obs \
    --require fleet.sessions \
    --require fleet.total_exchanges \
    --require fleet.lost_rate \
    --require fleet.recovery_p50_s \
    --require fleet.recovery_p95_s \
    --require fleet.recovery_p99_s \
    --require fleet.charge_captures \
    --require fleet.checkpoint_forks \
    --require fleet.sessions_per_second \
    --require cohort.fleet.nominal.fleet.session.retries.sum \
    --require cohort.fleet.noisy_link.fleet.session.exchange_latency_s.p95 \
    --require cohort.fleet.deep_implant.fleet.session.recover_s.max \
    "$ROOT/build-ci-release/BENCH_fleet_soak.json"
  echo "ci: 1000-session fleet smoke parity-clean; fingerprints" \
       "thread-count invariant; fleet telemetry schema pinned"
}

run_chaos() {
  log "fleet supervision: chaos containment, retry determinism, kill+resume"
  cmake -B "$ROOT/build-ci-release" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release
  cmake --build "$ROOT/build-ci-release" -j "$JOBS" \
    --target fleet_runner trace_validate telemetry_tail
  local runner="$ROOT/build-ci-release/tools/fleet_runner"
  local validator="$ROOT/build-ci-release/tools/trace_validate"
  local tail_tool="$ROOT/build-ci-release/tools/telemetry_tail"

  # Leg 1 — containment + quarantine. With the default seed, 24 sessions
  # and --chaos 0.2 doom exactly sessions {9, 11, 14, 15}; more doomed
  # attempts than retries means all four quarantine. The run must still
  # complete every healthy session, report the failures per code, and
  # exit 1 (failures present), never abort.
  local chaos_out="$ROOT/build-ci-release/fleet_chaos.json"
  local rc=0
  IRONIC_REPORT_DIR="$ROOT/build-ci-release" \
    "$runner" --sessions 24 --threads 4 --exchanges 2 \
    --chaos 0.2 --chaos-attempts 9 --retries 1 --out "$chaos_out" \
    >/dev/null 2>&1 || rc=$?
  if [ "$rc" -ne 1 ]; then
    echo "ci: FAIL -- chaos run with quarantines exited $rc, want 1" >&2
    exit 1
  fi
  grep -q '"failed": 4' "$chaos_out"
  grep -q '"quarantined": 4' "$chaos_out"
  grep -q '"chaos": 4' "$chaos_out"
  # The supervision roll-ups must land in the run report's registry.
  "$validator" --require-obs \
    --require fleet.failed \
    --require fleet.retried \
    --require fleet.quarantined \
    --require fleet.resumed \
    --require fleet.failures.chaos \
    --require cohort.fleet.nominal.failure_rate \
    "$ROOT/build-ci-release/BENCH_fleet_soak.json"

  # The chaos fingerprint (healthy results + deterministic failure
  # markers) must be thread-count invariant like everything else.
  local chaos_t1="$ROOT/build-ci-release/fleet_chaos_t1.json"
  "$runner" --sessions 24 --threads 1 --exchanges 2 \
    --chaos 0.2 --chaos-attempts 9 --retries 1 --out "$chaos_t1" \
    >/dev/null 2>&1 || true
  if ! diff <(grep '"fingerprint"' "$chaos_out") <(grep '"fingerprint"' "$chaos_t1"); then
    echo "ci: FAIL -- chaos fingerprints differ across thread counts" >&2
    exit 1
  fi

  # Leg 2 — deterministic retry. One doomed attempt + two retries means
  # every chaos-picked session re-runs clean with its original seed: the
  # run exits 0 and its fingerprint is bit-identical to a no-chaos run.
  local clean_out="$ROOT/build-ci-release/fleet_nochaos.json"
  local retry_out="$ROOT/build-ci-release/fleet_retried.json"
  "$runner" --sessions 24 --threads 4 --exchanges 2 --out "$clean_out"
  "$runner" --sessions 24 --threads 4 --exchanges 2 \
    --chaos 0.2 --retries 2 --out "$retry_out"
  if ! diff <(grep '"fingerprint"' "$clean_out") <(grep '"fingerprint"' "$retry_out"); then
    echo "ci: FAIL -- retried chaos run diverged from the no-chaos run" >&2
    exit 1
  fi
  grep -q '"failed": 0' "$retry_out"

  # Leg 3 — crash durability. Kill a journaled run mid-flight (SIGKILL,
  # no cleanup), then --resume: completed sessions replay from the
  # journal, the rest re-run, and the fleet fingerprint matches an
  # uninterrupted reference run bit-for-bit.
  local journal="$ROOT/build-ci-release/fleet_kill.journal.jsonl"
  local ref_out="$ROOT/build-ci-release/fleet_kill_ref.json"
  local res_out="$ROOT/build-ci-release/fleet_kill_resumed.json"
  rm -f "$journal"
  "$runner" --sessions 400 --threads 2 --exchanges 2 --out "$ref_out"
  "$runner" --sessions 400 --threads 2 --exchanges 2 --journal "$journal" \
    --out /dev/null >/dev/null 2>&1 &
  local pid=$!
  sleep 3
  kill -9 "$pid" 2>/dev/null || true
  wait "$pid" 2>/dev/null || true
  local journaled
  journaled="$(grep -c '"event":"session"' "$journal" || true)"
  echo "ci: killed journaled run after $journaled recorded session(s)"
  # The torn tail (if the kill landed mid-write) must not break the
  # schema-agnostic tooling either.
  "$tail_tool" --stats "$journal" >/dev/null
  "$runner" --sessions 400 --threads 4 --exchanges 2 --journal "$journal" \
    --resume --out "$res_out"
  if ! diff <(grep '"fingerprint"' "$ref_out") <(grep '"fingerprint"' "$res_out"); then
    echo "ci: FAIL -- resumed fingerprint differs from uninterrupted run" >&2
    exit 1
  fi
  grep -o '"resumed": [0-9]*' "$res_out"

  # Leg 4 — exit-code contract edges not already covered above: healthy
  # exit 0 is leg 2's clean run; usage and unwritable-journal exit 2.
  rc=0; "$runner" --bogus >/dev/null 2>&1 || rc=$?
  if [ "$rc" -ne 2 ]; then
    echo "ci: FAIL -- unknown flag exited $rc, want 2" >&2; exit 1
  fi
  rc=0; "$runner" --sessions 2 --exchanges 1 \
    --journal /nonexistent-ci-dir/j.jsonl >/dev/null 2>&1 || rc=$?
  if [ "$rc" -ne 2 ]; then
    echo "ci: FAIL -- unwritable --journal exited $rc, want 2" >&2; exit 1
  fi
  rc=0; "$runner" --resume >/dev/null 2>&1 || rc=$?
  if [ "$rc" -ne 2 ]; then
    echo "ci: FAIL -- --resume without --journal exited $rc, want 2" >&2
    exit 1
  fi
  echo "ci: chaos contained with exact failure pins; retried run" \
       "bit-identical to no-chaos; kill+resume fingerprint parity holds"
}

run_linkphy() {
  log "LinkPhy: backend-#1 neutrality, ME pins, bioz smoke, --link contract"
  cmake -B "$ROOT/build-ci-release" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release
  cmake --build "$ROOT/build-ci-release" -j "$JOBS" \
    --target fault_runner fleet_runner sweep_runner trace_validate
  local fault="$ROOT/build-ci-release/tools/fault_runner"
  local fleet="$ROOT/build-ci-release/tools/fleet_runner"
  local sweep="$ROOT/build-ci-release/tools/sweep_runner"
  local validator="$ROOT/build-ci-release/tools/trace_validate"

  # Backend #1 neutrality + thread invariance: every registered campaign
  # (the three pre-LinkPhy ones now dispatching through the inductive
  # backend, plus the ME and bioz additions) must fingerprint
  # bit-identically at 1 and 4 threads. The exact pre-refactor constants
  # are pinned by link_neutrality_test; the diff here catches divergence
  # without assuming this runner's libm.
  local t1="$ROOT/build-ci-release/linkphy_t1.json"
  local t4="$ROOT/build-ci-release/linkphy_t4.json"
  "$fault" --threads 1 --out "$t1" all
  IRONIC_REPORT_DIR="$ROOT/build-ci-release" \
    "$fault" --threads 4 --out "$t4" all
  if ! diff <(grep '"fingerprint"' "$t1") <(grep '"fingerprint"' "$t4"); then
    echo "ci: FAIL -- campaign fingerprints differ across thread counts" >&2
    exit 1
  fi
  grep -q '"campaign": "me_backscatter_soak"' "$t1"
  grep -q '"campaign": "bioz_tissue_drift"' "$t1"

  # The magnetoelectric campaign again at a third thread count: its
  # fingerprint must match the wide leg exactly.
  local me3="$ROOT/build-ci-release/linkphy_me_t3.json"
  "$fault" --threads 3 --out "$me3" me_backscatter_soak
  local me_pin
  me_pin="$(grep -o '"fingerprint": "0x[0-9a-f]*"' "$me3" | head -1)"
  if ! grep -qF "$me_pin" "$t4"; then
    echo "ci: FAIL -- me_backscatter_soak fingerprint differs at 3 threads" >&2
    exit 1
  fi

  # The link.* telemetry published by run_campaign must land in the run
  # report: the query counter plus both backends' operating points.
  "$validator" --require-obs \
    --require link.power_queries \
    --require link.inductive.p_nominal_w \
    --require link.inductive.nominal_rate_bps \
    --require link.inductive.cadence_s \
    --require link.me.p_nominal_w \
    --require link.me.nominal_rate_bps \
    --require link.me.cadence_s \
    "$ROOT/build-ci-release/BENCH_fault_resilience.json"

  # Bio-impedance smoke: the campaign must deliver every measurement,
  # and a bioz fleet must run with zero charge-up captures and zero
  # checkpoint forks (the workload is stateless).
  local bioz="$ROOT/build-ci-release/linkphy_bioz.json"
  "$fault" --out "$bioz" bioz_tissue_drift
  grep -q '"lost_measurements": 0' "$bioz"
  local bfleet="$ROOT/build-ci-release/linkphy_bioz_fleet.json"
  "$fleet" --workload bioz --sessions 48 --exchanges 2 --threads 4 \
    --out "$bfleet"
  grep -q '"charge_captures": 0' "$bfleet"
  grep -q '"checkpoint_forks": 0' "$bfleet"

  # A magnetoelectric fleet must be thread-count invariant like the
  # inductive one (per-cohort charge-up blobs, PWM chips through the
  # fault-wrapped channel).
  local mf1="$ROOT/build-ci-release/linkphy_me_fleet_t1.json"
  local mf3="$ROOT/build-ci-release/linkphy_me_fleet_t3.json"
  "$fleet" --link me --sessions 24 --threads 1 --exchanges 2 --out "$mf1"
  "$fleet" --link me --sessions 24 --threads 3 --exchanges 2 --out "$mf3"
  if ! diff <(grep '"fingerprint"' "$mf1") <(grep '"fingerprint"' "$mf3"); then
    echo "ci: FAIL -- me fleet fingerprints differ across thread counts" >&2
    exit 1
  fi

  # --link contract: an unknown backend is a usage error (exit 2) on
  # every runner that takes the flag, with the registered names listed.
  local rc
  rc=0; "$fault" --link bogus stochastic_soak >/dev/null 2>&1 || rc=$?
  if [ "$rc" -ne 2 ]; then
    echo "ci: FAIL -- fault_runner --link bogus exited $rc, want 2" >&2
    exit 1
  fi
  rc=0; "$fleet" --link bogus --sessions 1 --exchanges 1 >/dev/null 2>&1 || rc=$?
  if [ "$rc" -ne 2 ]; then
    echo "ci: FAIL -- fleet_runner --link bogus exited $rc, want 2" >&2
    exit 1
  fi
  rc=0; "$sweep" --link bogus --list >/dev/null 2>&1 || rc=$?
  if [ "$rc" -ne 2 ]; then
    echo "ci: FAIL -- sweep_runner --link bogus exited $rc, want 2" >&2
    exit 1
  fi
  local diag
  diag=$("$fault" --link bogus stochastic_soak 2>&1 || true)
  if ! printf '%s' "$diag" | grep -q 'inductive, me'; then
    echo "ci: FAIL -- --link diagnostic does not list the backends" >&2
    exit 1
  fi
  echo "ci: linkphy neutrality diff clean; me pinned at 3 thread counts;" \
       "bioz campaign+fleet smoke pass; --link exit-2 contract holds"
}

run_obs() {
  log "obs overhead budget + committed-report provenance"
  cmake -B "$ROOT/build-ci-release" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release
  cmake --build "$ROOT/build-ci-release" -j "$JOBS" \
    --target bench_obs_overhead trace_validate
  # The bench enforces its own <=5% budget in-process (exit 1 on breach)
  # and cross-checks fingerprint invariance with telemetry on/off.
  IRONIC_REPORT_DIR="$ROOT/build-ci-release" \
    "$ROOT/build-ci-release/bench/bench_obs_overhead"
  # Every benchmark report checked into the tree must have been produced
  # with observability compiled in — a BENCH_*.json regenerated from a
  # stripped build silently loses the profiler/cohort sections.
  local validator="$ROOT/build-ci-release/tools/trace_validate"
  local committed
  committed="$(cd "$ROOT" && git ls-files 'BENCH_*.json')"
  if [ -z "$committed" ]; then
    echo "ci: no committed BENCH_*.json reports to check" >&2
    exit 1
  fi
  for report in $committed; do
    "$validator" --require-obs "$ROOT/$report"
  done
  echo "ci: obs overhead within budget; committed reports carry obs"
}

case "$STAGE" in
  release)  run_release ;;
  sanitize) run_sanitize ;;
  tsan)     run_tsan ;;
  tidy)     run_tidy ;;
  lint)     run_lint ;;
  analyze)  run_analyze ;;
  fault)    run_fault ;;
  fleet)    run_fleet ;;
  chaos)    run_chaos ;;
  linkphy)  run_linkphy ;;
  obs)      run_obs ;;
  all)      run_release; run_sanitize; run_tsan; run_tidy; run_lint; run_analyze; run_fault; run_fleet; run_chaos; run_linkphy; run_obs ;;
  *) echo "usage: tools/ci.sh [release|sanitize|tsan|tidy|lint|analyze|fault|fleet|chaos|linkphy|obs|all]" >&2; exit 2 ;;
esac

log "OK ($STAGE)"
