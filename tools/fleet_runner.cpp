// fleet_runner — run the fleet-scale session service from the command
// line: N independent patient sessions (full spice + magnetics + comms
// + fault pipeline each), sharded across the exec pool, forking one
// shared charged-up checkpoint per session instead of re-simulating the
// charge-up per patient.
//
//   fleet_runner [--sessions N] [--threads N] [--seed S]
//                [--exchanges N | --soak SECONDS] [--no-share]
//                [--link inductive|me] [--workload lactate|bioz]
//                [--retries N] [--deadline SECS]
//                [--chaos RATE] [--chaos-stall RATE] [--chaos-attempts N]
//                [--journal FILE] [--resume]
//                [--verify-solo N] [--out FILE] [--telemetry FILE|-]
//
// Determinism contract: the result is bit-identical for any --threads
// value, and every session is bit-identical to running it alone
// (--verify-solo re-runs a sample of sessions solo, with their own
// charge-up, and exits 1 on any fingerprint mismatch). The obs run
// report lands in BENCH_fleet_soak.json: per-cohort percentile recovery
// time, lost-measurement rate, the checkpoint-fork accounting, and the
// supervision health roll-ups (fleet.failed / retried / quarantined and
// per-code failure counters).
//
// Exit-code contract (pinned by FleetRunner.* tests and the CI chaos
// stage): 0 = every session healthy; 1 = at least one failed or
// quarantined session, or a solo-parity mismatch; 2 = usage error or an
// unwritable --out/--telemetry/--journal path.
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/fleet/fleet.hpp"
#include "src/obs/json.hpp"
#include "src/obs/report.hpp"
#include "src/obs/telemetry.hpp"
#include "tools/runner_args.hpp"

using namespace ironic;

namespace {

std::string hex64(std::uint64_t value) {
  std::ostringstream os;
  os << "0x" << std::hex << std::setw(16) << std::setfill('0') << value;
  return os.str();
}

obs::json::Value to_json(const fleet::FleetResult& result,
                         const fleet::FleetConfig& config) {
  obs::json::Value::Object doc;
  doc["sessions"] = static_cast<std::uint64_t>(config.sessions);
  doc["threads"] = static_cast<std::uint64_t>(config.threads);
  doc["seed"] = static_cast<std::uint64_t>(config.seed);
  doc["exchanges_per_session"] =
      static_cast<std::uint64_t>(fleet::effective_exchanges(config));
  doc["soak_seconds"] = config.soak_seconds;
  doc["share_checkpoint"] = config.share_checkpoint;
  // JSON numbers are doubles; the 64-bit fingerprint rides as a string.
  doc["fingerprint"] = hex64(result.fingerprint);
  doc["failed"] = static_cast<std::uint64_t>(result.failed);
  doc["retried"] = static_cast<std::uint64_t>(result.retried);
  doc["quarantined"] = static_cast<std::uint64_t>(result.quarantined);
  doc["resumed"] = static_cast<std::uint64_t>(result.resumed);
  obs::json::Value::Object by_code;
  for (const auto& [code, count] : result.failures_by_code) {
    by_code[code] = static_cast<std::uint64_t>(count);
  }
  doc["failures_by_code"] = std::move(by_code);
  obs::json::Value::Array failures;
  for (const auto& h : result.health) {
    if (h.ok) continue;
    obs::json::Value::Object row;
    row["session"] = static_cast<std::uint64_t>(h.index);
    row["cohort"] = h.cohort;
    row["code"] = std::string(fleet::failure_code_name(h.code));
    row["quarantined"] = h.quarantined;
    row["attempts"] = static_cast<std::uint64_t>(h.attempts);
    row["message"] = h.message;
    failures.emplace_back(std::move(row));
  }
  doc["failures"] = std::move(failures);
  doc["total_exchanges"] = static_cast<std::uint64_t>(result.total_exchanges);
  doc["lost_measurements"] =
      static_cast<std::uint64_t>(result.lost_measurements);
  doc["lost_rate"] = result.lost_rate;
  doc["recovery_p50_s"] = result.recovery_p50_s;
  doc["recovery_p95_s"] = result.recovery_p95_s;
  doc["recovery_p99_s"] = result.recovery_p99_s;
  doc["wall_seconds"] = result.wall_seconds;
  doc["session_wall_mean_s"] = result.session_wall_mean_s;
  doc["charge_captures"] = static_cast<std::uint64_t>(result.charge_captures);
  doc["charge_capture_seconds"] = result.charge_capture_seconds;
  doc["checkpoint_forks"] =
      static_cast<std::uint64_t>(result.checkpoint_forks);
  obs::json::Value::Array cohorts;
  for (const auto& c : result.cohorts) {
    obs::json::Value::Object row;
    row["name"] = c.name;
    row["sessions"] = static_cast<std::uint64_t>(c.sessions);
    row["exchanges"] = static_cast<std::uint64_t>(c.exchanges);
    row["completed"] = static_cast<std::uint64_t>(c.completed);
    row["lost"] = static_cast<std::uint64_t>(c.lost);
    row["retries"] = static_cast<std::uint64_t>(c.retries);
    row["recovered"] = static_cast<std::uint64_t>(c.recovered);
    row["restarts"] = static_cast<std::uint64_t>(c.restarts);
    row["lost_rate"] = c.lost_rate;
    row["recovery_p50_s"] = c.recovery_p50_s;
    row["recovery_p95_s"] = c.recovery_p95_s;
    row["recovery_p99_s"] = c.recovery_p99_s;
    row["mean_recovery_s"] = c.mean_recovery_s;
    row["failed"] = static_cast<std::uint64_t>(c.failed);
    row["quarantined"] = static_cast<std::uint64_t>(c.quarantined);
    row["failure_rate"] = c.failure_rate;
    cohorts.emplace_back(std::move(row));
  }
  doc["cohorts"] = std::move(cohorts);
  return obs::json::Value(std::move(doc));
}

int usage(int code) {
  std::ostream& os = code == 0 ? std::cout : std::cerr;
  os << "usage: fleet_runner [--sessions N] [--threads N] [--seed S]\n"
        "                    [--exchanges N | --soak SECONDS] [--no-share]\n"
        "                    [--link inductive|me] [--workload W]\n"
        "                    [--retries N] [--deadline SECS]\n"
        "                    [--chaos RATE] [--chaos-stall RATE]\n"
        "                    [--chaos-attempts N] [--journal FILE]\n"
        "                    [--resume] [--verify-solo N] [--out FILE]\n"
        "                    [--telemetry FILE|-]\n"
     << ironic::tools::CommonArgs::usage_lines()
     << "  --sessions N   concurrent patient sessions (default 64)\n"
        "  --exchanges N  measurement exchanges per session (default 4)\n"
        "  --soak SECS    simulated per-session horizon; overrides\n"
        "                 --exchanges with ceil(SECS / 0.25) exchanges\n"
        "  --no-share     every session captures its own charge-up instead\n"
        "                 of forking the shared checkpoint (same results,\n"
        "                 the A/B lever for the fork speedup)\n"
        "  --workload W   sensing front end every cohort drives per\n"
        "                 measurement: lactate (default; spice rectifier +\n"
        "                 potentiostat), lactate-behavioural, or bioz (the\n"
        "                 Fricke tissue ladder; stateless, no charge-up)\n"
        "  --retries N    re-runs granted to a failed session before it is\n"
        "                 quarantined (default 2); retries replay the exact\n"
        "                 original seed, so a retried success is\n"
        "                 bit-identical to a clean run\n"
        "  --deadline S   per-attempt watchdog deadline in wall seconds\n"
        "                 (0 = none); an expired attempt is contained and\n"
        "                 classified as `deadline`\n"
        "  --chaos RATE   deterministically make ~RATE of sessions throw\n"
        "                 (seeded; healthy sessions stay bit-identical)\n"
        "  --chaos-stall RATE\n"
        "                 deterministically make ~RATE of sessions stall\n"
        "                 until the watchdog fires (or a 30 s cap)\n"
        "  --chaos-attempts N\n"
        "                 attempts doomed per chaos-picked session; set\n"
        "                 above --retries to force quarantine (default 1)\n"
        "  --journal FILE append-only JSONL run journal: one line per\n"
        "                 terminal session outcome, crash-durable\n"
        "  --resume       replay completed sessions from --journal FILE and\n"
        "                 re-run only the rest; the fleet fingerprint is\n"
        "                 identical to an uninterrupted run\n"
        "  --verify-solo N\n"
        "                 re-run N evenly spaced sessions solo and compare\n"
        "                 fingerprints; exits 1 on any mismatch\n"
        "  --analysis-hints\n"
        "                 run the static-analysis passes on the plant\n"
        "                 circuits (fingerprints must not change)\n"
        "exit codes: 0 = all sessions healthy; 1 = failed/quarantined\n"
        "sessions or solo-parity mismatch; 2 = usage error or unwritable\n"
        "--out/--telemetry/--journal path\n";
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  fleet::FleetConfig config;
  config.sessions = 64;
  tools::CommonArgs args;
  args.program = "fleet_runner";
  args.seed = config.seed;
  args.threads = config.threads;
  std::size_t verify_solo = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    switch (args.consume(argc, argv, i)) {
      case tools::CommonArgs::Parse::kConsumed: continue;
      case tools::CommonArgs::Parse::kError: return usage(2);
      case tools::CommonArgs::Parse::kNotMine: break;
    }
    if (arg == "--help" || arg == "-h") {
      return usage(0);
    } else if (arg == "--sessions" && i + 1 < argc) {
      config.sessions =
          static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--exchanges" && i + 1 < argc) {
      config.exchanges = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else if (arg == "--soak" && i + 1 < argc) {
      config.soak_seconds = std::strtod(argv[++i], nullptr);
    } else if (arg == "--no-share") {
      config.share_checkpoint = false;
    } else if (arg == "--retries" && i + 1 < argc) {
      config.supervise.max_retries =
          static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else if (arg == "--deadline" && i + 1 < argc) {
      config.supervise.session_deadline_s = std::strtod(argv[++i], nullptr);
    } else if (arg == "--chaos" && i + 1 < argc) {
      config.supervise.chaos.throw_rate = std::strtod(argv[++i], nullptr);
    } else if (arg == "--chaos-stall" && i + 1 < argc) {
      config.supervise.chaos.stall_rate = std::strtod(argv[++i], nullptr);
    } else if (arg == "--chaos-attempts" && i + 1 < argc) {
      config.supervise.chaos.fail_attempts =
          static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else if (arg == "--journal" && i + 1 < argc) {
      config.supervise.journal_path = argv[++i];
    } else if (arg == "--resume") {
      config.supervise.resume = true;
    } else if (arg == "--verify-solo" && i + 1 < argc) {
      verify_solo =
          static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--workload" && i + 1 < argc) {
      fault::Workload workload;
      if (!fault::parse_workload(argv[++i], workload)) {
        std::cerr << "fleet_runner: unknown workload '" << argv[i]
                  << "' (want lactate, lactate-behavioural, or bioz)\n";
        return usage(2);
      }
      for (auto& cohort : config.cohorts) cohort.workload = workload;
    } else if (arg == "--analysis-hints") {
      config.analysis_hints = true;
    } else {
      std::cerr << "fleet_runner: unknown argument '" << arg << "'\n";
      return usage(2);
    }
  }
  if (config.supervise.resume && config.supervise.journal_path.empty()) {
    std::cerr << "fleet_runner: --resume requires --journal FILE\n";
    return usage(2);
  }
  config.seed = args.seed;
  config.threads = args.threads;
  for (auto& cohort : config.cohorts) cohort.link = args.link;
  if (const int code = args.open_telemetry(); code != 0) return code;

  // Flush-on-abnormal-path: every exit below — including the error
  // ones — drains and closes the sink first, so enqueued telemetry
  // lines are never stranded in the ring by an error return.
  const auto close_sink = [] { obs::TelemetrySink::instance().close(); };

  obs::RunReport run_report("fleet_soak");
  try {
    const auto result = fleet::run_fleet(config);
    std::cerr << "fleet_runner: " << config.sessions << " sessions, "
              << fleet::effective_exchanges(config)
              << " exchanges each: lost_rate=" << result.lost_rate
              << " recovery_p95_s=" << result.recovery_p95_s
              << " charge_captures=" << result.charge_captures
              << " forks=" << result.checkpoint_forks << " wall="
              << result.wall_seconds << "s\n";
    std::cerr << "fleet_runner: health: failed=" << result.failed
              << " retried=" << result.retried
              << " quarantined=" << result.quarantined
              << " resumed=" << result.resumed << "\n";
    for (const auto& h : result.health) {
      if (h.ok) continue;
      std::cerr << "fleet_runner: session " << h.index << " (" << h.cohort
                << ") " << (h.quarantined ? "QUARANTINED" : "FAILED") << " ["
                << fleet::failure_code_name(h.code) << "] after " << h.attempts
                << " attempt(s): " << h.message << "\n";
    }

    // Solo parity: the contract the fleet stands on. Evenly spaced
    // indices cover every cohort (stride vs cohort count are coprime
    // often enough; index 0 and the last session are always included).
    std::size_t mismatches = 0;
    double solo_wall_sum = 0.0;
    obs::json::Value::Array verified;
    if (verify_solo > 0) {
      const std::size_t n = std::min(verify_solo, config.sessions);
      const std::size_t stride = std::max<std::size_t>(1, config.sessions / n);
      std::size_t checked = 0;
      for (std::size_t i = 0; checked < n && i < config.sessions;
           i += stride, ++checked) {
        const auto solo = fleet::run_solo_session(config, i);
        const auto fleet_fp =
            fleet::fingerprint_session(result.sessions[i]);
        const auto solo_fp = fleet::fingerprint_session(solo);
        solo_wall_sum += solo.wall_seconds + solo.charge_wall_seconds;
        obs::json::Value::Object row;
        row["session"] = static_cast<std::uint64_t>(i);
        row["fleet_fingerprint"] = hex64(fleet_fp);
        row["solo_fingerprint"] = hex64(solo_fp);
        row["match"] = fleet_fp == solo_fp;
        verified.emplace_back(std::move(row));
        if (fleet_fp != solo_fp) {
          ++mismatches;
          std::cerr << "fleet_runner: PARITY MISMATCH session " << i
                    << ": fleet " << hex64(fleet_fp) << " != solo "
                    << hex64(solo_fp) << "\n";
        }
      }
      const double solo_mean = checked > 0 ? solo_wall_sum / checked : 0.0;
      std::cerr << "fleet_runner: verified " << checked
                << " session(s) solo: " << (checked - mismatches)
                << " matched, solo_wall_mean=" << solo_mean << "s vs fleet "
                << result.session_wall_mean_s << "s\n";
      run_report.metric("verify_solo.checked", static_cast<double>(checked));
      run_report.metric("verify_solo.mismatches",
                        static_cast<double>(mismatches));
      run_report.metric("verify_solo.wall_mean_s", solo_mean);
      if (solo_mean > 0.0 && result.session_wall_mean_s > 0.0) {
        // The fork speedup: a solo session pays its own charge-up; a
        // fleet session amortizes one capture across the whole fleet.
        const double amortized =
            result.session_wall_mean_s +
            result.charge_capture_seconds /
                static_cast<double>(config.sessions);
        run_report.metric("fork_speedup", solo_mean / amortized);
      }
    }

    auto doc_value = to_json(result, config);
    auto& doc = doc_value.as_object();
    if (!verified.empty()) doc["verified_solo"] = std::move(verified);
    std::ostringstream rendered;
    rendered << doc_value.dump(2) << "\n";
    if (const int code = args.write_artifact(
            rendered.str(), std::to_string(config.sessions) + " sessions");
        code != 0) {
      close_sink();
      return code;
    }

    run_report.metric("sessions", static_cast<double>(config.sessions));
    run_report.metric("threads", static_cast<double>(config.threads));
    run_report.metric("exchanges_per_session",
                      static_cast<double>(fleet::effective_exchanges(config)));
    run_report.metric("wall_seconds", result.wall_seconds);
    run_report.metric("session_wall_mean_s", result.session_wall_mean_s);
    run_report.metric("sessions_per_second",
                      result.wall_seconds > 0.0
                          ? static_cast<double>(config.sessions) /
                                result.wall_seconds
                          : 0.0);
    run_report.metric("charge_captures",
                      static_cast<double>(result.charge_captures));
    run_report.metric("charge_capture_seconds", result.charge_capture_seconds);
    run_report.metric("checkpoint_forks",
                      static_cast<double>(result.checkpoint_forks));
    run_report.metric("lost_rate", result.lost_rate);
    run_report.metric("recovery_p50_s", result.recovery_p50_s);
    run_report.metric("recovery_p95_s", result.recovery_p95_s);
    run_report.metric("recovery_p99_s", result.recovery_p99_s);
    run_report.metric("failed", static_cast<double>(result.failed));
    run_report.metric("retried", static_cast<double>(result.retried));
    run_report.metric("quarantined", static_cast<double>(result.quarantined));
    run_report.metric("resumed", static_cast<double>(result.resumed));
    for (const auto& [code, count] : result.failures_by_code) {
      run_report.metric("failures." + code, static_cast<double>(count));
    }
    for (const auto& c : result.cohorts) {
      run_report.metric(c.name + ".lost_rate", c.lost_rate);
      run_report.metric(c.name + ".recovery_p95_s", c.recovery_p95_s);
      run_report.metric(c.name + ".mean_recovery_s", c.mean_recovery_s);
      run_report.metric(c.name + ".failure_rate", c.failure_rate);
    }
    run_report.note("fingerprint", hex64(result.fingerprint));

    if (mismatches > 0) {
      std::cerr << "fleet_runner: " << mismatches
                << " solo-parity mismatch(es)\n";
      close_sink();
      return EXIT_FAILURE;
    }
    if (result.failed > 0 || result.quarantined > 0) {
      std::cerr << "fleet_runner: " << result.failed << " failed, "
                << result.quarantined << " quarantined session(s)\n";
      close_sink();
      return EXIT_FAILURE;
    }
  } catch (const std::invalid_argument& e) {
    // Config/journal problems are usage errors, distinct from a failed
    // run — the CI wrappers rely on the 1-vs-2 split.
    std::cerr << "fleet_runner: " << e.what() << "\n";
    close_sink();
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "fleet_runner: " << e.what() << "\n";
    close_sink();
    return EXIT_FAILURE;
  }
  // Drain and close before the RunReport destructor snapshots the
  // registry, so the obs.telemetry.* counters in the BENCH file are
  // final.
  obs::TelemetrySink::instance().close();
  return 0;
}
