// Validates the telemetry artifacts the observability subsystem emits:
//   - Chrome trace_event JSON (object with "traceEvents")
//   - BENCH_<name>.json run reports (schema ironic.run_report/1)
//   - JSONL metric dumps (*.jsonl, one object per line)
// Usage: trace_validate [--min-metrics N] [--min-events N] [--require-obs]
//                       [--require <metric>]... <file>...
// --require asserts that a named metric is present in every run report or
// JSONL dump checked (repeatable) — CI uses it to pin the solver-layer
// telemetry (spice.solver.*), the streaming-sink counters
// (obs.telemetry.*), the profiler zone totals (prof.<zone>.*), and the
// cohort aggregates (cohort.*) to the artifacts the benches emit.
// --require-obs asserts that every run report checked was produced by a
// binary with observability compiled in (obs_compiled_in == true) — the
// gate that keeps obs-off stubs out of the committed BENCH_*.json files.
// Exits 0 when every file parses and satisfies its structural checks —
// the ctest smoke target runs this over a traced telemetry_session run.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/obs/json.hpp"

using ironic::obs::json::JsonError;
using ironic::obs::json::Value;

namespace {

std::string read_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open " + path);
  std::ostringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

// Chrome trace: every event needs name/ph/pid and a numeric ts; complete
// events ('X') need a numeric dur.
std::size_t validate_trace(const Value& root) {
  const auto& events = root.at("traceEvents").as_array();
  std::size_t real_events = 0;
  for (const auto& ev : events) {
    const std::string& ph = ev.at("ph").as_string();
    if (ph.size() != 1) throw std::runtime_error("bad phase '" + ph + "'");
    (void)ev.at("name").as_string();
    (void)ev.at("pid").as_double();
    if (ph == "M") continue;  // metadata has no timestamp requirement
    if (ev.at("ts").as_double() < 0.0) throw std::runtime_error("negative ts");
    if (ph == "X") (void)ev.at("dur").as_double();
    // Flow events must carry the pairing id.
    if (ph == "s" || ph == "f") (void)ev.at("id").as_double();
    ++real_events;
  }
  return real_events;
}

// Every --require name must appear in the collected metric-name set.
void check_required(const std::set<std::string>& names,
                    const std::vector<std::string>& required) {
  for (const auto& want : required) {
    if (names.count(want) == 0) {
      throw std::runtime_error("required metric '" + want + "' missing");
    }
  }
}

// Run report: identity fields plus a metrics array of {name, type, value}.
// Returns the distinct metric names seen.
std::set<std::string> validate_report(const Value& root, bool require_obs) {
  if (root.at("schema").as_string() != "ironic.run_report/1") {
    throw std::runtime_error("unknown report schema");
  }
  (void)root.at("name").as_string();
  (void)root.at("git_sha").as_string();
  if (root.at("wall_seconds").as_double() < 0.0) {
    throw std::runtime_error("negative wall_seconds");
  }
  if (require_obs) {
    if (!root.contains("obs_compiled_in") ||
        !root.at("obs_compiled_in").as_bool()) {
      throw std::runtime_error(
          "report was produced without obs compiled in (obs_compiled_in)");
    }
  }
  // Profiler breakdown, when present: structural sanity per zone.
  if (root.contains("profile")) {
    for (const auto& zone : root.at("profile").as_array()) {
      (void)zone.at("zone").as_string();
      const double calls = zone.at("calls").as_double();
      const double inclusive = zone.at("inclusive_ns").as_double();
      const double exclusive = zone.at("exclusive_ns").as_double();
      if (calls < 1.0) {
        throw std::runtime_error("profile zone '" +
                                 zone.at("zone").as_string() +
                                 "' reported with zero calls");
      }
      if (exclusive > inclusive + 0.5) {
        throw std::runtime_error("profile zone '" +
                                 zone.at("zone").as_string() +
                                 "' exclusive time exceeds inclusive");
      }
    }
  }
  std::set<std::string> names;
  for (const auto& m : root.at("metrics").as_array()) {
    (void)m.at("value").as_double();
    const std::string& type = m.at("type").as_string();
    if (type != "counter" && type != "gauge" && type != "histogram") {
      throw std::runtime_error("unknown metric type '" + type + "'");
    }
    names.insert(m.at("name").as_string());
  }
  for (const auto& [k, v] : root.at("extras").as_object()) {
    (void)v.as_double();
    names.insert(k);
  }
  return names;
}

// Returns (row count, distinct metric names).
std::pair<std::size_t, std::set<std::string>> validate_jsonl(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  std::size_t rows = 0;
  std::set<std::string> names;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const Value row = Value::parse(line);
    names.insert(row.at("name").as_string());
    (void)row.at("type").as_string();
    ++rows;
  }
  return {rows, names};
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t min_metrics = 1;
  std::size_t min_events = 1;
  bool require_obs = false;
  std::vector<std::string> required;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--min-metrics" && i + 1 < argc) {
      min_metrics = static_cast<std::size_t>(std::atol(argv[++i]));
    } else if (arg == "--min-events" && i + 1 < argc) {
      min_events = static_cast<std::size_t>(std::atol(argv[++i]));
    } else if (arg == "--require" && i + 1 < argc) {
      required.emplace_back(argv[++i]);
    } else if (arg == "--require-obs") {
      require_obs = true;
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) {
    std::cerr << "usage: trace_validate [--min-metrics N] [--min-events N] "
                 "[--require-obs] [--require <metric>]... <file>...\n";
    return 2;
  }

  for (const auto& path : files) {
    try {
      const std::string text = read_file(path);
      if (path.size() > 6 && path.substr(path.size() - 6) == ".jsonl") {
        const auto [rows, names] = validate_jsonl(text);
        if (rows < min_metrics) {
          throw std::runtime_error("only " + std::to_string(rows) + " metric rows");
        }
        check_required(names, required);
        std::cout << path << ": OK (" << rows << " metric rows)\n";
        continue;
      }
      const Value root = Value::parse(text);
      if (root.contains("traceEvents")) {
        const std::size_t events = validate_trace(root);
        if (events < min_events) {
          throw std::runtime_error("only " + std::to_string(events) + " events");
        }
        std::cout << path << ": OK (" << events << " trace events)\n";
      } else {
        const auto names = validate_report(root, require_obs);
        if (names.size() < min_metrics) {
          throw std::runtime_error("only " + std::to_string(names.size()) +
                                   " distinct metrics (need " +
                                   std::to_string(min_metrics) + ")");
        }
        check_required(names, required);
        std::cout << path << ": OK (" << names.size() << " distinct metrics)\n";
      }
    } catch (const std::exception& e) {
      std::cerr << path << ": INVALID — " << e.what() << "\n";
      return 1;
    }
  }
  return 0;
}
