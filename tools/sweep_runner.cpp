// sweep_runner — run a named parameter sweep from the command line.
//
//   sweep_runner --list
//   sweep_runner [--threads N] [--format table|csv|json] [--out FILE]
//                [--telemetry FILE|-] <name>
//
// The named sweeps mirror the paper benches (power vs distance, the coil
// design space, the tolerance Monte Carlo) but go through the declarative
// exec::Sweep layer, so the output is bit-identical for any --threads
// value — including 1 — and lands wherever --out points as a table, CSV,
// or a JSON document (obs json model).
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/tolerance.hpp"
#include "src/exec/exec.hpp"
#include "src/magnetics/coil_design.hpp"
#include "src/magnetics/link.hpp"
#include "src/obs/json.hpp"
#include "src/obs/report.hpp"
#include "src/obs/telemetry.hpp"
#include "src/spice/engine.hpp"
#include "src/util/table.hpp"
#include "tools/runner_args.hpp"

using namespace ironic;

namespace {

struct SweepDef {
  exec::Sweep sweep;
  std::vector<std::string> columns;
  exec::SweepRowFn row;
};

struct NamedSweep {
  const char* name;
  const char* description;
  SweepDef (*make)();
};

// E2: received power vs coil distance, air and sirloin, fixed drive.
SweepDef make_power_distance() {
  exec::Sweep s("power_distance");
  s.axis(exec::Axis::list(
      "distance_mm", {3.0, 4.0, 6.0, 8.0, 10.0, 13.0, 17.0, 21.0, 25.0, 30.0}));
  magnetics::LinkConfig cfg;
  cfg.distance = 6e-3;
  magnetics::InductiveLink calib{cfg};
  const double load = 150.0;
  const double drive = calib.drive_for_power(15e-3, load);
  exec::SweepRowFn row = [cfg, load, drive](const exec::SweepPoint& p) {
    const double d = p["distance_mm"] * 1e-3;
    magnetics::InductiveLink link{cfg};
    link.set_distance(d);
    const auto air = link.analyze(drive, load);
    link.set_tissue(magnetics::TissueSlab(magnetics::sirloin_properties(), d));
    const auto meat = link.analyze(drive, load);
    return std::vector<std::string>{
        util::Table::cell(p["distance_mm"], 3),
        util::Table::cell(air.power_delivered * 1e3, 4),
        util::Table::cell(meat.power_delivered * 1e3, 4),
        util::Table::cell(air.coupling, 3)};
  };
  return {std::move(s),
          {"distance_mm", "P_air_mW", "P_sirloin_mW", "k"},
          std::move(row)};
}

// E14: the implant-outline coil design space (L, Q, SRF per geometry).
SweepDef make_coil_design() {
  exec::Sweep s("coil_design");
  s.axis(exec::Axis::list("layers", {1, 2, 3, 4, 5, 6, 7, 8}))
      .axis(exec::Axis::list("turns", {1, 2, 3, 4, 5, 6}))
      .axis(exec::Axis::list("width_um", {80.0, 120.0, 160.0, 200.0}));
  const magnetics::CoilSpec base = magnetics::implant_coil_spec();
  exec::SweepRowFn row = [base](const exec::SweepPoint& p) {
    magnetics::CoilSpec spec = base;
    spec.layers = static_cast<int>(p["layers"]);
    spec.turns_per_layer = static_cast<int>(p["turns"]);
    spec.trace_width = p["width_um"] * 1e-6;
    spec.turn_spacing = spec.trace_width;
    double l = 0.0, q = 0.0, srf = 0.0;
    bool fits = false;
    try {
      const magnetics::Coil coil{spec};
      l = coil.inductance();
      q = coil.quality_factor(5e6);
      srf = coil.self_resonance_frequency();
      fits = true;
    } catch (const std::invalid_argument&) {
      // geometry outside the 38 x 2 mm outline — report a non-fitting row
    }
    return std::vector<std::string>{
        util::Table::cell(p["layers"], 2),    util::Table::cell(p["turns"], 2),
        util::Table::cell(p["width_um"], 4),  util::Table::cell(l * 1e6, 5),
        util::Table::cell(q, 5),              util::Table::cell(srf / 1e6, 5),
        util::Table::cell(fits)};
  };
  return {std::move(s),
          {"layers", "turns", "width_um", "L_uH", "Q_5MHz", "SRF_MHz", "fits"},
          std::move(row)};
}

// E12: the component-tolerance Monte Carlo, one draw per point. Draw k
// uses the point's own RNG stream, so the yield table is reproducible
// for any thread count.
SweepDef make_tolerance_mc() {
  exec::Sweep s("tolerance_mc");
  std::vector<double> draws(20);
  for (std::size_t i = 0; i < draws.size(); ++i)
    draws[i] = static_cast<double>(i);
  s.axis(exec::Axis::list("draw", std::move(draws)));
  const core::ToleranceSpec spec;
  const core::EndToEndConfig base = core::shortened_fig11_config();
  exec::SweepRowFn row = [spec, base](const exec::SweepPoint& p) {
    const auto r = core::evaluate_tolerance_draw(spec, base, p.rng());
    return std::vector<std::string>{
        util::Table::cell(p["draw"], 2),      util::Table::cell(r.charged),
        util::Table::cell(r.downlink_ok),     util::Table::cell(r.uplink_ok),
        util::Table::cell(r.regulation_ok),   util::Table::cell(r.vo_min, 4),
        util::Table::cell(r.t_charge * 1e6, 4)};
  };
  return {std::move(s),
          {"draw", "charged", "downlink", "uplink", "regulation", "vo_min_V",
           "t_charge_us"},
          std::move(row)};
}

constexpr NamedSweep kSweeps[] = {
    {"power_distance", "E2: received power vs distance, air and sirloin",
     make_power_distance},
    {"coil_design", "E14: implant coil design space (L, Q, SRF per geometry)",
     make_coil_design},
    {"tolerance_mc", "E12: component-tolerance Monte Carlo, one draw per point",
     make_tolerance_mc},
};

obs::json::Value to_json(const exec::SweepResult& result,
                         const std::vector<std::string>& columns,
                         std::size_t threads) {
  obs::json::Value::Object doc;
  doc["sweep"] = result.name;
  doc["points"] = static_cast<std::uint64_t>(result.points);
  doc["threads"] = static_cast<std::uint64_t>(threads);
  doc["wall_seconds"] = result.wall_seconds;
  obs::json::Value::Array cols;
  for (const auto& c : columns) cols.emplace_back(c);
  doc["columns"] = std::move(cols);
  obs::json::Value::Array rows;
  for (const auto& r : result.table.data()) {
    obs::json::Value::Array cells;
    for (const auto& cell : r) cells.emplace_back(cell);
    rows.emplace_back(std::move(cells));
  }
  doc["rows"] = std::move(rows);
  return obs::json::Value(std::move(doc));
}

int usage(int code) {
  std::ostream& os = code == 0 ? std::cout : std::cerr;
  os << "usage: sweep_runner [--threads N] [--format table|csv|json]\n"
        "                    [--solver auto|dense|sparse] [--out FILE] <sweep>\n"
        "       sweep_runner --list\n"
     << ironic::tools::CommonArgs::usage_lines()
     << "  --format F     table (default), csv, or json\n";
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  tools::CommonArgs args;
  args.program = "sweep_runner";
  std::string format = "table";
  std::string name;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    switch (args.consume(argc, argv, i)) {
      case tools::CommonArgs::Parse::kConsumed: continue;
      case tools::CommonArgs::Parse::kError: return usage(2);
      case tools::CommonArgs::Parse::kNotMine: break;
    }
    if (arg == "--list") {
      for (const auto& s : kSweeps)
        std::cout << s.name << "  -  " << s.description << "\n";
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      return usage(0);
    } else if (arg == "--format" && i + 1 < argc) {
      format = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "sweep_runner: unknown option '" << arg << "'\n";
      return usage(2);
    } else if (name.empty()) {
      name = arg;
    } else {
      std::cerr << "sweep_runner: more than one sweep named\n";
      return usage(2);
    }
  }
  const std::size_t threads = args.threads;
  if (name.empty()) {
    std::cerr << "sweep_runner: no sweep named (try --list)\n";
    return usage(2);
  }
  if (format != "table" && format != "csv" && format != "json") {
    std::cerr << "sweep_runner: unknown format '" << format << "'\n";
    return usage(2);
  }

  const NamedSweep* chosen = nullptr;
  for (const auto& s : kSweeps)
    if (name == s.name) chosen = &s;
  if (chosen == nullptr) {
    std::cerr << "sweep_runner: unknown sweep '" << name << "' (try --list)\n";
    return EXIT_FAILURE;
  }
  if (const int code = args.open_telemetry(); code != 0) return code;

  obs::RunReport run_report("sweep_runner");
  try {
    SweepDef def = chosen->make();
    exec::SweepOptions opts;
    opts.threads = threads;
    const auto result = def.sweep.run(def.columns, def.row, opts);

    std::ostringstream rendered;
    if (format == "table") {
      result.table.print(rendered);
      rendered << "(" << result.points << " points, "
               << util::Table::cell(result.wall_seconds * 1e3, 4) << " ms, "
               << (threads == 1 ? std::string("serial")
                                : std::to_string(threads) + " threads")
               << ")\n";
    } else if (format == "csv") {
      result.table.print_csv(rendered);
    } else {
      rendered << to_json(result, def.columns, threads).dump(2) << "\n";
    }

    if (const int code = args.write_artifact(
            rendered.str(), std::to_string(result.points) + " points");
        code != 0) {
      return code;
    }
    run_report.metric("points", static_cast<double>(result.points));
    run_report.metric("wall_seconds", result.wall_seconds);
    run_report.metric("threads", static_cast<double>(threads));
  } catch (const std::exception& e) {
    std::cerr << "sweep_runner: " << e.what() << "\n";
    return EXIT_FAILURE;
  }
  // Drain and close before the RunReport destructor snapshots the
  // registry, so the obs.telemetry.* counters in the report are final.
  obs::TelemetrySink::instance().close();
  return 0;
}
