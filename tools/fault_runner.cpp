// fault_runner — run a named fault-resilience campaign from the command
// line.
//
//   fault_runner --list
//   fault_runner [--seed S] [--scenarios N] [--exchanges N] [--threads N]
//                [--link inductive|me] [--out FILE] [--telemetry FILE|-]
//                <campaign|all>
//
// Campaigns drive the full stack (link budget, session retry/backoff,
// rectifier transients with checkpoint restart, patch degradation)
// through fault schedules and emit recovery statistics: the console/
// --out JSON carries the per-scenario detail, and the obs run report
// lands in BENCH_fault_resilience.json (recovery rate, mean time to
// recover, exchanges survived per fault class). Output is bit-identical
// for any --threads value.
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/fault/campaign.hpp"
#include "src/obs/json.hpp"
#include "src/obs/report.hpp"
#include "src/obs/telemetry.hpp"
#include "src/spice/engine.hpp"
#include "tools/runner_args.hpp"

using namespace ironic;

namespace {

obs::json::Value to_json(const fault::CampaignResult& result,
                         const fault::CampaignConfig& config) {
  obs::json::Value::Object doc;
  doc["campaign"] = result.name;
  doc["seed"] = static_cast<std::uint64_t>(config.seed);
  doc["threads"] = static_cast<std::uint64_t>(config.threads);
  doc["total_exchanges"] = static_cast<std::uint64_t>(result.total_exchanges);
  doc["completed"] = static_cast<std::uint64_t>(result.completed);
  doc["lost_measurements"] =
      static_cast<std::uint64_t>(result.lost_measurements);
  doc["retries"] = static_cast<std::uint64_t>(result.retries);
  doc["restarts"] = static_cast<std::uint64_t>(result.restarts);
  doc["checkpoints"] = static_cast<std::uint64_t>(result.checkpoints);
  doc["recovery_rate"] = result.recovery_rate;
  doc["mean_time_to_recover_s"] = result.mean_time_to_recover;
  // JSON numbers are doubles; a 64-bit fingerprint must ride as a string.
  std::ostringstream fingerprint;
  fingerprint << "0x" << std::hex << std::setw(16) << std::setfill('0')
              << result.fingerprint;
  doc["fingerprint"] = fingerprint.str();
  obs::json::Value::Object faults;
  for (int k = 0; k < fault::kFaultKindCount; ++k) {
    faults[fault::fault_kind_name(static_cast<fault::FaultKind>(k))] =
        result.faults_injected[k];
  }
  doc["faults_injected"] = std::move(faults);
  obs::json::Value::Array scenarios;
  for (const auto& s : result.scenarios) {
    obs::json::Value::Object row;
    row["index"] = static_cast<std::uint64_t>(s.index);
    row["exchanges"] = static_cast<std::uint64_t>(s.exchanges);
    row["completed"] = static_cast<std::uint64_t>(s.completed);
    row["lost"] = static_cast<std::uint64_t>(s.lost);
    row["retries"] = static_cast<std::uint64_t>(s.retries);
    row["recovered"] = static_cast<std::uint64_t>(s.recovered);
    row["backoff_seconds"] = s.backoff_seconds;
    row["rate_fallbacks"] = static_cast<std::uint64_t>(s.rate_fallbacks);
    row["restarts"] = static_cast<std::uint64_t>(s.restarts);
    row["checkpoints"] = static_cast<std::uint64_t>(s.checkpoints);
    row["ldo_violations"] = static_cast<std::uint64_t>(s.ldo_violations);
    row["brownouts"] = static_cast<std::uint64_t>(s.brownouts);
    row["final_rate_bps"] = s.final_rate;
    row["sim_time_s"] = s.sim_time;
    scenarios.emplace_back(std::move(row));
  }
  doc["scenarios"] = std::move(scenarios);
  return obs::json::Value(std::move(doc));
}

int usage(int code) {
  std::ostream& os = code == 0 ? std::cout : std::cerr;
  os << "usage: fault_runner [--seed S] [--scenarios N] [--exchanges N]\n"
        "                    [--threads N] [--link inductive|me]\n"
        "                    [--solver auto|dense|sparse]\n"
        "                    [--out FILE] <campaign|all>\n"
        "       fault_runner --list\n"
     << ironic::tools::CommonArgs::usage_lines()
     << "  --scenarios N  scenarios per campaign (default 3)\n"
        "  --exchanges N  measurement exchanges per scenario (default 10)\n"
        "  --analysis-hints\n"
        "                 run the static-analysis passes on each plant\n"
        "                 circuit and install solver/dt hints; fingerprints\n"
        "                 must not change (the hints agree with the engine)\n";
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  fault::CampaignConfig config;
  tools::CommonArgs args;
  args.program = "fault_runner";
  args.seed = config.seed;
  args.threads = config.threads;
  std::string name;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    switch (args.consume(argc, argv, i)) {
      case tools::CommonArgs::Parse::kConsumed: continue;
      case tools::CommonArgs::Parse::kError: return usage(2);
      case tools::CommonArgs::Parse::kNotMine: break;
    }
    if (arg == "--list") {
      for (const auto& campaign : fault::campaign_names())
        std::cout << campaign << "\n";
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      return usage(0);
    } else if (arg == "--scenarios" && i + 1 < argc) {
      config.scenarios = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else if (arg == "--exchanges" && i + 1 < argc) {
      config.exchanges = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else if (arg == "--analysis-hints") {
      config.analysis_hints = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "fault_runner: unknown option '" << arg << "'\n";
      return usage(2);
    } else if (name.empty()) {
      name = arg;
    } else {
      std::cerr << "fault_runner: more than one campaign named\n";
      return usage(2);
    }
  }
  config.seed = args.seed;
  config.threads = args.threads;
  config.link = args.link;
  if (name.empty()) {
    std::cerr << "fault_runner: no campaign named (try --list)\n";
    return usage(2);
  }
  if (name != "all" && !fault::is_campaign(name)) {
    std::cerr << "fault_runner: unknown campaign '" << name << "' (try --list)\n";
    return 2;
  }
  if (const int code = args.open_telemetry(); code != 0) return code;

  std::vector<std::string> names;
  if (name == "all") {
    names = fault::campaign_names();
  } else {
    names.push_back(name);
  }

  obs::RunReport run_report("fault_resilience");
  try {
    obs::json::Value::Array campaigns;
    for (const auto& campaign_name : names) {
      fault::CampaignConfig one = config;
      one.name = campaign_name;
      const auto result = fault::run_campaign(one);
      campaigns.emplace_back(to_json(result, one));
      run_report.metric(campaign_name + ".recovery_rate", result.recovery_rate);
      run_report.metric(campaign_name + ".mean_time_to_recover_s",
                        result.mean_time_to_recover);
      run_report.metric(campaign_name + ".lost_measurements",
                        static_cast<double>(result.lost_measurements));
      run_report.metric(campaign_name + ".exchanges_survived",
                        static_cast<double>(result.completed));
      run_report.metric(campaign_name + ".retries",
                        static_cast<double>(result.retries));
      run_report.metric(campaign_name + ".restarts",
                        static_cast<double>(result.restarts));
      std::cerr << "fault_runner: " << campaign_name << " recovery_rate="
                << result.recovery_rate << " lost=" << result.lost_measurements
                << " retries=" << result.retries << " restarts="
                << result.restarts << "\n";
    }
    obs::json::Value::Object doc;
    doc["campaigns"] = std::move(campaigns);
    std::ostringstream rendered;
    rendered << obs::json::Value(std::move(doc)).dump(2) << "\n";

    if (const int code = args.write_artifact(
            rendered.str(), std::to_string(names.size()) + " campaign(s)");
        code != 0) {
      return code;
    }
  } catch (const std::exception& e) {
    std::cerr << "fault_runner: " << e.what() << "\n";
    return EXIT_FAILURE;
  }
  // Drain and close before the RunReport destructor snapshots the
  // registry, so the obs.telemetry.* counters in the BENCH file are
  // final (including the flush-on-exit).
  obs::TelemetrySink::instance().close();
  return 0;
}
