// Shared command-line plumbing for the runner family (fault_runner,
// sweep_runner, fleet_runner): the flags every runner repeats
// (--seed/--threads/--solver/--out/--telemetry), the exit-2 contract
// for unwritable artifact and telemetry paths, and the canonical help
// text for the shared flags — one implementation instead of three
// drifting copies.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "src/linalg/solver.hpp"
#include "src/link/phy.hpp"
#include "src/obs/telemetry.hpp"
#include "src/spice/engine.hpp"

namespace ironic::tools {

struct CommonArgs {
  std::string program;  // argv[0] basename, for diagnostics
  std::uint64_t seed = 0;
  std::size_t threads = 1;  // 1 = serial, 0 = hardware concurrency
  std::string link = "inductive";  // LinkPhy backend name
  std::string out_path;
  std::string telemetry_path;

  enum class Parse { kConsumed, kNotMine, kError };

  // Consume argv[i] when it is one of the shared flags, advancing i
  // past the flag's value. kError means the diagnostic was already
  // printed (the caller returns its usage). A flag named without its
  // value is kNotMine, so the caller's unknown-option path reports it.
  Parse consume(int argc, char** argv, int& i) {
    const std::string arg = argv[i];
    if (arg == "--seed" && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 0);
      return Parse::kConsumed;
    }
    if (arg == "--threads" && i + 1 < argc) {
      threads = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
      return Parse::kConsumed;
    }
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
      return Parse::kConsumed;
    }
    if (arg == "--telemetry" && i + 1 < argc) {
      telemetry_path = argv[++i];
      return Parse::kConsumed;
    }
    if (arg == "--link" && i + 1 < argc) {
      link = argv[++i];
      if (!link::is_backend(link)) {
        std::cerr << program << ": unknown link backend '" << link
                  << "' (want";
        const char* sep = " ";
        for (const auto& name : link::backend_names()) {
          std::cerr << sep << name;
          sep = ", ";
        }
        std::cerr << ")\n";
        return Parse::kError;
      }
      return Parse::kConsumed;
    }
    if (arg == "--solver" && i + 1 < argc) {
      linalg::SolverKind kind;
      if (!linalg::parse_solver_kind(argv[++i], kind)) {
        std::cerr << program << ": unknown solver '" << argv[i]
                  << "' (want auto, dense, or sparse)\n";
        return Parse::kError;
      }
      spice::set_default_solver_kind(kind);
      return Parse::kConsumed;
    }
    return Parse::kNotMine;
  }

  // The canonical help block for the shared flags, indented to match
  // the runners' usage text.
  static const char* usage_lines() {
    return "  --seed S       deterministic run seed (any --threads value is\n"
           "                 bit-identical for a fixed seed)\n"
           "  --threads N    worker threads (1 = serial, 0 = hardware)\n"
           "  --link B       LinkPhy backend for power delivery + modulation:\n"
           "                 inductive (default; ASK/LSK coil link) or me\n"
           "                 (magnetoelectric, PWM backscatter); exits 2 on\n"
           "                 an unknown backend name\n"
           "  --solver S     linear-solver backend for embedded circuit\n"
           "                 solves: auto (default), dense, sparse\n"
           "  --out FILE     write the JSON results to FILE instead of stdout\n"
           "  --telemetry F  stream JSONL telemetry events to F ('-' =\n"
           "                 stdout); exits 2 when F cannot be opened\n";
  }

  // Open the telemetry sink when --telemetry was given. Returns 0, or 2
  // with the diagnostic printed — "could not write the artifact" is
  // distinct from a failed run, and CI wrappers rely on the split.
  int open_telemetry() const {
    if (telemetry_path.empty()) return 0;
    if (!obs::TelemetrySink::instance().open(telemetry_path)) {
      std::cerr << program << ": cannot open '" << telemetry_path
                << "' for telemetry\n";
      return 2;
    }
    return 0;
  }

  // Write `rendered` to --out, or stdout when --out was not given.
  // Returns 0, or 2 with the diagnostic printed when the path cannot be
  // opened or the write fails. `what` names the artifact in the
  // success line ("3 campaign(s)", "1000 sessions", ...).
  int write_artifact(const std::string& rendered, const std::string& what) const {
    if (out_path.empty()) {
      std::cout << rendered;
      return 0;
    }
    std::ofstream out(out_path);
    if (!out) {
      std::cerr << program << ": cannot open '" << out_path
                << "' for writing\n";
      return 2;
    }
    out << rendered;
    if (!out) {
      std::cerr << program << ": write to '" << out_path << "' failed\n";
      return 2;
    }
    std::cout << program << ": wrote " << what << " to " << out_path << "\n";
    return 0;
  }
};

}  // namespace ironic::tools
