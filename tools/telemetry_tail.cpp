// telemetry_tail — filter and pretty-print a streaming JSONL telemetry
// file produced by `fault_runner --telemetry` / `sweep_runner
// --telemetry` (or any TelemetrySink output).
//
//   telemetry_tail [--stream S] [--event E] [--grep SUBSTR]
//                  [--stats] [--raw] <file|->
//
// Each input line is one JSON object with at least {"ts_us", "stream",
// "event"}. Default output is a human-oriented rendering:
//
//   [  1.234s] fault.session  rate_fallback   quality=0.42 rate_bps=50000
//
// --stream / --event select matching rows (exact match, repeatable
// semantics: last flag wins), --grep keeps rows whose raw text contains
// the substring, --raw echoes the matching JSON lines unchanged, and
// --stats appends per-stream/event counts. A torn final line (the
// producer was killed mid-write) is tolerated and counted, not fatal.
// Exits 2 when the input cannot be opened, matching the runners'
// unwritable-path contract; 1 on malformed flags.
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/obs/json.hpp"

using ironic::obs::json::Value;

namespace {

int usage(int code) {
  std::ostream& os = code == 0 ? std::cout : std::cerr;
  os << "usage: telemetry_tail [--stream S] [--event E] [--grep SUBSTR]\n"
        "                      [--stats] [--raw] <file|->\n"
        "  --stream S   only rows whose \"stream\" equals S\n"
        "  --event E    only rows whose \"event\" equals E\n"
        "  --grep T     only rows whose raw JSON contains T\n"
        "  --raw        echo matching JSON lines instead of pretty text\n"
        "  --stats      append per-stream/event row counts\n"
        "  file         JSONL telemetry stream; '-' reads stdin\n";
  return code;
}

// Render one parsed row as a fixed-width human line; unknown extra
// fields ride along as key=value pairs in row order.
std::string pretty(const Value& row) {
  std::ostringstream os;
  const double ts_s = row.contains("ts_us") ? row.at("ts_us").as_double() / 1e6
                                            : 0.0;
  os << '[' << std::setw(9) << std::fixed << std::setprecision(3) << ts_s
     << "s] ";
  const std::string stream =
      row.contains("stream") ? row.at("stream").as_string() : "?";
  const std::string event =
      row.contains("event") ? row.at("event").as_string() : "?";
  os << std::left << std::setw(14) << stream << ' ' << std::setw(16) << event;
  for (const auto& [key, value] : row.as_object()) {
    if (key == "ts_us" || key == "stream" || key == "event") continue;
    os << ' ' << key << '=';
    if (value.is_string()) {
      os << value.as_string();
    } else {
      os << value.dump();
    }
  }
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string stream_filter;
  std::string event_filter;
  std::string grep;
  bool stats = false;
  bool raw = false;
  std::string path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      return usage(0);
    } else if (arg == "--stream" && i + 1 < argc) {
      stream_filter = argv[++i];
    } else if (arg == "--event" && i + 1 < argc) {
      event_filter = argv[++i];
    } else if (arg == "--grep" && i + 1 < argc) {
      grep = argv[++i];
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--raw") {
      raw = true;
    } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
      std::cerr << "telemetry_tail: unknown option '" << arg << "'\n";
      return usage(1);
    } else if (path.empty()) {
      path = arg;
    } else {
      std::cerr << "telemetry_tail: more than one input named\n";
      return usage(1);
    }
  }
  if (path.empty()) {
    std::cerr << "telemetry_tail: no input named\n";
    return usage(1);
  }

  std::ifstream file;
  std::istream* in = &std::cin;
  if (path != "-") {
    file.open(path);
    if (!file) {
      std::cerr << "telemetry_tail: cannot open '" << path << "'\n";
      return 2;
    }
    in = &file;
  }

  std::size_t matched = 0;
  std::size_t total = 0;
  std::size_t malformed = 0;
  std::map<std::string, std::size_t> counts;  // "stream/event" -> rows
  std::string line;
  while (std::getline(*in, line)) {
    if (line.empty()) continue;
    ++total;
    Value row;
    try {
      row = Value::parse(line);
    } catch (const std::exception&) {
      ++malformed;
      continue;
    }
    if (!row.is_object()) {
      ++malformed;
      continue;
    }
    const std::string stream =
        row.contains("stream") ? row.at("stream").as_string() : "?";
    const std::string event =
        row.contains("event") ? row.at("event").as_string() : "?";
    if (!stream_filter.empty() && stream != stream_filter) continue;
    if (!event_filter.empty() && event != event_filter) continue;
    if (!grep.empty() && line.find(grep) == std::string::npos) continue;
    ++matched;
    ++counts[stream + "/" + event];
    if (raw) {
      std::cout << line << "\n";
    } else {
      std::cout << pretty(row) << "\n";
    }
  }

  if (stats) {
    std::cout << "---\n";
    for (const auto& [key, n] : counts) {
      std::cout << std::left << std::setw(32) << key << ' ' << n << "\n";
    }
    std::cout << "matched " << matched << " of " << total << " rows";
    if (malformed > 0) std::cout << " (" << malformed << " malformed)";
    std::cout << "\n";
  }
  return 0;
}
