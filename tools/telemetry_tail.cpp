// telemetry_tail — filter and pretty-print a streaming JSONL telemetry
// file produced by `fault_runner --telemetry` / `sweep_runner
// --telemetry` (or any TelemetrySink output).
//
//   telemetry_tail [--stream S] [--event E] [--grep SUBSTR]
//                  [--stats] [--raw] [--follow [--idle-exit SECS]] <file|->
//
// Each input line is one JSON object with at least {"ts_us", "stream",
// "event"}. Default output is a human-oriented rendering:
//
//   [  1.234s] fault.session  rate_fallback   quality=0.42 rate_bps=50000
//
// --stream / --event select matching rows (exact match, repeatable
// semantics: last flag wins), --grep keeps rows whose raw text contains
// the substring, --raw echoes the matching JSON lines unchanged, and
// --stats appends per-stream/event counts. A torn final line (the
// producer was killed mid-write) is tolerated and counted, not fatal.
//
// --follow keeps the file open after EOF and emits new rows as the
// producer appends them (a live fleet soak), polling every 50 ms. A
// line is only consumed once its newline has landed — a partially
// flushed tail is left in the file, never half-parsed. --idle-exit S
// stops following after S seconds with no new data (0 = follow
// forever), so scripted consumers (the CI fleet stage) terminate.
// Follow requires a real file; stdin is already a stream.
//
// Exits 2 when the input cannot be opened, matching the runners'
// unwritable-path contract; 1 on malformed flags.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/json.hpp"

using ironic::obs::json::Value;

namespace {

int usage(int code) {
  std::ostream& os = code == 0 ? std::cout : std::cerr;
  os << "usage: telemetry_tail [--stream S] [--event E] [--grep SUBSTR]\n"
        "                      [--stats] [--raw] [--follow [--idle-exit S]]\n"
        "                      <file|->\n"
        "  --stream S    only rows whose \"stream\" equals S\n"
        "  --event E     only rows whose \"event\" equals E\n"
        "  --grep T      only rows whose raw JSON contains T\n"
        "  --raw         echo matching JSON lines instead of pretty text\n"
        "  --stats       append per-stream/event row counts\n"
        "  --follow      keep the file open and emit rows as they are\n"
        "                appended (files only, not stdin)\n"
        "  --idle-exit S stop following after S seconds without new data\n"
        "                (default 0 = follow forever)\n"
        "  file          JSONL telemetry stream; '-' reads stdin\n";
  return code;
}

// Render one parsed row as a fixed-width human line; unknown extra
// fields ride along as key=value pairs in row order.
std::string pretty(const Value& row) {
  std::ostringstream os;
  const double ts_s = row.contains("ts_us") ? row.at("ts_us").as_double() / 1e6
                                            : 0.0;
  os << '[' << std::setw(9) << std::fixed << std::setprecision(3) << ts_s
     << "s] ";
  const std::string stream =
      row.contains("stream") ? row.at("stream").as_string() : "?";
  const std::string event =
      row.contains("event") ? row.at("event").as_string() : "?";
  os << std::left << std::setw(14) << stream << ' ' << std::setw(16) << event;
  for (const auto& [key, value] : row.as_object()) {
    if (key == "ts_us" || key == "stream" || key == "event") continue;
    os << ' ' << key << '=';
    if (value.is_string()) {
      os << value.as_string();
    } else {
      os << value.dump();
    }
  }
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string stream_filter;
  std::string event_filter;
  std::string grep;
  bool stats = false;
  bool raw = false;
  bool follow = false;
  double idle_exit = 0.0;
  std::string path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      return usage(0);
    } else if (arg == "--stream" && i + 1 < argc) {
      stream_filter = argv[++i];
    } else if (arg == "--event" && i + 1 < argc) {
      event_filter = argv[++i];
    } else if (arg == "--grep" && i + 1 < argc) {
      grep = argv[++i];
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--raw") {
      raw = true;
    } else if (arg == "--follow") {
      follow = true;
    } else if (arg == "--idle-exit" && i + 1 < argc) {
      idle_exit = std::strtod(argv[++i], nullptr);
    } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
      std::cerr << "telemetry_tail: unknown option '" << arg << "'\n";
      return usage(1);
    } else if (path.empty()) {
      path = arg;
    } else {
      std::cerr << "telemetry_tail: more than one input named\n";
      return usage(1);
    }
  }
  if (path.empty()) {
    std::cerr << "telemetry_tail: no input named\n";
    return usage(1);
  }
  if (follow && path == "-") {
    std::cerr << "telemetry_tail: --follow needs a file (stdin is already a "
                 "stream)\n";
    return usage(1);
  }

  std::ifstream file;
  std::istream* in = &std::cin;
  if (path != "-") {
    file.open(path);
    if (!file) {
      std::cerr << "telemetry_tail: cannot open '" << path << "'\n";
      return 2;
    }
    in = &file;
  }

  std::size_t matched = 0;
  std::size_t total = 0;
  std::size_t malformed = 0;
  std::map<std::string, std::size_t> counts;  // "stream/event" -> rows

  const auto process_line = [&](const std::string& line) {
    if (line.empty()) return;
    ++total;
    Value row;
    try {
      row = Value::parse(line);
    } catch (const std::exception&) {
      ++malformed;
      return;
    }
    if (!row.is_object()) {
      ++malformed;
      return;
    }
    const std::string stream =
        row.contains("stream") ? row.at("stream").as_string() : "?";
    const std::string event =
        row.contains("event") ? row.at("event").as_string() : "?";
    if (!stream_filter.empty() && stream != stream_filter) return;
    if (!event_filter.empty() && event != event_filter) return;
    if (!grep.empty() && line.find(grep) == std::string::npos) return;
    ++matched;
    ++counts[stream + "/" + event];
    if (raw) {
      std::cout << line << "\n";
    } else {
      std::cout << pretty(row) << "\n";
    }
    std::cout.flush();
  };

  std::string line;
  if (!follow) {
    while (std::getline(*in, line)) process_line(line);
  } else {
    // Tail the growing file: consume only newline-terminated lines (a
    // getline that hits EOF mid-line is a partial flush — rewind and
    // wait for the rest), poll for appended data, and give up after
    // idle_exit seconds of silence when one was requested.
    auto last_data = std::chrono::steady_clock::now();
    std::streampos pos = file.tellg();
    while (true) {
      bool consumed = false;
      if (std::getline(file, line) && !file.eof()) {
        pos = file.tellg();
        process_line(line);
        consumed = true;
      } else {
        file.clear();
        file.seekg(pos);
      }
      if (consumed) {
        last_data = std::chrono::steady_clock::now();
        continue;
      }
      if (idle_exit > 0.0) {
        const std::chrono::duration<double> idle =
            std::chrono::steady_clock::now() - last_data;
        if (idle.count() >= idle_exit) break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }

  if (stats) {
    std::cout << "---\n";
    for (const auto& [key, n] : counts) {
      std::cout << std::left << std::setw(32) << key << ' ' << n << "\n";
    }
    std::cout << "matched " << matched << " of " << total << " rows";
    if (malformed > 0) std::cout << " (" << malformed << " malformed)";
    std::cout << "\n";
  }
  return 0;
}
