// netlist_analyze: whole-netlist static analysis from the command line.
// Parses each .cir file into a Circuit and runs the full analysis
// pipeline (src/spice/analysis/analysis.hpp): lint, interval operating
// envelopes, symbolic sparsity/fill prediction with the dense/sparse
// cost-model choice, and timescale/stiffness planning. Parse failures
// are reported as lint.parse-error diagnostics rather than crashes, so
// a CI sweep over a directory of netlists always completes.
//
// Usage:
//   netlist_analyze [options] <netlist.cir> [more.cir ...]
//   netlist_analyze --json --strict examples/netlists/*.cir
//
// Options:
//   --json     machine-readable AnalysisReport on stdout (one object)
//   --strict   warnings also fail the run (exit 1)
//   --dc       analyze for a DC operating point (inductor loops and
//              current cutsets become lint errors)
//   --horizon S  transient horizon for breakpoint density [s] (default 1e-3)
//   --quiet    print nothing for clean files
//   -          read one netlist from stdin
//
// Exit codes: 0 all files clean (or warnings without --strict),
//             1 analysis errors (or warnings with --strict),
//             2 usage or I/O error.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/obs/json.hpp"
#include "src/obs/report.hpp"
#include "src/spice/analysis/analysis.hpp"
#include "src/spice/circuit.hpp"
#include "src/spice/netlist_parser.hpp"

namespace {

struct FileReport {
  std::string file;
  ironic::spice::analysis::AnalysisReport report;
};

int usage(std::ostream& os) {
  os << "usage: netlist_analyze [--json] [--strict] [--dc] [--horizon S]\n"
        "                       [--quiet] <netlist.cir> [more.cir ...] | -\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using ironic::spice::Circuit;
  using ironic::spice::Diagnostic;
  using ironic::spice::Severity;
  using ironic::spice::analysis::AnalysisOptions;

  bool json = false, strict = false, quiet = false;
  AnalysisOptions options;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--strict") {
      strict = true;
    } else if (arg == "--dc") {
      options.dc_context = true;
    } else if (arg == "--horizon" && i + 1 < argc) {
      options.transient_horizon = std::strtod(argv[++i], nullptr);
      if (!(options.transient_horizon > 0.0)) {
        std::cerr << "netlist_analyze: --horizon must be > 0\n";
        return 2;
      }
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      return 0;
    } else if (arg.size() > 1 && arg[0] == '-') {
      std::cerr << "netlist_analyze: unknown option '" << arg << "'\n";
      return usage(std::cerr);
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) return usage(std::cerr);

  // BENCH_netlist_analyze.json carries the spice.analysis.* pass
  // counters/timers for the CI schema pin.
  ironic::obs::RunReport run_report("netlist_analyze");

  std::vector<FileReport> results;
  for (const auto& file : files) {
    std::string text;
    if (file == "-") {
      std::ostringstream ss;
      ss << std::cin.rdbuf();
      text = ss.str();
    } else {
      std::ifstream in(file);
      if (!in) {
        std::cerr << "netlist_analyze: cannot open '" << file << "'\n";
        return 2;
      }
      std::ostringstream ss;
      ss << in.rdbuf();
      text = ss.str();
    }

    FileReport fr;
    fr.file = file;
    Circuit circuit;
    try {
      ironic::spice::parse_netlist(circuit, text);
      fr.report = ironic::spice::analysis::analyze(circuit, options);
    } catch (const std::exception& e) {
      fr.report.lint.diagnostics.push_back(
          Diagnostic{Severity::kError, "lint.parse-error", "", "", e.what()});
    }
    results.push_back(std::move(fr));
  }

  std::size_t total_errors = 0, total_warnings = 0;
  for (const auto& fr : results) {
    total_errors += fr.report.errors();
    total_warnings += fr.report.warnings();
  }

  if (json) {
    using ironic::obs::json::Value;
    Value::Array file_array;
    for (const auto& fr : results) {
      // Graft the filename into the report's own JSON, keeping one
      // source of truth for the AnalysisReport schema.
      Value report = Value::parse(fr.report.to_json());
      report.as_object()["file"] = fr.file;
      file_array.push_back(std::move(report));
    }
    Value::Object root;
    root["files"] = std::move(file_array);
    root["errors"] = static_cast<std::uint64_t>(total_errors);
    root["warnings"] = static_cast<std::uint64_t>(total_warnings);
    root["strict"] = strict;
    std::cout << Value(std::move(root)).dump(2) << "\n";
  } else {
    for (const auto& fr : results) {
      const bool clean =
          fr.report.errors() == 0 && fr.report.warnings() == 0;
      if (clean && quiet) continue;
      std::cout << "== " << fr.file << " ==\n" << fr.report.to_text();
    }
    if (!quiet || total_errors + total_warnings > 0) {
      std::cout << results.size() << " file(s): " << total_errors
                << " error(s), " << total_warnings << " warning(s)\n";
    }
  }

  if (total_errors > 0) return 1;
  if (strict && total_warnings > 0) return 1;
  return 0;
}
