// netlist_lint: static verification of SPICE netlists from the command
// line. Parses each .cir file into a Circuit and runs the full lint rule
// catalog (src/spice/lint.hpp); parse failures are reported as
// lint.parse-error diagnostics rather than crashes, so a CI sweep over a
// directory of netlists always produces a complete report.
//
// Usage:
//   netlist_lint [options] <netlist.cir> [more.cir ...]
//   netlist_lint --json --strict examples/netlists/*.cir
//
// Options:
//   --json          machine-readable report on stdout (one JSON object)
//   --strict        warnings also fail the run (exit 1)
//   --dc            lint for a DC operating-point analysis (inductor
//                   loops and current cutsets become errors)
//   --no-magnitude  disable the unit-suffix magnitude heuristics
//   --quiet         print nothing for clean files
//   -               read one netlist from stdin
//
// Exit codes: 0 all files clean (or warnings without --strict),
//             1 lint errors (or warnings with --strict),
//             2 usage or I/O error.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/obs/json.hpp"
#include "src/spice/circuit.hpp"
#include "src/spice/lint.hpp"
#include "src/spice/netlist_parser.hpp"

namespace {

struct FileReport {
  std::string file;
  ironic::spice::LintReport report;
};

int usage(std::ostream& os) {
  os << "usage: netlist_lint [--json] [--strict] [--dc] [--no-magnitude] [--quiet]\n"
        "                    <netlist.cir> [more.cir ...] | -\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using ironic::spice::Circuit;
  using ironic::spice::Diagnostic;
  using ironic::spice::LintOptions;
  using ironic::spice::Severity;

  bool json = false, strict = false, quiet = false;
  LintOptions options;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--strict") {
      strict = true;
    } else if (arg == "--dc") {
      options.dc_context = true;
    } else if (arg == "--no-magnitude") {
      options.magnitude_checks = false;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      return 0;
    } else if (arg.size() > 1 && arg[0] == '-') {
      std::cerr << "netlist_lint: unknown option '" << arg << "'\n";
      return usage(std::cerr);
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) return usage(std::cerr);

  std::vector<FileReport> results;
  for (const auto& file : files) {
    std::string text;
    if (file == "-") {
      std::ostringstream ss;
      ss << std::cin.rdbuf();
      text = ss.str();
    } else {
      std::ifstream in(file);
      if (!in) {
        std::cerr << "netlist_lint: cannot open '" << file << "'\n";
        return 2;
      }
      std::ostringstream ss;
      ss << in.rdbuf();
      text = ss.str();
    }

    FileReport fr;
    fr.file = file;
    Circuit circuit;
    try {
      ironic::spice::parse_netlist(circuit, text);
      fr.report = ironic::spice::lint(circuit, options);
    } catch (const std::exception& e) {
      fr.report.diagnostics.push_back(
          Diagnostic{Severity::kError, "lint.parse-error", "", "", e.what()});
    }
    results.push_back(std::move(fr));
  }

  std::size_t total_errors = 0, total_warnings = 0;
  for (const auto& fr : results) {
    total_errors += fr.report.errors();
    total_warnings += fr.report.warnings();
  }

  if (json) {
    using ironic::obs::json::Value;
    Value::Array file_array;
    for (const auto& fr : results) {
      // Re-use the report's own JSON and graft the filename in, keeping
      // one source of truth for the diagnostic schema.
      Value report = Value::parse(fr.report.to_json());
      report.as_object()["file"] = fr.file;
      file_array.push_back(std::move(report));
    }
    Value::Object root;
    root["files"] = std::move(file_array);
    root["errors"] = static_cast<std::uint64_t>(total_errors);
    root["warnings"] = static_cast<std::uint64_t>(total_warnings);
    root["strict"] = strict;
    std::cout << Value(std::move(root)).dump(2) << "\n";
  } else {
    for (const auto& fr : results) {
      if (fr.report.clean()) {
        if (!quiet) std::cout << fr.file << ": OK\n";
        continue;
      }
      for (const auto& d : fr.report.diagnostics) {
        std::cout << fr.file << ": " << d.to_string() << "\n";
      }
    }
    if (!quiet || total_errors + total_warnings > 0) {
      std::cout << results.size() << " file(s): " << total_errors << " error(s), "
                << total_warnings << " warning(s)\n";
    }
  }

  if (total_errors > 0) return 1;
  if (strict && total_warnings > 0) return 1;
  return 0;
}
