// E3 — Sec. III-B: patch battery life. Paper: ~10 h idle (bluetooth
// disconnected, no power transfer), ~3.5 h bluetooth-connected, ~1.5 h
// transmitting power continuously.
#include <iostream>

#include "src/patch/controller.hpp"
#include "src/util/table.hpp"

#include "src/obs/report.hpp"

using namespace ironic;
using namespace ironic::patch;

int main() {
  ironic::obs::RunReport run_report("battery_life");
  std::cout << "E3 — IronIC patch battery life by operating state\n"
            << "Paper: 10 h idle / 3.5 h connected / 1.5 h powering.\n\n";

  const PatchPowerSpec power;
  const BatterySpec battery;

  util::Table t({"state", "current (mA)", "run time (h)", "paper (h)"});
  const auto row = [&](PatchState s, const char* paper) {
    t.add_row({to_string(s), util::Table::cell(state_current(power, s) * 1e3, 3),
               util::Table::cell(state_run_time(power, s, battery.capacity_mah) / 3600.0, 3),
               paper});
  };
  row(PatchState::kIdle, "10");
  row(PatchState::kConnected, "3.5");
  row(PatchState::kPowering, "1.5");
  row(PatchState::kDownlink, "-");
  row(PatchState::kUplink, "-");
  t.print(std::cout);

  std::cout << "\nDuty-cycled mission profiles (battery "
            << battery.capacity_mah << " mAh):\n";
  util::Table d({"profile", "avg current (mA)", "run time (h)"});
  const auto profile_row = [&](const char* name, DutyProfile p) {
    const double avg = average_current(power, p);
    d.add_row({name, util::Table::cell(avg * 1e3, 3),
               util::Table::cell(battery.capacity_mah * 3.6 / avg / 3600.0, 3)});
  };
  profile_row("continuous monitoring (80% idle, 15% powering, 5% uplink)",
              {0.80, 0.0, 0.15, 0.0, 0.05});
  profile_row("spot checks (95% idle, 4% powering, 1% downlink)",
              {0.95, 0.0, 0.04, 0.01, 0.0});
  profile_row("clinic session (50% connected, 40% powering, 10% uplink)",
              {0.0, 0.50, 0.40, 0.0, 0.10});
  d.print(std::cout);

  // Event-driven session through the controller FSM (energy ledger).
  std::cout << "\nFSM session: connect -> power 20 min -> uplink bursts -> idle\n";
  PatchController pc(power, battery);
  pc.handle(PatchEvent::kBtConnect);
  pc.advance(120.0);
  pc.handle(PatchEvent::kStartPowering);
  for (int burst = 0; burst < 10; ++burst) {
    pc.advance(110.0);
    pc.handle(PatchEvent::kReceiveUplink);
    pc.advance(10.0);
    pc.handle(PatchEvent::kBurstDone);
  }
  pc.handle(PatchEvent::kStopPowering);
  pc.handle(PatchEvent::kBtDisconnect);
  std::cout << "  after " << pc.time() / 60.0 << " min: SoC = "
            << pc.battery().state_of_charge() * 100.0 << " %, remaining idle time = "
            << pc.remaining_runtime() / 3600.0 << " h\n";
  return 0;
}
