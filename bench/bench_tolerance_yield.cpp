// E12 (extension) — Monte-Carlo component-tolerance yield of the power-
// management module on the (shortened) Fig. 11 scenario: the robustness
// analysis the paper's "future works ... characterization by means of
// measurements" points toward.
//
// Every scenario runs twice — serially and fanned out over the
// work-stealing pool — and the bench fails unless the two aggregates
// (and every per-draw detail) are bit-identical: draw k always comes
// from RNG stream k no matter which worker executes it.
#include <cmath>
#include <cstdlib>
#include <iostream>

#include "src/core/tolerance.hpp"
#include "src/exec/exec.hpp"
#include "src/util/table.hpp"

#include "src/obs/report.hpp"

using namespace ironic;

namespace {

bool identical(const core::ToleranceResult& a, const core::ToleranceResult& b) {
  if (a.runs != b.runs || a.pass_charged != b.pass_charged ||
      a.pass_downlink != b.pass_downlink || a.pass_uplink != b.pass_uplink ||
      a.pass_regulation != b.pass_regulation || a.pass_all != b.pass_all ||
      a.vo_min_worst != b.vo_min_worst) {
    return false;
  }
  for (std::size_t k = 0; k < a.details.size(); ++k) {
    const auto& x = a.details[k];
    const auto& y = b.details[k];
    if (x.charged != y.charged || x.downlink_ok != y.downlink_ok ||
        x.uplink_ok != y.uplink_ok || x.regulation_ok != y.regulation_ok ||
        x.vo_min != y.vo_min || x.t_charge != y.t_charge) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  ironic::obs::RunReport run_report("tolerance_yield");
  std::cout << "E12 — component-tolerance Monte Carlo (shortened Fig. 11)\n"
            << "Perturbed per draw: Co, drive level, demodulator threshold,\n"
            << "rectifier diode Is. 20 seeded draws per row, each row checked\n"
            << "bit-identical serial vs 4-thread pool.\n\n";

  exec::ThreadPool pool(4);
  const auto base = core::shortened_fig11_config();
  double serial_s = 0.0;
  double parallel_s = 0.0;
  bool all_identical = true;

  util::Table t({"scenario", "charged", "downlink", "uplink", "regulation",
                 "yield", "worst Vo min (V)"});
  const auto row = [&](const char* name, const core::ToleranceSpec& spec) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto serial = core::run_tolerance_analysis(spec, base);
    const auto t1 = std::chrono::steady_clock::now();
    const auto parallel = core::run_tolerance_analysis(spec, base, pool);
    const auto t2 = std::chrono::steady_clock::now();
    serial_s += std::chrono::duration<double>(t1 - t0).count();
    parallel_s += std::chrono::duration<double>(t2 - t1).count();
    if (!identical(serial, parallel)) {
      std::cerr << "FAIL: serial/parallel mismatch for scenario '" << name << "'\n";
      all_identical = false;
    }
    const auto& r = serial;
    t.add_row({name,
               util::Table::cell(static_cast<double>(r.pass_charged), 3) + "/" +
                   util::Table::cell(static_cast<double>(r.runs), 3),
               util::Table::cell(static_cast<double>(r.pass_downlink), 3),
               util::Table::cell(static_cast<double>(r.pass_uplink), 3),
               util::Table::cell(static_cast<double>(r.pass_regulation), 3),
               util::Table::cell(r.yield(), 3),
               util::Table::cell(r.vo_min_worst, 4)});
  };

  core::ToleranceSpec nominal;
  row("nominal tolerances (10% Co, 5% drive, 4% Vth)", nominal);

  core::ToleranceSpec loose = nominal;
  loose.storage_cap_tol = 0.20;
  loose.diode_is_tol = 0.6;
  row("loose passives (20% Co, wide diode spread)", loose);

  core::ToleranceSpec misplaced = nominal;
  misplaced.drive_tol = 0.20;
  row("sloppy patch placement (20% drive spread)", misplaced);

  core::ToleranceSpec comparator = nominal;
  comparator.threshold_tol = 0.15;
  row("uncalibrated comparator (15% threshold spread)", comparator);

  t.print(std::cout);
  if (!all_identical) return EXIT_FAILURE;
  std::cout << "\nAll four scenarios bit-identical serial vs parallel ("
            << util::Table::cell(serial_s, 3) << " s serial, "
            << util::Table::cell(parallel_s, 3) << " s on 4 threads).\n";
  run_report.metric("mc_serial_seconds", serial_s);
  run_report.metric("mc_parallel_seconds", parallel_s);
  run_report.metric("mc_speedup",
                    parallel_s > 0.0 ? serial_s / parallel_s : 0.0);
  std::cout << "\nReading: regulation and charging are robust; the downlink\n"
            << "decision threshold is the yield-limiting spread, matching the\n"
            << "paper's choice to set modulation depth with a resistor divider\n"
            << "(trimmable) rather than an absolute reference.\n";
  return 0;
}
