// E12 (extension) — Monte-Carlo component-tolerance yield of the power-
// management module on the (shortened) Fig. 11 scenario: the robustness
// analysis the paper's "future works ... characterization by means of
// measurements" points toward.
#include <iostream>

#include "src/core/tolerance.hpp"
#include "src/util/table.hpp"

#include "src/obs/report.hpp"

using namespace ironic;

int main() {
  ironic::obs::RunReport run_report("tolerance_yield");
  std::cout << "E12 — component-tolerance Monte Carlo (shortened Fig. 11)\n"
            << "Perturbed per draw: Co, drive level, demodulator threshold,\n"
            << "rectifier diode Is. 20 seeded draws per row.\n\n";

  util::Table t({"scenario", "charged", "downlink", "uplink", "regulation",
                 "yield", "worst Vo min (V)"});
  const auto row = [&](const char* name, const core::ToleranceSpec& spec) {
    const auto r = core::run_tolerance_analysis(spec);
    t.add_row({name,
               util::Table::cell(static_cast<double>(r.pass_charged), 3) + "/" +
                   util::Table::cell(static_cast<double>(r.runs), 3),
               util::Table::cell(static_cast<double>(r.pass_downlink), 3),
               util::Table::cell(static_cast<double>(r.pass_uplink), 3),
               util::Table::cell(static_cast<double>(r.pass_regulation), 3),
               util::Table::cell(r.yield(), 3),
               util::Table::cell(r.vo_min_worst, 4)});
  };

  core::ToleranceSpec nominal;
  row("nominal tolerances (10% Co, 5% drive, 4% Vth)", nominal);

  core::ToleranceSpec loose = nominal;
  loose.storage_cap_tol = 0.20;
  loose.diode_is_tol = 0.6;
  row("loose passives (20% Co, wide diode spread)", loose);

  core::ToleranceSpec misplaced = nominal;
  misplaced.drive_tol = 0.20;
  row("sloppy patch placement (20% drive spread)", misplaced);

  core::ToleranceSpec comparator = nominal;
  comparator.threshold_tol = 0.15;
  row("uncalibrated comparator (15% threshold spread)", comparator);

  t.print(std::cout);
  std::cout << "\nReading: regulation and charging are robust; the downlink\n"
            << "decision threshold is the yield-limiting spread, matching the\n"
            << "paper's choice to set modulation depth with a resistor divider\n"
            << "(trimmable) rather than an absolute reference.\n";
  return 0;
}
