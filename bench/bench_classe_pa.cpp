// E7 — Sec. III-A: class-E transmitter tuning. "By properly tuning the
// amplifier capacitors C3 and C4, the current and the voltage across
// the switch are never non-zero at the same time" — i.e. zero-voltage
// switching, with theoretical efficiency 100 %.
#include <iostream>

#include "src/rf/classe.hpp"
#include "src/spice/devices_passive.hpp"
#include "src/spice/engine.hpp"
#include "src/util/table.hpp"

#include "src/obs/report.hpp"

using namespace ironic;
using namespace ironic::spice;

namespace {

struct Row {
  double scale;
  double efficiency;
  double p_load;
  double zvs;
  double peak_drain;
};

Row simulate(double shunt_scale) {
  rf::ClassESpec spec;
  spec.supply_voltage = 3.7;
  spec.frequency = 5e6;
  spec.load_resistance = 10.0;
  auto design = rf::design_class_e(spec);
  design.shunt_capacitance *= shunt_scale;

  Circuit ckt;
  const auto inst = rf::build_class_e(ckt, "pa", design,
                                      square_clock(0.0, 1.8, spec.frequency, 0.0, 2e-9));
  ckt.add<Resistor>("RL", inst.output, kGround, spec.load_resistance);

  TransientOptions opts;
  opts.t_stop = 30e-6;
  opts.dt_max = 1e-9;
  opts.record_every = 2;
  const auto res = run_transient(ckt, opts);

  const double w0 = opts.t_stop - 20.0 / spec.frequency;
  const double p_load =
      res.mean_product_between("v(pa.out)", "v(pa.out)", w0, opts.t_stop) /
      spec.load_resistance;
  const double p_supply =
      spec.supply_voltage * -res.mean_between("i(pa.Vdd)", w0, opts.t_stop);
  Row row;
  row.scale = shunt_scale;
  row.p_load = p_load;
  row.efficiency = p_load / p_supply;
  row.zvs = rf::zvs_error(res, "pa.drain", spec.frequency, 200e-9, 24e-6, 30e-6,
                          spec.supply_voltage);
  row.peak_drain = res.max_between("v(pa.drain)", 24e-6, 30e-6);
  return row;
}

}  // namespace

int main() {
  ironic::obs::RunReport run_report("classe_pa");
  std::cout << "E7 — class-E PA: design values and tuning sweep\n\n";

  rf::ClassESpec spec;
  spec.supply_voltage = 3.7;
  spec.load_resistance = 10.0;
  const auto d = rf::design_class_e(spec);
  util::Table des({"design quantity", "value"});
  des.add_row({"idealized output power", util::format_si(d.output_power, "W")});
  des.add_row({"shunt capacitor (C4)", util::format_si(d.shunt_capacitance, "F")});
  des.add_row({"series capacitor (C3)", util::format_si(d.series_capacitance, "F")});
  des.add_row({"series tank inductor", util::format_si(d.series_inductance, "H")});
  des.add_row({"RF choke", util::format_si(d.choke_inductance, "H")});
  des.add_row({"peak switch stress", util::Table::cell(d.peak_switch_voltage, 3) + " V"});
  des.print(std::cout);

  std::cout << "\nC4 tuning sweep (1.0 = Sokal value). Paper claim: tuned ->\n"
            << "ZVS -> near-theoretical efficiency; detuned -> losses.\n\n";
  util::Table t({"C4 scale", "efficiency", "P load (mW)", "ZVS error", "peak Vd (V)"});
  for (double scale : {0.6, 0.8, 1.0, 1.3, 1.7, 2.2}) {
    const auto row = simulate(scale);
    t.add_row({util::Table::cell(row.scale, 3), util::Table::cell(row.efficiency, 3),
               util::Table::cell(row.p_load * 1e3, 4), util::Table::cell(row.zvs, 3),
               util::Table::cell(row.peak_drain, 3)});
  }
  t.print(std::cout);

  std::cout << "\nLoad setting for the paper's 15 mW maximum: R = "
            << util::Table::cell(rf::class_e_load_for_power(15e-3, 3.7), 4)
            << " Ohm at 3.7 V supply.\n";
  return 0;
}
