// E11 (extension) — frequency-domain view of the link: AC sweep of the
// series-series tuned pair showing the 5 MHz operating point, the effect
// of CA/CB matching, and the exact-rectangle vs circular-equivalent coil
// geometry comparison.
#include <cmath>
#include <iostream>

#include "src/magnetics/coupling.hpp"
#include "src/magnetics/link.hpp"
#include "src/magnetics/polygon.hpp"
#include "src/rf/matching.hpp"
#include "src/spice/ac.hpp"
#include "src/spice/devices_passive.hpp"
#include "src/spice/devices_sources.hpp"
#include "src/util/table.hpp"

#include "src/obs/report.hpp"

using namespace ironic;
using namespace ironic::spice;

int main() {
  ironic::obs::RunReport run_report("link_frequency");
  std::cout << "E11 — link frequency response (AC small-signal analysis)\n\n";

  magnetics::InductiveLink link{magnetics::LinkConfig{}};

  // Series-series tuned link with a resistive load, swept 1..25 MHz.
  Circuit ckt;
  const auto in = ckt.node("in");
  const auto p = ckt.node("p");
  const auto s = ckt.node("s");
  const auto out = ckt.node("out");
  auto& vs = ckt.add<VoltageSource>("V1", in, kGround, Waveform::dc(0.0));
  vs.set_ac(1.0);
  ckt.add<Capacitor>("Cp", in, p, link.tx_tuning_capacitance());
  link.add_to_circuit(ckt, "LINK", p, kGround, s, kGround);
  ckt.add<Capacitor>("Cs", s, out, link.rx_tuning_capacitance());
  ckt.add<Resistor>("RL", out, kGround, link.optimal_load_resistance());

  AcOptions opts;
  opts.f_start = 1e6;
  opts.f_stop = 25e6;
  opts.points_per_decade = 120;
  opts.use_operating_point = false;
  const auto res = run_ac(ckt, opts);

  util::Table t({"f (MHz)", "|v(out)| (V/V)", "phase (deg)"});
  for (double f : {2e6, 3.5e6, 4.5e6, 5e6, 5.5e6, 7e6, 10e6, 15e6, 20e6}) {
    std::size_t best = 0;
    double err = 1e300;
    for (std::size_t i = 0; i < res.frequency().size(); ++i) {
      const double e = std::abs(res.frequency()[i] - f);
      if (e < err) {
        err = e;
        best = i;
      }
    }
    t.add_row({util::Table::cell(f / 1e6, 3),
               util::Table::cell(res.magnitude("v(out)", best), 3),
               util::Table::cell(res.phase_deg("v(out)", best), 3)});
  }
  t.print(std::cout);
  std::cout << "  transfer peak at " << res.peak_frequency("v(out)") / 1e6
            << " MHz (carrier: 5 MHz)\n";

  // In-circuit verification of the CA/CB match at the carrier.
  std::cout << "\nMatching-network input impedance (coil + CA + CB||150 Ohm):\n";
  const double l2 = link.rx_coil().inductance();
  const auto match = rf::design_capacitive_match(l2, 150.0, 4.0, 5e6);
  Circuit mk;
  const auto min = mk.node("in");
  const auto ma = mk.node("a");
  const auto mb = mk.node("b");
  auto& mvs = mk.add<VoltageSource>("V1", min, kGround, Waveform::dc(0.0));
  mvs.set_ac(1.0);
  mk.add<Inductor>("L2", min, ma, l2);
  mk.add<Capacitor>("CA", ma, mb, match.series_c);
  mk.add<Capacitor>("CB", mb, kGround, match.shunt_c);
  mk.add<Resistor>("RL", mb, kGround, 150.0);
  AcOptions mopts;
  mopts.f_start = 3e6;
  mopts.f_stop = 8e6;
  mopts.log_sweep = false;
  mopts.linear_points = 11;
  mopts.use_operating_point = false;
  const auto mres = run_ac(mk, mopts);
  const auto z = input_impedance(mres, "V1");
  util::Table zt({"f (MHz)", "Re Zin (Ohm)", "Im Zin (Ohm)"});
  for (std::size_t i = 0; i < mres.num_points(); i += 2) {
    zt.add_row({util::Table::cell(mres.frequency()[i] / 1e6, 3),
                util::Table::cell(z[i].real(), 3), util::Table::cell(z[i].imag(), 3)});
  }
  zt.print(std::cout);
  std::cout << "  (design target: 4 + j0 Ohm at 5 MHz)\n";

  // Coil geometry: the exact 38 x 2 mm rectangle vs the fast circular-
  // equivalent model used in production paths.
  std::cout << "\nCoil geometry cross-check (segment model vs circular equivalent):\n";
  const auto tx_poly = magnetics::PolygonCoil::circular(magnetics::patch_coil_spec(), 32);
  const auto rx_rect = magnetics::PolygonCoil::rectangular(magnetics::implant_coil_spec());
  const magnetics::Coil tx{magnetics::patch_coil_spec()};
  const magnetics::Coil rx{magnetics::implant_coil_spec()};
  util::Table g({"distance (mm)", "M rect (nH)", "M circ-equiv (nH)", "ratio"});
  for (double d : {4.0, 6.0, 10.0, 17.0}) {
    const double m_poly =
        std::abs(magnetics::mutual_inductance(tx_poly, rx_rect, d * 1e-3));
    const double m_circ = magnetics::mutual_inductance(tx, rx, d * 1e-3);
    g.add_row({util::Table::cell(d, 3), util::Table::cell(m_poly * 1e9, 4),
               util::Table::cell(m_circ * 1e9, 4),
               util::Table::cell(m_poly / m_circ, 3)});
  }
  g.print(std::cout);
  std::cout << "  implant self-L: rectangle "
            << util::format_si(rx_rect.inductance(), "H") << " vs circular model "
            << util::format_si(rx.inductance(), "H")
            << " (thin outlines: long sides dominate self-L; enclosed area\n"
            << "   governs coupling — see tests/magnetics_polygon_test.cpp)\n";
  return 0;
}
