// E2 — Sec. III-B: received power vs coil distance, air vs beef sirloin.
// Paper anchors: 15 mW at 6 mm in air (maximum transmitter setting);
// 1.17 mW through a 17 mm sirloin slab, "similar to that obtained in
// air" at 17 mm.
#include <iostream>

#include "src/magnetics/link.hpp"
#include "src/util/table.hpp"

#include "src/obs/report.hpp"

using namespace ironic;

int main() {
  ironic::obs::RunReport run_report("power_distance");
  std::cout << "E2 — received power vs distance (fixed transmitter setting)\n"
            << "Paper: 15 mW @ 6 mm (air); 1.17 mW @ 17 mm (sirloin ~ air).\n\n";

  magnetics::LinkConfig cfg;
  cfg.distance = 6e-3;
  magnetics::InductiveLink link{cfg};
  // A lightly loaded (under-coupled) secondary, as in the paper's fixed
  // transmitter setup — delivered power then tracks M^2 and falls
  // monotonically with distance instead of peaking at critical coupling.
  const double load = 150.0;
  // The paper's "maximum transmitted power": calibrate the drive so the
  // 6 mm air point delivers exactly 15 mW, then never touch it again.
  const double drive = link.drive_for_power(15e-3, load);

  util::Table t({"distance (mm)", "P air (mW)", "P sirloin (mW)", "ratio", "k"});
  for (double d_mm : {3.0, 4.0, 6.0, 8.0, 10.0, 13.0, 17.0, 21.0, 25.0, 30.0}) {
    const double d = d_mm * 1e-3;
    link.set_tissue(std::nullopt);
    link.set_distance(d);
    const auto air = link.analyze(drive, load);
    link.set_tissue(magnetics::TissueSlab(magnetics::sirloin_properties(), d));
    const auto meat = link.analyze(drive, load);
    t.add_row({util::Table::cell(d_mm, 3),
               util::Table::cell(air.power_delivered * 1e3, 4),
               util::Table::cell(meat.power_delivered * 1e3, 4),
               util::Table::cell(meat.power_delivered / air.power_delivered, 3),
               util::Table::cell(air.coupling, 3)});
  }
  t.print(std::cout);

  link.set_tissue(std::nullopt);
  link.set_distance(6e-3);
  std::cout << "\nAnchor checks:\n  P(6 mm, air)      = "
            << util::format_si(link.analyze(drive, load).power_delivered, "W")
            << "  (paper: 15 mW, by calibration)\n";
  link.set_distance(17e-3);
  const double p_air17 = link.analyze(drive, load).power_delivered;
  link.set_tissue(magnetics::TissueSlab(magnetics::sirloin_properties(), 17e-3));
  const double p_meat17 = link.analyze(drive, load).power_delivered;
  std::cout << "  P(17 mm, air)     = " << util::format_si(p_air17, "W")
            << "\n  P(17 mm, sirloin) = " << util::format_si(p_meat17, "W")
            << "  (paper: 1.17 mW, 'similar to air')\n";

  std::cout << "\nMisalignment at 6 mm (fixed drive):\n";
  util::Table m({"lateral offset (mm)", "P (mW)", "k"});
  link.set_tissue(std::nullopt);
  link.set_distance(6e-3);
  for (double off_mm : {0.0, 5.0, 10.0, 20.0, 30.0, 40.0}) {
    link.set_lateral_offset(off_mm * 1e-3);
    const auto a = link.analyze(drive, load);
    m.add_row({util::Table::cell(off_mm, 3),
               util::Table::cell(a.power_delivered * 1e3, 4),
               util::Table::cell(a.coupling, 3)});
  }
  m.print(std::cout);
  return 0;
}
