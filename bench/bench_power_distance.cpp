// E2 — Sec. III-B: received power vs coil distance, air vs beef sirloin.
// Paper anchors: 15 mW at 6 mm in air (maximum transmitter setting);
// 1.17 mW through a 17 mm sirloin slab, "similar to that obtained in
// air" at 17 mm.
//
// The distance table runs as a declarative exec::Sweep, once serially and
// once on the work-stealing pool; the run aborts if the two renderings
// differ by a single byte (the exec determinism contract).
#include <cstdlib>
#include <iostream>
#include <sstream>

#include "src/exec/exec.hpp"
#include "src/magnetics/link.hpp"
#include "src/util/table.hpp"

#include "src/obs/report.hpp"

using namespace ironic;

namespace {

std::string render_csv(const util::Table& table) {
  std::ostringstream os;
  table.print_csv(os);
  return os.str();
}

}  // namespace

int main() {
  ironic::obs::RunReport run_report("power_distance");
  std::cout << "E2 — received power vs distance (fixed transmitter setting)\n"
            << "Paper: 15 mW @ 6 mm (air); 1.17 mW @ 17 mm (sirloin ~ air).\n\n";

  magnetics::LinkConfig cfg;
  cfg.distance = 6e-3;
  magnetics::InductiveLink link{cfg};
  // A lightly loaded (under-coupled) secondary, as in the paper's fixed
  // transmitter setup — delivered power then tracks M^2 and falls
  // monotonically with distance instead of peaking at critical coupling.
  const double load = 150.0;
  // The paper's "maximum transmitted power": calibrate the drive so the
  // 6 mm air point delivers exactly 15 mW, then never touch it again.
  const double drive = link.drive_for_power(15e-3, load);

  const exec::Sweep sweep = [] {
    exec::Sweep s("power_distance");
    s.axis(exec::Axis::list("distance_mm",
                            {3.0, 4.0, 6.0, 8.0, 10.0, 13.0, 17.0, 21.0, 25.0, 30.0}));
    return s;
  }();
  const exec::SweepRowFn row = [&](const exec::SweepPoint& p) {
    const double d_mm = p["distance_mm"];
    const double d = d_mm * 1e-3;
    magnetics::InductiveLink l{cfg};  // per-point instance: analyze() retunes
    l.set_distance(d);
    const auto air = l.analyze(drive, load);
    l.set_tissue(magnetics::TissueSlab(magnetics::sirloin_properties(), d));
    const auto meat = l.analyze(drive, load);
    return std::vector<std::string>{
        util::Table::cell(d_mm, 3),
        util::Table::cell(air.power_delivered * 1e3, 4),
        util::Table::cell(meat.power_delivered * 1e3, 4),
        util::Table::cell(meat.power_delivered / air.power_delivered, 3),
        util::Table::cell(air.coupling, 3)};
  };
  const std::vector<std::string> columns{"distance (mm)", "P air (mW)",
                                         "P sirloin (mW)", "ratio", "k"};

  exec::SweepOptions serial;
  serial.threads = 1;
  const auto t_serial = sweep.run(columns, row, serial);

  exec::SweepOptions parallel = serial;
  parallel.threads = 4;
  const auto t_parallel = sweep.run(columns, row, parallel);

  if (render_csv(t_serial.table) != render_csv(t_parallel.table)) {
    std::cerr << "FAIL: serial and parallel sweeps disagree\n";
    return EXIT_FAILURE;
  }
  t_serial.table.print(std::cout);
  std::cout << "  (serial " << util::Table::cell(t_serial.wall_seconds * 1e3, 3)
            << " ms, 4-thread " << util::Table::cell(t_parallel.wall_seconds * 1e3, 3)
            << " ms, tables bit-identical)\n";
  run_report.metric("sweep_serial_seconds", t_serial.wall_seconds);
  run_report.metric("sweep_parallel_seconds", t_parallel.wall_seconds);

  link.set_tissue(std::nullopt);
  link.set_distance(6e-3);
  std::cout << "\nAnchor checks:\n  P(6 mm, air)      = "
            << util::format_si(link.analyze(drive, load).power_delivered, "W")
            << "  (paper: 15 mW, by calibration)\n";
  link.set_distance(17e-3);
  const double p_air17 = link.analyze(drive, load).power_delivered;
  link.set_tissue(magnetics::TissueSlab(magnetics::sirloin_properties(), 17e-3));
  const double p_meat17 = link.analyze(drive, load).power_delivered;
  std::cout << "  P(17 mm, air)     = " << util::format_si(p_air17, "W")
            << "\n  P(17 mm, sirloin) = " << util::format_si(p_meat17, "W")
            << "  (paper: 1.17 mW, 'similar to air')\n";

  std::cout << "\nMisalignment at 6 mm (fixed drive):\n";
  util::Table m({"lateral offset (mm)", "P (mW)", "k"});
  link.set_tissue(std::nullopt);
  link.set_distance(6e-3);
  for (double off_mm : {0.0, 5.0, 10.0, 20.0, 30.0, 40.0}) {
    link.set_lateral_offset(off_mm * 1e-3);
    const auto a = link.analyze(drive, load);
    m.add_row({util::Table::cell(off_mm, 3),
               util::Table::cell(a.power_delivered * 1e3, 4),
               util::Table::cell(a.coupling, 3)});
  }
  m.print(std::cout);
  return 0;
}
