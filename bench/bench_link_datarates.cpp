// E9 — Sec. III-A: link data rates. Downlink 100 kbps (ASK); uplink
// 66.6 kbps (LSK), "slightly lower than the downlink bit-rate due to the
// computational time required to perform a real-time threshold check".
#include <iostream>
#include <utility>
#include <vector>

#include "src/comms/ask.hpp"
#include "src/comms/bitstream.hpp"
#include "src/comms/lsk.hpp"
#include "src/util/rng.hpp"
#include "src/util/table.hpp"

#include "src/obs/report.hpp"

using namespace ironic;
using namespace ironic::comms;

namespace {

std::pair<std::vector<double>, std::vector<double>> sampled(
    const ironic::spice::Waveform& w, double t_stop, double dt) {
  std::vector<double> ts, vs;
  for (double t = 0.0; t <= t_stop; t += dt) {
    ts.push_back(t);
    vs.push_back(w(t));
  }
  return {ts, vs};
}

double ask_ber(double bit_rate, double noise_rms, std::size_t n_bits) {
  AskSpec spec;
  spec.bit_rate = bit_rate;
  spec.edge_time = std::min(1e-6, 0.2 / bit_rate);
  util::Rng rng(1234);
  const auto bits = random_bits(n_bits, rng);
  const double t0 = 10e-6;
  const double t_stop = t0 + n_bits / bit_rate + 10e-6;
  const auto w = ask_waveform(bits, spec, t0, t_stop);
  auto [ts, vs] = sampled(w, t_stop, 20e-9);
  for (auto& v : vs) v += rng.normal(0.0, noise_rms);
  const auto rx = demodulate_ask(ts, vs, spec, t0, n_bits);
  return bit_error_rate(bits, rx);
}

}  // namespace

int main() {
  ironic::obs::RunReport run_report("link_datarates");
  std::cout << "E9 — link data rates\n\n";

  std::cout << "Uplink real-time budget (why 66.6 < 100 kbps):\n";
  util::Table b({"samples/bit", "ADC time (us)", "check time (us)", "max rate (kbps)"});
  for (const UplinkBudget budget :
       {UplinkBudget{1e-6, 5e-6, 10}, UplinkBudget{1e-6, 2e-6, 10},
        UplinkBudget{1e-6, 0.0, 10}, UplinkBudget{0.5e-6, 5e-6, 10}}) {
    b.add_row({util::Table::cell(static_cast<double>(budget.samples_per_bit), 3),
               util::Table::cell(budget.adc_sample_time * 1e6, 3),
               util::Table::cell(budget.threshold_check_time * 1e6, 3),
               util::Table::cell(achievable_uplink_rate(budget) / 1e3, 4)});
  }
  b.print(std::cout);
  std::cout << "  paper's operating point: 10 x 1 us + 5 us -> "
            << achievable_uplink_rate(UplinkBudget{}) / 1e3
            << " kbps (published: 66.6 kbps)\n";

  std::cout << "\nDownlink ASK BER vs bit rate and channel noise (DSP loopback,\n"
            << "400 bits per cell; amplitude 1.0, depth 0.423):\n";
  util::Table t({"bit rate (kbps)", "noise rms", "BER"});
  for (double rate : {50e3, 100e3, 200e3, 400e3}) {
    for (double noise : {0.05, 0.2, 0.35}) {
      t.add_row({util::Table::cell(rate / 1e3, 4), util::Table::cell(noise, 3),
                 util::Table::cell(ask_ber(rate, noise, 400), 3)});
    }
  }
  t.print(std::cout);

  std::cout << "\nLSK detection robustness vs current contrast (synthetic patch\n"
            << "supply current, 200 bits at 66.6 kbps, sense noise 2 mA rms):\n";
  util::Table l({"contrast (mA)", "BER"});
  util::Rng rng(77);
  for (double contrast_ma : {1.0, 2.0, 5.0, 15.0, 35.0}) {
    LskSpec spec;
    const auto bits = random_bits(200, rng);
    const double tb = spec.bit_period();
    std::vector<double> ts, is;
    for (double t = 0.0; t < 200 * tb; t += 0.3e-6) {
      const auto bit = static_cast<std::size_t>(t / tb);
      const double base = 80e-3;
      const double current =
          bits[std::min<std::size_t>(bit, 199)] ? base : base - contrast_ma * 1e-3;
      ts.push_back(t);
      is.push_back(current + rng.normal(0.0, 2e-3));
    }
    const auto rx = detect_lsk(ts, is, spec, 0.0, 200);
    l.add_row({util::Table::cell(contrast_ma, 3),
               util::Table::cell(bit_error_rate(bits, rx), 3)});
  }
  l.print(std::cout);

  std::cout << "\nFraming overhead (CRC-8 protected):\n";
  Frame f;
  f.payload = {0xDE, 0xAD, 0xBE, 0xEF};
  const auto encoded = encode_frame(f);
  std::cout << "  4-byte payload -> " << encoded.size() << " bits on the air ("
            << encoded.size() / 8 << " bytes), decode ok = "
            << (decode_frame(encoded).has_value() ? "yes" : "no") << "\n";
  return 0;
}
