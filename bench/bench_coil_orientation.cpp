// E13 (extension) — coil orientation study: the wearability concern of
// Fig. 5 ("concave or convex parts of the body") quantified. A patch on
// a curved limb tilts relative to the implant; the single-coil link
// collapses with tilt while a tri-axial receiver (paper ref [25],
// omnidirectional powering) holds its harvest nearly constant.
#include <cmath>
#include <iostream>

#include "src/magnetics/polygon.hpp"
#include "src/util/constants.hpp"
#include "src/util/table.hpp"

#include "src/obs/report.hpp"

using namespace ironic;
namespace constants = ironic::constants;

int main() {
  ironic::obs::RunReport run_report("coil_orientation");
  std::cout << "E13 — coupling vs patch tilt (12 mm separation)\n\n";

  const auto tx = magnetics::PolygonCoil::circular(magnetics::patch_coil_spec(), 32);
  const auto rx = magnetics::PolygonCoil::rectangular(magnetics::implant_coil_spec());

  const double m0 =
      std::abs(magnetics::mutual_inductance_tilted(tx, rx, 12e-3, 0.0));

  util::Table t({"tilt (deg)", "single-coil M/M0", "cos(tilt)", "tri-axial RSS/M0"});
  for (double deg : {0.0, 15.0, 30.0, 45.0, 60.0, 75.0, 90.0}) {
    const double tilt = deg * constants::kPi / 180.0;
    const double single =
        std::abs(magnetics::mutual_inductance_tilted(tx, rx, 12e-3, tilt));
    const double rss = magnetics::triaxial_coupling_rss(tx, rx, 12e-3, tilt);
    t.add_row({util::Table::cell(deg, 3), util::Table::cell(single / m0, 3),
               util::Table::cell(std::cos(tilt), 3),
               util::Table::cell(rss / m0, 3)});
  }
  t.print(std::cout);

  std::cout << "\nPower impact (P ~ M^2, under-coupled link):\n";
  util::Table p({"tilt (deg)", "single-coil power loss", "tri-axial power loss"});
  for (double deg : {30.0, 60.0, 85.0}) {
    const double tilt = deg * constants::kPi / 180.0;
    const double single =
        std::abs(magnetics::mutual_inductance_tilted(tx, rx, 12e-3, tilt)) / m0;
    const double rss = magnetics::triaxial_coupling_rss(tx, rx, 12e-3, tilt) / m0;
    const auto loss = [](double ratio) {
      return util::Table::cell((1.0 - ratio * ratio) * 100.0, 3) + " %";
    };
    p.add_row({util::Table::cell(deg, 3), loss(single), loss(rss)});
  }
  p.print(std::cout);

  std::cout << "\nReading: at 30 deg of body curvature the single coil already\n"
            << "loses a quarter of its power; past 60 deg the link is dead. The\n"
            << "tri-axial receiver trades implant volume for near-constant\n"
            << "harvest — the engineering argument of the paper's ref [25].\n";
  return 0;
}
