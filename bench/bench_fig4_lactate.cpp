// E1 — Fig. 4: lactate calibration curves (delta current density vs
// log10 concentration) for the cLODx and wtLODx enzymes on MWCNT
// screen-printed electrodes, measured through the potentiostat/readout
// chain of Fig. 3.
#include <iostream>

#include "src/bio/cell.hpp"
#include "src/bio/interface.hpp"
#include "src/bio/potentiostat.hpp"
#include "src/spice/engine.hpp"
#include "src/util/table.hpp"

#include "src/obs/report.hpp"

using namespace ironic;

namespace {

// Circuit-level readout voltage at one concentration (the transistor
// potentiostat of Fig. 3 driving the Randles cell).
double circuit_readout(const bio::ElectrochemicalCell& cell, double conc) {
  spice::Circuit ckt;
  const auto h = bio::build_potentiostat_circuit(ckt, "ps", cell, conc);
  spice::TransientOptions opts;
  opts.t_stop = 2e-3;
  opts.dt_max = 1e-6;
  opts.record_signals = {"v(" + h.readout_name + ")"};
  const auto res = spice::run_transient(ckt, opts);
  return res.mean_between("v(" + h.readout_name + ")", 1.5e-3, 2e-3);
}

}  // namespace

int main() {
  ironic::obs::RunReport run_report("fig4_lactate");
  std::cout << "E1 / Fig. 4 — lactate calibration, cLODx vs wtLODx\n"
            << "Paper shape: both curves rise monotonically over log10[mM] in\n"
            << "[-0.8, 0]; cLODx reaches ~4.2 uA/cm^2 at 1 mM, wtLODx ~1.6.\n\n";

  bio::ElectrochemicalCell commercial{bio::clodx_params()};
  bio::ElectrochemicalCell wild{bio::wtlodx_params()};
  const auto pts_c = bio::calibration_curve(commercial, 0.158, 1.0, 9);
  const auto pts_w = bio::calibration_curve(wild, 0.158, 1.0, 9);

  util::Table t({"log10[mM]", "cLODx dI (uA/cm^2)", "wtLODx dI (uA/cm^2)"});
  for (std::size_t i = 0; i < pts_c.size(); ++i) {
    t.add_row({util::Table::cell(pts_c[i].log10_mM, 3),
               util::Table::cell(pts_c[i].delta_current_ua_cm2, 3),
               util::Table::cell(pts_w[i].delta_current_ua_cm2, 3)});
  }
  t.print(std::cout);

  std::cout << "\nTransistor-level cross-check (Fig. 3 circuit, readout volts):\n";
  util::Table v({"conc (mM)", "circuit Vout (V)", "behavioural Vout (V)"});
  const bio::PotentiostatModel model;
  for (double c : {0.2, 0.5, 1.0}) {
    v.add_row({util::Table::cell(c, 3),
               util::Table::cell(circuit_readout(commercial, c), 4),
               util::Table::cell(model.readout_voltage(commercial.current(c)), 4)});
  }
  v.print(std::cout);

  std::cout << "\nFull-chain ADC codes (14-bit, 4 uA FS):\n";
  bio::ElectronicInterface ei{commercial};
  util::Table a({"conc (mM)", "IWE (uA)", "ADC code", "estimated conc (mM)"});
  for (double c : {0.16, 0.3, 0.5, 1.0}) {
    const auto m = ei.measure(c);
    a.add_row({util::Table::cell(c, 3), util::Table::cell(m.cell_current * 1e6, 4),
               util::Table::cell(static_cast<double>(m.adc_code), 6),
               util::Table::cell(m.estimated_concentration, 4)});
  }
  a.print(std::cout);
  return 0;
}
