// E6 — Fig. 11: the paper's headline transient of the power-management
// module. Events to reproduce:
//   - Co charges to 2.75 V (paper: at t = 270 us),
//   - 18 downlink bits at 100 kbps from t = 300 us, all recovered at Vdem,
//   - uplink burst at t = 520 us keyed by M1/M2,
//   - Vo > 2.1 V at all times after charge-up.
#include <iostream>

#include "src/comms/bitstream.hpp"
#include "src/core/system.hpp"
#include "src/util/table.hpp"

#include "src/obs/report.hpp"

using namespace ironic;

int main() {
  ironic::obs::RunReport run_report("fig11_transient");
  std::cout << "E6 / Fig. 11 — power-management transient (source-driven,\n"
            << "the paper's own methodology)\n\n";

  core::EndToEndConfig cfg;
  const auto r = core::EndToEndSim{cfg}.run();

  util::Table t({"event", "reproduced", "paper"});
  t.add_row({"Vo reaches 2.75 V at",
             util::Table::cell(r.t_charge * 1e6, 4) + " us", "270 us"});
  t.add_row({"downlink bits sent", comms::bits_to_string(cfg.downlink_bits),
             "18 bits @ 100 kbps"});
  t.add_row({"downlink bits recovered", comms::bits_to_string(r.decoded_downlink),
             "all correct"});
  t.add_row({"downlink ok", util::Table::cell(r.downlink_ok), "yes"});
  t.add_row({"uplink bits sent", comms::bits_to_string(cfg.uplink_bits),
             "burst @ 520 us"});
  t.add_row({"uplink bits detected", comms::bits_to_string(r.detected_uplink),
             "all correct"});
  t.add_row({"uplink ok", util::Table::cell(r.uplink_ok), "yes"});
  t.add_row({"min Vo after charge-up",
             util::Table::cell(r.vo_min_after_charge, 4) + " V", "> 2.1 V"});
  t.add_row({"regulator never starved", util::Table::cell(r.regulator_never_starved),
             "yes"});
  t.add_row({"sensor rail (worst case)",
             util::Table::cell(r.worst_case_rail, 4) + " V", "1.8 V"});
  t.print(std::cout);

  // The Fig. 11 waveform, decimated: Vo and Vdem vs time.
  std::cout << "\nWaveform samples (Vo staircase of Fig. 11):\n";
  util::Table w({"t (us)", "Vo (V)", "Vdem (V)", "|Vi| peak (V)"});
  for (double t_us = 50.0; t_us <= 700.0; t_us += 50.0) {
    const double ti = t_us * 1e-6;
    w.add_row({util::Table::cell(t_us, 4),
               util::Table::cell(r.trace.value_at("v(rect.vo)", ti), 4),
               util::Table::cell(r.trace.value_at("v(dm.vdem)", ti), 3),
               util::Table::cell(
                   r.trace.peak_abs_between("v(vi)", ti - 2e-6, ti + 2e-6), 3)});
  }
  w.print(std::cout);

  // Extension: the same experiment with the transmitter and link fully
  // co-simulated (class-E PA at 5 MHz + synthesized coils).
  std::cout << "\nExtension — full class-E + link co-simulation (25 kbps downlink;\n"
            << "our synthesized coils have higher Q than the paper's, see docs):\n";
  const auto ce_cfg = core::class_e_demo_config();
  const auto ce = core::EndToEndSim{ce_cfg}.run();
  util::Table e({"metric", "value"});
  e.add_row({"downlink ok", util::Table::cell(ce.downlink_ok)});
  e.add_row({"uplink ok", util::Table::cell(ce.uplink_ok)});
  e.add_row({"Vo at end", util::Table::cell(
                              ce.trace.value_at("v(rect.vo)", ce_cfg.t_stop * 0.99), 4) +
                              " V"});
  e.add_row({"min Vo after charge", util::Table::cell(ce.vo_min_after_charge, 4) + " V"});
  e.print(std::cout);

  run_report.metric("fig11.t_charge_us", r.t_charge * 1e6);
  run_report.metric("fig11.vo_min_after_charge_v", r.vo_min_after_charge);
  run_report.metric("fig11.worst_case_rail_v", r.worst_case_rail);
  run_report.metric("fig11.downlink_ok", r.downlink_ok ? 1.0 : 0.0);
  run_report.metric("fig11.uplink_ok", r.uplink_ok ? 1.0 : 0.0);
  run_report.metric("classe.downlink_ok", ce.downlink_ok ? 1.0 : 0.0);
  run_report.metric("classe.uplink_ok", ce.uplink_ok ? 1.0 : 0.0);
  return 0;
}
