// E4 — Sec. IV-C: link power at 10 mm vs downlink symbol. Paper: 5 mW
// with the unmodulated carrier, ~3 mW while transmitting a high logic
// value, ~1 mW while transmitting a low logic value.
#include <cmath>
#include <iostream>

#include "src/comms/ask.hpp"
#include "src/magnetics/link.hpp"
#include "src/util/table.hpp"

#include "src/obs/report.hpp"

using namespace ironic;

int main() {
  ironic::obs::RunReport run_report("ask_power_levels");
  std::cout << "E4 — delivered power vs ASK symbol at 10 mm\n"
            << "Paper: 5 mW unmodulated / ~3 mW high / ~1 mW low.\n\n";

  magnetics::LinkConfig cfg;
  cfg.distance = 10e-3;
  magnetics::InductiveLink link{cfg};
  const double load = link.optimal_load_resistance();
  // Calibrate the carrier for the paper's 5 mW unmodulated point.
  const double v_carrier = link.drive_for_power(5e-3, load);

  // The patch's R7/R8 modulator scales the carrier while a burst is
  // active: sqrt(3/5) during a '1', sqrt(1/5) during a '0' reproduces
  // the measured 3 mW / 1 mW split.
  const double scale_high = std::sqrt(3.0 / 5.0);
  const double scale_low = std::sqrt(1.0 / 5.0);

  util::Table t({"symbol", "amplitude scale", "P delivered (mW)", "paper (mW)"});
  const auto row = [&](const char* name, double scale, const char* paper) {
    const auto a = link.analyze(v_carrier * scale, load);
    t.add_row({name, util::Table::cell(scale, 3),
               util::Table::cell(a.power_delivered * 1e3, 3), paper});
  };
  row("unmodulated", 1.0, "5");
  row("high ('1')", scale_high, "~3");
  row("low ('0')", scale_low, "~1");
  t.print(std::cout);

  // Corresponding divider setting: the '0' scale equals R8/(R7+R8).
  std::cout << "\nR7/R8 divider producing the low-symbol depth: ";
  const double depth = 1.0 - scale_low;
  std::cout << "depth = " << depth << " -> R7/R8 = " << (1.0 / (1.0 - depth) - 1.0)
            << " (e.g. R7 = 12.4 k, R8 = 10 k)\n";

  std::cout << "\nDepth sweep (delivered power and demodulation margin):\n";
  util::Table s({"mod depth", "P high (mW)", "P low (mW)", "P ratio"});
  for (double d : {0.1, 0.2, 0.3, 0.423, 0.5, 0.6}) {
    const double hi = link.analyze(v_carrier * scale_high, load).power_delivered;
    const double lo =
        link.analyze(v_carrier * scale_high * (1.0 - d), load).power_delivered;
    s.add_row({util::Table::cell(d, 3), util::Table::cell(hi * 1e3, 3),
               util::Table::cell(lo * 1e3, 3), util::Table::cell(hi / lo, 3)});
  }
  s.print(std::cout);
  return 0;
}
