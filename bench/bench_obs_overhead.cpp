// bench_obs_overhead — proves the observability tax on the fault-campaign
// hot path stays within budget, in-process.
//
// Two legs run the same deterministic campaign mix:
//   off  obs::set_runtime_enabled(false): every counter/gauge/histogram
//        record, every profiler zone, and every telemetry emit
//        early-returns — the runtime proxy for compiling with
//        IRONIC_OBS_ENABLED=OFF, measurable in one binary so the
//        comparison shares code layout and cache state
//   on   runtime enabled, the profiler armed, and the telemetry sink
//        streaming JSONL to a scratch file
// The legs interleave rep-by-rep (off, on, off, on, ...) so slow drift
// on a shared box hits both equally, and each leg reports min-of-N wall
// time (min, not mean: the noise is one-sided). The bench FAILS
// (exit 1) when the on-leg exceeds the off-leg by more than
// kMaxOverheadPct; one retry with more repetitions absorbs scheduler
// flukes before declaring failure.
//
// It also asserts the observation-neutrality contract: campaign
// fingerprints must be bit-identical with telemetry on or off and for
// any thread count (1 vs 4 here) — instrumentation that perturbs the
// simulation is a bug this bench turns into a red build.
//
// Writes BENCH_obs_overhead.json (schema ironic.run_report/1) with the
// per-leg walls and the measured overhead percentage as extras.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>

#include "src/fault/campaign.hpp"
#include "src/obs/obs.hpp"

using namespace ironic;

namespace {

constexpr double kMaxOverheadPct = 5.0;

fault::CampaignConfig bench_config() {
  fault::CampaignConfig config;
  config.name = "ask_burst_coupling_drop";
  config.scenarios = 3;
  config.exchanges = 12;
  config.threads = 1;
  return config;
}

struct LegResult {
  double best_wall = 0.0;          // [s] min over reps
  std::uint64_t fingerprint = 0;  // must agree across legs
};

// One timed campaign with obs on or off; the caller owns the sink.
double timed_run(bool obs_on, const fault::CampaignConfig& config,
                 LegResult* leg) {
  obs::set_runtime_enabled(obs_on);
  const auto t0 = std::chrono::steady_clock::now();
  const auto result = fault::run_campaign(config);
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - t0;
  leg->best_wall = std::min(leg->best_wall, wall.count());
  leg->fingerprint = result.fingerprint;
  return wall.count();
}

// One overhead measurement round: the legs alternate rep-by-rep so
// drift on a shared box cancels, and each leg keeps its min.
double measure_overhead_pct(int reps, const std::string& scratch,
                            LegResult* off_out, LegResult* on_out) {
  auto& sink = obs::TelemetrySink::instance();
  if (!sink.open(scratch)) {
    std::cerr << "bench_obs_overhead: cannot open scratch telemetry file\n";
    std::exit(1);
  }
  const auto config = bench_config();
  LegResult off, on;
  off.best_wall = on.best_wall = 1e300;
  // Warm both code paths once so neither leg pays first-touch costs.
  timed_run(false, config, &off);
  timed_run(true, config, &on);
  off.best_wall = on.best_wall = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    timed_run(false, config, &off);
    timed_run(true, config, &on);
  }
  sink.close();
  obs::set_runtime_enabled(true);
  *off_out = off;
  *on_out = on;
  return (on.best_wall - off.best_wall) / off.best_wall * 100.0;
}

}  // namespace

int main() {
  obs::RunReport report("obs_overhead");
  const std::string scratch = "bench_obs_overhead_telemetry.jsonl";

  // Contract 1: observation neutrality. Fingerprints are bit-identical
  // with telemetry/profiling on or off and for any thread count.
  {
    auto config = bench_config();
    config.scenarios = 2;
    config.exchanges = 6;
    obs::set_runtime_enabled(false);
    const auto base = fault::run_campaign(config);
    obs::set_runtime_enabled(true);
    auto& sink = obs::TelemetrySink::instance();
    if (!sink.open(scratch)) {
      std::cerr << "bench_obs_overhead: cannot open scratch telemetry file\n";
      return 1;
    }
    const auto with_obs = fault::run_campaign(config);
    config.threads = 4;
    const auto threaded = fault::run_campaign(config);
    sink.close();
    if (with_obs.fingerprint != base.fingerprint) {
      std::cerr << "FAIL: telemetry perturbed the campaign fingerprint\n";
      return 1;
    }
    if (threaded.fingerprint != base.fingerprint) {
      std::cerr << "FAIL: fingerprint depends on the thread count\n";
      return 1;
    }
    std::cout << "fingerprint invariant across obs on/off and threads 1/4: 0x"
              << std::hex << base.fingerprint << std::dec << "\n";
  }

  // Contract 2: the instrumented leg costs at most kMaxOverheadPct more
  // wall time. Retry once with triple the reps before failing — min-of-N
  // needs enough N when the box is busy.
  LegResult off, on;
  double overhead_pct = measure_overhead_pct(5, scratch, &off, &on);
  bool retried = false;
  if (overhead_pct > kMaxOverheadPct) {
    retried = true;
    overhead_pct = measure_overhead_pct(15, scratch, &off, &on);
  }
  if (off.fingerprint != on.fingerprint) {
    std::cerr << "FAIL: overhead legs disagree on the fingerprint\n";
    return 1;
  }
  std::remove(scratch.c_str());

  std::cout << "obs off: " << off.best_wall * 1e3 << " ms   obs on: "
            << on.best_wall * 1e3 << " ms   overhead: " << overhead_pct
            << " %" << (retried ? "  (after retry)" : "") << "\n";

  report.metric("wall_off_s", off.best_wall);
  report.metric("wall_on_s", on.best_wall);
  report.metric("overhead_pct", overhead_pct);
  report.metric("overhead_budget_pct", kMaxOverheadPct);

  if (overhead_pct > kMaxOverheadPct) {
    std::cerr << "FAIL: observability overhead " << overhead_pct
              << " % exceeds the " << kMaxOverheadPct << " % budget\n";
    return 1;
  }
  std::cout << "PASS: within the " << kMaxOverheadPct << " % budget\n";
  return 0;
}
