// E10 — ablations of the design choices DESIGN.md calls out:
//   A. clamping diodes removed -> output overvoltage,
//   B. M2 held closed during uplink -> clamp leakage drains Co,
//   C. M1 bulk hard-grounded -> body diode clamps the negative swing,
//   D. MWCNT electrode functionalization removed -> sensitivity loss,
//   E. trapezoidal vs backward-Euler integration on the resonant link.
#include <iostream>

#include "src/bio/cell.hpp"
#include "src/pm/rectifier.hpp"
#include "src/spice/devices_passive.hpp"
#include "src/spice/devices_sources.hpp"
#include "src/spice/engine.hpp"
#include "src/util/table.hpp"

#include "src/obs/report.hpp"

using namespace ironic;
using namespace ironic::spice;

namespace {

pm::RectifierOptions base_options() {
  pm::RectifierOptions opt;
  opt.storage_capacitance = 10e-9;
  return opt;
}

double max_vo(const pm::RectifierOptions& opt) {
  Circuit ckt;
  const auto src = ckt.node("src");
  const auto vi = ckt.node("vi");
  ckt.add<VoltageSource>("Vs", src, kGround, Waveform::sine(6.0, 5e6));
  ckt.add<Resistor>("Rs", src, vi, 50.0);
  pm::build_rectifier(ckt, "r", vi, Waveform::dc(0.0), Waveform::dc(1.8), opt);
  TransientOptions opts;
  opts.t_stop = 60e-6;
  opts.dt_max = 5e-9;
  opts.record_signals = {"v(r.vo)"};
  return run_transient(ckt, opts).max_between("v(r.vo)", 0.0, 60e-6);
}

double uplink_droop(bool m2_opens) {
  Circuit ckt;
  const auto src = ckt.node("src");
  const auto vi = ckt.node("vi");
  util::PiecewiseLinear env({0.0, 40e-6, 41e-6}, {3.5, 3.5, 0.0});
  ckt.add<VoltageSource>("Vs", src, kGround, Waveform::modulated_sine(5e6, env));
  ckt.add<Resistor>("Rs", src, vi, 50.0);
  pm::build_rectifier(ckt, "r", vi,
                      Waveform::pulse(0.0, 1.8, 45e-6, 0.1e-6, 0.1e-6, 300e-6, 0.0),
                      m2_opens ? Waveform::pulse(1.8, 0.0, 45e-6, 0.1e-6, 0.1e-6,
                                                 300e-6, 0.0)
                               : Waveform::dc(1.8),
                      base_options());
  TransientOptions opts;
  opts.t_stop = 160e-6;
  opts.dt_max = 5e-9;
  opts.record_signals = {"v(r.vo)"};
  const auto res = run_transient(ckt, opts);
  return res.value_at("v(r.vo)", 45e-6) - res.value_at("v(r.vo)", 160e-6);
}

double min_vi(bool bulk_bias) {
  auto opt = base_options();
  opt.bulk_bias = bulk_bias;
  Circuit ckt;
  const auto src = ckt.node("src");
  const auto vi = ckt.node("vi");
  ckt.add<VoltageSource>("Vs", src, kGround, Waveform::sine(3.0, 5e6));
  ckt.add<Resistor>("Rs", src, vi, 50.0);
  pm::build_rectifier(ckt, "r", vi, Waveform::dc(0.0), Waveform::dc(1.8), opt);
  TransientOptions opts;
  opts.t_stop = 10e-6;
  opts.dt_max = 2e-9;
  opts.record_signals = {"v(vi)"};
  return run_transient(ckt, opts).min_between("v(vi)", 5e-6, 10e-6);
}

double lc_amplitude_error(Integrator integrator) {
  Circuit ckt;
  const auto n = ckt.node("n");
  ckt.add<Capacitor>("C1", n, kGround, 100e-9, 1.0);
  ckt.add<Inductor>("L1", n, kGround, 10e-6);
  TransientOptions opts;
  opts.t_stop = 60e-6;
  opts.dt_max = 10e-9;
  opts.integrator = integrator;
  const auto res = run_transient(ckt, opts);
  return 1.0 - res.max_between("v(n)", 40e-6, 60e-6);
}

}  // namespace

int main() {
  ironic::obs::RunReport run_report("ablation");
  std::cout << "E10 — design-choice ablations\n\n";

  util::Table t({"ablation", "with feature", "without", "consequence"});

  {
    auto no_clamp = base_options();
    no_clamp.clamps_enabled = false;
    t.add_row({"A: clamp diodes (max Vo, 6 V overdrive)",
               util::Table::cell(max_vo(base_options()), 3) + " V",
               util::Table::cell(max_vo(no_clamp), 3) + " V",
               "overvoltage past the 3 V safe ceiling"});
  }
  {
    t.add_row({"B: M2 opens during uplink (Co droop)",
               util::Table::cell(uplink_droop(true), 3) + " V",
               util::Table::cell(uplink_droop(false), 3) + " V",
               "clamp leakage drains the reservoir"});
  }
  {
    t.add_row({"C: M1 bulk steering (min Vi, 3 V drive)",
               util::Table::cell(min_vi(true), 3) + " V",
               util::Table::cell(min_vi(false), 3) + " V",
               "body diode clamps the negative half-wave"});
  }
  {
    bio::ElectrochemicalCell mwcnt{bio::clodx_params()};
    bio::ElectrochemicalCell bare{bio::clodx_bare_params()};
    t.add_row({"D: MWCNT coating (dI at 1 mM)",
               util::Table::cell(mwcnt.delta_current_density_ua_cm2(1.0), 3) +
                   " uA/cm^2",
               util::Table::cell(bare.delta_current_density_ua_cm2(1.0), 3) +
                   " uA/cm^2",
               "sensitivity collapses without nanotubes"});
  }
  {
    t.add_row({"E: trapezoidal integrator (LC amplitude loss)",
               util::Table::cell(lc_amplitude_error(Integrator::kTrapezoidal), 3),
               util::Table::cell(lc_amplitude_error(Integrator::kBackwardEuler), 3),
               "BE damping would corrupt resonant-link power"});
  }
  t.print(std::cout);

  std::cout << "\nIntegrator step-size sweep on the LC tank (amplitude after\n"
            << "50 us of ringing; ideal = 1.0):\n";
  util::Table s({"dt (ns)", "trap amplitude", "BE amplitude"});
  for (double dt_ns : {2.0, 5.0, 10.0, 20.0, 50.0}) {
    const auto run_lc = [&](Integrator integ) {
      Circuit ckt;
      const auto n = ckt.node("n");
      ckt.add<Capacitor>("C1", n, kGround, 100e-9, 1.0);
      ckt.add<Inductor>("L1", n, kGround, 10e-6);
      TransientOptions opts;
      opts.t_stop = 60e-6;
      opts.dt_max = dt_ns * 1e-9;
      opts.integrator = integ;
      return run_transient(ckt, opts).max_between("v(n)", 40e-6, 60e-6);
    };
    s.add_row({util::Table::cell(dt_ns, 3),
               util::Table::cell(run_lc(Integrator::kTrapezoidal), 4),
               util::Table::cell(run_lc(Integrator::kBackwardEuler), 4)});
  }
  s.print(std::cout);
  return 0;
}
