// E5 — Sec. IV-C: average rectifier input impedance and CA/CB selection.
// The paper extracts ~150 Ohm from transient simulation and sizes the
// purely capacitive matching network against it.
#include <iostream>

#include "src/magnetics/link.hpp"
#include "src/pm/rectifier.hpp"
#include "src/rf/matching.hpp"
#include "src/util/table.hpp"

#include "src/obs/report.hpp"

using namespace ironic;

int main() {
  ironic::obs::RunReport run_report("rectifier_impedance");
  std::cout << "E5 — average rectifier input impedance (Vrms^2 / Pavg)\n"
            << "Paper: ~150 Ohm at its operating point; the value is strongly\n"
            << "operating-point dependent, so the sweep below brackets it.\n\n";

  util::Table t({"drive (V)", "load mode", "R avg (Ohm)", "P in (mW)", "Vo (V)"});
  for (double amp : {2.5, 3.0, 3.5, 4.0, 4.5}) {
    for (double i_load : {350e-6, 1.3e-3}) {
      const auto z = pm::extract_average_input_impedance(amp, 150.0, 1.8 / i_load);
      t.add_row({util::Table::cell(amp, 3), i_load < 1e-3 ? "350 uA" : "1.3 mA",
                 util::Table::cell(z.resistance, 4),
                 util::Table::cell(z.average_power * 1e3, 3),
                 util::Table::cell(z.output_voltage, 3)});
    }
  }
  t.print(std::cout);

  // CA/CB selection against the extracted value, exactly as Sec. IV-C.
  std::cout << "\nCapacitive match (CA series, CB shunt) for the implant coil:\n";
  const magnetics::Coil rx{magnetics::implant_coil_spec()};
  util::Table m({"R rect (Ohm)", "R target (Ohm)", "CA (pF)", "CB (pF)", "Q"});
  for (double r_rect : {150.0, 300.0, 600.0}) {
    // Transform down to a few ohms for the link; stay inside the
    // coil-reactance feasibility bound.
    const double wl = 2.0 * 3.14159265358979 * 5e6 * rx.inductance();
    const double disc = r_rect * r_rect - 4.0 * wl * wl;
    const double rt_max = disc > 0.0 ? (r_rect - std::sqrt(disc)) / 2.0 : r_rect / 2.0;
    const double rt = 0.8 * rt_max;
    const auto match = rf::design_capacitive_match(rx.inductance(), r_rect, rt, 5e6);
    m.add_row({util::Table::cell(r_rect, 4), util::Table::cell(rt, 3),
               util::Table::cell(match.series_c * 1e12, 4),
               util::Table::cell(match.shunt_c * 1e12, 4),
               util::Table::cell(match.q, 3)});
  }
  m.print(std::cout);
  return 0;
}
