// E8 — Sec. II-B: the 14-bit second-order sigma-delta ADC. 4 uA full
// scale with 250 pA resolution ("to digitize 4 uA with the resolution of
// 250 pA, a 14-bit ADC is required").
#include <cmath>
#include <iostream>
#include <vector>

#include "src/bio/adc.hpp"
#include "src/util/stats.hpp"
#include "src/util/table.hpp"

#include "src/obs/report.hpp"

using namespace ironic;
using ironic::bio::AdcSpec;
using ironic::bio::SigmaDeltaAdc;

int main() {
  ironic::obs::RunReport run_report("sigma_delta_adc");
  std::cout << "E8 — sigma-delta ADC characterization\n\n";

  AdcSpec spec;
  util::Table hdr({"parameter", "value", "paper"});
  hdr.add_row({"resolution", util::Table::cell(static_cast<double>(spec.bits), 3) +
                               " bits", "14 bits"});
  hdr.add_row({"full scale", util::format_si(spec.full_scale_current, "A"), "4 uA"});
  hdr.add_row({"LSB", util::format_si(spec.lsb_current(), "A"), "<= 250 pA"});
  hdr.add_row({"oversampling", util::Table::cell(
                                   static_cast<double>(spec.oversampling_ratio), 4), "-"});
  hdr.print(std::cout);

  std::cout << "\nDC transfer (code and reconstruction error in LSB):\n";
  SigmaDeltaAdc adc;
  util::Table t({"I in (uA)", "code", "I out (uA)", "error (LSB)"});
  for (double i_ua : {0.1, 0.25, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 3.9}) {
    const double i_in = i_ua * 1e-6;
    const auto code = adc.convert_current(i_in);
    const double i_out = adc.current_from_code(code);
    t.add_row({util::Table::cell(i_ua, 3),
               util::Table::cell(static_cast<double>(code), 6),
               util::Table::cell(i_out * 1e6, 5),
               util::Table::cell((i_out - i_in) / spec.lsb_current(), 3)});
  }
  t.print(std::cout);

  // Linearity over a fine ramp: worst-case INL estimate.
  std::cout << "\nRamp linearity (128 points):\n";
  double worst_lsb = 0.0;
  for (int k = 1; k < 128; ++k) {
    const double i_in = spec.full_scale_current * k / 128.0;
    const double i_out = adc.current_from_code(adc.convert_current(i_in));
    worst_lsb = std::max(worst_lsb, std::abs(i_out - i_in) / spec.lsb_current());
  }
  std::cout << "  worst |error| = " << worst_lsb << " LSB\n";

  // Repeatability with input-referred noise.
  std::cout << "\nNoise study (input-referred noise sweep, 2 uA input):\n";
  util::Table n({"noise rms (normalized)", "code spread (LSB)", "std (LSB)"});
  for (double noise : {0.0, 0.005, 0.02, 0.05}) {
    AdcSpec ns = spec;
    ns.input_noise_rms = noise;
    SigmaDeltaAdc noisy(ns, 42);
    std::vector<double> codes;
    for (int k = 0; k < 24; ++k) {
      codes.push_back(static_cast<double>(noisy.convert_current(2e-6)));
    }
    n.add_row({util::Table::cell(noise, 3),
               util::Table::cell(util::peak_to_peak(codes), 4),
               util::Table::cell(util::stddev(codes), 4)});
  }
  n.print(std::cout);
  return 0;
}
