// E14 (extension) — multi-layer spiral design space for the implant
// outline, in the spirit of the paper's companion study (ref [28]):
// inductance, Q, and SRF across layers / turns / trace width inside the
// 38 x 2 mm implant footprint.
//
// The grid is enumerated twice — serially and on the work-stealing pool —
// and the bench fails unless both orderings (Q sort included) are
// bit-identical.
#include <cstdlib>
#include <iostream>

#include "src/exec/exec.hpp"
#include "src/magnetics/coil_design.hpp"
#include "src/util/table.hpp"

#include "src/obs/report.hpp"

using namespace ironic;
using namespace ironic::magnetics;

namespace {

bool identical(const std::vector<CoilCandidate>& a,
               const std::vector<CoilCandidate>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].spec.layers != b[i].spec.layers ||
        a[i].spec.turns_per_layer != b[i].spec.turns_per_layer ||
        a[i].spec.trace_width != b[i].spec.trace_width ||
        a[i].inductance != b[i].inductance || a[i].q != b[i].q ||
        a[i].srf != b[i].srf || a[i].meets_target != b[i].meets_target) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  ironic::obs::RunReport run_report("coil_design");
  std::cout << "E14 — implant coil design space (38 x 2 mm outline, 5 MHz)\n\n";

  CoilSpec base = implant_coil_spec();
  CoilDesignGoal goal;
  goal.target_inductance = 3.5e-6;
  goal.tolerance = 0.3;
  goal.frequency = 5e6;

  const std::vector<int> layers{1, 2, 4, 7, 8};
  const std::vector<int> turns{1, 2, 3};
  const std::vector<double> widths{80e-6, 120e-6, 200e-6};

  const auto all = enumerate_coil_designs(base, goal, layers, turns, widths);
  exec::ThreadPool pool(4);
  const auto all_parallel =
      enumerate_coil_designs(base, goal, layers, turns, widths, &pool);
  if (!identical(all, all_parallel)) {
    std::cerr << "FAIL: serial and pooled design-space enumerations disagree\n";
    return EXIT_FAILURE;
  }

  util::Table t({"layers", "turns/layer", "trace (um)", "L (uH)", "Q @5MHz",
                 "SRF (MHz)", "meets target"});
  int shown = 0;
  for (const auto& c : all) {
    if (++shown > 16) break;  // top of the Q ranking
    t.add_row({util::Table::cell(static_cast<double>(c.spec.layers), 2),
               util::Table::cell(static_cast<double>(c.spec.turns_per_layer), 2),
               util::Table::cell(c.spec.trace_width * 1e6, 3),
               util::Table::cell(c.inductance * 1e6, 3), util::Table::cell(c.q, 3),
               util::Table::cell(c.srf / 1e6, 3), util::Table::cell(c.meets_target)});
  }
  t.print(std::cout);
  std::cout << "  (" << all.size() << " geometrically feasible candidates; "
            << "serial and 4-thread enumerations bit-identical)\n";

  const auto best = design_coil(base, goal, layers, turns, widths, &pool);
  std::cout << "\nChosen design: " << best.spec.layers << " layers x "
            << best.spec.turns_per_layer << " turns, "
            << best.spec.trace_width * 1e6 << " um trace -> L = "
            << util::format_si(best.inductance, "H") << ", Q = "
            << util::Table::cell(best.q, 3) << ", SRF = "
            << util::format_si(best.srf, "Hz") << "\n";
  std::cout << "\nThe paper's inductor (8 layers, 14 turns total) sits in the\n"
            << "same region: multi-layer stacking is how a 2 mm-wide implant\n"
            << "outline reaches the microhenries the 5 MHz link wants.\n";
  return 0;
}
