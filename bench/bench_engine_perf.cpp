// Engine micro-benchmarks (google-benchmark): the cost centres of the
// circuit simulator that all reproduction experiments stand on.
#include <benchmark/benchmark.h>

#include <string>

#include "src/linalg/lu.hpp"
#include "src/obs/report.hpp"
#include "src/magnetics/coupling.hpp"
#include "src/pm/rectifier.hpp"
#include "src/spice/devices_passive.hpp"
#include "src/spice/devices_sources.hpp"
#include "src/spice/engine.hpp"

using namespace ironic;
using namespace ironic::spice;

static void BM_LuSolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  linalg::Matrix a(n, n);
  linalg::Vector b(n, 1.0);
  unsigned s = 7;
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      s = s * 1103515245u + 12345u;
      a(r, c) = static_cast<double>((s >> 8) % 1000) / 1000.0;
    }
    a(r, r) += 4.0;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::solve(a, b));
  }
}
BENCHMARK(BM_LuSolve)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

// Fold the engine's per-run statistics into google-benchmark counters so
// the machine-readable output carries solver behaviour alongside timing.
static void report_transient_stats(benchmark::State& state,
                                   const TransientStats& stats) {
  state.counters["accepted_steps"] =
      benchmark::Counter(static_cast<double>(stats.accepted_steps),
                         benchmark::Counter::kAvgIterations);
  state.counters["newton_iters"] =
      benchmark::Counter(static_cast<double>(stats.newton_iterations),
                         benchmark::Counter::kAvgIterations);
  state.counters["lu_factorizations"] =
      benchmark::Counter(static_cast<double>(stats.lu_factorizations),
                         benchmark::Counter::kAvgIterations);
  state.counters["breakpoint_hits"] =
      benchmark::Counter(static_cast<double>(stats.breakpoint_hits),
                         benchmark::Counter::kAvgIterations);
  state.counters["max_newton_iters"] =
      static_cast<double>(stats.max_newton_iterations);
  state.counters["steps_per_sec"] =
      benchmark::Counter(static_cast<double>(stats.accepted_steps),
                         benchmark::Counter::kIsRate);
}

// Build "<prefix><i>" without operator+(const char*, string&&); the
// inlined rope concat trips a GCC 12 -Wrestrict false positive
// (PR105329) at -O3 under -Werror.
static std::string tag(const char* prefix, int i) {
  std::string s(prefix);
  s += std::to_string(i);
  return s;
}

static void BM_TransientRcLadder(benchmark::State& state) {
  // N-section RC ladder driven by the 5 MHz carrier: pure linear cost.
  const int sections = static_cast<int>(state.range(0));
  TransientStats stats;
  for (auto _ : state) {
    Circuit ckt;
    NodeId prev = ckt.node("in");
    ckt.add<VoltageSource>("V1", prev, kGround, Waveform::sine(1.0, 5e6));
    for (int i = 0; i < sections; ++i) {
      const NodeId next = ckt.node(tag("n", i));
      ckt.add<Resistor>(tag("R", i), prev, next, 100.0);
      ckt.add<Capacitor>(tag("C", i), next, kGround, 100e-12);
      prev = next;
    }
    TransientOptions opts;
    opts.t_stop = 2e-6;
    opts.dt_max = 2e-9;
    opts.record_every = 16;
    benchmark::DoNotOptimize(run_transient(ckt, opts, &stats));
  }
  report_transient_stats(state, stats);
}
BENCHMARK(BM_TransientRcLadder)->Arg(4)->Arg(12)->Arg(24);

static void BM_TransientRectifier(benchmark::State& state) {
  // The nonlinear workhorse: rectifier + clamps + switches at 5 MHz.
  TransientStats stats;
  for (auto _ : state) {
    Circuit ckt;
    const auto src = ckt.node("src");
    const auto vi = ckt.node("vi");
    ckt.add<VoltageSource>("Vs", src, kGround, Waveform::sine(3.5, 5e6));
    ckt.add<Resistor>("Rs", src, vi, 150.0);
    pm::RectifierOptions opt;
    opt.storage_capacitance = 10e-9;
    pm::build_rectifier(ckt, "r", vi, Waveform::dc(0.0), Waveform::dc(1.8), opt);
    TransientOptions opts;
    opts.t_stop = 4e-6;
    opts.dt_max = 5e-9;
    opts.record_every = 16;
    benchmark::DoNotOptimize(run_transient(ckt, opts, &stats));
  }
  report_transient_stats(state, stats);
}
BENCHMARK(BM_TransientRectifier);

static void BM_CoilMutualInductance(benchmark::State& state) {
  const magnetics::Coil tx{magnetics::patch_coil_spec()};
  const magnetics::Coil rx{magnetics::implant_coil_spec()};
  for (auto _ : state) {
    benchmark::DoNotOptimize(magnetics::mutual_inductance(tx, rx, 6e-3));
  }
}
BENCHMARK(BM_CoilMutualInductance);

static void BM_NeumannOffsetFilament(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        magnetics::mutual_filaments(25e-3, 5e-3, 6e-3, 8e-3, 64));
  }
}
BENCHMARK(BM_NeumannOffsetFilament);

// Hand-rolled main (instead of BENCHMARK_MAIN) so the run is wrapped in a
// RunReport: BENCH_engine_perf.json gets the registry snapshot the
// transient benchmarks populate, next to google-benchmark's own output.
int main(int argc, char** argv) {
  ironic::obs::RunReport run_report("engine_perf");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
