// Engine micro-benchmarks (google-benchmark): the cost centres of the
// circuit simulator that all reproduction experiments stand on.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "src/exec/exec.hpp"
#include "src/linalg/lu.hpp"
#include "src/obs/report.hpp"
#include "src/magnetics/coil_design.hpp"
#include "src/magnetics/coupling.hpp"
#include "src/pm/rectifier.hpp"
#include "src/spice/devices_passive.hpp"
#include "src/spice/devices_sources.hpp"
#include "src/spice/engine.hpp"
#include "src/spice/netlist_parser.hpp"

using namespace ironic;
using namespace ironic::spice;

static void BM_LuSolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  linalg::Matrix a(n, n);
  linalg::Vector b(n, 1.0);
  unsigned s = 7;
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      s = s * 1103515245u + 12345u;
      a(r, c) = static_cast<double>((s >> 8) % 1000) / 1000.0;
    }
    a(r, r) += 4.0;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::solve(a, b));
  }
}
BENCHMARK(BM_LuSolve)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

// Fold the engine's per-run statistics into google-benchmark counters so
// the machine-readable output carries solver behaviour alongside timing.
static void report_transient_stats(benchmark::State& state,
                                   const TransientStats& stats) {
  state.counters["accepted_steps"] =
      benchmark::Counter(static_cast<double>(stats.accepted_steps),
                         benchmark::Counter::kAvgIterations);
  state.counters["newton_iters"] =
      benchmark::Counter(static_cast<double>(stats.newton_iterations),
                         benchmark::Counter::kAvgIterations);
  state.counters["factorizations"] =
      benchmark::Counter(static_cast<double>(stats.factorizations),
                         benchmark::Counter::kAvgIterations);
  state.counters["solves"] =
      benchmark::Counter(static_cast<double>(stats.solves),
                         benchmark::Counter::kAvgIterations);
  state.counters["breakpoint_hits"] =
      benchmark::Counter(static_cast<double>(stats.breakpoint_hits),
                         benchmark::Counter::kAvgIterations);
  state.counters["max_newton_iters"] =
      static_cast<double>(stats.max_newton_iterations);
  state.counters["steps_per_sec"] =
      benchmark::Counter(static_cast<double>(stats.accepted_steps),
                         benchmark::Counter::kIsRate);
}

// Build "<prefix><i>" without operator+(const char*, string&&); the
// inlined rope concat trips a GCC 12 -Wrestrict false positive
// (PR105329) at -O3 under -Werror.
static std::string tag(const char* prefix, int i) {
  std::string s(prefix);
  s += std::to_string(i);
  return s;
}

static void BM_TransientRcLadder(benchmark::State& state) {
  // N-section RC ladder driven by the 5 MHz carrier: pure linear cost.
  const int sections = static_cast<int>(state.range(0));
  TransientStats stats;
  for (auto _ : state) {
    Circuit ckt;
    NodeId prev = ckt.node("in");
    ckt.add<VoltageSource>("V1", prev, kGround, Waveform::sine(1.0, 5e6));
    for (int i = 0; i < sections; ++i) {
      const NodeId next = ckt.node(tag("n", i));
      ckt.add<Resistor>(tag("R", i), prev, next, 100.0);
      ckt.add<Capacitor>(tag("C", i), next, kGround, 100e-12);
      prev = next;
    }
    TransientOptions opts;
    opts.t_stop = 2e-6;
    opts.dt_max = 2e-9;
    opts.record_every = 16;
    benchmark::DoNotOptimize(run_transient(ckt, opts, &stats));
  }
  report_transient_stats(state, stats);
}
BENCHMARK(BM_TransientRcLadder)->Arg(4)->Arg(12)->Arg(24);

static void BM_TransientRectifier(benchmark::State& state) {
  // The nonlinear workhorse: rectifier + clamps + switches at 5 MHz.
  TransientStats stats;
  for (auto _ : state) {
    Circuit ckt;
    const auto src = ckt.node("src");
    const auto vi = ckt.node("vi");
    ckt.add<VoltageSource>("Vs", src, kGround, Waveform::sine(3.5, 5e6));
    ckt.add<Resistor>("Rs", src, vi, 150.0);
    pm::RectifierOptions opt;
    opt.storage_capacitance = 10e-9;
    pm::build_rectifier(ckt, "r", vi, Waveform::dc(0.0), Waveform::dc(1.8), opt);
    TransientOptions opts;
    opts.t_stop = 4e-6;
    opts.dt_max = 5e-9;
    opts.record_every = 16;
    benchmark::DoNotOptimize(run_transient(ckt, opts, &stats));
  }
  report_transient_stats(state, stats);
}
BENCHMARK(BM_TransientRectifier);

static void BM_CoilMutualInductance(benchmark::State& state) {
  const magnetics::Coil tx{magnetics::patch_coil_spec()};
  const magnetics::Coil rx{magnetics::implant_coil_spec()};
  for (auto _ : state) {
    benchmark::DoNotOptimize(magnetics::mutual_inductance(tx, rx, 6e-3));
  }
}
BENCHMARK(BM_CoilMutualInductance);

static void BM_NeumannOffsetFilament(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        magnetics::mutual_filaments(25e-3, 5e-3, 6e-3, 8e-3, 64));
  }
}
BENCHMARK(BM_NeumannOffsetFilament);

// Sweep-engine scaling: the coil design-space grid as an exec::Sweep at
// 1/2/4/8 worker threads. Emits BENCH_sweep_scaling.json with wall time,
// throughput, speedup vs the 1-thread pool, and worker utilization per
// thread count, and verifies every run's table is byte-identical to the
// serial rendering (the exec determinism contract). Speedup numbers are
// only meaningful on a machine with that many cores — the report records
// hardware_concurrency so downstream diffs can tell.
static void run_sweep_scaling() {
  using namespace ironic::exec;
  ironic::obs::RunReport report("sweep_scaling");
  report.note("workload", "coil design-space grid, 8x6x16 = 768 points");
  report.metric("hardware_concurrency",
                static_cast<double>(std::thread::hardware_concurrency()));

  const magnetics::CoilSpec base = magnetics::implant_coil_spec();
  magnetics::CoilDesignGoal goal;
  goal.target_inductance = 3.5e-6;
  goal.tolerance = 0.3;
  goal.frequency = 5e6;

  Sweep sweep("coil_scaling");
  sweep.axis(Axis::list("layers", {1, 2, 3, 4, 5, 6, 7, 8}))
      .axis(Axis::list("turns", {1, 2, 3, 4, 5, 6}))
      .axis(Axis::linear("width_um", 50.0, 200.0, 16));
  const exec::SweepRowFn row = [&](const SweepPoint& p) {
    magnetics::CoilSpec spec = base;
    spec.layers = static_cast<int>(p["layers"]);
    spec.turns_per_layer = static_cast<int>(p["turns"]);
    spec.trace_width = p["width_um"] * 1e-6;
    spec.turn_spacing = spec.trace_width;
    double l = 0.0, q = 0.0, srf = 0.0;
    try {
      const magnetics::Coil coil{spec};
      l = coil.inductance();
      q = coil.quality_factor(goal.frequency);
      srf = coil.self_resonance_frequency();
    } catch (const std::invalid_argument&) {
      // outside the outline; keep the zero row
    }
    return std::vector<std::string>{
        util::Table::cell(p["layers"], 2), util::Table::cell(p["turns"], 2),
        util::Table::cell(p["width_um"], 4), util::Table::cell(l * 1e6, 5),
        util::Table::cell(q, 5), util::Table::cell(srf / 1e6, 5)};
  };
  const std::vector<std::string> columns{"layers", "turns", "width_um",
                                         "L_uH", "Q", "SRF_MHz"};

  const auto render = [](const util::Table& t) {
    std::ostringstream os;
    t.print_csv(os);
    return os.str();
  };

  SweepOptions serial_opts;
  serial_opts.threads = 1;
  const auto serial = sweep.run(columns, row, serial_opts);
  const std::string golden = render(serial.table);

  std::cout << "\nsweep scaling (coil grid, " << serial.points << " points):\n";
  // One scoped registry per thread-count configuration: the cohort
  // aggregation across them lands in BENCH_engine_perf.json as
  // cohort.sweep_scaling.* gauges (count/sum/min/max/percentiles).
  auto& registry = ironic::obs::MetricsRegistry::instance();
  std::vector<std::shared_ptr<ironic::obs::MetricsRegistry>> cohort;
  double wall_1 = 0.0;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(threads);
    SweepOptions opts;
    opts.pool = &pool;
    opts.grain = 8;
    const auto result = sweep.run(columns, row, opts);
    if (render(result.table) != golden) {
      std::cerr << "FAIL: sweep at " << threads << " threads diverged from serial\n";
      std::exit(EXIT_FAILURE);
    }
    if (threads == 1) wall_1 = result.wall_seconds;
    const double per_s = static_cast<double>(result.points) / result.wall_seconds;
    const std::string tagname = "threads_" + std::to_string(threads);
    report.metric(tagname + "_wall_seconds", result.wall_seconds);
    report.metric(tagname + "_points_per_second", per_s);
    report.metric(tagname + "_speedup", wall_1 / result.wall_seconds);
    auto scoped = registry.scoped(
        {{"bench", "sweep_scaling"}, {"threads", std::to_string(threads)}});
    scoped->histogram("sweep.wall_seconds").observe(result.wall_seconds);
    scoped->gauge("sweep.points_per_second").set(per_s);
    scoped->gauge("sweep.speedup").set(wall_1 / result.wall_seconds);
    cohort.push_back(std::move(scoped));
    std::cout << "  " << threads << " thread(s): "
              << util::Table::cell(result.wall_seconds * 1e3, 4) << " ms, "
              << util::Table::cell(per_s, 5) << " points/s, speedup "
              << util::Table::cell(wall_1 / result.wall_seconds, 3) << "\n";
  }
  registry.publish_cohorts("cohort.sweep_scaling");
  report.metric("serial_wall_seconds", serial.wall_seconds);
  report.note("determinism", "all thread counts byte-identical to serial CSV");
}

// Dense-vs-sparse backend shootout on the largest shipped netlist, the
// 60-segment Fricke tissue ladder (~120 MNA unknowns). Runs the same
// end-to-end transient under each backend, checks the waveforms agree,
// and records per-backend wall time, throughput, and solver-cache
// behaviour into BENCH_engine_perf.json (DESIGN.md §11). The acceptance
// bar — sparse beats dense on wall time at this size — rides as the
// solver.speedup metric so CI diffs catch a regression.
static void run_solver_shootout(ironic::obs::RunReport& report) {
  const std::string path =
      std::string(IRONIC_SOURCE_DIR) + "/examples/netlists/tissue_ladder.cir";
  std::ifstream in(path);
  if (!in) {
    std::cerr << "FAIL: cannot open " << path << "\n";
    std::exit(EXIT_FAILURE);
  }
  std::ostringstream text;
  text << in.rdbuf();
  report.note("solver.netlist", "tissue_ladder.cir");

  TransientOptions opts;
  opts.t_stop = 20e-6;
  opts.dt_max = 5e-9;
  opts.record_every = 16;

  std::cout << "\nsolver shootout (tissue_ladder.cir, t_stop 20 us):\n";
  double dense_wall = 0.0;
  double probe_dense = 0.0, probe_sparse = 0.0;
  for (const auto kind :
       {linalg::SolverKind::kDense, linalg::SolverKind::kSparse}) {
    Circuit ckt;
    parse_netlist(ckt, text.str());
    TransientOptions o = opts;
    o.solver = kind;
    TransientStats stats;
    const auto t0 = std::chrono::steady_clock::now();
    const auto result = run_transient(ckt, o, &stats);
    const auto t1 = std::chrono::steady_clock::now();
    const double wall = std::chrono::duration<double>(t1 - t0).count();

    const std::string name = linalg::solver_kind_name(kind);
    const auto& out = result.signal("v(t60)");
    (kind == linalg::SolverKind::kDense ? probe_dense : probe_sparse) =
        out.back();
    report.metric("solver." + name + ".wall_seconds", wall);
    report.metric("solver." + name + ".steps_per_second",
                  static_cast<double>(stats.accepted_steps) / wall);
    report.metric("solver." + name + ".factorizations",
                  static_cast<double>(stats.factorizations));
    report.metric("solver." + name + ".solves",
                  static_cast<double>(stats.solves));
    const auto& st = ckt.acquire_solver(kind).stats();
    report.metric("solver." + name + ".factor_nnz",
                  static_cast<double>(st.factor_nnz));
    if (kind == linalg::SolverKind::kDense) dense_wall = wall;
    std::cout << "  " << name << ": "
              << util::Table::cell(wall * 1e3, 4) << " ms, "
              << stats.accepted_steps << " steps, "
              << stats.factorizations << " factorizations, "
              << stats.solves << " solves\n";
    if (kind == linalg::SolverKind::kSparse) {
      const double speedup = dense_wall / wall;
      report.metric("solver.speedup", speedup);
      std::cout << "  sparse speedup over dense: "
                << util::Table::cell(speedup, 3) << "x\n";
      if (speedup <= 1.0) {
        std::cerr << "FAIL: sparse backend slower than dense on the "
                     "largest example netlist\n";
        std::exit(EXIT_FAILURE);
      }
    }
  }
  // Same circuit, same step sequence: the load-node waveforms must agree
  // to solver roundoff, or one backend factored the wrong matrix.
  if (std::abs(probe_dense - probe_sparse) >
      1e-9 + 1e-6 * std::abs(probe_dense)) {
    std::cerr << "FAIL: backends disagree on v(t60): dense " << probe_dense
              << " vs sparse " << probe_sparse << "\n";
    std::exit(EXIT_FAILURE);
  }
}

// Hand-rolled main (instead of BENCHMARK_MAIN) so the run is wrapped in a
// RunReport: BENCH_engine_perf.json gets the registry snapshot the
// transient benchmarks populate, next to google-benchmark's own output.
int main(int argc, char** argv) {
  ironic::obs::RunReport run_report("engine_perf");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  run_solver_shootout(run_report);
  run_sweep_scaling();
  return 0;
}
