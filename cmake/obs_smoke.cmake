# Observability smoke check (driven by ctest, see top-level CMakeLists):
# run the telemetry_session example with tracing, run-report, and metrics
# dumping enabled, then validate every emitted artifact with
# tools/trace_validate. Variables: EXE, VALIDATOR, OUT_DIR.
file(MAKE_DIRECTORY ${OUT_DIR})

set(ENV{IRONIC_TRACE} ${OUT_DIR}/telemetry_session.trace.json)
set(ENV{IRONIC_METRICS} ${OUT_DIR}/telemetry_session.metrics.jsonl)
set(ENV{IRONIC_REPORT_DIR} ${OUT_DIR})

execute_process(
  COMMAND ${EXE}
  RESULT_VARIABLE run_rc
  OUTPUT_VARIABLE run_out
  ERROR_VARIABLE run_err)
if(NOT run_rc EQUAL 0)
  message(FATAL_ERROR "telemetry_session failed (rc=${run_rc}):\n${run_out}\n${run_err}")
endif()

execute_process(
  COMMAND ${VALIDATOR} --min-metrics 5 --min-events 10
    ${OUT_DIR}/telemetry_session.trace.json
    ${OUT_DIR}/BENCH_telemetry_session.json
    ${OUT_DIR}/telemetry_session.metrics.jsonl
  RESULT_VARIABLE validate_rc
  OUTPUT_VARIABLE validate_out
  ERROR_VARIABLE validate_err)
message(STATUS "${validate_out}")
if(NOT validate_rc EQUAL 0)
  message(FATAL_ERROR "telemetry artifacts invalid:\n${validate_out}\n${validate_err}")
endif()
