// Tests for the netlist linter (src/spice/lint.hpp): one unit test per
// rule, engine-integration tests proving validate() turns formerly
// diverging circuits into pre-run diagnostics, and an integration sweep
// asserting every shipped example netlist lints clean while every broken
// fixture trips its advertised rule.
#include "src/spice/lint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "src/obs/json.hpp"
#include "src/spice/circuit.hpp"
#include "src/spice/devices_nonlinear.hpp"
#include "src/spice/devices_passive.hpp"
#include "src/spice/devices_sources.hpp"
#include "src/spice/engine.hpp"
#include "src/spice/netlist_parser.hpp"
#include "src/spice/waveform.hpp"

namespace {

using namespace ironic::spice;

bool has_rule(const LintReport& report, const std::string& rule) {
  return std::any_of(report.diagnostics.begin(), report.diagnostics.end(),
                     [&](const Diagnostic& d) { return d.rule_id == rule; });
}

const Diagnostic& get_rule(const LintReport& report, const std::string& rule) {
  for (const auto& d : report.diagnostics) {
    if (d.rule_id == rule) return d;
  }
  throw std::logic_error("rule not present: " + rule);
}

std::string read_file(const std::filesystem::path& p) {
  std::ifstream in(p);
  EXPECT_TRUE(in.good()) << p;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// ------------------------------------------------------------ rule units

TEST(LintRules, CleanCircuitHasNoDiagnostics) {
  Circuit ckt;
  auto in = ckt.node("in");
  auto out = ckt.node("out");
  ckt.add<VoltageSource>("V1", in, kGround, Waveform::sine(1.0, 1e6));
  ckt.add<Resistor>("R1", in, out, 1e3);
  ckt.add<Capacitor>("C1", out, kGround, 1e-9);
  ckt.add<Resistor>("R2", out, kGround, 2e3);
  const auto report = lint(ckt);
  EXPECT_TRUE(report.clean()) << report.to_text();
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.to_text(), "");
}

TEST(LintRules, FloatingNodeIsReported) {
  Circuit ckt;
  auto in = ckt.node("in");
  auto n1 = ckt.node("n1");
  auto n2 = ckt.node("n2");
  ckt.add<VoltageSource>("V1", in, kGround, Waveform::dc(1.0));
  ckt.add<Resistor>("Rload", in, kGround, 1e3);
  ckt.add<Capacitor>("C1", in, n1, 1e-9);  // island: n1 -- R -- n2, cap-coupled
  ckt.add<Resistor>("R1", n1, n2, 1e4);
  ckt.add<Capacitor>("C2", n2, kGround, 1e-9);
  const auto report = lint(ckt);
  ASSERT_TRUE(has_rule(report, "lint.no-dc-path")) << report.to_text();
  const auto& d = get_rule(report, "lint.no-dc-path");
  EXPECT_EQ(d.severity, Severity::kWarning);
  // Both island nodes are named in one component diagnostic.
  EXPECT_NE(d.message.find("'n1'"), std::string::npos);
  EXPECT_NE(d.message.find("'n2'"), std::string::npos);
}

TEST(LintRules, VoltageLoopIsError) {
  Circuit ckt;
  auto in = ckt.node("in");
  ckt.add<VoltageSource>("V1", in, kGround, Waveform::dc(5.0));
  ckt.add<VoltageSource>("V2", in, kGround, Waveform::dc(3.0));
  ckt.add<Resistor>("R1", in, kGround, 1e3);
  const auto report = lint(ckt);
  ASSERT_TRUE(has_rule(report, "lint.voltage-loop")) << report.to_text();
  EXPECT_EQ(get_rule(report, "lint.voltage-loop").severity, Severity::kError);
  EXPECT_EQ(get_rule(report, "lint.voltage-loop").device, "V2");
  EXPECT_FALSE(report.ok());
}

TEST(LintRules, VcvsAcrossVoltageSourceIsLoop) {
  Circuit ckt;
  auto in = ckt.node("in");
  auto s = ckt.node("sense");
  ckt.add<VoltageSource>("V1", in, kGround, Waveform::dc(1.0));
  ckt.add<Resistor>("R1", in, s, 1e3);
  ckt.add<Resistor>("R2", s, kGround, 1e3);
  ckt.add<Vcvs>("E1", in, kGround, s, kGround, 2.0);  // fights V1
  const auto report = lint(ckt);
  EXPECT_TRUE(has_rule(report, "lint.voltage-loop")) << report.to_text();
}

TEST(LintRules, InductorLoopSeverityDependsOnContext) {
  Circuit ckt;
  auto in = ckt.node("in");
  ckt.add<VoltageSource>("V1", in, kGround, Waveform::sine(1.0, 1e6));
  ckt.add<Inductor>("L1", in, kGround, 1e-6);  // ideal winding across V1
  LintOptions transient;
  const auto tr = lint(ckt, transient);
  ASSERT_TRUE(has_rule(tr, "lint.inductor-loop")) << tr.to_text();
  EXPECT_EQ(get_rule(tr, "lint.inductor-loop").severity, Severity::kWarning);
  EXPECT_TRUE(tr.ok());

  LintOptions dc;
  dc.dc_context = true;
  const auto at_dc = lint(ckt, dc);
  ASSERT_TRUE(has_rule(at_dc, "lint.inductor-loop"));
  EXPECT_EQ(get_rule(at_dc, "lint.inductor-loop").severity, Severity::kError);
  EXPECT_FALSE(at_dc.ok());
}

TEST(LintRules, InductorWithEsrIsNotRigid) {
  Circuit ckt;
  auto in = ckt.node("in");
  ckt.add<VoltageSource>("V1", in, kGround, Waveform::sine(1.0, 1e6));
  ckt.add<Inductor>("L1", in, kGround, 1e-6, /*esr=*/0.5);
  LintOptions dc;
  dc.dc_context = true;
  EXPECT_FALSE(has_rule(lint(ckt, dc), "lint.inductor-loop"));
}

TEST(LintRules, CurrentCutsetErrorAtDcWarningInTransient) {
  Circuit ckt;
  auto n1 = ckt.node("n1");
  auto in = ckt.node("in");
  ckt.add<CurrentSource>("I1", kGround, n1, Waveform::dc(1e-3));
  ckt.add<Capacitor>("C1", n1, kGround, 1e-9);
  ckt.add<VoltageSource>("V1", in, kGround, Waveform::dc(1.0));
  ckt.add<Resistor>("R1", in, kGround, 1e3);

  const auto tr = lint(ckt);
  ASSERT_TRUE(has_rule(tr, "lint.current-cutset")) << tr.to_text();
  EXPECT_EQ(get_rule(tr, "lint.current-cutset").severity, Severity::kWarning);

  LintOptions dc;
  dc.dc_context = true;
  const auto at_dc = lint(ckt, dc);
  EXPECT_EQ(get_rule(at_dc, "lint.current-cutset").severity, Severity::kError);
  EXPECT_EQ(get_rule(at_dc, "lint.current-cutset").device, "I1");
}

TEST(LintRules, DanglingTerminalAndNode) {
  Circuit ckt;
  auto in = ckt.node("in");
  auto out = ckt.node("out");
  auto probe = ckt.node("probe");
  ckt.node("orphan");  // registered, never used
  ckt.add<VoltageSource>("V1", in, kGround, Waveform::dc(1.0));
  ckt.add<Resistor>("R1", in, out, 1e3);
  ckt.add<Resistor>("R2", out, kGround, 1e3);
  ckt.add<Resistor>("R3", out, probe, 1e3);  // dead end
  const auto report = lint(ckt);
  ASSERT_TRUE(has_rule(report, "lint.dangling-terminal")) << report.to_text();
  EXPECT_EQ(get_rule(report, "lint.dangling-terminal").device, "R3");
  EXPECT_EQ(get_rule(report, "lint.dangling-terminal").node, "probe");
  ASSERT_TRUE(has_rule(report, "lint.dangling-node"));
  EXPECT_EQ(get_rule(report, "lint.dangling-node").node, "orphan");
}

TEST(LintRules, ShortedDeviceWarning) {
  Circuit ckt;
  auto in = ckt.node("in");
  ckt.add<VoltageSource>("V1", in, kGround, Waveform::dc(1.0));
  ckt.add<Resistor>("R1", in, kGround, 1e3);
  ckt.add<Resistor>("Rshort", in, in, 1e3);
  const auto report = lint(ckt);
  ASSERT_TRUE(has_rule(report, "lint.shorted-device")) << report.to_text();
  EXPECT_EQ(get_rule(report, "lint.shorted-device").device, "Rshort");
}

TEST(LintRules, SelfShortedVoltageSourceIsLoopError) {
  Circuit ckt;
  auto in = ckt.node("in");
  ckt.add<VoltageSource>("V1", in, kGround, Waveform::dc(1.0));
  ckt.add<Resistor>("R1", in, kGround, 1e3);
  ckt.add<VoltageSource>("Vshort", in, in, Waveform::dc(1.0));
  const auto report = lint(ckt);
  EXPECT_TRUE(has_rule(report, "lint.voltage-loop")) << report.to_text();
  EXPECT_FALSE(report.ok());
}

TEST(LintRules, DuplicateNameCaseInsensitive) {
  Circuit ckt;
  auto in = ckt.node("in");
  ckt.add<VoltageSource>("V1", in, kGround, Waveform::dc(1.0));
  ckt.add<Resistor>("R1", in, kGround, 1e3);
  ckt.add<Resistor>("r1", in, kGround, 1e3);
  const auto report = lint(ckt);
  ASSERT_TRUE(has_rule(report, "lint.duplicate-name")) << report.to_text();
  EXPECT_EQ(get_rule(report, "lint.duplicate-name").severity, Severity::kWarning);
}

TEST(LintRules, MagnitudeHeuristicFlagsUnitSlip) {
  Circuit ckt;
  auto in = ckt.node("in");
  ckt.add<VoltageSource>("V1", in, kGround, Waveform::sine(2.5, 13.56e6));
  ckt.add<Resistor>("Rload", in, kGround, 150e6);  // meant 150 Ohm
  const auto report = lint(ckt);
  ASSERT_TRUE(has_rule(report, "lint.magnitude")) << report.to_text();
  EXPECT_EQ(get_rule(report, "lint.magnitude").device, "Rload");

  LintOptions off;
  off.magnitude_checks = false;
  EXPECT_FALSE(has_rule(lint(ckt, off), "lint.magnitude"));
}

TEST(LintRules, ParamRangeFromDeviceCheck) {
  Circuit ckt;
  auto in = ckt.node("in");
  DiodeParams dp;
  dp.saturation_current = 1e-12;
  dp.emission_coeff = 50.0;  // implausible
  ckt.add<VoltageSource>("V1", in, kGround, Waveform::dc(1.0));
  ckt.add<Diode>("D1", in, kGround, dp);
  const auto report = lint(ckt);
  ASSERT_TRUE(has_rule(report, "lint.param-range")) << report.to_text();
  EXPECT_EQ(get_rule(report, "lint.param-range").device, "D1");
}

TEST(LintRules, GroundMissingWarning) {
  Circuit ckt;
  auto a = ckt.node("a");
  auto b = ckt.node("b");
  ckt.add<VoltageSource>("V1", a, b, Waveform::dc(1.0));
  ckt.add<Resistor>("R1", a, b, 1e3);
  const auto report = lint(ckt);
  EXPECT_TRUE(has_rule(report, "lint.ground-missing")) << report.to_text();
  // The single circuit-wide diagnostic replaces per-node no-dc-path spam.
  EXPECT_FALSE(has_rule(report, "lint.no-dc-path"));
}

TEST(LintRules, TransformerIsolatedSecondaryFloats) {
  Circuit ckt;
  auto p = ckt.node("p");
  auto s1 = ckt.node("s1");
  auto s2 = ckt.node("s2");
  ckt.add<VoltageSource>("V1", p, kGround, Waveform::sine(1.0, 1e6));
  ckt.add<CoupledInductors>("K1", p, kGround, s1, s2, 1e-6, 1e-6, 0.3, 0.1, 0.1);
  ckt.add<Resistor>("Rload", s1, s2, 100.0);
  const auto report = lint(ckt);
  // The windings are galvanically isolated: the secondary floats even
  // though the device itself touches ground on the primary side.
  EXPECT_TRUE(has_rule(report, "lint.no-dc-path")) << report.to_text();
}

TEST(LintRules, JsonReportRoundTrips) {
  Circuit ckt;
  auto in = ckt.node("in");
  ckt.add<VoltageSource>("V1", in, kGround, Waveform::dc(5.0));
  ckt.add<VoltageSource>("V2", in, kGround, Waveform::dc(3.0));
  ckt.add<Resistor>("R1", in, kGround, 1e3);
  const auto report = lint(ckt);
  const auto value = ironic::obs::json::Value::parse(report.to_json());
  EXPECT_EQ(static_cast<std::size_t>(value.at("errors").as_double()), report.errors());
  ASSERT_GT(value.at("diagnostics").size(), 0u);
  const auto& first = value.at("diagnostics").at(0);
  EXPECT_FALSE(first.at("rule").as_string().empty());
  EXPECT_FALSE(first.at("message").as_string().empty());
}

// ------------------------------------------------- engine integration

TEST(EngineValidate, VoltageLoopBecomesPreRunDiagnostic) {
  Circuit ckt;
  auto in = ckt.node("in");
  ckt.add<VoltageSource>("V1", in, kGround, Waveform::dc(5.0));
  ckt.add<VoltageSource>("V2", in, kGround, Waveform::dc(3.0));
  ckt.add<Resistor>("R1", in, kGround, 1e3);

  // Previously: solve_dc ground through the whole Newton/gmin/source
  // ladder and reported converged=false; run_transient halved dt to
  // underflow and threw a generic runtime_error. Now both fail fast with
  // the named rule before any matrix is assembled.
  try {
    solve_dc(ckt);
    FAIL() << "expected CircuitValidationError";
  } catch (const CircuitValidationError& e) {
    EXPECT_NE(std::string(e.what()).find("lint.voltage-loop"), std::string::npos);
    EXPECT_FALSE(e.report.ok());
  }

  TransientOptions tr;
  tr.t_stop = 1e-6;
  tr.dt_max = 1e-8;
  EXPECT_THROW(run_transient(ckt, tr), CircuitValidationError);

  // The old behavior stays reachable for engine-internals testing.
  DcOptions no_validate;
  no_validate.validate = false;
  const auto dc = solve_dc(ckt, no_validate);
  EXPECT_FALSE(dc.converged);
}

TEST(EngineValidate, DcCurrentCutsetCaughtBeforeDivergence) {
  Circuit ckt;
  auto n1 = ckt.node("n1");
  ckt.add<CurrentSource>("I1", kGround, n1, Waveform::dc(1e-3));
  ckt.add<Capacitor>("C1", n1, kGround, 1e-9);

  // Previously this "converged": the true operating point is the
  // meaningless v(n1) = I/gshunt (~1e9 V), and Newton damping walks
  // toward it until the escalation ladder happens to declare success at
  // whatever voltage it reached -- a silently wrong answer. Now it is a
  // pre-run diagnostic.
  DcOptions no_validate;
  no_validate.validate = false;
  const auto dc = solve_dc(ckt, no_validate);
  EXPECT_TRUE(dc.converged);
  EXPECT_NE(dc.x[static_cast<std::size_t>(n1)], 0.0);

  EXPECT_THROW(solve_dc(ckt), CircuitValidationError);
}

TEST(EngineValidate, WarningsDoNotBlockSimulation) {
  Circuit ckt;
  auto in = ckt.node("in");
  auto mid = ckt.node("mid");
  ckt.add<VoltageSource>("V1", in, kGround, Waveform::sine(1.0, 1e6));
  ckt.add<Resistor>("R1", in, kGround, 1e3);
  // Cap-coupled island: a warning, and a circuit the engine handles.
  ckt.add<Capacitor>("C1", in, mid, 1e-9);
  ckt.add<Capacitor>("C2", mid, kGround, 1e-9);
  EXPECT_FALSE(lint(ckt).clean());
  TransientOptions tr;
  tr.t_stop = 2e-6;
  tr.dt_max = 1e-8;
  const auto result = run_transient(ckt, tr);
  EXPECT_GT(result.num_points(), 10u);
}

// ------------------------------------------------- fixture integration

const std::filesystem::path kSourceDir = IRONIC_SOURCE_DIR;

TEST(LintFixtures, ShippedExampleNetlistsLintClean) {
  const auto dir = kSourceDir / "examples" / "netlists";
  ASSERT_TRUE(std::filesystem::is_directory(dir));
  std::size_t count = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".cir") continue;
    ++count;
    Circuit ckt;
    ASSERT_NO_THROW(parse_netlist(ckt, read_file(entry.path()))) << entry.path();
    const auto report = lint(ckt);
    EXPECT_TRUE(report.clean())
        << entry.path() << " is not strict-clean:\n" << report.to_text();
  }
  EXPECT_GE(count, 6u) << "expected the shipped netlist corpus in " << dir;
}

TEST(LintFixtures, BrokenFixturesTripTheirAdvertisedRules) {
  const auto dir = kSourceDir / "tests" / "netlists";
  ASSERT_TRUE(std::filesystem::is_directory(dir));

  const auto lint_file = [&](const std::string& name, bool dc_context) {
    Circuit ckt;
    parse_netlist(ckt, read_file(dir / name));
    LintOptions opts;
    opts.dc_context = dc_context;
    return lint(ckt, opts);
  };

  EXPECT_TRUE(has_rule(lint_file("broken_floating_node.cir", false), "lint.no-dc-path"));
  {
    const auto report = lint_file("broken_voltage_loop.cir", false);
    EXPECT_TRUE(has_rule(report, "lint.voltage-loop"));
    EXPECT_FALSE(report.ok());
  }
  {
    const auto report = lint_file("broken_current_cutset.cir", true);
    EXPECT_TRUE(has_rule(report, "lint.current-cutset"));
    EXPECT_FALSE(report.ok());
  }
  EXPECT_TRUE(has_rule(lint_file("broken_bad_magnitude.cir", false), "lint.magnitude"));
  EXPECT_TRUE(has_rule(lint_file("broken_dangling_terminal.cir", false),
                       "lint.dangling-terminal"));
  {
    Circuit ckt;
    EXPECT_THROW(parse_netlist(ckt, read_file(dir / "broken_parse_error.cir")),
                 NetlistError);
  }
}

}  // namespace
