#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/obs.hpp"
#include "src/spice/circuit.hpp"
#include "src/spice/devices_passive.hpp"
#include "src/spice/devices_sources.hpp"
#include "src/spice/engine.hpp"
#include "src/spice/waveform.hpp"
#include "src/util/log.hpp"

namespace {

using namespace ironic;
using obs::json::Value;

// The compile-time gate and the macro must agree; the whole test binary is
// built with the project-wide IRONIC_OBS_ENABLED setting.
static_assert(obs::kEnabled == (IRONIC_OBS_ENABLED != 0));

TEST(MetricsRegistry, CounterFindOrCreateReturnsSameInstance) {
  auto& registry = obs::MetricsRegistry::instance();
  auto& a = registry.counter("test.obs.counter_identity");
  auto& b = registry.counter("test.obs.counter_identity");
  EXPECT_EQ(&a, &b);

  const auto before = a.value();
  a.add();
  a.add(41);
  EXPECT_EQ(b.value(), before + 42);

  a.reset();
  EXPECT_EQ(b.value(), 0u);
}

TEST(MetricsRegistry, GaugeSetAndSetMax) {
  auto& g = obs::MetricsRegistry::instance().gauge("test.obs.gauge");
  g.set(1.5);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
  g.set_max(0.5);  // smaller: no change
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
  g.set_max(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
}

TEST(MetricsRegistry, SnapshotContainsAllKinds) {
  auto& registry = obs::MetricsRegistry::instance();
  registry.counter("test.obs.snap_counter").add(3);
  registry.gauge("test.obs.snap_gauge").set(7.0);
  registry.histogram("test.obs.snap_hist").observe(1e-3);

  bool saw_counter = false, saw_gauge = false, saw_hist = false;
  for (const auto& s : registry.snapshot()) {
    if (s.name == "test.obs.snap_counter") {
      saw_counter = true;
      EXPECT_EQ(s.type, "counter");
      EXPECT_DOUBLE_EQ(s.value, 3.0);
    } else if (s.name == "test.obs.snap_gauge") {
      saw_gauge = true;
      EXPECT_EQ(s.type, "gauge");
      EXPECT_DOUBLE_EQ(s.value, 7.0);
    } else if (s.name == "test.obs.snap_hist") {
      saw_hist = true;
      EXPECT_EQ(s.type, "histogram");
      EXPECT_EQ(s.count, 1u);
    }
  }
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_gauge);
  EXPECT_TRUE(saw_hist);
}

TEST(MetricsRegistry, JsonlDumpParsesLineByLine) {
  auto& registry = obs::MetricsRegistry::instance();
  registry.counter("test.obs.jsonl_counter").add(5);
  registry.histogram("test.obs.jsonl_hist").observe(2.0);

  std::ostringstream os;
  registry.write_jsonl(os);
  std::istringstream is(os.str());
  std::string line;
  std::size_t rows = 0;
  bool saw_hist_extras = false;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const Value row = Value::parse(line);
    EXPECT_TRUE(row.at("name").is_string());
    EXPECT_TRUE(row.at("value").is_number());
    if (row.at("type").as_string() == "histogram") {
      EXPECT_TRUE(row.contains("p50"));
      EXPECT_TRUE(row.contains("p95"));
      saw_hist_extras = true;
    }
    ++rows;
  }
  EXPECT_GE(rows, 2u);
  EXPECT_TRUE(saw_hist_extras);
}

TEST(Histogram, PercentilesWithExplicitBounds) {
  // Bounds 1..9; observe 1..100 of each value 1..10 — uniform over buckets.
  obs::Histogram h(std::vector<double>{1, 2, 3, 4, 5, 6, 7, 8, 9});
  for (int v = 1; v <= 10; ++v) h.observe(static_cast<double>(v));

  EXPECT_EQ(h.count(), 10u);
  EXPECT_DOUBLE_EQ(h.sum(), 55.0);
  EXPECT_DOUBLE_EQ(h.mean(), 5.5);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 10.0);

  // Percentiles are clamped to the observed range and monotone.
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 10.0);
  const double p50 = h.percentile(50.0);
  const double p95 = h.percentile(95.0);
  EXPECT_GE(p50, 4.0);
  EXPECT_LE(p50, 6.0);
  EXPECT_GE(p95, p50);
  EXPECT_LE(p95, 10.0);

  // One observation per bucket 1..9 plus one overflow (10 > last bound 9).
  const auto buckets = h.bucket_counts();
  ASSERT_EQ(buckets.size(), 10u);
  EXPECT_EQ(buckets.back(), 1u);
}

TEST(Histogram, EmptyIsWellDefined) {
  obs::Histogram h({});
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 0.0);
  EXPECT_FALSE(h.bounds().empty());  // default 1-2-5 ladder kicks in
}

TEST(Histogram, PercentileSingleObservation) {
  // With one observation every percentile collapses to it: both bucket
  // edges clamp to the observed range [v, v].
  obs::Histogram h({});
  h.observe(3.7);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 3.7);
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 3.7);
  EXPECT_DOUBLE_EQ(h.percentile(99.0), 3.7);
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 3.7);
}

TEST(Histogram, BucketBoundaryInterpolation) {
  // Both observations land in the (0, 10] bucket, whose edges clamp to
  // the observed range [2, 8]; the p50 target is halfway through the
  // bucket, so linear interpolation gives exactly the midpoint.
  obs::Histogram h(std::vector<double>{0.0, 10.0});
  h.observe(2.0);
  h.observe(8.0);
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 5.0);
  // p25 is a quarter through the bucket: 2 + (8 - 2) * 0.25.
  EXPECT_DOUBLE_EQ(h.percentile(25.0), 3.5);
}

TEST(Histogram, P0AndP100ClampToObservedRange) {
  obs::Histogram h(std::vector<double>{1, 2, 3, 4, 5, 6, 7, 8, 9});
  for (int v = 1; v <= 10; ++v) h.observe(static_cast<double>(v));
  // p0 is the smallest observation and p100 the largest, never the
  // (infinite) edges of the first/last buckets; out-of-range requests
  // clamp rather than extrapolate.
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 10.0);
  EXPECT_DOUBLE_EQ(h.percentile(-5.0), 1.0);
  EXPECT_DOUBLE_EQ(h.percentile(400.0), 10.0);
}

TEST(MetricsShard, CounterConcurrentAddsSumExactly) {
  auto& counter =
      obs::MetricsRegistry::instance().counter("test.obs.shard_counter");
  counter.reset();
  constexpr int kThreads = 8;
  constexpr int kAdds = 10000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&counter] {
      const obs::ThreadRegistration registration;
      for (int i = 0; i < kAdds; ++i) counter.add();
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(counter.value(),
            static_cast<std::uint64_t>(kThreads) * kAdds);
}

TEST(MetricsShard, GaugeBalancedConcurrentAddsCancel) {
  auto& gauge = obs::MetricsRegistry::instance().gauge("test.obs.shard_gauge");
  gauge.set(10.0);
  constexpr int kThreads = 4;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&gauge] {
      const obs::ThreadRegistration registration;
      for (int i = 0; i < 5000; ++i) {
        gauge.add(1.0);
        gauge.add(-1.0);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_DOUBLE_EQ(gauge.value(), 10.0);
}

TEST(MetricsShard, ThreadIndicesAreStableAndDistinct) {
  const auto mine = obs::thread_index();
  EXPECT_GE(mine, 1u);
  EXPECT_EQ(obs::thread_index(), mine);  // stable within a thread
  std::set<std::uint32_t> seen;
  std::mutex mutex;
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&] {
      const auto index = obs::thread_index();
      const std::lock_guard<std::mutex> lock(mutex);
      seen.insert(index);
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(seen.size(), 4u);
  EXPECT_EQ(seen.count(mine), 0u);
}

TEST(MetricsShard, HistogramResetNeverTearsTheMergedView) {
  // The documented reset contract: a merge that overlaps reset() retries
  // (seqlock) and never returns a half-zeroed mixture. With one writer
  // in flight, the bucket total may lead the count by at most the one
  // in-progress observation.
  auto& h = obs::MetricsRegistry::instance().histogram(
      "test.obs.shard_reset_hist", {1.0, 2.0, 5.0});
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    const obs::ThreadRegistration registration;
    while (!stop.load(std::memory_order_relaxed)) h.observe(1.5);
  });
  for (int round = 0; round < 200; ++round) {
    h.reset();
    const auto m = h.merged();
    std::uint64_t in_buckets = 0;
    for (const auto b : m.buckets) in_buckets += b;
    ASSERT_GE(in_buckets, m.count);
    ASSERT_LE(in_buckets - m.count, 1u);
    if (m.count > 0) {
      ASSERT_DOUBLE_EQ(m.min, 1.5);
      ASSERT_DOUBLE_EQ(m.max, 1.5);
    }
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
}

TEST(ScopedRegistry, ChildLabelsExtendTheParent) {
  obs::MetricsRegistry parent(
      obs::MetricsRegistry::Labels{{"campaign", "unit"}});
  const auto child = parent.scoped({{"scenario", "ask_burst"}});
  child->counter("test.obs.scoped_counter").add(2);
  const auto samples = child->snapshot();
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].labels, "campaign=unit,scenario=ask_burst");
  EXPECT_DOUBLE_EQ(samples[0].value, 2.0);
}

TEST(ScopedRegistry, CohortAggregatesAcrossSessions) {
  obs::MetricsRegistry parent;
  std::vector<std::shared_ptr<obs::MetricsRegistry>> sessions;
  for (int j = 0; j < 4; ++j) {
    auto child = parent.scoped({{"scenario", std::to_string(j)}});
    // Scalar: one sample per session -> cohort percentiles over 1,2,3,4.
    child->gauge("session.final").set(static_cast<double>(j + 1));
    // Histogram: same bounds everywhere -> bucket-level merge.
    auto& h = child->histogram("session.latency", {1.0, 10.0, 100.0});
    h.observe(static_cast<double>(j + 1));
    h.observe(static_cast<double>((j + 1) * 10));
    sessions.push_back(std::move(child));
  }
  const auto cohorts = parent.aggregate_cohorts();
  const obs::CohortAggregate* final_agg = nullptr;
  const obs::CohortAggregate* latency_agg = nullptr;
  for (const auto& c : cohorts) {
    if (c.name == "session.final") final_agg = &c;
    if (c.name == "session.latency") latency_agg = &c;
  }
  ASSERT_NE(final_agg, nullptr);
  EXPECT_EQ(final_agg->sessions, 4u);
  EXPECT_EQ(final_agg->count, 4u);
  EXPECT_DOUBLE_EQ(final_agg->min, 1.0);
  EXPECT_DOUBLE_EQ(final_agg->max, 4.0);
  EXPECT_DOUBLE_EQ(final_agg->mean, 2.5);
  EXPECT_DOUBLE_EQ(final_agg->p50, 2.5);  // rank interpolation over 1..4

  ASSERT_NE(latency_agg, nullptr);
  EXPECT_EQ(latency_agg->sessions, 4u);
  EXPECT_EQ(latency_agg->count, 8u);
  EXPECT_DOUBLE_EQ(latency_agg->min, 1.0);
  EXPECT_DOUBLE_EQ(latency_agg->max, 40.0);
  EXPECT_GE(latency_agg->p95, latency_agg->p50);
  EXPECT_LE(latency_agg->p99, 40.0);

  // Expired sessions drop out of later aggregations.
  sessions.resize(2);
  const auto pruned = parent.aggregate_cohorts();
  for (const auto& c : pruned) {
    if (c.name == "session.final") {
      EXPECT_EQ(c.sessions, 2u);
    }
  }
}

TEST(ScopedRegistry, PublishCohortsWritesPrefixedGauges) {
  obs::MetricsRegistry parent;
  const auto child = parent.scoped({{"scenario", "0"}});
  child->gauge("session.quality").set(0.75);
  parent.publish_cohorts("cohort.unit");
  bool saw_mean = false, saw_sessions = false;
  for (const auto& s : parent.snapshot()) {
    if (s.name == "cohort.unit.session.quality.mean") {
      saw_mean = true;
      EXPECT_DOUBLE_EQ(s.value, 0.75);
    }
    if (s.name == "cohort.unit.session.quality.sessions") {
      saw_sessions = true;
      EXPECT_DOUBLE_EQ(s.value, 1.0);
    }
  }
  EXPECT_TRUE(saw_mean);
  EXPECT_TRUE(saw_sessions);
}

TEST(ScopedRegistry, PublishCohortsIntoForeignRegistry) {
  // The fleet layer aggregates an intermediate per-cohort registry's
  // children and publishes the result into the ROOT registry: the gauges
  // must land in `into`, and the intermediate registry must stay clean
  // (no cohort.* gauges feeding back into its own aggregation).
  obs::MetricsRegistry cohort;
  auto s0 = cohort.scoped({{"session", "0"}});
  auto s1 = cohort.scoped({{"session", "1"}});
  s0->gauge("session.recover_s").set(1.0);
  s1->gauge("session.recover_s").set(3.0);

  obs::MetricsRegistry root;
  cohort.publish_cohorts("cohort.fleet.nominal", root);

  double mean = -1.0, sessions = -1.0, min = -1.0, max = -1.0;
  for (const auto& s : root.snapshot()) {
    if (s.name == "cohort.fleet.nominal.session.recover_s.mean") mean = s.value;
    if (s.name == "cohort.fleet.nominal.session.recover_s.sessions")
      sessions = s.value;
    if (s.name == "cohort.fleet.nominal.session.recover_s.min") min = s.value;
    if (s.name == "cohort.fleet.nominal.session.recover_s.max") max = s.value;
  }
  EXPECT_DOUBLE_EQ(mean, 2.0);
  EXPECT_DOUBLE_EQ(sessions, 2.0);
  EXPECT_DOUBLE_EQ(min, 1.0);
  EXPECT_DOUBLE_EQ(max, 3.0);
  // The intermediate registry's own snapshot holds no published gauges.
  for (const auto& s : cohort.snapshot()) {
    EXPECT_TRUE(s.name.rfind("cohort.", 0) != 0)
        << "leaked into source registry: " << s.name;
  }
}

TEST(Json, RoundTripThroughDumpAndParse) {
  Value::Object obj;
  obj["name"] = "bench \"quoted\" \\ with\nnewline";
  obj["value"] = 42.5;
  obj["count"] = 7;
  obj["flag"] = true;
  obj["missing"] = nullptr;
  obj["list"] = Value::Array{1.0, 2.0, Value("three")};
  const Value original(std::move(obj));

  const std::string compact = original.dump();
  const Value reparsed = Value::parse(compact);
  EXPECT_EQ(reparsed.dump(), compact);
  EXPECT_EQ(reparsed.at("name").as_string(), "bench \"quoted\" \\ with\nnewline");
  EXPECT_DOUBLE_EQ(reparsed.at("value").as_double(), 42.5);
  EXPECT_TRUE(reparsed.at("flag").as_bool());
  EXPECT_TRUE(reparsed.at("missing").is_null());
  EXPECT_EQ(reparsed.at("list").size(), 3u);
  EXPECT_EQ(reparsed.at("list").at(2).as_string(), "three");

  // Pretty-printed output parses back to the same document.
  EXPECT_EQ(Value::parse(original.dump(2)).dump(), compact);
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW(Value::parse("{"), obs::json::JsonError);
  EXPECT_THROW(Value::parse("[1,]"), obs::json::JsonError);
  EXPECT_THROW(Value::parse("{} trailing"), obs::json::JsonError);
  EXPECT_THROW(Value::parse("\"unterminated"), obs::json::JsonError);
  EXPECT_THROW(Value::parse("nul"), obs::json::JsonError);
}

TEST(Json, NonFiniteNumbersBecomeNull) {
  EXPECT_EQ(obs::json::number(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_EQ(obs::json::number(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(obs::json::number(3.0), "3");
}

#if IRONIC_OBS_ENABLED

TEST(Trace, NestedSpansRecordContainedCompleteEvents) {
  auto& recorder = obs::TraceRecorder::instance();
  recorder.clear();
  recorder.enable();
  {
    obs::Span outer("outer", "test");
    outer.arg("key", "value");
    {
      obs::Span inner("inner", "test");
    }
  }
  recorder.disable();

  const auto events = recorder.events();
  const obs::TraceEvent* outer_ev = nullptr;
  const obs::TraceEvent* inner_ev = nullptr;
  for (const auto& ev : events) {
    if (ev.name == "outer") outer_ev = &ev;
    if (ev.name == "inner") inner_ev = &ev;
  }
  ASSERT_NE(outer_ev, nullptr);
  ASSERT_NE(inner_ev, nullptr);
  EXPECT_EQ(outer_ev->phase, 'X');
  EXPECT_EQ(inner_ev->phase, 'X');
  // Inner span starts no earlier and ends no later than the outer one.
  EXPECT_GE(inner_ev->ts_us, outer_ev->ts_us);
  EXPECT_LE(inner_ev->ts_us + inner_ev->dur_us, outer_ev->ts_us + outer_ev->dur_us);
  ASSERT_EQ(outer_ev->args.size(), 1u);
  EXPECT_EQ(outer_ev->args[0].first, "key");
  recorder.clear();
}

TEST(Trace, SpanEndIsIdempotentAndStopsTheClock) {
  auto& recorder = obs::TraceRecorder::instance();
  recorder.clear();
  recorder.enable();
  {
    obs::Span span("ended-early", "test");
    span.end();
    span.end();  // second end must not record a duplicate
  }
  recorder.disable();
  std::size_t hits = 0;
  for (const auto& ev : recorder.events()) {
    if (ev.name == "ended-early") ++hits;
  }
  EXPECT_EQ(hits, 1u);
  recorder.clear();
}

TEST(Trace, DisabledRecorderRecordsNothing) {
  auto& recorder = obs::TraceRecorder::instance();
  recorder.clear();
  recorder.disable();
  {
    obs::Span span("ghost", "test");
  }
  recorder.instant_event("ghost-instant", "test");
  EXPECT_EQ(recorder.event_count(), 0u);
}

TEST(Trace, ChromeTraceJsonIsWellFormed) {
  auto& recorder = obs::TraceRecorder::instance();
  recorder.clear();
  recorder.enable();
  recorder.instant_event("tick", "test", {{"n", "1"}});
  recorder.counter_event("level", 0.75);
  recorder.sim_span("phase", "test", 1e-6, 3e-6, {{"what", "charge"}});
  recorder.sim_instant("bit", "test", 2e-6);
  recorder.disable();

  std::ostringstream os;
  recorder.write_chrome_trace(os);
  const Value root = Value::parse(os.str());
  const auto& events = root.at("traceEvents").as_array();
  // 4 recorded + 2 process_name metadata events.
  ASSERT_GE(events.size(), 6u);

  bool saw_sim_pid = false, saw_metadata = false;
  for (const auto& ev : events) {
    const std::string& ph = ev.at("ph").as_string();
    if (ph == "M") {
      saw_metadata = true;
      continue;
    }
    EXPECT_GE(ev.at("ts").as_double(), 0.0);
    if (ev.at("name").as_string() == "phase") {
      saw_sim_pid = true;
      EXPECT_DOUBLE_EQ(ev.at("pid").as_double(), 2.0);  // simulation timeline
      EXPECT_DOUBLE_EQ(ev.at("ts").as_double(), 1.0);   // 1e-6 s -> 1 us
      EXPECT_DOUBLE_EQ(ev.at("dur").as_double(), 2.0);
    }
  }
  EXPECT_TRUE(saw_sim_pid);
  EXPECT_TRUE(saw_metadata);
  recorder.clear();
}

TEST(Trace, ScopedTimerAccumulatesNanoseconds) {
  obs::Counter sink;
  {
    obs::ScopedTimer timer(sink);
    // Do a little work so the elapsed time is nonzero even on coarse clocks.
    volatile double x = 0.0;
    for (int i = 0; i < 10000; ++i) x = x + 1.0;
  }
  EXPECT_GT(sink.value(), 0u);
}

TEST(Trace, LogBridgeCountsStructuredEvents) {
  obs::install_log_bridge();
  auto& counter =
      obs::MetricsRegistry::instance().counter("log.events.test.component");
  const auto before = counter.value();
  // Silence the text path; the bridge sees the record regardless of level.
  util::Log::set_sink([](util::LogLevel, const std::string&) {});
  util::Log::event(util::LogLevel::kDebug, "test.component",
                   {{"k", "v"}, {"n", "3"}});
  util::Log::set_sink(nullptr);
  EXPECT_EQ(counter.value(), before + 1);
}

// The engine's registry counters and the per-run TransientStats are fed
// from the same increments; their deltas over one run must agree exactly.
TEST(Instrumentation, TransientCountersMatchStats) {
  auto& registry = obs::MetricsRegistry::instance();
  const auto runs0 = registry.counter("spice.transient.runs").value();
  const auto acc0 = registry.counter("spice.transient.accepted_steps").value();
  const auto rej0 = registry.counter("spice.transient.rejected_steps").value();
  const auto newt0 = registry.counter("spice.transient.newton_iterations").value();
  const auto fac0 = registry.counter("spice.transient.factorizations").value();
  const auto sol0 = registry.counter("spice.transient.solves").value();
  const auto bp0 = registry.counter("spice.transient.breakpoint_hits").value();

  spice::Circuit ckt;
  const auto in = ckt.node("in");
  const auto out = ckt.node("out");
  // A pulse source gives the engine breakpoints to snap to.
  ckt.add<spice::VoltageSource>(
      "V1", in, spice::kGround,
      spice::Waveform::pulse(0.0, 1.0, 10e-6, 1e-6, 1e-6, 20e-6, 50e-6));
  ckt.add<spice::Resistor>("R1", in, out, 1e3);
  ckt.add<spice::Capacitor>("C1", out, spice::kGround, 1e-9);

  spice::TransientOptions opts;
  opts.t_stop = 100e-6;
  opts.dt_max = 1e-6;
  spice::TransientStats stats;
  spice::run_transient(ckt, opts, &stats);

  EXPECT_EQ(registry.counter("spice.transient.runs").value(), runs0 + 1);
  EXPECT_EQ(registry.counter("spice.transient.accepted_steps").value(),
            acc0 + stats.accepted_steps);
  EXPECT_EQ(registry.counter("spice.transient.rejected_steps").value(),
            rej0 + stats.rejected_steps);
  EXPECT_EQ(registry.counter("spice.transient.newton_iterations").value(),
            newt0 + stats.newton_iterations);
  EXPECT_EQ(registry.counter("spice.transient.factorizations").value(),
            fac0 + stats.factorizations);
  EXPECT_EQ(registry.counter("spice.transient.solves").value(),
            sol0 + stats.solves);
  EXPECT_EQ(registry.counter("spice.transient.breakpoint_hits").value(),
            bp0 + stats.breakpoint_hits);

  // The run itself produced sane stats. Every Newton iteration solves
  // once; the solver layer may skip factoring bit-identical matrices, so
  // factorizations can only lag solves.
  EXPECT_GT(stats.accepted_steps, 0u);
  EXPECT_GT(stats.breakpoint_hits, 0u);  // pulse edges were snapped
  EXPECT_EQ(stats.newton_iterations, stats.solves);
  EXPECT_GT(stats.factorizations, 0u);
  EXPECT_LE(stats.factorizations, stats.solves);
  EXPECT_GE(stats.max_newton_iterations, 1u);
  EXPECT_GT(stats.wall_seconds, 0.0);
}

TEST(Instrumentation, SnappedBreakpointsAreAlwaysRecorded) {
  // record_every large enough that decimation alone would skip the pulse
  // edge; the engine must still emit the snapped point.
  spice::Circuit ckt;
  const auto in = ckt.node("in");
  const auto out = ckt.node("out");
  ckt.add<spice::VoltageSource>(
      "V1", in, spice::kGround,
      spice::Waveform::pulse(0.0, 1.0, 50e-6, 1e-6, 1e-6, 100e-6, 1.0));
  ckt.add<spice::Resistor>("R1", in, out, 1e3);
  ckt.add<spice::Capacitor>("C1", out, spice::kGround, 1e-9);

  spice::TransientOptions opts;
  opts.t_stop = 60e-6;
  opts.dt_max = 1e-6;
  opts.record_every = 1000;  // would record almost nothing by phase alone
  spice::TransientStats stats;
  const auto res = spice::run_transient(ckt, opts, &stats);

  EXPECT_GT(stats.breakpoint_hits, 0u);
  bool recorded_edge = false;
  for (const double t : res.time()) {
    if (std::abs(t - 50e-6) < 1e-12) recorded_edge = true;
  }
  EXPECT_TRUE(recorded_edge);
  // The final point is recorded regardless of decimation phase.
  EXPECT_NEAR(res.time().back(), opts.t_stop, 1e-9);
}

TEST(RunReport, WritesParsableReportJson) {
  // Run in a scratch directory; keep env mutations local to this test.
  const std::string dir = ::testing::TempDir() + "obs_report_test";
  ASSERT_EQ(::setenv("IRONIC_REPORT_DIR", dir.c_str(), 1), 0);
  ::unsetenv("IRONIC_TRACE");
  ::unsetenv("IRONIC_METRICS");
  ::unsetenv("IRONIC_REPORT");

  std::string path;
  {
    obs::RunReport report("obs_unit");
    report.metric("answer", 42.0);
    report.note("mode", "unit-test");
    path = report.report_path();
    ASSERT_FALSE(path.empty());
    EXPECT_TRUE(report.write());
  }
  ::unsetenv("IRONIC_REPORT_DIR");

  std::ifstream is(path);
  ASSERT_TRUE(is.good()) << "missing " << path;
  std::ostringstream ss;
  ss << is.rdbuf();
  const Value root = Value::parse(ss.str());
  EXPECT_EQ(root.at("schema").as_string(), "ironic.run_report/1");
  EXPECT_EQ(root.at("name").as_string(), "obs_unit");
  EXPECT_FALSE(root.at("git_sha").as_string().empty());
  EXPECT_GE(root.at("wall_seconds").as_double(), 0.0);
  EXPECT_TRUE(root.at("obs_compiled_in").as_bool());
  EXPECT_DOUBLE_EQ(root.at("extras").at("answer").as_double(), 42.0);
  EXPECT_EQ(root.at("notes").at("mode").as_string(), "unit-test");
  EXPECT_TRUE(root.at("metrics").is_array());
}

TEST(RunReport, SuppressedWhenReportEnvIsZero) {
  ASSERT_EQ(::setenv("IRONIC_REPORT", "0", 1), 0);
  {
    obs::RunReport report("obs_suppressed");
    EXPECT_EQ(report.report_path(), "");
  }
  ::unsetenv("IRONIC_REPORT");
}

#else  // !IRONIC_OBS_ENABLED

TEST(Disabled, SpanAndTimerAreNoOps) {
  obs::Span span("noop", "test");
  span.arg("k", "v");
  span.end();
  obs::Counter sink;
  {
    obs::ScopedTimer timer(sink);
  }
  SUCCEED();
}

#endif  // IRONIC_OBS_ENABLED

}  // namespace
