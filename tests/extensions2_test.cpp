// Tests for the second extension wave: coil tilt / tri-axial receivers,
// CSV waveform export, the voltage-doubler topology, and the patch
// firmware command handler.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/comms/protocol.hpp"
#include "src/magnetics/polygon.hpp"
#include "src/patch/firmware.hpp"
#include "src/pm/rectifier.hpp"
#include "src/spice/devices_passive.hpp"
#include "src/spice/devices_sources.hpp"
#include "src/spice/engine.hpp"
#include "src/util/constants.hpp"

namespace {

using namespace ironic;
using namespace ironic::spice;
namespace constants = ironic::constants;

// ------------------------------------------------------------------- tilt

magnetics::CoilSpec small_square(double side) {
  magnetics::CoilSpec spec;
  spec.outer_width = side;
  spec.outer_height = side;
  spec.turns_per_layer = 1;
  spec.layers = 1;
  spec.trace_width = 200e-6;
  spec.trace_thickness = 35e-6;
  spec.turn_spacing = 200e-6;
  spec.layer_pitch = 0.0;
  return spec;
}

TEST(CoilTilt, ZeroTiltMatchesUntilted) {
  const auto tx = magnetics::PolygonCoil::rectangular(small_square(20e-3));
  const auto rx = magnetics::PolygonCoil::rectangular(small_square(8e-3));
  const double m0 = magnetics::mutual_inductance(tx, rx, 10e-3);
  const double mt = magnetics::mutual_inductance_tilted(tx, rx, 10e-3, 0.0);
  EXPECT_NEAR(mt, m0, std::abs(m0) * 1e-12);
}

TEST(CoilTilt, CouplingFollowsCosineShape) {
  const auto tx = magnetics::PolygonCoil::rectangular(small_square(20e-3));
  const auto rx = magnetics::PolygonCoil::rectangular(small_square(6e-3));
  const double m0 = magnetics::mutual_inductance_tilted(tx, rx, 12e-3, 0.0);
  const double m45 =
      magnetics::mutual_inductance_tilted(tx, rx, 12e-3, constants::kPi / 4.0);
  const double m80 =
      magnetics::mutual_inductance_tilted(tx, rx, 12e-3, 80.0 * constants::kPi / 180.0);
  // Roughly cos(theta), within the near-field correction.
  EXPECT_NEAR(m45 / m0, std::cos(constants::kPi / 4.0), 0.12);
  EXPECT_LT(std::abs(m80), std::abs(m45));
  EXPECT_GT(std::abs(m45), 0.0);
}

TEST(CoilTilt, NinetyDegreesNearlyDecouples) {
  const auto tx = magnetics::PolygonCoil::rectangular(small_square(20e-3));
  const auto rx = magnetics::PolygonCoil::rectangular(small_square(6e-3));
  const double m0 = magnetics::mutual_inductance_tilted(tx, rx, 12e-3, 0.0);
  const double m90 =
      magnetics::mutual_inductance_tilted(tx, rx, 12e-3, constants::kPi / 2.0);
  EXPECT_LT(std::abs(m90), 0.05 * std::abs(m0));
}

TEST(CoilTilt, TriaxialReceiverIsOrientationTolerant) {
  // The ref [25] idea: a tri-axial receiver's RSS coupling stays within
  // a tight band across tilt, where the single coil collapses.
  const auto tx = magnetics::PolygonCoil::rectangular(small_square(20e-3));
  const auto rx = magnetics::PolygonCoil::rectangular(small_square(6e-3));
  double rss_min = 1e300, rss_max = 0.0, single_min = 1e300;
  for (double deg : {0.0, 20.0, 40.0, 60.0, 80.0, 90.0}) {
    const double tilt = deg * constants::kPi / 180.0;
    const double rss = magnetics::triaxial_coupling_rss(tx, rx, 12e-3, tilt);
    const double single =
        std::abs(magnetics::mutual_inductance_tilted(tx, rx, 12e-3, tilt));
    rss_min = std::min(rss_min, rss);
    rss_max = std::max(rss_max, rss);
    single_min = std::min(single_min, single);
  }
  EXPECT_GT(rss_min, 0.5 * rss_max);       // tri-axial: bounded variation
  EXPECT_LT(single_min, 0.05 * rss_max);   // single coil: full dropout
}

TEST(CoilTilt, Validation) {
  const auto tx = magnetics::PolygonCoil::rectangular(small_square(10e-3));
  EXPECT_THROW(magnetics::mutual_inductance_tilted(tx, tx, 0.0, 0.1),
               std::invalid_argument);
  EXPECT_THROW(magnetics::triaxial_coupling_rss(tx, tx, -1.0, 0.1),
               std::invalid_argument);
}

// -------------------------------------------------------------- CSV export

TEST(CsvExport, HeaderAndRows) {
  Circuit ckt;
  const auto in = ckt.node("in");
  ckt.add<VoltageSource>("V1", in, kGround, Waveform::dc(1.0));
  ckt.add<Resistor>("R1", in, kGround, 1e3);
  TransientOptions opts;
  opts.t_stop = 10e-6;
  opts.dt_max = 1e-6;
  const auto res = run_transient(ckt, opts);

  std::ostringstream os;
  res.write_csv(os, {"v(in)"});
  const std::string csv = os.str();
  EXPECT_EQ(csv.rfind("time,v(in)\n", 0), 0u);  // header first
  // One row per recorded point plus header.
  const auto rows = std::count(csv.begin(), csv.end(), '\n');
  EXPECT_EQ(static_cast<std::size_t>(rows), res.num_points() + 1);
  EXPECT_NE(csv.find(",1"), std::string::npos);
}

TEST(CsvExport, DecimationAndValidation) {
  Circuit ckt;
  const auto in = ckt.node("in");
  ckt.add<VoltageSource>("V1", in, kGround, Waveform::dc(1.0));
  ckt.add<Resistor>("R1", in, kGround, 1e3);
  TransientOptions opts;
  opts.t_stop = 100e-6;
  opts.dt_max = 1e-6;
  const auto res = run_transient(ckt, opts);
  std::ostringstream os;
  res.write_csv(os, {}, 10);
  const std::string csv = os.str();
  const auto rows = std::count(csv.begin(), csv.end(), '\n');
  EXPECT_LT(rows, 14);
  EXPECT_THROW(res.write_csv(os, {}, 0), std::invalid_argument);
  EXPECT_THROW(res.write_csv(os, {"v(ghost)"}), std::invalid_argument);
}

// ----------------------------------------------------------------- doubler

TEST(VoltageDoubler, NearlyDoublesTheCarrier) {
  Circuit ckt;
  const auto src = ckt.node("src");
  const auto vi = ckt.node("vi");
  ckt.add<VoltageSource>("Vs", src, kGround, Waveform::sine(2.0, 5e6));
  ckt.add<Resistor>("Rs", src, vi, 20.0);
  pm::DoublerOptions opt;
  opt.storage_capacitance = 10e-9;
  const auto h = pm::build_voltage_doubler(ckt, "dbl", vi, opt);
  ckt.add<Resistor>("RL", h.output, kGround, 50e3);
  TransientOptions opts;
  opts.t_stop = 80e-6;
  opts.dt_max = 5e-9;
  const auto res = run_transient(ckt, opts);
  const double vo = res.mean_between("v(dbl.vo)", 70e-6, 80e-6);
  // 2A - 2 drops ~ 2.4-2.6 V from a 2 V carrier.
  EXPECT_GT(vo, 2.2);
  EXPECT_LT(vo, 4.0);
}

TEST(VoltageDoubler, BeatsHalfWaveAtLowDrive) {
  // The doubler's reason to exist: usable output from a carrier too weak
  // for the single-diode rectifier.
  const double amplitude = 1.4;
  const auto run_doubler = [&] {
    Circuit ckt;
    const auto src = ckt.node("src");
    const auto vi = ckt.node("vi");
    ckt.add<VoltageSource>("Vs", src, kGround, Waveform::sine(amplitude, 5e6));
    ckt.add<Resistor>("Rs", src, vi, 20.0);
    pm::DoublerOptions opt;
    opt.storage_capacitance = 10e-9;
    pm::build_voltage_doubler(ckt, "dbl", vi, opt);
    ckt.add<Resistor>("RL", ckt.find_node("dbl.vo"), kGround, 50e3);
    TransientOptions opts;
    opts.t_stop = 80e-6;
    opts.dt_max = 5e-9;
    return run_transient(ckt, opts).mean_between("v(dbl.vo)", 70e-6, 80e-6);
  };
  const auto run_half = [&] {
    Circuit ckt;
    const auto src = ckt.node("src");
    const auto vi = ckt.node("vi");
    ckt.add<VoltageSource>("Vs", src, kGround, Waveform::sine(amplitude, 5e6));
    ckt.add<Resistor>("Rs", src, vi, 20.0);
    pm::RectifierOptions opt;
    opt.storage_capacitance = 10e-9;
    pm::build_rectifier(ckt, "r", vi, Waveform::dc(0.0), Waveform::dc(1.8), opt);
    ckt.add<Resistor>("RL", ckt.find_node("r.vo"), kGround, 50e3);
    TransientOptions opts;
    opts.t_stop = 80e-6;
    opts.dt_max = 5e-9;
    return run_transient(ckt, opts).mean_between("v(r.vo)", 70e-6, 80e-6);
  };
  EXPECT_GT(run_doubler(), run_half() + 0.5);
}

TEST(VoltageDoubler, Validation) {
  Circuit ckt;
  pm::DoublerOptions bad;
  bad.pump_capacitance = 0.0;
  EXPECT_THROW(pm::build_voltage_doubler(ckt, "d", ckt.node("a"), bad),
               std::invalid_argument);
}

// ---------------------------------------------------------------- firmware

TEST(Firmware, MeasureCommandRunsFullSession) {
  patch::PatchController controller;
  controller.handle(patch::PatchEvent::kBtConnect);
  patch::PatchFirmware fw(controller, [] { return 0x12B7u; });

  comms::Request request;
  request.sequence = 9;
  request.command = comms::Command::kMeasure;
  const auto response = fw.handle(request);
  ASSERT_TRUE(response.ok);
  // 14-bit code split across two bytes.
  const auto code = static_cast<std::uint32_t>((response.payload[0] << 8) |
                                               response.payload[1]);
  EXPECT_EQ(code, 0x12B7u);
  // The controller went back to connected and burned real charge.
  EXPECT_EQ(controller.state(), patch::PatchState::kConnected);
  EXPECT_LT(controller.battery().state_of_charge(), 1.0);
  EXPECT_GT(fw.busy_time(), 1.0);
}

TEST(Firmware, PingAndStatus) {
  patch::PatchController controller;
  patch::PatchFirmware fw(controller, [] { return 0u; });
  comms::Request ping;
  ping.command = comms::Command::kPing;
  EXPECT_TRUE(fw.handle(ping).ok);

  comms::Request status;
  status.command = comms::Command::kReadStatus;
  const auto response = fw.handle(status);
  ASSERT_TRUE(response.ok);
  ASSERT_EQ(response.payload.size(), 2u);
  EXPECT_EQ(response.payload[0], 100);  // full battery, percent
}

TEST(Firmware, BadModePayloadRejected) {
  patch::PatchController controller;
  patch::PatchFirmware fw(controller, [] { return 0u; });
  comms::Request mode;
  mode.command = comms::Command::kSetMode;
  mode.payload = {9};  // no such mode
  EXPECT_FALSE(fw.handle(mode).ok);
  mode.payload = {1};
  EXPECT_TRUE(fw.handle(mode).ok);
}

TEST(Firmware, DeadBatteryRefusesService) {
  patch::PatchController controller;
  controller.handle(patch::PatchEvent::kStartPowering);
  controller.advance(20.0 * 3600.0);  // drain completely
  patch::PatchFirmware fw(controller, [] { return 0u; });
  comms::Request request;
  request.command = comms::Command::kMeasure;
  EXPECT_FALSE(fw.handle(request).ok);
}

TEST(Firmware, EndToEndWithTransactor) {
  patch::PatchController controller;
  controller.handle(patch::PatchEvent::kBtConnect);
  patch::PatchFirmware fw(controller, [] { return 4286u; });
  comms::Transactor tx;
  comms::Request request;
  request.sequence = tx.next_sequence();
  request.command = comms::Command::kMeasure;
  const auto clean = [](const comms::Bits& b) { return b; };
  const auto response = tx.execute(
      request, clean, clean,
      [&](const comms::Request& r) { return fw.handle(r); });
  ASSERT_TRUE(response.has_value());
  EXPECT_TRUE(response->ok);
  const auto code = static_cast<std::uint32_t>((response->payload[0] << 8) |
                                               response->payload[1]);
  EXPECT_EQ(code, 4286u);
}

}  // namespace
