// Graceful degradation: the patch sheds bluetooth back-haul, then
// measurement cadence, then all activity as the battery drains —
// mirroring the paper's 10 h / 3.5 h / 1.5 h battery tiers.
#include <gtest/gtest.h>

#include "src/patch/controller.hpp"
#include "src/patch/scheduler.hpp"

namespace {

using namespace ironic::patch;

TEST(Degradation, PolicyLadderAndHysteresis) {
  DegradationPolicy policy;  // 0.50 / 0.25 / 0.10, hysteresis 0.05
  EXPECT_EQ(policy.level_for(1.0, DegradationLevel::kNominal),
            DegradationLevel::kNominal);
  EXPECT_EQ(policy.level_for(0.45, DegradationLevel::kNominal),
            DegradationLevel::kShedBackhaul);
  EXPECT_EQ(policy.level_for(0.20, DegradationLevel::kShedBackhaul),
            DegradationLevel::kReducedRate);
  EXPECT_EQ(policy.level_for(0.05, DegradationLevel::kReducedRate),
            DegradationLevel::kSafeIdle);
  // Escalation can skip rungs on a fast sag.
  EXPECT_EQ(policy.level_for(0.08, DegradationLevel::kNominal),
            DegradationLevel::kSafeIdle);
  // De-escalation needs threshold + hysteresis: 0.52 is NOT enough to
  // leave shed-backhaul, 0.56 is.
  EXPECT_EQ(policy.level_for(0.52, DegradationLevel::kShedBackhaul),
            DegradationLevel::kShedBackhaul);
  EXPECT_EQ(policy.level_for(0.56, DegradationLevel::kShedBackhaul),
            DegradationLevel::kNominal);
  // A full recharge walks all the way back.
  EXPECT_EQ(policy.level_for(1.0, DegradationLevel::kSafeIdle),
            DegradationLevel::kNominal);
}

TEST(Degradation, ControllerShedsBackhaulAndRefusesReconnect) {
  PatchController controller;
  controller.set_degradation_policy({});
  controller.handle(PatchEvent::kBtConnect);
  ASSERT_EQ(controller.state(), PatchState::kConnected);

  // Drain until SoC crosses the shed threshold.
  while (controller.battery().state_of_charge() > 0.49) controller.advance(60.0);
  EXPECT_EQ(controller.degradation_level(), DegradationLevel::kShedBackhaul);
  // The controller dropped bluetooth on its own...
  EXPECT_EQ(controller.state(), PatchState::kIdle);
  // ...and refuses to re-acquire it while shed.
  EXPECT_FALSE(controller.can_handle(PatchEvent::kBtConnect));
  // Powering is still allowed at this level.
  EXPECT_TRUE(controller.can_handle(PatchEvent::kStartPowering));
}

TEST(Degradation, SafeIdleAbortsPoweringBurst) {
  PatchController controller;
  DegradationPolicy policy;
  policy.safe_idle_soc = 0.90;  // trip quickly for the test
  controller.set_degradation_policy(policy);
  controller.handle(PatchEvent::kStartPowering);
  while (controller.battery().state_of_charge() > 0.89 && !controller.shut_down()) {
    controller.advance(60.0);
  }
  EXPECT_EQ(controller.degradation_level(), DegradationLevel::kSafeIdle);
  EXPECT_EQ(controller.state(), PatchState::kIdle);
  EXPECT_FALSE(controller.can_handle(PatchEvent::kStartPowering));
}

TEST(Degradation, DisabledByDefault) {
  PatchController controller;
  while (controller.battery().state_of_charge() > 0.3) controller.advance(600.0);
  EXPECT_EQ(controller.degradation_level(), DegradationLevel::kNominal);
  EXPECT_TRUE(controller.can_handle(PatchEvent::kBtConnect));
}

TEST(Degradation, DegradedPlanShedsInOrder) {
  SessionPlan base;
  const auto shed = degraded_plan(base, DegradationLevel::kShedBackhaul);
  EXPECT_EQ(shed.connect_time, 0.0);
  EXPECT_EQ(shed.downlink_rate, base.downlink_rate);

  const auto reduced = degraded_plan(base, DegradationLevel::kReducedRate);
  EXPECT_EQ(reduced.connect_time, 0.0);
  EXPECT_EQ(reduced.downlink_rate, base.downlink_rate / 4.0);
  EXPECT_EQ(reduced.uplink_rate, base.uplink_rate / 4.0);

  const auto nominal = degraded_plan(base, DegradationLevel::kNominal);
  EXPECT_EQ(nominal.connect_time, base.connect_time);
}

TEST(Degradation, MissionWalksTheLadderAndOutlivesNominal) {
  // An aggressive cadence on a small battery: the nominal mission dies
  // early; the degrading mission sheds its way down the ladder and keeps
  // measuring longer.
  DegradedMissionOptions options;
  options.plan.connect_time = 20.0;
  options.measurement_interval = 120.0;
  options.horizon = 12.0 * 3600.0;
  BatterySpec small;
  small.capacity_mah = 60.0;

  const auto summary = simulate_degrading_mission({}, small, options);
  EXPECT_GT(summary.measurements, 0);
  // The ladder was actually walked: time spent in every level.
  for (int level = 0; level < 4; ++level) {
    EXPECT_GT(summary.time_in_level[level], 0.0) << "level " << level;
  }
  EXPECT_FALSE(summary.timeline.empty());
  // Levels never regress during a pure discharge.
  for (std::size_t i = 1; i < summary.timeline.size(); ++i) {
    EXPECT_GE(static_cast<int>(summary.timeline[i].level),
              static_cast<int>(summary.timeline[i - 1].level));
  }

  // Reference: the same mission with shedding disabled (thresholds at 0)
  // drains flat sooner.
  DegradedMissionOptions greedy = options;
  greedy.policy.shed_backhaul_soc = 0.0;
  greedy.policy.reduced_rate_soc = 0.0;
  greedy.policy.safe_idle_soc = 0.0;
  const auto reference = simulate_degrading_mission({}, small, greedy);
  ASSERT_GT(reference.shutdown_time, 0.0);
  // Shedding must buy survival time (or outlast the horizon entirely).
  if (summary.shutdown_time > 0.0) {
    EXPECT_GT(summary.shutdown_time, reference.shutdown_time);
  }
}

TEST(Degradation, MissionIsDeterministic) {
  DegradedMissionOptions options;
  options.measurement_interval = 240.0;
  options.horizon = 6.0 * 3600.0;
  BatterySpec small;
  small.capacity_mah = 80.0;
  const auto a = simulate_degrading_mission({}, small, options);
  const auto b = simulate_degrading_mission({}, small, options);
  EXPECT_EQ(a.measurements, b.measurements);
  EXPECT_EQ(a.measurements_shed, b.measurements_shed);
  EXPECT_EQ(a.shutdown_time, b.shutdown_time);
  ASSERT_EQ(a.timeline.size(), b.timeline.size());
  for (std::size_t i = 0; i < a.timeline.size(); ++i) {
    EXPECT_EQ(a.timeline[i].soc, b.timeline[i].soc);
    EXPECT_EQ(a.timeline[i].level, b.timeline[i].level);
  }
}

}  // namespace
