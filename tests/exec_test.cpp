// ThreadPool / TaskGroup / parallel_for edge cases, the cancellation
// semantics, the serial-vs-parallel bit-identity of the tolerance Monte
// Carlo, and a concurrency hammer over the obs metrics/trace machinery.
#include "src/exec/exec.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "src/core/tolerance.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/util/log.hpp"

using namespace ironic;
using namespace ironic::exec;

namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  TaskGroup group(pool);
  for (int i = 0; i < 64; ++i) group.run([&count] { ++count; });
  group.wait();
  EXPECT_EQ(count.load(), 64);
  const auto stats = pool.stats();
  EXPECT_EQ(stats.submitted, 64u);
  EXPECT_EQ(stats.run, 64u);
}

TEST(ThreadPool, EmptyTaskGroupWaitReturnsImmediately) {
  ThreadPool pool(2);
  TaskGroup group(pool);
  EXPECT_NO_THROW(group.wait());
  EXPECT_NO_THROW(group.wait());  // wait() is idempotent
}

TEST(ThreadPool, PoolOfOneThreadStillCompletes) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  std::atomic<int> count{0};
  TaskGroup group(pool);
  for (int i = 0; i < 16; ++i) group.run([&count] { ++count; });
  group.wait();
  EXPECT_EQ(count.load(), 16);
}

TEST(ThreadPool, NestedGroupOnWorkerDoesNotDeadlock) {
  // A task that itself fans out and waits must not deadlock, even when
  // the pool has a single worker — wait() helps drain the deques.
  ThreadPool pool(1);
  std::atomic<int> inner_total{0};
  TaskGroup outer(pool);
  outer.run([&pool, &inner_total] {
    TaskGroup inner(pool);
    for (int i = 0; i < 8; ++i) inner.run([&inner_total] { ++inner_total; });
    inner.wait();
  });
  outer.wait();
  EXPECT_EQ(inner_total.load(), 8);
}

TEST(ThreadPool, ThrowingTaskPropagatesToWaiterAndPoolSurvives) {
  ThreadPool pool(2);
  {
    TaskGroup group(pool);
    group.run([] { throw std::runtime_error("boom"); });
    EXPECT_THROW(
        {
          try {
            group.wait();
          } catch (const std::runtime_error& e) {
            EXPECT_STREQ(e.what(), "boom");
            throw;
          }
        },
        std::runtime_error);
  }
  // The pool is still usable after the exception.
  std::atomic<int> count{0};
  TaskGroup after(pool);
  for (int i = 0; i < 8; ++i) after.run([&count] { ++count; });
  after.wait();
  EXPECT_EQ(count.load(), 8);
}

TEST(ThreadPool, TaskExceptionCancelsQueuedSiblings) {
  // Park the only worker on a long bare-submit task so the waiter's
  // helping loop is the sole consumer. It pops LIFO, so the thrower
  // (submitted last) runs first; every sibling is then dequeued under a
  // cancelled group and skipped. The thrown error (not TaskCancelled)
  // must win.
  ThreadPool pool(1);
  std::atomic<bool> parked{false};
  pool.submit([&parked] {
    parked = true;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  });
  while (!parked) std::this_thread::yield();
  std::atomic<int> ran{0};
  TaskGroup group(pool);
  for (int i = 0; i < 32; ++i) group.run([&ran] { ++ran; });
  group.run([] { throw std::runtime_error("first"); });
  try {
    group.wait();
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "first");
  }
  EXPECT_EQ(ran.load(), 0);
}

TEST(ThreadPool, SimultaneousThrowersFirstWinsOthersCounted) {
  // Multi-exception semantics under real concurrency: 8 tasks rendezvous
  // on a barrier, then all throw at once. Exactly one exception (the
  // first captured) propagates from wait(), every thrower is accounted
  // in errors(), nothing deadlocks, and the pool survives. The
  // fleet supervisor's containment layer is built on this contract.
  ThreadPool pool(8);
  constexpr int kThrowers = 8;
  std::atomic<int> arrived{0};
  std::atomic<int> threw{0};
  TaskGroup group(pool);
  for (int i = 0; i < kThrowers; ++i) {
    group.run([&arrived, &threw, i] {
      arrived.fetch_add(1, std::memory_order_relaxed);
      // Spin until every task is in flight so the throws overlap; no
      // task can be skipped by a sibling's cancellation because all of
      // them are already past the dequeue check.
      while (arrived.load(std::memory_order_relaxed) < kThrowers) {
        std::this_thread::yield();
      }
      threw.fetch_add(1, std::memory_order_relaxed);
      throw std::runtime_error("thrower " + std::to_string(i));
    });
  }
  try {
    group.wait();
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    // One of the 8, whichever was captured first.
    EXPECT_EQ(std::string(e.what()).rfind("thrower ", 0), 0u);
  }
  EXPECT_EQ(threw.load(), kThrowers);
  EXPECT_EQ(group.errors(), static_cast<std::size_t>(kThrowers));

  // The pool is intact: a fresh group on the same pool runs clean, and
  // the old group's error count is cumulative, not reset by wait().
  std::atomic<int> count{0};
  TaskGroup after(pool);
  for (int i = 0; i < 16; ++i) after.run([&count] { ++count; });
  after.wait();
  EXPECT_EQ(count.load(), 16);
  EXPECT_EQ(after.errors(), 0u);
  EXPECT_EQ(group.errors(), static_cast<std::size_t>(kThrowers));
}

TEST(ThreadPool, CancelSkipsQueuedTasksAndWaitThrows) {
  ThreadPool pool(1);
  std::atomic<int> ran{0};
  TaskGroup group(pool);
  group.cancel();  // cancel before anything is dequeued
  for (int i = 0; i < 8; ++i) group.run([&ran] { ++ran; });
  EXPECT_THROW(group.wait(), TaskCancelled);
  EXPECT_EQ(ran.load(), 0);
  EXPECT_TRUE(group.cancelled());
}

TEST(ThreadPool, RunWithTimeoutExpiredDeadlineIsGroupError) {
  ThreadPool pool(1);
  TaskGroup group(pool);
  // A zero timeout has expired by the time the task is dequeued, however
  // fast the pool is: the closure must never run and the group must
  // report the deadline as its error.
  std::atomic<int> ran{0};
  group.run_with_timeout([&ran](const CancellationToken&) { ++ran; },
                         std::chrono::nanoseconds(0));
  EXPECT_THROW(group.wait(), TaskCancelled);
  EXPECT_EQ(ran.load(), 0);
}

TEST(ThreadPool, TryRunOneOnIdlePoolReturnsFalse) {
  ThreadPool pool(2);
  EXPECT_FALSE(pool.try_run_one());
}

TEST(ParallelFor, EmptyRangeIsANoOp) {
  ThreadPool pool(2);
  int count = 0;
  parallel_for(pool, 5, 5, [&count](std::size_t) { ++count; });
  parallel_for(pool, 7, 3, [&count](std::size_t) { ++count; });
  EXPECT_EQ(count, 0);
}

TEST(ParallelFor, SingleItemRange) {
  ThreadPool pool(4);
  std::vector<int> hits(1, 0);
  parallel_for(pool, 0, 1, [&hits](std::size_t i) { hits[i] += 1; });
  EXPECT_EQ(hits[0], 1);
}

TEST(ParallelFor, EveryIndexVisitedExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  ParallelForOptions opts;
  opts.grain = 7;  // deliberately not a divisor of kN
  parallel_for(
      pool, 0, kN, [&hits](std::size_t i) { hits[i].fetch_add(1); }, opts);
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelFor, CancelledTokenThrows) {
  ThreadPool pool(2);
  CancellationSource source;
  source.cancel();
  ParallelForOptions opts;
  opts.token = source.token();
  std::atomic<int> ran{0};
  EXPECT_THROW(
      parallel_for(pool, 0, 100, [&ran](std::size_t) { ++ran; }, opts),
      TaskCancelled);
}

TEST(ParallelFor, MidSweepCancellationStopsScheduledWork) {
  // The first item to execute — whichever it is under the LIFO/steal
  // scheduling — trips the source; every chunk dequeued afterwards is
  // skipped, so only the handful already in flight can run and the wait
  // reports cancellation.
  ThreadPool pool(2);
  CancellationSource source;
  ParallelForOptions opts;
  opts.token = source.token();
  opts.grain = 1;
  std::atomic<int> ran{0};
  std::atomic<bool> first{true};
  EXPECT_THROW(parallel_for(
                   pool, 0, 64,
                   [&](std::size_t) {
                     if (first.exchange(false)) source.cancel();
                     ++ran;
                   },
                   opts),
               TaskCancelled);
  EXPECT_LT(ran.load(), 64);
}

TEST(ParallelFor, SerialAndParallelSumsMatchBitwise) {
  // Slot-indexed writes + per-index RNG stream: the documented recipe
  // must give bit-identical doubles for 1 worker vs 4.
  constexpr std::size_t kN = 256;
  const auto run_with = [](std::size_t threads) {
    ThreadPool pool(threads);
    std::vector<double> out(kN);
    auto streams = util::Rng(77).split(kN);
    parallel_for(pool, 0, kN, [&](std::size_t i) {
      util::Rng rng = streams[i];
      out[i] = rng.normal() + rng.uniform();
    });
    return out;
  };
  const auto serial = run_with(1);
  const auto parallel = run_with(4);
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(serial[i], parallel[i]) << i;
}

TEST(ExecTolerance, SerialAndPooledMonteCarloBitIdentical) {
  core::ToleranceSpec spec;
  spec.runs = 6;  // keep the end-to-end sims affordable in a unit test
  const auto base = core::shortened_fig11_config();
  const auto serial = core::run_tolerance_analysis(spec, base);
  ThreadPool pool(4);
  const auto pooled = core::run_tolerance_analysis(spec, base, pool);
  ASSERT_EQ(serial.runs, pooled.runs);
  EXPECT_EQ(serial.pass_charged, pooled.pass_charged);
  EXPECT_EQ(serial.pass_downlink, pooled.pass_downlink);
  EXPECT_EQ(serial.pass_uplink, pooled.pass_uplink);
  EXPECT_EQ(serial.pass_regulation, pooled.pass_regulation);
  EXPECT_EQ(serial.pass_all, pooled.pass_all);
  EXPECT_EQ(serial.vo_min_worst, pooled.vo_min_worst);  // bitwise, no tolerance
  ASSERT_EQ(serial.details.size(), pooled.details.size());
  for (std::size_t k = 0; k < serial.details.size(); ++k) {
    EXPECT_EQ(serial.details[k].vo_min, pooled.details[k].vo_min) << k;
    EXPECT_EQ(serial.details[k].t_charge, pooled.details[k].t_charge) << k;
    EXPECT_EQ(serial.details[k].charged, pooled.details[k].charged) << k;
  }
}

TEST(ObsConcurrency, MetricsSurviveHammeringFromPoolWorkers) {
  // Satellite audit: counters/gauges/histograms take increments from many
  // workers at once; totals must be exact (no lost updates) and handles
  // cached before a reset() must stay valid afterwards.
  auto& reg = obs::MetricsRegistry::instance();
  auto& counter = reg.counter("test.exec.hammer_count");
  auto& gauge = reg.gauge("test.exec.hammer_gauge");
  auto& hist = reg.histogram("test.exec.hammer_hist");
  counter.reset();
  gauge.reset();
  hist.reset();

  constexpr int kTasks = 64;
  constexpr int kPerTask = 500;
  ThreadPool pool(4);
  TaskGroup group(pool);
  for (int t = 0; t < kTasks; ++t) {
    group.run([&] {
      for (int i = 0; i < kPerTask; ++i) {
        counter.add(1);
        gauge.add(1.0);
        hist.observe(static_cast<double>(i));
      }
    });
  }
  group.wait();
  EXPECT_EQ(counter.value(), static_cast<std::uint64_t>(kTasks) * kPerTask);
  EXPECT_DOUBLE_EQ(gauge.value(), static_cast<double>(kTasks) * kPerTask);
  EXPECT_EQ(hist.count(), static_cast<std::uint64_t>(kTasks) * kPerTask);

  // reset() zeroes in place; the references above must remain usable.
  reg.reset();
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_DOUBLE_EQ(gauge.value(), 0.0);
  EXPECT_EQ(hist.count(), 0u);
  counter.add(3);
  EXPECT_EQ(counter.value(), 3u);
}

TEST(ObsConcurrency, TraceSpansFromManyWorkersAreWellFormed) {
  auto& rec = obs::TraceRecorder::instance();
  rec.clear();
  rec.enable();
  ThreadPool pool(4);
  TaskGroup group(pool);
  for (int t = 0; t < 32; ++t) {
    group.run([t] {
      obs::Span span("exec_test.span", "test");
      (void)t;
    });
  }
  group.wait();
  rec.disable();
  const auto events = rec.events();
  if (obs::kEnabled) {
    EXPECT_EQ(events.size(), 32u);
    for (const auto& e : events) {
      EXPECT_EQ(e.name, "exec_test.span");
      EXPECT_GE(e.dur_us, 0.0);
    }
  } else {
    EXPECT_TRUE(events.empty());
  }
  rec.clear();
}

TEST(ParallelFor, ProgressReportsEveryChunkOnPooledPath) {
  // n=100, grain=7 -> 15 chunks. Cumulative counts arrive out of order
  // across workers, but the multiset of values is fixed: 15 distinct
  // cumulative totals, ending at exactly n.
  ThreadPool pool(4);
  std::mutex mutex;
  std::vector<std::size_t> done;
  std::atomic<std::size_t> sum{0};
  ParallelForOptions opts;
  opts.grain = 7;
  opts.progress = [&](std::size_t completed, std::size_t total) {
    EXPECT_EQ(total, 100u);
    const std::lock_guard<std::mutex> lock(mutex);
    done.push_back(completed);
  };
  parallel_for(
      pool, 0, 100, [&](std::size_t i) { sum += i; }, opts);
  EXPECT_EQ(sum.load(), 4950u);
  ASSERT_EQ(done.size(), 15u);
  std::sort(done.begin(), done.end());
  EXPECT_EQ(std::unique(done.begin(), done.end()), done.end());
  EXPECT_EQ(done.back(), 100u);
}

TEST(ParallelFor, ProgressReportsInOrderOnInlinePath) {
  // A single-worker pool runs the range inline: progress fires at every
  // grain boundary plus the final partial chunk, strictly in order.
  ThreadPool pool(1);
  std::vector<std::size_t> done;
  ParallelForOptions opts;
  opts.grain = 7;
  opts.progress = [&](std::size_t completed, std::size_t total) {
    EXPECT_EQ(total, 100u);
    done.push_back(completed);
  };
  parallel_for(pool, 0, 100, [](std::size_t) {}, opts);
  std::vector<std::size_t> expected;
  for (std::size_t d = 7; d < 100; d += 7) expected.push_back(d);
  expected.push_back(100);
  EXPECT_EQ(done, expected);
}

TEST(ObsConcurrency, LogEventsFromPoolWorkersAreSerialized) {
  // Hammer util::Log's structured-event path from every worker at once:
  // both the plain-text sink and the event sink must see every record and
  // must never observe interleaved/torn field vectors.
  std::atomic<int> text_records{0};
  std::atomic<int> event_records{0};
  std::atomic<int> malformed{0};
  util::Log::set_sink(
      [&text_records](util::LogLevel, const std::string&) { ++text_records; });
  util::Log::set_event_sink(
      [&event_records, &malformed](util::LogLevel, const std::string& component,
                                   const std::vector<util::Log::Field>& fields) {
        ++event_records;
        if (component != "exec_test" || fields.size() != 2 ||
            fields[0].first != "worker" || fields[1].first != "i")
          ++malformed;
      });
  const util::LogLevel saved = util::Log::level();
  util::Log::set_level(util::LogLevel::kDebug);

  constexpr int kTasks = 64;
  {
    ThreadPool pool(4);
    TaskGroup group(pool);
    for (int t = 0; t < kTasks; ++t) {
      group.run([t] {
        util::Log::event(util::LogLevel::kInfo, "exec_test",
                         {{"worker", "pool"}, {"i", std::to_string(t)}});
      });
    }
    group.wait();
  }

  util::Log::set_level(saved);
  util::Log::set_sink(nullptr);
  util::Log::set_event_sink(nullptr);
  EXPECT_EQ(text_records.load(), kTasks);
  EXPECT_EQ(event_records.load(), kTasks);
  EXPECT_EQ(malformed.load(), 0);
}

}  // namespace
