#include <gtest/gtest.h>

#include <cmath>

#include "src/bio/adc.hpp"
#include "src/bio/cell.hpp"
#include "src/bio/interface.hpp"
#include "src/bio/potentiostat.hpp"
#include "src/spice/engine.hpp"

namespace {

using namespace ironic::bio;

// -------------------------------------------------------------------- cell

TEST(Cell, MichaelisMentenShape) {
  ElectrochemicalCell cell{clodx_params()};
  // Monotone increasing, saturating.
  double prev = 0.0;
  for (double c : {0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0}) {
    const double j = cell.current_density(c);
    EXPECT_GT(j, prev);
    prev = j;
  }
  // Saturation bound: j < j_max.
  EXPECT_LT(cell.current_density(1e4), clodx_params().j_max);
  // Half of saturation exactly at Km.
  EXPECT_NEAR(cell.current_density(clodx_params().km), 0.5 * clodx_params().j_max,
              1e-12);
}

TEST(Cell, Fig4OrderingAndMagnitudes) {
  // cLODx above wtLODx across the published range (log10 in [-0.8, 0]).
  ElectrochemicalCell commercial{clodx_params()};
  ElectrochemicalCell wild{wtlodx_params()};
  for (double lg = -0.8; lg <= 0.01; lg += 0.1) {
    const double c = std::pow(10.0, lg);
    EXPECT_GT(commercial.delta_current_density_ua_cm2(c),
              wild.delta_current_density_ua_cm2(c));
  }
  // Magnitudes in the Fig. 4 window: a few uA/cm^2 at 1 mM.
  EXPECT_NEAR(commercial.delta_current_density_ua_cm2(1.0), 4.2, 1.0);
  EXPECT_NEAR(wild.delta_current_density_ua_cm2(1.0), 1.6, 0.8);
}

TEST(Cell, MwcntAblationReducesSensitivity) {
  ElectrochemicalCell enhanced{clodx_params()};
  ElectrochemicalCell bare{clodx_bare_params()};
  EXPECT_LT(bare.current_density(1.0), 0.5 * enhanced.current_density(1.0));
}

TEST(Cell, CurrentInverseRoundTrip) {
  ElectrochemicalCell cell{clodx_params()};
  for (double c : {0.1, 0.5, 1.0, 3.0}) {
    const double i = cell.current(c);
    EXPECT_NEAR(cell.concentration_from_current(i), c, c * 1e-9);
  }
  EXPECT_THROW(cell.concentration_from_current(-1.0), std::invalid_argument);
  EXPECT_THROW(cell.concentration_from_current(1.0), std::invalid_argument);  // > sat
}

TEST(Cell, BiasGate) {
  EXPECT_TRUE(ElectrochemicalCell::bias_sufficient(0.65));
  EXPECT_FALSE(ElectrochemicalCell::bias_sufficient(0.4));
}

TEST(Cell, CalibrationCurveCoversRange) {
  ElectrochemicalCell cell{clodx_params()};
  const auto pts = calibration_curve(cell, 0.158, 1.0, 9);  // log10: -0.8 .. 0
  ASSERT_EQ(pts.size(), 9u);
  EXPECT_NEAR(pts.front().log10_mM, -0.8, 1e-2);
  EXPECT_NEAR(pts.back().log10_mM, 0.0, 1e-12);
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_GT(pts[i].delta_current_ua_cm2, pts[i - 1].delta_current_ua_cm2);
  }
  EXPECT_THROW(calibration_curve(cell, 1.0, 0.5, 5), std::invalid_argument);
}

TEST(Cell, RejectsInvalidParameters) {
  EnzymeParams bad = clodx_params();
  bad.j_max = 0.0;
  EXPECT_THROW(ElectrochemicalCell{bad}, std::invalid_argument);
  ElectrodeGeometry geom;
  geom.area = 0.0;
  EXPECT_THROW(ElectrochemicalCell(clodx_params(), geom), std::invalid_argument);
  ElectrochemicalCell cell{clodx_params()};
  EXPECT_THROW(cell.current_density(-1.0), std::invalid_argument);
}

// --------------------------------------------------------------------- adc

TEST(Adc, ModulatorStableInRange) {
  SigmaDeltaModulator mod;
  for (int i = 0; i < 20000; ++i) {
    mod.step(0.85);
    ASSERT_LT(mod.integrator_magnitude(), 20.0) << "diverged at step " << i;
  }
}

TEST(Adc, ModulatorBitDensityTracksInput) {
  SigmaDeltaModulator mod;
  for (double x : {-0.5, 0.0, 0.3, 0.8}) {
    mod.reset();
    long sum = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) sum += mod.step(x);
    EXPECT_NEAR(static_cast<double>(sum) / n, x, 0.01) << "x=" << x;
  }
}

TEST(Adc, DecimatorRecoversDc) {
  SigmaDeltaModulator mod;
  Sinc3Decimator dec(128);
  const double x = 0.4;
  double last = 0.0;
  int outputs = 0;
  for (int i = 0; i < 128 * 32; ++i) {
    if (dec.push(mod.step(x))) {
      last = dec.output();
      ++outputs;
    }
  }
  EXPECT_GT(outputs, 8);
  EXPECT_NEAR(last, x, 0.02);
  EXPECT_THROW(Sinc3Decimator{1}, std::invalid_argument);
}

TEST(Adc, FourteenBitResolutionMeetsPaper) {
  AdcSpec spec;
  // 4 uA full scale over 14 bits: LSB ~ 244 pA, compliant with the
  // paper's 250 pA requirement.
  EXPECT_EQ(spec.max_code(), 16383);
  EXPECT_LT(spec.lsb_current(), 250e-12);
  EXPECT_GT(spec.lsb_current(), 230e-12);
}

TEST(Adc, DcTransferAccurate) {
  SigmaDeltaAdc adc;
  for (double i_in : {0.2e-6, 1.0e-6, 2.0e-6, 3.5e-6}) {
    const auto code = adc.convert_current(i_in);
    const double back = adc.current_from_code(code);
    // Within 4 LSB across the range.
    EXPECT_NEAR(back, i_in, 4.0 * adc.spec().lsb_current()) << "i=" << i_in;
  }
}

TEST(Adc, TransferIsMonotone) {
  SigmaDeltaAdc adc;
  std::uint32_t prev = 0;
  for (double i_in = 0.1e-6; i_in <= 3.9e-6; i_in += 0.2e-6) {
    const auto code = adc.convert_current(i_in);
    EXPECT_GE(code, prev) << "i=" << i_in;
    prev = code;
  }
}

TEST(Adc, RejectsOutOfRange) {
  SigmaDeltaAdc adc;
  EXPECT_THROW(adc.convert_current(-1e-9), std::invalid_argument);
  EXPECT_THROW(adc.convert_current(5e-6), std::invalid_argument);
  EXPECT_THROW(adc.convert_normalized(0.99), std::invalid_argument);
  AdcSpec bad;
  bad.bits = 1;
  EXPECT_THROW(SigmaDeltaAdc{bad}, std::invalid_argument);
}

TEST(Adc, NoiseDegradesRepeatability) {
  AdcSpec noisy;
  noisy.input_noise_rms = 0.02;
  SigmaDeltaAdc adc(noisy, 3);
  std::vector<double> codes;
  for (int i = 0; i < 10; ++i) {
    codes.push_back(static_cast<double>(adc.convert_current(2e-6)));
  }
  double lo = codes[0], hi = codes[0];
  for (double c : codes) {
    lo = std::min(lo, c);
    hi = std::max(hi, c);
  }
  EXPECT_GT(hi - lo, 0.5);    // visible spread
  EXPECT_LT(hi - lo, 400.0);  // but bounded
}

// ------------------------------------------------------------- potentiostat

TEST(Potentiostat, ReadoutTransferAndInverse) {
  PotentiostatModel pstat;
  const double v = pstat.readout_voltage(2e-6);
  EXPECT_NEAR(v, 2e-6 * 300e3, 1e-9);
  EXPECT_NEAR(pstat.current_from_readout(v), 2e-6, 1e-15);
  EXPECT_THROW(pstat.readout_voltage(-1e-6), std::invalid_argument);
}

TEST(Potentiostat, OxidationBiasIs650mV) {
  PotentiostatSpec spec;
  EXPECT_NEAR(spec.oxidation_bias(), 0.65, 1e-12);
}

TEST(Potentiostat, MeasureGatesOnBias) {
  ElectrochemicalCell cell{clodx_params()};
  PotentiostatSpec starved;
  starved.v_we = 0.8;  // only 250 mV across the cell
  PotentiostatModel pstat{starved};
  EXPECT_DOUBLE_EQ(pstat.measure(cell, 1.0), 0.0);
  PotentiostatModel good{PotentiostatSpec{}};
  EXPECT_GT(good.measure(cell, 1.0), 0.0);
}

TEST(Potentiostat, MirrorMismatchSkewsGain) {
  PotentiostatSpec spec;
  spec.mirror_mismatch = 0.05;
  PotentiostatModel pstat{spec};
  EXPECT_NEAR(pstat.readout_voltage(1e-6), 1.05 * 1e-6 * 300e3, 1e-9);
}

TEST(Potentiostat, CircuitRegulatesElectrodes) {
  using namespace ironic::spice;
  ElectrochemicalCell cell{clodx_params()};
  Circuit ckt;
  const auto h = build_potentiostat_circuit(ckt, "ps", cell, 1.0);
  TransientOptions opts;
  opts.t_stop = 2e-3;  // let Cdl finish charging
  opts.dt_max = 1e-6;
  const auto res = run_transient(ckt, opts);
  // RE at 550 mV, WE at 1.2 V (the 650 mV oxidation bias); small
  // residuals reflect the finite loop gains of the two amplifiers.
  EXPECT_NEAR(res.mean_between("v(ps.re)", 1.5e-3, 2e-3), 0.55, 0.02);
  EXPECT_NEAR(res.mean_between("v(ps.we)", 1.5e-3, 2e-3), 1.2, 0.03);
}

TEST(Potentiostat, CircuitReadoutTracksConcentration) {
  using namespace ironic::spice;
  ElectrochemicalCell cell{clodx_params()};
  const auto readout_at = [&](double conc) {
    Circuit ckt;
    const auto h = build_potentiostat_circuit(ckt, "ps", cell, conc);
    TransientOptions opts;
    opts.t_stop = 2e-3;
    opts.dt_max = 1e-6;
    const auto res = run_transient(ckt, opts);
    return res.mean_between("v(" + h.readout_name + ")", 1.5e-3, 2e-3);
  };
  const double v_low = readout_at(0.2);
  const double v_high = readout_at(1.0);
  EXPECT_GT(v_high, v_low * 1.5);
  // Compare against the behavioural transfer within 15 %.
  PotentiostatModel model;
  EXPECT_NEAR(v_high, model.readout_voltage(cell.current(1.0)),
              0.15 * model.readout_voltage(cell.current(1.0)));
}

// ---------------------------------------------------------------- interface

TEST(Interface, EndToEndConcentrationRecovery) {
  ElectronicInterface ei{ElectrochemicalCell{clodx_params()}};
  for (double c : {0.2, 0.5, 1.0, 2.0}) {
    const auto m = ei.measure(c);
    EXPECT_GT(m.adc_code, 0u);
    EXPECT_NEAR(m.estimated_concentration, c, 0.08 * c + 0.02) << "c=" << c;
  }
}

TEST(Interface, AppliedBiasFromBandgaps) {
  ElectronicInterface ei{ElectrochemicalCell{clodx_params()}};
  EXPECT_NEAR(ei.applied_bias(), 0.65, 1e-6);
}

TEST(Interface, UnderVoltedSupplyReturnsNothing) {
  InterfaceSpec spec;
  spec.supply_voltage = 0.6;  // references collapse
  ElectronicInterface ei{ElectrochemicalCell{clodx_params()}, spec};
  const auto m = ei.measure(1.0);
  EXPECT_EQ(m.adc_code, 0u);
  EXPECT_DOUBLE_EQ(m.cell_current, 0.0);
}

TEST(Interface, SupplyCurrentsMatchPaperBudget) {
  ElectronicInterface ei{ElectrochemicalCell{clodx_params()}};
  // Low power: front end only (45 uA); high power adds the ADC (240 uA).
  EXPECT_NEAR(ei.supply_current(ironic::pm::SensorMode::kLowPower), 45e-6, 1e-9);
  EXPECT_NEAR(ei.supply_current(ironic::pm::SensorMode::kHighPower), 285e-6, 1e-9);
  EXPECT_LT(ei.supply_current(ironic::pm::SensorMode::kSleep), 45e-6);
}

}  // namespace
