#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "src/rf/matching.hpp"
#include "src/spice/ac.hpp"
#include "src/spice/devices_nonlinear.hpp"
#include "src/spice/devices_passive.hpp"
#include "src/spice/devices_sources.hpp"
#include "src/util/constants.hpp"

namespace {

using namespace ironic::spice;
namespace constants = ironic::constants;

// Index of the sweep point closest to f.
std::size_t nearest_index(const AcResult& res, double f) {
  std::size_t best = 0;
  double best_err = 1e300;
  for (std::size_t i = 0; i < res.frequency().size(); ++i) {
    const double err = std::abs(std::log10(res.frequency()[i] / f));
    if (err < best_err) {
      best_err = err;
      best = i;
    }
  }
  return best;
}

TEST(Ac, RcLowPassCornerAndPhase) {
  // R = 1k, C = 159.15 pF -> f_c = 1 MHz.
  Circuit ckt;
  const auto in = ckt.node("in");
  const auto out = ckt.node("out");
  auto& vs = ckt.add<VoltageSource>("V1", in, kGround, Waveform::dc(0.0));
  vs.set_ac(1.0);
  ckt.add<Resistor>("R1", in, out, 1e3);
  ckt.add<Capacitor>("C1", out, kGround, 159.155e-12);

  AcOptions opts;
  opts.f_start = 1e4;
  opts.f_stop = 1e8;
  opts.points_per_decade = 40;
  opts.use_operating_point = false;
  const auto res = run_ac(ckt, opts);

  // Passband gain ~ 1.
  EXPECT_NEAR(res.magnitude("v(out)", 0), 1.0, 1e-3);
  // -3 dB corner at 1 MHz.
  double fc = 0.0;
  ASSERT_TRUE(res.upper_corner_frequency("v(out)", 3.0103, fc));
  EXPECT_NEAR(fc, 1e6, 0.05e6);
  // Phase at the corner ~ -45 deg.
  EXPECT_NEAR(res.phase_deg("v(out)", nearest_index(res, 1e6)), -45.0, 3.0);
  // Decade above: ~ -20 dB.
  EXPECT_NEAR(res.magnitude_db("v(out)", nearest_index(res, 1e7)), -20.0, 0.5);
}

TEST(Ac, SeriesRlcResonance) {
  // L = 10 uH, C = 101.32 pF -> f0 = 5 MHz; R = 10 -> Q = pi.
  Circuit ckt;
  const auto in = ckt.node("in");
  const auto mid = ckt.node("mid");
  const auto out = ckt.node("out");
  auto& vs = ckt.add<VoltageSource>("V1", in, kGround, Waveform::dc(0.0));
  vs.set_ac(1.0);
  ckt.add<Inductor>("L1", in, mid, 10e-6);
  ckt.add<Capacitor>("C1", mid, out, 101.321e-12);
  ckt.add<Resistor>("R1", out, kGround, 10.0);

  AcOptions opts;
  opts.f_start = 1e6;
  opts.f_stop = 30e6;
  opts.points_per_decade = 200;
  opts.use_operating_point = false;
  const auto res = run_ac(ckt, opts);

  // Peak of v(out) at the series resonance; full source voltage appears
  // across R there.
  EXPECT_NEAR(res.peak_frequency("v(out)"), 5e6, 0.1e6);
  EXPECT_NEAR(res.magnitude("v(out)", nearest_index(res, 5e6)), 1.0, 0.02);
  // Far below resonance the capacitor blocks.
  EXPECT_LT(res.magnitude("v(out)", 0), 0.1);
}

TEST(Ac, CoupledCoilsTransferPeaksAtTuning) {
  // Both windings series-tuned to 5 MHz: the transfer through the link
  // peaks there (the link's operating point).
  Circuit ckt;
  const auto in = ckt.node("in");
  const auto p = ckt.node("p");
  const auto s = ckt.node("s");
  const auto out = ckt.node("out");
  auto& vs = ckt.add<VoltageSource>("V1", in, kGround, Waveform::dc(0.0));
  vs.set_ac(1.0);
  const double l1 = 2e-6, l2 = 1e-6, f0 = 5e6;
  const double w0 = constants::kTwoPi * f0;
  ckt.add<Capacitor>("Cp", in, p, 1.0 / (w0 * w0 * l1));
  ckt.add<CoupledInductors>("T1", p, kGround, s, kGround, l1, l2, 0.05, 1.0, 1.0);
  ckt.add<Capacitor>("Cs", s, out, 1.0 / (w0 * w0 * l2));
  ckt.add<Resistor>("RL", out, kGround, 10.0);

  AcOptions opts;
  opts.f_start = 1e6;
  opts.f_stop = 25e6;
  opts.points_per_decade = 150;
  opts.use_operating_point = false;
  const auto res = run_ac(ckt, opts);
  EXPECT_NEAR(res.peak_frequency("v(out)"), 5e6, 0.25e6);
}

TEST(Ac, MatchingNetworkImpedanceMatchesAnalytic) {
  // The CA/CB design verified in-circuit: input impedance of coil + CA +
  // (CB || R) at 5 MHz equals the analytic target.
  const double l2 = 3.8e-6;
  const auto match = ironic::rf::design_capacitive_match(l2, 150.0, 5.0, 5e6);

  Circuit ckt;
  const auto in = ckt.node("in");
  const auto a = ckt.node("a");
  const auto b = ckt.node("b");
  auto& vs = ckt.add<VoltageSource>("V1", in, kGround, Waveform::dc(0.0));
  vs.set_ac(1.0);
  ckt.add<Inductor>("L2", in, a, l2);
  ckt.add<Capacitor>("CA", a, b, match.series_c);
  ckt.add<Capacitor>("CB", b, kGround, match.shunt_c);
  ckt.add<Resistor>("RL", b, kGround, 150.0);

  AcOptions opts;
  opts.f_start = 4.99e6;
  opts.f_stop = 5.01e6;
  opts.log_sweep = false;
  opts.linear_points = 3;
  opts.use_operating_point = false;
  const auto res = run_ac(ckt, opts);
  const auto z = input_impedance(res, "V1");
  EXPECT_NEAR(z[1].real(), 5.0, 0.05);
  EXPECT_NEAR(z[1].imag(), 0.0, 0.2);
}

TEST(Ac, DiodeSmallSignalConductanceAtBias) {
  // Diode biased at ~0.5 mA: r_d = nVt/Id.
  Circuit ckt;
  const auto in = ckt.node("in");
  const auto d = ckt.node("d");
  auto& vs = ckt.add<VoltageSource>("V1", in, kGround, Waveform::dc(1.2));
  vs.set_ac(1.0);
  ckt.add<Resistor>("R1", in, d, 1e3);
  ckt.add<Diode>("D1", d, kGround);

  AcOptions opts;
  opts.f_start = 1e3;
  opts.f_stop = 1e4;
  opts.points_per_decade = 5;
  const auto res = run_ac(ckt, opts);

  // Divider: |v(d)| = rd / (R + rd). Estimate Id from the op point.
  const double vd_mag = res.magnitude("v(d)", 0);
  const double rd = 1e3 * vd_mag / (1.0 - vd_mag);
  // Id ~ (1.2 - 0.6) / 1k = 0.6 mA -> rd ~ 43 Ohm.
  EXPECT_GT(rd, 25.0);
  EXPECT_LT(rd, 70.0);
}

TEST(Ac, MosfetCommonSourceGain) {
  // NMOS common-source with a drain resistor: |gain| = gm RD || ro.
  MosParams p;
  p.lambda = 0.0;
  p.gamma = 0.0;
  p.bulk_diodes = false;
  p.w = 1.8e-6;  // W/L = 10: Id ~ 76 uA keeps the drain in saturation
  Circuit ckt;
  const auto vdd = ckt.node("vdd");
  const auto g = ckt.node("g");
  const auto d = ckt.node("d");
  ckt.add<VoltageSource>("Vdd", vdd, kGround, Waveform::dc(1.8));
  auto& vg = ckt.add<VoltageSource>("Vg", g, kGround, Waveform::dc(0.8));
  vg.set_ac(1.0);
  ckt.add<Resistor>("RD", vdd, d, 10e3);
  ckt.add<Mosfet>("M1", d, g, kGround, kGround, p);

  AcOptions opts;
  opts.f_start = 1e3;
  opts.f_stop = 1e4;
  opts.points_per_decade = 5;
  const auto res = run_ac(ckt, opts);

  // gm = beta * vov = (170u * 10/0.18) * 0.3 ~ 2.83 mS -> gain ~ 28.3.
  const double beta = p.beta();
  const double expected = beta * 0.3 * 10e3;
  EXPECT_NEAR(res.magnitude("v(d)", 0), expected, expected * 0.05);
  // Inverting stage: ~180 degrees.
  EXPECT_NEAR(std::abs(res.phase_deg("v(d)", 0)), 180.0, 2.0);
}

TEST(Ac, OpAmpFollowerIsFlat) {
  Circuit ckt;
  const auto in = ckt.node("in");
  const auto out = ckt.node("out");
  auto& vs = ckt.add<VoltageSource>("V1", in, kGround, Waveform::dc(0.9));
  vs.set_ac(1.0);
  OpAmpParams op;
  op.v_out_max = 1.8;
  ckt.add<OpAmp>("U1", out, in, out, op);
  ckt.add<Resistor>("RL", out, kGround, 10e3);

  AcOptions opts;
  opts.f_start = 1e3;
  opts.f_stop = 1e6;
  opts.points_per_decade = 3;
  const auto res = run_ac(ckt, opts);
  for (std::size_t i = 0; i < res.num_points(); ++i) {
    EXPECT_NEAR(res.magnitude("v(out)", i), 1.0, 1e-3);
  }
}

TEST(Ac, SwitchStateControlsTransmission) {
  SwitchParams sp;
  sp.r_on = 10.0;
  sp.r_off = 1e9;
  sp.v_on = 1.0;
  sp.v_off = 0.2;
  for (bool on : {true, false}) {
    Circuit ckt;
    const auto in = ckt.node("in");
    const auto out = ckt.node("out");
    const auto c = ckt.node("c");
    auto& vs = ckt.add<VoltageSource>("V1", in, kGround, Waveform::dc(0.0));
    vs.set_ac(1.0);
    ckt.add<VoltageSource>("Vc", c, kGround, Waveform::dc(on ? 1.8 : 0.0));
    ckt.add<SmoothSwitch>("S1", in, out, c, kGround, sp);
    ckt.add<Resistor>("RL", out, kGround, 1e3);
    AcOptions opts;
    opts.f_start = 1e3;
    opts.f_stop = 1e4;
    opts.points_per_decade = 3;
    const auto res = run_ac(ckt, opts);
    if (on) {
      EXPECT_NEAR(res.magnitude("v(out)", 0), 1e3 / 1010.0, 1e-3);
    } else {
      EXPECT_LT(res.magnitude("v(out)", 0), 1e-4);
    }
  }
}

TEST(Ac, OptionsValidation) {
  Circuit ckt;
  ckt.add<Resistor>("R1", ckt.node("a"), kGround, 1.0);
  AcOptions opts;
  opts.f_start = 0.0;
  EXPECT_THROW(run_ac(ckt, opts), std::invalid_argument);
  opts.f_start = 1e6;
  opts.f_stop = 1e3;
  EXPECT_THROW(run_ac(ckt, opts), std::invalid_argument);
}

TEST(Ac, LinearSweepGrid) {
  Circuit ckt;
  const auto in = ckt.node("in");
  auto& vs = ckt.add<VoltageSource>("V1", in, kGround, Waveform::dc(0.0));
  vs.set_ac(1.0);
  ckt.add<Resistor>("R1", in, kGround, 50.0);
  AcOptions opts;
  opts.f_start = 1e6;
  opts.f_stop = 2e6;
  opts.log_sweep = false;
  opts.linear_points = 11;
  opts.use_operating_point = false;
  const auto res = run_ac(ckt, opts);
  ASSERT_EQ(res.num_points(), 11u);
  EXPECT_DOUBLE_EQ(res.frequency().front(), 1e6);
  EXPECT_DOUBLE_EQ(res.frequency().back(), 2e6);
  EXPECT_NEAR(res.frequency()[5], 1.5e6, 1.0);
}

}  // namespace
