#include <gtest/gtest.h>

#include "src/pm/rectifier.hpp"
#include "src/spice/devices_passive.hpp"
#include "src/spice/devices_sources.hpp"
#include "src/spice/engine.hpp"

namespace {

using namespace ironic::pm;
using namespace ironic::spice;

RectifierOptions fast_options() {
  RectifierOptions opt;
  opt.storage_capacitance = 10e-9;
  return opt;
}

struct TopologyRun {
  double v_mean = 0.0;
  double ripple = 0.0;
};

TopologyRun run_half_wave(double amplitude) {
  Circuit ckt;
  const auto src = ckt.node("src");
  const auto vi = ckt.node("vi");
  ckt.add<VoltageSource>("Vs", src, kGround, Waveform::sine(amplitude, 5e6));
  ckt.add<Resistor>("Rs", src, vi, 50.0);
  build_rectifier(ckt, "r", vi, Waveform::dc(0.0), Waveform::dc(1.8), fast_options());
  ckt.add<Resistor>("RL", ckt.find_node("r.vo"), kGround, 2e3);
  TransientOptions opts;
  opts.t_stop = 40e-6;
  opts.dt_max = 5e-9;
  opts.record_signals = {"v(r.vo)"};
  const auto res = run_transient(ckt, opts);
  return {res.mean_between("v(r.vo)", 30e-6, 40e-6),
          res.max_between("v(r.vo)", 30e-6, 40e-6) -
              res.min_between("v(r.vo)", 30e-6, 40e-6)};
}

TopologyRun run_bridge(double amplitude) {
  Circuit ckt;
  const auto srcp = ckt.node("srcp");
  const auto srcn = ckt.node("srcn");
  const auto vp = ckt.node("vp");
  const auto vn = ckt.node("vn");
  // Floating differential drive across the bridge — exactly how the
  // link secondary would feed it; the bridge references itself to the
  // implant ground through its low-side return.
  ckt.add<VoltageSource>("Vs", srcp, srcn, Waveform::sine(amplitude, 5e6));
  ckt.add<Resistor>("Rsp", srcp, vp, 25.0);
  ckt.add<Resistor>("Rsn", srcn, vn, 25.0);
  build_bridge_rectifier(ckt, "r", vp, vn, Waveform::dc(0.0), Waveform::dc(1.8),
                         fast_options());
  ckt.add<Resistor>("RL", ckt.find_node("r.vo"), kGround, 2e3);
  TransientOptions opts;
  opts.t_stop = 40e-6;
  opts.dt_max = 5e-9;
  opts.record_signals = {"v(r.vo)"};
  const auto res = run_transient(ckt, opts);
  return {res.mean_between("v(r.vo)", 30e-6, 40e-6),
          res.max_between("v(r.vo)", 30e-6, 40e-6) -
              res.min_between("v(r.vo)", 30e-6, 40e-6)};
}

TEST(BridgeRectifier, ProducesDcOutput) {
  const auto r = run_bridge(3.5);
  EXPECT_GT(r.v_mean, 1.2);
  EXPECT_LT(r.v_mean, 3.5);
}

TEST(BridgeRectifier, ConductsBothHalfCycles) {
  // The bridge recharges twice per carrier period: at the same Co and
  // load its ripple is visibly below the half-wave rectifier's.
  const auto hw = run_half_wave(3.5);
  const auto fw = run_bridge(3.5);
  EXPECT_LT(fw.ripple, hw.ripple);
}

TEST(BridgeRectifier, CostsTwoDiodeDrops) {
  // Peak output sits roughly two drops below the drive, vs one for the
  // half-wave topology.
  const auto hw = run_half_wave(3.5);
  const auto fw = run_bridge(3.5);
  EXPECT_LT(fw.v_mean, hw.v_mean);
}

TEST(BridgeRectifier, ClampStillLimitsOutput) {
  const auto r = run_bridge(8.0);
  EXPECT_LT(r.v_mean, 3.5);
}

TEST(BridgeRectifier, RejectsBadOptions) {
  Circuit ckt;
  RectifierOptions opt;
  opt.storage_capacitance = 0.0;
  EXPECT_THROW(build_bridge_rectifier(ckt, "r", ckt.node("a"), ckt.node("b"),
                                      Waveform::dc(0.0), Waveform::dc(1.8), opt),
               std::invalid_argument);
}

}  // namespace
