#include <gtest/gtest.h>

#include <cmath>

#include "src/rf/classe.hpp"
#include "src/rf/matching.hpp"
#include "src/spice/devices_passive.hpp"
#include "src/spice/engine.hpp"
#include "src/util/constants.hpp"

namespace {

using namespace ironic::rf;
using namespace ironic::spice;
namespace constants = ironic::constants;

// ----------------------------------------------------------------- design

TEST(ClassEDesign, OutputPowerFormula) {
  ClassESpec spec;
  spec.supply_voltage = 3.7;
  spec.load_resistance = 5.0;
  const auto d = design_class_e(spec);
  // P = 0.5768 Vdd^2 / R.
  EXPECT_NEAR(d.output_power, 0.5768 * 3.7 * 3.7 / 5.0, 1e-3);
  EXPECT_NEAR(d.peak_switch_voltage, 3.562 * 3.7, 1e-9);
}

TEST(ClassEDesign, ComponentValuesPositiveAndOrdered) {
  const auto d = design_class_e(ClassESpec{});
  EXPECT_GT(d.shunt_capacitance, 0.0);
  EXPECT_GT(d.series_capacitance, 0.0);
  EXPECT_GT(d.series_inductance, 0.0);
  // The choke must dwarf the tank inductance.
  EXPECT_GT(d.choke_inductance, d.series_inductance);
}

TEST(ClassEDesign, LoadForPowerInvertsDesign) {
  const double r = class_e_load_for_power(15e-3, 3.7);
  ClassESpec spec;
  spec.supply_voltage = 3.7;
  spec.load_resistance = r;
  EXPECT_NEAR(design_class_e(spec).output_power, 15e-3, 1e-6);
}

TEST(ClassEDesign, RejectsBadSpecs) {
  ClassESpec spec;
  spec.loaded_q = 1.0;
  EXPECT_THROW(design_class_e(spec), std::invalid_argument);
  spec = ClassESpec{};
  spec.load_resistance = -1.0;
  EXPECT_THROW(design_class_e(spec), std::invalid_argument);
  EXPECT_THROW(class_e_load_for_power(0.0, 3.7), std::invalid_argument);
}

// -------------------------------------------------------------- transient

struct ClassESim {
  TransientResult result;
  ClassEDesign design;
  std::string drain_name;
  double efficiency = 0.0;
  double p_load = 0.0;
};

ClassESim simulate_class_e(double c_shunt_scale, double t_stop = 30e-6) {
  ClassESpec spec;
  spec.supply_voltage = 3.7;
  spec.frequency = 5e6;
  spec.load_resistance = 10.0;
  spec.loaded_q = 7.0;
  auto design = design_class_e(spec);
  design.shunt_capacitance *= c_shunt_scale;

  Circuit ckt;
  const auto drive = square_clock(0.0, 1.8, spec.frequency, 0.0, 2e-9);
  const auto inst = build_class_e(ckt, "pa", design, drive);
  ckt.add<Resistor>("RL", inst.output, kGround, spec.load_resistance);

  TransientOptions opts;
  opts.t_stop = t_stop;
  opts.dt_max = 1e-9;
  opts.record_every = 2;
  ClassESim sim{run_transient(ckt, opts), design, "pa.drain", 0.0, 0.0};

  // Steady-state window: last 20 carrier periods.
  const double w0 = t_stop - 20.0 / spec.frequency;
  const double p_load =
      sim.result.mean_product_between("v(pa.out)", "v(pa.out)", w0, t_stop) /
      spec.load_resistance;
  // Supply power: Vdd * mean supply-branch current (source convention:
  // delivering current makes i(Vdd) negative).
  const double i_supply = -sim.result.mean_between("i(pa.Vdd)", w0, t_stop);
  const double p_supply = spec.supply_voltage * i_supply;
  sim.p_load = p_load;
  sim.efficiency = p_load / p_supply;
  return sim;
}

TEST(ClassETransient, TunedAmplifierIsEfficient) {
  const auto sim = simulate_class_e(1.0);
  EXPECT_GT(sim.efficiency, 0.80);
  EXPECT_LE(sim.efficiency, 1.01);
  // Output power within 2x of the idealized design equation.
  EXPECT_GT(sim.p_load, sim.design.output_power * 0.5);
  EXPECT_LT(sim.p_load, sim.design.output_power * 2.0);
}

TEST(ClassETransient, DrainPeaksNearTheoreticalStress) {
  const auto sim = simulate_class_e(1.0);
  const double peak = sim.result.max_between("v(pa.drain)", 20e-6, 30e-6);
  // ~3.56 Vdd for ideal class-E; allow a generous band for finite Q.
  EXPECT_GT(peak, 2.0 * 3.7);
  EXPECT_LT(peak, 5.0 * 3.7);
}

TEST(ClassETransient, TunedZvsBeatsDetuned) {
  const auto tuned = simulate_class_e(1.0);
  const auto detuned = simulate_class_e(2.5);
  const double e_tuned = zvs_error(tuned.result, "pa.drain", 5e6, 200e-9, 24e-6, 30e-6, 3.7);
  const double e_detuned =
      zvs_error(detuned.result, "pa.drain", 5e6, 200e-9, 24e-6, 30e-6, 3.7);
  EXPECT_LT(e_tuned, e_detuned);
}

TEST(ClassETransient, DetunedAmplifierLosesEfficiency) {
  const auto tuned = simulate_class_e(1.0);
  const auto detuned = simulate_class_e(2.5);
  EXPECT_GT(tuned.efficiency, detuned.efficiency);
}

TEST(ClassEZvs, WindowValidation) {
  const auto sim = simulate_class_e(1.0, 5e-6);
  EXPECT_THROW(zvs_error(sim.result, "pa.drain", 5e6, 0.0, 4e-6, 3e-6, 3.7),
               std::invalid_argument);
}

// ---------------------------------------------------------------- matching

TEST(Matching, DesignClosesToTarget) {
  // Paper values: implant coil ~uH range, rectifier average R ~150 Ohm,
  // transformed to the few-ohm load the link prefers.
  const double l = 1.5e-6;
  const double r_load = 150.0;
  const double r_target = 6.0;
  const double f = 5e6;
  const auto match = design_capacitive_match(l, r_load, r_target, f);
  EXPECT_GT(match.series_c, 0.0);
  EXPECT_GT(match.shunt_c, 0.0);
  const auto z = matched_input_impedance(match, l, r_load, f);
  EXPECT_NEAR(z.real(), r_target, r_target * 1e-6);
  EXPECT_NEAR(z.imag(), 0.0, 1e-6);
}

TEST(Matching, QMatchesTransformationRatio) {
  const auto match = design_capacitive_match(1.5e-6, 150.0, 6.0, 5e6);
  EXPECT_NEAR(match.q, std::sqrt(150.0 / 6.0 - 1.0), 1e-12);
}

TEST(Matching, SweepAcrossTargetsAlwaysCloses) {
  // Targets above ~20 Ohm need more coil reactance than 2 uH provides
  // (the series capacitor would have to be inductive) — the design
  // rightly rejects those, covered by the RejectsUpwardTransform test.
  for (double rt : {2.0, 5.0, 10.0, 20.0}) {
    const auto match = design_capacitive_match(2e-6, 150.0, rt, 5e6);
    const auto z = matched_input_impedance(match, 2e-6, 150.0, 5e6);
    EXPECT_NEAR(z.real(), rt, rt * 1e-6) << "r_target=" << rt;
    EXPECT_NEAR(z.imag(), 0.0, 1e-5) << "r_target=" << rt;
  }
}

TEST(Matching, RejectsUpwardTransformAndBadInputs) {
  EXPECT_THROW(design_capacitive_match(1e-6, 10.0, 150.0, 5e6), std::invalid_argument);
  EXPECT_THROW(design_capacitive_match(-1e-6, 150.0, 6.0, 5e6), std::invalid_argument);
  // Coil reactance too small to absorb the series capacitor.
  EXPECT_THROW(design_capacitive_match(1e-9, 150.0, 140.0, 5e6), std::invalid_argument);
}

}  // namespace
