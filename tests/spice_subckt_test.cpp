#include <gtest/gtest.h>

#include <cmath>

#include "src/spice/engine.hpp"
#include "src/spice/netlist_parser.hpp"

namespace {

using namespace ironic::spice;

TEST(Subckt, SingleInstanceDivider) {
  Circuit ckt;
  parse_netlist(ckt, R"(
.subckt divider in out
R1 in out 1k
R2 out 0 1k
.ends
V1 a 0 DC 2
Xd a b divider
)");
  const auto dc = solve_dc(ckt);
  ASSERT_TRUE(dc.converged);
  EXPECT_NEAR(dc.x[static_cast<std::size_t>(ckt.find_node("b"))], 1.0, 1e-6);
}

TEST(Subckt, MultipleInstancesArePrivate) {
  Circuit ckt;
  parse_netlist(ckt, R"(
.subckt rc in out
R1 in out 1k
C1 out 0 1u
.ends
V1 a 0 DC 1
X1 a m rc
X2 m b rc
)");
  // Two cascaded RC sections: both instantiate without name collisions.
  TransientOptions opts;
  opts.t_stop = 30e-3;
  opts.dt_max = 10e-6;
  const auto res = run_transient(ckt, opts);
  EXPECT_NEAR(res.value_at("v(b)", 30e-3), 1.0, 0.01);
  EXPECT_GT(res.value_at("v(m)", 1e-3), res.value_at("v(b)", 1e-3));
}

TEST(Subckt, InternalNodesDoNotLeak) {
  Circuit ckt;
  parse_netlist(ckt, R"(
.subckt cell in out
R1 in mid 1k
R2 mid out 1k
.ends
V1 a 0 DC 1
X1 a b cell
R3 b 0 1k
)");
  // The internal node is privatized as "x1.mid".
  EXPECT_TRUE(ckt.has_node("x1.mid"));
  EXPECT_FALSE(ckt.has_node("mid"));
  const auto dc = solve_dc(ckt);
  ASSERT_TRUE(dc.converged);
  EXPECT_NEAR(dc.x[static_cast<std::size_t>(ckt.find_node("b"))], 1.0 / 3.0, 1e-6);
}

TEST(Subckt, GroundStaysGlobal) {
  Circuit ckt;
  parse_netlist(ckt, R"(
.subckt shunt in
R1 in 0 2k
.ends
V1 a 0 DC 1
X1 a shunt
X2 a shunt
)");
  const auto dc = solve_dc(ckt);
  ASSERT_TRUE(dc.converged);
  // Two 2k shunts in parallel: source delivers 1 mA.
  const auto* vs = ckt.find_device("v1");
  ASSERT_NE(vs, nullptr);
  // Branch current via the unknown vector: last entries are branches.
  EXPECT_NEAR(dc.x.back(), -1e-3, 1e-8);
}

TEST(Subckt, NestedSubcircuits) {
  Circuit ckt;
  parse_netlist(ckt, R"(
.subckt leg a b
R1 a b 1k
.ends
.subckt divider top mid
X1 top mid leg
X2 mid 0 leg
.ends
V1 in 0 DC 4
Xd in out divider
)");
  const auto dc = solve_dc(ckt);
  ASSERT_TRUE(dc.converged);
  EXPECT_NEAR(dc.x[static_cast<std::size_t>(ckt.find_node("out"))], 2.0, 1e-6);
}

TEST(Subckt, CoupledInductorsInsideSubckt) {
  Circuit ckt;
  parse_netlist(ckt, R"(
.subckt xfmr p s
L1 p 0 10u
L2 s 0 10u
K1 L1 L2 0.95
.ends
V1 in 0 SIN(0 1 1meg)
X1 in sec xfmr
R1 sec 0 1meg
)");
  TransientOptions opts;
  opts.t_stop = 5e-6;
  opts.dt_max = 1e-9;
  const auto res = run_transient(ckt, opts);
  EXPECT_NEAR(res.peak_abs_between("v(sec)", 2e-6, 5e-6), 0.95, 0.01);
}

TEST(Subckt, OpAmpPrimitiveInsideSubckt) {
  Circuit ckt;
  parse_netlist(ckt, R"(
.subckt follower in out
XU1 out in out OPAMP GAIN=1e5 VMIN=0 VMAX=1.8
R1 out 0 10k
.ends
V1 a 0 DC 0.9
X1 a b follower
)");
  const auto dc = solve_dc(ckt);
  ASSERT_TRUE(dc.converged);
  EXPECT_NEAR(dc.x[static_cast<std::size_t>(ckt.find_node("b"))], 0.9, 1e-3);
}

TEST(Subckt, Errors) {
  Circuit ckt;
  // Unterminated definition.
  EXPECT_THROW(parse_netlist(ckt, ".subckt foo a\nR1 a 0 1k\n"), NetlistError);
  // Port-count mismatch.
  EXPECT_THROW(parse_netlist(ckt, R"(
.subckt cell a b
R1 a b 1k
.ends
X1 n1 cell
)"),
               NetlistError);
  // Unknown subcircuit name.
  EXPECT_THROW(parse_netlist(ckt, "X1 a b mystery\n"), NetlistError);
}

}  // namespace
