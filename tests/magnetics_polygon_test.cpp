#include <gtest/gtest.h>

#include <cmath>

#include "src/magnetics/coupling.hpp"
#include "src/magnetics/polygon.hpp"
#include "src/util/constants.hpp"

namespace {

using namespace ironic::magnetics;
namespace constants = ironic::constants;

// Single-turn square loop spec helper.
CoilSpec square_spec(double side) {
  CoilSpec spec;
  spec.outer_width = side;
  spec.outer_height = side;
  spec.turns_per_layer = 1;
  spec.layers = 1;
  spec.trace_width = 200e-6;
  spec.trace_thickness = 35e-6;
  spec.turn_spacing = 200e-6;
  spec.layer_pitch = 0.0;
  return spec;
}

TEST(PolygonSegments, ParallelSegmentsCouple) {
  const Segment s1{{0, 0, 0}, {0.01, 0, 0}};
  const Segment s2{{0, 0.002, 0}, {0.01, 0.002, 0}};
  const double m = mutual_segments(s1, s2);
  EXPECT_GT(m, 0.0);
  // Antiparallel flips the sign.
  const Segment s2r{{0.01, 0.002, 0}, {0, 0.002, 0}};
  EXPECT_NEAR(mutual_segments(s1, s2r), -m, std::abs(m) * 1e-12);
}

TEST(PolygonSegments, OrthogonalSegmentsDoNotCouple) {
  const Segment s1{{0, 0, 0}, {0.01, 0, 0}};
  const Segment s2{{0.005, 0.001, 0}, {0.005, 0.011, 0}};
  EXPECT_DOUBLE_EQ(mutual_segments(s1, s2), 0.0);
}

TEST(PolygonSegments, MutualIsSymmetric) {
  const Segment s1{{0, 0, 0}, {0.02, 0, 0}};
  const Segment s2{{0.004, 0.003, 0.001}, {0.018, 0.005, 0.002}};
  EXPECT_NEAR(mutual_segments(s1, s2), mutual_segments(s2, s1), 1e-18);
}

TEST(PolygonSegments, CouplingFallsWithSpacing) {
  const Segment s1{{0, 0, 0}, {0.01, 0, 0}};
  double prev = 1e9;
  for (double gap : {1e-3, 2e-3, 4e-3, 8e-3}) {
    const Segment s2{{0, gap, 0}, {0.01, gap, 0}};
    const double m = mutual_segments(s1, s2);
    EXPECT_LT(m, prev);
    prev = m;
  }
}

TEST(PolygonSegments, SelfInductanceValidation) {
  // 10 mm filament, 0.1 mm radius: mu0 l/(2pi)(ln(2l/r)-1) ~ 8.6 nH.
  const double l = segment_self_inductance(0.01, 1e-4);
  EXPECT_NEAR(l, 2e-7 * 0.01 * (std::log(200.0) - 1.0), 1e-12);
  EXPECT_THROW(segment_self_inductance(-1.0, 1e-4), std::invalid_argument);
  EXPECT_THROW(segment_self_inductance(0.01, 0.02), std::invalid_argument);
}

TEST(PolygonCoilTest, SquareLoopInductanceMatchesClosedForm) {
  // Classic single square loop: L = 2 mu0 a/pi [ln(a/r) + r/a - 0.774].
  const double a = 0.02;  // side
  const auto coil = PolygonCoil::rectangular(square_spec(a));
  const double r = coil.gmd_radius();
  const double a_eff = a - 0.2e-3;  // centerline side after the half-trace inset
  const double closed_form =
      2.0 * constants::kMu0 * a_eff / constants::kPi *
      (std::log(a_eff / r) + r / a_eff - 0.774);
  EXPECT_NEAR(coil.inductance(), closed_form, closed_form * 0.05);
}

TEST(PolygonCoilTest, CircularPolygonConvergesToEllipticModel) {
  // The N-gon approximation of a circular coil must converge to the
  // filament/elliptic-integral machinery of Coil.
  CoilSpec spec = square_spec(10e-3);  // re-used as circle of same area
  const Coil reference{spec};
  const double l16 = PolygonCoil::circular(spec, 16).inductance();
  const double l48 = PolygonCoil::circular(spec, 48).inductance();
  const double ref = reference.inductance();
  EXPECT_NEAR(l48, ref, ref * 0.08);  // two independent methods, ~5 % apart
  // Richer polygon is closer.
  EXPECT_LT(std::abs(l48 - ref), std::abs(l16 - ref) + ref * 0.01);
}

TEST(PolygonCoilTest, CoaxialSquaresMatchEquivalentCircles) {
  // Two coaxial single-turn squares vs the coaxial circular filaments of
  // the same enclosed area: within ~10 % at moderate spacing.
  const double side1 = 20e-3, side2 = 8e-3, d = 10e-3;
  const auto sq1 = PolygonCoil::rectangular(square_spec(side1));
  const auto sq2 = PolygonCoil::rectangular(square_spec(side2));
  const double m_poly = mutual_inductance(sq1, sq2, d);
  const double a1 = (side1 - 0.2e-3) / std::sqrt(constants::kPi);
  const double a2 = (side2 - 0.2e-3) / std::sqrt(constants::kPi);
  const double m_circ = mutual_coaxial_filaments(a1, a2, d);
  EXPECT_NEAR(m_poly, m_circ, m_circ * 0.1);
}

TEST(PolygonCoilTest, ImplantCoilRectangularExceedsCircularEquivalent) {
  // The real 38 x 2 mm rectangle has substantially *higher* self-L than
  // the area-equivalent circle: for high-aspect outlines the long
  // parallel sides dominate, while the equivalent circle only conserves
  // the enclosed area (i.e. the flux linked from the distant transmit
  // coil). The fast circular model therefore remains correct for
  // coupling but knowingly underestimates the implant's self-inductance;
  // this test pins that documented ratio.
  const CoilSpec spec = implant_coil_spec();
  const auto rect = PolygonCoil::rectangular(spec);
  const Coil circ{spec};
  const double ratio = rect.inductance() / circ.inductance();
  EXPECT_GT(ratio, 3.0);
  EXPECT_LT(ratio, 15.0);
}

TEST(PolygonCoilTest, MutualDecaysWithDistanceAndOffset) {
  const auto tx = PolygonCoil::rectangular(square_spec(22e-3));
  const auto rx = PolygonCoil::rectangular(implant_coil_spec());
  double prev = 1e9;
  for (double d : {4e-3, 6e-3, 10e-3, 17e-3}) {
    const double m = mutual_inductance(tx, rx, d);
    EXPECT_LT(std::abs(m), prev);
    prev = std::abs(m);
  }
  // Offset far past the winding reduces |M|.
  const double centered = std::abs(mutual_inductance(tx, rx, 6e-3, 0.0));
  const double far = std::abs(mutual_inductance(tx, rx, 6e-3, 40e-3));
  EXPECT_LT(far, centered);
}

TEST(PolygonCoilTest, RectangularImplantCouplingVsCircularModel) {
  // Cross-validation of the whole-coil coupling path: exact rectangle vs
  // the production circular-equivalent model, same geometry, 6 mm gap.
  const auto tx_poly = PolygonCoil::circular(patch_coil_spec(), 32);
  const auto rx_poly = PolygonCoil::rectangular(implant_coil_spec());
  const double m_poly = mutual_inductance(tx_poly, rx_poly, 6e-3);

  const Coil tx{patch_coil_spec()};
  const Coil rx{implant_coil_spec()};
  const double m_circ = ironic::magnetics::mutual_inductance(tx, rx, 6e-3);
  // Same order; the rectangle's elongation costs some linking flux.
  EXPECT_GT(m_poly, 0.2 * m_circ);
  EXPECT_LT(m_poly, 2.0 * m_circ);
}

TEST(PolygonCoilTest, GeometryValidation) {
  CoilSpec bad = square_spec(1e-3);
  bad.turns_per_layer = 10;
  EXPECT_THROW(PolygonCoil::rectangular(bad), std::invalid_argument);
  EXPECT_THROW(PolygonCoil::circular(square_spec(10e-3), 3), std::invalid_argument);
  const auto tx = PolygonCoil::rectangular(square_spec(10e-3));
  EXPECT_THROW(mutual_inductance(tx, tx, 0.0), std::invalid_argument);
}

}  // namespace
