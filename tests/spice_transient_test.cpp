#include <gtest/gtest.h>

#include <cmath>

#include "src/spice/circuit.hpp"
#include "src/spice/devices_nonlinear.hpp"
#include "src/spice/devices_passive.hpp"
#include "src/spice/devices_sources.hpp"
#include "src/spice/engine.hpp"
#include "src/spice/waveform.hpp"
#include "src/util/constants.hpp"

namespace {

using namespace ironic::spice;
namespace constants = ironic::constants;

TEST(Transient, RcStepResponseMatchesAnalytic) {
  // 1 V step into R = 1k, C = 1 uF; tau = 1 ms.
  Circuit ckt;
  const auto in = ckt.node("in");
  const auto out = ckt.node("out");
  ckt.add<VoltageSource>("V1", in, kGround, Waveform::dc(1.0));
  ckt.add<Resistor>("R1", in, out, 1e3);
  ckt.add<Capacitor>("C1", out, kGround, 1e-6);

  TransientOptions opts;
  opts.t_stop = 5e-3;
  opts.dt_max = 1e-6;
  const auto res = run_transient(ckt, opts);

  for (double t : {0.5e-3, 1e-3, 2e-3, 4e-3}) {
    const double expected = 1.0 - std::exp(-t / 1e-3);
    EXPECT_NEAR(res.value_at("v(out)", t), expected, 2e-4) << "at t=" << t;
  }
}

TEST(Transient, RcDischargeFromInitialCondition) {
  Circuit ckt;
  const auto n = ckt.node("n");
  ckt.add<Capacitor>("C1", n, kGround, 1e-6, /*initial_voltage=*/2.0);
  ckt.add<Resistor>("R1", n, kGround, 1e3);

  TransientOptions opts;
  opts.t_stop = 3e-3;
  opts.dt_max = 1e-6;
  const auto res = run_transient(ckt, opts);

  // Under use-initial-conditions the t = 0 record is the zero vector; the
  // node assumes the capacitor IC on the first accepted step.
  EXPECT_NEAR(res.value_at("v(n)", 5e-6), 2.0, 0.02);
  EXPECT_NEAR(res.value_at("v(n)", 1e-3), 2.0 * std::exp(-1.0), 2e-3);
  EXPECT_NEAR(res.value_at("v(n)", 3e-3), 2.0 * std::exp(-3.0), 2e-3);
}

TEST(Transient, RlCurrentRise) {
  // 1 V step into R = 10 in series with L = 10 mH; tau = 1 ms.
  Circuit ckt;
  const auto in = ckt.node("in");
  const auto mid = ckt.node("mid");
  ckt.add<VoltageSource>("V1", in, kGround, Waveform::dc(1.0));
  ckt.add<Resistor>("R1", in, mid, 10.0);
  ckt.add<Inductor>("L1", mid, kGround, 10e-3);

  TransientOptions opts;
  opts.t_stop = 5e-3;
  opts.dt_max = 1e-6;
  const auto res = run_transient(ckt, opts);

  for (double t : {1e-3, 2e-3, 5e-3}) {
    const double expected = 0.1 * (1.0 - std::exp(-t / 1e-3));
    EXPECT_NEAR(res.value_at("i(L1)", t), expected, 2e-5) << "at t=" << t;
  }
}

TEST(Transient, LcTankRingsAtResonance) {
  // C = 100 nF charged to 1 V rings into L = 10 uH: f0 = 159.2 kHz.
  Circuit ckt;
  const auto n = ckt.node("n");
  ckt.add<Capacitor>("C1", n, kGround, 100e-9, /*initial_voltage=*/1.0);
  ckt.add<Inductor>("L1", n, kGround, 10e-6);

  TransientOptions opts;
  opts.t_stop = 60e-6;
  opts.dt_max = 10e-9;
  const auto res = run_transient(ckt, opts);

  // Find the first two falling zero crossings -> period.
  double t1 = 0.0, t2 = 0.0;
  ASSERT_TRUE(res.first_crossing("v(n)", 0.0, 1e-9, /*rising=*/false, t1));
  ASSERT_TRUE(res.first_crossing("v(n)", 0.0, t1 + 2e-6, false, t2));
  const double period = t2 - t1;
  const double f0 = 1.0 / (constants::kTwoPi * std::sqrt(10e-6 * 100e-9));
  EXPECT_NEAR(1.0 / period, f0, f0 * 0.01);

  // Trapezoidal integration preserves the oscillation amplitude.
  const double late_peak = res.max_between("v(n)", 40e-6, 60e-6);
  EXPECT_GT(late_peak, 0.98);
  EXPECT_LT(late_peak, 1.02);
}

TEST(Transient, BackwardEulerDampsLcTank) {
  // Property contrast: BE is dissipative, trapezoidal is not.
  Circuit ckt;
  const auto n = ckt.node("n");
  ckt.add<Capacitor>("C1", n, kGround, 100e-9, 1.0);
  ckt.add<Inductor>("L1", n, kGround, 10e-6);

  TransientOptions opts;
  opts.t_stop = 60e-6;
  opts.dt_max = 10e-9;
  opts.integrator = Integrator::kBackwardEuler;
  const auto res = run_transient(ckt, opts);
  const double late_peak = res.max_between("v(n)", 40e-6, 60e-6);
  EXPECT_LT(late_peak, 0.95);
}

TEST(Transient, TransformerVoltageRatio) {
  // Equal inductances, k = 0.95: open-circuit secondary sees ~k * v1.
  Circuit ckt;
  const auto in = ckt.node("in");
  const auto sec = ckt.node("sec");
  ckt.add<VoltageSource>("V1", in, kGround, Waveform::sine(1.0, 1e6));
  ckt.add<CoupledInductors>("T1", in, kGround, sec, kGround, 10e-6, 10e-6, 0.95);
  ckt.add<Resistor>("RL", sec, kGround, 1e6);  // ~open

  TransientOptions opts;
  opts.t_stop = 5e-6;
  opts.dt_max = 1e-9;
  const auto res = run_transient(ckt, opts);
  const double peak = res.peak_abs_between("v(sec)", 2e-6, 5e-6);
  EXPECT_NEAR(peak, 0.95, 0.01);
}

TEST(Transient, TransformerTurnsRatioScalesVoltage) {
  // L2 = 4 L1 -> turns ratio 2 -> open-circuit secondary ~ 2 k v1.
  Circuit ckt;
  const auto in = ckt.node("in");
  const auto sec = ckt.node("sec");
  ckt.add<VoltageSource>("V1", in, kGround, Waveform::sine(1.0, 1e6));
  ckt.add<CoupledInductors>("T1", in, kGround, sec, kGround, 10e-6, 40e-6, 0.9);
  ckt.add<Resistor>("RL", sec, kGround, 1e6);

  TransientOptions opts;
  opts.t_stop = 5e-6;
  opts.dt_max = 1e-9;
  const auto res = run_transient(ckt, opts);
  const double peak = res.peak_abs_between("v(sec)", 2e-6, 5e-6);
  EXPECT_NEAR(peak, 1.8, 0.05);
}

TEST(Transient, HalfWaveRectifierChargesCapacitor) {
  Circuit ckt;
  const auto in = ckt.node("in");
  const auto out = ckt.node("out");
  ckt.add<VoltageSource>("V1", in, kGround, Waveform::sine(3.0, 1e6));
  ckt.add<Diode>("D1", in, out);
  ckt.add<Capacitor>("Co", out, kGround, 10e-9);
  ckt.add<Resistor>("RL", out, kGround, 10e3);

  TransientOptions opts;
  opts.t_stop = 20e-6;
  opts.dt_max = 2e-9;
  const auto res = run_transient(ckt, opts);

  const double v_final = res.mean_between("v(out)", 15e-6, 20e-6);
  // Peak minus one diode drop, minus load droop.
  EXPECT_GT(v_final, 2.0);
  EXPECT_LT(v_final, 3.0);
  // Monotone charge-up: late value above early value.
  EXPECT_GT(v_final, res.value_at("v(out)", 2e-6));
}

TEST(Transient, PulseBreakpointsAreHitExactly) {
  Circuit ckt;
  const auto in = ckt.node("in");
  ckt.add<VoltageSource>("V1", in, kGround,
                         Waveform::pulse(0.0, 1.0, 1e-6, 1e-9, 1e-9, 1e-6, 0.0));
  ckt.add<Resistor>("R1", in, kGround, 1e3);

  TransientOptions opts;
  opts.t_stop = 4e-6;
  opts.dt_max = 0.3e-6;  // deliberately incommensurate with the edges
  const auto res = run_transient(ckt, opts);

  // The waveform right before/after the rising edge must be resolved even
  // though dt_max (300 ns) is much larger than the edge (1 ns).
  EXPECT_NEAR(res.value_at("v(in)", 0.99e-6), 0.0, 1e-6);
  EXPECT_NEAR(res.value_at("v(in)", 1.2e-6), 1.0, 1e-6);
  EXPECT_NEAR(res.value_at("v(in)", 2.2e-6), 0.0, 1e-6);
}

TEST(Transient, SmoothSwitchTogglesLoad) {
  SwitchParams sp;
  sp.r_on = 1.0;
  sp.r_off = 1e8;
  sp.v_on = 1.2;
  sp.v_off = 0.6;
  Circuit ckt;
  const auto in = ckt.node("in");
  const auto out = ckt.node("out");
  const auto c = ckt.node("ctl");
  ckt.add<VoltageSource>("V1", in, kGround, Waveform::dc(1.0));
  ckt.add<VoltageSource>("Vc", c, kGround,
                         Waveform::pulse(0.0, 1.8, 5e-6, 0.1e-6, 0.1e-6, 5e-6, 0.0));
  ckt.add<Resistor>("R1", in, out, 1e3);
  ckt.add<SmoothSwitch>("S1", out, kGround, c, kGround, sp);

  TransientOptions opts;
  opts.t_stop = 15e-6;
  opts.dt_max = 50e-9;
  const auto res = run_transient(ckt, opts);

  EXPECT_NEAR(res.value_at("v(out)", 3e-6), 1.0, 1e-3);    // switch off
  EXPECT_NEAR(res.value_at("v(out)", 8e-6), 1.0 / 1001.0, 1e-4);  // switch on
  EXPECT_NEAR(res.value_at("v(out)", 14e-6), 1.0, 1e-3);   // off again
}

TEST(Transient, StartFromDcSkipsInitialTransient) {
  // Divider with a cap across the lower leg: starting from the operating
  // point there is nothing to settle.
  Circuit ckt;
  const auto in = ckt.node("in");
  const auto out = ckt.node("out");
  ckt.add<VoltageSource>("V1", in, kGround, Waveform::dc(2.0));
  ckt.add<Resistor>("R1", in, out, 1e3);
  ckt.add<Resistor>("R2", out, kGround, 1e3);
  ckt.add<Capacitor>("C1", out, kGround, 1e-6);

  TransientOptions opts;
  opts.t_stop = 0.2e-3;
  opts.dt_max = 1e-6;
  opts.start_from_dc = true;
  const auto res = run_transient(ckt, opts);
  EXPECT_NEAR(res.value_at("v(out)", 0.0), 1.0, 1e-6);
  EXPECT_NEAR(res.value_at("v(out)", 0.1e-3), 1.0, 1e-6);
}

TEST(Transient, RecordSignalSubsetAndDecimation) {
  Circuit ckt;
  const auto in = ckt.node("in");
  ckt.add<VoltageSource>("V1", in, kGround, Waveform::dc(1.0));
  ckt.add<Resistor>("R1", in, kGround, 1e3);

  TransientOptions opts;
  opts.t_stop = 1e-3;
  opts.dt_max = 1e-6;
  opts.record_every = 10;
  opts.record_signals = {"v(in)"};
  const auto res = run_transient(ckt, opts);
  EXPECT_TRUE(res.has_signal("v(in)"));
  EXPECT_FALSE(res.has_signal("i(V1)"));
  // ~1000 accepted steps / 10 + initial point.
  EXPECT_LT(res.num_points(), 140u);
  EXPECT_GT(res.num_points(), 80u);
}

TEST(Transient, StatsArePopulated) {
  Circuit ckt;
  const auto in = ckt.node("in");
  ckt.add<VoltageSource>("V1", in, kGround, Waveform::sine(1.0, 1e3));
  ckt.add<Resistor>("R1", in, kGround, 1e3);
  TransientOptions opts;
  opts.t_stop = 1e-3;
  opts.dt_max = 1e-6;
  TransientStats stats;
  run_transient(ckt, opts, &stats);
  EXPECT_GE(stats.accepted_steps, 999u);
  EXPECT_GE(stats.newton_iterations, stats.accepted_steps);
}

TEST(Transient, InvalidOptionsRejected) {
  Circuit ckt;
  ckt.add<Resistor>("R1", ckt.node("a"), kGround, 1.0);
  TransientOptions opts;
  opts.t_stop = 0.0;
  EXPECT_THROW(run_transient(ckt, opts), std::invalid_argument);
  opts.t_stop = 1e-3;
  opts.dt_max = -1e-6;  // 0 now means "auto" (dt hint or 1 us), < 0 is bad
  EXPECT_THROW(run_transient(ckt, opts), std::invalid_argument);
  opts.dt_max = 1e-6;
  opts.record_signals = {"v(nonexistent)"};
  EXPECT_THROW(run_transient(ckt, opts), std::invalid_argument);
}

TEST(Transient, CapacitorVoltageContinuityAcrossSteps) {
  // Property: with trapezoidal integration the capacitor charge matches
  // the integral of its current (checked through the source branch).
  Circuit ckt;
  const auto in = ckt.node("in");
  const auto out = ckt.node("out");
  ckt.add<VoltageSource>("V1", in, kGround, Waveform::sine(1.0, 10e3));
  ckt.add<Resistor>("R1", in, out, 100.0);
  ckt.add<Capacitor>("C1", out, kGround, 100e-9);

  TransientOptions opts;
  opts.t_stop = 0.2e-3;
  opts.dt_max = 0.1e-6;
  const auto res = run_transient(ckt, opts);

  // i_C = (v(in) - v(out)) / R; integrate and compare to C dv.
  const auto& t = res.time();
  const auto vin = res.signal("v(in)");
  const auto vout = res.signal("v(out)");
  double charge = 0.0;
  for (std::size_t i = 1; i < t.size(); ++i) {
    const double i1 = (vin[i] - vout[i]) / 100.0;
    const double i0 = (vin[i - 1] - vout[i - 1]) / 100.0;
    charge += 0.5 * (i1 + i0) * (t[i] - t[i - 1]);
  }
  const double dv = vout.back() - vout.front();
  EXPECT_NEAR(charge, 100e-9 * dv, 1e-11);
}

}  // namespace
