#include <gtest/gtest.h>

#include "src/patch/scheduler.hpp"

namespace {

using namespace ironic::patch;

TEST(SessionPlan, DurationAddsUp) {
  SessionPlan plan;
  const double expected = 10.0 + 2.0 + 5.0 + 64.0 / 100e3 + 128.0 / 66.6e3;
  EXPECT_NEAR(plan.duration(), expected, 1e-9);
}

TEST(SessionCharge, DominatedByPoweringPhases) {
  PatchPowerSpec power;
  SessionPlan plan;
  const double q = session_charge(power, plan);
  // Powering runs 7 s at ~158 mA -> ~1.1 C; connect 10 s at 68 mA -> 0.68 C.
  EXPECT_GT(q, 1.5);
  EXPECT_LT(q, 2.5);
  SessionPlan bad;
  bad.downlink_rate = 0.0;
  EXPECT_THROW(session_charge(power, bad), std::invalid_argument);
}

TEST(SessionsPerCharge, BackToBackMatchesLedger) {
  PatchPowerSpec power;
  BatterySpec battery;
  SessionPlan plan;
  const int n = sessions_per_charge(power, battery, plan, 0.0);
  const double q = session_charge(power, plan);
  EXPECT_EQ(n, static_cast<int>(battery.capacity_coulombs() / q));
  EXPECT_GT(n, 100);  // hundreds of short sessions per charge
}

TEST(SessionsPerCharge, IdleGapsReduceCount) {
  PatchPowerSpec power;
  BatterySpec battery;
  SessionPlan plan;
  const int dense = sessions_per_charge(power, battery, plan, 0.0);
  const int sparse = sessions_per_charge(power, battery, plan, 600.0);
  EXPECT_LT(sparse, dense);
  EXPECT_THROW(sessions_per_charge(power, battery, plan, -1.0), std::invalid_argument);
}

TEST(EndOfDay, MoreSessionsLowerSoc) {
  PatchPowerSpec power;
  BatterySpec battery;
  SessionPlan plan;
  const double s4 = end_of_day_soc(power, battery, plan, 4, 16.0);
  const double s12 = end_of_day_soc(power, battery, plan, 12, 16.0);
  EXPECT_GT(s4, s12);
  EXPECT_THROW(end_of_day_soc(power, battery, plan, -1, 16.0), std::invalid_argument);
}

TEST(EndOfDay, IdleDrainAloneLimitsTheDay) {
  // 16 awake hours at the 23 mA idle draw already costs most of the
  // 240 mAh cell — the paper's 10 h idle figure, restated daily.
  PatchPowerSpec power;
  BatterySpec battery;
  SessionPlan plan;
  const double soc = end_of_day_soc(power, battery, plan, 0, 16.0);
  EXPECT_LT(soc, 0.0);  // cannot cover 16 h awake without recharging
  EXPECT_GT(end_of_day_soc(power, battery, plan, 0, 8.0), 0.1);
}

TEST(Mission, MaxSessionsConsistentWithSoc) {
  PatchPowerSpec power;
  BatterySpec battery;
  SessionPlan plan;
  const auto mission = max_daily_sessions(power, battery, plan, 8.0, 0.2);
  ASSERT_TRUE(mission.feasible);
  EXPECT_GE(mission.end_soc, 0.2);
  // One more session would breach the reserve.
  EXPECT_LT(end_of_day_soc(power, battery, plan, mission.sessions_per_day + 1, 8.0),
            0.2);
}

TEST(Mission, InfeasibleAwakeWindowReportsZeroSessions) {
  PatchPowerSpec power;
  BatterySpec battery;
  SessionPlan plan;
  // 16 h awake: even zero sessions breaches the reserve (idle drain).
  const auto mission = max_daily_sessions(power, battery, plan, 16.0, 0.2);
  EXPECT_FALSE(mission.feasible);
  EXPECT_EQ(mission.sessions_per_day, 0);
}

}  // namespace
