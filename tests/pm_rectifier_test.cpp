#include <gtest/gtest.h>

#include <cmath>

#include "src/pm/rectifier.hpp"
#include "src/spice/devices_passive.hpp"
#include "src/spice/devices_sources.hpp"
#include "src/spice/engine.hpp"

namespace {

using namespace ironic::pm;
using namespace ironic::spice;

RectifierOptions fast_options() {
  RectifierOptions opt;
  opt.storage_capacitance = 10e-9;  // small Co keeps unit tests quick
  opt.diode_is = 1e-16;             // ~0.75 V drop -> 4-diode clamp near 3 V
  return opt;
}

struct RectifierSim {
  Circuit ckt;
  RectifierHandles rect;
};

TransientResult run_rectifier(Circuit& ckt, double t_stop, double dt = 5e-9) {
  TransientOptions opts;
  opts.t_stop = t_stop;
  opts.dt_max = dt;
  opts.record_every = 4;
  return run_transient(ckt, opts);
}

TEST(Rectifier, ChargesTowardInputPeakMinusDrop) {
  Circuit ckt;
  const auto src = ckt.node("src");
  const auto vi = ckt.node("vi");
  ckt.add<VoltageSource>("Vs", src, kGround, Waveform::sine(3.5, 5e6));
  ckt.add<Resistor>("Rs", src, vi, 50.0);
  build_rectifier(ckt, "r", vi, Waveform::dc(0.0), Waveform::dc(1.8), fast_options());
  const auto res = run_rectifier(ckt, 60e-6);

  const double vo = res.mean_between("v(r.vo)", 50e-6, 60e-6);
  EXPECT_GT(vo, 2.2);
  EXPECT_LT(vo, 3.2);
  // Monotone charge-up.
  EXPECT_GT(vo, res.value_at("v(r.vo)", 5e-6));
}

TEST(Rectifier, ClampLimitsOutputNearThreeVolts) {
  Circuit ckt;
  const auto src = ckt.node("src");
  const auto vi = ckt.node("vi");
  ckt.add<VoltageSource>("Vs", src, kGround, Waveform::sine(6.0, 5e6));
  ckt.add<Resistor>("Rs", src, vi, 50.0);
  build_rectifier(ckt, "r", vi, Waveform::dc(0.0), Waveform::dc(1.8), fast_options());
  const auto res = run_rectifier(ckt, 60e-6);
  // Overdriven input, yet Vo <= ~3 V thanks to the clamp chain.
  EXPECT_LT(res.max_between("v(r.vo)", 0.0, 60e-6), 3.3);
  EXPECT_GT(res.mean_between("v(r.vo)", 50e-6, 60e-6), 2.5);
}

TEST(Rectifier, AblationWithoutClampOvervolts) {
  auto opt = fast_options();
  opt.clamps_enabled = false;
  Circuit ckt;
  const auto src = ckt.node("src");
  const auto vi = ckt.node("vi");
  ckt.add<VoltageSource>("Vs", src, kGround, Waveform::sine(6.0, 5e6));
  ckt.add<Resistor>("Rs", src, vi, 50.0);
  build_rectifier(ckt, "r", vi, Waveform::dc(0.0), Waveform::dc(1.8), opt);
  const auto res = run_rectifier(ckt, 60e-6);
  // Without the clamps the output runs away past the 3 V safe ceiling.
  EXPECT_GT(res.max_between("v(r.vo)", 0.0, 60e-6), 4.0);
}

TEST(Rectifier, M1ShortSuppressesInput) {
  Circuit ckt;
  const auto src = ckt.node("src");
  const auto vi = ckt.node("vi");
  ckt.add<VoltageSource>("Vs", src, kGround, Waveform::sine(3.5, 5e6));
  ckt.add<Resistor>("Rs", src, vi, 50.0);
  // Vup rises at 30 us: input shorted afterwards.
  build_rectifier(ckt, "r", vi,
                  Waveform::pulse(0.0, 1.8, 30e-6, 0.1e-6, 0.1e-6, 100e-6, 0.0),
                  Waveform::dc(1.8), fast_options());
  const auto res = run_rectifier(ckt, 60e-6);
  const double open_peak = res.peak_abs_between("v(vi)", 20e-6, 29e-6);
  const double short_peak = res.peak_abs_between("v(vi)", 40e-6, 60e-6);
  EXPECT_LT(short_peak, open_peak * 0.25);
}

TEST(Rectifier, M2OpenPreventsClampLeakDuringUplink) {
  // Charge Co, remove the drive, short the input (uplink '0'): with M2
  // closed the clamp chain leaks Co down; with M2 open it holds.
  const auto run_variant = [](bool m2_closed) {
    Circuit ckt;
    const auto src = ckt.node("src");
    const auto vi = ckt.node("vi");
    // Carrier present for 40 us, then off.
    ironic::util::PiecewiseLinear env({0.0, 40e-6, 41e-6}, {3.5, 3.5, 0.0});
    ckt.add<VoltageSource>("Vs", src, kGround,
                           Waveform::modulated_sine(5e6, env));
    ckt.add<Resistor>("Rs", src, vi, 50.0);
    build_rectifier(ckt, "r", vi,
                    Waveform::pulse(0.0, 1.8, 45e-6, 0.1e-6, 0.1e-6, 300e-6, 0.0),
                    m2_closed ? Waveform::dc(1.8)
                              : Waveform::pulse(1.8, 0.0, 45e-6, 0.1e-6, 0.1e-6,
                                                300e-6, 0.0),
                    fast_options());
    const auto res = run_rectifier(ckt, 160e-6);
    return res.value_at("v(r.vo)", 45e-6) - res.value_at("v(r.vo)", 160e-6);
  };
  const double droop_closed = run_variant(true);
  const double droop_open = run_variant(false);
  EXPECT_GT(droop_closed, droop_open * 3.0);
  EXPECT_LT(droop_open, 0.1);
}

TEST(Rectifier, BulkBiasPreservesNegativeSwing) {
  // With M1's bulk hard-grounded, its body diode clamps Vi near -0.8 V;
  // the Ma/Mb steering well lets the input swing fully negative.
  const auto min_vi = [](bool bias) {
    auto opt = fast_options();
    opt.bulk_bias = bias;
    Circuit ckt;
    const auto src = ckt.node("src");
    const auto vi = ckt.node("vi");
    ckt.add<VoltageSource>("Vs", src, kGround, Waveform::sine(3.0, 5e6));
    ckt.add<Resistor>("Rs", src, vi, 50.0);
    build_rectifier(ckt, "r", vi, Waveform::dc(0.0), Waveform::dc(1.8), opt);
    TransientOptions opts;
    opts.t_stop = 10e-6;
    opts.dt_max = 2e-9;
    opts.record_signals = {"v(vi)"};
    const auto res = run_transient(ckt, opts);
    return res.min_between("v(vi)", 5e-6, 10e-6);
  };
  const double with_bias = min_vi(true);
  const double grounded = min_vi(false);
  // Both variants are bounded by M1's grounded-gate channel turning on
  // (source = input below -Vth), but the hard-grounded bulk adds the
  // body diode in parallel and clamps visibly earlier.
  EXPECT_LT(with_bias, grounded - 0.05);
  EXPECT_GT(grounded, -1.0);
  EXPECT_LT(with_bias, -0.85);
}

TEST(Rectifier, InputImpedanceNearPaperValue) {
  // Paper Sec. IV-C: 'the average input impedance of the rectifier is
  // about 150 Ohm'. We assert the same order of magnitude.
  const auto z = extract_average_input_impedance(3.5, 150.0, 1.8 / 350e-6,
                                                 fast_options());
  EXPECT_GT(z.resistance, 50.0);
  EXPECT_LT(z.resistance, 600.0);
  EXPECT_GT(z.average_power, 0.0);
  EXPECT_GT(z.output_voltage, 1.5);
}

TEST(Rectifier, HeavierLoadLowersInputImpedance) {
  const auto light = extract_average_input_impedance(3.5, 150.0, 1.8 / 350e-6,
                                                     fast_options());
  const auto heavy = extract_average_input_impedance(3.5, 150.0, 1.8 / 1.3e-3,
                                                     fast_options());
  EXPECT_LT(heavy.resistance, light.resistance);
  EXPECT_GT(heavy.average_power, light.average_power);
}

TEST(Rectifier, RejectsBadOptions) {
  Circuit ckt;
  RectifierOptions opt;
  opt.storage_capacitance = 0.0;
  EXPECT_THROW(build_rectifier(ckt, "r", ckt.node("vi"), Waveform::dc(0.0),
                               Waveform::dc(1.8), opt),
               std::invalid_argument);
  EXPECT_THROW(extract_average_input_impedance(-1.0, 150.0, 5e3), std::invalid_argument);
}

}  // namespace
