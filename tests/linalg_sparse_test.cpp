// Unit tests for the sparse MNA backend (src/linalg/sparse.hpp): dense
// parity on random systems, slot-cache behaviour under pattern growth and
// stamp reordering, the factor-skip / refactorization ladder, and the
// NaN-aware singular diagnostics shared with the dense backend.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <limits>
#include <random>
#include <vector>

#include "src/linalg/lu.hpp"
#include "src/linalg/solver.hpp"
#include "src/linalg/sparse.hpp"

using namespace ironic::linalg;

namespace {

struct Entry {
  int row;
  int col;
  double value;
};

// Assemble the same triplets into any backend.
template <typename Solver>
void assemble(Solver& s, const std::vector<Entry>& entries) {
  s.begin_assembly();
  for (const auto& e : entries) s.add(e.row, e.col, e.value);
}

// Random diagonally-dominant sparse system, deterministic per (n, seed).
std::vector<Entry> random_system(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> val(-1.0, 1.0);
  std::uniform_int_distribution<int> pick(0, static_cast<int>(n) - 1);
  std::vector<Entry> entries;
  for (int i = 0; i < static_cast<int>(n); ++i) {
    entries.push_back({i, i, 4.0 + val(rng)});
    for (int k = 0; k < 3; ++k) {
      entries.push_back({i, pick(rng), val(rng)});
      entries.push_back({pick(rng), i, val(rng)});
    }
  }
  return entries;
}

std::vector<double> solve_with(LinearSolver& s, const std::vector<Entry>& entries,
                               const std::vector<double>& rhs) {
  assemble(s, entries);
  s.factor();
  std::vector<double> x = rhs;
  s.solve_in_place(x);
  return x;
}

}  // namespace

TEST(SparseSolver, MatchesDenseOnRandomSystems) {
  for (const std::size_t n : {2u, 5u, 17u, 64u}) {
    for (unsigned seed = 1; seed <= 3; ++seed) {
      const auto entries = random_system(n, seed);
      std::vector<double> rhs(n);
      for (std::size_t i = 0; i < n; ++i) rhs[i] = std::sin(1.0 + double(i));
      auto dense = make_solver(SolverKind::kDense, n);
      auto sparse = make_solver(SolverKind::kSparse, n);
      const auto xd = solve_with(*dense, entries, rhs);
      const auto xs = solve_with(*sparse, entries, rhs);
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_NEAR(xs[i], xd[i], 1e-9 * (1.0 + std::abs(xd[i])))
            << "n=" << n << " seed=" << seed << " i=" << i;
      }
    }
  }
}

TEST(SparseSolver, EmptySystemIsANoOp) {
  SparseSolver<double> s(0);
  s.begin_assembly();
  EXPECT_NO_THROW(s.factor());
  std::vector<double> b;
  EXPECT_NO_THROW(s.solve_in_place(b));
}

TEST(SparseSolver, OneByOneSolves) {
  SparseSolver<double> s(1);
  s.begin_assembly();
  s.add(0, 0, 2.0);
  s.factor();
  std::vector<double> b{6.0};
  s.solve_in_place(b);
  EXPECT_DOUBLE_EQ(b[0], 3.0);
  EXPECT_EQ(s.pattern_nnz(), 1u);
}

TEST(SparseSolver, AddRejectsOutOfRangeIndices) {
  SparseSolver<double> s(2);
  s.begin_assembly();
  EXPECT_THROW(s.add(-1, 0, 1.0), std::out_of_range);
  EXPECT_THROW(s.add(0, 2, 1.0), std::out_of_range);
}

TEST(SparseSolver, SingularMatrixDiagnosticsMatchDense) {
  // Structurally present but numerically empty column: both backends must
  // throw SingularMatrixError with the same diagnostic wording.
  const std::vector<Entry> singular{{0, 0, 1.0}, {0, 1, 1.0}, {1, 0, 0.0}, {1, 1, 0.0}};
  for (const SolverKind kind : {SolverKind::kDense, SolverKind::kSparse}) {
    auto s = make_solver(kind, 2);
    assemble(*s, singular);
    try {
      s->factor();
      FAIL() << solver_kind_name(kind) << " backend accepted a singular matrix";
    } catch (const SingularMatrixError& err) {
      EXPECT_NE(std::string(err.what()).find("below tolerance"), std::string::npos)
          << err.what();
      EXPECT_NE(std::string(err.what()).find("floating node"), std::string::npos)
          << err.what();
    }
  }
}

TEST(SparseSolver, NaNPoisonedAssemblyIsRejectedNotPropagated) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  for (const SolverKind kind : {SolverKind::kDense, SolverKind::kSparse}) {
    auto s = make_solver(kind, 2);
    assemble(*s, {{0, 0, nan}, {0, 1, 1.0}, {1, 0, 1.0}, {1, 1, 2.0}});
    EXPECT_THROW(s->factor(), SingularMatrixError) << solver_kind_name(kind);
  }
}

TEST(SparseSolver, NaNDefeatsTheFactorSkipAndTheRefactorPath) {
  // Factor a healthy matrix first so both the factor-skip comparison and
  // the cached symbolic structure are armed, then poison one entry: the
  // NaN must fail the refactor pivot check and then the full
  // factorization, never reach solve_in_place.
  SparseSolver<double> s(2);
  const std::vector<Entry> good{{0, 0, 3.0}, {0, 1, 1.0}, {1, 0, 1.0}, {1, 1, 2.0}};
  assemble(s, good);
  s.factor();
  EXPECT_EQ(s.stats().factorizations, 1u);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  assemble(s, {{0, 0, nan}, {0, 1, 1.0}, {1, 0, 1.0}, {1, 1, 2.0}});
  EXPECT_THROW(s.factor(), SingularMatrixError);
  EXPECT_EQ(s.stats().factor_skips, 0u);
  EXPECT_EQ(s.stats().refactorizations, 0u);
}

TEST(SparseSolver, OverflowEntriesGrowThePatternOnce) {
  // DC-then-transient shape: the first assembly misses the capacitor
  // coupling entries, the second introduces them. The pattern must grow
  // exactly once and the grown system must still match dense.
  const std::size_t n = 4;
  std::vector<Entry> dc;
  for (int i = 0; i < 4; ++i) dc.push_back({i, i, 2.0});
  SparseSolver<double> s(n);
  std::vector<double> rhs{1.0, 2.0, 3.0, 4.0};
  auto x = solve_with(s, dc, rhs);
  EXPECT_EQ(s.stats().pattern_builds, 1u);
  EXPECT_EQ(s.pattern_nnz(), 4u);
  for (std::size_t i = 0; i < n; ++i) EXPECT_DOUBLE_EQ(x[i], rhs[i] / 2.0);

  std::vector<Entry> tran = dc;
  tran.push_back({0, 1, -0.5});
  tran.push_back({1, 0, -0.5});
  auto dense = make_solver(SolverKind::kDense, n);
  const auto xd = solve_with(*dense, tran, rhs);
  const auto xs = solve_with(s, tran, rhs);
  EXPECT_EQ(s.stats().pattern_builds, 2u);
  EXPECT_EQ(s.pattern_nnz(), 6u);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(xs[i], xd[i], 1e-12);

  // Third assembly with the same entries: the grown pattern is reused.
  (void)solve_with(s, tran, rhs);
  EXPECT_EQ(s.stats().pattern_builds, 2u);
  EXPECT_GE(s.stats().pattern_reuses, 1u);
}

TEST(SparseSolver, OmittedStampLeavesAStructuralZero) {
  // An entry stamped once stays in the pattern forever; an assembly that
  // skips it sees a numeric zero there, not a pattern rebuild.
  SparseSolver<double> s(2);
  assemble(s, {{0, 0, 2.0}, {0, 1, 1.0}, {1, 1, 2.0}, {1, 0, 1.0}});
  s.factor();
  EXPECT_EQ(s.pattern_nnz(), 4u);
  // Re-stamp without the trailing (1, 0) coupling.
  assemble(s, {{0, 0, 2.0}, {0, 1, 1.0}, {1, 1, 4.0}});
  s.factor();
  EXPECT_EQ(s.pattern_nnz(), 4u);
  EXPECT_EQ(s.stats().pattern_builds, 1u);
  std::vector<double> b{2.0, 4.0};
  s.solve_in_place(b);
  // [[2, 1], [0, 4]] x = [2, 4] -> x = [0.5, 1].
  EXPECT_NEAR(b[0], 0.5, 1e-12);
  EXPECT_NEAR(b[1], 1.0, 1e-12);
}

TEST(SparseSolver, StampOrderReorderingIsCorrectnessNeutral) {
  // A MOSFET swapping source/drain roles reorders its add() calls. The
  // slot cache must keep the matched prefix, re-record, and produce the
  // same numbers as a cold solver.
  const std::size_t n = 6;
  const auto entries = random_system(n, 42);
  std::vector<double> rhs(n, 1.0);
  SparseSolver<double> warm(n);
  (void)solve_with(warm, entries, rhs);

  std::vector<Entry> reordered(entries.rbegin(), entries.rend());
  const auto x_warm = solve_with(warm, reordered, rhs);
  SparseSolver<double> cold(n);
  const auto x_cold = solve_with(cold, reordered, rhs);
  for (std::size_t i = 0; i < n; ++i) EXPECT_DOUBLE_EQ(x_warm[i], x_cold[i]);
  // Same entry set: the pattern survived the reorder untouched.
  EXPECT_EQ(warm.stats().pattern_builds, 1u);
  EXPECT_EQ(warm.pattern_nnz(), cold.pattern_nnz());
}

TEST(SparseSolver, FactorLadderSkipsRefactorsAndRepivots) {
  const std::vector<Entry> a1{{0, 0, 10.0}, {0, 1, 1.0}, {1, 0, 1.0}, {1, 1, 5.0}};
  SparseSolver<double> s(2);
  assemble(s, a1);
  s.factor();
  EXPECT_EQ(s.stats().factorizations, 1u);
  EXPECT_EQ(s.stats().refactorizations, 0u);

  // Same values again: bit-identical, factor is skipped outright.
  assemble(s, a1);
  s.factor();
  EXPECT_EQ(s.stats().factorizations, 1u);
  EXPECT_EQ(s.stats().factor_skips, 1u);

  // New values on the same pattern: numeric-only refactorization.
  assemble(s, {{0, 0, 8.0}, {0, 1, 1.0}, {1, 0, 1.0}, {1, 1, 4.0}});
  s.factor();
  EXPECT_EQ(s.stats().factorizations, 2u);
  EXPECT_EQ(s.stats().refactorizations, 1u);

  // Degrade the cached pivot (column 0 now dominated by the off-diagonal):
  // the refactor check must reject it and fall back to a full, re-pivoted
  // factorization that still solves correctly.
  const std::vector<Entry> flipped{
      {0, 0, 1e-9}, {0, 1, 1.0}, {1, 0, 1.0}, {1, 1, 1e-9}};
  auto dense = make_solver(SolverKind::kDense, 2);
  const std::vector<double> rhs{1.0, 2.0};
  const auto xd = solve_with(*dense, flipped, rhs);
  const auto xs = solve_with(s, flipped, rhs);
  EXPECT_EQ(s.stats().factorizations, 3u);
  EXPECT_EQ(s.stats().refactorizations, 1u);  // unchanged: fallback path
  for (std::size_t i = 0; i < 2; ++i) EXPECT_NEAR(xs[i], xd[i], 1e-9);
}

TEST(SparseSolver, SingularityIsDetectedOnTheRefactorPathToo) {
  SparseSolver<double> s(2);
  assemble(s, {{0, 0, 3.0}, {0, 1, 1.0}, {1, 0, 1.0}, {1, 1, 2.0}});
  s.factor();
  // Numerically singular values on the cached structure: the refactor
  // rejects the pivot, the full fallback throws.
  assemble(s, {{0, 0, 1.0}, {0, 1, 1.0}, {1, 0, 1.0}, {1, 1, 1.0}});
  EXPECT_THROW(s.factor(), SingularMatrixError);
}

TEST(SparseSolver, InvalidateStructureReturnsToColdStateCorrectly) {
  const std::size_t n = 8;
  const auto entries = random_system(n, 7);
  std::vector<double> rhs(n, 1.0);
  SparseSolver<double> s(n);
  const auto x1 = solve_with(s, entries, rhs);
  s.invalidate_structure();
  const auto x2 = solve_with(s, entries, rhs);
  EXPECT_EQ(s.stats().pattern_builds, 2u);
  for (std::size_t i = 0; i < n; ++i) EXPECT_DOUBLE_EQ(x1[i], x2[i]);
}

TEST(SparseSolver, DiagonalRatioReportsConditioning) {
  SparseSolver<double> good(2);
  assemble(good, {{0, 0, 2.0}, {1, 1, 2.0}});
  good.factor();
  EXPECT_DOUBLE_EQ(good.diagonal_ratio(), 1.0);

  SparseSolver<double> skewed(2);
  assemble(skewed, {{0, 0, 1e6}, {1, 1, 1.0}});
  skewed.factor();
  EXPECT_NEAR(skewed.diagonal_ratio(), 1e6, 1.0);
}

TEST(SparseSolver, BandedSystemFillStaysLinear) {
  // 200-unknown tridiagonal ladder: the factorization must stay O(n) in
  // stored entries (the point of the sparse backend) and match dense.
  const std::size_t n = 200;
  std::vector<Entry> entries;
  for (int i = 0; i < static_cast<int>(n); ++i) {
    entries.push_back({i, i, 4.0});
    if (i > 0) {
      entries.push_back({i, i - 1, -1.0});
      entries.push_back({i - 1, i, -1.0});
    }
  }
  std::vector<double> rhs(n);
  for (std::size_t i = 0; i < n; ++i) rhs[i] = std::cos(double(i));
  auto dense = make_solver(SolverKind::kDense, n);
  const auto xd = solve_with(*dense, entries, rhs);
  SparseSolver<double> s(n);
  const auto xs = solve_with(s, entries, rhs);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(xs[i], xd[i], 1e-10);
  EXPECT_LT(s.stats().factor_nnz, 10 * n) << "tridiagonal factor filled in";
  EXPECT_LT(s.stats().factor_nnz, dense->stats().factor_nnz);
}

TEST(SparseSolver, ComplexBackendMatchesComplexDense) {
  const std::size_t n = 12;
  auto dense = make_complex_solver(SolverKind::kDense, n);
  auto sparse = make_complex_solver(SolverKind::kSparse, n);
  for (auto* s : {dense.get(), sparse.get()}) s->begin_assembly();
  std::mt19937 rng_d(3), rng_s(3);
  auto stamp = [&](ComplexLinearSolver& s, std::mt19937& r) {
    std::uniform_real_distribution<double> v(-1.0, 1.0);
    for (int i = 0; i < static_cast<int>(n); ++i) {
      s.add(i, i, {5.0 + v(r), v(r)});
      s.add(i, (i + 3) % static_cast<int>(n), {v(r), v(r)});
      s.add((i + 5) % static_cast<int>(n), i, {v(r), v(r)});
    }
  };
  stamp(*dense, rng_d);
  stamp(*sparse, rng_s);
  dense->factor();
  sparse->factor();
  std::vector<Complex> bd(n), bs(n);
  for (std::size_t i = 0; i < n; ++i) bd[i] = bs[i] = Complex{1.0, double(i)};
  dense->solve_in_place(bd);
  sparse->solve_in_place(bs);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(bs[i].real(), bd[i].real(), 1e-9);
    EXPECT_NEAR(bs[i].imag(), bd[i].imag(), 1e-9);
  }
}

TEST(SparseSolver, KindParsingAndAutoResolution) {
  SolverKind k = SolverKind::kAuto;
  EXPECT_TRUE(parse_solver_kind("dense", k));
  EXPECT_EQ(k, SolverKind::kDense);
  EXPECT_TRUE(parse_solver_kind("sparse", k));
  EXPECT_EQ(k, SolverKind::kSparse);
  EXPECT_TRUE(parse_solver_kind("auto", k));
  EXPECT_EQ(k, SolverKind::kAuto);
  EXPECT_FALSE(parse_solver_kind("cholesky", k));
  EXPECT_EQ(k, SolverKind::kAuto);

  EXPECT_EQ(resolve_solver_kind(SolverKind::kAuto, kSparseAutoThreshold - 1),
            SolverKind::kDense);
  EXPECT_EQ(resolve_solver_kind(SolverKind::kAuto, kSparseAutoThreshold),
            SolverKind::kSparse);
  EXPECT_EQ(resolve_solver_kind(SolverKind::kDense, 1000), SolverKind::kDense);
  EXPECT_EQ(resolve_solver_kind(SolverKind::kSparse, 2), SolverKind::kSparse);

  EXPECT_STREQ(solver_kind_name(SolverKind::kAuto), "auto");
  EXPECT_STREQ(make_solver(SolverKind::kAuto, 4)->name(), "dense");
  EXPECT_STREQ(make_solver(SolverKind::kAuto, 64)->name(), "sparse");
  EXPECT_STREQ(make_complex_solver(SolverKind::kSparse, 4)->name(), "sparse");
}
