#include <gtest/gtest.h>

#include <cmath>

#include "src/spice/circuit.hpp"
#include "src/spice/devices_nonlinear.hpp"
#include "src/spice/devices_passive.hpp"
#include "src/spice/devices_sources.hpp"
#include "src/spice/engine.hpp"
#include "src/spice/waveform.hpp"

namespace {

using namespace ironic::spice;

double node_voltage(const Circuit& ckt, const DcResult& dc, Circuit& mut,
                    const std::string& name) {
  (void)ckt;
  return dc.x[static_cast<std::size_t>(mut.find_node(name))];
}

TEST(Dc, VoltageDivider) {
  Circuit ckt;
  const auto in = ckt.node("in");
  const auto out = ckt.node("out");
  ckt.add<VoltageSource>("V1", in, kGround, Waveform::dc(10.0));
  ckt.add<Resistor>("R1", in, out, 1e3);
  ckt.add<Resistor>("R2", out, kGround, 3e3);
  const auto dc = solve_dc(ckt);
  ASSERT_TRUE(dc.converged);
  EXPECT_NEAR(node_voltage(ckt, dc, ckt, "out"), 7.5, 1e-6);
  EXPECT_EQ(dc.strategy, "newton");
}

TEST(Dc, VoltageSourceBranchCurrentSignConvention) {
  Circuit ckt;
  const auto in = ckt.node("in");
  auto& vs = ckt.add<VoltageSource>("V1", in, kGround, Waveform::dc(1.0));
  ckt.add<Resistor>("R1", in, kGround, 100.0);
  const auto dc = solve_dc(ckt);
  ASSERT_TRUE(dc.converged);
  // Source drives 10 mA into the circuit; branch current (a -> b through
  // the source) is therefore -10 mA.
  EXPECT_NEAR(dc.x[static_cast<std::size_t>(vs.branch_index())], -0.01, 1e-9);
}

TEST(Dc, CurrentSourceIntoResistor) {
  Circuit ckt;
  const auto n = ckt.node("n");
  // 1 mA flowing from ground to n through the source raises v(n).
  ckt.add<CurrentSource>("I1", kGround, n, Waveform::dc(1e-3));
  ckt.add<Resistor>("R1", n, kGround, 2e3);
  const auto dc = solve_dc(ckt);
  ASSERT_TRUE(dc.converged);
  EXPECT_NEAR(node_voltage(ckt, dc, ckt, "n"), 2.0, 1e-6);
}

TEST(Dc, VcvsGain) {
  Circuit ckt;
  const auto a = ckt.node("a");
  const auto out = ckt.node("out");
  ckt.add<VoltageSource>("V1", a, kGround, Waveform::dc(0.5));
  ckt.add<Vcvs>("E1", out, kGround, a, kGround, 4.0);
  ckt.add<Resistor>("RL", out, kGround, 1e3);
  const auto dc = solve_dc(ckt);
  ASSERT_TRUE(dc.converged);
  EXPECT_NEAR(node_voltage(ckt, dc, ckt, "out"), 2.0, 1e-9);
}

TEST(Dc, VccsTransconductance) {
  Circuit ckt;
  const auto a = ckt.node("a");
  const auto out = ckt.node("out");
  ckt.add<VoltageSource>("V1", a, kGround, Waveform::dc(1.0));
  // 2 mS: pulls 2 mA from out to ground per volt of control.
  ckt.add<Vccs>("G1", out, kGround, a, kGround, 2e-3);
  ckt.add<Resistor>("R1", out, kGround, 1e3);
  ckt.add<VoltageSource>("V2", ckt.node("s"), kGround, Waveform::dc(0.0));
  ckt.add<Resistor>("R2", ckt.node("s"), out, 1e3);
  const auto dc = solve_dc(ckt);
  ASSERT_TRUE(dc.converged);
  // Thevenin: node out sees 2 mA sink with 500 ohm to ground -> -1 V.
  EXPECT_NEAR(node_voltage(ckt, dc, ckt, "out"), -1.0, 1e-6);
}

TEST(Dc, InductorIsDcShort) {
  Circuit ckt;
  const auto in = ckt.node("in");
  const auto mid = ckt.node("mid");
  ckt.add<VoltageSource>("V1", in, kGround, Waveform::dc(5.0));
  ckt.add<Inductor>("L1", in, mid, 1e-3);
  ckt.add<Resistor>("R1", mid, kGround, 1e3);
  const auto dc = solve_dc(ckt);
  ASSERT_TRUE(dc.converged);
  EXPECT_NEAR(node_voltage(ckt, dc, ckt, "mid"), 5.0, 1e-4);
}

TEST(Dc, DiodeForwardDrop) {
  Circuit ckt;
  const auto in = ckt.node("in");
  const auto d = ckt.node("d");
  ckt.add<VoltageSource>("V1", in, kGround, Waveform::dc(1.0));
  ckt.add<Resistor>("R1", in, d, 1e3);
  auto& diode = ckt.add<Diode>("D1", d, kGround);
  const auto dc = solve_dc(ckt);
  ASSERT_TRUE(dc.converged);
  const double vd = node_voltage(ckt, dc, ckt, "d");
  EXPECT_GT(vd, 0.4);
  EXPECT_LT(vd, 0.8);
  // KCL: resistor current equals diode current.
  const double ir = (1.0 - vd) / 1e3;
  EXPECT_NEAR(ir, diode.current(vd), 1e-7);
}

TEST(Dc, DiodeReverseBlocks) {
  Circuit ckt;
  const auto in = ckt.node("in");
  const auto d = ckt.node("d");
  ckt.add<VoltageSource>("V1", in, kGround, Waveform::dc(-5.0));
  ckt.add<Resistor>("R1", in, d, 1e3);
  ckt.add<Diode>("D1", d, kGround);
  const auto dc = solve_dc(ckt);
  ASSERT_TRUE(dc.converged);
  // Nearly the full -5 V appears across the diode.
  EXPECT_LT(node_voltage(ckt, dc, ckt, "d"), -4.99);
}

TEST(Dc, DiodeStackClampsAtMultipleDrops) {
  // Two series diodes conduct at roughly double the single-diode drop.
  Circuit ckt;
  const auto in = ckt.node("in");
  const auto top = ckt.node("top");
  const auto mid = ckt.node("mid");
  ckt.add<VoltageSource>("V1", in, kGround, Waveform::dc(3.0));
  ckt.add<Resistor>("R1", in, top, 1e3);
  ckt.add<Diode>("D1", top, mid);
  ckt.add<Diode>("D2", mid, kGround);
  const auto dc = solve_dc(ckt);
  ASSERT_TRUE(dc.converged);
  const double v = node_voltage(ckt, dc, ckt, "top");
  EXPECT_GT(v, 1.0);
  EXPECT_LT(v, 1.6);
}

TEST(Dc, NmosSaturationCurrent) {
  MosParams p;
  p.vt0 = 0.5;
  p.kp = 170e-6;
  p.w = 1.8e-6;
  p.l = 0.18e-6;
  p.lambda = 0.0;
  p.gamma = 0.0;
  p.bulk_diodes = false;
  Circuit ckt;
  const auto vdd = ckt.node("vdd");
  const auto g = ckt.node("g");
  ckt.add<VoltageSource>("Vdd", vdd, kGround, Waveform::dc(1.8));
  ckt.add<VoltageSource>("Vg", g, kGround, Waveform::dc(1.0));
  auto& m = ckt.add<Mosfet>("M1", vdd, g, kGround, kGround, p);
  const auto dc = solve_dc(ckt);
  ASSERT_TRUE(dc.converged);
  // Analytic check via the exposed model equation.
  const double beta = p.beta();
  const double expected = 0.5 * beta * 0.5 * 0.5;
  EXPECT_NEAR(m.drain_current(1.8, 1.0, 0.0, 0.0), expected, expected * 1e-9);
}

TEST(Dc, NmosTriodeMatchesModel) {
  MosParams p;
  p.vt0 = 0.5;
  p.lambda = 0.0;
  p.gamma = 0.0;
  p.bulk_diodes = false;
  Circuit ckt;
  const auto d = ckt.node("d");
  const auto g = ckt.node("g");
  ckt.add<VoltageSource>("Vg", g, kGround, Waveform::dc(1.8));
  ckt.add<CurrentSource>("I1", kGround, d, Waveform::dc(50e-6));
  auto& m = ckt.add<Mosfet>("M1", d, g, kGround, kGround, p);
  const auto dc = solve_dc(ckt);
  ASSERT_TRUE(dc.converged);
  const double vd = dc.x[static_cast<std::size_t>(ckt.find_node("d"))];
  // The MOSFET must sink exactly the injected 50 uA.
  EXPECT_NEAR(m.drain_current(vd, 1.8, 0.0, 0.0), 50e-6, 1e-8);
  EXPECT_GT(vd, 0.0);
  EXPECT_LT(vd, 0.5);  // deep triode for this drive
}

TEST(Dc, PmosMirrorsNmos) {
  MosParams p;
  p.type = MosType::kPmos;
  p.vt0 = 0.5;
  p.lambda = 0.0;
  p.gamma = 0.0;
  p.bulk_diodes = false;
  Circuit ckt;
  const auto vdd = ckt.node("vdd");
  const auto d = ckt.node("d");
  ckt.add<VoltageSource>("Vdd", vdd, kGround, Waveform::dc(1.8));
  // Gate at 0.8 V: |vgs| = 1.0 V, overdrive 0.5 V.
  ckt.add<VoltageSource>("Vg", ckt.node("g"), kGround, Waveform::dc(0.8));
  auto& m = ckt.add<Mosfet>("M1", d, ckt.find_node("g"), vdd, vdd, p);
  ckt.add<Resistor>("RL", d, kGround, 10e3);
  const auto dc = solve_dc(ckt);
  ASSERT_TRUE(dc.converged);
  const double vd = dc.x[static_cast<std::size_t>(ckt.find_node("d"))];
  // The PMOS sources current into RL; KCL ties the load current to the
  // model equation at the converged drain voltage.
  EXPECT_GT(vd, 0.5);
  EXPECT_LT(vd, 1.8);
  EXPECT_NEAR(vd / 10e3, -m.drain_current(vd, 0.8, 1.8, 1.8), 1e-7);
}

TEST(Dc, SmoothSwitchOnOff) {
  SwitchParams sp;
  sp.r_on = 10.0;
  sp.r_off = 1e9;
  sp.v_on = 1.0;
  sp.v_off = 0.2;
  Circuit ckt;
  const auto in = ckt.node("in");
  const auto out = ckt.node("out");
  const auto c = ckt.node("c");
  ckt.add<VoltageSource>("V1", in, kGround, Waveform::dc(1.0));
  auto& vc = ckt.add<VoltageSource>("Vc", c, kGround, Waveform::dc(1.8));
  ckt.add<SmoothSwitch>("S1", in, out, c, kGround, sp);
  ckt.add<Resistor>("RL", out, kGround, 1e3);
  {
    const auto dc = solve_dc(ckt);
    ASSERT_TRUE(dc.converged);
    // On: divider 10 / 1010.
    EXPECT_NEAR(dc.x[static_cast<std::size_t>(out)], 1e3 / 1010.0, 1e-4);
  }
  vc.set_waveform(Waveform::dc(0.0));
  {
    const auto dc = solve_dc(ckt);
    ASSERT_TRUE(dc.converged);
    EXPECT_LT(dc.x[static_cast<std::size_t>(out)], 1e-3);
  }
}

TEST(Dc, OpAmpFollower) {
  Circuit ckt;
  const auto in = ckt.node("in");
  const auto out = ckt.node("out");
  ckt.add<VoltageSource>("V1", in, kGround, Waveform::dc(0.9));
  OpAmpParams op;
  op.v_out_min = 0.0;
  op.v_out_max = 1.8;
  ckt.add<OpAmp>("U1", out, in, out, op);
  ckt.add<Resistor>("RL", out, kGround, 10e3);
  const auto dc = solve_dc(ckt);
  ASSERT_TRUE(dc.converged);
  EXPECT_NEAR(dc.x[static_cast<std::size_t>(out)], 0.9, 1e-3);
}

TEST(Dc, OpAmpSaturatesAtRails) {
  Circuit ckt;
  const auto in = ckt.node("in");
  const auto out = ckt.node("out");
  ckt.add<VoltageSource>("V1", in, kGround, Waveform::dc(0.5));
  OpAmpParams op;
  op.v_out_min = 0.0;
  op.v_out_max = 1.8;
  // Comparator configuration: inn grounded, large positive input.
  ckt.add<OpAmp>("U1", out, in, kGround, op);
  ckt.add<Resistor>("RL", out, kGround, 10e3);
  const auto dc = solve_dc(ckt);
  ASSERT_TRUE(dc.converged);
  EXPECT_NEAR(dc.x[static_cast<std::size_t>(out)], 1.8, 1e-3);
}

TEST(Dc, DuplicateDeviceNameRejected) {
  Circuit ckt;
  ckt.add<Resistor>("R1", ckt.node("a"), kGround, 1.0);
  EXPECT_THROW(ckt.add<Resistor>("R1", ckt.node("b"), kGround, 1.0),
               std::invalid_argument);
}

TEST(Dc, InvalidComponentValuesRejected) {
  Circuit ckt;
  EXPECT_THROW(ckt.add<Resistor>("R", ckt.node("a"), kGround, 0.0), std::invalid_argument);
  EXPECT_THROW(ckt.add<Capacitor>("C", ckt.node("a"), kGround, -1e-9),
               std::invalid_argument);
  EXPECT_THROW(ckt.add<Inductor>("L", ckt.node("a"), kGround, 0.0), std::invalid_argument);
  EXPECT_THROW(ckt.add<CoupledInductors>("K", ckt.node("a"), kGround, ckt.node("b"),
                                         kGround, 1e-6, 1e-6, 1.5),
               std::invalid_argument);
}

}  // namespace
