// Tests for the extension features: Zener breakdown, power-on reset,
// adaptive (LTE) time stepping, and the Monte-Carlo tolerance analysis.
#include <gtest/gtest.h>

#include <cmath>

#include "src/core/tolerance.hpp"
#include "src/pm/por.hpp"
#include "src/spice/devices_nonlinear.hpp"
#include "src/spice/devices_passive.hpp"
#include "src/spice/devices_sources.hpp"
#include "src/spice/engine.hpp"

namespace {

using namespace ironic;
using namespace ironic::spice;

// ------------------------------------------------------------------- Zener

TEST(Zener, ConductsBeyondBreakdown) {
  DiodeParams zp;
  zp.breakdown_voltage = 3.0;
  Circuit ckt;
  const auto in = ckt.node("in");
  const auto k = ckt.node("k");
  ckt.add<VoltageSource>("V1", in, kGround, Waveform::dc(-5.0));
  ckt.add<Resistor>("R1", in, k, 1e3);
  // Reverse-biased: anode at the driven node.
  ckt.add<Diode>("Dz", k, kGround, zp);
  const auto dc = solve_dc(ckt);
  ASSERT_TRUE(dc.converged);
  // The Zener pins its terminal near -3 V; the rest drops across R.
  EXPECT_NEAR(dc.x[static_cast<std::size_t>(k)], -3.1, 0.25);
}

TEST(Zener, BlocksInsideBreakdown) {
  DiodeParams zp;
  zp.breakdown_voltage = 3.0;
  Circuit ckt;
  const auto in = ckt.node("in");
  const auto k = ckt.node("k");
  ckt.add<VoltageSource>("V1", in, kGround, Waveform::dc(-2.0));
  ckt.add<Resistor>("R1", in, k, 1e3);
  ckt.add<Diode>("Dz", k, kGround, zp);
  const auto dc = solve_dc(ckt);
  ASSERT_TRUE(dc.converged);
  EXPECT_LT(dc.x[static_cast<std::size_t>(k)], -1.95);  // essentially open
}

TEST(Zener, ForwardBehaviourUnchanged) {
  DiodeParams zp;
  zp.breakdown_voltage = 3.0;
  Diode d{"D", 0, 1, zp};
  Diode plain{"Dp", 0, 1, DiodeParams{}};
  EXPECT_NEAR(d.current(0.6), plain.current(0.6), plain.current(0.6) * 1e-6);
}

TEST(Zener, SingleZenerReplacesClampChain) {
  // Design alternative to the paper's 4-diode clamp: one 3 V Zener from
  // Vo to ground caps the output the same way.
  Circuit ckt;
  const auto src = ckt.node("src");
  const auto vi = ckt.node("vi");
  const auto vo = ckt.node("vo");
  ckt.add<VoltageSource>("Vs", src, kGround, Waveform::sine(6.0, 5e6));
  ckt.add<Resistor>("Rs", src, vi, 50.0);
  DiodeParams rect_dp;
  rect_dp.saturation_current = 1e-16;
  ckt.add<Diode>("Dr", vi, vo, rect_dp);
  ckt.add<Capacitor>("Co", vo, kGround, 10e-9);
  DiodeParams zp;
  zp.breakdown_voltage = 3.0;
  ckt.add<Diode>("Dz", kGround, vo, zp);  // cathode at Vo: clamps Vo <= ~3 V
  TransientOptions opts;
  opts.t_stop = 30e-6;
  opts.dt_max = 5e-9;
  const auto res = run_transient(ckt, opts);
  EXPECT_LT(res.max_between("v(vo)", 0.0, 30e-6), 3.4);
  EXPECT_GT(res.mean_between("v(vo)", 25e-6, 30e-6), 2.6);
}

// --------------------------------------------------------------------- POR

spice::TransientResult ramp_rail(double t_ramp, double dip_at = -1.0,
                                 double dip_level = 1.5) {
  Circuit ckt;
  const auto rail = ckt.node("rail");
  std::vector<double> ts{0.0, t_ramp};
  std::vector<double> vs{0.0, 2.75};
  if (dip_at > 0.0) {
    ts.insert(ts.end(), {dip_at, dip_at + 5e-6, dip_at + 30e-6, dip_at + 35e-6});
    vs.insert(vs.end(), {2.75, dip_level, dip_level, 2.75});
  }
  ckt.add<VoltageSource>("Vr", rail, kGround, Waveform::pwl(ts, vs));
  ckt.add<Resistor>("R1", rail, kGround, 1e6);
  TransientOptions opts;
  opts.t_stop = (dip_at > 0.0 ? dip_at + 60e-6 : t_ramp * 2.0);
  opts.dt_max = 0.5e-6;
  return run_transient(ckt, opts);
}

TEST(Por, ReleasesAfterQualificationDelay) {
  const auto trace = ramp_rail(100e-6);
  pm::PorModel por;
  double t = 0.0;
  ASSERT_TRUE(por.release_time(trace, "v(rail)", t));
  // Rail crosses 2.2 V at 80 us; release after the 20 us delay.
  EXPECT_NEAR(t, 80e-6 + por.spec().delay, 5e-6);
}

TEST(Por, NeverReleasesOnStarvedRail) {
  Circuit ckt;
  const auto rail = ckt.node("rail");
  ckt.add<VoltageSource>("Vr", rail, kGround, Waveform::dc(1.8));
  ckt.add<Resistor>("R1", rail, kGround, 1e6);
  TransientOptions opts;
  opts.t_stop = 200e-6;
  opts.dt_max = 1e-6;
  const auto trace = run_transient(ckt, opts);
  pm::PorModel por;
  double t = 0.0;
  EXPECT_FALSE(por.release_time(trace, "v(rail)", t));
}

TEST(Por, DetectsBrownout) {
  pm::PorModel por;
  // Dip to 1.5 V (below the 1.9 V assert threshold): brown-out.
  EXPECT_TRUE(por.brownout_after_release(ramp_rail(100e-6, 200e-6, 1.5), "v(rail)"));
  // Dip only to 2.0 V (inside hysteresis): ride-through.
  EXPECT_FALSE(por.brownout_after_release(ramp_rail(100e-6, 200e-6, 2.0), "v(rail)"));
}

TEST(Por, CircuitMacroReleasesHighAfterRailSettles) {
  Circuit ckt;
  const auto rail = ckt.node("rail");
  ckt.add<VoltageSource>("Vr", rail, kGround,
                         Waveform::pwl({0.0, 100e-6}, {0.0, 2.75}));
  const auto por = pm::build_por(ckt, "por", rail);
  TransientOptions opts;
  opts.t_stop = 300e-6;
  opts.dt_max = 0.5e-6;
  const auto res = run_transient(ckt, opts);
  // Held low early, released high once the rail qualifies.
  EXPECT_LT(res.value_at("v(" + por.reset_n_name + ")", 40e-6), 0.4);
  EXPECT_GT(res.value_at("v(" + por.reset_n_name + ")", 280e-6), 1.4);
}

TEST(Por, SpecValidation) {
  pm::PorSpec bad;
  bad.assert_threshold = bad.release_threshold + 0.1;
  EXPECT_THROW(pm::PorModel{bad}, std::invalid_argument);
  Circuit ckt;
  EXPECT_THROW(pm::build_por(ckt, "p", ckt.node("r"), bad), std::invalid_argument);
}

// --------------------------------------------------------- adaptive stepping

TEST(AdaptiveStep, ResolvesFastTransientUnderCoarseNominalStep) {
  // RC with tau = 1 us driven by a step, nominal dt = 5 us: the fixed-
  // step run cannot see the exponential at all; the LTE controller must
  // refine automatically.
  const auto run_case = [](bool adaptive) {
    Circuit ckt;
    const auto in = ckt.node("in");
    const auto out = ckt.node("out");
    ckt.add<VoltageSource>("V1", in, kGround,
                           Waveform::pulse(0.0, 1.0, 10e-6, 1e-9, 1e-9, 1.0, 0.0));
    ckt.add<Resistor>("R1", in, out, 1e3);
    ckt.add<Capacitor>("C1", out, kGround, 1e-9);
    TransientOptions opts;
    opts.t_stop = 20e-6;
    opts.dt_max = 5e-6;
    opts.adaptive = adaptive;
    opts.lte_tol = 1e-3;
    TransientStats stats;
    auto res = run_transient(ckt, opts, &stats);
    return std::make_pair(res.value_at("v(out)", 11e-6), stats.accepted_steps);
  };
  const auto [v_adaptive, steps_adaptive] = run_case(true);
  const double expected = 1.0 - std::exp(-1.0);
  EXPECT_NEAR(v_adaptive, expected, 0.02);
  // Adaptivity spent extra steps only around the edge.
  EXPECT_GT(steps_adaptive, 10u);
  EXPECT_LT(steps_adaptive, 4000u);
}

TEST(AdaptiveStep, NoWorseOnSmoothProblems) {
  Circuit ckt;
  const auto in = ckt.node("in");
  ckt.add<VoltageSource>("V1", in, kGround, Waveform::sine(1.0, 1e3));
  ckt.add<Resistor>("R1", in, kGround, 1e3);
  TransientOptions opts;
  opts.t_stop = 2e-3;
  opts.dt_max = 10e-6;
  opts.adaptive = true;
  opts.lte_tol = 1e-2;
  TransientStats stats;
  const auto res = run_transient(ckt, opts, &stats);
  EXPECT_NEAR(res.value_at("v(in)", 0.25e-3), 1.0, 1e-3);
  EXPECT_LE(stats.accepted_steps, 2u * 200u + 16u);
}

// ----------------------------------------------------- tolerance Monte Carlo

TEST(Tolerance, NominalYieldIsHigh) {
  core::ToleranceSpec spec;
  spec.runs = 6;  // keep the unit test quick; the bench runs 20
  const auto result = core::run_tolerance_analysis(spec);
  EXPECT_EQ(result.runs, 6);
  EXPECT_EQ(static_cast<int>(result.details.size()), 6);
  // Nominal tolerances: the design should pass most draws.
  EXPECT_GE(result.pass_regulation, 5);
  EXPECT_GE(result.pass_downlink, 5);
  EXPECT_GT(result.vo_min_worst, 2.0);
}

TEST(Tolerance, WideSpreadsHurtYield) {
  core::ToleranceSpec tight;
  tight.runs = 5;
  core::ToleranceSpec wide = tight;
  wide.drive_tol = 0.30;       // gross placement error
  wide.threshold_tol = 0.30;
  const auto a = core::run_tolerance_analysis(tight);
  const auto b = core::run_tolerance_analysis(wide);
  EXPECT_LE(b.pass_all, a.pass_all);
}

TEST(Tolerance, DeterministicForSeed) {
  core::ToleranceSpec spec;
  spec.runs = 3;
  const auto a = core::run_tolerance_analysis(spec);
  const auto b = core::run_tolerance_analysis(spec);
  EXPECT_EQ(a.pass_all, b.pass_all);
  EXPECT_DOUBLE_EQ(a.vo_min_worst, b.vo_min_worst);
}

TEST(Tolerance, RejectsBadSpec) {
  core::ToleranceSpec spec;
  spec.runs = 0;
  EXPECT_THROW(core::run_tolerance_analysis(spec), std::invalid_argument);
}

}  // namespace
