#include <gtest/gtest.h>

#include <cmath>

#include "src/comms/ask.hpp"
#include "src/comms/bitstream.hpp"
#include "src/comms/lsk.hpp"
#include "src/util/constants.hpp"
#include "src/util/rng.hpp"

namespace {

using namespace ironic::comms;

// --------------------------------------------------------------- bitstream

TEST(Bitstream, StringRoundTrip) {
  const auto bits = bits_from_string("1011001");
  EXPECT_EQ(bits.size(), 7u);
  EXPECT_EQ(bits_to_string(bits), "1011001");
  EXPECT_THROW(bits_from_string("10x"), std::invalid_argument);
}

TEST(Bitstream, ByteRoundTrip) {
  const std::vector<std::uint8_t> bytes{0xA5, 0x3C, 0x00, 0xFF};
  const auto bits = bits_from_bytes(bytes);
  EXPECT_EQ(bits.size(), 32u);
  EXPECT_EQ(bits_to_string(bits).substr(0, 8), "10100101");
  const auto back = bytes_from_bits(bits);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, bytes);
}

TEST(Bitstream, PartialByteRejected) {
  EXPECT_FALSE(bytes_from_bits(bits_from_string("1010101")).has_value());
}

TEST(Bitstream, HammingAndBer) {
  const auto a = bits_from_string("10110");
  const auto b = bits_from_string("10011");
  EXPECT_EQ(hamming_distance(a, b), 2u);
  EXPECT_DOUBLE_EQ(bit_error_rate(a, b), 0.4);
  EXPECT_DOUBLE_EQ(bit_error_rate({}, {}), 0.0);
  EXPECT_THROW(hamming_distance(a, bits_from_string("1")), std::invalid_argument);
}

TEST(Bitstream, Crc8KnownVector) {
  // CRC-8/ATM of "123456789" is 0xF4.
  const std::vector<std::uint8_t> msg{'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc8(msg), 0xF4);
}

TEST(Bitstream, FrameRoundTrip) {
  Frame f;
  f.payload = {0x01, 0x42, 0x99};
  const auto bits = encode_frame(f);
  const auto decoded = decode_frame(bits);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->payload, f.payload);
}

TEST(Bitstream, FrameDetectsCorruption) {
  Frame f;
  f.payload = {0x10, 0x20};
  auto bits = encode_frame(f);
  bits[4 * 8 + 3] = !bits[4 * 8 + 3];  // flip a payload bit
  EXPECT_FALSE(decode_frame(bits).has_value());
}

TEST(Bitstream, FrameRejectsBadSyncAndLength) {
  Frame f;
  f.payload = {0x55};
  auto bits = encode_frame(f);
  bits[8] = !bits[8];  // corrupt the sync byte
  EXPECT_FALSE(decode_frame(bits).has_value());
  EXPECT_FALSE(decode_frame(bits_from_string("1010")).has_value());
  Frame big;
  big.payload.assign(256, 0);
  EXPECT_THROW(encode_frame(big), std::invalid_argument);
}

TEST(Bitstream, EmptyPayloadFrame) {
  const auto decoded = decode_frame(encode_frame(Frame{}));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->payload.empty());
}

// --------------------------------------------------------------------- ask

TEST(Ask, ModulationDepthFromDivider) {
  // R8/(R7+R8) scaling: equal resistors halve the carrier.
  EXPECT_NEAR(modulation_depth_from_divider(1e3, 1e3), 0.5, 1e-12);
  EXPECT_NEAR(modulation_depth_from_divider(1e3, 9e3), 0.1, 1e-12);
  EXPECT_THROW(modulation_depth_from_divider(0.0, 1.0), std::invalid_argument);
}

TEST(Ask, EnvelopeLevels) {
  AskSpec spec;
  spec.amplitude_high = 2.0;
  spec.modulation_depth = 0.4;
  EXPECT_NEAR(spec.amplitude_low(), 1.2, 1e-12);

  const auto env = ask_envelope(bits_from_string("101"), spec, 100e-6, 400e-6);
  // Unmodulated before the burst.
  EXPECT_NEAR(env(50e-6), 2.0, 1e-9);
  // Mid-bit values: '1' high, '0' low.
  EXPECT_NEAR(env(105e-6), 2.0, 1e-9);
  EXPECT_NEAR(env(115e-6), 1.2, 1e-9);
  EXPECT_NEAR(env(125e-6), 2.0, 1e-9);
  // Back to the carrier after the burst.
  EXPECT_NEAR(env(300e-6), 2.0, 1e-9);
}

TEST(Ask, EnvelopeRejectsSlowEdges) {
  AskSpec spec;
  spec.edge_time = 6e-6;  // > half a 10 us bit
  EXPECT_THROW(ask_envelope(bits_from_string("10"), spec, 0.0, 1e-3),
               std::invalid_argument);
}

TEST(Ask, WaveformCarriesEnvelope) {
  AskSpec spec;
  const auto w = ask_waveform(bits_from_string("10"), spec, 0.0, 50e-6);
  // Peak near a '1' carrier maximum: amplitude_high.
  double peak = 0.0;
  for (double t = 2e-6; t < 8e-6; t += 1e-8) peak = std::max(peak, std::abs(w(t)));
  EXPECT_NEAR(peak, spec.amplitude_high, 0.01);
  double peak0 = 0.0;
  for (double t = 12e-6; t < 18e-6; t += 1e-8) peak0 = std::max(peak0, std::abs(w(t)));
  EXPECT_NEAR(peak0, spec.amplitude_low(), 0.01);
}

std::pair<std::vector<double>, std::vector<double>> sampled_carrier(
    const ironic::spice::Waveform& w, double t_stop, double dt) {
  std::vector<double> ts, vs;
  for (double t = 0.0; t <= t_stop; t += dt) {
    ts.push_back(t);
    vs.push_back(w(t));
  }
  return {ts, vs};
}

TEST(Ask, CleanLoopbackRecoversBits) {
  AskSpec spec;
  const auto bits = bits_from_string("110100101101011001");  // paper: 18 bits
  const double t0 = 20e-6;
  const auto w = ask_waveform(bits, spec, t0, 250e-6);
  const auto [ts, vs] = sampled_carrier(w, 250e-6, 10e-9);
  const auto rx = demodulate_ask(ts, vs, spec, t0, bits.size());
  EXPECT_EQ(bits_to_string(rx), bits_to_string(bits));
}

TEST(Ask, LoopbackSurvivesModerateNoise) {
  AskSpec spec;
  ironic::util::Rng rng(77);
  const auto bits = random_bits(40, rng);
  const double t0 = 10e-6;
  const double t_stop = t0 + 40.0 * spec.bit_period() + 20e-6;
  const auto w = ask_waveform(bits, spec, t0, t_stop);
  auto [ts, vs] = sampled_carrier(w, t_stop, 10e-9);
  for (auto& v : vs) v += rng.normal(0.0, 0.05);  // SNR ~ 20 dB on amplitude
  const auto rx = demodulate_ask(ts, vs, spec, t0, bits.size());
  EXPECT_EQ(bit_error_rate(bits, rx), 0.0);
}

TEST(Ask, HeavyNoiseCausesErrors) {
  AskSpec spec;
  spec.modulation_depth = 0.15;  // shallow modulation
  ironic::util::Rng rng(99);
  const auto bits = random_bits(60, rng);
  const double t0 = 10e-6;
  const double t_stop = t0 + 60.0 * spec.bit_period() + 20e-6;
  const auto w = ask_waveform(bits, spec, t0, t_stop);
  auto [ts, vs] = sampled_carrier(w, t_stop, 20e-9);
  for (auto& v : vs) v += rng.normal(0.0, 0.5);
  const auto rx = demodulate_ask(ts, vs, spec, t0, bits.size());
  EXPECT_GT(bit_error_rate(bits, rx), 0.0);
}

TEST(Ask, EnvelopeDetectorTracksAmplitude) {
  AskSpec spec;
  const auto w = ask_waveform(bits_from_string("1"), spec, 0.0, 20e-6);
  const auto [ts, vs] = sampled_carrier(w, 20e-6, 5e-9);
  const auto env = envelope_detect(ts, vs, 4.0 / spec.carrier_frequency);
  // After settling, the envelope hugs the carrier amplitude.
  double late = 0.0;
  for (std::size_t i = ts.size() * 3 / 4; i < ts.size(); ++i) late = std::max(late, env[i]);
  EXPECT_NEAR(late, 1.0, 0.05);
  EXPECT_THROW(envelope_detect(ts, vs, -1.0), std::invalid_argument);
}

// --------------------------------------------------------------------- lsk

TEST(Lsk, GateWaveformActiveOnZeros) {
  LskSpec spec;
  const auto gate = lsk_gate_waveform(bits_from_string("010"), spec, 100e-6);
  const double tb = spec.bit_period();
  // '0' bits short the input: gate high during bits 0 and 2.
  EXPECT_NEAR(gate(100e-6 + 0.5 * tb), spec.v_on, 1e-9);
  EXPECT_NEAR(gate(100e-6 + 1.5 * tb), spec.v_off, 1e-9);
  EXPECT_NEAR(gate(100e-6 + 2.5 * tb), spec.v_on, 1e-9);
  // Idle (no transmission) -> released.
  EXPECT_NEAR(gate(50e-6), spec.v_off, 1e-9);
  EXPECT_NEAR(gate(100e-6 + 4.0 * tb), spec.v_off, 1e-9);
}

TEST(Lsk, M2GateIsComplementary) {
  LskSpec spec;
  const auto m1 = lsk_gate_waveform(bits_from_string("01"), spec, 0.0);
  const auto m2 = lsk_m2_gate_waveform(bits_from_string("01"), spec, 0.0);
  const double tb = spec.bit_period();
  // While M1 shorts (bit '0'), M2 must be open (low).
  EXPECT_NEAR(m1(0.5 * tb), spec.v_on, 1e-9);
  EXPECT_NEAR(m2(0.5 * tb), spec.v_off, 1e-9);
  EXPECT_NEAR(m1(1.5 * tb), spec.v_off, 1e-9);
  EXPECT_NEAR(m2(1.5 * tb), spec.v_on, 1e-9);
}

TEST(Lsk, DetectorRecoversBitsFromSyntheticCurrent) {
  LskSpec spec;
  const auto bits = bits_from_string("1011001010");
  const double tb = spec.bit_period();
  const double t0 = 50e-6;
  std::vector<double> ts, is;
  ironic::util::Rng rng(5);
  for (double t = 0.0; t < t0 + 11.0 * tb; t += 0.2e-6) {
    const double rel = (t - t0) / tb;
    double current = 80e-3;  // idle supply current
    if (rel >= 0.0 && rel < 10.0) {
      const auto bit = static_cast<std::size_t>(rel);
      current = bits[bit] ? 80e-3 : 45e-3;  // short -> lighter load
    }
    ts.push_back(t);
    is.push_back(current + rng.normal(0.0, 2e-3));
  }
  const auto rx = detect_lsk(ts, is, spec, t0, bits.size());
  EXPECT_EQ(bits_to_string(rx), bits_to_string(bits));
}

TEST(Lsk, DetectorInvertFlipsPolarity) {
  LskSpec spec;
  const auto bits = bits_from_string("10");
  const double tb = spec.bit_period();
  std::vector<double> ts, is;
  for (double t = 0.0; t < 3.0 * tb; t += 0.2e-6) {
    const double rel = t / tb;
    const auto bit = static_cast<std::size_t>(std::min(rel, 1.9));
    ts.push_back(t);
    is.push_back(bits[bit] ? 10e-3 : 50e-3);  // opposite polarity
  }
  const auto rx = detect_lsk(ts, is, spec, 0.0, 2, /*invert=*/true);
  EXPECT_EQ(bits_to_string(rx), "10");
}

TEST(Lsk, DetectorValidatesWindow) {
  LskSpec spec;
  std::vector<double> ts{0.0, 1e-6};
  std::vector<double> is{1.0, 1.0};
  EXPECT_THROW(detect_lsk(ts, is, spec, 1.0, 4), std::invalid_argument);
}

TEST(Lsk, UplinkBudgetReproducesPaperRate) {
  // 10 samples x 1 us + 5 us threshold check -> 66.6 kbps, the paper's
  // published uplink rate (and why it is below the 100 kbps downlink).
  UplinkBudget budget;
  EXPECT_NEAR(achievable_uplink_rate(budget), 66.6e3, 0.2e3);
  EXPECT_LT(achievable_uplink_rate(budget), 100e3);
  EXPECT_THROW(achievable_uplink_rate({-1.0, 1e-6, 1}), std::invalid_argument);
}

}  // namespace
