#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "src/util/constants.hpp"
#include "src/util/interp.hpp"
#include "src/util/rng.hpp"
#include "src/util/stats.hpp"
#include "src/util/table.hpp"
#include "src/util/units.hpp"

namespace {

using namespace ironic;
using namespace ironic::units;

// ------------------------------------------------------------------- units

TEST(Units, MagnitudesComposeCorrectly) {
  EXPECT_DOUBLE_EQ(1.0_mV, 1e-3);
  EXPECT_DOUBLE_EQ(4.0_uA, 4e-6);
  EXPECT_DOUBLE_EQ(250.0_pA, 250e-12);
  EXPECT_DOUBLE_EQ(5.0_MHz, 5e6);
  EXPECT_DOUBLE_EQ(100.0_kbps, 100e3);
  EXPECT_DOUBLE_EQ(15.0_mW, 15e-3);
  EXPECT_DOUBLE_EQ(6.0_mm, 6e-3);
  EXPECT_DOUBLE_EQ(10.0_nF, 10e-9);
  EXPECT_DOUBLE_EQ(1.5_hr, 5400.0);
}

TEST(Units, EnergyUnits) {
  // 1 mAh at work: charge units (A s).
  EXPECT_DOUBLE_EQ(1.0_mAh, 3.6);
  EXPECT_DOUBLE_EQ(0.2_Wh, 720.0);
}

TEST(Constants, ThermalVoltageAtBodyTemperature) {
  const double vt = constants::thermal_voltage(constants::kBodyTemperature);
  EXPECT_NEAR(vt, 0.0267, 1e-3);
}

// --------------------------------------------------------------------- rng

TEST(Rng, DeterministicAcrossInstances) {
  util::Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  util::Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange) {
  util::Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformBoundsRespected) {
  util::Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, NormalMomentsMatch) {
  util::Rng rng(11);
  std::vector<double> xs(200000);
  for (auto& x : xs) x = rng.normal();
  EXPECT_NEAR(util::mean(xs), 0.0, 0.02);
  EXPECT_NEAR(util::stddev(xs), 1.0, 0.02);
}

TEST(Rng, NormalWithParameters) {
  util::Rng rng(13);
  std::vector<double> xs(100000);
  for (auto& x : xs) x = rng.normal(2.0, 0.5);
  EXPECT_NEAR(util::mean(xs), 2.0, 0.02);
  EXPECT_NEAR(util::stddev(xs), 0.5, 0.02);
}

TEST(Rng, BernoulliProbability) {
  util::Rng rng(17);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, BelowIsUnbiased) {
  util::Rng rng(19);
  std::vector<int> counts(7, 0);
  const int n = 70000;
  for (int i = 0; i < n; ++i) ++counts[rng.below(7)];
  for (int c : counts) EXPECT_NEAR(c, n / 7, 600);
}

TEST(Rng, BitsLengthAndBalance) {
  util::Rng rng(23);
  const auto bits = rng.bits(10000);
  ASSERT_EQ(bits.size(), 10000u);
  int ones = 0;
  for (bool b : bits) ones += b;
  EXPECT_NEAR(ones, 5000, 300);
}

// ------------------------------------------------------------------- stats

TEST(Stats, MeanVarianceStddev) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(util::mean(xs), 2.5);
  EXPECT_DOUBLE_EQ(util::variance(xs), 1.25);
  EXPECT_DOUBLE_EQ(util::stddev(xs), std::sqrt(1.25));
}

TEST(Stats, RmsOfSine) {
  std::vector<double> xs(10000);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i] = std::sin(2.0 * constants::kPi * static_cast<double>(i) / 100.0);
  }
  EXPECT_NEAR(util::rms(xs), 1.0 / std::sqrt(2.0), 1e-3);
}

TEST(Stats, MinMaxPeakToPeak) {
  const std::vector<double> xs{-1.0, 4.0, 2.0, -3.0};
  EXPECT_DOUBLE_EQ(util::min_value(xs), -3.0);
  EXPECT_DOUBLE_EQ(util::max_value(xs), 4.0);
  EXPECT_DOUBLE_EQ(util::peak_to_peak(xs), 7.0);
}

TEST(Stats, LinearFitExactLine) {
  const std::vector<double> xs{0.0, 1.0, 2.0, 3.0};
  const std::vector<double> ys{1.0, 3.0, 5.0, 7.0};
  const auto fit = util::linear_fit(xs, ys);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(Stats, LinearFitRejectsDegenerate) {
  const std::vector<double> xs{1.0, 1.0};
  const std::vector<double> ys{0.0, 1.0};
  EXPECT_THROW(util::linear_fit(xs, ys), std::invalid_argument);
}

TEST(Stats, IntegrateUniformRamp) {
  std::vector<double> ys(101);
  for (std::size_t i = 0; i < ys.size(); ++i) ys[i] = static_cast<double>(i) * 0.01;
  // Integral of y = t over [0, 1] is 0.5.
  EXPECT_NEAR(util::integrate_uniform(ys, 0.01), 0.5, 1e-9);
}

TEST(Stats, RunningStatsMatchesBatch) {
  util::Rng rng(29);
  util::RunningStats rs;
  std::vector<double> xs(5000);
  for (auto& x : xs) {
    x = rng.normal(3.0, 2.0);
    rs.add(x);
  }
  EXPECT_EQ(rs.count(), xs.size());
  EXPECT_NEAR(rs.mean(), util::mean(xs), 1e-9);
  EXPECT_NEAR(rs.variance(), util::variance(xs), 1e-6);
  EXPECT_DOUBLE_EQ(rs.min(), util::min_value(xs));
  EXPECT_DOUBLE_EQ(rs.max(), util::max_value(xs));
}

// ------------------------------------------------------------------ interp

TEST(PiecewiseLinear, InterpolatesAndClamps) {
  util::PiecewiseLinear pwl({0.0, 1.0, 2.0}, {0.0, 10.0, 0.0});
  EXPECT_DOUBLE_EQ(pwl(0.5), 5.0);
  EXPECT_DOUBLE_EQ(pwl(1.5), 5.0);
  EXPECT_DOUBLE_EQ(pwl(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(pwl(3.0), 0.0);
}

TEST(PiecewiseLinear, RejectsUnsortedInput) {
  EXPECT_THROW(util::PiecewiseLinear({0.0, 0.0}, {1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(util::PiecewiseLinear({1.0, 0.0}, {1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(util::PiecewiseLinear({0.0}, {1.0, 2.0}), std::invalid_argument);
}

TEST(PiecewiseLinear, FirstCrossing) {
  util::PiecewiseLinear pwl({0.0, 1.0, 2.0}, {0.0, 10.0, 0.0});
  double x = 0.0;
  ASSERT_TRUE(pwl.first_crossing(5.0, x));
  EXPECT_DOUBLE_EQ(x, 0.5);
  ASSERT_FALSE(pwl.first_crossing(11.0, x));
}

// ------------------------------------------------------------------- table

TEST(Table, FormatSiPicksPrefix) {
  EXPECT_EQ(util::format_si(15e-3, "W"), "15 mW");
  EXPECT_EQ(util::format_si(5e6, "Hz"), "5 MHz");
  EXPECT_EQ(util::format_si(250e-12, "A"), "250 pA");
  EXPECT_EQ(util::format_si(1.8, "V"), "1.8 V");
}

TEST(Table, RendersAlignedRows) {
  util::Table t({"name", "value"});
  t.add_row({"alpha", util::Table::cell(1.5)});
  t.add_row({"b", util::Table::cell(true)});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("yes"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, CsvOutput) {
  util::Table t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, RejectsMismatchedRow) {
  util::Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

}  // namespace
