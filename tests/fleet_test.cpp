// Fleet service: checkpoint forking, the solo-parity contract, and the
// cohort statistics.
//
// The load-bearing guarantees:
//   - every session run inside a fleet is bit-identical to running that
//     session solo with the same seed (fork == private charge-up);
//   - the fleet fingerprint is invariant to the thread count and to
//     whether the charged checkpoint was shared;
//   - mutating one forked plant never perturbs siblings forked from the
//     same blob (copy-on-write isolation).
#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/exec/cancellation.hpp"
#include "src/fault/plant.hpp"
#include "src/fleet/checkpoint.hpp"
#include "src/fleet/fleet.hpp"
#include "src/fleet/session.hpp"
#include "src/fleet/supervisor.hpp"

namespace {

using namespace ironic;

// Small but real: every session runs actual rectifier transients, so
// keep the counts low and reuse one config across tests.
fleet::FleetConfig small_config() {
  fleet::FleetConfig config;
  config.sessions = 6;
  config.threads = 2;
  config.seed = 0x5eedf1ee7ull;
  config.exchanges = 2;
  return config;
}

TEST(Fleet, EverySessionBitIdenticalToSolo) {
  const auto config = small_config();
  const auto result = fleet::run_fleet(config);
  ASSERT_EQ(result.sessions.size(), config.sessions);
  // Shared capture: one charge-up for the whole fleet, every session
  // forked from it.
  EXPECT_EQ(result.charge_captures, 1u);
  EXPECT_EQ(result.checkpoint_forks, config.sessions);
  for (std::size_t i = 0; i < config.sessions; ++i) {
    const auto solo = fleet::run_solo_session(config, i);
    EXPECT_FALSE(solo.forked);
    EXPECT_GT(solo.charge_wall_seconds, 0.0);
    EXPECT_EQ(fleet::fingerprint_session(result.sessions[i]),
              fleet::fingerprint_session(solo))
        << "session " << i << " diverged from its solo run";
    // Fingerprint equality is the contract; spot-check the fields that
    // feed it so a fingerprint bug cannot mask a real divergence.
    EXPECT_EQ(result.sessions[i].completed, solo.completed);
    EXPECT_EQ(result.sessions[i].retries, solo.retries);
    EXPECT_EQ(result.sessions[i].restarts, solo.restarts);
    EXPECT_EQ(result.sessions[i].adc_codes, solo.adc_codes);
    EXPECT_EQ(result.sessions[i].recover_seconds, solo.recover_seconds);
  }
}

TEST(Fleet, FingerprintInvariantToThreadCount) {
  auto config = small_config();
  config.threads = 1;
  const auto serial = fleet::run_fleet(config);
  config.threads = 3;
  const auto pooled = fleet::run_fleet(config);
  EXPECT_EQ(serial.fingerprint, pooled.fingerprint);
  // The derived statistics ride on the same deterministic fields.
  ASSERT_EQ(serial.cohorts.size(), pooled.cohorts.size());
  for (std::size_t c = 0; c < serial.cohorts.size(); ++c) {
    EXPECT_EQ(serial.cohorts[c].lost, pooled.cohorts[c].lost);
    EXPECT_EQ(serial.cohorts[c].recovery_p95_s, pooled.cohorts[c].recovery_p95_s);
  }
}

TEST(Fleet, FingerprintInvariantToCheckpointSharing) {
  auto config = small_config();
  config.sessions = 3;
  const auto shared = fleet::run_fleet(config);
  config.share_checkpoint = false;
  const auto isolated = fleet::run_fleet(config);
  EXPECT_EQ(shared.fingerprint, isolated.fingerprint);
  EXPECT_EQ(shared.charge_captures, 1u);
  EXPECT_EQ(shared.checkpoint_forks, 3u);
  // Without sharing every session pays its own charge-up.
  EXPECT_EQ(isolated.charge_captures, 3u);
  EXPECT_EQ(isolated.checkpoint_forks, 0u);
}

TEST(Fleet, ForkedPlantMutationNeverPerturbsSiblings) {
  const fault::ChargeUpSpec spec;
  auto blob = std::make_shared<const spice::TransientCheckpoint>(
      fault::capture_charged_checkpoint(spec));

  fault::RectifierPlant a;
  fault::RectifierPlant b;
  a.fork_from(blob, spec.amplitude);
  b.fork_from(blob, spec.amplitude);
  EXPECT_TRUE(a.shares_base());
  EXPECT_EQ(a.committed(), blob.get());
  EXPECT_EQ(b.committed(), blob.get());

  // Drive plant A through measurements (including an amplitude change,
  // which restarts from the committed point and commits new state).
  const double a1 = a.measure(spec.amplitude);
  const double a2 = a.measure(spec.amplitude * 0.8);
  EXPECT_FALSE(a.shares_base());      // detached onto its private copy
  EXPECT_NE(a.committed(), blob.get());
  // B still references the shared blob, untouched by A's detach.
  EXPECT_TRUE(b.shares_base());
  EXPECT_EQ(b.committed(), blob.get());

  // B now measures the same sequence and must see exactly what A saw —
  // the shared blob cannot have been mutated by A's run.
  const double b1 = b.measure(spec.amplitude);
  const double b2 = b.measure(spec.amplitude * 0.8);
  EXPECT_EQ(a1, b1);
  EXPECT_EQ(a2, b2);

  // A fresh fork repeats it again, bit-for-bit.
  fault::RectifierPlant c;
  c.fork_from(blob, spec.amplitude);
  EXPECT_EQ(c.measure(spec.amplitude), a1);
  EXPECT_EQ(c.measure(spec.amplitude * 0.8), a2);
}

TEST(Fleet, CheckpointCacheCapturesOncePerSpec) {
  fleet::CheckpointCache cache;
  const auto first = cache.charged();
  const auto second = cache.charged();
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(cache.stats().captures, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);

  fault::ChargeUpSpec shorter;
  shorter.duration = 100e-6;
  const auto third = cache.charged(shorter);
  EXPECT_NE(third.get(), first.get());
  EXPECT_EQ(cache.stats().captures, 2u);
}

TEST(Fleet, CohortAssignmentRoundRobin) {
  auto config = small_config();
  config.sessions = 5;  // 3 cohorts -> 2/2/1 split
  const auto result = fleet::run_fleet(config);
  ASSERT_EQ(result.cohorts.size(), 3u);
  EXPECT_EQ(result.cohorts[0].sessions, 2u);
  EXPECT_EQ(result.cohorts[1].sessions, 2u);
  EXPECT_EQ(result.cohorts[2].sessions, 1u);
  long long exchanges = 0;
  long long lost = 0;
  for (const auto& cohort : result.cohorts) {
    exchanges += cohort.exchanges;
    lost += cohort.lost;
    if (cohort.exchanges > 0) {
      EXPECT_DOUBLE_EQ(cohort.lost_rate,
                       static_cast<double>(cohort.lost) /
                           static_cast<double>(cohort.exchanges));
    }
  }
  EXPECT_EQ(exchanges, result.total_exchanges);
  EXPECT_EQ(lost, result.lost_measurements);
  for (std::size_t i = 0; i < config.sessions; ++i) {
    EXPECT_EQ(result.sessions[i].cohort,
              config.cohorts[i % config.cohorts.size()].name);
  }
}

TEST(Fleet, ExactPercentileInterpolates) {
  const std::vector<double> sorted = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(fleet::exact_percentile(sorted, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(fleet::exact_percentile(sorted, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(fleet::exact_percentile(sorted, 50.0), 2.5);
  EXPECT_DOUBLE_EQ(fleet::exact_percentile(sorted, 25.0), 1.75);
  EXPECT_DOUBLE_EQ(fleet::exact_percentile({}, 50.0), 0.0);
  EXPECT_DOUBLE_EQ(fleet::exact_percentile({7.0}, 95.0), 7.0);
}

TEST(Fleet, SoakHorizonDrivesExchangeCount) {
  fleet::FleetConfig config;
  config.exchanges = 4;
  EXPECT_EQ(fleet::effective_exchanges(config), 4);
  config.soak_seconds = 1.0;  // cadence 0.25 s -> 4 exchanges
  EXPECT_EQ(fleet::effective_exchanges(config), 4);
  config.soak_seconds = 1.1;
  EXPECT_EQ(fleet::effective_exchanges(config), 5);
}

TEST(Fleet, InvalidConfigsThrow) {
  fleet::FleetConfig config;
  config.sessions = 0;
  EXPECT_THROW(fleet::run_fleet(config), std::invalid_argument);
  config = {};
  config.cohorts.clear();
  EXPECT_THROW(fleet::run_fleet(config), std::invalid_argument);
  config = {};
  config.exchanges = 0;
  EXPECT_THROW(fleet::run_fleet(config), std::invalid_argument);
}

// ------------------------------------------------------------- supervision

// Chaos config used across the supervision tests: with this seed the
// 0.2 rate dooms exactly sessions {3, 4, 5} — a deterministic half/half
// split of the 6-session fleet.
fleet::FleetConfig chaos_config() {
  auto config = small_config();
  config.supervise.chaos.throw_rate = 0.2;
  return config;
}

std::size_t doomed_count(const fleet::FleetConfig& config) {
  std::size_t doomed = 0;
  for (std::size_t i = 0; i < config.sessions; ++i) {
    const auto plan =
        fleet::chaos_plan(config.supervise.chaos, config.seed, i,
                          fleet::effective_exchanges(config));
    if (plan.action != fleet::ChaosAction::kNone) ++doomed;
  }
  return doomed;
}

TEST(FleetSupervisor, ClassifiesKnownFailureMessages) {
  using fleet::FailureCode;
  EXPECT_EQ(fleet::classify_failure(std::runtime_error(
                "linalg: matrix is singular at row 3")),
            FailureCode::kSolverSingular);
  EXPECT_EQ(fleet::classify_failure(std::runtime_error(
                "run_transient: DC operating point failed to converge")),
            FailureCode::kNewtonNonconverge);
  EXPECT_EQ(fleet::classify_failure(std::runtime_error(
                "run_transient: Newton failed below minimum step")),
            FailureCode::kNewtonNonconverge);
  EXPECT_EQ(fleet::classify_failure(
                std::runtime_error("transactor: retry budget exhausted")),
            FailureCode::kCommsExhausted);
  EXPECT_EQ(fleet::classify_failure(std::invalid_argument("bad spec")),
            FailureCode::kValidation);
  EXPECT_EQ(fleet::classify_failure(exec::TaskCancelled()),
            FailureCode::kDeadline);
  EXPECT_EQ(fleet::classify_failure(
                fleet::SessionFailure(FailureCode::kChaos, "injected")),
            FailureCode::kChaos);
  EXPECT_EQ(fleet::classify_failure(std::runtime_error("meteor strike")),
            FailureCode::kUnknown);
  // The code <-> name mapping is a wire format: it must round-trip.
  for (int i = 0; i < fleet::kFailureCodeCount; ++i) {
    const auto code = static_cast<FailureCode>(i);
    EXPECT_EQ(fleet::failure_code_from_name(fleet::failure_code_name(code)),
              code);
  }
}

TEST(FleetSupervisor, ChaosPlanIsDeterministic) {
  const auto config = chaos_config();
  const std::size_t doomed = doomed_count(config);
  // The 0.5 rate must produce a mix — all-doomed or all-spared would
  // make the containment tests vacuous.
  ASSERT_GT(doomed, 0u);
  ASSERT_LT(doomed, config.sessions);
  for (std::size_t i = 0; i < config.sessions; ++i) {
    const auto a = fleet::chaos_plan(config.supervise.chaos, config.seed, i,
                                     fleet::effective_exchanges(config));
    const auto b = fleet::chaos_plan(config.supervise.chaos, config.seed, i,
                                     fleet::effective_exchanges(config));
    EXPECT_EQ(a.action, b.action);
    EXPECT_EQ(a.at_exchange, b.at_exchange);
    if (a.action != fleet::ChaosAction::kNone) {
      EXPECT_GE(a.at_exchange, 0);
      EXPECT_LT(a.at_exchange, fleet::effective_exchanges(config));
    }
  }
}

TEST(FleetSupervisor, ChaosContainedAndHealthySiblingsBitIdentical) {
  // Persistent chaos (more doomed attempts than retries): the doomed
  // sessions quarantine, the fleet completes, and every spared session
  // is bit-identical to the same session in a no-chaos run.
  auto config = chaos_config();
  config.supervise.chaos.fail_attempts = 99;
  config.supervise.max_retries = 1;
  const auto chaotic = fleet::run_fleet(config);

  const auto clean = fleet::run_fleet(small_config());

  const auto doomed = doomed_count(config);
  EXPECT_EQ(static_cast<std::size_t>(chaotic.failed), doomed);
  EXPECT_EQ(chaotic.quarantined, chaotic.failed);
  EXPECT_EQ(chaotic.failures_by_code.at("chaos"),
            static_cast<long long>(doomed));
  long long cohort_failed = 0;
  for (const auto& c : chaotic.cohorts) {
    cohort_failed += c.failed;
    if (c.sessions > 0) {
      EXPECT_DOUBLE_EQ(c.failure_rate, static_cast<double>(c.failed) /
                                           static_cast<double>(c.sessions));
    }
  }
  EXPECT_EQ(cohort_failed, chaotic.failed);

  ASSERT_EQ(chaotic.health.size(), config.sessions);
  for (std::size_t i = 0; i < config.sessions; ++i) {
    const auto& h = chaotic.health[i];
    EXPECT_EQ(h.index, i);
    if (h.ok) {
      // Spared: bit-identical to the clean run's same slot.
      EXPECT_EQ(fleet::fingerprint_session(chaotic.sessions[i]),
                fleet::fingerprint_session(clean.sessions[i]))
          << "healthy session " << i << " perturbed by sibling chaos";
      EXPECT_EQ(h.fingerprint, fleet::fingerprint_session(clean.sessions[i]));
    } else {
      EXPECT_EQ(h.code, fleet::FailureCode::kChaos);
      EXPECT_TRUE(h.quarantined);
      EXPECT_EQ(h.attempts, 2);  // initial try + 1 retry, all doomed
      // The failed slot is zeroed so aggregates never see phantom data.
      EXPECT_EQ(chaotic.sessions[i].exchanges, 0);
      EXPECT_EQ(h.fingerprint, fleet::failure_fingerprint(h));
    }
  }
}

TEST(FleetSupervisor, ChaosFingerprintInvariantToThreadCount) {
  auto config = chaos_config();
  config.supervise.chaos.fail_attempts = 99;
  config.supervise.max_retries = 1;
  config.threads = 1;
  const auto serial = fleet::run_fleet(config);
  config.threads = 3;
  const auto pooled = fleet::run_fleet(config);
  EXPECT_GT(serial.failed, 0);
  EXPECT_EQ(serial.fingerprint, pooled.fingerprint);
  EXPECT_EQ(serial.failed, pooled.failed);
  EXPECT_EQ(serial.quarantined, pooled.quarantined);
}

TEST(FleetSupervisor, RetriedSessionBitIdenticalToCleanRun) {
  // One doomed attempt, two retries granted: every chaos-picked session
  // fails once, then re-runs clean with its exact original seed — the
  // whole fleet must come out bit-identical to a run with no chaos.
  auto config = chaos_config();
  config.supervise.chaos.fail_attempts = 1;
  config.supervise.max_retries = 2;
  const auto retried = fleet::run_fleet(config);
  const auto clean = fleet::run_fleet(small_config());

  EXPECT_EQ(retried.failed, 0);
  EXPECT_EQ(retried.quarantined, 0);
  EXPECT_GT(retried.retried, 0);
  EXPECT_EQ(retried.fingerprint, clean.fingerprint);
  for (std::size_t i = 0; i < config.sessions; ++i) {
    EXPECT_EQ(fleet::fingerprint_session(retried.sessions[i]),
              fleet::fingerprint_session(clean.sessions[i]));
    // A retried session is also bit-identical to a clean *solo* run —
    // the retry rebuilt its RNG lanes and plant from scratch.
    if (retried.health[i].attempts > 1) {
      const auto solo = fleet::run_solo_session(small_config(), i);
      EXPECT_EQ(fleet::fingerprint_session(retried.sessions[i]),
                fleet::fingerprint_session(solo));
    }
  }
}

TEST(FleetSupervisor, WatchdogDeadlineContainsStalledSession) {
  auto config = small_config();
  config.sessions = 2;
  config.exchanges = 1;
  config.supervise.chaos.stall_rate = 1.0;  // every session stalls
  config.supervise.chaos.stall_seconds = 30.0;
  config.supervise.session_deadline_s = 0.1;  // watchdog fires first
  config.supervise.max_retries = 0;
  const auto result = fleet::run_fleet(config);
  EXPECT_EQ(result.failed, 2);
  EXPECT_EQ(result.quarantined, 0);  // no retries granted -> failed, not
                                     // quarantined
  for (const auto& h : result.health) {
    EXPECT_FALSE(h.ok);
    EXPECT_EQ(h.code, fleet::FailureCode::kDeadline);
  }
  EXPECT_EQ(result.failures_by_code.at("deadline"), 2);
}

TEST(FleetSupervisor, JournalRoundTripAndResumeReproducesFingerprint) {
  const std::string path =
      ::testing::TempDir() + "/ironic_fleet_journal_test.jsonl";
  std::remove(path.c_str());

  auto config = chaos_config();
  config.supervise.chaos.fail_attempts = 99;
  config.supervise.max_retries = 1;
  config.supervise.journal_path = path;
  const auto full = fleet::run_fleet(config);
  EXPECT_GT(full.failed, 0);
  EXPECT_EQ(full.resumed, 0);

  // The journal replays to exactly the run's outcomes.
  const auto state = fleet::RunJournal::load(path);
  ASSERT_TRUE(state.valid) << state.error;
  EXPECT_EQ(state.seed, config.seed);
  EXPECT_EQ(state.sessions, config.sessions);
  ASSERT_EQ(state.completed.size(), config.sessions);
  for (std::size_t i = 0; i < config.sessions; ++i) {
    EXPECT_EQ(state.completed.at(i).health.fingerprint,
              full.health[i].fingerprint);
  }

  // Simulate a mid-run kill: keep the header + the first three session
  // lines, then a torn partial line (killed mid-write).
  std::vector<std::string> lines;
  {
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
  }
  ASSERT_GE(lines.size(), 4u);
  {
    std::ofstream out(path, std::ios::trunc);
    for (std::size_t i = 0; i < 4; ++i) out << lines[i] << "\n";
    out << R"({"event":"session","session":5,"co)";  // torn, no newline
  }
  const auto torn = fleet::RunJournal::load(path);
  ASSERT_TRUE(torn.valid);
  EXPECT_EQ(torn.completed.size(), 3u);  // torn line ignored

  config.supervise.resume = true;
  const auto resumed = fleet::run_fleet(config);
  EXPECT_EQ(resumed.fingerprint, full.fingerprint);
  EXPECT_EQ(resumed.resumed, 3);
  EXPECT_EQ(resumed.failed, full.failed);
  EXPECT_EQ(resumed.quarantined, full.quarantined);

  // After the resumed run the journal is whole again: a second resume
  // replays everything.
  const auto replayed = fleet::run_fleet(config);
  EXPECT_EQ(replayed.fingerprint, full.fingerprint);
  EXPECT_EQ(static_cast<std::size_t>(replayed.resumed), config.sessions);
  std::remove(path.c_str());
}

TEST(FleetSupervisor, ResumeRejectsMismatchedJournalHeader) {
  const std::string path =
      ::testing::TempDir() + "/ironic_fleet_journal_mismatch.jsonl";
  std::remove(path.c_str());
  auto config = small_config();
  config.supervise.journal_path = path;
  (void)fleet::run_fleet(config);

  config.supervise.resume = true;
  config.seed ^= 1;  // different run identity
  EXPECT_THROW(fleet::run_fleet(config), std::invalid_argument);
  std::remove(path.c_str());
}

TEST(Fleet, HashedStreamsGiveCohortsIndependentSchedules) {
  // Two sessions in the same cohort (indices 0 and 3 with 3 cohorts)
  // must draw different stochastic schedules — shared streams would
  // collapse the fleet into N copies of one patient.
  fleet::FleetConfig config = small_config();
  fleet::SessionSpec s0;
  s0.seed = config.seed;
  s0.index = 0;
  s0.exchanges = 8;
  s0.cohort = config.cohorts[0];
  fleet::SessionSpec s3 = s0;
  s3.index = 3;
  const auto sched0 = fleet::make_session_schedule(s0);
  const auto sched3 = fleet::make_session_schedule(s3);
  // Identical inputs reproduce bit-identically...
  const auto sched0_again = fleet::make_session_schedule(s0);
  ASSERT_EQ(sched0.events().size(), sched0_again.events().size());
  for (std::size_t i = 0; i < sched0.events().size(); ++i) {
    EXPECT_EQ(sched0.events()[i].start, sched0_again.events()[i].start);
    EXPECT_EQ(sched0.events()[i].magnitude, sched0_again.events()[i].magnitude);
  }
  // ...while distinct indices diverge.
  bool differs = sched0.events().size() != sched3.events().size();
  for (std::size_t i = 0; !differs && i < sched0.events().size(); ++i) {
    differs = sched0.events()[i].start != sched3.events()[i].start ||
              sched0.events()[i].magnitude != sched3.events()[i].magnitude;
  }
  EXPECT_TRUE(differs);
}

}  // namespace
