// Fleet service: checkpoint forking, the solo-parity contract, and the
// cohort statistics.
//
// The load-bearing guarantees:
//   - every session run inside a fleet is bit-identical to running that
//     session solo with the same seed (fork == private charge-up);
//   - the fleet fingerprint is invariant to the thread count and to
//     whether the charged checkpoint was shared;
//   - mutating one forked plant never perturbs siblings forked from the
//     same blob (copy-on-write isolation).
#include <cmath>
#include <memory>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "src/fault/plant.hpp"
#include "src/fleet/checkpoint.hpp"
#include "src/fleet/fleet.hpp"
#include "src/fleet/session.hpp"

namespace {

using namespace ironic;

// Small but real: every session runs actual rectifier transients, so
// keep the counts low and reuse one config across tests.
fleet::FleetConfig small_config() {
  fleet::FleetConfig config;
  config.sessions = 6;
  config.threads = 2;
  config.seed = 0x5eedf1ee7ull;
  config.exchanges = 2;
  return config;
}

TEST(Fleet, EverySessionBitIdenticalToSolo) {
  const auto config = small_config();
  const auto result = fleet::run_fleet(config);
  ASSERT_EQ(result.sessions.size(), config.sessions);
  // Shared capture: one charge-up for the whole fleet, every session
  // forked from it.
  EXPECT_EQ(result.charge_captures, 1u);
  EXPECT_EQ(result.checkpoint_forks, config.sessions);
  for (std::size_t i = 0; i < config.sessions; ++i) {
    const auto solo = fleet::run_solo_session(config, i);
    EXPECT_FALSE(solo.forked);
    EXPECT_GT(solo.charge_wall_seconds, 0.0);
    EXPECT_EQ(fleet::fingerprint_session(result.sessions[i]),
              fleet::fingerprint_session(solo))
        << "session " << i << " diverged from its solo run";
    // Fingerprint equality is the contract; spot-check the fields that
    // feed it so a fingerprint bug cannot mask a real divergence.
    EXPECT_EQ(result.sessions[i].completed, solo.completed);
    EXPECT_EQ(result.sessions[i].retries, solo.retries);
    EXPECT_EQ(result.sessions[i].restarts, solo.restarts);
    EXPECT_EQ(result.sessions[i].adc_codes, solo.adc_codes);
    EXPECT_EQ(result.sessions[i].recover_seconds, solo.recover_seconds);
  }
}

TEST(Fleet, FingerprintInvariantToThreadCount) {
  auto config = small_config();
  config.threads = 1;
  const auto serial = fleet::run_fleet(config);
  config.threads = 3;
  const auto pooled = fleet::run_fleet(config);
  EXPECT_EQ(serial.fingerprint, pooled.fingerprint);
  // The derived statistics ride on the same deterministic fields.
  ASSERT_EQ(serial.cohorts.size(), pooled.cohorts.size());
  for (std::size_t c = 0; c < serial.cohorts.size(); ++c) {
    EXPECT_EQ(serial.cohorts[c].lost, pooled.cohorts[c].lost);
    EXPECT_EQ(serial.cohorts[c].recovery_p95_s, pooled.cohorts[c].recovery_p95_s);
  }
}

TEST(Fleet, FingerprintInvariantToCheckpointSharing) {
  auto config = small_config();
  config.sessions = 3;
  const auto shared = fleet::run_fleet(config);
  config.share_checkpoint = false;
  const auto isolated = fleet::run_fleet(config);
  EXPECT_EQ(shared.fingerprint, isolated.fingerprint);
  EXPECT_EQ(shared.charge_captures, 1u);
  EXPECT_EQ(shared.checkpoint_forks, 3u);
  // Without sharing every session pays its own charge-up.
  EXPECT_EQ(isolated.charge_captures, 3u);
  EXPECT_EQ(isolated.checkpoint_forks, 0u);
}

TEST(Fleet, ForkedPlantMutationNeverPerturbsSiblings) {
  const fault::ChargeUpSpec spec;
  auto blob = std::make_shared<const spice::TransientCheckpoint>(
      fault::capture_charged_checkpoint(spec));

  fault::RectifierPlant a;
  fault::RectifierPlant b;
  a.fork_from(blob, spec.amplitude);
  b.fork_from(blob, spec.amplitude);
  EXPECT_TRUE(a.shares_base());
  EXPECT_EQ(a.committed(), blob.get());
  EXPECT_EQ(b.committed(), blob.get());

  // Drive plant A through measurements (including an amplitude change,
  // which restarts from the committed point and commits new state).
  const double a1 = a.measure(spec.amplitude);
  const double a2 = a.measure(spec.amplitude * 0.8);
  EXPECT_FALSE(a.shares_base());      // detached onto its private copy
  EXPECT_NE(a.committed(), blob.get());
  // B still references the shared blob, untouched by A's detach.
  EXPECT_TRUE(b.shares_base());
  EXPECT_EQ(b.committed(), blob.get());

  // B now measures the same sequence and must see exactly what A saw —
  // the shared blob cannot have been mutated by A's run.
  const double b1 = b.measure(spec.amplitude);
  const double b2 = b.measure(spec.amplitude * 0.8);
  EXPECT_EQ(a1, b1);
  EXPECT_EQ(a2, b2);

  // A fresh fork repeats it again, bit-for-bit.
  fault::RectifierPlant c;
  c.fork_from(blob, spec.amplitude);
  EXPECT_EQ(c.measure(spec.amplitude), a1);
  EXPECT_EQ(c.measure(spec.amplitude * 0.8), a2);
}

TEST(Fleet, CheckpointCacheCapturesOncePerSpec) {
  fleet::CheckpointCache cache;
  const auto first = cache.charged();
  const auto second = cache.charged();
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(cache.stats().captures, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);

  fault::ChargeUpSpec shorter;
  shorter.duration = 100e-6;
  const auto third = cache.charged(shorter);
  EXPECT_NE(third.get(), first.get());
  EXPECT_EQ(cache.stats().captures, 2u);
}

TEST(Fleet, CohortAssignmentRoundRobin) {
  auto config = small_config();
  config.sessions = 5;  // 3 cohorts -> 2/2/1 split
  const auto result = fleet::run_fleet(config);
  ASSERT_EQ(result.cohorts.size(), 3u);
  EXPECT_EQ(result.cohorts[0].sessions, 2u);
  EXPECT_EQ(result.cohorts[1].sessions, 2u);
  EXPECT_EQ(result.cohorts[2].sessions, 1u);
  long long exchanges = 0;
  long long lost = 0;
  for (const auto& cohort : result.cohorts) {
    exchanges += cohort.exchanges;
    lost += cohort.lost;
    if (cohort.exchanges > 0) {
      EXPECT_DOUBLE_EQ(cohort.lost_rate,
                       static_cast<double>(cohort.lost) /
                           static_cast<double>(cohort.exchanges));
    }
  }
  EXPECT_EQ(exchanges, result.total_exchanges);
  EXPECT_EQ(lost, result.lost_measurements);
  for (std::size_t i = 0; i < config.sessions; ++i) {
    EXPECT_EQ(result.sessions[i].cohort,
              config.cohorts[i % config.cohorts.size()].name);
  }
}

TEST(Fleet, ExactPercentileInterpolates) {
  const std::vector<double> sorted = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(fleet::exact_percentile(sorted, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(fleet::exact_percentile(sorted, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(fleet::exact_percentile(sorted, 50.0), 2.5);
  EXPECT_DOUBLE_EQ(fleet::exact_percentile(sorted, 25.0), 1.75);
  EXPECT_DOUBLE_EQ(fleet::exact_percentile({}, 50.0), 0.0);
  EXPECT_DOUBLE_EQ(fleet::exact_percentile({7.0}, 95.0), 7.0);
}

TEST(Fleet, SoakHorizonDrivesExchangeCount) {
  fleet::FleetConfig config;
  config.exchanges = 4;
  EXPECT_EQ(fleet::effective_exchanges(config), 4);
  config.soak_seconds = 1.0;  // cadence 0.25 s -> 4 exchanges
  EXPECT_EQ(fleet::effective_exchanges(config), 4);
  config.soak_seconds = 1.1;
  EXPECT_EQ(fleet::effective_exchanges(config), 5);
}

TEST(Fleet, InvalidConfigsThrow) {
  fleet::FleetConfig config;
  config.sessions = 0;
  EXPECT_THROW(fleet::run_fleet(config), std::invalid_argument);
  config = {};
  config.cohorts.clear();
  EXPECT_THROW(fleet::run_fleet(config), std::invalid_argument);
  config = {};
  config.exchanges = 0;
  EXPECT_THROW(fleet::run_fleet(config), std::invalid_argument);
}

TEST(Fleet, HashedStreamsGiveCohortsIndependentSchedules) {
  // Two sessions in the same cohort (indices 0 and 3 with 3 cohorts)
  // must draw different stochastic schedules — shared streams would
  // collapse the fleet into N copies of one patient.
  fleet::FleetConfig config = small_config();
  fleet::SessionSpec s0;
  s0.seed = config.seed;
  s0.index = 0;
  s0.exchanges = 8;
  s0.cohort = config.cohorts[0];
  fleet::SessionSpec s3 = s0;
  s3.index = 3;
  const auto sched0 = fleet::make_session_schedule(s0);
  const auto sched3 = fleet::make_session_schedule(s3);
  // Identical inputs reproduce bit-identically...
  const auto sched0_again = fleet::make_session_schedule(s0);
  ASSERT_EQ(sched0.events().size(), sched0_again.events().size());
  for (std::size_t i = 0; i < sched0.events().size(); ++i) {
    EXPECT_EQ(sched0.events()[i].start, sched0_again.events()[i].start);
    EXPECT_EQ(sched0.events()[i].magnitude, sched0_again.events()[i].magnitude);
  }
  // ...while distinct indices diverge.
  bool differs = sched0.events().size() != sched3.events().size();
  for (std::size_t i = 0; !differs && i < sched0.events().size(); ++i) {
    differs = sched0.events()[i].start != sched3.events()[i].start ||
              sched0.events()[i].magnitude != sched3.events()[i].magnitude;
  }
  EXPECT_TRUE(differs);
}

}  // namespace
