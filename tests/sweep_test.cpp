// exec::Sweep — axis construction, point ordering, per-point RNG streams,
// and the bit-identical-for-any-thread-count contract.
#include "src/exec/sweep.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/exec/cancellation.hpp"
#include "src/exec/thread_pool.hpp"

using namespace ironic;
using namespace ironic::exec;

namespace {

std::string render_csv(const util::Table& t) {
  std::ostringstream os;
  t.print_csv(os);
  return os.str();
}

TEST(SweepAxis, LinearEndpointsAndSpacing) {
  const Axis a = Axis::linear("x", 0.0, 10.0, 5);
  ASSERT_EQ(a.size(), 5u);
  EXPECT_DOUBLE_EQ(a.values().front(), 0.0);
  EXPECT_DOUBLE_EQ(a.values().back(), 10.0);
  EXPECT_DOUBLE_EQ(a.values()[1], 2.5);
}

TEST(SweepAxis, LinearSinglePointIsLo) {
  const Axis a = Axis::linear("x", 3.0, 9.0, 1);
  ASSERT_EQ(a.size(), 1u);
  EXPECT_DOUBLE_EQ(a.values()[0], 3.0);
}

TEST(SweepAxis, LogSpaceIsGeometric) {
  const Axis a = Axis::log_space("f", 1.0, 1000.0, 4);
  ASSERT_EQ(a.size(), 4u);
  EXPECT_DOUBLE_EQ(a.values()[0], 1.0);
  EXPECT_NEAR(a.values()[1], 10.0, 1e-9);
  EXPECT_NEAR(a.values()[2], 100.0, 1e-9);
  EXPECT_NEAR(a.values()[3], 1000.0, 1e-6);
}

TEST(SweepAxis, LogSpaceRejectsNonPositive) {
  EXPECT_THROW(Axis::log_space("f", 0.0, 10.0, 3), std::invalid_argument);
  EXPECT_THROW(Axis::log_space("f", -1.0, 10.0, 3), std::invalid_argument);
}

TEST(SweepAxis, MonteCarloDrawsAreSeedDeterministic) {
  const Axis a = Axis::monte_carlo_uniform("u", 16, 2.0, 5.0, 123);
  const Axis b = Axis::monte_carlo_uniform("u", 16, 2.0, 5.0, 123);
  const Axis c = Axis::monte_carlo_uniform("u", 16, 2.0, 5.0, 124);
  EXPECT_EQ(a.values(), b.values());     // same seed → identical grid
  EXPECT_NE(a.values(), c.values());     // different seed → different grid
  for (const double v : a.values()) {
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(SweepAxis, MonteCarloNormalHasRequestedMoments) {
  const Axis a = Axis::monte_carlo_normal("n", 4000, 10.0, 2.0, 7);
  double sum = 0.0, sq = 0.0;
  for (const double v : a.values()) {
    sum += v;
    sq += (v - 10.0) * (v - 10.0);
  }
  const double mean = sum / static_cast<double>(a.size());
  const double sigma = std::sqrt(sq / static_cast<double>(a.size()));
  EXPECT_NEAR(mean, 10.0, 0.15);
  EXPECT_NEAR(sigma, 2.0, 0.15);
}

TEST(Sweep, SizeIsProductAndLastAxisFastest) {
  Sweep s("order");
  s.axis(Axis::list("a", {1.0, 2.0})).axis(Axis::list("b", {10.0, 20.0, 30.0}));
  EXPECT_EQ(s.size(), 6u);
  // Row-major, last axis fastest: (1,10)(1,20)(1,30)(2,10)(2,20)(2,30).
  EXPECT_EQ(s.values_at(0), (std::vector<double>{1.0, 10.0}));
  EXPECT_EQ(s.values_at(2), (std::vector<double>{1.0, 30.0}));
  EXPECT_EQ(s.values_at(3), (std::vector<double>{2.0, 10.0}));
  EXPECT_EQ(s.values_at(5), (std::vector<double>{2.0, 30.0}));
}

TEST(Sweep, DuplicateAxisNameRejected) {
  Sweep s("dup");
  s.axis(Axis::list("x", {1.0}));
  EXPECT_THROW(s.axis(Axis::list("x", {2.0})), std::invalid_argument);
}

TEST(Sweep, UnknownAxisNameThrowsAtPoint) {
  Sweep s("bad");
  s.axis(Axis::list("x", {1.0, 2.0}));
  SweepOptions opts;
  const SweepRowFn row = [](const SweepPoint& p) {
    return std::vector<std::string>{util::Table::cell(p["nope"], 3)};
  };
  EXPECT_THROW(s.run({"c"}, row, opts), std::out_of_range);
}

TEST(Sweep, SerialPoolAndOwnedThreadsAllBitIdentical) {
  Sweep s("ident");
  s.axis(Axis::linear("x", 0.0, 1.0, 9))
      .axis(Axis::monte_carlo_uniform("u", 3, -1.0, 1.0, 55));
  const SweepRowFn row = [](const SweepPoint& p) {
    // Mix grid values with the per-point stream: any ordering or RNG
    // assignment slip shows up as a byte difference.
    util::Rng& rng = p.rng();
    const double noisy = p["x"] + 0.01 * rng.normal() + p["u"] * rng.uniform();
    return std::vector<std::string>{util::Table::cell(p["x"], 4),
                                    util::Table::cell(p["u"], 4),
                                    util::Table::cell(noisy, 12)};
  };
  const std::vector<std::string> cols{"x", "u", "noisy"};

  SweepOptions serial;
  serial.threads = 1;
  const auto r1 = s.run(cols, row, serial);
  EXPECT_EQ(r1.points, 27u);
  EXPECT_EQ(r1.table.rows(), 27u);

  SweepOptions own4;
  own4.threads = 4;
  const auto r4 = s.run(cols, row, own4);

  ThreadPool pool(3);
  SweepOptions shared;
  shared.pool = &pool;
  const auto rp = s.run(cols, row, shared);

  EXPECT_EQ(render_csv(r1.table), render_csv(r4.table));
  EXPECT_EQ(render_csv(r1.table), render_csv(rp.table));
}

TEST(Sweep, RepeatedRunsAreIdentical) {
  Sweep s("repeat");
  s.axis(Axis::list("x", {1.0, 2.0, 3.0}));
  const SweepRowFn row = [](const SweepPoint& p) {
    return std::vector<std::string>{util::Table::cell(p["x"], 3),
                                    util::Table::cell(p.rng().uniform(), 9)};
  };
  const auto a = s.run({"x", "r"}, row);
  const auto b = s.run({"x", "r"}, row);
  EXPECT_EQ(render_csv(a.table), render_csv(b.table));
}

TEST(Sweep, SeedChangesPointStreams) {
  Sweep s("seeded");
  s.axis(Axis::list("x", {1.0}));
  const SweepRowFn row = [](const SweepPoint& p) {
    return std::vector<std::string>{util::Table::cell(p.rng().uniform(), 9)};
  };
  SweepOptions a;
  SweepOptions b;
  b.seed = a.seed + 1;
  EXPECT_NE(render_csv(s.run({"r"}, row, a).table),
            render_csv(s.run({"r"}, row, b).table));
}

TEST(Sweep, AxisLessSweepIsASinglePoint) {
  Sweep s("point");
  const SweepRowFn row = [](const SweepPoint& p) {
    EXPECT_EQ(p.index(), 0u);
    return std::vector<std::string>{"one"};
  };
  const auto r = s.run({"c"}, row);
  EXPECT_EQ(r.points, 1u);
  EXPECT_EQ(r.table.rows(), 1u);
}

TEST(Sweep, RowExceptionPropagates) {
  Sweep s("thrower");
  s.axis(Axis::list("x", {1.0, 2.0, 3.0, 4.0}));
  const SweepRowFn row = [](const SweepPoint& p) -> std::vector<std::string> {
    if (p.index() == 2) throw std::runtime_error("bad point");
    return {util::Table::cell(p["x"], 3)};
  };
  SweepOptions opts;
  opts.threads = 2;
  EXPECT_THROW(s.run({"x"}, row, opts), std::runtime_error);
}

TEST(Sweep, CancellationMidSweepThrowsTaskCancelled) {
  Sweep s("cancelled");
  std::vector<double> grid(64);
  for (std::size_t i = 0; i < grid.size(); ++i)
    grid[i] = static_cast<double>(i);
  s.axis(Axis::list("i", std::move(grid)));
  CancellationSource source;
  std::atomic<std::size_t> ran{0};
  std::atomic<bool> first{true};
  const SweepRowFn row = [&](const SweepPoint& p) {
    if (first.exchange(false)) source.cancel();
    ++ran;
    return std::vector<std::string>{util::Table::cell(p["i"], 3)};
  };
  SweepOptions opts;
  opts.threads = 2;
  opts.token = source.token();
  EXPECT_THROW(s.run({"i"}, row, opts), TaskCancelled);
  EXPECT_LT(ran.load(), 64u);
}

TEST(Sweep, WallSecondsIsPopulated) {
  Sweep s("timing");
  s.axis(Axis::list("x", {1.0, 2.0}));
  const SweepRowFn row = [](const SweepPoint& p) {
    return std::vector<std::string>{util::Table::cell(p["x"], 3)};
  };
  const auto r = s.run({"x"}, row);
  EXPECT_GE(r.wall_seconds, 0.0);
  EXPECT_EQ(r.name, "timing");
}

}  // namespace
