#include <gtest/gtest.h>

#include "src/comms/bitstream.hpp"
#include "src/core/budget.hpp"
#include "src/core/system.hpp"

namespace {

using namespace ironic;
using namespace ironic::core;

// The full Fig. 11 run takes a couple of seconds; share one result.
const Fig11Result& fig11() {
  static const Fig11Result result = run_fig11_scenario();
  return result;
}

TEST(Fig11, CoChargesNearPaperTime) {
  const auto& r = fig11();
  ASSERT_TRUE(r.charged);
  // Paper: Vo = 2.75 V at t = 270 us. Same event, same decade.
  EXPECT_GT(r.t_charge, 150e-6);
  EXPECT_LT(r.t_charge, 400e-6);
}

TEST(Fig11, DownlinkBitsAllRecovered) {
  const auto& r = fig11();
  EXPECT_TRUE(r.downlink_ok)
      << "sent " << comms::bits_to_string(EndToEndConfig{}.downlink_bits) << " got "
      << comms::bits_to_string(r.decoded_downlink);
  EXPECT_EQ(r.decoded_downlink.size(), 18u);  // the paper's 18-bit burst
}

TEST(Fig11, UplinkBitsDetectedOnTransmitterCurrent) {
  const auto& r = fig11();
  EXPECT_TRUE(r.uplink_ok) << "got " << comms::bits_to_string(r.detected_uplink);
}

TEST(Fig11, OutputStaysAboveRegulatorMinimum) {
  const auto& r = fig11();
  // The paper's invariant: Vo >= 2.1 V after charge-up, through both
  // communication bursts.
  EXPECT_GE(r.vo_min_after_charge, 2.1);
  EXPECT_TRUE(r.regulator_never_starved);
  EXPECT_NEAR(r.worst_case_rail, 1.8, 0.01);
}

TEST(Fig11, OutputNeverExceedsClampCeiling) {
  const auto& r = fig11();
  EXPECT_LT(r.trace.max_between("v(rect.vo)", 0.0, 700e-6), 3.3);
}

TEST(EndToEnd, ConfigValidation) {
  EndToEndConfig cfg;
  cfg.t_stop = 0.0;
  EXPECT_THROW(EndToEndSim{cfg}, std::invalid_argument);
  cfg = EndToEndConfig{};
  cfg.downlink_start = 500e-6;  // 18 bits x 10 us runs past uplink_start
  EXPECT_THROW(EndToEndSim{cfg}, std::invalid_argument);
}

TEST(EndToEnd, DeeperDischargeWithHighPowerLoad) {
  // The 1.3 mA measurement mode droops Vo more than the 350 uA mode.
  EndToEndConfig cfg;
  cfg.t_stop = 250e-6;
  cfg.downlink_bits.clear();
  cfg.uplink_bits.clear();
  cfg.downlink_start = 10e-6;
  cfg.uplink_start = 200e-6;
  cfg.load_mode = pm::SensorMode::kLowPower;
  const auto low = EndToEndSim{cfg}.run();
  cfg.load_mode = pm::SensorMode::kHighPower;
  const auto high = EndToEndSim{cfg}.run();
  EXPECT_LT(high.trace.value_at("v(rect.vo)", 240e-6),
            low.trace.value_at("v(rect.vo)", 240e-6));
}

// ------------------------------------------------------------------ budget

TEST(Budget, SustainsBothModesAtPaperPower) {
  magnetics::InductiveLink link{magnetics::LinkConfig{}};
  const double drive = link.drive_for_power(5e-3, link.optimal_load_resistance());
  const auto b = analyze_power_budget(link, drive, pm::LdoSpec{}, pm::SensorLoadSpec{});
  // 5 mW received >> the 0.8 mW (350 uA) and 2.9 mW (1.3 mA) demands.
  EXPECT_NEAR(b.received_power, 5e-3, 1e-5);
  EXPECT_TRUE(b.sustains_low);
  EXPECT_GT(b.margin_low, 0.0);
  EXPECT_GE(b.margin_high, b.margin_low - b.input_power_high + b.input_power_low - 1e-12);
}

TEST(Budget, HighPowerModeNeedsMoreDrive) {
  magnetics::InductiveLink link{magnetics::LinkConfig{}};
  const double v_high = drive_for_high_power_mode(link, pm::LdoSpec{},
                                                  pm::SensorLoadSpec{});
  const auto b = analyze_power_budget(link, v_high, pm::LdoSpec{}, pm::SensorLoadSpec{});
  EXPECT_NEAR(b.margin_high, 0.0, 1e-9);
  EXPECT_TRUE(b.sustains_low);
}

TEST(Budget, StarvedLinkFailsHighPowerMode) {
  magnetics::LinkConfig weak;
  weak.distance = 25e-3;
  magnetics::InductiveLink link{weak};
  const double v_low_only = drive_for_high_power_mode(link, pm::LdoSpec{},
                                                      pm::SensorLoadSpec{}) * 0.5;
  const auto b = analyze_power_budget(link, v_low_only, pm::LdoSpec{},
                                      pm::SensorLoadSpec{});
  EXPECT_FALSE(b.sustains_high);
}

TEST(Budget, RejectsBadEfficiency) {
  magnetics::InductiveLink link{magnetics::LinkConfig{}};
  EXPECT_THROW(analyze_power_budget(link, 1.0, pm::LdoSpec{}, pm::SensorLoadSpec{}, 0.0),
               std::invalid_argument);
  EXPECT_THROW(analyze_power_budget(link, 1.0, pm::LdoSpec{}, pm::SensorLoadSpec{}, 1.5),
               std::invalid_argument);
}

}  // namespace
