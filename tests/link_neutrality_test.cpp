// Refactor-neutrality gate for the LinkPhy extraction: backend #1
// (inductive ASK/LSK) must reproduce the pre-refactor pipeline
// *bit-for-bit*. The fingerprints below were captured on the commit
// immediately before src/link/ existed — same seeds, same scenario and
// exchange counts — and the campaign/fleet fingerprints fold every
// deterministic result field, so a single double differing anywhere in
// power, BER, drive compensation, RNG consumption, or injector call
// order fails these pins. Run at 1 and 4 threads so the neutrality and
// thread-invariance contracts are checked together.
//
// The two new workloads get their own pins in the same spirit: not
// values carried over from history, but this-tree values asserted
// thread-invariant (and re-pinned deliberately whenever the physics is
// retuned — the test failing is the review speed bump).
//
// NOTE: like the historical fingerprints these fold libm outputs
// (erfc/exp/pow), so the pins hold per toolchain; CI re-derives its own
// neutrality diff from a t1-vs-t4 run rather than trusting these exact
// constants across images.
#include <gtest/gtest.h>

#include <cstdint>

#include "src/fault/campaign.hpp"
#include "src/fleet/fleet.hpp"

namespace {

using namespace ironic;

std::uint64_t campaign_fp(const std::string& name, std::size_t threads) {
  fault::CampaignConfig config;
  config.name = name;
  config.threads = threads;
  return fault::run_campaign(config).fingerprint;
}

// Pre-refactor pins (seed 0x1badc0de, 3 scenarios x 10 exchanges).
constexpr std::uint64_t kAskBurstPin = 0xcdcfe3682f5d87dbULL;
constexpr std::uint64_t kStochasticPin = 0x2418a5dbe19f9737ULL;
constexpr std::uint64_t kBrownoutPin = 0xad13aac78bc708cfULL;

TEST(LinkNeutrality, AskBurstCampaignIsBitIdenticalToPreRefactor) {
  EXPECT_EQ(campaign_fp("ask_burst_coupling_drop", 1), kAskBurstPin);
  EXPECT_EQ(campaign_fp("ask_burst_coupling_drop", 4), kAskBurstPin);
}

TEST(LinkNeutrality, StochasticSoakIsBitIdenticalToPreRefactor) {
  EXPECT_EQ(campaign_fp("stochastic_soak", 1), kStochasticPin);
  EXPECT_EQ(campaign_fp("stochastic_soak", 4), kStochasticPin);
}

TEST(LinkNeutrality, BrownoutSheddingIsBitIdenticalToPreRefactor) {
  EXPECT_EQ(campaign_fp("brownout_shedding", 1), kBrownoutPin);
  EXPECT_EQ(campaign_fp("brownout_shedding", 4), kBrownoutPin);
}

// The fleet smoke from the pre-refactor tree: 200 sessions x 2
// exchanges, seed 0xf1ee70001, default (all-inductive) cohorts.
TEST(LinkNeutrality, FleetSmokeIsBitIdenticalToPreRefactor) {
  constexpr std::uint64_t kFleetPin = 0xd6d3eb428265b127ULL;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    fleet::FleetConfig config;
    config.sessions = 200;
    config.exchanges = 2;
    config.seed = 0xf1ee70001ULL;
    config.threads = threads;
    EXPECT_EQ(fleet::run_fleet(config).fingerprint, kFleetPin)
        << "threads=" << threads;
  }
}

// The new workloads: deterministic and thread-count invariant, pinned
// to the values this tree produced when the physics was tuned.
TEST(LinkNeutrality, MeBackscatterSoakIsPinnedAndThreadInvariant) {
  constexpr std::uint64_t kMePin = 0xb61c1e7eb2bc32abULL;
  EXPECT_EQ(campaign_fp("me_backscatter_soak", 1), kMePin);
  EXPECT_EQ(campaign_fp("me_backscatter_soak", 4), kMePin);
}

TEST(LinkNeutrality, BioZTissueDriftIsPinnedAndThreadInvariant) {
  constexpr std::uint64_t kBioZPin = 0x237fb5de02291363ULL;
  EXPECT_EQ(campaign_fp("bioz_tissue_drift", 1), kBioZPin);
  EXPECT_EQ(campaign_fp("bioz_tissue_drift", 4), kBioZPin);
}

}  // namespace
