#include <gtest/gtest.h>

#include <cmath>

#include "src/pm/bandgap.hpp"
#include "src/pm/demodulator.hpp"
#include "src/pm/load.hpp"
#include "src/pm/regulator.hpp"
#include "src/spice/devices_passive.hpp"
#include "src/spice/devices_sources.hpp"
#include "src/spice/engine.hpp"
#include "src/util/interp.hpp"

namespace {

using namespace ironic::pm;
using namespace ironic::spice;

// ------------------------------------------------------------- demodulator

TEST(Demodulator, DecodesAmplitudeKeyedCarrier) {
  // 6-bit burst at 100 kbps: amplitude 3.5 V for '1', 2.0 V for '0'.
  const std::vector<bool> bits{true, false, true, true, false, false};
  const double tb = 10e-6;
  const double t0 = 10e-6;
  std::vector<double> ts{0.0};
  std::vector<double> vs{3.5};
  for (std::size_t i = 0; i < bits.size(); ++i) {
    const double a = bits[i] ? 3.5 : 2.0;
    ts.push_back(t0 + i * tb);
    vs.push_back(vs.back());
    ts.push_back(t0 + i * tb + 0.5e-6);
    vs.push_back(a);
  }
  ts.push_back(t0 + bits.size() * tb);
  vs.push_back(vs.back());
  ts.push_back(t0 + bits.size() * tb + 0.5e-6);
  vs.push_back(3.5);

  Circuit ckt;
  const auto vi = ckt.node("vi");
  ckt.add<VoltageSource>(
      "Vs", vi, kGround,
      Waveform::modulated_sine(5e6, ironic::util::PiecewiseLinear(ts, vs)));

  DemodulatorOptions dopt;
  dopt.clock_frequency = 100e3;
  dopt.clock_delay = t0;
  dopt.threshold = 2.3;  // between the two sampled peaks (minus the drop)
  const auto demod = build_demodulator(ckt, "dm", vi, dopt);

  TransientOptions opts;
  opts.t_stop = t0 + (bits.size() + 1) * tb;
  opts.dt_max = 4e-9;
  opts.record_every = 4;
  const auto res = run_transient(ckt, opts);

  const auto rx = decode_demodulator_output(res, demod, t0, bits.size());
  ASSERT_EQ(rx.size(), bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    EXPECT_EQ(rx[i], bits[i]) << "bit " << i;
  }
}

TEST(Demodulator, GateLevelClockAlsoDecodes) {
  // Same 4-bit burst, but phi1/phi2 produced by the transistor-level
  // cross-coupled-NAND generator instead of ideal sources.
  const std::vector<bool> bits{true, false, false, true};
  const double tb = 10e-6;
  const double t0 = 10e-6;
  std::vector<double> ts{0.0};
  std::vector<double> vs{3.5};
  for (std::size_t i = 0; i < bits.size(); ++i) {
    const double a = bits[i] ? 3.5 : 2.0;
    ts.push_back(t0 + i * tb);
    vs.push_back(vs.back());
    ts.push_back(t0 + i * tb + 0.5e-6);
    vs.push_back(a);
  }
  ts.push_back(t0 + bits.size() * tb);
  vs.push_back(vs.back());
  ts.push_back(t0 + bits.size() * tb + 0.5e-6);
  vs.push_back(3.5);

  Circuit ckt;
  const auto vi = ckt.node("vi");
  ckt.add<VoltageSource>(
      "Vs", vi, kGround,
      Waveform::modulated_sine(5e6, ironic::util::PiecewiseLinear(ts, vs)));
  DemodulatorOptions dopt;
  dopt.clock_frequency = 100e3;
  dopt.clock_delay = t0 - 5e-6;  // phi1 samples the settled second half
  dopt.threshold = 2.3;
  dopt.gate_level_clock = true;
  const auto demod = build_demodulator(ckt, "dm", vi, dopt);

  TransientOptions opts;
  opts.t_stop = t0 + (bits.size() + 1) * tb;
  opts.dt_max = 4e-9;
  opts.record_every = 4;
  const auto res = run_transient(ckt, opts);
  const auto rx = decode_demodulator_output(res, demod, t0, bits.size());
  ASSERT_EQ(rx.size(), bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    EXPECT_EQ(rx[i], bits[i]) << "bit " << i;
  }
}

TEST(Demodulator, SampleCapacitorTracksPeaks) {
  Circuit ckt;
  const auto vi = ckt.node("vi");
  ckt.add<VoltageSource>("Vs", vi, kGround, Waveform::sine(3.0, 5e6));
  DemodulatorOptions dopt;
  dopt.clock_delay = 0.0;
  const auto demod = build_demodulator(ckt, "dm", vi, dopt);
  TransientOptions opts;
  opts.t_stop = 30e-6;
  opts.dt_max = 4e-9;
  const auto res = run_transient(ckt, opts);
  // During phi1 (first half of each 10 us cell) C2 reaches the carrier
  // peak minus the D6 drop; during phi2 it is discharged.
  const double peak = res.max_between("v(" + demod.sample_name + ")", 1e-6, 5e-6);
  EXPECT_GT(peak, 2.2);
  EXPECT_LT(peak, 3.0);
  const double discharged = res.value_at("v(" + demod.sample_name + ")", 9.8e-6);
  EXPECT_LT(discharged, 0.4);
}

TEST(Demodulator, RejectsBadOptions) {
  Circuit ckt;
  DemodulatorOptions dopt;
  dopt.clock_frequency = 0.0;
  EXPECT_THROW(build_demodulator(ckt, "dm", ckt.node("vi"), dopt),
               std::invalid_argument);
  dopt = DemodulatorOptions{};
  dopt.non_overlap = 5e-6;
  EXPECT_THROW(build_demodulator(ckt, "dm2", ckt.node("vi"), dopt),
               std::invalid_argument);
}

// --------------------------------------------------------------- regulator

TEST(Ldo, RegulatesAboveMinimumInput) {
  LdoModel ldo;
  EXPECT_NEAR(ldo.spec().min_input_voltage(), 2.1, 1e-12);  // the Fig. 11 bound
  EXPECT_NEAR(ldo.output_voltage(2.75), 1.8, 1e-9);
  EXPECT_NEAR(ldo.output_voltage(2.1), 1.8, 1e-9);
  EXPECT_TRUE(ldo.in_regulation(2.4));
  EXPECT_FALSE(ldo.in_regulation(2.0));
}

TEST(Ldo, TracksInputMinusDropoutBelowRegulation) {
  LdoModel ldo;
  EXPECT_NEAR(ldo.output_voltage(2.0), 1.7, 1e-9);
  EXPECT_NEAR(ldo.output_voltage(1.0), 0.7, 1e-9);
  EXPECT_DOUBLE_EQ(ldo.output_voltage(0.2), 0.0);
}

TEST(Ldo, LoadRegulationAndEfficiency) {
  LdoModel ldo;
  const double v_light = ldo.output_voltage(2.75, 10e-6);
  const double v_heavy = ldo.output_voltage(2.75, 1.3e-3);
  EXPECT_LT(v_heavy, v_light);
  EXPECT_NEAR(v_light - v_heavy, ldo.spec().load_regulation * (1.3e-3 - 10e-6), 1e-9);
  const double eff = ldo.efficiency(2.75, 350e-6);
  EXPECT_GT(eff, 0.5);
  EXPECT_LT(eff, 1.8 / 2.75 + 0.01);
  EXPECT_DOUBLE_EQ(ldo.efficiency(2.75, 0.0), 0.0);
}

TEST(Ldo, DissipationAccountsPassAndQuiescent) {
  LdoModel ldo;
  const double p = ldo.dissipation(2.75, 1e-3);
  EXPECT_NEAR(p, (2.75 - 1.8 + ldo.spec().load_regulation * 0.0) * 1e-3 -
                     ldo.spec().load_regulation * 1e-3 * 1e-3 +
                     2.75 * ldo.spec().quiescent_current,
              2e-5);
}

TEST(Ldo, CircuitMacroRegulates) {
  Circuit ckt;
  const auto vin = ckt.node("vin");
  ckt.add<VoltageSource>("Vin", vin, kGround, Waveform::dc(2.75));
  const auto ldo = build_ldo(ckt, "ldo", vin);
  ckt.add<Resistor>("RL", ldo.output, kGround, 1.8 / 350e-6);
  TransientOptions opts;
  opts.t_stop = 200e-6;
  opts.dt_max = 100e-9;
  const auto res = run_transient(ckt, opts);
  EXPECT_NEAR(res.mean_between("v(ldo.vout)", 150e-6, 200e-6), 1.8, 0.05);
}

TEST(Ldo, CircuitMacroDropsOutGracefully) {
  Circuit ckt;
  const auto vin = ckt.node("vin");
  ckt.add<VoltageSource>("Vin", vin, kGround, Waveform::dc(1.6));
  const auto ldo = build_ldo(ckt, "ldo", vin);
  ckt.add<Resistor>("RL", ldo.output, kGround, 1.8 / 350e-6);
  TransientOptions opts;
  opts.t_stop = 200e-6;
  opts.dt_max = 100e-9;
  const auto res = run_transient(ckt, opts);
  const double vout = res.mean_between("v(ldo.vout)", 150e-6, 200e-6);
  EXPECT_LT(vout, 1.62);
  EXPECT_GT(vout, 1.2);
}

// ----------------------------------------------------------------- bandgap

TEST(Bandgap, NominalVoltagesAndCellBias) {
  const double t = 310.15;
  EXPECT_NEAR(we_reference().voltage(t, 1.8), 1.2, 1e-9);
  EXPECT_NEAR(re_reference().voltage(t, 1.8), 0.55, 1e-9);
  // The paper's 650 mV oxidation potential between WE and RE.
  EXPECT_NEAR(cell_bias_voltage(t, 1.8), 0.65, 1e-9);
}

TEST(Bandgap, TemperatureBowIsSmall) {
  const auto bg = we_reference();
  // Over 27..47 C the reference must stay within a few mV.
  const double v_cold = bg.voltage(300.15, 1.8);
  const double v_hot = bg.voltage(320.15, 1.8);
  EXPECT_NEAR(v_cold, 1.2, 5e-3);
  EXPECT_NEAR(v_hot, 1.2, 5e-3);
  EXPECT_LT(bg.tempco_ppm(300.15, 320.15), 200.0);
}

TEST(Bandgap, LineSensitivityAndCollapse) {
  const auto bg = we_reference();
  const double dv = bg.voltage(310.15, 2.0) - bg.voltage(310.15, 1.8);
  EXPECT_NEAR(dv, 0.2 * bg.spec().line_sensitivity, 1e-12);
  // Below the minimum supply the reference collapses well under nominal.
  EXPECT_LT(bg.voltage(310.15, 0.5), 0.6 * bg.spec().nominal_voltage);
}

TEST(Bandgap, SubOneVoltReferenceSurvivesLowerSupply) {
  // Banba's point: the RE reference still regulates at 1.0 V supply.
  const auto re = re_reference();
  EXPECT_NEAR(re.voltage(310.15, 1.0), 0.55, 5e-3);
  const auto we = we_reference();
  EXPECT_LT(we.voltage(310.15, 0.95), 1.0);  // the 1.2 V core cannot
}

// -------------------------------------------------------------------- load

TEST(SensorLoad, ModeCurrents) {
  SensorLoadSpec spec;
  EXPECT_DOUBLE_EQ(mode_current(spec, SensorMode::kLowPower), 350e-6);
  EXPECT_DOUBLE_EQ(mode_current(spec, SensorMode::kHighPower), 1.3e-3);
  EXPECT_DOUBLE_EQ(mode_current(spec, SensorMode::kSleep), 20e-6);
}

TEST(SensorLoad, ProfileChargeIntegration) {
  SensorLoadSpec spec;
  SensorLoadProfile profile(spec, {{0.0, SensorMode::kSleep},
                                   {1.0, SensorMode::kHighPower},
                                   {2.0, SensorMode::kLowPower}});
  EXPECT_DOUBLE_EQ(profile.current(0.5), 20e-6);
  EXPECT_DOUBLE_EQ(profile.current(1.5), 1.3e-3);
  EXPECT_DOUBLE_EQ(profile.current(2.5), 350e-6);
  // Charge over [0, 3]: 20u + 1300u + 350u.
  EXPECT_NEAR(profile.charge(0.0, 3.0), 20e-6 + 1.3e-3 + 350e-6, 1e-12);
  // Sub-interval.
  EXPECT_NEAR(profile.charge(0.5, 1.5), 20e-6 * 0.5 + 1.3e-3 * 0.5, 1e-12);
  EXPECT_THROW(profile.charge(1.0, 0.0), std::invalid_argument);
}

TEST(SensorLoad, ProfileRejectsBadSchedule) {
  SensorLoadSpec spec;
  EXPECT_THROW(SensorLoadProfile(spec, {}), std::invalid_argument);
  EXPECT_THROW(SensorLoadProfile(spec, {{1.0, SensorMode::kSleep},
                                        {1.0, SensorMode::kSleep}}),
               std::invalid_argument);
}

TEST(SensorLoad, CircuitLoadDrawsModeCurrentWhenPowered) {
  Circuit ckt;
  const auto rail = ckt.node("rail");
  auto& vs = ckt.add<VoltageSource>("V1", rail, kGround, Waveform::dc(1.8));
  build_sensor_load(ckt, "sensor", rail, SensorLoadSpec{}, SensorMode::kLowPower);
  const auto dc = solve_dc(ckt);
  ASSERT_TRUE(dc.converged);
  // Source branch current = -350 uA (delivering).
  EXPECT_NEAR(dc.x[static_cast<std::size_t>(vs.branch_index())], -350e-6, 20e-6);
}

TEST(SensorLoad, CircuitLoadReleasedBelowPor) {
  Circuit ckt;
  const auto rail = ckt.node("rail");
  auto& vs = ckt.add<VoltageSource>("V1", rail, kGround, Waveform::dc(0.4));
  build_sensor_load(ckt, "sensor", rail, SensorLoadSpec{}, SensorMode::kLowPower);
  const auto dc = solve_dc(ckt);
  ASSERT_TRUE(dc.converged);
  EXPECT_GT(dc.x[static_cast<std::size_t>(vs.branch_index())], -5e-6);
}

}  // namespace
