// Transient checkpoint/restart: a resumed run must reproduce the tail of
// an uninterrupted run bit-for-bit (same accepted points, same solutions),
// because the fault campaigns splice segments at checkpoints and claim
// determinism across the splice.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <stdexcept>
#include <vector>

#include "src/spice/circuit.hpp"
#include "src/spice/devices_nonlinear.hpp"
#include "src/spice/devices_passive.hpp"
#include "src/spice/devices_sources.hpp"
#include "src/spice/engine.hpp"
#include "src/spice/waveform.hpp"

namespace {

using namespace ironic::spice;

// Pulse-driven half-wave rectifier: nonlinear (diode limiting) plus two
// reactive state carriers (C and L), with stimulus breakpoints at every
// pulse edge so a segment boundary can land exactly on a step both runs
// take.
std::unique_ptr<Circuit> make_rectifier() {
  auto ckt = std::make_unique<Circuit>();
  const auto in = ckt->node("in");
  const auto mid = ckt->node("mid");
  const auto out = ckt->node("out");
  ckt->add<VoltageSource>(
      "V1", in, kGround,
      Waveform::pulse(0.0, 3.0, /*delay=*/0.0, /*rise=*/1e-6, /*fall=*/1e-6,
                      /*width=*/8e-6, /*period=*/20e-6));
  ckt->add<Resistor>("Rs", in, mid, 50.0);
  ckt->add<Diode>("D1", mid, out);
  ckt->add<Capacitor>("Co", out, kGround, 100e-9);
  ckt->add<Inductor>("Lf", out, kGround, 1e-3, /*series_resistance=*/5e3);
  return ckt;
}

TransientOptions base_options(double t_stop) {
  TransientOptions opts;
  opts.t_stop = t_stop;
  opts.dt_max = 100e-9;
  opts.record_every = 3;  // decimation phase must survive the splice
  return opts;
}

// Collect (t, all signals) rows with time strictly greater than `after`.
std::vector<std::vector<double>> tail_rows(const TransientResult& res, double after) {
  std::vector<std::vector<double>> rows;
  for (std::size_t i = 0; i < res.num_points(); ++i) {
    const double t = res.time()[i];
    if (t <= after) continue;
    std::vector<double> row{t};
    for (const auto& name : res.names()) row.push_back(res.signal(name)[i]);
    rows.push_back(std::move(row));
  }
  return rows;
}

TEST(Checkpoint, ResumedTailIsBitExact) {
  // T1 = 40 us is a pulse-period breakpoint, so the uninterrupted run
  // steps exactly onto it too.
  const double kSplit = 40e-6;
  const double kStop = 100e-6;

  // Uninterrupted reference.
  auto full_ckt = make_rectifier();
  const auto full = run_transient(*full_ckt, base_options(kStop));

  // Leg 1: run to the split point, capturing the final checkpoint.
  TransientCheckpoint cp;
  auto leg1_ckt = make_rectifier();
  auto leg1_opts = base_options(kSplit);
  leg1_opts.checkpoint = &cp;
  const auto leg1 = run_transient(*leg1_ckt, leg1_opts);
  ASSERT_TRUE(cp.valid());
  EXPECT_DOUBLE_EQ(cp.time, kSplit);

  // Leg 2: a FRESH circuit resumed from the blob — nothing may leak
  // through device object identity.
  auto leg2_ckt = make_rectifier();
  auto leg2_opts = base_options(kStop);
  leg2_opts.resume_from = &cp;
  const auto leg2 = run_transient(*leg2_ckt, leg2_opts);

  const auto want = tail_rows(full, kSplit);
  const auto got = tail_rows(leg2, 0.0);  // resumed run records only t > split
  ASSERT_FALSE(want.empty());
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(got[i].size(), want[i].size());
    for (std::size_t j = 0; j < want[i].size(); ++j) {
      EXPECT_EQ(got[i][j], want[i][j])
          << "row " << i << " col " << j << " (t=" << want[i][0] << ")";
    }
  }
}

TEST(Checkpoint, ResumedTailIsBitExactAdaptive) {
  // Same splice under the LTE controller: proves the predictor history
  // (x_prev / dt_prev) rides along in the checkpoint.
  const double kSplit = 40e-6;
  const double kStop = 80e-6;

  auto make_opts = [](double t_stop) {
    auto opts = base_options(t_stop);
    opts.adaptive = true;
    opts.lte_tol = 1e-3;
    return opts;
  };

  auto full_ckt = make_rectifier();
  const auto full = run_transient(*full_ckt, make_opts(kStop));

  TransientCheckpoint cp;
  auto leg1_ckt = make_rectifier();
  auto leg1_opts = make_opts(kSplit);
  leg1_opts.checkpoint = &cp;
  run_transient(*leg1_ckt, leg1_opts);
  ASSERT_TRUE(cp.valid());
  ASSERT_TRUE(cp.have_prev_point);

  auto leg2_ckt = make_rectifier();
  auto leg2_opts = make_opts(kStop);
  leg2_opts.resume_from = &cp;
  const auto leg2 = run_transient(*leg2_ckt, leg2_opts);

  const auto want = tail_rows(full, kSplit);
  const auto got = tail_rows(leg2, 0.0);
  ASSERT_FALSE(want.empty());
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    for (std::size_t j = 0; j < want[i].size(); ++j) {
      EXPECT_EQ(got[i][j], want[i][j]) << "row " << i << " col " << j;
    }
  }
}

TEST(Checkpoint, IntervalCaptureLandsOnRecordedPoint) {
  auto ckt = make_rectifier();
  TransientCheckpoint cp;
  auto opts = base_options(100e-6);
  opts.record_every = 7;
  opts.checkpoint = &cp;
  opts.checkpoint_interval = 13e-6;  // deliberately off-grid
  const auto res = run_transient(*ckt, opts);

  // The last capture is the final accepted point, and checkpointed points
  // carry the recording guarantee.
  ASSERT_TRUE(cp.valid());
  EXPECT_EQ(cp.time, res.time().back());
  const auto out = ckt->node("out");
  EXPECT_EQ(cp.x[static_cast<std::size_t>(out)], res.signal("v(out)").back());
  EXPECT_FALSE(cp.device_state.empty());
}

TEST(Checkpoint, ResumeValidatesShape) {
  auto ckt = make_rectifier();
  TransientCheckpoint cp;
  cp.time = 1e-6;
  cp.dt = 1e-7;
  cp.x.assign(2, 0.0);  // wrong unknown count for this circuit
  auto opts = base_options(10e-6);
  opts.resume_from = &cp;
  EXPECT_THROW(run_transient(*ckt, opts), std::invalid_argument);

  // Time at/after t_stop is rejected as well.
  auto ckt2 = make_rectifier();
  TransientCheckpoint cp2;
  auto capture_opts = base_options(10e-6);
  capture_opts.checkpoint = &cp2;
  run_transient(*ckt2, capture_opts);
  ASSERT_TRUE(cp2.valid());
  auto resume_opts = base_options(10e-6);  // == cp2.time
  resume_opts.resume_from = &cp2;
  auto ckt3 = make_rectifier();
  EXPECT_THROW(run_transient(*ckt3, resume_opts), std::invalid_argument);
}

TEST(Checkpoint, DeviceBlobRoundTripAndShortBlobThrows) {
  Capacitor c("C1", 0, kGround, 1e-6);
  std::vector<double> blob;
  c.save_state(blob);
  ASSERT_EQ(blob.size(), 3u);
  EXPECT_EQ(c.restore_state(blob), 3u);
  blob.pop_back();
  EXPECT_THROW(c.restore_state(blob), std::invalid_argument);

  Inductor l("L1", 0, kGround, 1e-3);
  std::vector<double> lb;
  l.save_state(lb);
  ASSERT_EQ(lb.size(), 3u);
  lb.clear();
  EXPECT_THROW(l.restore_state(lb), std::invalid_argument);

  CoupledInductors k("K1", 0, kGround, 1, kGround, 1e-6, 1e-6, 0.5);
  std::vector<double> kb;
  k.save_state(kb);
  ASSERT_EQ(kb.size(), 5u);
  EXPECT_EQ(k.restore_state(kb), 5u);
}

}  // namespace
