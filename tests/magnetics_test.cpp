#include <gtest/gtest.h>

#include <cmath>

#include "src/magnetics/coil.hpp"
#include "src/magnetics/coupling.hpp"
#include "src/magnetics/elliptic.hpp"
#include "src/magnetics/link.hpp"
#include "src/magnetics/tissue.hpp"
#include "src/util/constants.hpp"

namespace {

using namespace ironic::magnetics;
namespace constants = ironic::constants;

// ---------------------------------------------------------------- elliptic

TEST(Elliptic, KnownValues) {
  // K(0) = E(0) = pi/2.
  EXPECT_NEAR(elliptic_k(0.0), constants::kPi / 2.0, 1e-14);
  EXPECT_NEAR(elliptic_e(0.0), constants::kPi / 2.0, 1e-14);
  // E(1) = 1.
  EXPECT_NEAR(elliptic_e(1.0), 1.0, 1e-12);
  // Reference values (Abramowitz & Stegun): k = sin(45 deg).
  const double k45 = std::sin(constants::kPi / 4.0);
  EXPECT_NEAR(elliptic_k(k45), 1.85407467730137, 1e-10);
  EXPECT_NEAR(elliptic_e(k45), 1.35064388104818, 1e-10);
}

TEST(Elliptic, DomainChecks) {
  EXPECT_THROW(elliptic_k(1.0), std::invalid_argument);
  EXPECT_THROW(elliptic_k(-0.1), std::invalid_argument);
  EXPECT_THROW(elliptic_e(1.1), std::invalid_argument);
}

TEST(Elliptic, KDivergesTowardOne) {
  EXPECT_GT(elliptic_k(0.9999), 5.0);
}

// -------------------------------------------------------------- filaments

TEST(Coupling, CoaxialMutualMatchesFarFieldDipole) {
  // For d >> a, b: M -> mu0 pi a^2 b^2 / (2 d^3).
  const double a = 1e-3, b = 2e-3, d = 0.2;
  const double exact = mutual_coaxial_filaments(a, b, d);
  const double dipole = constants::kMu0 * constants::kPi * a * a * b * b / (2.0 * d * d * d);
  EXPECT_NEAR(exact, dipole, dipole * 0.01);
}

TEST(Coupling, CoaxialMutualIsSymmetric) {
  EXPECT_NEAR(mutual_coaxial_filaments(3e-3, 7e-3, 5e-3),
              mutual_coaxial_filaments(7e-3, 3e-3, 5e-3), 1e-18);
}

TEST(Coupling, CoaxialMutualDecreasesWithDistance) {
  double prev = mutual_coaxial_filaments(10e-3, 5e-3, 1e-3);
  for (double d = 2e-3; d < 40e-3; d += 2e-3) {
    const double m = mutual_coaxial_filaments(10e-3, 5e-3, d);
    EXPECT_LT(m, prev);
    prev = m;
  }
}

TEST(Coupling, NeumannMatchesCoaxialAtZeroOffset) {
  const double a = 10e-3, b = 5e-3, d = 6e-3;
  const double exact = mutual_coaxial_filaments(a, b, d);
  const double numeric = mutual_filaments(a, b, d, 1e-6, 128);
  EXPECT_NEAR(numeric, exact, std::abs(exact) * 1e-3);
}

TEST(Coupling, LateralOffsetReducesCoupling) {
  const double a = 10e-3, b = 5e-3, d = 6e-3;
  const double centered = mutual_filaments(a, b, d, 0.0);
  const double offset = mutual_filaments(a, b, d, 8e-3);
  EXPECT_LT(offset, centered);
  EXPECT_GT(offset, 0.0);
}

TEST(Coupling, RejectsBadArguments) {
  EXPECT_THROW(mutual_coaxial_filaments(0.0, 1e-3, 1e-3), std::invalid_argument);
  EXPECT_THROW(mutual_filaments(1e-3, 1e-3, 1e-3, 1e-3, 2), std::invalid_argument);
}

// -------------------------------------------------------------------- coil

TEST(Coil, ImplantCoilPlausibleParameters) {
  const Coil coil{implant_coil_spec()};
  EXPECT_EQ(coil.filaments().size(), 14u);  // 14 turns, as published
  // Area-equivalent radius of a 38 x 2 mm outline: ~4.9 mm.
  EXPECT_NEAR(coil.equivalent_radius(), 4.92e-3, 0.1e-3);
  // Multi-layer mm-scale coil: inductance in the 0.1 - 30 uH range.
  EXPECT_GT(coil.inductance(), 0.1e-6);
  EXPECT_LT(coil.inductance(), 30e-6);
  // Resistance: ohms, not milli- or kilo-ohms.
  EXPECT_GT(coil.dc_resistance(), 0.1);
  EXPECT_LT(coil.dc_resistance(), 50.0);
}

TEST(Coil, BothCoilsInUsableInductanceRange) {
  // A 5 MHz series-tuned link wants single-digit uH coils on both sides.
  const Coil patch{patch_coil_spec()};
  const Coil implant{implant_coil_spec()};
  EXPECT_GT(patch.inductance(), 0.3e-6);
  EXPECT_LT(patch.inductance(), 10e-6);
  EXPECT_GT(implant.inductance(), 0.3e-6);
  EXPECT_LT(implant.inductance(), 10e-6);
}

TEST(Coil, AcResistanceExceedsDcAtCarrier) {
  const Coil coil{implant_coil_spec()};
  const double rdc = coil.dc_resistance();
  const double rac = coil.ac_resistance(5e6);
  EXPECT_GT(rac, rdc);
  EXPECT_LT(rac, rdc * 5.0);  // skin effect is moderate at 5 MHz / 35 um
  EXPECT_DOUBLE_EQ(coil.ac_resistance(0.0), rdc);
}

TEST(Coil, SelfResonanceWellAboveCarrier) {
  // The link only works if the coils are used well below SRF.
  const Coil patch{patch_coil_spec()};
  const Coil implant{implant_coil_spec()};
  EXPECT_GT(patch.self_resonance_frequency(), 15e6);
  EXPECT_GT(implant.self_resonance_frequency(), 15e6);
}

TEST(Coil, QualityFactorReasonableAtCarrier) {
  const Coil patch{patch_coil_spec()};
  const double q = patch.quality_factor(5e6);
  EXPECT_GT(q, 10.0);
  EXPECT_LT(q, 500.0);
}

TEST(Coil, InductanceGrowsWithTurns) {
  CoilSpec spec = patch_coil_spec();
  const double l6 = Coil{spec}.inductance();
  spec.turns_per_layer = 3;
  const double l3 = Coil{spec}.inductance();
  // Doubling the turns multiplies L by well over 2x (approaching 4x for
  // tightly coupled turns; inner turns shrink so the exponent is < 2).
  EXPECT_GT(l6, l3 * 2.2);
}

TEST(Coil, RejectsImpossibleGeometry) {
  CoilSpec spec = implant_coil_spec();
  spec.turns_per_layer = 100;  // cannot fit in a 2 mm outline
  EXPECT_THROW(Coil{spec}, std::invalid_argument);
  spec = implant_coil_spec();
  spec.layers = 0;
  EXPECT_THROW(Coil{spec}, std::invalid_argument);
}

// --------------------------------------------------------------- coil pair

TEST(Coupling, CoilCouplingInPhysicalRange) {
  const Coil tx{patch_coil_spec()};
  const Coil rx{implant_coil_spec()};
  const double k6 = coupling_coefficient(tx, rx, 6e-3);
  EXPECT_GT(k6, 0.005);
  EXPECT_LT(k6, 0.3);  // loosely coupled mm-range link
  const double k17 = coupling_coefficient(tx, rx, 17e-3);
  EXPECT_LT(k17, k6);
}

TEST(Coupling, MisalignmentBeyondWindingDegradesCoilCoupling) {
  // With a large transmit coil the field actually strengthens toward the
  // winding, so small offsets can *increase* coupling; the degradation
  // sets in once the receiver slides past the outer turns (~25 mm here).
  const Coil tx{patch_coil_spec()};
  const Coil rx{implant_coil_spec()};
  const double centered = mutual_inductance(tx, rx, 6e-3, 0.0);
  const double outside = mutual_inductance(tx, rx, 6e-3, 40e-3);
  EXPECT_LT(std::abs(outside), centered);
}

TEST(Coupling, MisalignmentDegradesEqualCoilCoupling) {
  // For same-size coils the centered position is the coupling maximum.
  const Coil a{implant_coil_spec()};
  const Coil b{implant_coil_spec()};
  const double centered = mutual_inductance(a, b, 6e-3, 0.0);
  const double shifted = mutual_inductance(a, b, 6e-3, 5e-3);
  EXPECT_LT(shifted, centered);
}

// ------------------------------------------------------------------ tissue

TEST(Tissue, SkinDepthLargeAt5MHz) {
  // Muscle at 5 MHz: ~0.3 m -> tissue nearly transparent, the effect the
  // paper observed with the sirloin slab.
  const double delta = tissue_skin_depth(sirloin_properties(), 5e6);
  EXPECT_GT(delta, 0.1);
  EXPECT_LT(delta, 1.0);
}

TEST(Tissue, AttenuationMildForImplantDepths) {
  const TissueSlab slab(sirloin_properties(), 17e-3);
  const double att = slab.power_attenuation(5e6);
  EXPECT_GT(att, 0.8);
  EXPECT_LT(att, 1.0);
}

TEST(Tissue, AttenuationWorsensWithFrequencyAndThickness) {
  const TissueSlab thin(sirloin_properties(), 5e-3);
  const TissueSlab thick(sirloin_properties(), 30e-3);
  EXPECT_GT(thin.power_attenuation(5e6), thick.power_attenuation(5e6));
  EXPECT_GT(thick.power_attenuation(1e6), thick.power_attenuation(50e6));
}

TEST(Tissue, ReflectedResistanceSmallAtCarrier) {
  const TissueSlab slab(sirloin_properties(), 17e-3);
  const double r = slab.reflected_resistance(5e6, 25e-3);
  EXPECT_GT(r, 0.0);
  EXPECT_LT(r, 5.0);  // should not dominate the coil ESR
}

// -------------------------------------------------------------------- link

TEST(Link, EfficiencyBelowUnityAndPositive) {
  InductiveLink link{LinkConfig{}};
  const auto a = link.analyze(1.0, link.optimal_load_resistance());
  EXPECT_GT(a.efficiency, 0.0);
  EXPECT_LT(a.efficiency, 1.0);
  EXPECT_GT(a.power_delivered, 0.0);
  EXPECT_LE(a.power_delivered, a.power_in);
}

TEST(Link, PowerScalesQuadraticallyWithDrive) {
  InductiveLink link{LinkConfig{}};
  const double rl = link.optimal_load_resistance();
  const double p1 = link.analyze(1.0, rl).power_delivered;
  const double p2 = link.analyze(2.0, rl).power_delivered;
  EXPECT_NEAR(p2 / p1, 4.0, 1e-9);
}

TEST(Link, DriveForPowerRoundTrips) {
  InductiveLink link{LinkConfig{}};
  const double rl = link.optimal_load_resistance();
  const double v = link.drive_for_power(15e-3, rl);
  EXPECT_NEAR(link.analyze(v, rl).power_delivered, 15e-3, 1e-6);
}

TEST(Link, PowerFallsWithDistanceBeyondCriticalCoupling) {
  // Fixed-drive delivered power peaks at critical coupling (~10 mm for
  // this pair) and falls monotonically beyond it — the regime the paper's
  // 6 -> 17 mm measurements live in for their fixed transmitter setting.
  InductiveLink link{LinkConfig{}};
  const double rl = 10.0;
  double prev = 1e9;
  for (double d : {10e-3, 14e-3, 17e-3, 21e-3, 25e-3, 30e-3}) {
    link.set_distance(d);
    const double p = link.analyze(1.0, rl).power_delivered;
    EXPECT_LT(p, prev) << "at d=" << d;
    prev = p;
  }
}

TEST(Link, EfficiencyFallsMonotonicallyWithDistance) {
  InductiveLink link{LinkConfig{}};
  const double rl = 10.0;
  double prev = 1.0;
  for (double d : {4e-3, 6e-3, 10e-3, 17e-3, 25e-3}) {
    link.set_distance(d);
    const double eff = link.analyze(1.0, rl).efficiency;
    EXPECT_LT(eff, prev) << "at d=" << d;
    prev = eff;
  }
}

TEST(Link, TissueBarelyChangesReceivedPower) {
  // The paper's headline observation: sirloin at 17 mm ~ air at 17 mm.
  LinkConfig cfg;
  cfg.distance = 17e-3;
  InductiveLink air{cfg};
  cfg.tissue = TissueSlab(sirloin_properties(), 17e-3);
  InductiveLink meat{cfg};
  const double pa = air.analyze(1.0, 10.0).power_delivered;
  const double pm = meat.analyze(1.0, 10.0).power_delivered;
  EXPECT_LT(pm, pa);
  EXPECT_GT(pm, 0.75 * pa);
}

TEST(Link, TuningCapacitorsResonateCoils) {
  InductiveLink link{LinkConfig{}};
  const double omega = ironic::constants::kTwoPi * 5e6;
  EXPECT_NEAR(omega * link.tx_tuning_capacitance() * omega * link.tx_coil().inductance(),
              1.0, 1e-9);
  EXPECT_NEAR(omega * link.rx_tuning_capacitance() * omega * link.rx_coil().inductance(),
              1.0, 1e-9);
}

TEST(Link, AddToCircuitProducesCoupledInductors) {
  InductiveLink link{LinkConfig{}};
  ironic::spice::Circuit ckt;
  auto& t = link.add_to_circuit(ckt, "LINK", ckt.node("p"), ironic::spice::kGround,
                                ckt.node("s"), ironic::spice::kGround);
  EXPECT_NEAR(t.coupling(), link.coupling(), link.coupling() * 1e-9);
  EXPECT_EQ(ckt.devices().size(), 1u);
}

TEST(Link, RejectsInvalidConfig) {
  InductiveLink link{LinkConfig{}};
  EXPECT_THROW(link.set_distance(0.0), std::invalid_argument);
  EXPECT_THROW(link.analyze(1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(link.drive_for_power(-1.0, 10.0), std::invalid_argument);
}

}  // namespace
