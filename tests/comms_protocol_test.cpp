#include <gtest/gtest.h>

#include "src/comms/protocol.hpp"
#include "src/util/rng.hpp"

namespace {

using namespace ironic::comms;

Channel clean_channel() {
  return [](const Bits& bits) { return bits; };
}

// Flips one random bit with probability p per transit.
Channel lossy_channel(double p, ironic::util::Rng& rng) {
  return [p, &rng](const Bits& bits) {
    Bits out = bits;
    if (rng.bernoulli(p) && !out.empty()) {
      const auto i = static_cast<std::size_t>(rng.below(out.size()));
      out[i] = !out[i];
    }
    return out;
  };
}

Response echo_handler(const Request& request) {
  Response response;
  response.ok = true;
  response.payload = request.payload;
  return response;
}

TEST(Protocol, RequestRoundTrip) {
  Request request;
  request.sequence = 42;
  request.command = Command::kMeasure;
  request.payload = {0x10, 0x20};
  const auto decoded = decode_request(encode_request(request));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->sequence, 42);
  EXPECT_EQ(decoded->command, Command::kMeasure);
  EXPECT_EQ(decoded->payload, request.payload);
}

TEST(Protocol, ResponseRoundTripAndStatus) {
  Response response;
  response.sequence = 7;
  response.ok = false;
  response.payload = {0xAB};
  const auto decoded = decode_response(encode_response(response));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->sequence, 7);
  EXPECT_FALSE(decoded->ok);
}

TEST(Protocol, MalformedFramesRejected) {
  EXPECT_FALSE(decode_request(bits_from_string("101010")).has_value());
  Frame tiny;
  tiny.payload = {0x01};  // too short for seq + cmd
  EXPECT_FALSE(decode_request(encode_frame(tiny)).has_value());
}

TEST(Transactor, CleanChannelSingleAttempt) {
  Transactor tx;
  Request request;
  request.sequence = tx.next_sequence();
  request.command = Command::kPing;
  TransactorStats stats;
  const auto response =
      tx.execute(request, clean_channel(), clean_channel(), echo_handler, &stats);
  ASSERT_TRUE(response.has_value());
  EXPECT_TRUE(response->ok);
  EXPECT_EQ(stats.attempts, 1);
  EXPECT_EQ(stats.crc_failures, 0);
}

TEST(Transactor, RetriesThroughLossyChannel) {
  ironic::util::Rng rng(99);
  Transactor tx(10);
  int delivered = 0;
  TransactorStats stats;
  for (int k = 0; k < 50; ++k) {
    Request request;
    request.sequence = tx.next_sequence();
    request.command = Command::kMeasure;
    request.payload = {static_cast<std::uint8_t>(k)};
    const auto response = tx.execute(request, lossy_channel(0.3, rng),
                                     lossy_channel(0.3, rng), echo_handler, &stats);
    if (response.has_value()) {
      ++delivered;
      EXPECT_EQ(response->payload[0], static_cast<std::uint8_t>(k));
    }
  }
  // Per-attempt success is ~0.49 (0.7 x 0.7); with 10 retries the
  // failure probability collapses below 1e-3 per transaction.
  EXPECT_GE(delivered, 49);
  EXPECT_GT(stats.crc_failures, 0);  // retries actually happened
}

TEST(Transactor, ExhaustedRetriesReturnNothing) {
  Transactor tx(2);
  Request request;
  request.sequence = tx.next_sequence();
  const Channel dead = [](const Bits& bits) {
    Bits out = bits;
    out[0] = !out[0];  // always corrupt the preamble
    return out;
  };
  TransactorStats stats;
  const auto response = tx.execute(request, dead, clean_channel(), echo_handler,
                                   &stats);
  EXPECT_FALSE(response.has_value());
  EXPECT_EQ(stats.attempts, 3);  // initial + 2 retries
  EXPECT_EQ(stats.crc_failures, 3);
}

TEST(Transactor, StaleSequenceRejected) {
  // The implant echoes a wrong sequence: the transactor must not accept.
  Transactor tx(1);
  Request request;
  request.sequence = 5;
  const auto bad_handler = [](const Request&) {
    Response response;
    response.ok = true;
    return response;
  };
  // Wrap the uplink so the sequence byte gets overwritten with garbage.
  const Channel uplink = [](const Bits& bits) {
    auto frame = decode_frame(bits);
    frame->payload[0] = 0x77;  // wrong sequence
    return encode_frame(*frame);
  };
  TransactorStats stats;
  const auto response =
      tx.execute(request, clean_channel(), uplink, bad_handler, &stats);
  EXPECT_FALSE(response.has_value());
  EXPECT_EQ(stats.sequence_mismatches, 2);
}

TEST(Transactor, SequenceCounterWraps) {
  Transactor tx;
  std::uint8_t last = 0;
  for (int i = 0; i < 300; ++i) last = tx.next_sequence();
  EXPECT_EQ(last, static_cast<std::uint8_t>(299));
}

TEST(Transactor, ExhaustedRetriesCountedAndLatencyBooked) {
  Transactor tx(2);
  Request request;
  request.sequence = tx.next_sequence();
  const Channel dead = [](const Bits& bits) {
    Bits out = bits;
    out[0] = !out[0];
    return out;
  };
  TransactorStats stats;
  EXPECT_FALSE(tx.execute(request, dead, clean_channel(), echo_handler, &stats)
                   .has_value());
  EXPECT_EQ(stats.retries_exhausted, 1);
  // One latency entry per attempt; a dead downlink still burns downlink
  // airtime on every attempt.
  ASSERT_EQ(stats.attempt_seconds.size(), 3u);
  EXPECT_GT(stats.bits_on_air, 0u);
  for (const double s : stats.attempt_seconds) EXPECT_GT(s, 0.0);

  // A successful exchange books downlink + uplink bits, so it is longer.
  TransactorStats ok_stats;
  Request ping;
  ping.sequence = tx.next_sequence();
  ASSERT_TRUE(tx.execute(ping, clean_channel(), clean_channel(), echo_handler,
                         &ok_stats)
                  .has_value());
  EXPECT_EQ(ok_stats.retries_exhausted, 0);
  ASSERT_EQ(ok_stats.attempt_seconds.size(), 1u);
  EXPECT_GT(ok_stats.attempt_seconds[0], stats.attempt_seconds[0]);

  // Halving the rate doubles the booked attempt time.
  Transactor slow;
  slow.set_bit_rate(tx.bit_rate() / 2.0);
  TransactorStats slow_stats;
  Request ping2;
  ping2.sequence = slow.next_sequence();  // frame length is payload-determined
  ASSERT_TRUE(slow.execute(ping2, clean_channel(), clean_channel(), echo_handler,
                           &slow_stats)
                  .has_value());
  EXPECT_DOUBLE_EQ(slow_stats.attempt_seconds[0], 2.0 * ok_stats.attempt_seconds[0]);
}

TEST(Protocol, SequenceArithmeticWrapAware) {
  EXPECT_EQ(sequence_delta(5, 5), 0);
  EXPECT_GT(sequence_delta(6, 5), 0);
  EXPECT_LT(sequence_delta(4, 5), 0);
  // The wrap: 0 is one step newer than 255, not 255 steps older.
  EXPECT_EQ(sequence_delta(0, 255), 1);
  EXPECT_TRUE(sequence_newer(0, 255));
  EXPECT_FALSE(sequence_newer(255, 0));
  // Within half the space the nearer interpretation wins: 200 -> 100 is
  // 100 steps back, not 156 forward.
  EXPECT_FALSE(sequence_newer(100, 200));
  EXPECT_TRUE(sequence_newer(200, 100));
  // Exactly half a space away reads as "older" (delta == -128).
  EXPECT_FALSE(sequence_newer(128, 0));
  EXPECT_TRUE(sequence_newer(127, 0));
}

TEST(Transactor, DedupSurvivesSequenceWraparound) {
  // 600 exchanges (two full wraps). The uplink corrupts the first
  // delivery of every response, so the implant sees each request twice;
  // the dedup layer must execute the side-effecting handler exactly once
  // per exchange — including at 255 -> 0, where a naive `seq <= last`
  // staleness check would replay the stale cached response forever.
  Transactor tx(3);
  ImplantDedup dedup;
  int executions = 0;
  TransactorStats stats;
  const auto measure = [&](const Request& request) {
    ++executions;
    Response response;
    response.ok = true;
    response.payload = request.payload;
    return response;
  };
  int uplink_calls = 0;
  const Channel flaky_uplink = [&](const Bits& bits) {
    Bits out = bits;
    if (++uplink_calls % 2 == 1) out[0] = !out[0];  // kill first delivery
    return out;
  };
  for (int k = 0; k < 600; ++k) {
    Request request;
    request.sequence = tx.next_sequence();
    request.command = Command::kMeasure;
    request.payload = {static_cast<std::uint8_t>(k & 0xFF),
                       static_cast<std::uint8_t>((k >> 8) & 0xFF)};
    const auto response = tx.execute(
        request, clean_channel(), flaky_uplink,
        [&](const Request& rx) { return dedup.handle(rx, measure, &stats); },
        &stats);
    ASSERT_TRUE(response.has_value()) << "exchange " << k;
    // The replayed response must be THIS exchange's data, not a stale
    // cache entry from before the wrap.
    ASSERT_EQ(response->payload.size(), 2u);
    EXPECT_EQ(response->payload[0], static_cast<std::uint8_t>(k & 0xFF));
    EXPECT_EQ(response->payload[1], static_cast<std::uint8_t>((k >> 8) & 0xFF));
  }
  EXPECT_EQ(executions, 600);               // exactly once per exchange
  EXPECT_EQ(stats.duplicate_deliveries, 600);  // every retry was absorbed
  EXPECT_EQ(stats.retries_exhausted, 0);
}

TEST(Transactor, DedupHistoryBoundedBySlidingWindow) {
  // A multi-hour fleet soak wraps the sequence space thousands of times;
  // the dedup history must stay bounded at the window capacity while
  // still executing every fresh sequence exactly once.
  ImplantDedup dedup(4);
  EXPECT_EQ(dedup.window_capacity(), 4u);
  EXPECT_EQ(dedup.cached(), 0u);
  int executions = 0;
  const auto measure = [&](const Request& request) {
    ++executions;
    Response response;
    response.ok = true;
    response.payload = {request.sequence};
    return response;
  };
  for (int k = 0; k < 100; ++k) {
    Request request;
    request.sequence = static_cast<std::uint8_t>(k);
    request.command = Command::kMeasure;
    dedup.handle(request, measure);
    EXPECT_LE(dedup.cached(), dedup.window_capacity());
  }
  EXPECT_EQ(executions, 100);
  EXPECT_EQ(dedup.cached(), 4u);  // saturated, not grown

  // A duplicate still inside the window replays its OWN cached response
  // without re-executing the handler.
  Request dup;
  dup.sequence = 97;
  dup.command = Command::kMeasure;
  const Response replay = dedup.handle(dup, measure);
  EXPECT_EQ(executions, 100);
  ASSERT_EQ(replay.payload.size(), 1u);
  EXPECT_EQ(replay.payload[0], 97);

  // A duplicate that aged out of the window must still not re-execute
  // (exactly-once survives the bound); the fallback replay is the newest
  // entry, which the transactor discards as a sequence mismatch.
  Request ancient;
  ancient.sequence = 42;
  ancient.command = Command::kMeasure;
  const Response stale = dedup.handle(ancient, measure);
  EXPECT_EQ(executions, 100);
  ASSERT_EQ(stale.payload.size(), 1u);
  EXPECT_EQ(stale.payload[0], 99);
  EXPECT_EQ(dedup.cached(), 4u);
}

TEST(Transactor, StaleResponseClassifiedWrapAware) {
  // The uplink delays: it replays the previous response frame once
  // before delivering the current one — the classic late-frame hazard.
  // Run past the wrap; every first attempt sees a genuinely OLDER
  // sequence, which must land in stale_responses (subset of
  // sequence_mismatches) and never be accepted.
  Transactor tx(3);
  Bits delayed;
  const Channel delaying_uplink = [&](const Bits& bits) {
    if (delayed.empty()) {
      delayed = bits;
      return bits;
    }
    Bits out = delayed;
    delayed = bits;
    return out;
  };
  TransactorStats stats;
  int delivered = 0;
  for (int k = 0; k < 300; ++k) {
    Request request;
    request.sequence = tx.next_sequence();
    request.command = Command::kMeasure;
    request.payload = {static_cast<std::uint8_t>(k & 0xFF)};
    const auto response = tx.execute(request, clean_channel(), delaying_uplink,
                                     echo_handler, &stats);
    if (response.has_value()) {
      ++delivered;
      EXPECT_EQ(response->payload[0], static_cast<std::uint8_t>(k & 0xFF));
    }
  }
  EXPECT_EQ(delivered, 300);
  // Exchange k >= 1 rejects one stale frame then succeeds; across the
  // wrap these must still classify as stale, not as forward jumps.
  EXPECT_EQ(stats.stale_responses, 299);
  EXPECT_EQ(stats.sequence_mismatches, 299);
}

}  // namespace
