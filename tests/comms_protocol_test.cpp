#include <gtest/gtest.h>

#include "src/comms/protocol.hpp"
#include "src/util/rng.hpp"

namespace {

using namespace ironic::comms;

Channel clean_channel() {
  return [](const Bits& bits) { return bits; };
}

// Flips one random bit with probability p per transit.
Channel lossy_channel(double p, ironic::util::Rng& rng) {
  return [p, &rng](const Bits& bits) {
    Bits out = bits;
    if (rng.bernoulli(p) && !out.empty()) {
      const auto i = static_cast<std::size_t>(rng.below(out.size()));
      out[i] = !out[i];
    }
    return out;
  };
}

Response echo_handler(const Request& request) {
  Response response;
  response.ok = true;
  response.payload = request.payload;
  return response;
}

TEST(Protocol, RequestRoundTrip) {
  Request request;
  request.sequence = 42;
  request.command = Command::kMeasure;
  request.payload = {0x10, 0x20};
  const auto decoded = decode_request(encode_request(request));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->sequence, 42);
  EXPECT_EQ(decoded->command, Command::kMeasure);
  EXPECT_EQ(decoded->payload, request.payload);
}

TEST(Protocol, ResponseRoundTripAndStatus) {
  Response response;
  response.sequence = 7;
  response.ok = false;
  response.payload = {0xAB};
  const auto decoded = decode_response(encode_response(response));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->sequence, 7);
  EXPECT_FALSE(decoded->ok);
}

TEST(Protocol, MalformedFramesRejected) {
  EXPECT_FALSE(decode_request(bits_from_string("101010")).has_value());
  Frame tiny;
  tiny.payload = {0x01};  // too short for seq + cmd
  EXPECT_FALSE(decode_request(encode_frame(tiny)).has_value());
}

TEST(Transactor, CleanChannelSingleAttempt) {
  Transactor tx;
  Request request;
  request.sequence = tx.next_sequence();
  request.command = Command::kPing;
  TransactorStats stats;
  const auto response =
      tx.execute(request, clean_channel(), clean_channel(), echo_handler, &stats);
  ASSERT_TRUE(response.has_value());
  EXPECT_TRUE(response->ok);
  EXPECT_EQ(stats.attempts, 1);
  EXPECT_EQ(stats.crc_failures, 0);
}

TEST(Transactor, RetriesThroughLossyChannel) {
  ironic::util::Rng rng(99);
  Transactor tx(10);
  int delivered = 0;
  TransactorStats stats;
  for (int k = 0; k < 50; ++k) {
    Request request;
    request.sequence = tx.next_sequence();
    request.command = Command::kMeasure;
    request.payload = {static_cast<std::uint8_t>(k)};
    const auto response = tx.execute(request, lossy_channel(0.3, rng),
                                     lossy_channel(0.3, rng), echo_handler, &stats);
    if (response.has_value()) {
      ++delivered;
      EXPECT_EQ(response->payload[0], static_cast<std::uint8_t>(k));
    }
  }
  // Per-attempt success is ~0.49 (0.7 x 0.7); with 10 retries the
  // failure probability collapses below 1e-3 per transaction.
  EXPECT_GE(delivered, 49);
  EXPECT_GT(stats.crc_failures, 0);  // retries actually happened
}

TEST(Transactor, ExhaustedRetriesReturnNothing) {
  Transactor tx(2);
  Request request;
  request.sequence = tx.next_sequence();
  const Channel dead = [](const Bits& bits) {
    Bits out = bits;
    out[0] = !out[0];  // always corrupt the preamble
    return out;
  };
  TransactorStats stats;
  const auto response = tx.execute(request, dead, clean_channel(), echo_handler,
                                   &stats);
  EXPECT_FALSE(response.has_value());
  EXPECT_EQ(stats.attempts, 3);  // initial + 2 retries
  EXPECT_EQ(stats.crc_failures, 3);
}

TEST(Transactor, StaleSequenceRejected) {
  // The implant echoes a wrong sequence: the transactor must not accept.
  Transactor tx(1);
  Request request;
  request.sequence = 5;
  const auto bad_handler = [](const Request&) {
    Response response;
    response.ok = true;
    return response;
  };
  // Wrap the uplink so the sequence byte gets overwritten with garbage.
  const Channel uplink = [](const Bits& bits) {
    auto frame = decode_frame(bits);
    frame->payload[0] = 0x77;  // wrong sequence
    return encode_frame(*frame);
  };
  TransactorStats stats;
  const auto response =
      tx.execute(request, clean_channel(), uplink, bad_handler, &stats);
  EXPECT_FALSE(response.has_value());
  EXPECT_EQ(stats.sequence_mismatches, 2);
}

TEST(Transactor, SequenceCounterWraps) {
  Transactor tx;
  std::uint8_t last = 0;
  for (int i = 0; i < 300; ++i) last = tx.next_sequence();
  EXPECT_EQ(last, static_cast<std::uint8_t>(299));
}

}  // namespace
