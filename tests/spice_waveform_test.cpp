#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "src/spice/waveform.hpp"
#include "src/util/constants.hpp"

namespace {

using ironic::spice::Waveform;
using ironic::spice::square_clock;

TEST(Waveform, DcIsConstant) {
  const auto w = Waveform::dc(3.3);
  EXPECT_DOUBLE_EQ(w(0.0), 3.3);
  EXPECT_DOUBLE_EQ(w(1e6), 3.3);
}

TEST(Waveform, DefaultIsZero) {
  const Waveform w;
  EXPECT_DOUBLE_EQ(w(1.0), 0.0);
}

TEST(Waveform, SineAmplitudeFrequencyOffset) {
  const auto w = Waveform::sine(2.0, 1.0, 1.0);  // 2 V, 1 Hz, +1 V offset
  EXPECT_NEAR(w(0.0), 1.0, 1e-12);
  EXPECT_NEAR(w(0.25), 3.0, 1e-12);
  EXPECT_NEAR(w(0.75), -1.0, 1e-12);
}

TEST(Waveform, SineDelayHoldsOffsetBefore) {
  const auto w = Waveform::sine(1.0, 10.0, 0.5, /*delay=*/1.0);
  EXPECT_DOUBLE_EQ(w(0.5), 0.5);
  EXPECT_NEAR(w(1.0 + 0.025), 1.5, 1e-12);  // quarter period after delay
}

TEST(Waveform, PulseShape) {
  // 0 -> 1, delay 1 s, rise 0.1, width 0.5, fall 0.1, period 2.
  const auto w = Waveform::pulse(0.0, 1.0, 1.0, 0.1, 0.1, 0.5, 2.0);
  EXPECT_DOUBLE_EQ(w(0.5), 0.0);
  EXPECT_NEAR(w(1.05), 0.5, 1e-12);   // mid-rise
  EXPECT_DOUBLE_EQ(w(1.3), 1.0);      // top
  EXPECT_NEAR(w(1.65), 0.5, 1e-12);   // mid-fall
  EXPECT_DOUBLE_EQ(w(1.9), 0.0);      // bottom
  EXPECT_DOUBLE_EQ(w(3.3), 1.0);      // next period top
}

TEST(Waveform, PulseBreakpointsCoverCorners) {
  const auto w = Waveform::pulse(0.0, 1.0, 1.0, 0.1, 0.1, 0.5, 2.0);
  std::vector<double> bps;
  w.breakpoints(0.0, 4.0, bps);
  std::sort(bps.begin(), bps.end());
  // First period corners: 1.0, 1.1, 1.6, 1.7; second period: 3.0, 3.1, 3.6, 3.7.
  ASSERT_GE(bps.size(), 8u);
  EXPECT_NEAR(bps[0], 1.0, 1e-12);
  EXPECT_NEAR(bps[1], 1.1, 1e-12);
  EXPECT_NEAR(bps[2], 1.6, 1e-12);
  EXPECT_NEAR(bps[3], 1.7, 1e-12);
  EXPECT_TRUE(std::any_of(bps.begin(), bps.end(),
                          [](double t) { return std::abs(t - 3.0) < 1e-12; }));
}

TEST(Waveform, PwlInterpolatesCorners) {
  const auto w = Waveform::pwl({0.0, 1.0, 2.0}, {0.0, 2.0, 0.0});
  EXPECT_DOUBLE_EQ(w(0.5), 1.0);
  EXPECT_DOUBLE_EQ(w(1.5), 1.0);
  EXPECT_DOUBLE_EQ(w(5.0), 0.0);
  std::vector<double> bps;
  w.breakpoints(0.0, 3.0, bps);
  EXPECT_EQ(bps.size(), 2u);  // interior corners only (0 and 3 excluded)
}

TEST(Waveform, ModulatedSineEnvelopeScalesCarrier) {
  ironic::util::PiecewiseLinear env({0.0, 1.0}, {1.0, 3.0});
  const auto w = Waveform::modulated_sine(1.0, env);
  // At t = 0.25 the carrier peaks (+1); envelope there is 1.5.
  EXPECT_NEAR(w(0.25), 1.5, 1e-12);
  // At t = 0.75 the carrier is -1; envelope is 2.5.
  EXPECT_NEAR(w(0.75), -2.5, 1e-12);
}

TEST(Waveform, CustomFunctionAndBreakpoints) {
  const auto w = Waveform::custom([](double t) { return t * t; }, {0.5});
  EXPECT_DOUBLE_EQ(w(3.0), 9.0);
  std::vector<double> bps;
  w.breakpoints(0.0, 1.0, bps);
  ASSERT_EQ(bps.size(), 1u);
  EXPECT_DOUBLE_EQ(bps[0], 0.5);
}

TEST(Waveform, CustomRejectsNull) {
  EXPECT_THROW(Waveform::custom(nullptr), std::invalid_argument);
}

TEST(Waveform, SquareClockDutyCycle) {
  const auto clk = square_clock(0.0, 1.8, 1e6, 0.0, 1e-9);
  // Middle of the high phase.
  EXPECT_DOUBLE_EQ(clk(0.25e-6), 1.8);
  // Middle of the low phase.
  EXPECT_DOUBLE_EQ(clk(0.75e-6), 0.0);
  // Next period high again.
  EXPECT_DOUBLE_EQ(clk(1.25e-6), 1.8);
}

}  // namespace
