#include <gtest/gtest.h>

#include "src/pm/digital.hpp"
#include "src/spice/devices_passive.hpp"
#include "src/spice/devices_sources.hpp"
#include "src/spice/engine.hpp"

namespace {

using namespace ironic::pm;
using namespace ironic::spice;

// DC evaluation of a gate at fixed logic inputs.
double gate_dc(const char* kind, double a, double b) {
  Circuit ckt;
  const auto vdd = ckt.node("vdd");
  const auto na = ckt.node("a");
  const auto nb = ckt.node("b");
  ckt.add<VoltageSource>("Vdd", vdd, kGround, Waveform::dc(1.8));
  ckt.add<VoltageSource>("Va", na, kGround, Waveform::dc(a));
  ckt.add<VoltageSource>("Vb", nb, kGround, Waveform::dc(b));
  const NodeId out = std::string(kind) == "nand"
                         ? build_nand(ckt, "g", na, nb, vdd)
                         : build_nor(ckt, "g", na, nb, vdd);
  // DC can chatter on ratioed logic; settle through a short transient.
  TransientOptions opts;
  opts.t_stop = 2e-6;
  opts.dt_max = 1e-9;
  const auto res = run_transient(ckt, opts);
  (void)out;
  return res.value_at("v(g.out)", 2e-6);
}

TEST(DigitalGates, NandTruthTable) {
  EXPECT_GT(gate_dc("nand", 0.0, 0.0), 1.6);
  EXPECT_GT(gate_dc("nand", 1.8, 0.0), 1.6);
  EXPECT_GT(gate_dc("nand", 0.0, 1.8), 1.6);
  EXPECT_LT(gate_dc("nand", 1.8, 1.8), 0.2);
}

TEST(DigitalGates, NorTruthTable) {
  EXPECT_GT(gate_dc("nor", 0.0, 0.0), 1.6);
  EXPECT_LT(gate_dc("nor", 1.8, 0.0), 0.2);
  EXPECT_LT(gate_dc("nor", 0.0, 1.8), 0.2);
  EXPECT_LT(gate_dc("nor", 1.8, 1.8), 0.2);
}

TEST(DigitalGates, InverterSwitchesAroundMidrail) {
  Circuit ckt;
  const auto vdd = ckt.node("vdd");
  const auto in = ckt.node("in");
  ckt.add<VoltageSource>("Vdd", vdd, kGround, Waveform::dc(1.8));
  ckt.add<VoltageSource>("Vin", in, kGround,
                         Waveform::pwl({0.0, 10e-6}, {0.0, 1.8}));
  build_inverter(ckt, "inv", in, vdd);
  TransientOptions opts;
  opts.t_stop = 10e-6;
  opts.dt_max = 5e-9;
  const auto res = run_transient(ckt, opts);
  EXPECT_GT(res.value_at("v(inv.out)", 1e-6), 1.6);   // input low
  EXPECT_LT(res.value_at("v(inv.out)", 9.5e-6), 0.2); // input high
  // Switching threshold in the middle third of the rail.
  double t_switch = 0.0;
  ASSERT_TRUE(res.first_crossing("v(inv.out)", 0.9, 0.0, /*rising=*/false, t_switch));
  const double vin_at_switch = res.value_at("v(in)", t_switch);
  EXPECT_GT(vin_at_switch, 0.6);
  EXPECT_LT(vin_at_switch, 1.2);
}

TEST(NonOverlap, PhasesNeverBothHigh) {
  Circuit ckt;
  const auto vdd = ckt.node("vdd");
  const auto clk = ckt.node("clk");
  ckt.add<VoltageSource>("Vdd", vdd, kGround, Waveform::dc(1.8));
  ckt.add<VoltageSource>("Vclk", clk, kGround,
                         square_clock(0.0, 1.8, 100e3, 0.0, 20e-9));
  const auto gen = build_nonoverlap_generator(ckt, "no", clk, vdd);

  TransientOptions opts;
  opts.t_stop = 40e-6;  // four clock periods
  opts.dt_max = 5e-9;
  opts.record_signals = {"v(" + gen.phi1_name + ")", "v(" + gen.phi2_name + ")"};
  const auto res = run_transient(ckt, opts);

  const auto p1 = res.signal("v(" + gen.phi1_name + ")");
  const auto p2 = res.signal("v(" + gen.phi2_name + ")");
  const double threshold = 0.9;
  for (std::size_t i = 0; i < p1.size(); ++i) {
    ASSERT_FALSE(p1[i] > threshold && p2[i] > threshold)
        << "overlap at sample " << i;
  }
}

TEST(NonOverlap, BothPhasesActuallyToggle) {
  Circuit ckt;
  const auto vdd = ckt.node("vdd");
  const auto clk = ckt.node("clk");
  ckt.add<VoltageSource>("Vdd", vdd, kGround, Waveform::dc(1.8));
  ckt.add<VoltageSource>("Vclk", clk, kGround,
                         square_clock(0.0, 1.8, 100e3, 0.0, 20e-9));
  const auto gen = build_nonoverlap_generator(ckt, "no", clk, vdd);
  TransientOptions opts;
  opts.t_stop = 40e-6;
  opts.dt_max = 5e-9;
  opts.record_signals = {"v(" + gen.phi1_name + ")", "v(" + gen.phi2_name + ")"};
  const auto res = run_transient(ckt, opts);
  // Skip the first period (start-up) and verify both phases swing.
  EXPECT_GT(res.max_between("v(" + gen.phi1_name + ")", 10e-6, 40e-6), 1.6);
  EXPECT_LT(res.min_between("v(" + gen.phi1_name + ")", 10e-6, 40e-6), 0.2);
  EXPECT_GT(res.max_between("v(" + gen.phi2_name + ")", 10e-6, 40e-6), 1.6);
  EXPECT_LT(res.min_between("v(" + gen.phi2_name + ")", 10e-6, 40e-6), 0.2);
}

TEST(NonOverlap, GuardGapTracksRcDelay) {
  const auto measure_gap = [](double delay_c) {
    Circuit ckt;
    const auto vdd = ckt.node("vdd");
    const auto clk = ckt.node("clk");
    ckt.add<VoltageSource>("Vdd", vdd, kGround, Waveform::dc(1.8));
    ckt.add<VoltageSource>("Vclk", clk, kGround,
                           square_clock(0.0, 1.8, 100e3, 0.0, 20e-9));
    const auto gen = build_nonoverlap_generator(ckt, "no", clk, vdd, 100e3, delay_c);
    TransientOptions opts;
    opts.t_stop = 30e-6;
    opts.dt_max = 5e-9;
    opts.record_signals = {"v(" + gen.phi1_name + ")", "v(" + gen.phi2_name + ")"};
    const auto res = run_transient(ckt, opts);
    // Gap between phi2 falling and phi1 rising within the third period.
    double t_fall = 0.0, t_rise = 0.0;
    if (!res.first_crossing("v(" + gen.phi2_name + ")", 0.9, 20e-6, false, t_fall)) {
      return -1.0;
    }
    if (!res.first_crossing("v(" + gen.phi1_name + ")", 0.9, t_fall, true, t_rise)) {
      return -1.0;
    }
    return t_rise - t_fall;
  };
  const double gap_small = measure_gap(0.5e-12);
  const double gap_large = measure_gap(3e-12);
  ASSERT_GT(gap_small, 0.0);
  ASSERT_GT(gap_large, 0.0);
  EXPECT_GT(gap_large, gap_small * 1.8);
}

}  // namespace
