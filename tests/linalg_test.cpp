#include <gtest/gtest.h>

#include <vector>
#include <cmath>
#include <limits>

#include "src/linalg/lu.hpp"
#include "src/linalg/matrix.hpp"

namespace {

using ironic::linalg::LuFactorization;
using ironic::linalg::Matrix;
using ironic::linalg::SingularMatrixError;
using ironic::linalg::Vector;

TEST(Matrix, IdentityAndIndexing) {
  auto eye = Matrix::identity(3);
  EXPECT_DOUBLE_EQ(eye(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(eye(1, 2), 0.0);
  eye(1, 2) = 5.0;
  EXPECT_DOUBLE_EQ(eye(1, 2), 5.0);
}

TEST(Matrix, MultiplyVector) {
  Matrix a(2, 3);
  a(0, 0) = 1.0; a(0, 1) = 2.0; a(0, 2) = 3.0;
  a(1, 0) = 4.0; a(1, 1) = 5.0; a(1, 2) = 6.0;
  const Vector x{1.0, 1.0, 1.0};
  const Vector y = a.multiply(x);
  ASSERT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[1], 15.0);
}

TEST(Matrix, MultiplyMatrix) {
  Matrix a(2, 2);
  a(0, 0) = 1.0; a(0, 1) = 2.0;
  a(1, 0) = 3.0; a(1, 1) = 4.0;
  const Matrix b = a.multiply(Matrix::identity(2));
  EXPECT_DOUBLE_EQ(b(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(b(1, 0), 3.0);
}

TEST(Matrix, Transposed) {
  Matrix a(2, 3);
  a(0, 2) = 7.0;
  const Matrix at = a.transposed();
  EXPECT_EQ(at.rows(), 3u);
  EXPECT_EQ(at.cols(), 2u);
  EXPECT_DOUBLE_EQ(at(2, 0), 7.0);
}

TEST(Matrix, ShapeMismatchThrows) {
  Matrix a(2, 3);
  const Vector x{1.0, 2.0};
  EXPECT_THROW(a.multiply(x), std::invalid_argument);
}

TEST(Lu, SolvesKnownSystem) {
  // [2 1; 1 3] x = [3; 5] -> x = [0.8, 1.4]
  Matrix a(2, 2);
  a(0, 0) = 2.0; a(0, 1) = 1.0;
  a(1, 0) = 1.0; a(1, 1) = 3.0;
  const Vector x = ironic::linalg::solve(a, Vector{3.0, 5.0});
  EXPECT_NEAR(x[0], 0.8, 1e-12);
  EXPECT_NEAR(x[1], 1.4, 1e-12);
}

TEST(Lu, RequiresPivoting) {
  // Zero on the leading diagonal forces a row swap.
  Matrix a(2, 2);
  a(0, 0) = 0.0; a(0, 1) = 1.0;
  a(1, 0) = 1.0; a(1, 1) = 0.0;
  const Vector x = ironic::linalg::solve(a, Vector{2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Lu, ResidualSmallOnRandomSystem) {
  const std::size_t n = 24;
  Matrix a(n, n);
  Vector b(n);
  // Deterministic pseudo-random fill.
  unsigned s = 12345;
  const auto next = [&s]() {
    s = s * 1103515245u + 12345u;
    return static_cast<double>((s >> 8) % 2000) / 1000.0 - 1.0;
  };
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) a(r, c) = next();
    a(r, r) += 4.0;  // diagonally dominant -> well conditioned
    b[r] = next();
  }
  const Vector x = ironic::linalg::solve(a, b);
  const Vector ax = a.multiply(x);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(ax[i], b[i], 1e-10);
}

TEST(Lu, SingularMatrixThrows) {
  Matrix a(2, 2);
  a(0, 0) = 1.0; a(0, 1) = 2.0;
  a(1, 0) = 2.0; a(1, 1) = 4.0;  // rank 1
  EXPECT_THROW(LuFactorization{a}, SingularMatrixError);
}

TEST(Lu, NanPivotThrowsInsteadOfPropagating) {
  // A NaN stamp (0/0 in a device model upstream) must be caught at the
  // pivot check, not carried through the factorization into the answer.
  Matrix a(2, 2);
  a(0, 0) = std::numeric_limits<double>::quiet_NaN(); a(0, 1) = 1.0;
  a(1, 0) = 1.0; a(1, 1) = 1.0;
  EXPECT_THROW(LuFactorization{a}, SingularMatrixError);
}

TEST(Lu, NonSquareThrows) {
  Matrix a(2, 3);
  EXPECT_THROW(LuFactorization{a}, std::invalid_argument);
}

TEST(Lu, ReuseFactorizationForMultipleRhs) {
  Matrix a(3, 3);
  a(0, 0) = 4.0; a(0, 1) = 1.0; a(0, 2) = 0.0;
  a(1, 0) = 1.0; a(1, 1) = 3.0; a(1, 2) = 1.0;
  a(2, 0) = 0.0; a(2, 1) = 1.0; a(2, 2) = 2.0;
  const LuFactorization lu(a);
  for (int k = 0; k < 3; ++k) {
    Vector b(3, 0.0);
    b[static_cast<std::size_t>(k)] = 1.0;
    const Vector x = lu.solve(b);
    const Vector ax = a.multiply(x);
    for (std::size_t i = 0; i < 3; ++i) {
      EXPECT_NEAR(ax[i], b[i], 1e-12);
    }
  }
}

TEST(Lu, DiagonalRatioReasonable) {
  const auto eye = Matrix::identity(4);
  const LuFactorization lu(eye);
  EXPECT_NEAR(lu.diagonal_ratio(), 1.0, 1e-12);
}

TEST(VectorOps, AxpyDotNorms) {
  Vector x{1.0, 2.0};
  Vector y{10.0, 20.0};
  ironic::linalg::axpy(2.0, x, y);
  EXPECT_DOUBLE_EQ(y[0], 12.0);
  EXPECT_DOUBLE_EQ(y[1], 24.0);
  EXPECT_DOUBLE_EQ(ironic::linalg::dot(x, x), 5.0);
  EXPECT_DOUBLE_EQ(ironic::linalg::norm_inf(y), 24.0);
  EXPECT_NEAR(ironic::linalg::norm2(x), std::sqrt(5.0), 1e-14);
}

}  // namespace
