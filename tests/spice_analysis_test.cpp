// Static-analysis framework gates (DESIGN.md §13).
//
// The load-bearing contracts pinned here:
//   - the symbolic fill prediction matches SparseSolver's runtime
//     stats().factor_nnz EXACTLY on every shipped example netlist
//     (same merge, same column order, same pivot rule)
//   - the cost-model dense/sparse choice agrees with the measured
//     crossover: every small example stays dense, the 122-unknown
//     tissue ladder goes sparse
//   - the dt recommendation never exceeds the smallest stimulus
//     breakpoint interval, over the shipped + broken corpus
//   - the static envelope always contains the actual DC operating
//     point wherever solve_dc converges
//   - run_transient validates once (the internal DC solve must not
//     re-lint), and the engine honors the solver/dt hints only where
//     the caller left the options at auto.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/obs/metrics.hpp"
#include "src/spice/analysis/analysis.hpp"
#include "src/spice/circuit.hpp"
#include "src/spice/devices_nonlinear.hpp"
#include "src/spice/devices_passive.hpp"
#include "src/spice/devices_sources.hpp"
#include "src/spice/engine.hpp"
#include "src/spice/netlist_parser.hpp"

namespace {

using namespace ironic;
using namespace ironic::spice;

const std::filesystem::path kSourceDir = IRONIC_SOURCE_DIR;

std::string read_file(const std::filesystem::path& p) {
  std::ifstream in(p);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

std::vector<std::filesystem::path> netlists_in(const char* dir) {
  std::vector<std::filesystem::path> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(kSourceDir / dir)) {
    if (entry.path().extension() == ".cir") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::vector<std::filesystem::path> all_corpus() {
  auto files = netlists_in("examples/netlists");
  const auto broken = netlists_in("tests/netlists");
  files.insert(files.end(), broken.begin(), broken.end());
  return files;
}

}  // namespace

// The headline exactness gate: predicted factor nnz == the sparse
// backend's own count after a real DC solve, for every example.
TEST(Analysis, PredictedFillMatchesSparseRuntimeExactly) {
  for (const auto& path : netlists_in("examples/netlists")) {
    SCOPED_TRACE(path.filename().string());
    Circuit circuit;
    parse_netlist(circuit, read_file(path));
    const auto report = analysis::analyze(circuit);
    ASSERT_GT(report.sparsity.unknowns, 0u);
    EXPECT_FALSE(report.sparsity.prediction.singular);

    DcOptions options;
    options.solver = linalg::SolverKind::kSparse;
    const auto dc = solve_dc(circuit, options);
    ASSERT_TRUE(dc.converged);
    const auto& stats =
        circuit.acquire_solver(linalg::SolverKind::kSparse).stats();
    EXPECT_EQ(report.sparsity.prediction.factor_nnz, stats.factor_nnz);
    EXPECT_EQ(report.sparsity.prediction.pattern_nnz, stats.nnz);
  }
}

// The static choice must agree with the measured crossover on this
// corpus: everything under the historical 32-unknown threshold is
// faster dense; the tissue ladder (122 unknowns) is faster sparse.
TEST(Analysis, SolverChoiceMatchesMeasuredCrossover) {
  for (const auto& path : netlists_in("examples/netlists")) {
    SCOPED_TRACE(path.filename().string());
    Circuit circuit;
    parse_netlist(circuit, read_file(path));
    const auto report = analysis::analyze(circuit);
    if (path.filename() == "tissue_ladder.cir") {
      EXPECT_EQ(report.sparsity.unknowns, 122u);
      EXPECT_STREQ(report.sparsity.choice(), "sparse");
    } else {
      EXPECT_LT(report.sparsity.unknowns, 32u);
      EXPECT_STREQ(report.sparsity.choice(), "dense");
    }
  }
}

// Property: the recommended step never exceeds the smallest breakpoint
// interval — a recommendation that steps over a stimulus edge is wrong
// no matter what the time constants say.
TEST(Analysis, DtRecommendationNeverExceedsBreakpointSpacing) {
  for (const auto& path : all_corpus()) {
    SCOPED_TRACE(path.filename().string());
    Circuit circuit;
    try {
      parse_netlist(circuit, read_file(path));
    } catch (const std::exception&) {
      continue;  // parse-error fixtures have no circuit to analyze
    }
    const auto report = analysis::analyze(circuit);
    if (report.timescale.dt_recommend > 0.0 &&
        report.timescale.t_breakpoint_min > 0.0) {
      EXPECT_LE(report.timescale.dt_recommend,
                report.timescale.t_breakpoint_min);
    }
  }
}

// Property: wherever a DC operating point exists, it lies inside the
// static envelope (the bound is conservative, never wrong).
TEST(Analysis, EnvelopeContainsDcOperatingPoint) {
  for (const auto& path : all_corpus()) {
    SCOPED_TRACE(path.filename().string());
    Circuit circuit;
    try {
      parse_netlist(circuit, read_file(path));
    } catch (const std::exception&) {
      continue;
    }
    const auto report = analysis::analyze(circuit);
    DcResult dc;
    try {
      dc = solve_dc(circuit);
    } catch (const std::exception&) {
      continue;  // validation-rejected fixtures have no operating point
    }
    if (!dc.converged) continue;
    ASSERT_EQ(report.envelope.nodes.size(), circuit.num_nodes());
    for (std::size_t i = 0; i < circuit.num_nodes(); ++i) {
      const auto& band = report.envelope.nodes[i];
      const double v = dc.x[i];
      const double slack = 1e-6 + 1e-9 * std::abs(v);
      EXPECT_GE(v, band.lo - slack) << "node " << band.node;
      EXPECT_LE(v, band.hi + slack) << "node " << band.node;
    }
  }
}

// Shipped examples are strict-clean through the whole pipeline: no lint
// findings and no analysis.* diagnostics (the CI analyze stage sweeps
// the same corpus through the CLI).
TEST(Analysis, ExampleNetlistsAreStrictClean) {
  for (const auto& path : netlists_in("examples/netlists")) {
    SCOPED_TRACE(path.filename().string());
    Circuit circuit;
    parse_netlist(circuit, read_file(path));
    const auto report = analysis::analyze(circuit);
    EXPECT_EQ(report.errors(), 0u);
    EXPECT_EQ(report.warnings(), 0u);
  }
}

TEST(Analysis, CacheServesUnchangedCircuitAndInvalidatesOnTopologyChange) {
  Circuit circuit;
  const auto a = circuit.node("a");
  circuit.add<VoltageSource>("V1", a, kGround, Waveform::dc(1.0));
  circuit.add<Resistor>("R1", a, kGround, 1e3);

  analysis::AnalysisManager manager;
  const auto& first = manager.run(circuit);
  for (const auto& timing : first.timings) EXPECT_FALSE(timing.cached);

  const auto& second = manager.run(circuit);
  ASSERT_FALSE(second.timings.empty());
  for (const auto& timing : second.timings) EXPECT_TRUE(timing.cached);

  // A topology change bumps the revision and re-runs the passes.
  circuit.add<Resistor>("R2", a, kGround, 2e3);
  const auto& third = manager.run(circuit);
  for (const auto& timing : third.timings) EXPECT_FALSE(timing.cached);

  manager.invalidate();
  const auto& fourth = manager.run(circuit);
  for (const auto& timing : fourth.timings) EXPECT_FALSE(timing.cached);
}

TEST(Analysis, ApplyHintsInstallsSolverAndDtRecommendations) {
  Circuit circuit;
  const auto in = circuit.node("in");
  const auto out = circuit.node("out");
  circuit.add<VoltageSource>("V1", in, kGround, Waveform::sine(1.0, 1e3));
  circuit.add<Resistor>("R1", in, out, 1e3);
  circuit.add<Capacitor>("C1", out, kGround, 1e-6);

  analysis::AnalysisManager manager;
  const auto& report = manager.apply_hints(circuit);
  ASSERT_GT(report.timescale.dt_recommend, 0.0);
  EXPECT_EQ(circuit.dt_hint(), report.timescale.dt_recommend);
  EXPECT_EQ(circuit.solver_hint(), report.sparsity.cost.recommendation);
  // kAuto now resolves to the recommendation; explicit kinds still win.
  EXPECT_EQ(circuit.acquire_solver(linalg::SolverKind::kAuto).kind(),
            report.sparsity.cost.recommendation);
  EXPECT_EQ(circuit.acquire_solver(linalg::SolverKind::kSparse).kind(),
            linalg::SolverKind::kSparse);
}

// The engine's dt_max=0 default defers to the circuit's hint; an
// explicit dt_max must override it; negative is rejected.
TEST(Analysis, TransientHonorsDtHintOnlyWhenAuto) {
  const auto build = [](Circuit& circuit) {
    const auto in = circuit.node("in");
    const auto out = circuit.node("out");
    circuit.add<VoltageSource>("V1", in, kGround, Waveform::dc(1.0));
    circuit.add<Resistor>("R1", in, out, 1e3);
    circuit.add<Capacitor>("C1", out, kGround, 1e-3);
  };

  TransientOptions options;
  options.t_stop = 1e-4;
  options.record_signals = {"v(out)"};

  Circuit hinted;
  build(hinted);
  hinted.set_dt_hint(1e-5);
  const auto with_hint = run_transient(hinted, options);

  Circuit explicit_dt;
  build(explicit_dt);
  explicit_dt.set_dt_hint(1e-5);
  TransientOptions explicit_options = options;
  explicit_options.dt_max = 1e-6;  // caller's choice beats the hint
  const auto with_explicit = run_transient(explicit_dt, explicit_options);

  // 1e-5 steps over 1e-4 is ~10 points; 1e-6 is ~100.
  EXPECT_LT(with_hint.num_points() * 5, with_explicit.num_points());

  Circuit bad;
  build(bad);
  TransientOptions negative = options;
  negative.dt_max = -1.0;
  EXPECT_THROW(run_transient(bad, negative), std::invalid_argument);
}

// run_transient validates exactly once up front; the internal DC solve
// must not run a second lint pass.
TEST(Analysis, TransientValidatesOnce) {
  if constexpr (!obs::kEnabled) GTEST_SKIP() << "metrics compiled out";

  Circuit circuit;
  const auto in = circuit.node("in");
  const auto out = circuit.node("out");
  circuit.add<VoltageSource>("V1", in, kGround, Waveform::sine(1.0, 1e6));
  circuit.add<Resistor>("R1", in, out, 1e3);
  circuit.add<Capacitor>("C1", out, kGround, 1e-9);

  auto& runs = obs::MetricsRegistry::instance().counter("spice.lint.runs");
  const std::uint64_t before = runs.value();
  TransientOptions options;
  options.t_stop = 1e-6;
  options.start_from_dc = true;
  run_transient(circuit, options);
  EXPECT_EQ(runs.value() - before, 1u);
}

TEST(Analysis, OvervoltageRiskFlaggedOnRatedJunction) {
  Circuit circuit;
  const auto in = circuit.node("in");
  circuit.add<VoltageSource>("V1", in, kGround, Waveform::sine(10.0, 1e3));
  DiodeParams params;
  params.breakdown_voltage = 5.0;  // rated well below the 10 V swing
  circuit.add<Diode>("D1", kGround, in, params);
  circuit.add<Resistor>("R1", in, kGround, 1e3);

  const auto report = analysis::analyze(circuit);
  bool flagged = false;
  for (const auto& d : report.diagnostics) {
    if (d.rule_id == "analysis.overvoltage-risk" && d.device == "D1") {
      flagged = true;
      EXPECT_EQ(d.severity, Severity::kWarning);
    }
  }
  EXPECT_TRUE(flagged) << report.to_text();

  // A rating above the worst-case reverse voltage stays quiet.
  Circuit quiet;
  const auto qin = quiet.node("in");
  quiet.add<VoltageSource>("V1", qin, kGround, Waveform::sine(10.0, 1e3));
  DiodeParams rated;
  rated.breakdown_voltage = 25.0;
  quiet.add<Diode>("D1", kGround, qin, rated);
  quiet.add<Resistor>("R1", qin, kGround, 1e3);
  const auto quiet_report = analysis::analyze(quiet);
  for (const auto& d : quiet_report.diagnostics) {
    EXPECT_NE(d.rule_id, "analysis.overvoltage-risk") << d.to_string();
  }
}

TEST(Analysis, StiffnessSpreadEarnsInfoDiagnostic) {
  Circuit circuit;
  const auto a = circuit.node("a");
  const auto b = circuit.node("b");
  circuit.add<VoltageSource>("V1", a, kGround, Waveform::dc(1.0));
  circuit.add<Resistor>("R1", a, b, 1e3);
  circuit.add<Capacitor>("Cslow", b, kGround, 1e-3);   // tau ~ 1 s
  circuit.add<Capacitor>("Cfast", b, kGround, 1e-12);  // tau ~ 1 ns

  const auto report = analysis::analyze(circuit);
  ASSERT_GT(report.timescale.stiffness_ratio, 1e6);
  bool flagged = false;
  for (const auto& d : report.diagnostics) {
    if (d.rule_id == "analysis.stiff") {
      flagged = true;
      EXPECT_EQ(d.severity, Severity::kInfo);
    }
  }
  EXPECT_TRUE(flagged) << report.to_text();
}

// The JSON report carries the schema the CI analyze stage greps.
TEST(Analysis, JsonReportCarriesSchema) {
  Circuit circuit;
  parse_netlist(circuit, read_file(kSourceDir / "examples" / "netlists" /
                                   "tissue_ladder.cir"));
  const auto report = analysis::analyze(circuit);
  const std::string json = report.to_json();
  for (const char* key :
       {"\"unknowns\"", "\"envelope\"", "\"sparsity\"", "\"factor_nnz\"",
        "\"solver_choice\"", "\"timescale\"", "\"dt_recommend\"",
        "\"passes\"", "\"lint\"", "\"diagnostics\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  EXPECT_NE(json.find("\"solver_choice\": \"sparse\""), std::string::npos);
}
