// End-to-end fault campaigns — the acceptance gate for the resilience
// contract: the scripted ASK-burst + coupling-drop campaign completes
// with zero lost measurements through retry/backoff, rate fallback, and
// checkpoint restart, and every campaign is bit-identical for any
// thread count and any two same-seed runs.
#include <gtest/gtest.h>

#include <cstdio>
#include <stdexcept>
#include <string>

#include "src/fault/campaign.hpp"
#include "src/obs/obs.hpp"

namespace {

using namespace ironic::fault;

TEST(FaultCampaign, RegistryListsTheFiveCampaigns) {
  const auto names = campaign_names();
  ASSERT_EQ(names.size(), 5u);
  for (const auto& name : names) EXPECT_TRUE(is_campaign(name));
  EXPECT_TRUE(is_campaign("ask_burst_coupling_drop"));
  EXPECT_TRUE(is_campaign("me_backscatter_soak"));
  EXPECT_TRUE(is_campaign("bioz_tissue_drift"));
  EXPECT_FALSE(is_campaign("nonexistent"));
}

// The ISSUE acceptance scenario: downlink burst errors, an overvoltage
// transient, then a permanent 17 mm-sirloin coupling drop mid-session.
// The session + checkpoint machinery must deliver every measurement.
TEST(FaultCampaign, ScriptedCampaignSurvivesWithZeroLostMeasurements) {
  CampaignConfig config;  // ask_burst_coupling_drop, 3 scenarios x 10
  const auto result = run_campaign(config);

  EXPECT_EQ(result.total_exchanges, config.scenarios * config.exchanges);
  EXPECT_EQ(result.completed, result.total_exchanges);
  EXPECT_EQ(result.lost_measurements, 0);
  EXPECT_DOUBLE_EQ(result.recovery_rate, 1.0);

  // The zero-loss run must have been *earned*: faults fired, retries and
  // backoff rode out the burst window, the rate ladder dropped, and the
  // rectifier transient was restarted from a committed checkpoint when
  // the drive amplitude stepped.
  EXPECT_GT(result.retries, 0);
  EXPECT_GT(result.restarts, 0);
  EXPECT_GT(result.checkpoints, 0);
  EXPECT_GT(result.mean_time_to_recover, 0.0);
  EXPECT_GT(result.faults_injected[static_cast<int>(FaultKind::kBurstError)], 0u);
  EXPECT_GT(result.faults_injected[static_cast<int>(FaultKind::kCouplingStep)],
            0u);

  ASSERT_EQ(result.scenarios.size(), static_cast<std::size_t>(config.scenarios));
  for (const auto& scenario : result.scenarios) {
    EXPECT_EQ(scenario.lost, 0);
    EXPECT_EQ(scenario.completed, config.exchanges);
    EXPECT_EQ(scenario.adc_codes.size(),
              static_cast<std::size_t>(config.exchanges));
    EXPECT_GT(scenario.rate_fallbacks, 0);
    EXPECT_LT(scenario.final_rate, 100e3);  // ended on a fallback rung
    EXPECT_GT(scenario.backoff_seconds, 0.0);
  }
}

TEST(FaultCampaign, ScriptedCampaignIsThreadCountInvariant) {
  CampaignConfig serial;
  serial.threads = 1;
  CampaignConfig wide = serial;
  wide.threads = 4;

  const auto a = run_campaign(serial);
  const auto b = run_campaign(wide);
  const auto c = run_campaign(serial);  // same-seed rerun

  EXPECT_NE(a.fingerprint, 0u);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.fingerprint, c.fingerprint);

  // Spot-check that the fingerprint is not vacuous: the per-scenario
  // payloads really are identical.
  ASSERT_EQ(a.scenarios.size(), b.scenarios.size());
  for (std::size_t i = 0; i < a.scenarios.size(); ++i) {
    EXPECT_EQ(a.scenarios[i].adc_codes, b.scenarios[i].adc_codes);
    EXPECT_EQ(a.scenarios[i].retries, b.scenarios[i].retries);
    EXPECT_EQ(a.scenarios[i].sim_time, b.scenarios[i].sim_time);
  }
}

#if IRONIC_OBS_ENABLED
// Streaming telemetry is an observer, not a participant: a campaign run
// with the sink wide open must produce the same fingerprint as one with
// telemetry off entirely.
TEST(FaultCampaign, TelemetryDoesNotPerturbFingerprint) {
  namespace obs = ironic::obs;
  CampaignConfig config;
  config.exchanges = 6;  // keep the telemetry leg quick

  obs::TelemetrySink::instance().close();
  obs::set_runtime_enabled(false);
  const auto quiet = run_campaign(config);
  obs::set_runtime_enabled(true);

  const std::string path =
      ::testing::TempDir() + "/ironic_campaign_fingerprint.jsonl";
  ASSERT_TRUE(obs::TelemetrySink::instance().open(path));
  const auto streamed = run_campaign(config);
  obs::TelemetrySink::instance().close();
  std::remove(path.c_str());

  EXPECT_NE(quiet.fingerprint, 0u);
  EXPECT_EQ(quiet.fingerprint, streamed.fingerprint);
}
#endif  // IRONIC_OBS_ENABLED

TEST(FaultCampaign, DifferentSeedsDiverge) {
  CampaignConfig config;
  const auto a = run_campaign(config);
  config.seed = 0xfeedface;
  const auto b = run_campaign(config);
  EXPECT_NE(a.fingerprint, b.fingerprint);
}

TEST(FaultCampaign, StochasticSoakIsDeterministic) {
  CampaignConfig config;
  config.name = "stochastic_soak";
  config.threads = 1;
  const auto a = run_campaign(config);
  config.threads = 4;
  const auto b = run_campaign(config);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.total_exchanges, 30);
  // Partial recovery is allowed here, but the soak must not be a no-op.
  std::uint64_t injected = 0;
  for (const auto count : a.faults_injected) injected += count;
  EXPECT_GT(injected, 0u);
}

TEST(FaultCampaign, BrownoutSheddingHitsThePatchAndStaysDeterministic) {
  CampaignConfig config;
  config.name = "brownout_shedding";
  const auto a = run_campaign(config);
  const auto b = run_campaign(config);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  int brownouts = 0;
  for (const auto& scenario : a.scenarios) brownouts += scenario.brownouts;
  EXPECT_GT(brownouts, 0);
}

TEST(FaultCampaign, RejectsBadConfig) {
  CampaignConfig config;
  config.name = "nonexistent";
  EXPECT_THROW(run_campaign(config), std::invalid_argument);
  config = CampaignConfig{};
  config.scenarios = 0;
  EXPECT_THROW(run_campaign(config), std::invalid_argument);
  config = CampaignConfig{};
  config.exchanges = -1;
  EXPECT_THROW(run_campaign(config), std::invalid_argument);
}

}  // namespace
