#include <gtest/gtest.h>

#include <cmath>

#include "src/comms/ask.hpp"
#include "src/comms/line_code.hpp"
#include "src/util/rng.hpp"

namespace {

using namespace ironic::comms;

TEST(Manchester, EncodeExpandsAndAlternates) {
  const auto chips = manchester_encode(bits_from_string("10"));
  EXPECT_EQ(bits_to_string(chips), "1001");
}

TEST(Manchester, RoundTrip) {
  ironic::util::Rng rng(3);
  const auto bits = random_bits(257, rng);
  const auto decoded = manchester_decode(manchester_encode(bits));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, bits);
}

TEST(Manchester, InvalidSymbolsRejected) {
  EXPECT_FALSE(manchester_decode(bits_from_string("11")).has_value());
  EXPECT_FALSE(manchester_decode(bits_from_string("001")).has_value());  // odd
  EXPECT_FALSE(manchester_decode(bits_from_string("1000")).has_value());
}

TEST(Manchester, StreamIsDcFree) {
  ironic::util::Rng rng(5);
  // Even a heavily biased source becomes DC-free after coding.
  Bits biased(300, true);
  EXPECT_TRUE(is_dc_free(manchester_encode(biased)));
  EXPECT_TRUE(is_dc_free(manchester_encode(random_bits(100, rng))));
  EXPECT_FALSE(is_dc_free(bits_from_string("111")));
}

TEST(BurstSync, FindsPreambleInEnvelope) {
  // Build an envelope: idle high, then preamble + payload keyed at 100 kbps.
  AskSpec spec;
  const auto preamble = standard_preamble();
  Bits burst = preamble;
  const auto payload = bits_from_string("1100101");
  burst.insert(burst.end(), payload.begin(), payload.end());

  const double t0 = 137e-6;  // receiver does not know this
  const double t_stop = t0 + burst.size() * spec.bit_period() + 50e-6;
  const auto env = ask_envelope(burst, spec, t0, t_stop);
  std::vector<double> ts, vs;
  for (double t = 0.0; t <= t_stop; t += 0.5e-6) {
    ts.push_back(t);
    vs.push_back(env(t));
  }

  double found = 0.0;
  const double threshold = 0.5 * (spec.amplitude_high + spec.amplitude_low());
  ASSERT_TRUE(find_burst_start(ts, vs, spec.bit_rate, threshold, preamble, found));
  EXPECT_NEAR(found, t0, 0.3 * spec.bit_period());

  // Decode the payload using the recovered timing.
  const auto rx = slice_bits(ts, vs, spec.bit_rate,
                             found + preamble.size() * spec.bit_period(),
                             payload.size());
  EXPECT_EQ(bits_to_string(rx), bits_to_string(payload));
}

TEST(BurstSync, NoMatchReturnsFalse) {
  std::vector<double> ts, vs;
  for (double t = 0.0; t < 1e-3; t += 1e-6) {
    ts.push_back(t);
    vs.push_back(1.0);  // constant envelope: no preamble present
  }
  double found = 0.0;
  EXPECT_FALSE(find_burst_start(ts, vs, 100e3, 0.8, standard_preamble(), found));
  EXPECT_FALSE(find_burst_start({}, {}, 100e3, 0.8, standard_preamble(), found));
}

}  // namespace
