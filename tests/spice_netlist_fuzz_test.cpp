// Fuzz-style negative tests for the netlist parser: malformed input of
// every flavor must produce NetlistError (or a clean parse) -- never a
// crash, hang, or out-of-bounds access. Run under ASan/UBSan
// (IRONIC_SANITIZE=address;undefined) these double as memory-safety
// tests of the tokenizer and subcircuit expander.
#include "src/spice/netlist_parser.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/spice/circuit.hpp"

namespace {

using namespace ironic::spice;

// Parse must either succeed or throw NetlistError; anything else
// (std::bad_alloc aside) is a parser bug.
void expect_contained(const std::string& text) {
  Circuit ckt;
  try {
    parse_netlist(ckt, text);
  } catch (const NetlistError&) {
    // fine: structured rejection
  }
}

TEST(NetlistFuzz, TruncatedElementLines) {
  const std::vector<std::string> cases = {
      "R1",
      "R1 in",
      "R1 in out",
      "C1 a",
      "L1 a b",
      "V1 in",
      "V1 in 0",
      "V1 in 0 SIN(",
      "V1 in 0 SIN(0 1",
      "V1 in 0 PULSE(0 1 0)",
      "V1 in 0 PWL(0)",
      "V1 in 0 PWL(0 1 2)",
      "I1 out",
      "D1 a",
      "M1 d g s",
      "M1 d g s b",
      "S1 a b",
      "E1 a b cp",
      "G1 a b cp cn",
      "K1 L1",
      "K1 L1 L2",
      "X1 out",
      ".subckt",
  };
  for (const auto& line : cases) {
    Circuit ckt;
    EXPECT_THROW(parse_netlist(ckt, line), NetlistError) << "input: " << line;
  }
}

TEST(NetlistFuzz, UnknownDevicesAndDirectives) {
  for (const std::string line : {"Q1 c b e NPN", "Z9 a b 5", "W1 a b 1k", "~~~"}) {
    Circuit ckt;
    EXPECT_THROW(parse_netlist(ckt, line), NetlistError) << "input: " << line;
  }
  // Unknown dot-directives are ignored by design (SPICE compatibility).
  Circuit ckt;
  EXPECT_NO_THROW(parse_netlist(ckt, ".options reltol=1e-4\nR1 a 0 1k\n"));
}

TEST(NetlistFuzz, AbsurdUnitSuffixes) {
  const std::vector<std::string> bad_values = {
      "1meg2", "--5", "1.2.3", "nan?", "1n1", "5k!", "emptysuffix(",
      "nan",   "inf", "-inf",  "1e999",  // non-finite / overflow
  };
  for (const auto& value : bad_values) {
    Circuit ckt;
    EXPECT_THROW(parse_netlist(ckt, "R1 a 0 " + value), NetlistError)
        << "value: " << value;
    EXPECT_THROW(parse_spice_value(value), std::invalid_argument) << value;
  }
  // ... while legitimate suffixes (with trailing unit letters) parse.
  EXPECT_DOUBLE_EQ(parse_spice_value("10nF"), 10e-9);
  EXPECT_DOUBLE_EQ(parse_spice_value("4.7kohm"), 4700.0);
  EXPECT_DOUBLE_EQ(parse_spice_value("2meg"), 2e6);
  EXPECT_DOUBLE_EQ(parse_spice_value("5V"), 5.0);
  // SPICE convention: unknown trailing *letters* are units and ignored.
  EXPECT_DOUBLE_EQ(parse_spice_value("10q"), 10.0);
  EXPECT_DOUBLE_EQ(parse_spice_value("4.7kk"), 4700.0);
  EXPECT_DOUBLE_EQ(parse_spice_value("1e"), 1.0);
}

TEST(NetlistFuzz, ExtremeMagnitudeValuesParseWithoutOverflow) {
  // Overflowing exponents must be rejected or saturate -- not UB.
  const std::vector<std::string> values = {"1e999", "-1e999",
                                           "9" + std::string(400, '9')};
  for (const auto& value : values) {
    expect_contained("V1 a 0 DC " + value);
  }
}

TEST(NetlistFuzz, DuplicateDeviceNamesRejected) {
  Circuit ckt;
  EXPECT_THROW(parse_netlist(ckt, "R1 a 0 1k\nR1 b 0 2k\n"), NetlistError);
}

TEST(NetlistFuzz, MalformedOptionTails) {
  const std::vector<std::string> cases = {
      "C1 a 0 1n IC",
      "C1 a 0 1n IC=",
      "C1 a 0 1n IC 5",
      "C1 a 0 1n = 5",
      "D1 a 0 IS=notanumber",
      "M1 d g s b NMOS W=",
      "M1 d g s b FETMODEL",
      "S1 a b c d RON=0 ROFF",
  };
  for (const auto& line : cases) {
    Circuit ckt;
    EXPECT_THROW(parse_netlist(ckt, line), NetlistError) << "input: " << line;
  }
}

TEST(NetlistFuzz, SubcircuitAbuse) {
  // Unterminated definition.
  {
    Circuit ckt;
    EXPECT_THROW(parse_netlist(ckt, ".subckt half in out\nR1 in out 1k\n"), NetlistError);
  }
  // Instance with the wrong port count.
  {
    Circuit ckt;
    EXPECT_THROW(parse_netlist(ckt,
                               ".subckt half in out\nR1 in out 1k\n.ends\n"
                               "X1 a half\n"),
                 NetlistError);
  }
  // Instance of an undefined subcircuit.
  {
    Circuit ckt;
    EXPECT_THROW(parse_netlist(ckt, "X1 a b nothere\n"), NetlistError);
  }
  // Infinite recursion guard: a subcircuit instantiating itself.
  {
    Circuit ckt;
    EXPECT_THROW(parse_netlist(ckt,
                               ".subckt loop a b\nXinner a b loop\n.ends\n"
                               "X1 p q loop\n"),
                 NetlistError);
  }
  // Coupling line referencing inductors across a subckt boundary that
  // do not exist at top level.
  {
    Circuit ckt;
    EXPECT_THROW(parse_netlist(ckt, "K1 Lx Ly 0.5\n"), NetlistError);
  }
  // Same inductor coupled twice.
  {
    Circuit ckt;
    EXPECT_THROW(parse_netlist(ckt,
                               "L1 a 0 1u\nL2 b 0 1u\nL3 c 0 1u\n"
                               "K1 L1 L2 0.5\nK2 L1 L3 0.5\n"),
                 NetlistError);
  }
}

TEST(NetlistFuzz, GarbageBytesNeverCrash) {
  // Deterministic pseudo-garbage: every byte value, odd punctuation,
  // pathological token shapes, huge single lines.
  std::string soup;
  for (int i = 1; i < 256; ++i) soup.push_back(static_cast<char>(i));
  expect_contained(soup);
  expect_contained(std::string(1 << 16, '('));
  expect_contained(std::string(1 << 16, '='));
  expect_contained("R1 " + std::string(10000, 'n') + " 0 1k");
  expect_contained("V1 in 0 SIN" + std::string(5000, '('));
  expect_contained("*" + std::string(100000, 'x'));
  expect_contained(std::string("R1 a 0 1k\0V9 hidden 0 DC 1", 26));
}

TEST(NetlistFuzz, DeepButBoundedNesting) {
  // 20 nested subckt levels exceeds the depth guard (16) and must be a
  // structured error, not a stack overflow.
  std::string text;
  text += ".subckt s0 a b\nR0 a b 1k\n.ends\n";
  for (int i = 1; i <= 20; ++i) {
    text += ".subckt s" + std::to_string(i) + " a b\n";
    text += "X1 a b s" + std::to_string(i - 1) + "\n";
    text += ".ends\n";
  }
  text += "Xtop p q s20\n";
  Circuit ckt;
  // Either it expands fine (each level is finite) or trips the guard;
  // both are acceptable containment. It must not crash.
  expect_contained(text);
}

}  // namespace
