#include <gtest/gtest.h>

#include <cmath>

#include "src/spice/engine.hpp"
#include "src/spice/netlist_parser.hpp"

namespace {

using namespace ironic::spice;

// ------------------------------------------------------------- value parser

TEST(SpiceValue, MagnitudeSuffixes) {
  EXPECT_DOUBLE_EQ(parse_spice_value("10n"), 10e-9);
  EXPECT_DOUBLE_EQ(parse_spice_value("4.7k"), 4.7e3);
  EXPECT_DOUBLE_EQ(parse_spice_value("2meg"), 2e6);
  EXPECT_DOUBLE_EQ(parse_spice_value("5MEG"), 5e6);
  EXPECT_DOUBLE_EQ(parse_spice_value("100p"), 100e-12);
  EXPECT_DOUBLE_EQ(parse_spice_value("3u"), 3e-6);
  EXPECT_DOUBLE_EQ(parse_spice_value("1.5m"), 1.5e-3);
  EXPECT_DOUBLE_EQ(parse_spice_value("2g"), 2e9);
  EXPECT_DOUBLE_EQ(parse_spice_value("1f"), 1e-15);
}

TEST(SpiceValue, UnitLettersIgnored) {
  EXPECT_DOUBLE_EQ(parse_spice_value("10nF"), 10e-9);
  EXPECT_DOUBLE_EQ(parse_spice_value("5V"), 5.0);
  EXPECT_DOUBLE_EQ(parse_spice_value("2kOhm"), 2e3);
}

TEST(SpiceValue, ScientificNotation) {
  EXPECT_DOUBLE_EQ(parse_spice_value("1e-6"), 1e-6);
  EXPECT_DOUBLE_EQ(parse_spice_value("-3.3"), -3.3);
}

TEST(SpiceValue, GarbageRejected) {
  EXPECT_THROW(parse_spice_value(""), std::invalid_argument);
  EXPECT_THROW(parse_spice_value("abc"), std::invalid_argument);
  EXPECT_THROW(parse_spice_value("10x!"), std::invalid_argument);
}

// ------------------------------------------------------------------ parser

TEST(Netlist, VoltageDividerDc) {
  Circuit ckt;
  const int n = parse_netlist(ckt, R"(
* simple divider
V1 in 0 DC 10
R1 in out 1k
R2 out 0 3k
.end
)");
  EXPECT_EQ(n, 3);
  const auto dc = solve_dc(ckt);
  ASSERT_TRUE(dc.converged);
  EXPECT_NEAR(dc.x[static_cast<std::size_t>(ckt.find_node("out"))], 7.5, 1e-6);
}

TEST(Netlist, RcTransientWithIc) {
  Circuit ckt;
  parse_netlist(ckt, R"(
C1 n 0 1u IC=2
R1 n 0 1k
)");
  TransientOptions opts;
  opts.t_stop = 2e-3;
  opts.dt_max = 1e-6;
  const auto res = run_transient(ckt, opts);
  EXPECT_NEAR(res.value_at("v(n)", 1e-3), 2.0 * std::exp(-1.0), 3e-3);
}

TEST(Netlist, SineSourceAndDiode) {
  Circuit ckt;
  parse_netlist(ckt, R"(
V1 in 0 SIN(0 3 1meg)
R1 in a 50
D1 a out IS=1e-16
C1 out 0 10n
R2 out 0 10k
)");
  TransientOptions opts;
  opts.t_stop = 20e-6;
  opts.dt_max = 2e-9;
  const auto res = run_transient(ckt, opts);
  EXPECT_GT(res.mean_between("v(out)", 15e-6, 20e-6), 1.5);
}

TEST(Netlist, PulseAndPwlSources) {
  Circuit ckt;
  parse_netlist(ckt, R"(
V1 a 0 PULSE(0 1 1u 10n 10n 2u 0)
I1 0 b PWL(0 0 1u 1m 2u 0)
R1 a 0 1k
R2 b 0 1k
)");
  TransientOptions opts;
  opts.t_stop = 4e-6;
  opts.dt_max = 10e-9;
  const auto res = run_transient(ckt, opts);
  EXPECT_NEAR(res.value_at("v(a)", 2e-6), 1.0, 1e-9);
  EXPECT_NEAR(res.value_at("v(b)", 1e-6), 1.0, 0.02);  // 1 mA into 1k
  EXPECT_NEAR(res.value_at("v(a)", 3.5e-6), 0.0, 1e-9);
}

TEST(Netlist, CoupledInductorsViaKLine) {
  Circuit ckt;
  parse_netlist(ckt, R"(
V1 in 0 SIN(0 1 1meg)
L1 in 0 10u
L2 sec 0 10u
K1 L1 L2 0.95
R1 sec 0 1meg
)");
  TransientOptions opts;
  opts.t_stop = 5e-6;
  opts.dt_max = 1e-9;
  const auto res = run_transient(ckt, opts);
  EXPECT_NEAR(res.peak_abs_between("v(sec)", 2e-6, 5e-6), 0.95, 0.01);
}

TEST(Netlist, UncoupledInductorStillWorks) {
  Circuit ckt;
  parse_netlist(ckt, R"(
V1 in 0 DC 1
R1 in mid 10
L1 mid 0 10m
)");
  TransientOptions opts;
  opts.t_stop = 5e-3;
  opts.dt_max = 1e-6;
  const auto res = run_transient(ckt, opts);
  EXPECT_NEAR(res.value_at("i(l1)", 5e-3), 0.1 * (1.0 - std::exp(-5.0)), 2e-4);
}

TEST(Netlist, MosfetSwitchOpampControlled) {
  Circuit ckt;
  parse_netlist(ckt, R"(
V1 vdd 0 DC 1.8
V2 g 0 DC 1.0
M1 vdd g 0 0 NMOS W=1.8u L=0.18u
V3 in 0 DC 0.9
XU1 out in out OPAMP GAIN=1e5 VMIN=0 VMAX=1.8
R1 out 0 10k
V4 c 0 DC 1.8
S1 out x c 0 RON=10 ROFF=1e9 VON=1 VOFF=0.2
R2 x 0 1k
)");
  const auto dc = solve_dc(ckt);
  ASSERT_TRUE(dc.converged);
  // Follower output ~0.9; switch on -> divider to x.
  EXPECT_NEAR(dc.x[static_cast<std::size_t>(ckt.find_node("out"))], 0.9, 0.01);
  EXPECT_GT(dc.x[static_cast<std::size_t>(ckt.find_node("x"))], 0.8);
}

TEST(Netlist, ZenerOptionBv) {
  Circuit ckt;
  parse_netlist(ckt, R"(
V1 in 0 DC -5
R1 in k 1k
D1 k 0 BV=3
)");
  const auto dc = solve_dc(ckt);
  ASSERT_TRUE(dc.converged);
  EXPECT_NEAR(dc.x[static_cast<std::size_t>(ckt.find_node("k"))], -3.2, 0.3);
}

TEST(Netlist, ControlledSources) {
  Circuit ckt;
  parse_netlist(ckt, R"(
V1 a 0 DC 0.5
E1 out 0 a 0 4
R1 out 0 1k
G1 0 b a 0 2m
R2 b 0 1k
)");
  const auto dc = solve_dc(ckt);
  ASSERT_TRUE(dc.converged);
  EXPECT_NEAR(dc.x[static_cast<std::size_t>(ckt.find_node("out"))], 2.0, 1e-6);
  EXPECT_NEAR(dc.x[static_cast<std::size_t>(ckt.find_node("b"))], 1.0, 1e-6);
}

// ------------------------------------------------------------------- errors

TEST(NetlistErrors, ReportLineNumbers) {
  Circuit ckt;
  try {
    parse_netlist(ckt, "R1 a 0 1k\nQ1 a b c\n");
    FAIL() << "expected NetlistError";
  } catch (const NetlistError& e) {
    EXPECT_EQ(e.line_number, 2);
  }
}

TEST(NetlistErrors, MalformedInputsRejected) {
  Circuit ckt;
  EXPECT_THROW(parse_netlist(ckt, "R1 a 0\n"), NetlistError);           // too few
  EXPECT_THROW(parse_netlist(ckt, "Rbad a 0 zzz\n"), NetlistError);     // bad value
  EXPECT_THROW(parse_netlist(ckt, "V1 a 0 SIN(0 1\n"), NetlistError);   // unterminated
  EXPECT_THROW(parse_netlist(ckt, "C1 a 0 1n IC\n"), NetlistError);     // dangling opt
  EXPECT_THROW(parse_netlist(ckt, "M1 d g s b BJT\n"), NetlistError);   // bad model
  EXPECT_THROW(parse_netlist(ckt, "K1 L1 L2 0.5\n"), NetlistError);     // unknown L
  EXPECT_THROW(parse_netlist(ckt, "X1 a b c FILTER\n"), NetlistError);  // unknown sub
}

TEST(NetlistErrors, DoubleCouplingRejected) {
  Circuit ckt;
  EXPECT_THROW(parse_netlist(ckt, R"(
L1 a 0 1u
L2 b 0 1u
L3 c 0 1u
K1 L1 L2 0.5
K2 L2 L3 0.5
)"),
               NetlistError);
}

TEST(Netlist, CommentsAndDirectivesIgnored) {
  Circuit ckt;
  const int n = parse_netlist(ckt, R"(
* a comment
.options reltol=1e-4
R1 a 0 1k
.end
R2 never 0 1k
)");
  EXPECT_EQ(n, 1);  // R2 after .end is not parsed
}

}  // namespace
