// Fault schedules and the injector: window arithmetic, stochastic
// generation determinism, and the comms channel wrapper.
#include <gtest/gtest.h>

#include <cstddef>
#include <stdexcept>

#include "src/comms/bitstream.hpp"
#include "src/fault/injector.hpp"
#include "src/fault/schedule.hpp"
#include "src/util/rng.hpp"

namespace {

using namespace ironic;
using namespace ironic::fault;

TEST(SimClock, AdvancesMonotonically) {
  SimClock clock;
  EXPECT_EQ(clock.now(), 0.0);
  clock.advance(1.5);
  clock.advance(0.0);
  EXPECT_EQ(clock.now(), 1.5);
  EXPECT_THROW(clock.advance(-1e-9), std::invalid_argument);
}

TEST(FaultSchedule, WindowsAndPermanence) {
  FaultSchedule schedule;
  schedule.add({FaultKind::kBitFlip, 1.0, 2.0, 0.01, LinkDirection::kDownlink});
  schedule.add({FaultKind::kCouplingStep, 5.0, -1.0, 17e-3, LinkDirection::kBoth});

  const auto down = LinkDirection::kDownlink;
  EXPECT_EQ(schedule.active(FaultKind::kBitFlip, 0.5, down), nullptr);
  ASSERT_NE(schedule.active(FaultKind::kBitFlip, 1.0, down), nullptr);
  ASSERT_NE(schedule.active(FaultKind::kBitFlip, 2.9, down), nullptr);
  // End of the window is exclusive.
  EXPECT_EQ(schedule.active(FaultKind::kBitFlip, 3.0, down), nullptr);
  // Direction filter: a downlink fault never applies to the uplink.
  EXPECT_EQ(schedule.active(FaultKind::kBitFlip, 1.5, LinkDirection::kUplink),
            nullptr);

  // duration <= 0 is permanent.
  EXPECT_EQ(schedule.active(FaultKind::kCouplingStep, 4.9), nullptr);
  ASSERT_NE(schedule.active(FaultKind::kCouplingStep, 1e9), nullptr);
}

TEST(FaultSchedule, LatestStartWinsOnOverlap) {
  FaultSchedule schedule;
  schedule.add({FaultKind::kOvervoltage, 0.0, -1.0, 1.5, LinkDirection::kBoth});
  schedule.add({FaultKind::kOvervoltage, 2.0, -1.0, 2.5, LinkDirection::kBoth});
  EXPECT_EQ(schedule.active(FaultKind::kOvervoltage, 1.0)->magnitude, 1.5);
  EXPECT_EQ(schedule.active(FaultKind::kOvervoltage, 3.0)->magnitude, 2.5);
}

TEST(FaultSchedule, StartedBetweenIsEdgeTriggered) {
  FaultSchedule schedule;
  schedule.add({FaultKind::kBrownout, 1.0, 0.0, 0.05, LinkDirection::kBoth});
  schedule.add({FaultKind::kBrownout, 2.0, 0.0, 0.10, LinkDirection::kBoth});
  EXPECT_EQ(schedule.started_between(FaultKind::kBrownout, 0.0, 0.5).size(), 0u);
  EXPECT_EQ(schedule.started_between(FaultKind::kBrownout, 0.0, 1.0).size(), 1u);
  EXPECT_EQ(schedule.started_between(FaultKind::kBrownout, 1.0, 3.0).size(), 1u);
  EXPECT_EQ(schedule.started_between(FaultKind::kBrownout, 0.5, 3.0).size(), 2u);
}

TEST(FaultSchedule, StochasticIsDeterministicPerSeed) {
  auto rng_a = ironic::util::Rng::stream(42, 0);
  auto rng_b = ironic::util::Rng::stream(42, 0);
  const auto a = FaultSchedule::stochastic(rng_a);
  const auto b = FaultSchedule::stochastic(rng_b);
  ASSERT_EQ(a.events().size(), b.events().size());
  for (std::size_t i = 0; i < a.events().size(); ++i) {
    EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
    EXPECT_EQ(a.events()[i].start, b.events()[i].start);
    EXPECT_EQ(a.events()[i].duration, b.events()[i].duration);
    EXPECT_EQ(a.events()[i].magnitude, b.events()[i].magnitude);
    EXPECT_EQ(a.events()[i].direction, b.events()[i].direction);
  }
}

TEST(FaultSchedule, StochasticRespectsKindRanges) {
  auto rng = ironic::util::Rng::stream(7, 0);
  StochasticScheduleConfig config;
  config.horizon = 100.0;
  for (auto& mean : config.events_per_kind) mean = 5.0;  // plenty of samples
  const auto schedule = FaultSchedule::stochastic(rng, config);
  ASSERT_FALSE(schedule.empty());
  for (const auto& event : schedule.events()) {
    EXPECT_GE(event.start, 0.0);
    EXPECT_LT(event.start, config.horizon);
    switch (event.kind) {
      case FaultKind::kCouplingStep:
      case FaultKind::kMisalignment:
      case FaultKind::kTissueDrift:
        EXPECT_LE(event.duration, 0.0) << "step kinds are permanent";
        break;
      case FaultKind::kBrownout:
        EXPECT_EQ(event.duration, 0.0) << "brownouts are instantaneous";
        EXPECT_GE(event.magnitude, 0.02);
        EXPECT_LE(event.magnitude, 0.10);
        break;
      case FaultKind::kBitFlip:
        EXPECT_GT(event.duration, 0.0);
        EXPECT_GE(event.magnitude, 1e-3);
        EXPECT_LE(event.magnitude, 2e-2);
        break;
      case FaultKind::kBurstError:
        EXPECT_GE(event.magnitude, 4.0);
        EXPECT_LE(event.magnitude, 24.0);
        break;
      case FaultKind::kOvervoltage:
        EXPECT_GE(event.magnitude, 1.5);
        EXPECT_LE(event.magnitude, 2.5);
        break;
      case FaultKind::kLdoDropout:
        EXPECT_GE(event.magnitude, 0.3);
        EXPECT_LE(event.magnitude, 0.8);
        break;
    }
  }
}

TEST(FaultInjector, GeometryAndScaleOverrides) {
  FaultSchedule schedule;
  schedule.add({FaultKind::kCouplingStep, 1.0, -1.0, 17e-3, LinkDirection::kBoth});
  schedule.add({FaultKind::kTissueDrift, 2.0, -1.0, 12e-3, LinkDirection::kBoth});
  schedule.add({FaultKind::kOvervoltage, 3.0, 1.0, 1.8, LinkDirection::kBoth});
  schedule.add({FaultKind::kLdoDropout, 3.0, 1.0, 0.5, LinkDirection::kBoth});
  SimClock clock;
  FaultInjector injector(&schedule, &clock, ironic::util::Rng(1));

  // t = 0: everything at base values.
  EXPECT_EQ(injector.distance(6e-3), 6e-3);
  EXPECT_FALSE(injector.tissue_thickness().has_value());
  EXPECT_EQ(injector.drive_scale(), 1.0);
  EXPECT_EQ(injector.rail_scale(), 1.0);

  clock.advance(3.5);  // all events active
  EXPECT_EQ(injector.distance(6e-3), 17e-3);
  ASSERT_TRUE(injector.tissue_thickness().has_value());
  EXPECT_EQ(*injector.tissue_thickness(), 12e-3);
  EXPECT_EQ(injector.drive_scale(), 1.8);
  EXPECT_EQ(injector.rail_scale(), 0.5);

  clock.advance(1.0);  // the 1 s transients expired; steps persist
  EXPECT_EQ(injector.drive_scale(), 1.0);
  EXPECT_EQ(injector.rail_scale(), 1.0);
  EXPECT_EQ(injector.distance(6e-3), 17e-3);
}

TEST(FaultInjector, BrownoutFractionAccumulatesAndTallies) {
  FaultSchedule schedule;
  schedule.add({FaultKind::kBrownout, 1.0, 0.0, 0.05, LinkDirection::kBoth});
  schedule.add({FaultKind::kBrownout, 2.0, 0.0, 0.10, LinkDirection::kBoth});
  SimClock clock;
  FaultInjector injector(&schedule, &clock, ironic::util::Rng(1));
  EXPECT_EQ(injector.brownout_fraction(0.0, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(injector.brownout_fraction(0.5, 3.0), 0.15);
  EXPECT_EQ(injector.injected(FaultKind::kBrownout), 2u);
}

TEST(FaultInjector, BurstWrapperInvertsContiguousRun) {
  FaultSchedule schedule;
  schedule.add({FaultKind::kBurstError, 0.0, -1.0, 8.0, LinkDirection::kDownlink});
  SimClock clock;
  FaultInjector injector(&schedule, &clock, ironic::util::Rng(3));

  auto rng = ironic::util::Rng::stream(11, 0);
  const auto sent = comms::random_bits(64, rng);
  auto channel = injector.wrap({}, LinkDirection::kDownlink);
  const auto received = channel(sent);
  ASSERT_EQ(received.size(), sent.size());
  EXPECT_EQ(comms::hamming_distance(sent, received), 8u);
  // The corrupted bits form one contiguous run.
  std::size_t first = sent.size(), last = 0;
  for (std::size_t i = 0; i < sent.size(); ++i) {
    if (sent[i] != received[i]) {
      first = std::min(first, i);
      last = i;
    }
  }
  EXPECT_EQ(last - first + 1, 8u);
  EXPECT_EQ(injector.injected(FaultKind::kBurstError), 1u);

  // The uplink is clean: the fault is direction-scoped.
  auto uplink = injector.wrap({}, LinkDirection::kUplink);
  EXPECT_EQ(comms::hamming_distance(sent, uplink(sent)), 0u);
}

TEST(FaultInjector, BitFlipWrapperFlipsAtConfiguredRate) {
  FaultSchedule schedule;
  schedule.add({FaultKind::kBitFlip, 0.0, -1.0, 0.05, LinkDirection::kBoth});
  SimClock clock;
  FaultInjector injector(&schedule, &clock, ironic::util::Rng(5));

  auto rng = ironic::util::Rng::stream(13, 0);
  const auto sent = comms::random_bits(4000, rng);
  auto channel = injector.wrap({}, LinkDirection::kDownlink);
  const auto received = channel(sent);
  const auto flipped = comms::hamming_distance(sent, received);
  // 4000 draws at p = 0.05: expect ~200, allow a generous band.
  EXPECT_GT(flipped, 120u);
  EXPECT_LT(flipped, 300u);
  EXPECT_GE(injector.injected(FaultKind::kBitFlip), 1u);
}

TEST(FaultInjector, RequiresScheduleAndClock) {
  FaultSchedule schedule;
  SimClock clock;
  EXPECT_THROW(FaultInjector(nullptr, &clock, ironic::util::Rng(1)),
               std::invalid_argument);
  EXPECT_THROW(FaultInjector(&schedule, nullptr, ironic::util::Rng(1)),
               std::invalid_argument);
}

}  // namespace
