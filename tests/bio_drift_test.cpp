#include <gtest/gtest.h>

#include <cmath>

#include "src/bio/drift.hpp"

namespace {

using namespace ironic::bio;

TEST(Drift, FreshSensorUnchanged) {
  DriftModel drift;
  ElectrochemicalCell cell{clodx_params()};
  EXPECT_DOUBLE_EQ(drift.sensitivity_gain(0.0), 1.0);
  EXPECT_DOUBLE_EQ(drift.baseline_density(0.0), 0.0);
  EXPECT_DOUBLE_EQ(drift.aged_current_density(cell, 1.0, 0.0),
                   cell.current_density(1.0));
}

TEST(Drift, SensitivityDecaysTowardFloor) {
  DriftModel drift;
  double prev = 1.0;
  for (double d : {2.0, 5.0, 10.0, 20.0, 40.0}) {
    const double g = drift.sensitivity_gain(d);
    EXPECT_LT(g, prev);
    EXPECT_GE(g, drift.params().sensitivity_floor);
    prev = g;
  }
  EXPECT_NEAR(drift.sensitivity_gain(1000.0), drift.params().sensitivity_floor, 1e-9);
}

TEST(Drift, BaselineCreepsLinearly) {
  DriftModel drift;
  EXPECT_NEAR(drift.baseline_density(10.0), 2e-3, 1e-12);
  EXPECT_THROW(drift.baseline_density(-1.0), std::invalid_argument);
}

TEST(Drift, MwcntSlowsDecay) {
  // The paper's motivation for the nanotube immobilization: stability.
  DriftModel mwcnt{DriftParams{}};
  DriftModel bare{bare_electrode_drift()};
  for (double d : {3.0, 7.0, 14.0}) {
    EXPECT_GT(mwcnt.sensitivity_gain(d), bare.sensitivity_gain(d)) << "day " << d;
  }
}

TEST(Drift, UncalibratedAgedSensorMisreads) {
  DriftModel drift;
  ElectrochemicalCell cell{clodx_params()};
  const double days = 10.0;
  // Naive inversion of an aged reading through the pristine transfer.
  const double j_aged = drift.aged_current_density(cell, 1.0, days);
  const double naive =
      cell.concentration_from_current(j_aged * cell.geometry().area);
  // Sensitivity has dropped ~40 %: the naive estimate is badly low.
  EXPECT_LT(naive, 0.8);
}

TEST(Calibration, TwoPointRecoversConcentration) {
  DriftModel drift;
  ElectrochemicalCell cell{clodx_params()};
  const double days = 10.0;
  const TwoPointCalibration cal(cell, drift, days, 0.2, 2.0);
  for (double truth : {0.3, 0.7, 1.0, 1.5}) {
    const double j = drift.aged_current_density(cell, truth, days);
    const double est = cal.concentration_from_density(cell, j);
    EXPECT_NEAR(est, truth, truth * 0.02) << "c=" << truth;
  }
}

TEST(Calibration, GainAndBaselineMatchDriftModel) {
  DriftModel drift;
  ElectrochemicalCell cell{clodx_params()};
  const double days = 7.0;
  const TwoPointCalibration cal(cell, drift, days, 0.2, 2.0);
  EXPECT_NEAR(cal.gain(), drift.sensitivity_gain(days), 1e-9);
  EXPECT_NEAR(cal.baseline(), drift.baseline_density(days), 1e-9);
}

TEST(Calibration, Validation) {
  DriftModel drift;
  ElectrochemicalCell cell{clodx_params()};
  EXPECT_THROW(TwoPointCalibration(cell, drift, 1.0, 2.0, 0.5), std::invalid_argument);
  DriftParams bad;
  bad.sensitivity_tau_days = 0.0;
  EXPECT_THROW(DriftModel{bad}, std::invalid_argument);
}

}  // namespace
