// LinkPhy backend contract tests: the registry, the physical-law
// properties every backend must satisfy (power monotone in distance and
// lateral offset, efficiency bounded, BER monotone in bit rate), the
// PWM backscatter codec, the bio-impedance workload's programmatic
// circuit pinned against the shipped netlist, and the compatibility of
// the deprecated free-function laws with backend #1.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/comms/pwm.hpp"
#include "src/fault/bioz.hpp"
#include "src/fault/plant.hpp"
#include "src/link/inductive.hpp"
#include "src/link/magnetoelectric.hpp"
#include "src/link/phy.hpp"
#include "src/spice/engine.hpp"
#include "src/spice/netlist_parser.hpp"

namespace {

using namespace ironic;

TEST(LinkRegistry, ListsBothBackends) {
  const auto names = link::backend_names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "inductive");
  EXPECT_EQ(names[1], "me");
  for (const auto& name : names) {
    EXPECT_TRUE(link::is_backend(name));
    auto phy = link::make_backend(name);
    ASSERT_NE(phy, nullptr);
    EXPECT_EQ(phy->name(), name);
  }
  EXPECT_FALSE(link::is_backend("bogus"));
}

TEST(LinkRegistry, UnknownBackendThrowsWithTheRegisteredNames) {
  try {
    link::make_backend("bogus");
    FAIL() << "make_backend accepted an unknown name";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("bogus"), std::string::npos);
    EXPECT_NE(what.find("inductive"), std::string::npos);
    EXPECT_NE(what.find("me"), std::string::npos);
  }
  EXPECT_THROW(link::nominal_profile("bogus"), std::invalid_argument);
}

TEST(LinkRegistry, NominalProfileMatchesTheConstructedBackend) {
  for (const auto& name : link::backend_names()) {
    const auto& cheap = link::nominal_profile(name);
    auto phy = link::make_backend(name);
    EXPECT_DOUBLE_EQ(cheap.rate_bps, phy->nominal().rate_bps);
    EXPECT_DOUBLE_EQ(cheap.drive_v, phy->nominal().drive_v);
    EXPECT_DOUBLE_EQ(cheap.load_ohms, phy->nominal().load_ohms);
    EXPECT_DOUBLE_EQ(cheap.cadence_s, phy->nominal().cadence_s);
    EXPECT_DOUBLE_EQ(cheap.carrier_hz, phy->nominal().carrier_hz);
  }
}

// The backend-author contract from src/link/phy.hpp, swept over every
// registered backend so a third backend inherits the gate for free.
TEST(LinkPhyProperty, PowerMonotoneNonIncreasingInDistance) {
  for (const auto& name : link::backend_names()) {
    auto phy = link::make_backend(name);
    link::LinkCondition cond = phy->nominal_condition();
    double prev = phy->power_delivered(cond);
    EXPECT_GT(prev, 0.0) << name;
    for (int i = 1; i <= 12; ++i) {
      cond.distance = phy->nominal_condition().distance + 2e-3 * i;
      const double p = phy->power_delivered(cond);
      EXPECT_LE(p, prev + 1e-15) << name << " at " << cond.distance;
      EXPECT_GE(p, 0.0) << name;
      prev = p;
    }
  }
}

TEST(LinkPhyProperty, PowerMonotoneNonIncreasingInLateralOffset) {
  for (const auto& name : link::backend_names()) {
    auto phy = link::make_backend(name);
    link::LinkCondition cond = phy->nominal_condition();
    double prev = phy->power_delivered(cond);
    for (int i = 1; i <= 10; ++i) {
      cond.lateral_offset = 1e-3 * i;
      const double p = phy->power_delivered(cond);
      EXPECT_LE(p, prev + 1e-15) << name << " at offset " << cond.lateral_offset;
      prev = p;
    }
  }
}

TEST(LinkPhyProperty, EfficiencyStaysInPhysicalBounds) {
  for (const auto& name : link::backend_names()) {
    auto phy = link::make_backend(name);
    link::LinkCondition cond = phy->nominal_condition();
    for (int i = 0; i <= 10; ++i) {
      cond.distance = phy->nominal_condition().distance + 3e-3 * i;
      const double eta = phy->efficiency(cond);
      EXPECT_GE(eta, 0.0) << name;
      EXPECT_LE(eta, 1.0) << name << " at " << cond.distance;
    }
  }
}

TEST(LinkPhyProperty, BerMonotoneNonDecreasingInBitRate) {
  for (const auto& name : link::backend_names()) {
    auto phy = link::make_backend(name);
    const double p = 0.3 * phy->nominal_power();
    const double sensitivity = phy->nominal_power() / 8.0;
    const double r0 = phy->nominal().rate_bps;
    double prev = phy->bit_error_rate(p, sensitivity, r0 / 8.0);
    for (const double scale : {0.25, 0.5, 1.0, 2.0, 4.0}) {
      const double ber = phy->bit_error_rate(p, sensitivity, r0 * scale);
      EXPECT_GE(ber, prev - 1e-15) << name << " at rate x" << scale;
      EXPECT_GE(ber, 0.0) << name;
      EXPECT_LE(ber, 0.5) << name;
      prev = ber;
    }
  }
}

TEST(LinkPhyProperty, DriveCompensationRecoversNominalAtNominalPower) {
  for (const auto& name : link::backend_names()) {
    auto phy = link::make_backend(name);
    EXPECT_NEAR(phy->drive_amplitude(phy->nominal_power()),
                phy->nominal().drive_v, 1e-12)
        << name;
    // Degraded power never *raises* the drive above nominal.
    EXPECT_LE(phy->drive_amplitude(0.1 * phy->nominal_power()),
              phy->nominal().drive_v)
        << name;
    EXPECT_GT(phy->drive_amplitude(0.0), 0.0) << name;
  }
}

TEST(LinkPhyProperty, ModulationNamesAreDistinctPerBackend) {
  auto inductive = link::make_backend("inductive");
  auto me = link::make_backend("me");
  EXPECT_NE(inductive->downlink_modulation(), me->downlink_modulation());
  EXPECT_NE(inductive->uplink_modulation(), me->uplink_modulation());
}

// --- PWM backscatter codec --------------------------------------------------

TEST(PwmCodec, RoundTripsAnyBitPattern) {
  comms::PwmCodec codec;
  const comms::Bits bits = {true, false, false, true, true, true, false, true};
  const comms::Bits chips = codec.encode(bits);
  EXPECT_EQ(chips.size(),
            bits.size() * static_cast<std::size_t>(codec.chips_per_bit));
  EXPECT_EQ(codec.decode(chips), bits);
}

TEST(PwmCodec, MajorityDetectorAbsorbsOneChipFlipPerSymbol) {
  comms::PwmCodec codec;
  const comms::Bits bits = {true, false, true, false};
  comms::Bits chips = codec.encode(bits);
  // Flip one chip inside every symbol: the duty-cycle margin between
  // duty_zero (2/8) and duty_one (6/8) swallows a single flip.
  const auto cpb = static_cast<std::size_t>(codec.chips_per_bit);
  for (std::size_t symbol = 0; symbol < bits.size(); ++symbol) {
    const std::size_t i = symbol * cpb + (symbol % cpb);
    chips[i] = !chips[i];
  }
  EXPECT_EQ(codec.decode(chips), bits);
}

TEST(PwmCodec, DropsTrailingPartialSymbol) {
  comms::PwmCodec codec;
  comms::Bits chips = codec.encode({true, false});
  chips.pop_back();  // torn tail
  EXPECT_EQ(codec.decode(chips).size(), 1u);
}

// --- bio-impedance workload -------------------------------------------------

TEST(BioZ, ProgrammaticLadderMatchesTheShippedNetlist) {
  // The programmatic circuit at scale 1.0 must be the twin of
  // examples/netlists/tissue_ladder.cir: same topology, same values,
  // same transient response at the sense tap.
  const std::filesystem::path path = std::filesystem::path(IRONIC_SOURCE_DIR) /
                                     "examples" / "netlists" /
                                     "tissue_ladder.cir";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << path;
  std::stringstream text;
  text << in.rdbuf();

  spice::Circuit parsed;
  spice::parse_netlist(parsed, text.str());
  // The shipped netlist pulses 0 -> 3 V; build the twin at the same drive.
  auto built = fault::build_tissue_ladder(3.0, 1.0, 60);

  spice::TransientOptions opts;
  opts.t_stop = 20e-6;
  opts.dt_max = 50e-9;
  opts.record_every = 4;
  opts.record_signals = {"v(t5)"};
  const auto ref = spice::run_transient(parsed, opts);
  const auto res = spice::run_transient(*built, opts);
  EXPECT_NEAR(res.mean_between("v(t5)", 10e-6, 20e-6),
              ref.mean_between("v(t5)", 10e-6, 20e-6), 1e-9);
}

TEST(BioZ, MeasurementRisesWithTissueScaleAndStaysDeterministic) {
  fault::BioZPlant plant;
  const double lo = plant.measure(2.4, 0.5);
  const double mid = plant.measure(2.4, 1.0);
  const double hi = plant.measure(2.4, 3.0);
  // Re/Ri up -> the divider tap rises: drift is observable in the codes.
  EXPECT_LT(lo, mid);
  EXPECT_LT(mid, hi);
  EXPECT_EQ(plant.measurements, 3);
  // In the 12-bit ADC window.
  EXPECT_GT(lo, 0.0);
  EXPECT_LT(hi, 4.0);
  fault::BioZPlant again;
  EXPECT_DOUBLE_EQ(again.measure(2.4, 1.0), mid);
}

TEST(BioZ, TissueScaleMapsThicknessFaultsIntoTheClampedBand) {
  EXPECT_DOUBLE_EQ(fault::bioz_tissue_scale(std::nullopt), 1.0);
  EXPECT_DOUBLE_EQ(fault::bioz_tissue_scale(10e-3), 1.0);
  EXPECT_DOUBLE_EQ(fault::bioz_tissue_scale(20e-3), 2.0);
  EXPECT_DOUBLE_EQ(fault::bioz_tissue_scale(1e-3), 0.5);    // clamp low
  EXPECT_DOUBLE_EQ(fault::bioz_tissue_scale(200e-3), 3.0);  // clamp high
}

// --- backend #1 compatibility ----------------------------------------------

TEST(LinkBudget, DefaultIsTheInductiveBackend) {
  fault::LinkBudget def;
  fault::LinkBudget named("inductive");
  EXPECT_EQ(def.phy->name(), "inductive");
  EXPECT_DOUBLE_EQ(def.p_nominal, named.p_nominal);
  EXPECT_DOUBLE_EQ(def.nominal().rate_bps, fault::kNominalRate);
  EXPECT_DOUBLE_EQ(def.nominal().cadence_s, fault::kCadence);
  EXPECT_DOUBLE_EQ(def.nominal().drive_v, fault::kNominalDrive);
  EXPECT_DOUBLE_EQ(def.nominal().load_ohms, fault::kLoadOhms);
}

TEST(LinkBudget, UnknownBackendThrows) {
  EXPECT_THROW(fault::LinkBudget bogus("bogus"), std::invalid_argument);
}

TEST(LinkBudget, DeprecatedFreeBerMatchesBackendOne) {
  link::InductiveAskLsk phy;
  const double p_nominal = phy.nominal_power();
  const double sensitivity = p_nominal / 8.0;
  for (const double power : {0.2 * p_nominal, 0.6 * p_nominal, p_nominal}) {
    for (const double rate : {100e3, 50e3, 12.5e3}) {
      EXPECT_DOUBLE_EQ(fault::bit_error_rate_for(power, sensitivity, rate),
                       phy.bit_error_rate(power, sensitivity, rate));
    }
  }
}

}  // namespace
