#include <gtest/gtest.h>

#include "src/comms/interleave.hpp"
#include "src/magnetics/coil_design.hpp"
#include "src/util/rng.hpp"

namespace {

using namespace ironic;

// ------------------------------------------------------------- coil design

TEST(CoilDesign, EnumerationSortedByQ) {
  const auto base = magnetics::implant_coil_spec();
  magnetics::CoilDesignGoal goal;
  const auto all = magnetics::enumerate_coil_designs(base, goal, {1, 4, 8}, {1, 2},
                                                     {120e-6});
  ASSERT_GT(all.size(), 3u);
  for (std::size_t i = 1; i < all.size(); ++i) {
    EXPECT_GE(all[i - 1].q, all[i].q);
  }
}

TEST(CoilDesign, InfeasibleGeometriesSkippedNotFatal) {
  auto base = magnetics::implant_coil_spec();
  magnetics::CoilDesignGoal goal;
  // 30 turns of 400 um pitch cannot fit even the area-equivalent radius
  // (~4.9 mm); the candidate must be dropped silently while others
  // survive.
  const auto all = magnetics::enumerate_coil_designs(base, goal, {1}, {1, 30},
                                                     {200e-6});
  EXPECT_EQ(all.size(), 1u);
}

TEST(CoilDesign, DesignMeetsInductanceBand) {
  const auto base = magnetics::implant_coil_spec();
  magnetics::CoilDesignGoal goal;
  goal.target_inductance = 3.5e-6;
  goal.tolerance = 0.3;
  const auto best = magnetics::design_coil(base, goal, {1, 2, 4, 7, 8}, {1, 2, 3},
                                           {80e-6, 120e-6, 200e-6});
  EXPECT_TRUE(best.meets_target);
  EXPECT_GE(best.inductance, goal.target_inductance * 0.7);
  EXPECT_LE(best.inductance, goal.target_inductance * 1.3);
  EXPECT_GE(best.srf, goal.min_srf_ratio * goal.frequency);
}

TEST(CoilDesign, ImpossibleTargetThrows) {
  const auto base = magnetics::implant_coil_spec();
  magnetics::CoilDesignGoal goal;
  goal.target_inductance = 1.0;  // one full henry in a 2 mm outline
  EXPECT_THROW(magnetics::design_coil(base, goal, {1, 8}, {1, 2}, {120e-6}),
               std::runtime_error);
  EXPECT_THROW(magnetics::enumerate_coil_designs(base, goal, {}, {1}, {1e-4}),
               std::invalid_argument);
}

// -------------------------------------------------------------- interleave

TEST(Interleave, RoundTrip) {
  util::Rng rng(4);
  const auto bits = comms::random_bits(8 * 16, rng);
  const auto mixed = comms::interleave(bits, 8, 16);
  EXPECT_NE(comms::bits_to_string(mixed), comms::bits_to_string(bits));
  const auto back = comms::deinterleave(mixed, 8, 16);
  EXPECT_EQ(back, bits);
}

TEST(Interleave, SizeValidation) {
  util::Rng rng(4);
  const auto bits = comms::random_bits(10, rng);
  EXPECT_THROW(comms::interleave(bits, 3, 4), std::invalid_argument);
  EXPECT_THROW(comms::deinterleave(bits, 0, 10), std::invalid_argument);
}

TEST(Interleave, SpreadsBurstsIntoIsolatedErrors) {
  util::Rng rng(9);
  const std::size_t rows = 16, cols = 16;
  const auto bits = comms::random_bits(rows * cols, rng);

  // Corrupt a burst on the interleaved stream, then deinterleave.
  auto on_air = comms::interleave(bits, rows, cols);
  util::Rng burst_rng(1);
  on_air = comms::burst_channel(on_air, 1.0, 8, burst_rng);
  const auto received = comms::deinterleave(on_air, rows, cols);

  // Same burst applied without interleaving.
  util::Rng burst_rng2(1);
  const auto plain = comms::burst_channel(bits, 1.0, 8, burst_rng2);

  const auto burst_plain = comms::longest_error_burst(bits, plain);
  const auto burst_inter = comms::longest_error_burst(bits, received);
  EXPECT_GE(burst_plain, 8u);
  // After deinterleaving, the 8-bit burst lands as isolated single-bit
  // errors at least `rows` apart.
  EXPECT_LE(burst_inter, 1u);
  EXPECT_EQ(comms::hamming_distance(bits, received),
            comms::hamming_distance(bits, plain));
}

TEST(Interleave, BurstChannelRespectsProbability) {
  util::Rng rng(17);
  const auto bits = comms::random_bits(256, rng);
  int corrupted = 0;
  for (int k = 0; k < 200; ++k) {
    const auto out = comms::burst_channel(bits, 0.25, 4, rng);
    corrupted += (out != bits);
  }
  EXPECT_NEAR(corrupted, 50, 20);
}

TEST(Interleave, LongestBurstHelper) {
  const auto a = comms::bits_from_string("0000000000");
  const auto b = comms::bits_from_string("0110011100");
  EXPECT_EQ(comms::longest_error_burst(a, b), 3u);
  EXPECT_EQ(comms::longest_error_burst(a, a), 0u);
  EXPECT_THROW(comms::longest_error_burst(a, comms::bits_from_string("0")),
               std::invalid_argument);
}

}  // namespace
