// Streaming-telemetry and profiler coverage: sink delivery/overflow/
// unwritable-path contracts, zone nesting and threading, and the
// trace-recorder flow events that tie sweep points across pool threads.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/obs.hpp"

namespace {

using namespace ironic;
using obs::json::Value;

#if IRONIC_OBS_ENABLED

std::string temp_path(const char* tag) {
  return ::testing::TempDir() + "/ironic_obs_telemetry_" + tag + ".jsonl";
}

std::vector<Value> read_jsonl(const std::string& path) {
  std::ifstream is(path);
  std::vector<Value> rows;
  std::string line;
  while (std::getline(is, line)) {
    if (!line.empty()) rows.push_back(Value::parse(line));
  }
  return rows;
}

TEST(TelemetrySink, DeliversWellFormedJsonLines) {
  const std::string path = temp_path("deliver");
  auto& sink = obs::TelemetrySink::instance();
  ASSERT_TRUE(sink.open(path));
  EXPECT_TRUE(sink.is_open());

  obs::json::Value::Object fields;
  fields["quality"] = 0.5;
  EXPECT_TRUE(sink.emit_event("test.stream", "unit_event", std::move(fields)));
  EXPECT_TRUE(sink.emit_event("test.stream", "second"));
  sink.close();
  EXPECT_FALSE(sink.is_open());

  const auto rows = read_jsonl(path);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].at("stream").as_string(), "test.stream");
  EXPECT_EQ(rows[0].at("event").as_string(), "unit_event");
  EXPECT_DOUBLE_EQ(rows[0].at("quality").as_double(), 0.5);
  EXPECT_GE(rows[0].at("tid").as_double(), 1.0);
  EXPECT_GE(rows[1].at("ts_us").as_double(), rows[0].at("ts_us").as_double());
  std::remove(path.c_str());
}

TEST(TelemetrySink, ClosedSinkAcceptsNothing) {
  auto& sink = obs::TelemetrySink::instance();
  sink.close();
  EXPECT_FALSE(sink.emit_event("test.stream", "into_the_void"));
}

TEST(TelemetrySink, OpenFailsOnUnwritablePathAndStaysClosed) {
  auto& sink = obs::TelemetrySink::instance();
  EXPECT_FALSE(sink.open("/nonexistent-dir-for-obs-test/t.jsonl"));
  EXPECT_FALSE(sink.is_open());
  EXPECT_FALSE(sink.emit_event("test.stream", "dropped_on_floor"));
}

TEST(TelemetrySink, OverflowDropsAndCountsInsteadOfBlocking) {
  const std::string path = temp_path("overflow");
  auto& sink = obs::TelemetrySink::instance();
  auto& registry = obs::MetricsRegistry::instance();
  ASSERT_TRUE(sink.open(path));
  sink.set_paused_for_test(true);  // park the drainer so the ring fills

  const auto dropped_before =
      registry.counter("obs.telemetry.dropped").value();
  std::size_t accepted = 0;
  std::size_t rejected = 0;
  // Two rings' worth: with the drainer parked the first ~capacity lines
  // queue and the rest must be dropped without blocking.
  for (std::size_t i = 0; i < 2 * obs::kTelemetryRingCapacity; ++i) {
    if (sink.emit_event("test.stream", "flood")) {
      ++accepted;
    } else {
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 0u);
  EXPECT_LE(accepted, obs::kTelemetryRingCapacity);
  EXPECT_EQ(registry.counter("obs.telemetry.dropped").value() - dropped_before,
            rejected);

  sink.set_paused_for_test(false);
  sink.close();
  // Everything accepted was eventually written (close drains fully).
  EXPECT_EQ(read_jsonl(path).size(), accepted);
  std::remove(path.c_str());
}

TEST(TelemetrySink, ConcurrentProducersLoseNothingBelowCapacity) {
  const std::string path = temp_path("mpsc");
  auto& sink = obs::TelemetrySink::instance();
  ASSERT_TRUE(sink.open(path));
  constexpr int kThreads = 4;
  constexpr int kEvents = 200;
  std::vector<std::thread> producers;
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&sink, t] {
      const obs::ThreadRegistration registration;
      for (int i = 0; i < kEvents; ++i) {
        obs::json::Value::Object fields;
        fields["producer"] = static_cast<std::uint64_t>(t);
        fields["seq"] = static_cast<std::uint64_t>(i);
        sink.emit_event("test.stream", "mpsc", std::move(fields));
      }
    });
  }
  for (auto& p : producers) p.join();
  sink.close();
  // The drainer keeps up with this rate, so nothing should drop; every
  // line parses and carries its producer tag.
  const auto rows = read_jsonl(path);
  EXPECT_EQ(rows.size(), static_cast<std::size_t>(kThreads) * kEvents);
  for (const auto& row : rows) {
    EXPECT_LT(row.at("producer").as_double(), kThreads);
  }
  std::remove(path.c_str());
}

TEST(TelemetrySink, MetricsSnapshotRowsCarryLabelsAndPercentiles) {
  const std::string path = temp_path("snapshot");
  auto& sink = obs::TelemetrySink::instance();
  ASSERT_TRUE(sink.open(path));

  obs::MetricsRegistry scoped(
      obs::MetricsRegistry::Labels{{"scenario", "unit"}});
  scoped.counter("test.obs.snap.calls").add(3);
  scoped.histogram("test.obs.snap.latency", {1.0, 10.0}).observe(2.0);
  EXPECT_EQ(sink.emit_metrics_snapshot(scoped), 2u);
  sink.close();

  bool saw_hist = false;
  for (const auto& row : read_jsonl(path)) {
    EXPECT_EQ(row.at("stream").as_string(), "metrics");
    EXPECT_EQ(row.at("labels").as_string(), "scenario=unit");
    if (row.at("type").as_string() == "histogram") {
      saw_hist = true;
      EXPECT_DOUBLE_EQ(row.at("count").as_double(), 1.0);
      EXPECT_TRUE(row.contains("p99"));
    }
  }
  EXPECT_TRUE(saw_hist);
  std::remove(path.c_str());
}

TEST(TelemetrySink, AppendModePreservesExistingLines) {
  // The fleet run journal reopens its file with append=true on resume;
  // truncating there would destroy the very records resume needs.
  const std::string path = temp_path("append");
  auto& sink = obs::TelemetrySink::instance();
  ASSERT_TRUE(sink.open(path));
  EXPECT_TRUE(sink.emit_event("test.stream", "first_run"));
  sink.close();

  ASSERT_TRUE(sink.open(path, /*append=*/true));
  EXPECT_TRUE(sink.emit_event("test.stream", "second_run"));
  sink.close();

  const auto rows = read_jsonl(path);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].at("event").as_string(), "first_run");
  EXPECT_EQ(rows[1].at("event").as_string(), "second_run");

  // Default (non-append) open truncates, as before.
  ASSERT_TRUE(sink.open(path));
  EXPECT_TRUE(sink.emit_event("test.stream", "third_run"));
  sink.close();
  const auto truncated = read_jsonl(path);
  ASSERT_EQ(truncated.size(), 1u);
  EXPECT_EQ(truncated[0].at("event").as_string(), "third_run");
  std::remove(path.c_str());
}

TEST(TelemetrySink, CloseFlushesLinesQueuedOnAbnormalPath) {
  // An error exit calls close() while lines may still sit in the ring
  // (the drainer can even be parked). close() must drain them to disk —
  // the flush-on-abnormal-path contract the runners' error returns and
  // the fleet journal rely on.
  const std::string path = temp_path("abnormal");
  auto& sink = obs::TelemetrySink::instance();
  ASSERT_TRUE(sink.open(path));
  sink.set_paused_for_test(true);  // simulate a drainer that never ran
  constexpr std::size_t kLines = 64;
  for (std::size_t i = 0; i < kLines; ++i) {
    obs::json::Value::Object fields;
    fields["seq"] = static_cast<std::uint64_t>(i);
    ASSERT_TRUE(sink.emit_event("test.stream", "pending", std::move(fields)));
  }
  // No unpause: close() itself must recover every queued line.
  sink.close();
  const auto rows = read_jsonl(path);
  ASSERT_EQ(rows.size(), kLines);
  for (std::size_t i = 0; i < kLines; ++i) {
    EXPECT_DOUBLE_EQ(rows[i].at("seq").as_double(), static_cast<double>(i));
  }
  std::remove(path.c_str());
}

TEST(TelemetrySink, DurableSinkIgnoresRuntimeKillSwitch) {
  // The run journal is correctness, not observability: it must keep
  // recording when the obs runtime kill switch silences telemetry.
  const std::string path = temp_path("durable");
  auto& sink = obs::TelemetrySink::instance();
  ASSERT_TRUE(sink.open(path));
  obs::set_runtime_enabled(false);
  EXPECT_FALSE(sink.emit_event("test.stream", "silenced"));
  sink.set_durable(true);
  EXPECT_TRUE(sink.emit_event("test.stream", "durable_line"));
  sink.set_durable(false);
  obs::set_runtime_enabled(true);
  sink.close();
  const auto rows = read_jsonl(path);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].at("event").as_string(), "durable_line");
  std::remove(path.c_str());
}

TEST(Profiler, NestedZonesSplitInclusiveAndExclusive) {
  obs::profiler_reset();
  {
    PROF_ZONE("test.prof.outer");
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    {
      PROF_ZONE("test.prof.inner");
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  const auto zones = obs::profiler_snapshot();
  const obs::ZoneReport* outer = nullptr;
  const obs::ZoneReport* inner = nullptr;
  for (const auto& z : zones) {
    if (z.name == "test.prof.outer") outer = &z;
    if (z.name == "test.prof.inner") inner = &z;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->calls, 1u);
  EXPECT_EQ(inner->calls, 1u);
  // Outer includes inner; outer exclusive excludes it.
  EXPECT_GE(outer->inclusive_ns, inner->inclusive_ns);
  EXPECT_LE(outer->exclusive_ns, outer->inclusive_ns);
  EXPECT_GE(outer->inclusive_ns - outer->exclusive_ns,
            inner->inclusive_ns / 2);
  // Both slept ~5 ms; wide bounds absorb scheduler noise.
  EXPECT_GE(inner->inclusive_ns, 1'000'000u);
  EXPECT_GE(outer->inclusive_ns, 2'000'000u);
}

TEST(Profiler, CallsAreExactUnderSampling) {
  obs::profiler_reset();
  constexpr std::uint64_t kCalls = 10000;  // far past kProfExactCalls
  for (std::uint64_t i = 0; i < kCalls; ++i) {
    PROF_ZONE("test.prof.hot");
  }
  for (const auto& z : obs::profiler_snapshot()) {
    if (z.name == "test.prof.hot") {
      EXPECT_EQ(z.calls, kCalls);
      EXPECT_LE(z.exclusive_ns, z.inclusive_ns + 1);
      return;
    }
  }
  FAIL() << "zone test.prof.hot missing from snapshot";
}

TEST(Profiler, CountsThreadsSeparately) {
  obs::profiler_reset();
  std::vector<std::thread> workers;
  for (int t = 0; t < 3; ++t) {
    workers.emplace_back([] {
      const obs::ThreadRegistration registration;
      PROF_ZONE("test.prof.threads");
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    });
  }
  for (auto& w : workers) w.join();
  for (const auto& z : obs::profiler_snapshot()) {
    if (z.name == "test.prof.threads") {
      EXPECT_EQ(z.calls, 3u);
      EXPECT_EQ(z.threads, 3u);
      return;
    }
  }
  FAIL() << "zone test.prof.threads missing from snapshot";
}

TEST(Profiler, RuntimeKillSwitchDisarmsZones) {
  obs::profiler_reset();
  obs::set_runtime_enabled(false);
  {
    PROF_ZONE("test.prof.disarmed");
  }
  obs::set_runtime_enabled(true);
  for (const auto& z : obs::profiler_snapshot()) {
    EXPECT_NE(z.name, "test.prof.disarmed");
  }
}

TEST(Profiler, MirrorsZonesIntoRegistryGauges) {
  obs::profiler_reset();
  {
    PROF_ZONE("test.prof.mirrored");
  }
  auto& registry = obs::MetricsRegistry::instance();
  obs::profiler_mirror_to_registry(registry);
  bool saw_calls = false;
  for (const auto& s : registry.snapshot()) {
    if (s.name == "prof.test.prof.mirrored.calls") {
      saw_calls = true;
      EXPECT_GE(s.value, 1.0);
    }
  }
  EXPECT_TRUE(saw_calls);
}

TEST(TraceFlow, FlowEventsCarryIdsAndBindingPoint) {
  auto& recorder = obs::TraceRecorder::instance();
  recorder.clear();
  recorder.enable();
  recorder.flow_begin("unit.flow", "test", 42);
  recorder.flow_end("unit.flow", "test", 42);
  recorder.disable();

  std::ostringstream os;
  recorder.write_chrome_trace(os);
  recorder.clear();
  const Value root = Value::parse(os.str());
  bool saw_begin = false, saw_end = false;
  for (const auto& ev : root.at("traceEvents").as_array()) {
    const std::string& ph = ev.at("ph").as_string();
    if (ph == "s") {
      saw_begin = true;
      EXPECT_DOUBLE_EQ(ev.at("id").as_double(), 42.0);
    } else if (ph == "f") {
      saw_end = true;
      EXPECT_DOUBLE_EQ(ev.at("id").as_double(), 42.0);
      EXPECT_EQ(ev.at("bp").as_string(), "e");  // bind to enclosing slice
    }
  }
  EXPECT_TRUE(saw_begin);
  EXPECT_TRUE(saw_end);
}

#else  // !IRONIC_OBS_ENABLED

TEST(DisabledTelemetry, ProfilerStubsReturnEmpty) {
  PROF_ZONE("noop");
  EXPECT_TRUE(obs::profiler_snapshot().empty());
  obs::profiler_reset();
  SUCCEED();
}

#endif  // IRONIC_OBS_ENABLED

}  // namespace
