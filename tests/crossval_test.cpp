// Cross-validation and remaining-extension tests: AC vs transient
// consistency, the analytic ASK BER bound, the carrier-frequency
// optimizer, and chronoamperometry timing.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <tuple>

#include "src/bio/cell.hpp"
#include "src/comms/ask.hpp"
#include "src/comms/bitstream.hpp"
#include "src/magnetics/optimize.hpp"
#include "src/spice/ac.hpp"
#include "src/spice/devices_passive.hpp"
#include "src/spice/devices_sources.hpp"
#include "src/spice/engine.hpp"
#include "src/util/rng.hpp"

namespace {

using namespace ironic;
using namespace ironic::spice;

// ----------------------------------------- AC vs transient cross-validation

class AcTransientP : public ::testing::TestWithParam<double> {};

TEST_P(AcTransientP, SteadyStateSineAmplitudeMatchesAcMagnitude) {
  // An RLC divider driven at frequency f: the settled transient
  // amplitude at the output must equal the AC-analysis magnitude. Two
  // completely independent solution paths (complex phasor MNA vs
  // trapezoidal time stepping) agreeing is a strong engine check.
  const double f = GetParam();
  const auto build = [](Circuit& ckt) {
    const auto in = ckt.node("in");
    const auto mid = ckt.node("mid");
    const auto out = ckt.node("out");
    auto& vs = ckt.add<VoltageSource>("V1", in, kGround, Waveform::sine(1.0, 0.0));
    ckt.add<Resistor>("R1", in, mid, 200.0);
    ckt.add<Inductor>("L1", mid, out, 10e-6);
    ckt.add<Capacitor>("C1", out, kGround, 10e-9);
    ckt.add<Resistor>("R2", out, kGround, 500.0);
    return &vs;
  };

  // AC magnitude.
  Circuit ac_ckt;
  auto* ac_vs = build(ac_ckt);
  ac_vs->set_ac(1.0);
  AcOptions ac_opts;
  ac_opts.f_start = f * 0.999;
  ac_opts.f_stop = f * 1.001;
  ac_opts.log_sweep = false;
  ac_opts.linear_points = 3;
  ac_opts.use_operating_point = false;
  const auto ac = run_ac(ac_ckt, ac_opts);
  const double mag_ac = ac.magnitude("v(out)", 1);

  // Transient steady state.
  Circuit tr_ckt;
  auto* tr_vs = build(tr_ckt);
  tr_vs->set_waveform(Waveform::sine(1.0, f));
  TransientOptions tr_opts;
  // Long enough for both the drive periodicity (>= 60 cycles) and the
  // circuit's own ~RC/L-R settling (tens of microseconds).
  tr_opts.t_stop = std::max(60.0 / f, 40e-6);
  tr_opts.dt_max = 1.0 / f / 200.0;
  tr_opts.record_signals = {"v(out)"};
  const auto tr = run_transient(tr_ckt, tr_opts);
  const double mag_tr =
      tr.peak_abs_between("v(out)", tr_opts.t_stop - 10.0 / f, tr_opts.t_stop);

  EXPECT_NEAR(mag_tr, mag_ac, mag_ac * 0.02) << "f=" << f;
}

INSTANTIATE_TEST_SUITE_P(Frequencies, AcTransientP,
                         ::testing::Values(100e3, 400e3, 1e6, 5e6, 20e6));

// --------------------------------------------------------- BER theory bound

TEST(AskBerTheory, ZeroNoiseZeroBer) {
  comms::AskSpec spec;
  EXPECT_DOUBLE_EQ(comms::ask_theoretical_ber_bound(spec, 0.0), 0.0);
  EXPECT_THROW(comms::ask_theoretical_ber_bound(spec, -0.1), std::invalid_argument);
}

TEST(AskBerTheory, MonotoneInNoise) {
  comms::AskSpec spec;
  double prev = 0.0;
  for (double noise : {0.05, 0.1, 0.2, 0.4}) {
    const double ber = comms::ask_theoretical_ber_bound(spec, noise);
    EXPECT_GT(ber, prev);
    EXPECT_LE(ber, 0.5);
    prev = ber;
  }
}

TEST(AskBerTheory, SimulatedBerStaysBelowBound) {
  // The DSP receiver averages noise through the envelope detector, so
  // its measured BER must not exceed the no-averaging analytic bound.
  comms::AskSpec spec;
  util::Rng rng(2025);
  const auto bits = comms::random_bits(600, rng);
  const double t0 = 10e-6;
  const double t_stop = t0 + 600.0 * spec.bit_period() + 10e-6;
  const auto w = comms::ask_waveform(bits, spec, t0, t_stop);
  for (double noise : {0.15, 0.25}) {
    std::vector<double> ts, vs;
    for (double t = 0.0; t <= t_stop; t += 20e-9) {
      ts.push_back(t);
      vs.push_back(w(t) + rng.normal(0.0, noise));
    }
    const auto rx = comms::demodulate_ask(ts, vs, spec, t0, bits.size());
    const double measured = comms::bit_error_rate(bits, rx);
    const double bound = comms::ask_theoretical_ber_bound(spec, noise);
    EXPECT_LE(measured, bound + 0.02) << "noise=" << noise;
  }
}

// ------------------------------------------------------ frequency optimizer

TEST(CarrierChoice, OptimumInsideBandWithSrfMargin) {
  magnetics::LinkConfig cfg;
  const auto choice = magnetics::optimal_carrier_frequency(cfg, 0.5e6, 40e6);
  EXPECT_GT(choice.frequency, 0.5e6);
  // With only conduction losses modelled, efficiency keeps improving
  // with f, so the optimum may sit at the band edge (still SRF-guarded).
  EXPECT_LE(choice.frequency, 40e6 * (1.0 + 1e-9));  // pow/log grid round-off
  EXPECT_GE(choice.srf_margin, 2.0);  // respects the 0.5 SRF fraction
  EXPECT_GT(choice.efficiency, 0.0);
  EXPECT_LT(choice.efficiency, 1.0);
}

TEST(CarrierChoice, PapersFiveMegahertzIsReasonable) {
  // At 5 MHz the link achieves a large fraction of the in-band optimum —
  // the paper's carrier choice is sound for these coils.
  magnetics::LinkConfig cfg;
  const auto best = magnetics::optimal_carrier_frequency(cfg, 0.5e6, 40e6);
  cfg.frequency = 5e6;
  magnetics::InductiveLink at5{cfg};
  const double eff5 = at5.analyze(1.0, at5.optimal_load_resistance()).efficiency;
  EXPECT_GT(eff5, 0.5 * best.efficiency);
}

TEST(CarrierChoice, Validation) {
  magnetics::LinkConfig cfg;
  EXPECT_THROW(magnetics::optimal_carrier_frequency(cfg, 0.0, 1e6),
               std::invalid_argument);
  EXPECT_THROW(magnetics::optimal_carrier_frequency(cfg, 1e6, 1e5),
               std::invalid_argument);
  // A band entirely above SRF has no feasible point.
  EXPECT_THROW(magnetics::optimal_carrier_frequency(cfg, 20e9, 40e9),
               std::runtime_error);
}

// -------------------------------------------------------- chronoamperometry

TEST(Chronoamperometry, DecaysOntoSteadyState) {
  bio::ElectrochemicalCell cell{bio::clodx_params()};
  const double i_ss = cell.current(1.0);
  double prev = 1e300;
  for (double t : {0.05, 0.2, 1.0, 5.0, 50.0}) {
    const double i = bio::chronoamperometric_current(cell, 1.0, t);
    EXPECT_LT(i, prev);
    EXPECT_GT(i, i_ss);
    prev = i;
  }
  EXPECT_NEAR(bio::chronoamperometric_current(cell, 1.0, 1e6), i_ss, i_ss * 1e-2);
}

TEST(Chronoamperometry, SettlingTimeBound) {
  // 5 % tolerance with t_d = 0.5 s -> 200 s?? No: t >= 0.5 / 0.05^2 = 200 s
  // for raw settling; the implant instead samples at a *fixed* time and
  // calibrates the known over-read away — both numbers must be exact.
  const double t = bio::settling_time_for_tolerance(0.05);
  EXPECT_NEAR(t, 0.5 / 0.0025, 1e-9);
  bio::ElectrochemicalCell cell{bio::clodx_params()};
  const double i = bio::chronoamperometric_current(cell, 1.0, t);
  EXPECT_NEAR(i, cell.current(1.0) * 1.05, cell.current(1.0) * 1e-9);
}

TEST(Chronoamperometry, Validation) {
  bio::ElectrochemicalCell cell{bio::clodx_params()};
  EXPECT_THROW(bio::chronoamperometric_current(cell, 1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(bio::settling_time_for_tolerance(0.0), std::invalid_argument);
}

}  // namespace
