#include <gtest/gtest.h>

#include <cmath>

#include "src/bio/cell.hpp"

namespace {

using namespace ironic::bio;

TEST(Glucose, PhysiologicalRangeCoverage) {
  // Glycemia spans ~4-10 mM; the GOx electrode must resolve that span
  // without saturating (Km above the range midpoint).
  ElectrochemicalCell cell{gox_params()};
  const double j4 = cell.current_density(4.0);
  const double j7 = cell.current_density(7.0);
  const double j10 = cell.current_density(10.0);
  EXPECT_GT(j7, j4);
  EXPECT_GT(j10, j7);
  // Still usefully steep at the top of the range (not yet saturated).
  EXPECT_GT((j10 - j7) / j7, 0.1);
}

TEST(Glucose, CurrentsFitTheAdcRange) {
  // With the standard electrode the glucose currents stay inside the
  // 4 uA full scale of the paper's ADC.
  ElectrochemicalCell cell{gox_params()};
  EXPECT_LT(cell.current(10.0), 4e-6);
  EXPECT_GT(cell.current(4.0), 0.1e-6);
}

TEST(TemperatureKinetics, Q10ScalingAtBodyVsRoom) {
  // Q10 = 2: cooling from 37 C to 27 C halves the enzyme activity.
  ElectrochemicalCell cell{clodx_params()};
  const double at_body = cell.current_density(1.0, 310.15);
  const double at_room = cell.current_density(1.0, 300.15);
  EXPECT_NEAR(at_room / at_body, 0.5, 1e-9);
  // Reference temperature leaves the base value unchanged.
  EXPECT_DOUBLE_EQ(at_body, cell.current_density(1.0));
}

TEST(TemperatureKinetics, MonotoneInTemperature) {
  ElectrochemicalCell cell{gox_params()};
  double prev = 0.0;
  for (double t : {295.15, 300.15, 305.15, 310.15, 313.15}) {
    const double j = cell.current_density(5.0, t);
    EXPECT_GT(j, prev);
    prev = j;
  }
}

TEST(TemperatureKinetics, FeverShiftIsSmallButVisible) {
  // 37 -> 39 C: ~15 % activity increase with Q10 = 2 — a known error
  // source for implanted sensors that the calibration must absorb.
  ElectrochemicalCell cell{clodx_params()};
  const double shift =
      cell.current_density(1.0, 312.15) / cell.current_density(1.0, 310.15);
  EXPECT_NEAR(shift, std::pow(2.0, 0.2), 1e-9);
}

TEST(TemperatureKinetics, RejectsNonPhysicalTemperature) {
  ElectrochemicalCell cell{clodx_params()};
  EXPECT_THROW(cell.current_density(1.0, -1.0), std::invalid_argument);
}

TEST(Glucose, CurrentWithTemperatureOverloadConsistent) {
  ElectrochemicalCell cell{gox_params()};
  EXPECT_DOUBLE_EQ(cell.current(5.0, cell.enzyme().t_ref), cell.current(5.0));
}

}  // namespace
