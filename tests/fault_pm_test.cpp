// pm modules under injected faults (ISSUE satellite): the demodulator
// facing burst-corrupted downlink frames, and the rectifier clamp chain
// facing an injected overvoltage transient.
#include <gtest/gtest.h>

#include <vector>

#include "src/comms/bitstream.hpp"
#include "src/fault/injector.hpp"
#include "src/fault/schedule.hpp"
#include "src/pm/demodulator.hpp"
#include "src/pm/rectifier.hpp"
#include "src/spice/devices_passive.hpp"
#include "src/spice/devices_sources.hpp"
#include "src/spice/engine.hpp"
#include "src/util/interp.hpp"
#include "src/util/rng.hpp"

namespace {

using namespace ironic;
using namespace ironic::fault;
using namespace ironic::spice;

pm::RectifierOptions fast_rect_options() {
  pm::RectifierOptions opt;
  opt.storage_capacitance = 10e-9;  // small Co keeps the transients quick
  opt.diode_is = 1e-16;
  return opt;
}

// Decode `bits` through the transistor-level ASK demodulator: amplitude
// 3.5 V for '1', 2.0 V for '0' at 100 kbps (the pm_modules_test idiom).
std::vector<bool> demodulate(const std::vector<bool>& bits) {
  const double tb = 10e-6;
  const double t0 = 10e-6;
  std::vector<double> ts{0.0};
  std::vector<double> vs{3.5};
  for (std::size_t i = 0; i < bits.size(); ++i) {
    const double a = bits[i] ? 3.5 : 2.0;
    ts.push_back(t0 + i * tb);
    vs.push_back(vs.back());
    ts.push_back(t0 + i * tb + 0.5e-6);
    vs.push_back(a);
  }
  ts.push_back(t0 + bits.size() * tb);
  vs.push_back(vs.back());
  ts.push_back(t0 + bits.size() * tb + 0.5e-6);
  vs.push_back(3.5);

  Circuit ckt;
  const auto vi = ckt.node("vi");
  ckt.add<VoltageSource>(
      "Vs", vi, kGround,
      Waveform::modulated_sine(5e6, ironic::util::PiecewiseLinear(ts, vs)));
  pm::DemodulatorOptions dopt;
  dopt.clock_frequency = 100e3;
  dopt.clock_delay = t0;
  dopt.threshold = 2.3;
  const auto demod = pm::build_demodulator(ckt, "dm", vi, dopt);

  TransientOptions opts;
  opts.t_stop = t0 + (bits.size() + 1) * tb;
  opts.dt_max = 4e-9;
  opts.record_every = 4;
  const auto res = run_transient(ckt, opts);
  return pm::decode_demodulator_output(res, demod, t0, bits.size());
}

TEST(FaultPm, DemodulatorDeliversBurstCorruptedFrameFaithfully) {
  // A burst fault inverts 3 contiguous bits of the downlink frame. The
  // analog front end must deliver exactly the corrupted pattern — the
  // demodulator adds no errors of its own, so the CRC layer above sees
  // precisely what the channel did.
  FaultSchedule schedule;
  schedule.add({FaultKind::kBurstError, 0.0, -1.0, 3.0, LinkDirection::kDownlink});
  SimClock clock;
  FaultInjector injector(&schedule, &clock, util::Rng::stream(0xd0d0, 0));
  auto channel = injector.wrap({}, LinkDirection::kDownlink);

  auto rng = util::Rng::stream(0xd0d0, 1);
  const comms::Bits sent = comms::random_bits(6, rng);
  const comms::Bits corrupted = channel(sent);
  ASSERT_EQ(comms::hamming_distance(sent, corrupted), 3u);

  const auto decoded = demodulate(corrupted);
  ASSERT_EQ(decoded.size(), corrupted.size());
  for (std::size_t i = 0; i < corrupted.size(); ++i) {
    EXPECT_EQ(decoded[i], corrupted[i]) << "bit " << i;
  }
  EXPECT_EQ(comms::hamming_distance(sent, decoded), 3u);
}

double rectifier_vo_max(double amplitude, const pm::RectifierOptions& opt) {
  Circuit ckt;
  const auto src = ckt.node("src");
  const auto vi = ckt.node("vi");
  ckt.add<VoltageSource>("Vs", src, kGround, Waveform::sine(amplitude, 5e6));
  ckt.add<Resistor>("Rs", src, vi, 50.0);
  pm::build_rectifier(ckt, "r", vi, Waveform::dc(0.0), Waveform::dc(1.8), opt);
  TransientOptions opts;
  opts.t_stop = 60e-6;
  opts.dt_max = 5e-9;
  opts.record_every = 4;
  const auto res = run_transient(ckt, opts);
  return res.max_between("v(r.vo)", 0.0, 60e-6);
}

TEST(FaultPm, RectifierClampHoldsUnderInjectedOvervoltage) {
  // An overvoltage fault scales the drive amplitude by a seeded draw
  // from the stochastic range [1.5, 2.5]; the injector reports the scale
  // while the event governs the clock.
  auto draw = util::Rng::stream(0xfa, 0);
  const double magnitude = draw.uniform(1.5, 2.5);
  FaultSchedule schedule;
  schedule.add({FaultKind::kOvervoltage, 0.0, -1.0, magnitude,
                LinkDirection::kBoth});
  SimClock clock;
  FaultInjector injector(&schedule, &clock, util::Rng(1));
  ASSERT_DOUBLE_EQ(injector.drive_scale(), magnitude);
  injector.note_applied(FaultKind::kOvervoltage);
  EXPECT_EQ(injector.injected(FaultKind::kOvervoltage), 1u);

  const double amplitude = 3.5 * injector.drive_scale();  // 5.25 .. 8.75 V
  // The clamp knee is four diode drops (~3 V) plus a resistive rise, so
  // the worst-case injected drive still lands well under the runaway
  // regime the ablation below reaches.
  EXPECT_LT(rectifier_vo_max(amplitude, fast_rect_options()), 3.5);
}

TEST(FaultPm, RectifierWithoutClampOvervoltsUnderSameFault) {
  // Ablation: the same injected overvoltage with the clamps disabled
  // runs away past 4 V — the clamp is what makes the fault survivable.
  auto draw = util::Rng::stream(0xfa, 0);
  const double magnitude = draw.uniform(1.5, 2.5);
  auto opt = fast_rect_options();
  opt.clamps_enabled = false;
  EXPECT_GT(rectifier_vo_max(3.5 * magnitude, opt), 4.0);
}

}  // namespace
