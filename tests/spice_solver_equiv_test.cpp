// Backend-equivalence sweep (DESIGN.md §11): every shipped example
// netlist must produce the same DC operating point and the same transient
// waveforms under the dense and sparse linear-solver backends, and the
// sparse backend's caching ladder (pattern reuse, numeric-only
// refactorization, bit-identical factor skip) must actually engage on
// engine-shaped workloads.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/spice/ac.hpp"
#include "src/spice/circuit.hpp"
#include "src/spice/devices_passive.hpp"
#include "src/spice/devices_sources.hpp"
#include "src/spice/engine.hpp"
#include "src/spice/netlist_parser.hpp"
#include "src/spice/trace.hpp"

namespace {

using namespace ironic::spice;

const std::filesystem::path kSourceDir = IRONIC_SOURCE_DIR;

std::string read_file(const std::filesystem::path& p) {
  std::ifstream in(p);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

std::vector<std::filesystem::path> example_netlists() {
  std::vector<std::filesystem::path> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(kSourceDir / "examples" / "netlists")) {
    if (entry.path().extension() == ".cir") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

// Uniform comparison grid inside [t0, t1].
std::vector<double> grid(double t0, double t1, std::size_t points) {
  std::vector<double> t(points);
  for (std::size_t i = 0; i < points; ++i) {
    t[i] = t0 + (t1 - t0) * static_cast<double>(i) / static_cast<double>(points - 1);
  }
  return t;
}

// Waveform agreement: at least 98% of samples within atol + rtol * range.
// The slack fraction absorbs single-sample jitter where a comparator or
// switch crosses its threshold a rounding error apart between backends;
// a wrong factorization diverges everywhere, not at isolated edges.
void expect_signals_close(const TransientResult& a, const TransientResult& b,
                          const std::vector<double>& times,
                          const std::string& context) {
  ASSERT_EQ(a.names().size(), b.names().size()) << context;
  for (const auto& name : a.names()) {
    ASSERT_TRUE(b.has_signal(name)) << context << " signal " << name;
    const auto sa = a.sample(name, times);
    const auto sb = b.sample(name, times);
    const auto [lo, hi] = std::minmax_element(sa.begin(), sa.end());
    const double range = *hi - *lo;
    const double tol = 1e-6 + 2e-2 * range;
    std::size_t bad = 0;
    double worst = 0.0;
    for (std::size_t i = 0; i < times.size(); ++i) {
      const double err = std::abs(sa[i] - sb[i]);
      worst = std::max(worst, err);
      if (err > tol) ++bad;
    }
    EXPECT_LE(bad, times.size() / 50)
        << context << " signal " << name << ": " << bad << "/" << times.size()
        << " samples beyond tol " << tol << " (worst " << worst << ")";
  }
}

}  // namespace

TEST(SolverEquiv, DcOperatingPointsAgreeOnEveryExampleNetlist) {
  const auto files = example_netlists();
  ASSERT_GE(files.size(), 7u);
  for (const auto& file : files) {
    Circuit dense_ckt, sparse_ckt;
    const std::string text = read_file(file);
    ASSERT_NO_THROW(parse_netlist(dense_ckt, text)) << file;
    parse_netlist(sparse_ckt, text);

    DcOptions dense_opts, sparse_opts;
    dense_opts.solver = ironic::linalg::SolverKind::kDense;
    sparse_opts.solver = ironic::linalg::SolverKind::kSparse;
    const DcResult xd = solve_dc(dense_ckt, dense_opts);
    const DcResult xs = solve_dc(sparse_ckt, sparse_opts);
    ASSERT_TRUE(xd.converged) << file;
    ASSERT_TRUE(xs.converged) << file;
    ASSERT_EQ(xd.x.size(), xs.x.size()) << file;
    for (std::size_t i = 0; i < xd.x.size(); ++i) {
      EXPECT_NEAR(xs.x[i], xd.x[i], 1e-3 * (1.0 + std::abs(xd.x[i])))
          << file << " unknown " << i;
    }
  }
}

TEST(SolverEquiv, TransientWaveformsAgreeOnEveryExampleNetlist) {
  for (const auto& file : example_netlists()) {
    const std::string text = read_file(file);
    TransientOptions opts;
    opts.t_stop = 1.5e-6;
    opts.dt_max = 2e-9;
    opts.record_every = 4;

    TransientResult results[2];
    const ironic::linalg::SolverKind kinds[2] = {
        ironic::linalg::SolverKind::kDense, ironic::linalg::SolverKind::kSparse};
    for (int k = 0; k < 2; ++k) {
      Circuit ckt;
      parse_netlist(ckt, text);
      TransientOptions o = opts;
      o.solver = kinds[k];
      ASSERT_NO_THROW(results[k] = run_transient(ckt, o)) << file;
      ASSERT_GT(results[k].num_points(), 10u) << file;
    }
    expect_signals_close(results[0], results[1], grid(0.0, 1.4e-6, 200),
                         file.filename().string());
  }
}

TEST(SolverEquiv, TissueLadderAutoSelectsSparseAndCachesFactorizations) {
  // The 60-segment Fricke ladder is the largest shipped netlist: well
  // past kSparseAutoThreshold, so kAuto must resolve to the sparse
  // backend — and the circuit is linear, so the bit-identical factor skip
  // must make numeric factorizations lag triangular solves.
  Circuit ckt;
  parse_netlist(ckt, read_file(kSourceDir / "examples" / "netlists" /
                               "tissue_ladder.cir"));
  ckt.finalize();
  ASSERT_GE(ckt.num_unknowns(), 100u);
  auto& solver = ckt.acquire_solver(ironic::linalg::SolverKind::kAuto);
  EXPECT_STREQ(solver.name(), "sparse");

  TransientOptions opts;
  opts.t_stop = 5e-6;
  opts.dt_max = 5e-9;
  opts.record_every = 8;
  TransientStats stats;
  const auto result = run_transient(ckt, opts, &stats);
  EXPECT_GT(result.num_points(), 10u);
  EXPECT_EQ(stats.solves, stats.newton_iterations);
  EXPECT_GT(stats.factorizations, 0u);
  EXPECT_LT(stats.factorizations, stats.solves)
      << "linear circuit: identical matrices must skip refactoring";

  // The engine re-acquires the circuit-owned solver, so its lifetime
  // stats reflect the run: one pattern build, reuse ever after.
  const auto& st = ckt.acquire_solver(ironic::linalg::SolverKind::kAuto).stats();
  EXPECT_EQ(st.pattern_builds, 1u);
  EXPECT_GT(st.pattern_reuses, 0u);
  EXPECT_LT(st.factor_nnz, ckt.num_unknowns() * ckt.num_unknowns() / 10)
      << "banded ladder must not fill in";
}

TEST(SolverEquiv, AcSweepAgreesAndRefactorizesAcrossFrequencies) {
  // 40-section RC ladder, built twice: the complex sparse backend must
  // match complex dense across the sweep, and because the AC pattern is
  // frequency-invariant every frequency after the first must be a
  // numeric-only refactorization.
  const auto build = [](Circuit& ckt) {
    NodeId prev = ckt.node("in");
    auto& vs = ckt.add<VoltageSource>("V1", prev, kGround, Waveform::dc(0.0));
    vs.set_ac(1.0);
    for (int i = 0; i < 40; ++i) {
      const NodeId next = ckt.node("n" + std::to_string(i));
      ckt.add<Resistor>("R" + std::to_string(i), prev, next, 220.0);
      ckt.add<Capacitor>("C" + std::to_string(i), next, kGround, 47e-12);
      prev = next;
    }
    ckt.add<Resistor>("RL", prev, kGround, 10e3);
  };

  AcOptions opts;
  opts.f_start = 1e4;
  opts.f_stop = 1e8;
  opts.points_per_decade = 5;
  opts.use_operating_point = false;

  Circuit dense_ckt, sparse_ckt;
  build(dense_ckt);
  build(sparse_ckt);
  AcOptions dense_opts = opts, sparse_opts = opts;
  dense_opts.solver = ironic::linalg::SolverKind::kDense;
  sparse_opts.solver = ironic::linalg::SolverKind::kSparse;
  const AcResult rd = run_ac(dense_ckt, dense_opts);
  const AcResult rs = run_ac(sparse_ckt, sparse_opts);
  ASSERT_EQ(rd.num_points(), rs.num_points());
  const auto md = rd.magnitude("v(n39)");
  const auto ms = rs.magnitude("v(n39)");
  for (std::size_t i = 0; i < md.size(); ++i) {
    EXPECT_NEAR(ms[i], md[i], 1e-9 + 1e-6 * md[i]) << "frequency index " << i;
  }

  const auto& st =
      sparse_ckt.acquire_complex_solver(ironic::linalg::SolverKind::kSparse).stats();
  EXPECT_EQ(st.pattern_builds, 1u);
  EXPECT_EQ(st.factorizations, rs.num_points());
  EXPECT_EQ(st.refactorizations, rs.num_points() - 1);
}

TEST(SolverEquiv, CheckpointResumeIsBitExactUnderTheSparseBackend) {
  // The checkpoint contract (DESIGN.md §10) is backend-independent: a
  // resumed sparse run must reproduce the uninterrupted sparse run sample
  // for sample, even though the resumed solver starts with a cold cache.
  // Power-of-two step and split: t accumulates k * 2^-28 s exactly, so
  // the uninterrupted run passes through the split time bit-exactly at
  // the same accepted-step ordinal the capturing run stops at (no
  // rounding micro-step, no breakpoint/t_stop edge cases — the pulse's
  // first edge at 1 us lies beyond the split).
  const double kDt = std::ldexp(1.0, -28);    // ~3.73 ns
  const double kSplit = std::ldexp(1.0, -20); // ~0.954 us = 256 * kDt
  const double kStop = 4e-6;
  const auto build = [](Circuit& ckt) {
    parse_netlist(ckt, read_file(kSourceDir / "examples" / "netlists" /
                                 "tissue_ladder.cir"));
  };
  const auto options = [kDt](double t_stop) {
    TransientOptions o;
    o.t_stop = t_stop;
    o.dt_max = kDt;
    o.record_every = 3;  // decimation phase must survive the splice
    o.solver = ironic::linalg::SolverKind::kSparse;
    return o;
  };
  const auto tail_rows = [](const TransientResult& res, double after) {
    std::vector<std::vector<double>> rows;
    for (std::size_t i = 0; i < res.num_points(); ++i) {
      const double t = res.time()[i];
      if (t <= after) continue;
      std::vector<double> row{t};
      for (const auto& name : res.names()) row.push_back(res.signal(name)[i]);
      rows.push_back(std::move(row));
    }
    return rows;
  };

  Circuit full_ckt;
  build(full_ckt);
  const auto full = run_transient(full_ckt, options(kStop));

  Circuit head_ckt;
  build(head_ckt);
  TransientCheckpoint cp;
  auto head = options(kSplit);
  head.checkpoint = &cp;
  (void)run_transient(head_ckt, head);
  ASSERT_TRUE(cp.valid());
  ASSERT_DOUBLE_EQ(cp.time, kSplit);

  Circuit tail_ckt;
  build(tail_ckt);
  auto tail = options(kStop);
  tail.resume_from = &cp;
  const auto resumed = run_transient(tail_ckt, tail);

  const auto want = tail_rows(full, cp.time);
  const auto got = tail_rows(resumed, 0.0);  // records only t > split
  ASSERT_FALSE(want.empty());
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(got[i].size(), want[i].size());
    for (std::size_t j = 0; j < want[i].size(); ++j) {
      EXPECT_EQ(got[i][j], want[i][j])
          << "row " << i << " col " << j << " (t=" << want[i][0] << ")";
    }
  }
}
