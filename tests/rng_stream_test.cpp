// util::Rng stream splitting: the xoshiro256++ jump machinery that the
// exec subsystem's determinism contract stands on.
//
// The golden vectors below were produced by an independent transcription
// of Blackman & Vigna's reference C implementation (prng.di.unimi.it),
// seeded through the same splitmix64 expansion Rng uses — they pin both
// the base generator and the published jump/long-jump polynomials.
#include "src/util/rng.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

using ironic::util::Rng;

namespace {

struct JumpVector {
  std::uint64_t seed;
  std::uint64_t first4[4];   // first draws, no jump
  std::uint64_t jump4[4];    // first draws after one jump()
  std::uint64_t jump2x4[4];  // first draws after two jump()s
  std::uint64_t ljump4[4];   // first draws after one long_jump()
};

constexpr JumpVector kVectors[] = {
    {0x1234abcd5678ef00ull,  // Rng's default seed
     {0x6f9f2714d925933eull, 0xef10f2206762941cull, 0x07b64ea6a6e3a695ull,
      0x7fd6076f449cc026ull},
     {0xa2bb93116b86ba06ull, 0x673a87779ee17283ull, 0x1802251cd65af397ull,
      0xf76d5ca34cd149e6ull},
     {0x4b7fda00234e990bull, 0xf05f9d47b74ba961ull, 0x513705a452c997f1ull,
      0xa96e7e1ad32861abull},
     {0xf610b26c76e103b2ull, 0x548bd68fd5c069d0ull, 0xd4957acefcdb119aull,
      0xff3b71bbc1ba3cf4ull}},
    {1ull,
     {0xcfc5d07f6f03c29bull, 0xbf424132963fe08dull, 0x19a37d5757aaf520ull,
      0xbf08119f05cd56d6ull},
     {0xdafd92f1adffc5b9ull, 0x89d5ed6828f5becfull, 0xc81a7b85673e9dacull,
      0xe3ed98a07ef5a746ull},
     {0xcf14ec0cd23320f2ull, 0x0d996ecdd4a89305ull, 0x9a094a1d92763d30ull,
      0x998f46b945e5c6f8ull},
     {0xc6e0f3d2b09d8eecull, 0x55ad95eef7a40e42ull, 0x8cc0e5594cb97ab0ull,
      0x708019a0cb2b42e8ull}},
    {0xF16A11ull,  // the tolerance Monte Carlo's seed
     {0x73b35ae37896fb4eull, 0x427a08e87ee55684ull, 0xf2ff9fa21d1d8251ull,
      0x5d2f882fd70aeea9ull},
     {0xbdc5cf23685bd3a2ull, 0x832518e8657aff29ull, 0x745ea70c139fb4cfull,
      0xf9b6541898ca8ad4ull},
     {0xda5e7ecbc678138full, 0x1128c0602a149b41ull, 0xf96c4580133765d3ull,
      0x0cff492f016814e9ull},
     {0xc22b4d99b44c16eeull, 0x67be7f599c00dd02ull, 0xa613032f248f041bull,
      0xf6d7faf1a4297374ull}},
    {0x5eed0123456789abull,  // exec::SweepOptions' default seed
     {0xf83bf36d4f0eb1e0ull, 0xe10323c2e834403eull, 0xbd553da5c0a6b32eull,
      0x7a1df8a490011bb4ull},
     {0xaa6403d89e849419ull, 0xdf1db05b3ef17990ull, 0xd1b211fae48bbcf7ull,
      0xd4747d3d5a141141ull},
     {0xb5c380a10c71e0f0ull, 0xda0ed5807eec1158ull, 0xaa544314c1228aa3ull,
      0x6c97c58d465599feull},
     {0xe40f198fcf4ca9f3ull, 0x910126283084da2aull, 0x0ac6181d3a6d654aull,
      0x9f2f8ec3e614661cull}},
};

TEST(RngStream, BaseGeneratorMatchesReference) {
  for (const auto& v : kVectors) {
    Rng rng(v.seed);
    for (const std::uint64_t expected : v.first4)
      EXPECT_EQ(rng.next_u64(), expected) << "seed " << v.seed;
  }
}

TEST(RngStream, JumpMatchesReferencePolynomial) {
  for (const auto& v : kVectors) {
    Rng rng(v.seed);
    rng.jump();
    for (const std::uint64_t expected : v.jump4)
      EXPECT_EQ(rng.next_u64(), expected) << "seed " << v.seed;
  }
}

TEST(RngStream, DoubleJumpMatchesReference) {
  for (const auto& v : kVectors) {
    Rng rng(v.seed);
    rng.jump();
    rng.jump();
    for (const std::uint64_t expected : v.jump2x4)
      EXPECT_EQ(rng.next_u64(), expected) << "seed " << v.seed;
  }
}

TEST(RngStream, LongJumpMatchesReferencePolynomial) {
  for (const auto& v : kVectors) {
    Rng rng(v.seed);
    rng.long_jump();
    for (const std::uint64_t expected : v.ljump4)
      EXPECT_EQ(rng.next_u64(), expected) << "seed " << v.seed;
  }
}

TEST(RngStream, JumpAfterDrawingEqualsJumpThenCatchUp) {
  // jump() commutes with drawing: advancing k draws then jumping lands at
  // the same stream position as jumping then advancing k draws.
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 7; ++i) a.next_u64();
  a.jump();
  b.jump();
  for (int i = 0; i < 7; ++i) b.next_u64();
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngStream, SplitChildIsParentJumpedIPlusOneTimes) {
  const Rng parent(99);
  auto streams = Rng(99).split(4);
  ASSERT_EQ(streams.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    Rng expected = parent;
    for (std::size_t j = 0; j <= i; ++j) expected.jump();
    for (int k = 0; k < 8; ++k)
      EXPECT_EQ(streams[i].next_u64(), expected.next_u64())
          << "stream " << i << " draw " << k;
  }
}

TEST(RngStream, SplitLeavesParentUntouched) {
  Rng parent(7);
  Rng control(7);
  (void)parent.split(16);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(parent.next_u64(), control.next_u64());
}

TEST(RngStream, StreamFactoryMatchesSplit) {
  auto streams = Rng(0xBEEF).split(5);
  for (std::uint64_t i = 0; i < 5; ++i) {
    Rng s = Rng::stream(0xBEEF, i);
    for (int k = 0; k < 8; ++k) EXPECT_EQ(s.next_u64(), streams[i].next_u64());
  }
}

TEST(RngStream, JumpDiscardsCachedBoxMullerHalf) {
  // `dirty` draws ONE normal (two u64s consumed, the sine half cached);
  // `clean` draws TWO (same two u64s consumed, cache drained). Both sit
  // at the same stream position, differing only in cache occupancy, so
  // after a jump their normal streams must coincide — a stale cached
  // half leaking across the jump would desynchronize them.
  Rng dirty(1234);
  (void)dirty.normal();
  Rng clean(1234);
  (void)clean.normal();
  (void)clean.normal();
  dirty.jump();
  clean.jump();
  for (int i = 0; i < 8; ++i) EXPECT_DOUBLE_EQ(dirty.normal(), clean.normal());
}

TEST(RngStream, StreamsAreDistinctAndWellDistributed) {
  // Independence smoke test: 8 streams x 1000 draws — no collisions at
  // all (64-bit draws; any collision would be astronomically unlikely for
  // non-overlapping streams), and each stream's uniform() mean is near
  // 0.5 (a shifted/correlated stream family would show up here first).
  constexpr int kStreams = 8;
  constexpr int kDraws = 1000;
  auto streams = Rng(2024).split(kStreams);
  std::set<std::uint64_t> seen;
  for (auto& s : streams) {
    Rng copy = s;
    for (int i = 0; i < kDraws; ++i) seen.insert(copy.next_u64());
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kStreams * kDraws));
  for (auto& s : streams) {
    double sum = 0.0;
    for (int i = 0; i < kDraws; ++i) sum += s.uniform();
    const double mean = sum / kDraws;
    EXPECT_NEAR(mean, 0.5, 0.05);
  }
}

TEST(RngStream, SplitZeroIsEmpty) {
  EXPECT_TRUE(Rng(1).split(0).empty());
}

TEST(RngStream, HashedStreamIsReproducibleAndKeyed) {
  // O(1) keyed derivation for fleet-scale session counts (stream(seed,
  // index) costs `index` jumps — quadratic across thousands of
  // sessions). Same (seed, index) must reproduce bitwise; any change to
  // either key must yield an unrelated stream.
  Rng a = Rng::hashed_stream(0xFEEDull, 12345);
  Rng b = Rng::hashed_stream(0xFEEDull, 12345);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());

  // 64 indices under one seed plus 64 seeds at one index: 128 streams,
  // 64 draws each, zero collisions (64-bit draws — any collision means
  // correlated streams, not chance).
  std::set<std::uint64_t> seen;
  for (std::uint64_t index = 0; index < 64; ++index) {
    Rng s = Rng::hashed_stream(0xFEEDull, index);
    for (int k = 0; k < 64; ++k) seen.insert(s.next_u64());
  }
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    Rng s = Rng::hashed_stream(seed, 7);
    for (int k = 0; k < 64; ++k) seen.insert(s.next_u64());
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(128 * 64));

  // Adjacent indices — the common fleet pattern — are as unrelated as
  // distant ones: the uniform mean stays centred for every lane.
  for (std::uint64_t index = 100; index < 104; ++index) {
    Rng s = Rng::hashed_stream(42, index);
    double sum = 0.0;
    for (int i = 0; i < 1000; ++i) sum += s.uniform();
    EXPECT_NEAR(sum / 1000.0, 0.5, 0.05);
  }
}

}  // namespace
