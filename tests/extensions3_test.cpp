// Third extension wave: battery cycle aging, LDO PSRR via AC analysis,
// and netlist-vs-programmatic circuit equivalence.
#include <gtest/gtest.h>

#include <cmath>

#include "src/patch/battery.hpp"
#include "src/pm/regulator.hpp"
#include "src/spice/ac.hpp"
#include "src/spice/devices_nonlinear.hpp"
#include "src/spice/devices_passive.hpp"
#include "src/spice/devices_sources.hpp"
#include "src/spice/engine.hpp"
#include "src/spice/netlist_parser.hpp"

namespace {

using namespace ironic;
using namespace ironic::spice;

// ------------------------------------------------------------ battery aging

TEST(BatteryAging, FreshCellFullHealth) {
  patch::LiIonBattery batt;
  EXPECT_DOUBLE_EQ(batt.health(), 1.0);
  EXPECT_DOUBLE_EQ(batt.cycles(), 0.0);
  EXPECT_DOUBLE_EQ(batt.effective_capacity_coulombs(),
                   batt.spec().capacity_coulombs());
}

TEST(BatteryAging, CyclesAccumulateWithThroughput) {
  patch::LiIonBattery batt;
  const double cap = batt.spec().capacity_coulombs();
  // Ten full discharge/recharge cycles.
  for (int k = 0; k < 10; ++k) {
    batt.draw(1.0, cap);  // empty it
    batt.recharge();
  }
  EXPECT_NEAR(batt.cycles(), 10.0, 0.1);
  EXPECT_LT(batt.health(), 1.0);
  EXPECT_GT(batt.health(), 0.99);  // 10 cycles: barely worn
}

TEST(BatteryAging, FiveHundredCyclesNearEightyPercent) {
  patch::BatterySpec spec;
  patch::LiIonBattery batt{spec};
  const double cap = spec.capacity_coulombs();
  for (int k = 0; k < 500; ++k) {
    batt.draw(10.0, cap / 10.0);
    batt.recharge();
  }
  // The classic Li-ion end-of-life criterion.
  EXPECT_NEAR(batt.health(), 0.80, 0.04);
  // The paper's 1.5 h continuous-powering figure shrinks with the cell.
  EXPECT_NEAR(batt.time_to_empty(0.158) / 3600.0, 1.5 * batt.health(), 0.1);
}

TEST(BatteryAging, HealthFloorPreventsNonsense) {
  patch::BatterySpec spec;
  spec.fade_per_cycle = 0.5;  // absurdly fast fade
  patch::LiIonBattery batt{spec};
  for (int k = 0; k < 20; ++k) {
    batt.draw(10.0, spec.capacity_coulombs());
    batt.recharge();
  }
  EXPECT_GE(batt.health(), 0.05);
  EXPECT_GT(batt.effective_capacity_coulombs(), 0.0);
}

// ---------------------------------------------------------------- LDO PSRR

TEST(LdoPsrr, SupplyRippleAttenuatedInRegulation) {
  // AC analysis of the circuit-level LDO: 1 V of ripple on the input
  // must appear attenuated at the output while in regulation. The LDO's
  // bias point only settles dynamically, so it is taken from the tail of
  // a settling transient and handed to run_ac (the operating_point
  // escape hatch).
  Circuit ckt;
  const auto vin = ckt.node("vin");
  auto& vs = ckt.add<VoltageSource>("Vin", vin, kGround, Waveform::dc(2.75));
  vs.set_ac(1.0);
  const auto ldo = pm::build_ldo(ckt, "ldo", vin);
  ckt.add<Resistor>("RL", ldo.output, kGround, 1.8 / 350e-6);

  TransientOptions settle;
  settle.t_stop = 300e-6;
  settle.dt_max = 100e-9;
  const auto tran = run_transient(ckt, settle);

  AcOptions opts;
  opts.f_start = 100.0;
  opts.f_stop = 10e3;
  opts.points_per_decade = 5;
  for (const auto& name : ckt.signal_names()) {
    opts.operating_point.push_back(tran.signal(name).back());
  }
  const auto res = run_ac(ckt, opts);
  for (std::size_t i = 0; i < res.num_points(); ++i) {
    EXPECT_LT(res.magnitude("v(ldo.vout)", i), 0.25)
        << "PSRR < 12 dB at f=" << res.frequency()[i];
  }
  // At least 20 dB at the low end where the loop gain is full.
  EXPECT_LT(res.magnitude("v(ldo.vout)", 0), 0.1);
}

// ---------------------------------------------- netlist equivalence property

TEST(NetlistEquivalence, TextAndProgrammaticCircuitsAgree) {
  // The same rectifier built both ways must produce identical waveforms.
  const char* text = R"(
V1 src 0 SIN(0 3.5 5meg)
R1 src vi 100
D1 vi vo IS=1e-16
C1 vo 0 10n
R2 vo 0 5k
)";
  Circuit from_text;
  parse_netlist(from_text, text);

  Circuit built;
  const auto src = built.node("src");
  const auto vi = built.node("vi");
  const auto vo = built.node("vo");
  built.add<VoltageSource>("V1", src, kGround, Waveform::sine(3.5, 5e6));
  built.add<Resistor>("R1", src, vi, 100.0);
  DiodeParams dp;
  dp.saturation_current = 1e-16;
  built.add<Diode>("D1", vi, vo, dp);
  built.add<Capacitor>("C1", vo, kGround, 10e-9);
  built.add<Resistor>("R2", vo, kGround, 5e3);

  TransientOptions opts;
  opts.t_stop = 20e-6;
  opts.dt_max = 5e-9;
  opts.record_signals = {"v(vo)"};
  const auto a = run_transient(from_text, opts);
  const auto b = run_transient(built, opts);
  ASSERT_EQ(a.num_points(), b.num_points());
  const auto va = a.signal("v(vo)");
  const auto vb = b.signal("v(vo)");
  for (std::size_t i = 0; i < va.size(); i += 50) {
    ASSERT_NEAR(va[i], vb[i], 1e-12) << "at sample " << i;
  }
}

}  // namespace
