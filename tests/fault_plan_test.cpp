// Fault-plan static pre-validation (DESIGN.md §13): bad campaigns are
// rejected at load, before any scenario executes, with stable issue
// codes; good plans (including every registered campaign at its default
// config) sail through; and the analysis-hints path changes nothing the
// fingerprint can see.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "src/fault/campaign.hpp"
#include "src/fault/schedule.hpp"
#include "src/fault/validate.hpp"

namespace {

using namespace ironic::fault;

bool has_issue(const PlanReport& report, const std::string& code) {
  for (const auto& issue : report.issues) {
    if (issue.code == code) return true;
  }
  return false;
}

}  // namespace

TEST(FaultPlan, CleanScheduleValidates) {
  FaultSchedule schedule;
  schedule.add({FaultKind::kBurstError, 0.35, 0.8, 12.0, LinkDirection::kDownlink});
  schedule.add({FaultKind::kOvervoltage, 0.55, 0.25, 1.8, LinkDirection::kBoth});
  schedule.add({FaultKind::kCouplingStep, 1.3, -1.0, 17e-3, LinkDirection::kBoth});

  PlanContext context;
  context.horizon = 2.5;
  context.envelope_vmax = 3.5;
  context.overvoltage_limit = 2.1;
  const auto report = validate_schedule(schedule, context);
  EXPECT_TRUE(report.ok()) << report.to_text();
  EXPECT_NO_THROW(require_valid_schedule(schedule, context));
}

TEST(FaultPlan, MagnitudeDomainsPerKind) {
  const struct {
    FaultKind kind;
    double bad;
    double good;
  } cases[] = {
      {FaultKind::kCouplingStep, 2.0, 17e-3},   // metres, not mm typos
      {FaultKind::kMisalignment, -1e-3, 5e-3},
      {FaultKind::kTissueDrift, 0.75, 17e-3},
      {FaultKind::kBitFlip, 1.5, 0.01},
      {FaultKind::kBurstError, -4.0, 12.0},
      {FaultKind::kOvervoltage, 0.9, 1.8},      // <= 1 is not an overvoltage
      {FaultKind::kLdoDropout, 1.2, 0.5},       // >= 1 is not a sag
      {FaultKind::kBrownout, 0.0, 0.1},
  };
  for (const auto& c : cases) {
    SCOPED_TRACE(fault_kind_name(c.kind));
    FaultSchedule bad;
    bad.add({c.kind, 0.1, 0.5, c.bad, LinkDirection::kBoth});
    EXPECT_TRUE(has_issue(validate_schedule(bad), "plan.bad-magnitude"));

    FaultSchedule good;
    good.add({c.kind, 0.1, 0.5, c.good, LinkDirection::kBoth});
    EXPECT_FALSE(has_issue(validate_schedule(good), "plan.bad-magnitude"));
  }
}

TEST(FaultPlan, WindowAndHorizonChecks) {
  FaultSchedule nan_start;
  nan_start.add({FaultKind::kBitFlip, std::nan(""), 0.5, 0.01,
                 LinkDirection::kBoth});
  EXPECT_TRUE(has_issue(validate_schedule(nan_start), "plan.bad-window"));

  FaultSchedule nan_duration;
  nan_duration.add({FaultKind::kBitFlip, 0.1, std::nan(""), 0.01,
                    LinkDirection::kBoth});
  EXPECT_TRUE(has_issue(validate_schedule(nan_duration), "plan.bad-window"));

  // Permanent events (duration <= 0) are a valid window.
  FaultSchedule permanent;
  permanent.add({FaultKind::kCouplingStep, 0.1, -1.0, 17e-3,
                 LinkDirection::kBoth});
  EXPECT_TRUE(validate_schedule(permanent).ok());

  FaultSchedule late;
  late.add({FaultKind::kLdoDropout, 5.0, 0.3, 0.5, LinkDirection::kBoth});
  PlanContext context;
  context.horizon = 2.5;
  EXPECT_TRUE(has_issue(validate_schedule(late, context), "plan.after-horizon"));
  // No horizon in the context -> the same event is fine.
  EXPECT_TRUE(validate_schedule(late).ok());
}

TEST(FaultPlan, OvervoltageReachability) {
  FaultSchedule schedule;
  schedule.add({FaultKind::kOvervoltage, 0.1, 0.25, 1.5, LinkDirection::kBoth});

  // 1.5 x 1.2 V = 1.8 V can never clear a 2.1 V rail: unreachable.
  PlanContext weak;
  weak.horizon = 2.0;
  weak.envelope_vmax = 1.2;
  weak.overvoltage_limit = 2.1;
  EXPECT_TRUE(has_issue(validate_schedule(schedule, weak),
                        "plan.overvoltage-unreachable"));
  EXPECT_THROW(require_valid_schedule(schedule, weak, "weak-plant"),
               std::invalid_argument);

  // 1.5 x 3.5 V = 5.25 V clears it comfortably.
  PlanContext strong = weak;
  strong.envelope_vmax = 3.5;
  EXPECT_TRUE(validate_schedule(schedule, strong).ok());

  // Without envelope context the check is disabled, not assumed.
  PlanContext blind;
  blind.horizon = 2.0;
  EXPECT_TRUE(validate_schedule(schedule, blind).ok());
}

TEST(FaultPlan, RequireValidCollectsAllIssuesInMessage) {
  FaultSchedule schedule;
  schedule.add({FaultKind::kOvervoltage, 0.1, 0.25, 0.5, LinkDirection::kBoth});
  schedule.add({FaultKind::kBrownout, 9.0, 0.0, 2.0, LinkDirection::kBoth});
  PlanContext context;
  context.horizon = 1.0;
  try {
    require_valid_schedule(schedule, context, "doomed");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("doomed"), std::string::npos);
    EXPECT_NE(what.find("plan.bad-magnitude"), std::string::npos);
    EXPECT_NE(what.find("plan.after-horizon"), std::string::npos);
  }
}

// Every registered campaign's default plan must pass its own gate (the
// scripted schedule, the stochastic draw, and the brownout dips are all
// validated inside run_campaign before any scenario runs).
TEST(FaultPlan, RegisteredCampaignsPassAtDefaultConfig) {
  for (const auto& name : campaign_names()) {
    SCOPED_TRACE(name);
    CampaignConfig config;
    config.name = name;
    if (name == "ask_burst_coupling_drop") config.exchanges = 6;  // keep quick
    EXPECT_NO_THROW(run_campaign(config));
  }
}

// The scripted campaign's latest event starts at 1.3 s; a run too short
// to reach it is a bad plan and is rejected at load, before any
// transient executes.
TEST(FaultPlan, CampaignRejectedWhenEventsOutliveRun) {
  CampaignConfig config;
  config.name = "ask_burst_coupling_drop";
  config.exchanges = 2;  // horizon 0.5 s < the 1.3 s coupling drop
  EXPECT_THROW(run_campaign(config), std::invalid_argument);
}

// Hints on vs off must be invisible to the campaign fingerprint: the
// static solver choice agrees with the engine's own auto pick on the
// ~12-unknown plant, and the dt hint only fills options left at auto.
TEST(FaultPlan, AnalysisHintsPreserveFingerprint) {
  CampaignConfig config;
  config.name = "ask_burst_coupling_drop";
  config.scenarios = 1;
  config.exchanges = 6;

  const auto baseline = run_campaign(config);
  config.analysis_hints = true;
  const auto hinted = run_campaign(config);
  EXPECT_EQ(baseline.fingerprint, hinted.fingerprint);
  EXPECT_EQ(baseline.completed, hinted.completed);
  EXPECT_EQ(baseline.checkpoints, hinted.checkpoints);
}
