#include <gtest/gtest.h>

#include <cmath>

#include "src/patch/battery.hpp"
#include "src/patch/controller.hpp"
#include "src/patch/power_model.hpp"

namespace {

using namespace ironic::patch;

// ----------------------------------------------------------------- battery

TEST(Battery, StartsFullAndFlat) {
  LiIonBattery batt;
  EXPECT_DOUBLE_EQ(batt.state_of_charge(), 1.0);
  EXPECT_NEAR(batt.voltage(), 4.2, 1e-9);
  EXPECT_FALSE(batt.depleted());
}

TEST(Battery, NearlyConstantVoltageUntilKnee) {
  // The paper's Li-ion premise: almost constant voltage until 75-80 % DoD.
  LiIonBattery batt;
  const double cap = batt.spec().capacity_coulombs();
  batt.draw(1.0, 0.5 * cap);  // 50 % DoD
  EXPECT_GT(batt.voltage(), batt.spec().knee_voltage);
  batt.draw(1.0, 0.25 * cap);  // 75 % DoD
  EXPECT_GT(batt.voltage(), batt.spec().knee_voltage - 0.05);
  batt.draw(1.0, 0.2 * cap);  // 95 % DoD: in the droop
  EXPECT_LT(batt.voltage(), batt.spec().knee_voltage - 0.2);
}

TEST(Battery, CoulombCountingAndClipping) {
  LiIonBattery batt;
  const double cap = batt.spec().capacity_coulombs();
  EXPECT_DOUBLE_EQ(batt.draw(2.0, cap / 4.0), cap / 2.0);
  EXPECT_NEAR(batt.state_of_charge(), 0.5, 1e-6);
  // Ask for more than remains: only the remainder is delivered (a hair
  // under cap/2 because the half cycle already aged the cell slightly).
  EXPECT_NEAR(batt.draw(1.0, cap), cap / 2.0, cap * 1e-3);
  EXPECT_TRUE(batt.depleted());
  batt.recharge();
  EXPECT_DOUBLE_EQ(batt.state_of_charge(), 1.0);
}

TEST(Battery, TimeToEmptyScalesInversely) {
  LiIonBattery batt;
  const double t1 = batt.time_to_empty(0.1);
  const double t2 = batt.time_to_empty(0.2);
  EXPECT_NEAR(t1, 2.0 * t2, 1e-6);
  EXPECT_THROW(batt.time_to_empty(0.0), std::invalid_argument);
}

TEST(Battery, EnergyDensityWithinLiIonBounds) {
  // The paper quotes up to 0.2 Wh/g for modern Li-ion cells.
  BatterySpec spec;
  EXPECT_GT(spec.energy_density_wh_per_g(), 0.05);
  EXPECT_LE(spec.energy_density_wh_per_g(), 0.2);
}

TEST(Battery, RejectsBadDrawAndSpec) {
  LiIonBattery batt;
  EXPECT_THROW(batt.draw(-1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(batt.draw(1.0, -1.0), std::invalid_argument);
  BatterySpec bad;
  bad.capacity_mah = 0.0;
  EXPECT_THROW(LiIonBattery{bad}, std::invalid_argument);
}

// ------------------------------------------------------------- power model

TEST(PowerModel, PaperRunTimesReproduced) {
  // Paper Sec. III-B: ~10 h idle, ~3.5 h connected, ~1.5 h powering.
  PatchPowerSpec spec;
  const double cap = BatterySpec{}.capacity_mah;
  EXPECT_NEAR(state_run_time(spec, PatchState::kIdle, cap) / 3600.0, 10.0, 0.6);
  EXPECT_NEAR(state_run_time(spec, PatchState::kConnected, cap) / 3600.0, 3.5, 0.25);
  EXPECT_NEAR(state_run_time(spec, PatchState::kPowering, cap) / 3600.0, 1.5, 0.1);
}

TEST(PowerModel, RunTimeOrderingMatchesPaper) {
  PatchPowerSpec spec;
  const double cap = 240.0;
  const double idle = state_run_time(spec, PatchState::kIdle, cap);
  const double connected = state_run_time(spec, PatchState::kConnected, cap);
  const double powering = state_run_time(spec, PatchState::kPowering, cap);
  EXPECT_GT(idle, connected);
  EXPECT_GT(connected, powering);
}

TEST(PowerModel, UplinkCostsMoreThanDownlink) {
  // The R9 sense digitization adds current during uplink detection.
  PatchPowerSpec spec;
  EXPECT_GT(state_current(spec, PatchState::kUplink),
            state_current(spec, PatchState::kDownlink));
}

TEST(PowerModel, DutyCycleAveraging) {
  PatchPowerSpec spec;
  DutyProfile profile;
  profile.idle = 0.5;
  profile.powering = 0.5;
  const double avg = average_current(spec, profile);
  EXPECT_NEAR(avg, 0.5 * state_current(spec, PatchState::kIdle) +
                       0.5 * state_current(spec, PatchState::kPowering),
              1e-12);
  DutyProfile bad;
  bad.idle = 0.7;  // does not sum to 1
  bad.powering = 0.6;
  EXPECT_THROW(average_current(spec, bad), std::invalid_argument);
}

// --------------------------------------------------------------- controller

TEST(Controller, LegalSessionFlow) {
  PatchController pc;
  EXPECT_EQ(pc.state(), PatchState::kIdle);
  pc.handle(PatchEvent::kBtConnect);
  EXPECT_EQ(pc.state(), PatchState::kConnected);
  pc.handle(PatchEvent::kStartPowering);
  EXPECT_EQ(pc.state(), PatchState::kPowering);
  pc.handle(PatchEvent::kSendDownlink);
  EXPECT_EQ(pc.state(), PatchState::kDownlink);
  pc.handle(PatchEvent::kBurstDone);
  pc.handle(PatchEvent::kReceiveUplink);
  EXPECT_EQ(pc.state(), PatchState::kUplink);
  pc.handle(PatchEvent::kBurstDone);
  pc.handle(PatchEvent::kStopPowering);
  EXPECT_EQ(pc.state(), PatchState::kConnected);  // BT still up
  pc.handle(PatchEvent::kBtDisconnect);
  EXPECT_EQ(pc.state(), PatchState::kIdle);
}

TEST(Controller, IllegalTransitionsThrow) {
  PatchController pc;
  EXPECT_FALSE(pc.can_handle(PatchEvent::kStopPowering));
  EXPECT_THROW(pc.handle(PatchEvent::kStopPowering), std::logic_error);
  EXPECT_THROW(pc.handle(PatchEvent::kSendDownlink), std::logic_error);
  EXPECT_THROW(pc.handle(PatchEvent::kBtDisconnect), std::logic_error);
  pc.handle(PatchEvent::kBtConnect);
  EXPECT_THROW(pc.handle(PatchEvent::kBtConnect), std::logic_error);
}

TEST(Controller, BatteryDrainsWithTime) {
  PatchController pc;
  pc.handle(PatchEvent::kStartPowering);
  const double soc0 = pc.battery().state_of_charge();
  pc.advance(600.0);  // 10 minutes of powering
  EXPECT_LT(pc.battery().state_of_charge(), soc0);
  // ~1.5 h total powering budget: after 10 min about 1/9 is gone.
  EXPECT_NEAR(soc0 - pc.battery().state_of_charge(), 600.0 / 5470.0, 0.02);
}

TEST(Controller, ShutsDownWhenDepleted) {
  PatchController pc;
  pc.handle(PatchEvent::kStartPowering);
  pc.advance(10.0 * 3600.0);  // way past the 1.5 h budget
  EXPECT_TRUE(pc.shut_down());
  EXPECT_EQ(pc.state(), PatchState::kIdle);
  EXPECT_FALSE(pc.can_handle(PatchEvent::kStartPowering));
}

TEST(Controller, RemainingRuntimeMatchesStateCurrent) {
  PatchController pc;
  const double idle_left = pc.remaining_runtime();
  EXPECT_NEAR(idle_left / 3600.0, 10.0, 0.6);
  pc.handle(PatchEvent::kStartPowering);
  EXPECT_LT(pc.remaining_runtime(), idle_left);
}

TEST(Controller, LogRecordsProgression) {
  PatchController pc;
  pc.handle(PatchEvent::kBtConnect);
  pc.advance(60.0);
  pc.handle(PatchEvent::kStartPowering);
  pc.advance(60.0);
  const auto& log = pc.log();
  ASSERT_GE(log.size(), 5u);
  EXPECT_EQ(log.front().state, PatchState::kIdle);
  EXPECT_EQ(log.back().state, PatchState::kPowering);
  EXPECT_LT(log.back().battery_soc, 1.0);
  EXPECT_NEAR(log.back().time, 120.0, 1e-9);
}

TEST(Controller, AdvanceRejectsNegativeTime) {
  PatchController pc;
  EXPECT_THROW(pc.advance(-1.0), std::invalid_argument);
}

TEST(Controller, StateNamesForLogs) {
  EXPECT_STREQ(to_string(PatchState::kIdle), "idle");
  EXPECT_STREQ(to_string(PatchState::kUplink), "uplink");
}

}  // namespace
