// Session layer: retry/backoff against transient faults on a SimClock,
// rate fallback and recovery, exactly-once implant side effects, and
// same-seed determinism.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "src/comms/protocol.hpp"
#include "src/fault/session.hpp"
#include "src/util/rng.hpp"

namespace {

using namespace ironic;
using namespace ironic::fault;

comms::Channel clean_channel() {
  return [](const comms::Bits& bits) { return bits; };
}

comms::Channel corrupting_channel() {
  return [](const comms::Bits& bits) {
    comms::Bits out = bits;
    if (!out.empty()) out[0] = !out[0];
    return out;
  };
}

ChannelFactory clean_factory() {
  return [](double) { return clean_channel(); };
}

comms::Response measure_handler(const comms::Request& request, int* side_effects) {
  if (side_effects != nullptr) ++*side_effects;
  comms::Response response;
  response.sequence = request.sequence;
  response.ok = true;
  response.payload = {0xAB};
  return response;
}

TEST(Session, CleanLinkSucceedsFirstAttempt) {
  SimClock clock;
  int side_effects = 0;
  Session session(
      clean_factory(), clean_factory(),
      [&](const comms::Request& r) { return measure_handler(r, &side_effects); },
      &clock, util::Rng(1));

  const auto outcome = session.exchange(comms::Command::kMeasure);
  ASSERT_TRUE(outcome.ok);
  EXPECT_EQ(outcome.attempts, 1);
  EXPECT_EQ(side_effects, 1);
  EXPECT_EQ(session.stats().retries, 0);
  EXPECT_EQ(session.stats().failures, 0);
  EXPECT_DOUBLE_EQ(session.stats().backoff_seconds, 0.0);
  // The clock advanced by the frame airtime, nothing else.
  EXPECT_GT(clock.now(), 0.0);
  EXPECT_DOUBLE_EQ(outcome.elapsed, clock.now());
  EXPECT_DOUBLE_EQ(session.link_quality(), 1.0);
  ASSERT_TRUE(outcome.response.has_value());
  EXPECT_EQ(outcome.response->payload, std::vector<std::uint8_t>{0xAB});
}

TEST(Session, BackoffRidesOutTransientFaultWindow) {
  // The downlink corrupts every frame until t = 40 ms on the SimClock;
  // only the booked airtime and backoff can move the clock past it.
  SimClock clock;
  const double fault_end = 40e-3;
  ChannelFactory downlink = [&clock, fault_end](double) -> comms::Channel {
    return [&clock, fault_end](const comms::Bits& bits) {
      comms::Bits out = bits;
      if (clock.now() < fault_end && !out.empty()) out[0] = !out[0];
      return out;
    };
  };
  Session session(
      downlink, clean_factory(),
      [](const comms::Request& r) { return measure_handler(r, nullptr); },
      &clock, util::Rng(7));

  const auto outcome = session.exchange(comms::Command::kMeasure);
  ASSERT_TRUE(outcome.ok);
  EXPECT_GT(outcome.attempts, 1);
  EXPECT_GE(clock.now(), fault_end);
  EXPECT_GT(session.stats().backoff_seconds, 0.0);
  EXPECT_EQ(session.stats().recovered, 1);
  EXPECT_GT(session.stats().recover_seconds, 0.0);
  EXPECT_EQ(session.stats().retries, outcome.attempts - 1);
}

TEST(Session, ExhaustedAttemptsFail) {
  SimClock clock;
  SessionOptions options;
  options.max_attempts = 3;
  Session session(
      [](double) { return corrupting_channel(); }, clean_factory(),
      [](const comms::Request& r) { return measure_handler(r, nullptr); },
      &clock, util::Rng(2), options);

  const auto outcome = session.exchange(comms::Command::kPing);
  EXPECT_FALSE(outcome.ok);
  EXPECT_EQ(outcome.attempts, 3);
  EXPECT_EQ(session.stats().failures, 1);
  EXPECT_EQ(session.transactor_stats().retries_exhausted, 3);
}

TEST(Session, TimeoutAbandonsBeforeAttemptBudget) {
  SimClock clock;
  SessionOptions options;
  options.max_attempts = 50;
  options.exchange_timeout = 10e-3;  // the backoff passes 10 ms quickly
  Session session(
      [](double) { return corrupting_channel(); }, clean_factory(),
      [](const comms::Request& r) { return measure_handler(r, nullptr); },
      &clock, util::Rng(3), options);

  const auto outcome = session.exchange(comms::Command::kPing);
  EXPECT_FALSE(outcome.ok);
  EXPECT_LT(outcome.attempts, 50);
  EXPECT_GE(outcome.elapsed, options.exchange_timeout);
  EXPECT_EQ(session.stats().failures, 1);
}

TEST(Session, FallsBackDownTheRateLadderUntilTheLinkWorks) {
  // The physical link only decodes at 25 kbit/s or slower — the session
  // must walk the ladder down and finish the exchange there.
  SimClock clock;
  ChannelFactory downlink = [](double bit_rate) -> comms::Channel {
    if (bit_rate > 25e3) return corrupting_channel();
    return clean_channel();
  };
  Session session(
      downlink, clean_factory(),
      [](const comms::Request& r) { return measure_handler(r, nullptr); },
      &clock, util::Rng(5));

  const auto outcome = session.exchange(comms::Command::kMeasure);
  ASSERT_TRUE(outcome.ok);
  EXPECT_EQ(session.stats().rate_fallbacks, 2);  // 100k -> 50k -> 25k
  EXPECT_DOUBLE_EQ(session.current_rate(), 25e3);
  EXPECT_DOUBLE_EQ(outcome.rate, 25e3);

  // With the link healthy at 25k and below, sustained clean exchanges
  // climb back up through probation.
  for (int i = 0; i < 64 && session.current_rate() < 100e3; ++i) {
    (void)session.exchange(comms::Command::kPing);
  }
  // NB: the downlink factory is fixed at construction, so the climb here
  // is driven by quality alone; the original factory still corrupts above
  // 25k, which keeps the session honest: it can climb one rung, fail,
  // and fall back — assert it at least attempted recoveries.
  EXPECT_GE(session.stats().rate_recoveries, 1);
}

TEST(Session, DedupKeepsMeasurementsExactlyOnceAcrossRetries) {
  // Uplink-only corruption: the implant handled the request, the patch
  // never saw the response, so it re-sends. The dedup layer must replay
  // the cached response instead of re-measuring.
  SimClock clock;
  auto uplink_calls = std::make_shared<int>(0);
  ChannelFactory uplink = [uplink_calls](double) -> comms::Channel {
    return [uplink_calls](const comms::Bits& bits) {
      comms::Bits out = bits;
      if ((*uplink_calls)++ % 2 == 0 && !out.empty()) out[0] = !out[0];
      return out;
    };
  };
  int side_effects = 0;
  Session session(
      clean_factory(), uplink,
      [&](const comms::Request& r) { return measure_handler(r, &side_effects); },
      &clock, util::Rng(9));

  const int exchanges = 3;
  for (int i = 0; i < exchanges; ++i) {
    const auto outcome = session.exchange(comms::Command::kMeasure);
    ASSERT_TRUE(outcome.ok);
    EXPECT_EQ(outcome.attempts, 2);
  }
  EXPECT_EQ(side_effects, exchanges);  // exactly once per exchange
  EXPECT_EQ(session.transactor_stats().duplicate_deliveries, exchanges);
  EXPECT_EQ(session.stats().recovered, exchanges);
}

TEST(Session, SameSeedRunsAreBitIdentical) {
  const auto run = [] {
    SimClock clock;
    const double fault_end = 25e-3;
    ChannelFactory downlink = [&clock, fault_end](double) -> comms::Channel {
      return [&clock, fault_end](const comms::Bits& bits) {
        comms::Bits out = bits;
        if (clock.now() < fault_end && !out.empty()) out[0] = !out[0];
        return out;
      };
    };
    Session session(
        downlink, clean_factory(),
        [](const comms::Request& r) { return measure_handler(r, nullptr); },
        &clock, util::Rng::stream(0x5e55, 0));
    double elapsed = 0.0;
    for (int i = 0; i < 4; ++i) {
      elapsed += session.exchange(comms::Command::kMeasure).elapsed;
    }
    return std::pair<double, double>(elapsed, session.stats().backoff_seconds);
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
  EXPECT_GT(a.second, 0.0);
}

TEST(Session, RejectsBadConfiguration) {
  SimClock clock;
  auto handler = [](const comms::Request& r) {
    return measure_handler(r, nullptr);
  };
  EXPECT_THROW(
      Session(clean_factory(), clean_factory(), handler, nullptr, util::Rng(1)),
      std::invalid_argument);
  EXPECT_THROW(
      Session({}, clean_factory(), handler, &clock, util::Rng(1)),
      std::invalid_argument);
  SessionOptions no_ladder;
  no_ladder.rate_ladder.clear();
  EXPECT_THROW(Session(clean_factory(), clean_factory(), handler, &clock,
                       util::Rng(1), no_ladder),
               std::invalid_argument);
  SessionOptions no_attempts;
  no_attempts.max_attempts = 0;
  EXPECT_THROW(Session(clean_factory(), clean_factory(), handler, &clock,
                       util::Rng(1), no_attempts),
               std::invalid_argument);
}

}  // namespace
