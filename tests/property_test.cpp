// Property-based suites (TEST_P sweeps): invariants that must hold over
// whole parameter regions, not just at hand-picked points.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "src/bio/adc.hpp"
#include "src/comms/ask.hpp"
#include "src/comms/line_code.hpp"
#include "src/magnetics/coupling.hpp"
#include "src/magnetics/link.hpp"
#include "src/patch/battery.hpp"
#include "src/pm/rectifier.hpp"
#include "src/rf/matching.hpp"
#include "src/spice/ac.hpp"
#include "src/spice/devices_passive.hpp"
#include "src/spice/devices_sources.hpp"
#include "src/spice/engine.hpp"
#include "src/util/constants.hpp"
#include "src/util/rng.hpp"

namespace {

using namespace ironic;
using namespace ironic::spice;
namespace constants = ironic::constants;

// ------------------------------------------------- RC analytic correctness

class RcChargeP : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(RcChargeP, TransientMatchesClosedForm) {
  const auto [r, c] = GetParam();
  const double tau = r * c;
  Circuit ckt;
  const auto in = ckt.node("in");
  const auto out = ckt.node("out");
  ckt.add<VoltageSource>("V1", in, kGround, Waveform::dc(1.0));
  ckt.add<Resistor>("R1", in, out, r);
  ckt.add<Capacitor>("C1", out, kGround, c);
  TransientOptions opts;
  opts.t_stop = 5.0 * tau;
  opts.dt_max = tau / 200.0;
  const auto res = run_transient(ckt, opts);
  for (double k : {0.5, 1.0, 2.0, 4.0}) {
    const double expected = 1.0 - std::exp(-k);
    EXPECT_NEAR(res.value_at("v(out)", k * tau), expected, 3e-4)
        << "R=" << r << " C=" << c << " at t=" << k << " tau";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RcChargeP,
    ::testing::Combine(::testing::Values(10.0, 1e3, 100e3),
                       ::testing::Values(100e-12, 10e-9, 1e-6)));

// ------------------------------------------------ LC energy conservation

class LcEnergyP : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(LcEnergyP, TrapezoidalPreservesAmplitude) {
  const auto [l, c] = GetParam();
  const double period = constants::kTwoPi * std::sqrt(l * c);
  Circuit ckt;
  const auto n = ckt.node("n");
  ckt.add<Capacitor>("C1", n, kGround, c, 1.0);
  ckt.add<Inductor>("L1", n, kGround, l);
  TransientOptions opts;
  opts.t_stop = 30.0 * period;
  opts.dt_max = period / 80.0;
  const auto res = run_transient(ckt, opts);
  const double late = res.max_between("v(n)", 25.0 * period, 30.0 * period);
  EXPECT_NEAR(late, 1.0, 0.02) << "L=" << l << " C=" << c;
}

INSTANTIATE_TEST_SUITE_P(Grid, LcEnergyP,
                         ::testing::Combine(::testing::Values(1e-6, 10e-6, 1e-3),
                                            ::testing::Values(100e-12, 10e-9)));

// ---------------------------------------------------- rectifier invariants

class RectifierInvariantP
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(RectifierInvariantP, OutputBoundedAndRippleSmall) {
  const auto [amplitude, co] = GetParam();
  pm::RectifierOptions opt;
  opt.storage_capacitance = co;
  Circuit ckt;
  const auto src = ckt.node("src");
  const auto vi = ckt.node("vi");
  ckt.add<VoltageSource>("Vs", src, kGround, Waveform::sine(amplitude, 5e6));
  ckt.add<Resistor>("Rs", src, vi, 100.0);
  build_rectifier(ckt, "r", vi, Waveform::dc(0.0), Waveform::dc(1.8), opt);
  ckt.add<Resistor>("RL", ckt.find_node("r.vo"), kGround, 5e3);
  TransientOptions opts;
  opts.t_stop = 60e-6;
  opts.dt_max = 5e-9;
  opts.record_signals = {"v(r.vo)"};
  const auto res = run_transient(ckt, opts);

  // Invariants across the whole drive/capacitance grid:
  // 1. the output never goes negative,
  EXPECT_GT(res.min_between("v(r.vo)", 0.0, 60e-6), -0.05);
  // 2. the clamp ceiling holds,
  EXPECT_LT(res.max_between("v(r.vo)", 0.0, 60e-6), 3.45);
  // 3. the output cannot exceed the driving peak,
  EXPECT_LT(res.max_between("v(r.vo)", 0.0, 60e-6), amplitude);
  // 4. tail ripple is bounded by the per-cycle load droop plus whatever
  //    residual charging slope remains across the observation window
  //    (large Co values are still settling at this horizon).
  const double vo = res.mean_between("v(r.vo)", 50e-6, 60e-6);
  const double ripple = res.max_between("v(r.vo)", 50e-6, 60e-6) -
                        res.min_between("v(r.vo)", 50e-6, 60e-6);
  const double slope = std::abs(res.value_at("v(r.vo)", 60e-6) -
                                res.value_at("v(r.vo)", 50e-6));
  if (vo < 3.0) {
    const double droop_bound = vo / 5e3 * (1.0 / 5e6) / co * 3.0 + slope + 1e-3;
    EXPECT_LT(ripple, droop_bound) << "A=" << amplitude << " Co=" << co;
  } else {
    // Clamped operating point: the clamp chain conducts every cycle and
    // sets the ripple; just require it to stay small in absolute terms.
    EXPECT_LT(ripple, 0.15) << "A=" << amplitude << " Co=" << co;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RectifierInvariantP,
    ::testing::Combine(::testing::Values(2.0, 3.5, 5.0, 7.0),
                       ::testing::Values(10e-9, 47e-9)));

// --------------------------------------------------------- link physics

class LinkPhysicsP : public ::testing::TestWithParam<double> {};

TEST_P(LinkPhysicsP, ReciprocityAndBounds) {
  const double d = GetParam();
  const magnetics::Coil tx{magnetics::patch_coil_spec()};
  const magnetics::Coil rx{magnetics::implant_coil_spec()};
  // Mutual inductance is reciprocal.
  const double m12 = magnetics::mutual_inductance(tx, rx, d);
  const double m21 = magnetics::mutual_inductance(rx, tx, d);
  EXPECT_NEAR(m12, m21, std::abs(m12) * 1e-9) << "d=" << d;
  // Coupling bounded by 1; efficiency bounded by 1 and positive.
  magnetics::LinkConfig cfg;
  cfg.distance = d;
  magnetics::InductiveLink link{cfg};
  EXPECT_GT(link.coupling(), 0.0);
  EXPECT_LT(link.coupling(), 1.0);
  const auto a = link.analyze(1.0, link.optimal_load_resistance());
  EXPECT_GT(a.efficiency, 0.0);
  EXPECT_LT(a.efficiency, 1.0);
  EXPECT_LE(a.power_delivered, a.power_in * (1.0 + 1e-12));
}

INSTANTIATE_TEST_SUITE_P(Distances, LinkPhysicsP,
                         ::testing::Values(3e-3, 4e-3, 6e-3, 8e-3, 10e-3, 13e-3,
                                           17e-3, 21e-3, 25e-3, 30e-3));

// ------------------------------------------------------------ ADC accuracy

class AdcAccuracyP : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(AdcAccuracyP, ReconstructionWithinFourLsb) {
  const auto [frac, osr] = GetParam();
  bio::AdcSpec spec;
  spec.oversampling_ratio = osr;
  bio::SigmaDeltaAdc adc{spec};
  const double i_in = frac * spec.full_scale_current;
  const double back = adc.current_from_code(adc.convert_current(i_in));
  EXPECT_NEAR(back, i_in, 4.0 * spec.lsb_current()) << "frac=" << frac
                                                    << " OSR=" << osr;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AdcAccuracyP,
    ::testing::Combine(::testing::Values(0.05, 0.2, 0.4, 0.6, 0.8, 0.95),
                       ::testing::Values(128, 256, 512)));

// ------------------------------------------------------- ASK loopback BER

class AskRoundTripP : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(AskRoundTripP, CleanChannelIsErrorFree) {
  const auto [bit_rate, depth] = GetParam();
  comms::AskSpec spec;
  spec.bit_rate = bit_rate;
  spec.modulation_depth = depth;
  spec.edge_time = std::min(1e-6, 0.1 / bit_rate);
  util::Rng rng(11);
  const auto bits = comms::random_bits(64, rng);
  const double t0 = 10e-6;
  const double t_stop = t0 + 64.0 / bit_rate + 10e-6;
  const auto w = comms::ask_waveform(bits, spec, t0, t_stop);
  std::vector<double> ts, vs;
  for (double t = 0.0; t <= t_stop; t += 0.01 / spec.carrier_frequency) {
    ts.push_back(t);
    vs.push_back(w(t));
  }
  const auto rx = comms::demodulate_ask(ts, vs, spec, t0, bits.size());
  EXPECT_EQ(comms::bit_error_rate(bits, rx), 0.0)
      << "rate=" << bit_rate << " depth=" << depth;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AskRoundTripP,
    ::testing::Combine(::testing::Values(50e3, 100e3, 200e3),
                       ::testing::Values(0.25, 0.423, 0.6)));

// -------------------------------------------------------- matching designs

class MatchDesignP : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(MatchDesignP, ClosesWheneverFeasible) {
  const auto [l_coil, r_target] = GetParam();
  const double r_load = 150.0;
  const double wl = constants::kTwoPi * 5e6 * l_coil;
  const bool feasible = std::sqrt(r_target * (r_load - r_target)) < wl;
  if (!feasible) {
    EXPECT_THROW(rf::design_capacitive_match(l_coil, r_load, r_target, 5e6),
                 std::invalid_argument);
    return;
  }
  const auto match = rf::design_capacitive_match(l_coil, r_load, r_target, 5e6);
  const auto z = rf::matched_input_impedance(match, l_coil, r_load, 5e6);
  EXPECT_NEAR(z.real(), r_target, r_target * 1e-6);
  EXPECT_NEAR(z.imag(), 0.0, 1e-5);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MatchDesignP,
    ::testing::Combine(::testing::Values(0.5e-6, 1.5e-6, 4e-6),
                       ::testing::Values(2.0, 6.0, 20.0, 60.0)));

// ----------------------------------------------------- battery bookkeeping

class BatteryLedgerP : public ::testing::TestWithParam<double> {};

TEST_P(BatteryLedgerP, ChargeConservation) {
  const double current = GetParam();
  patch::LiIonBattery batt;
  const double t = batt.time_to_empty(current);
  // Drawing exactly time_to_empty empties the cell, no more, no less.
  const double delivered = batt.draw(current, t);
  EXPECT_NEAR(delivered, batt.spec().capacity_coulombs(),
              batt.spec().capacity_coulombs() * 1e-9);
  EXPECT_TRUE(batt.depleted());
  EXPECT_DOUBLE_EQ(batt.draw(current, 10.0), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Currents, BatteryLedgerP,
                         ::testing::Values(1e-3, 23e-3, 68e-3, 158e-3, 1.0));

// ---------------------------------------------------- Manchester coverage

class ManchesterP : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ManchesterP, RoundTripAndDcFreedom) {
  util::Rng rng(GetParam() * 7919 + 1);
  const auto bits = comms::random_bits(GetParam(), rng);
  const auto chips = comms::manchester_encode(bits);
  EXPECT_EQ(chips.size(), bits.size() * 2);
  EXPECT_TRUE(comms::is_dc_free(chips));
  const auto back = comms::manchester_decode(chips);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, bits);
}

INSTANTIATE_TEST_SUITE_P(Lengths, ManchesterP,
                         ::testing::Values(1u, 2u, 17u, 64u, 255u, 1024u));

// ----------------------------------------------------- failure injection

class NoAcModelDevice final : public Device {
 public:
  using Device::Device;
  void stamp(StampContext&) override {}
};

TEST(FailureInjection, MissingAcModelIsReported) {
  Circuit ckt;
  ckt.add<Resistor>("R1", ckt.node("a"), kGround, 1e3);
  ckt.add<NoAcModelDevice>("X1");
  AcOptions opts;
  opts.use_operating_point = false;
  EXPECT_THROW(run_ac(ckt, opts), std::logic_error);
}

TEST(FailureInjection, DcReportsNonConvergenceGracefully) {
  // A latch (two cross-coupled comparators) has no unique DC solution;
  // solve_dc must come back converged == false instead of looping.
  Circuit ckt;
  const auto a = ckt.node("a");
  const auto b = ckt.node("b");
  OpAmpParams comparator;
  comparator.gain = 1e5;
  ckt.add<OpAmp>("U1", a, b, kGround, comparator);
  ckt.add<OpAmp>("U2", b, kGround, a, comparator);
  ckt.add<Resistor>("Ra", a, kGround, 1e4);
  ckt.add<Resistor>("Rb", b, kGround, 1e4);
  const auto dc = solve_dc(ckt);
  // Either it finds one of the metastable points or reports failure —
  // but it must return, and a reported success must satisfy the rails.
  if (dc.converged) {
    EXPECT_LE(std::abs(dc.x[static_cast<std::size_t>(a)]), 1.81);
  }
  SUCCEED();
}

TEST(FailureInjection, TransientRecordsUnknownSignalRejected) {
  Circuit ckt;
  ckt.add<Resistor>("R1", ckt.node("a"), kGround, 1.0);
  TransientOptions opts;
  opts.t_stop = 1e-6;
  opts.dt_max = 1e-8;
  opts.record_signals = {"v(ghost)"};
  EXPECT_THROW(run_transient(ckt, opts), std::invalid_argument);
}

}  // namespace
