// Bio-impedance monitoring walkthrough: the third implant workload.
// The implant energizes a pair of tissue electrodes and samples the
// distributed Fricke-Morse ladder a few cells in — hydration/oedema
// drift moves the ionic resistances and therefore the sensed code.
// First the open-loop physics (sense voltage vs. tissue drift and
// drive), then the full fault-injected campaign: the same session,
// retry, and LDO machinery as the lactate workloads, driving the
// ladder instead of the rectifier plant.
#include <iostream>

#include "src/fault/bioz.hpp"
#include "src/fault/campaign.hpp"
#include "src/fault/plant.hpp"
#include "src/obs/report.hpp"
#include "src/util/table.hpp"

using namespace ironic;

int main() {
  obs::RunReport run_report("bioz_monitoring");
  std::cout << "Bio-impedance monitoring (Fricke tissue ladder)\n\n";

  std::cout << "Sense voltage v(t5) vs tissue state (60-cell ladder):\n";
  util::Table table({"Re/Ri scale", "tissue story", "v(t5) @2.4V (V)",
                     "ADC code", "v(t5) @1.6V (V)"});
  fault::BioZPlant plant;
  const auto story = [](double scale) {
    if (scale < 0.9) return "over-hydrated";
    if (scale <= 1.1) return "baseline sirloin";
    if (scale <= 2.0) return "dehydration";
    return "oedema onset";
  };
  for (double scale : {0.5, 1.0, 1.5, 2.0, 3.0}) {
    const double hi = plant.measure(2.4, scale);
    const double lo = plant.measure(1.6, scale);
    table.add_row({util::Table::cell(scale, 3), story(scale),
                   util::Table::cell(hi, 4),
                   util::Table::cell(static_cast<double>(fault::adc_code(hi)), 4),
                   util::Table::cell(lo, 4)});
  }
  table.print(std::cout);
  std::cout << "\n(" << plant.measurements
            << " stimulation transients, ~122 MNA unknowns each — the\n"
               "sparse-solver workload; no analog state carried between\n"
               "measurements, so fleet sessions skip the charge-up fork)\n";

  std::cout << "\nFault-injected campaign (bioz_tissue_drift):\n";
  fault::CampaignConfig config;
  config.name = "bioz_tissue_drift";
  const auto result = fault::run_campaign(config);
  std::cout << "  exchanges " << result.total_exchanges << ", completed "
            << result.completed << ", lost " << result.lost_measurements
            << ", retries " << result.retries << ", recovery rate "
            << result.recovery_rate << "\n";
  for (const auto& s : result.scenarios) {
    std::cout << "  scenario " << s.index << ": codes";
    for (const auto code : s.adc_codes) std::cout << ' ' << code;
    std::cout << "  (drift shifts the tail upward)\n";
  }
  run_report.metric("recovery_rate", result.recovery_rate);
  run_report.metric("lost_measurements",
                    static_cast<double>(result.lost_measurements));
  return 0;
}
