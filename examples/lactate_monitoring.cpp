// Lactate monitoring during exercise — the application the paper's
// introduction motivates ("the lactate concentration ... can be recorded
// to monitor the muscular effort in sportsmen or people under
// rehabilitation").
//
// Simulates a 30-minute training session: blood lactate rises from the
// ~1 mM resting baseline through the ~4 mM threshold during intervals,
// then recovers. Each minute the implant wakes into measurement mode,
// runs the full chain (cell -> potentiostat -> 14-bit sigma-delta ADC),
// and the energy cost is charged against the delivered link power.
#include <cmath>
#include <iostream>

#include "src/bio/interface.hpp"
#include "src/core/budget.hpp"
#include "src/magnetics/link.hpp"
#include "src/util/table.hpp"

#include "src/obs/report.hpp"

using namespace ironic;

namespace {

// Simple exercise lactate profile [mM] vs time [min].
double lactate_mM(double t_min) {
  if (t_min < 5.0) return 1.0 + 0.1 * t_min;                  // warm-up
  if (t_min < 20.0) return 1.5 + 3.5 * (1.0 - std::exp(-(t_min - 5.0) / 6.0));
  return 1.5 + 3.5 * std::exp(-(t_min - 20.0) / 8.0);          // recovery
}

}  // namespace

int main() {
  ironic::obs::RunReport run_report("lactate_monitoring");
  std::cout << "Lactate monitoring session (cLODx enzyme, MWCNT electrodes)\n\n";

  bio::ElectronicInterface implant{bio::ElectrochemicalCell{bio::clodx_params()}};
  std::cout << "Cell bias from the two bandgaps: " << implant.applied_bias()
            << " V (paper: 0.65 V)\n\n";

  util::Table t({"t (min)", "true [lac] (mM)", "IWE (uA)", "ADC code",
                 "reported (mM)", "error (%)"});
  double energy_mj = 0.0;
  for (double t_min = 0.0; t_min <= 30.0; t_min += 3.0) {
    const double truth = lactate_mM(t_min);
    const auto m = implant.measure(truth);
    const double err = 100.0 * (m.estimated_concentration - truth) / truth;
    t.add_row({util::Table::cell(t_min, 3), util::Table::cell(truth, 3),
               util::Table::cell(m.cell_current * 1e6, 3),
               util::Table::cell(static_cast<double>(m.adc_code), 6),
               util::Table::cell(m.estimated_concentration, 3),
               util::Table::cell(err, 2)});
    // One measurement: 100 ms in high-power mode at 1.8 V.
    energy_mj += implant.supply_current(pm::SensorMode::kHighPower) * 1.8 * 0.1 * 1e3;
  }
  t.print(std::cout);

  std::cout << "\nEnergy for the session's measurements: " << energy_mj
            << " mJ (plus low-power idle between samples)\n";

  // Is the link budget comfortable for this duty cycle?
  magnetics::InductiveLink link{magnetics::LinkConfig{}};
  const double drive =
      core::drive_for_high_power_mode(link, pm::LdoSpec{}, pm::SensorLoadSpec{});
  std::cout << "Drive needed to sustain measurement mode continuously: "
            << util::format_si(drive, "V") << " at the patch coil ("
            << util::format_si(link.analyze(drive, link.optimal_load_resistance())
                                   .power_delivered,
                               "W")
            << " received)\n";
  return 0;
}
