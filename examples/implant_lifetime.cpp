// Implant lifetime study: 30 days after implantation, with enzyme drift,
// weekly two-point recalibration, and the patch's daily energy budget —
// the long-horizon view behind the paper's "large power autonomy should
// be ensured" and "lack of stability" remarks.
#include <cmath>
#include <iostream>

#include "src/bio/drift.hpp"
#include "src/patch/scheduler.hpp"
#include "src/util/table.hpp"

#include "src/obs/report.hpp"

using namespace ironic;

int main() {
  ironic::obs::RunReport run_report("implant_lifetime");
  std::cout << "30-day implant lifetime study (cLODx on MWCNT electrodes)\n\n";

  bio::ElectrochemicalCell cell{bio::clodx_params()};
  bio::DriftModel drift;                 // MWCNT-stabilized decay
  bio::DriftModel bare{bio::bare_electrode_drift()};

  // Weekly recalibration schedule: days 0, 7, 14, 21, 28.
  const auto last_calibration_day = [](double day) {
    return 7.0 * std::floor(day / 7.0);
  };

  std::cout << "True lactate held at 1.0 mM; reported value vs implant age:\n";
  util::Table t({"day", "sensitivity left", "naive est (mM)",
                 "weekly recal est (mM)", "bare electrode naive (mM)"});
  for (double day : {0.0, 3.0, 6.0, 9.0, 13.0, 17.0, 21.0, 25.0, 29.0}) {
    const double truth = 1.0;
    // Naive: invert the aged reading through the pristine transfer.
    const double j_aged = drift.aged_current_density(cell, truth, day);
    const double naive =
        cell.concentration_from_current(j_aged * cell.geometry().area);
    // Weekly recalibration: calibrate at the last service day, then use
    // that correction for today's reading.
    const bio::TwoPointCalibration cal(cell, drift, last_calibration_day(day), 0.2,
                                       2.0);
    const double recal = cal.concentration_from_density(cell, j_aged);
    const double j_bare = bare.aged_current_density(cell, truth, day);
    const double bare_naive =
        cell.concentration_from_current(j_bare * cell.geometry().area);
    t.add_row({util::Table::cell(day, 3),
               util::Table::cell(drift.sensitivity_gain(day), 3),
               util::Table::cell(naive, 3), util::Table::cell(recal, 3),
               util::Table::cell(bare_naive, 3)});
  }
  t.print(std::cout);

  std::cout << "\nReading: uncorrected drift is a ~2x error by week two. Weekly\n"
            << "recalibration resets the error at each service day; mid-week\n"
            << "residuals stay large only during the steep first-week decay and\n"
            << "shrink as the sensitivity flattens (days 21+ track within a few\n"
            << "percent). Without MWCNT immobilization the sensor is unusable\n"
            << "within days — the stability argument of the paper's refs [20, 21].\n";

  // Energy side: what daily routine can the patch sustain?
  std::cout << "\nPatch energy budget per day (240 mAh cell, recharged nightly):\n";
  patch::PatchPowerSpec power;
  patch::BatterySpec battery;
  patch::SessionPlan session;
  util::Table e({"awake window (h)", "max sessions/day", "end-of-day charge"});
  for (double awake : {4.0, 6.0, 8.0, 10.0}) {
    const auto mission = patch::max_daily_sessions(power, battery, session, awake);
    e.add_row({util::Table::cell(awake, 3),
               mission.feasible
                   ? util::Table::cell(static_cast<double>(mission.sessions_per_day), 4)
                   : "infeasible",
               mission.feasible ? util::Table::cell(mission.end_soc * 100.0, 3) + " %"
                                : "-"});
  }
  e.print(std::cout);
  std::cout << "\n(The patch's own idle draw dominates: the paper's 10 h idle\n"
            << "figure means all-day wear requires either duty-cycled wearing\n"
            << "or a mid-day top-up.)\n";
  return 0;
}
