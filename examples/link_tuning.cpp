// Link tuning workbench: explore coil placement and matching — the
// day-to-day questions of an implant power-link designer (paper Sec. III
// calls patch wearability and receiver miniaturization "still an open
// research topic").
#include <iostream>
#include <memory>
#include <vector>

#include "src/link/phy.hpp"
#include "src/magnetics/coupling.hpp"
#include "src/magnetics/link.hpp"
#include "src/rf/classe.hpp"
#include "src/rf/matching.hpp"
#include "src/util/table.hpp"

#include "src/obs/report.hpp"

using namespace ironic;

// Every registered LinkPhy backend side by side: operating point,
// modulation pair, and the power/efficiency falloff with depth — the
// comparison the paper frames as inductive vs. emerging transducers.
void backend_survey() {
  std::cout << "\nLinkPhy backend survey:\n";
  util::Table profile({"backend", "downlink", "uplink", "rate (bit/s)",
                       "drive (V)", "cadence (s)", "P_nominal (mW)"});
  std::vector<std::unique_ptr<link::LinkPhy>> backends;
  for (const auto& name : link::backend_names()) {
    backends.push_back(link::make_backend(name));
    auto& phy = *backends.back();
    profile.add_row({name, phy.downlink_modulation(), phy.uplink_modulation(),
                     util::Table::cell(phy.nominal().rate_bps, 4),
                     util::Table::cell(phy.nominal().drive_v, 3),
                     util::Table::cell(phy.nominal().cadence_s, 3),
                     util::Table::cell(phy.nominal_power() * 1e3, 4)});
  }
  profile.print(std::cout);

  for (auto& phy : backends) {
    std::cout << "\n  " << phy->name()
              << ": power vs depth (lateral offset 0 / 6 mm):\n";
    util::Table falloff({"extra depth (mm)", "P (mW)", "eff (%)",
                         "P @6mm off (mW)"});
    for (double extra : {0.0, 4.0, 8.0, 12.0, 20.0}) {
      link::LinkCondition cond = phy->nominal_condition();
      cond.distance += extra * 1e-3;
      const double p_axis = phy->power_delivered(cond);
      const double eff = phy->efficiency(cond);
      cond.lateral_offset = 6e-3;
      const double p_off = phy->power_delivered(cond);
      falloff.add_row({util::Table::cell(extra, 3),
                       util::Table::cell(p_axis * 1e3, 4),
                       util::Table::cell(eff * 100.0, 3),
                       util::Table::cell(p_off * 1e3, 4)});
    }
    falloff.print(std::cout);
  }
}

int main() {
  ironic::obs::RunReport run_report("link_tuning");
  std::cout << "Inductive-link tuning workbench\n\n";

  const magnetics::Coil patch{magnetics::patch_coil_spec()};
  const magnetics::Coil implant{magnetics::implant_coil_spec()};
  util::Table coils({"coil", "L (uH)", "R_ac @5MHz (Ohm)", "Q @5MHz", "SRF (MHz)"});
  const auto coil_row = [&](const char* name, const magnetics::Coil& c) {
    coils.add_row({name, util::Table::cell(c.inductance() * 1e6, 4),
                   util::Table::cell(c.ac_resistance(5e6), 3),
                   util::Table::cell(c.quality_factor(5e6), 3),
                   util::Table::cell(c.self_resonance_frequency() / 1e6, 3)});
  };
  coil_row("patch (22 mm spiral)", patch);
  coil_row("implant (38x2 mm, 8-layer)", implant);
  coils.print(std::cout);

  std::cout << "\nPlacement sweep (efficiency at the optimal load):\n";
  util::Table place({"distance (mm)", "offset (mm)", "k", "efficiency (%)",
                     "drive for 5 mW (V)"});
  magnetics::InductiveLink link{magnetics::LinkConfig{}};
  for (double d : {4.0, 6.0, 10.0, 17.0}) {
    for (double off : {0.0, 8.0}) {
      link.set_distance(d * 1e-3);
      link.set_lateral_offset(off * 1e-3);
      const double rl = link.optimal_load_resistance();
      const auto a = link.analyze(1.0, rl);
      place.add_row({util::Table::cell(d, 3), util::Table::cell(off, 3),
                     util::Table::cell(a.coupling, 3),
                     util::Table::cell(a.efficiency * 100.0, 3),
                     util::Table::cell(link.drive_for_power(5e-3, rl), 3)});
    }
  }
  place.print(std::cout);

  std::cout << "\nSecondary-side matching (CA/CB) options at 5 MHz, rectifier\n"
            << "average impedance 150 Ohm:\n";
  util::Table match({"target R at coil (Ohm)", "CA (pF)", "CB (pF)", "Q"});
  for (double rt : {2.0, 4.0, 8.0, 15.0}) {
    try {
      const auto m = rf::design_capacitive_match(implant.inductance(), 150.0, rt, 5e6);
      match.add_row({util::Table::cell(rt, 3), util::Table::cell(m.series_c * 1e12, 4),
                     util::Table::cell(m.shunt_c * 1e12, 4),
                     util::Table::cell(m.q, 3)});
    } catch (const std::invalid_argument&) {
      match.add_row({util::Table::cell(rt, 3), "infeasible", "-", "-"});
    }
  }
  match.print(std::cout);

  std::cout << "\nClass-E transmitter for the reflected load at 6 mm:\n";
  link.set_distance(6e-3);
  link.set_lateral_offset(0.0);
  const auto analysis = link.analyze(1.0, link.optimal_load_resistance());
  const double omega_m = 2.0 * 3.14159265358979 * 5e6 * analysis.mutual;
  const double reflected =
      omega_m * omega_m /
      (implant.ac_resistance(5e6) + link.optimal_load_resistance());
  rf::ClassESpec pa;
  pa.load_resistance = reflected;
  pa.supply_voltage = 0.6;
  const auto design = rf::design_class_e(pa);
  std::cout << "  reflected load " << util::format_si(reflected, "Ohm")
            << " -> C_shunt " << util::format_si(design.shunt_capacitance, "F")
            << ", C_series " << util::format_si(design.series_capacitance, "F")
            << ", L_tank " << util::format_si(design.series_inductance, "H")
            << ", P_out " << util::format_si(design.output_power, "W") << "\n";

  backend_survey();
  return 0;
}
