// Link tuning workbench: explore coil placement and matching — the
// day-to-day questions of an implant power-link designer (paper Sec. III
// calls patch wearability and receiver miniaturization "still an open
// research topic").
#include <iostream>

#include "src/magnetics/coupling.hpp"
#include "src/magnetics/link.hpp"
#include "src/rf/classe.hpp"
#include "src/rf/matching.hpp"
#include "src/util/table.hpp"

#include "src/obs/report.hpp"

using namespace ironic;

int main() {
  ironic::obs::RunReport run_report("link_tuning");
  std::cout << "Inductive-link tuning workbench\n\n";

  const magnetics::Coil patch{magnetics::patch_coil_spec()};
  const magnetics::Coil implant{magnetics::implant_coil_spec()};
  util::Table coils({"coil", "L (uH)", "R_ac @5MHz (Ohm)", "Q @5MHz", "SRF (MHz)"});
  const auto coil_row = [&](const char* name, const magnetics::Coil& c) {
    coils.add_row({name, util::Table::cell(c.inductance() * 1e6, 4),
                   util::Table::cell(c.ac_resistance(5e6), 3),
                   util::Table::cell(c.quality_factor(5e6), 3),
                   util::Table::cell(c.self_resonance_frequency() / 1e6, 3)});
  };
  coil_row("patch (22 mm spiral)", patch);
  coil_row("implant (38x2 mm, 8-layer)", implant);
  coils.print(std::cout);

  std::cout << "\nPlacement sweep (efficiency at the optimal load):\n";
  util::Table place({"distance (mm)", "offset (mm)", "k", "efficiency (%)",
                     "drive for 5 mW (V)"});
  magnetics::InductiveLink link{magnetics::LinkConfig{}};
  for (double d : {4.0, 6.0, 10.0, 17.0}) {
    for (double off : {0.0, 8.0}) {
      link.set_distance(d * 1e-3);
      link.set_lateral_offset(off * 1e-3);
      const double rl = link.optimal_load_resistance();
      const auto a = link.analyze(1.0, rl);
      place.add_row({util::Table::cell(d, 3), util::Table::cell(off, 3),
                     util::Table::cell(a.coupling, 3),
                     util::Table::cell(a.efficiency * 100.0, 3),
                     util::Table::cell(link.drive_for_power(5e-3, rl), 3)});
    }
  }
  place.print(std::cout);

  std::cout << "\nSecondary-side matching (CA/CB) options at 5 MHz, rectifier\n"
            << "average impedance 150 Ohm:\n";
  util::Table match({"target R at coil (Ohm)", "CA (pF)", "CB (pF)", "Q"});
  for (double rt : {2.0, 4.0, 8.0, 15.0}) {
    try {
      const auto m = rf::design_capacitive_match(implant.inductance(), 150.0, rt, 5e6);
      match.add_row({util::Table::cell(rt, 3), util::Table::cell(m.series_c * 1e12, 4),
                     util::Table::cell(m.shunt_c * 1e12, 4),
                     util::Table::cell(m.q, 3)});
    } catch (const std::invalid_argument&) {
      match.add_row({util::Table::cell(rt, 3), "infeasible", "-", "-"});
    }
  }
  match.print(std::cout);

  std::cout << "\nClass-E transmitter for the reflected load at 6 mm:\n";
  link.set_distance(6e-3);
  link.set_lateral_offset(0.0);
  const auto analysis = link.analyze(1.0, link.optimal_load_resistance());
  const double omega_m = 2.0 * 3.14159265358979 * 5e6 * analysis.mutual;
  const double reflected =
      omega_m * omega_m /
      (implant.ac_resistance(5e6) + link.optimal_load_resistance());
  rf::ClassESpec pa;
  pa.load_resistance = reflected;
  pa.supply_voltage = 0.6;
  const auto design = rf::design_class_e(pa);
  std::cout << "  reflected load " << util::format_si(reflected, "Ohm")
            << " -> C_shunt " << util::format_si(design.shunt_capacitance, "F")
            << ", C_series " << util::format_si(design.series_capacitance, "F")
            << ", L_tank " << util::format_si(design.series_inductance, "H")
            << ", P_out " << util::format_si(design.output_power, "W") << "\n";
  return 0;
}
