// Quickstart: power an implanted sensor through the skin.
//
// Builds the paper's inductive link, checks the power budget for the
// sensor's two operating modes, and runs the transistor-level Fig. 11
// transient to confirm the implant boots and communicates.
//
//   $ ./quickstart
#include <iostream>

#include "src/comms/bitstream.hpp"
#include "src/core/budget.hpp"
#include "src/core/system.hpp"
#include "src/util/table.hpp"
#include "src/util/units.hpp"

#include "src/obs/report.hpp"

using namespace ironic;
using namespace ironic::units;

int main() {
  ironic::obs::RunReport run_report("quickstart");
  // 1. The link: patch coil over the implant at 6 mm, 5 MHz carrier.
  magnetics::LinkConfig link_cfg;
  link_cfg.distance = 6.0_mm;
  magnetics::InductiveLink link{link_cfg};
  std::cout << "Link at " << util::format_si(link_cfg.distance, "m") << ": k = "
            << link.coupling() << ", optimal load = "
            << util::format_si(link.optimal_load_resistance(), "Ohm") << "\n";

  // 2. Power budget: can the link feed the sensor through rectifier+LDO?
  const double drive = link.drive_for_power(5.0_mW, link.optimal_load_resistance());
  const auto budget = core::analyze_power_budget(link, drive, pm::LdoSpec{},
                                                 pm::SensorLoadSpec{});
  std::cout << "Delivering " << util::format_si(budget.received_power, "W")
            << " -> DC " << util::format_si(budget.dc_power, "W")
            << "; low-power margin " << util::format_si(budget.margin_low, "W")
            << ", measurement-mode margin " << util::format_si(budget.margin_high, "W")
            << "\n";

  // 3. End to end: charge-up, 18-bit downlink, uplink, regulation check.
  std::cout << "\nRunning the Fig. 11 transient (takes a couple of seconds)...\n";
  const auto result = core::run_fig11_scenario();
  util::Table t({"check", "result"});
  t.add_row({"storage capacitor reached 2.75 V",
             util::Table::cell(result.t_charge * 1e6, 4) + " us"});
  t.add_row({"downlink (100 kbps ASK)",
             result.downlink_ok ? "all 18 bits recovered" : "errors"});
  t.add_row({"uplink (LSK on patch current)",
             result.uplink_ok ? "all bits detected" : "errors"});
  t.add_row({"regulator input stayed above 2.1 V",
             util::Table::cell(result.regulator_never_starved)});
  t.add_row({"sensor rail", util::Table::cell(result.worst_case_rail, 3) + " V"});
  t.print(std::cout);
  return result.downlink_ok && result.uplink_ok && result.regulator_never_starved
             ? 0
             : 1;
}
