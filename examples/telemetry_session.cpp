// A full telemetry session: the smartphone connects to the patch over
// bluetooth, the patch powers the implant, sends a CRC-framed command
// downlink (ASK), and reads framed sensor data back uplink (LSK) —
// while the battery ledger tracks every state (paper Sec. III-A).
#include <iostream>
#include <vector>

#include "src/comms/ask.hpp"
#include "src/comms/bitstream.hpp"
#include "src/comms/lsk.hpp"
#include "src/obs/report.hpp"
#include "src/patch/controller.hpp"
#include "src/util/rng.hpp"
#include "src/util/table.hpp"

using namespace ironic;
using namespace ironic::comms;
using namespace ironic::patch;

namespace {

// DSP loopback of an ASK frame through the noisy channel.
bool send_downlink_frame(const Frame& frame, double noise_rms) {
  AskSpec spec;  // 100 kbps, paper depth
  const auto bits = encode_frame(frame);
  const double t0 = 10e-6;
  const double t_stop = t0 + bits.size() * spec.bit_period() + 10e-6;
  const auto w = ask_waveform(bits, spec, t0, t_stop);
  std::vector<double> ts, vs;
  util::Rng rng(2024);
  for (double t = 0.0; t <= t_stop; t += 20e-9) {
    ts.push_back(t);
    vs.push_back(w(t) + rng.normal(0.0, noise_rms));
  }
  const auto rx = demodulate_ask(ts, vs, spec, t0, bits.size());
  return decode_frame(rx).has_value();
}

// Synthetic LSK uplink of a frame via the patch supply current.
bool receive_uplink_frame(const Frame& frame, double noise_rms) {
  LskSpec spec;  // 66.6 kbps
  const auto bits = encode_frame(frame);
  const double tb = spec.bit_period();
  std::vector<double> ts, is;
  util::Rng rng(77);
  for (double t = 0.0; t < bits.size() * tb; t += 0.3e-6) {
    const auto bit = static_cast<std::size_t>(t / tb);
    const double current = bits[std::min(bit, bits.size() - 1)] ? 80e-3 : 55e-3;
    ts.push_back(t);
    is.push_back(current + rng.normal(0.0, noise_rms));
  }
  const auto rx = detect_lsk(ts, is, spec, 0.0, bits.size());
  const auto decoded = decode_frame(rx);
  return decoded.has_value() && decoded->payload == frame.payload;
}

}  // namespace

int main() {
  ironic::obs::RunReport run_report("telemetry_session");
  std::cout << "Telemetry session: smartphone -> patch -> implant -> back\n\n";

  PatchController patch;
  util::Table log({"t (s)", "action", "state", "battery (%)"});
  const auto snap = [&](const char* action) {
    log.add_row({util::Table::cell(patch.time(), 4), action,
                 to_string(patch.state()),
                 util::Table::cell(patch.battery().state_of_charge() * 100.0, 4)});
  };

  patch.handle(PatchEvent::kBtConnect);
  snap("bluetooth connected");
  patch.advance(5.0);
  patch.handle(PatchEvent::kStartPowering);
  snap("power carrier on");
  patch.advance(2.0);  // implant charge-up (Fig. 11: < 1 ms, margin here)

  // Command frame: "measure lactate, 1 sample".
  Frame command;
  command.payload = {0x01, 0x4C, 0x01};
  patch.handle(PatchEvent::kSendDownlink);
  const bool dl_ok = send_downlink_frame(command, 0.05);
  patch.advance(encode_frame(command).size() / 100e3);
  patch.handle(PatchEvent::kBurstDone);
  snap(dl_ok ? "command frame delivered (CRC ok)" : "command frame corrupted");

  patch.advance(0.2);  // implant performs the measurement

  // Data frame back: 14-bit ADC code 0x10BE split into two bytes.
  Frame data;
  data.payload = {0x10, 0xBE};
  patch.handle(PatchEvent::kReceiveUplink);
  const bool ul_ok = receive_uplink_frame(data, 2e-3);
  patch.advance(encode_frame(data).size() / 66.6e3);
  patch.handle(PatchEvent::kBurstDone);
  snap(ul_ok ? "sensor frame received (CRC ok)" : "sensor frame corrupted");

  patch.handle(PatchEvent::kStopPowering);
  patch.handle(PatchEvent::kBtDisconnect);
  snap("session closed");

  log.print(std::cout);

  std::cout << "\nRemaining idle runtime: " << patch.remaining_runtime() / 3600.0
            << " h\n";
  std::cout << "Session verdict: downlink " << (dl_ok ? "OK" : "FAIL") << ", uplink "
            << (ul_ok ? "OK" : "FAIL") << "\n";
  run_report.metric("session.downlink_ok", dl_ok ? 1.0 : 0.0);
  run_report.metric("session.uplink_ok", ul_ok ? 1.0 : 0.0);
  run_report.metric("session.battery_soc_end", patch.battery().state_of_charge());
  run_report.metric("session.remaining_runtime_h", patch.remaining_runtime() / 3600.0);
  return dl_ok && ul_ok ? 0 : 1;
}
