// Netlist playground: define the implant's receive chain as SPICE text
// (with a .subckt), simulate it, and export the waveforms as CSV — the
// workflow for users who think in netlists rather than C++.
//
//   $ ./netlist_playground > waves.csv
#include <iostream>

#include "src/spice/engine.hpp"
#include "src/spice/netlist_parser.hpp"
#include "src/util/table.hpp"

#include "src/obs/report.hpp"

using namespace ironic;
using namespace ironic::spice;

int main() {
  ironic::obs::RunReport run_report("netlist_playground");
  // The paper's receive chain: link stand-in -> half-wave rectifier with
  // a 3 V Zener clamp -> storage capacitor -> sensor load.
  const char* netlist = R"(
* implant receive chain (source-driven, as in the paper's Sec. IV-C)
.subckt rectifier in out
D1 in out IS=1e-16
Dz 0 out BV=3
Co out 0 220n
.ends

V1 src 0 SIN(0 3.6 5meg)
Rs src vi 150
X1 vi vo rectifier
Rload vo 0 5.14k
.end
)";

  Circuit ckt;
  const int devices = parse_netlist(ckt, netlist);
  std::cerr << "parsed " << devices << " devices, " << ckt.num_nodes()
            << " nodes\n";

  TransientOptions opts;
  opts.t_stop = 400e-6;
  opts.dt_max = 5e-9;
  opts.record_every = 64;
  opts.record_signals = {"v(vi)", "v(vo)"};
  const auto res = run_transient(ckt, opts);

  std::cerr << "Vo at 400 us: " << res.value_at("v(vo)", 399e-6) << " V (Zener-clamped "
            << "charge-up of the paper's storage capacitor)\n";
  std::cerr << "writing CSV to stdout...\n";
  res.write_csv(std::cout, {"v(vi)", "v(vo)"}, 4);
  return 0;
}
