#include "src/pm/regulator.hpp"

#include <algorithm>
#include <stdexcept>

#include "src/spice/devices_nonlinear.hpp"
#include "src/spice/devices_passive.hpp"
#include "src/spice/devices_sources.hpp"
#include "src/spice/waveform.hpp"

namespace ironic::pm {

LdoModel::LdoModel(LdoSpec spec) : spec_(spec) {
  if (spec_.output_voltage <= 0.0 || spec_.dropout < 0.0) {
    throw std::invalid_argument("LdoModel: invalid spec");
  }
}

double LdoModel::output_voltage(double vin, double load_current) const {
  if (vin <= spec_.dropout) return 0.0;
  const double regulated =
      spec_.output_voltage - spec_.load_regulation * std::max(load_current, 0.0);
  return std::min(regulated, vin - spec_.dropout);
}

bool LdoModel::in_regulation(double vin) const {
  return vin >= spec_.min_input_voltage();
}

double LdoModel::input_current(double load_current) const {
  return std::max(load_current, 0.0) + spec_.quiescent_current;
}

double LdoModel::dissipation(double vin, double load_current) const {
  const double vout = output_voltage(vin, load_current);
  return (vin - vout) * std::max(load_current, 0.0) + vin * spec_.quiescent_current;
}

double LdoModel::efficiency(double vin, double load_current) const {
  if (vin <= 0.0 || load_current <= 0.0) return 0.0;
  const double vout = output_voltage(vin, load_current);
  return vout * load_current / (vin * input_current(load_current));
}

LdoHandles build_ldo(spice::Circuit& circuit, const std::string& prefix,
                     spice::NodeId input, const LdoSpec& spec, double v_ref) {
  using namespace spice;
  LdoHandles h;
  h.input = input;
  h.output = circuit.node(prefix + ".vout");
  const NodeId gate = circuit.node(prefix + ".gate");
  const NodeId fb = circuit.node(prefix + ".fb");
  const NodeId ref = circuit.node(prefix + ".ref");

  circuit.add<VoltageSource>(prefix + ".Vref", ref, kGround, Waveform::dc(v_ref));

  // Error amplifier: drives the PMOS gate. Feedback on the inverting
  // path through the divider; output rails track the input node loosely
  // (a 5 V ceiling covers the rectifier's clamped range).
  OpAmpParams ea;
  ea.gain = 5e3;
  ea.v_out_min = 0.0;
  ea.v_out_max = 5.0;
  circuit.add<OpAmp>(prefix + ".EA", gate, fb, ref, ea);

  // PMOS pass device, sized for a few mA at a few hundred mV dropout.
  MosParams pass;
  pass.type = MosType::kPmos;
  pass.kp = 70e-6;
  pass.w = 4000.0 * pass.l;
  pass.bulk_diodes = false;
  circuit.add<Mosfet>(prefix + ".Mpass", h.output, gate, input, input, pass);

  // Feedback divider sets vout = v_ref * (R1 + R2) / R2.
  const double ratio = spec.output_voltage / v_ref;
  const double r2 = 200e3;
  const double r1 = (ratio - 1.0) * r2;
  if (r1 <= 0.0) throw std::invalid_argument("build_ldo: vout must exceed v_ref");
  circuit.add<Resistor>(prefix + ".R1", h.output, fb, r1);
  circuit.add<Resistor>(prefix + ".R2", fb, kGround, r2);

  // Output capacitor for stability of the sampled transient.
  circuit.add<Capacitor>(prefix + ".Cout", h.output, kGround, 100e-9);
  return h;
}

}  // namespace ironic::pm
