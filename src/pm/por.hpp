// Power-on reset: holds the implant logic in reset until the rectifier
// output has genuinely settled above the LDO's minimum input, with
// hysteresis so communication droop cannot chatter the sensor on/off.
// Not drawn in the paper's figures but required by its operating story
// (the sensor "boots" once Vo clears 2.1 V and must ride through the
// ASK/LSK dips of Fig. 11).
#pragma once

#include <string>

#include "src/spice/circuit.hpp"
#include "src/spice/trace.hpp"

namespace ironic::pm {

struct PorSpec {
  double release_threshold = 2.2;  // rail level releasing reset [V]
  double assert_threshold = 1.9;   // rail level re-asserting reset [V]
  double delay = 20e-6;            // qualification time above threshold [s]
};

// Behavioural model operating on a simulated rail waveform.
class PorModel {
 public:
  explicit PorModel(PorSpec spec = {});
  const PorSpec& spec() const { return spec_; }

  // First time the reset releases (rail above release_threshold for the
  // full delay). Returns false if it never does.
  bool release_time(const spice::TransientResult& trace, const std::string& rail_signal,
                    double& t_out) const;
  // True if, after releasing, the rail ever falls below assert_threshold
  // (a brown-out that would re-reset the sensor).
  bool brownout_after_release(const spice::TransientResult& trace,
                              const std::string& rail_signal) const;

 private:
  PorSpec spec_;
};

struct PorHandles {
  spice::NodeId rail;
  spice::NodeId reset_n;      // high once the rail qualifies
  std::string reset_n_name;
};

// Circuit macro: comparator with a hysteresis divider plus an RC
// qualification delay driving the reset_n flag.
PorHandles build_por(spice::Circuit& circuit, const std::string& prefix,
                     spice::NodeId rail, const PorSpec& spec = {});

}  // namespace ironic::pm
