// Low-dropout regulator (paper Sec. IV-C): 1.8 V output, 300 mV dropout,
// so the rectifier must hold Vo >= 2.1 V for the sensor to stay in
// regulation — the invariant Fig. 11 verifies.
//
// Two representations:
//   - LdoModel: fast behavioural transfer function for system studies,
//   - build_ldo: device-level macro (error amp + PMOS pass + divider)
//     for transient netlists.
#pragma once

#include <string>

#include "src/spice/circuit.hpp"

namespace ironic::pm {

struct LdoSpec {
  double output_voltage = 1.8;   // regulated rail [V]
  double dropout = 0.3;          // [V]
  double quiescent_current = 5e-6;  // ground-pin current [A]
  double load_regulation = 2e-3; // dVout per A of load [V/A]

  // Minimum input for full regulation (the paper's 2.1 V threshold).
  double min_input_voltage() const { return output_voltage + dropout; }
};

class LdoModel {
 public:
  explicit LdoModel(LdoSpec spec = {});
  const LdoSpec& spec() const { return spec_; }

  // Output voltage for a given input and load current: regulated when
  // vin >= vout + dropout, tracking (vin - dropout) below that, zero
  // below the dropout itself.
  double output_voltage(double vin, double load_current = 0.0) const;
  // True when the device holds the nominal output at this input.
  bool in_regulation(double vin) const;
  // Input current drawn for a given load current (pass-through + Iq).
  double input_current(double load_current) const;
  // Power dissipated in the pass device.
  double dissipation(double vin, double load_current) const;
  // Efficiency vout*Iload / (vin * Iin).
  double efficiency(double vin, double load_current) const;

 private:
  LdoSpec spec_;
};

struct LdoHandles {
  spice::NodeId input;
  spice::NodeId output;
};

// Device-level macro: PMOS pass transistor driven by an error amplifier
// comparing the feedback divider against `v_ref`.
LdoHandles build_ldo(spice::Circuit& circuit, const std::string& prefix,
                     spice::NodeId input, const LdoSpec& spec = {},
                     double v_ref = 0.9);

}  // namespace ironic::pm
