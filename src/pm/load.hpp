// Implanted-sensor load models (paper Sec. IV-C): ~350 uA in low-power
// (communication) mode and ~1.3 mA in high-power (measurement) mode at
// 1.8 V — deliberately pessimistic values the paper uses to stress the
// power module.
#pragma once

#include <string>
#include <vector>

#include "src/spice/circuit.hpp"

namespace ironic::pm {

enum class SensorMode { kSleep, kLowPower, kHighPower };

struct SensorLoadSpec {
  double supply_voltage = 1.8;
  double sleep_current = 20e-6;
  double low_power_current = 350e-6;   // receive / transmit
  double high_power_current = 1.3e-3;  // measurement
};

// Current drawn in a mode.
double mode_current(const SensorLoadSpec& spec, SensorMode mode);

// A scheduled mode profile for behavioural power studies.
struct ModeInterval {
  double t_start = 0.0;
  SensorMode mode = SensorMode::kLowPower;
};

class SensorLoadProfile {
 public:
  SensorLoadProfile(SensorLoadSpec spec, std::vector<ModeInterval> schedule);
  // Current at time t.
  double current(double t) const;
  // Charge consumed over [t0, t1] [C].
  double charge(double t0, double t1) const;

 private:
  SensorLoadSpec spec_;
  std::vector<ModeInterval> schedule_;
};

// Circuit-level load on the rectifier output: a resistor sized for the
// mode current at the nominal supply, gated by a switch that releases
// the rail during start-up (a real sensor draws ~nothing below POR).
void build_sensor_load(spice::Circuit& circuit, const std::string& prefix,
                       spice::NodeId rail, const SensorLoadSpec& spec,
                       SensorMode mode, double turn_on_voltage = 1.0);

}  // namespace ironic::pm
