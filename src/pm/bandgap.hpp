// Bandgap references (paper Sec. II-B): a conventional 1.2 V reference
// biases the working electrode and a Banba-style sub-1V reference [22]
// puts 550 mV on the reference electrode, so the cell sees the 650 mV
// oxidation potential of glucose/lactate independent of temperature and
// supply.
//
// Behavioural model: nominal voltage with a parabolic temperature bow
// (classic first-order-compensated bandgap) and a finite line
// regulation, dropping out of regulation below a minimum supply.
#pragma once

namespace ironic::pm {

struct BandgapSpec {
  double nominal_voltage = 1.2;       // [V] at t_nominal and v_supply_nominal
  double t_nominal = 310.15;          // [K] (implant runs at body temperature)
  double curvature = 8e-6;            // [V/K^2] parabolic bow
  double line_sensitivity = 1e-3;     // [V/V] d(vout)/d(vsupply)
  double v_supply_nominal = 1.8;      // [V]
  double min_supply = 1.0;            // below this the reference collapses
};

class BandgapReference {
 public:
  explicit BandgapReference(BandgapSpec spec = {});
  const BandgapSpec& spec() const { return spec_; }

  // Output voltage at the given junction temperature and supply.
  double voltage(double temperature, double supply) const;
  // Temperature coefficient in ppm/K over [t_lo, t_hi] at nominal supply.
  double tempco_ppm(double t_lo, double t_hi) const;

 private:
  BandgapSpec spec_;
};

// The two references of the electronic interface (Fig. 3).
BandgapReference we_reference();   // 1.2 V regular bandgap on WE
BandgapReference re_reference();   // 550 mV sub-1V (Banba) reference on RE

// Oxidation potential applied across the cell: V(WE) - V(RE) = 650 mV.
double cell_bias_voltage(double temperature, double supply);

}  // namespace ironic::pm
