#include "src/pm/load.hpp"

#include <algorithm>
#include <stdexcept>

#include "src/spice/devices_nonlinear.hpp"
#include "src/spice/devices_passive.hpp"

namespace ironic::pm {

double mode_current(const SensorLoadSpec& spec, SensorMode mode) {
  switch (mode) {
    case SensorMode::kSleep: return spec.sleep_current;
    case SensorMode::kLowPower: return spec.low_power_current;
    case SensorMode::kHighPower: return spec.high_power_current;
  }
  return 0.0;
}

SensorLoadProfile::SensorLoadProfile(SensorLoadSpec spec,
                                     std::vector<ModeInterval> schedule)
    : spec_(spec), schedule_(std::move(schedule)) {
  if (schedule_.empty()) {
    throw std::invalid_argument("SensorLoadProfile: schedule must not be empty");
  }
  for (std::size_t i = 1; i < schedule_.size(); ++i) {
    if (schedule_[i].t_start <= schedule_[i - 1].t_start) {
      throw std::invalid_argument("SensorLoadProfile: schedule must be increasing");
    }
  }
}

double SensorLoadProfile::current(double t) const {
  SensorMode mode = schedule_.front().mode;
  for (const auto& iv : schedule_) {
    if (t >= iv.t_start) mode = iv.mode;
  }
  return mode_current(spec_, mode);
}

double SensorLoadProfile::charge(double t0, double t1) const {
  if (t1 < t0) throw std::invalid_argument("SensorLoadProfile::charge: bad window");
  // Integrate the piecewise-constant current between mode boundaries.
  double total = 0.0;
  double t = t0;
  for (std::size_t i = 0; i < schedule_.size(); ++i) {
    const double seg_end =
        (i + 1 < schedule_.size()) ? std::min(schedule_[i + 1].t_start, t1) : t1;
    if (seg_end <= t) continue;
    const double seg_start = std::max(schedule_[i].t_start, t);
    if (seg_start >= t1) break;
    total += mode_current(spec_, schedule_[i].mode) * (std::min(seg_end, t1) - seg_start);
    t = seg_end;
  }
  return total;
}

void build_sensor_load(spice::Circuit& circuit, const std::string& prefix,
                       spice::NodeId rail, const SensorLoadSpec& spec, SensorMode mode,
                       double turn_on_voltage) {
  using namespace spice;
  const double current = mode_current(spec, mode);
  if (current <= 0.0) throw std::invalid_argument("build_sensor_load: bad mode current");
  const double r = spec.supply_voltage / current;
  const NodeId mid = circuit.internal_node(prefix + ".load");
  // Power-on-reset behaviour: the load engages once the rail crosses the
  // POR threshold (self-controlled switch).
  SwitchParams sw;
  sw.r_on = 1.0;
  sw.r_off = 1e9;
  sw.v_on = turn_on_voltage;
  sw.v_off = 0.7 * turn_on_voltage;
  circuit.add<SmoothSwitch>(prefix + ".Spor", rail, mid, rail, kGround, sw);
  circuit.add<Resistor>(prefix + ".Rload", mid, kGround, r);
}

}  // namespace ironic::pm
