// The implant's voltage rectifier and LSK load-modulation unit
// (paper Fig. 8, Sec. IV-A).
//
// Topology reproduced at device level:
//   - half-wave rectifying diode from the input Vi to the output Vo,
//   - storage capacitor Co and the sensor load on Vo,
//   - four series clamping diodes from Vo through switch M2 to ground,
//     limiting Vo to ~3 V (four forward drops),
//   - shunt NMOS M1 across the input: closing it short-circuits the
//     rectifier input to key the uplink (LSK),
//   - bulk-bias pair Ma/Mb steering M1's bulk to the lower of its
//     drain/source so the body diode never forward-biases when Vi swings
//     negative (the paper's triple-well anti-latch-up circuit).
#pragma once

#include <string>

#include "src/spice/circuit.hpp"
#include "src/spice/devices_nonlinear.hpp"
#include "src/spice/devices_passive.hpp"
#include "src/spice/devices_sources.hpp"
#include "src/spice/trace.hpp"
#include "src/spice/waveform.hpp"

namespace ironic::pm {

struct RectifierOptions {
  double storage_capacitance = 220e-9;  // Co [F]
  int clamp_diodes = 4;                 // series clamp chain length
  double diode_is = 1e-16;              // junction Is; ~0.75 V drop at mA level
  double clamp_area_scale = 10.0;       // clamp diodes are drawn larger
  // M1 (LSK shunt) sizing: wide switch, ~2 Ohm on-resistance.
  double m1_w_over_l = 2000.0;
  // M2 (clamp-chain series switch) sizing.
  double m2_w_over_l = 500.0;
  bool bulk_bias = true;   // false -> M1 bulk hard-tied to ground (ablation)
  bool clamps_enabled = true;  // false -> no overvoltage clamp (ablation)
};

struct RectifierHandles {
  spice::NodeId input;    // Vi
  spice::NodeId output;   // Vo
  spice::NodeId m1_gate;  // Vup (uplink bitstream)
  spice::NodeId m2_gate;
  spice::Mosfet* m1 = nullptr;
  spice::Mosfet* m2 = nullptr;
  spice::Capacitor* co = nullptr;
};

// Build the rectifier into `circuit`. `vup` drives M1's gate (high =
// input shorted); `vm2` drives M2 (high = clamps engaged). The caller
// connects Vi to the matching network / link secondary and attaches the
// load to Vo.
RectifierHandles build_rectifier(spice::Circuit& circuit, const std::string& prefix,
                                 spice::NodeId input, spice::Waveform vup,
                                 spice::Waveform vm2, const RectifierOptions& options = {});

// Full-wave (Gr&auml;tzel bridge) variant — an extension the paper lists as
// obvious follow-on work: doubles the conduction events per carrier
// cycle, halving ripple at the cost of two diode drops in the path.
// Shares RectifierOptions; M1/M2/clamps are attached the same way.
RectifierHandles build_bridge_rectifier(spice::Circuit& circuit,
                                        const std::string& prefix, spice::NodeId in_p,
                                        spice::NodeId in_n, spice::Waveform vup,
                                        spice::Waveform vm2,
                                        const RectifierOptions& options = {});

// Greinacher voltage doubler — the other classic follow-on topology:
// a series pump capacitor plus two diodes deliver ~2x the carrier
// amplitude, letting the implant work at weaker coupling at the cost of
// doubled ripple charge through the pump.
struct DoublerOptions {
  double pump_capacitance = 10e-9;      // series pump C [F]
  double storage_capacitance = 220e-9;  // Co [F]
  double diode_is = 1e-16;
};

struct DoublerHandles {
  spice::NodeId input;
  spice::NodeId output;
  spice::Capacitor* co = nullptr;
};

DoublerHandles build_voltage_doubler(spice::Circuit& circuit, const std::string& prefix,
                                     spice::NodeId input,
                                     const DoublerOptions& options = {});

// --- characterization -------------------------------------------------------

struct InputImpedanceResult {
  double resistance = 0.0;      // effective average input resistance [Ohm]
  double average_power = 0.0;   // mean power absorbed at the input [W]
  double input_rms = 0.0;       // rms input voltage [V]
  double output_voltage = 0.0;  // settled Vo [V]
};

// The paper's procedure (Sec. IV-C): because the rectifier is nonlinear,
// drive it with the carrier, run a transient, and define the average
// input impedance as Vrms^2 / Pavg at the input. ~150 Ohm is reported.
InputImpedanceResult extract_average_input_impedance(double drive_amplitude,
                                                     double source_resistance,
                                                     double load_resistance,
                                                     const RectifierOptions& options = {},
                                                     double frequency = 5e6);

}  // namespace ironic::pm
