#include "src/pm/rectifier.hpp"

#include <stdexcept>

#include "src/spice/engine.hpp"

namespace ironic::pm {

using namespace spice;

RectifierHandles build_rectifier(Circuit& circuit, const std::string& prefix,
                                 NodeId input, Waveform vup, Waveform vm2,
                                 const RectifierOptions& options) {
  if (options.storage_capacitance <= 0.0 || options.clamp_diodes < 1) {
    throw std::invalid_argument("build_rectifier: invalid options");
  }
  RectifierHandles h;
  h.input = input;
  h.output = circuit.node(prefix + ".vo");
  h.m1_gate = circuit.node(prefix + ".vup");
  h.m2_gate = circuit.node(prefix + ".vm2g");

  DiodeParams dp;
  dp.saturation_current = options.diode_is;

  // Rectifying diode and storage capacitor.
  circuit.add<Diode>(prefix + ".Drect", input, h.output, dp);
  h.co = &circuit.add<Capacitor>(prefix + ".Co", h.output, kGround,
                                 options.storage_capacitance);

  // Gate drives.
  circuit.add<VoltageSource>(prefix + ".Vup", h.m1_gate, kGround, std::move(vup));
  circuit.add<VoltageSource>(prefix + ".Vm2", h.m2_gate, kGround, std::move(vm2));

  // Clamp chain: Vo -> D x N -> M2 -> gnd. M2 opens during uplink lows so
  // the clamp leakage cannot discharge Co.
  if (options.clamps_enabled) {
    DiodeParams clamp_dp = dp;
    clamp_dp.saturation_current = dp.saturation_current * options.clamp_area_scale;
    NodeId prev = h.output;
    for (int i = 0; i < options.clamp_diodes; ++i) {
      const NodeId next = circuit.internal_node(prefix + ".clamp");
      circuit.add<Diode>(prefix + ".Dc" + std::to_string(i + 1), prev, next, clamp_dp);
      prev = next;
    }
    MosParams m2p;
    m2p.w = options.m2_w_over_l * m2p.l;
    m2p.bulk_diodes = true;
    h.m2 = &circuit.add<Mosfet>(prefix + ".M2", prev, h.m2_gate, kGround, kGround, m2p);
  }

  // LSK shunt M1 with bulk steering (Ma/Mb keep the bulk at the lower of
  // drain/source; without them the body diode clamps negative inputs).
  MosParams m1p;
  m1p.w = options.m1_w_over_l * m1p.l;
  m1p.bulk_diodes = true;
  if (options.bulk_bias) {
    const NodeId bulk = circuit.node(prefix + ".m1bulk");
    h.m1 = &circuit.add<Mosfet>(prefix + ".M1", input, h.m1_gate, kGround, bulk, m1p);
    MosParams bp;
    bp.w = 20.0 * bp.l;
    bp.bulk_diodes = false;  // the steering pair lives in the isolated well
    // Ma: when the input is high, pull the bulk to ground (the source).
    circuit.add<Mosfet>(prefix + ".Ma", bulk, input, kGround, bulk, bp);
    // Mb: when the input swings below ground, the (grounded) gate turns
    // Mb on and the bulk follows the input (the drain side).
    circuit.add<Mosfet>(prefix + ".Mb", bulk, kGround, input, bulk, bp);
    // Keep the well weakly referenced so it cannot float away.
    circuit.add<Resistor>(prefix + ".Rbulk", bulk, kGround, 1e6);
  } else {
    h.m1 = &circuit.add<Mosfet>(prefix + ".M1", input, h.m1_gate, kGround, kGround, m1p);
  }
  return h;
}

RectifierHandles build_bridge_rectifier(Circuit& circuit, const std::string& prefix,
                                        NodeId in_p, NodeId in_n, Waveform vup,
                                        Waveform vm2, const RectifierOptions& options) {
  if (options.storage_capacitance <= 0.0 || options.clamp_diodes < 1) {
    throw std::invalid_argument("build_bridge_rectifier: invalid options");
  }
  RectifierHandles h;
  h.input = in_p;
  h.output = circuit.node(prefix + ".vo");
  h.m1_gate = circuit.node(prefix + ".vup");
  h.m2_gate = circuit.node(prefix + ".vm2g");
  const NodeId vneg = circuit.node(prefix + ".vneg");

  DiodeParams dp;
  dp.saturation_current = options.diode_is;
  // Bridge: both input phases feed Vo on alternating half-cycles; the
  // return path closes through the low-side pair into the local ground.
  circuit.add<Diode>(prefix + ".D1", in_p, h.output, dp);
  circuit.add<Diode>(prefix + ".D2", in_n, h.output, dp);
  circuit.add<Diode>(prefix + ".D3", vneg, in_p, dp);
  circuit.add<Diode>(prefix + ".D4", vneg, in_n, dp);
  circuit.add<Resistor>(prefix + ".Rgnd", vneg, kGround, 1.0);
  h.co = &circuit.add<Capacitor>(prefix + ".Co", h.output, kGround,
                                 options.storage_capacitance);

  // The shunt's gate drive is referenced to in_n: with a floating
  // differential input, in_n rides a diode drop below the local ground
  // on alternate half-cycles, and a ground-referenced gate would turn
  // M1 on by itself.
  circuit.add<VoltageSource>(prefix + ".Vup", h.m1_gate, in_n, std::move(vup));
  circuit.add<VoltageSource>(prefix + ".Vm2", h.m2_gate, kGround, std::move(vm2));

  if (options.clamps_enabled) {
    DiodeParams clamp_dp = dp;
    clamp_dp.saturation_current = dp.saturation_current * options.clamp_area_scale;
    NodeId prev = h.output;
    for (int i = 0; i < options.clamp_diodes; ++i) {
      const NodeId next = circuit.internal_node(prefix + ".clamp");
      circuit.add<Diode>(prefix + ".Dc" + std::to_string(i + 1), prev, next, clamp_dp);
      prev = next;
    }
    MosParams m2p;
    m2p.w = options.m2_w_over_l * m2p.l;
    h.m2 = &circuit.add<Mosfet>(prefix + ".M2", prev, h.m2_gate, kGround, kGround, m2p);
  }

  // LSK shunt across the differential input; isolated well bulk tied to
  // the source side (in_n).
  MosParams m1p;
  m1p.w = options.m1_w_over_l * m1p.l;
  h.m1 = &circuit.add<Mosfet>(prefix + ".M1", in_p, h.m1_gate, in_n, in_n, m1p);
  return h;
}

DoublerHandles build_voltage_doubler(Circuit& circuit, const std::string& prefix,
                                     NodeId input, const DoublerOptions& options) {
  if (options.pump_capacitance <= 0.0 || options.storage_capacitance <= 0.0) {
    throw std::invalid_argument("build_voltage_doubler: invalid options");
  }
  DoublerHandles h;
  h.input = input;
  h.output = circuit.node(prefix + ".vo");
  const NodeId pumped = circuit.node(prefix + ".pump");

  DiodeParams dp;
  dp.saturation_current = options.diode_is;
  // Series pump capacitor; D1 clamps the pumped node's negative swing to
  // ground, D2 peak-rectifies the (now 0..2A) swing onto Co.
  circuit.add<Capacitor>(prefix + ".Cp", input, pumped, options.pump_capacitance);
  circuit.add<Diode>(prefix + ".D1", kGround, pumped, dp);
  circuit.add<Diode>(prefix + ".D2", pumped, h.output, dp);
  h.co = &circuit.add<Capacitor>(prefix + ".Co", h.output, kGround,
                                 options.storage_capacitance);
  return h;
}

InputImpedanceResult extract_average_input_impedance(double drive_amplitude,
                                                     double source_resistance,
                                                     double load_resistance,
                                                     const RectifierOptions& options,
                                                     double frequency) {
  if (drive_amplitude <= 0.0 || source_resistance <= 0.0 || load_resistance <= 0.0) {
    throw std::invalid_argument("extract_average_input_impedance: bad arguments");
  }
  Circuit ckt;
  const NodeId src = ckt.node("src");
  const NodeId vi = ckt.node("vi");
  ckt.add<VoltageSource>("Vs", src, kGround,
                         Waveform::sine(drive_amplitude, frequency));
  ckt.add<Resistor>("Rs", src, vi, source_resistance);
  const auto rect = build_rectifier(ckt, "rect", vi, Waveform::dc(0.0),
                                    Waveform::dc(1.8), options);
  ckt.add<Resistor>("RL", rect.output, kGround, load_resistance);

  // Simulate long enough for Vo to settle, then average over the tail.
  const double period = 1.0 / frequency;
  TransientOptions opts;
  opts.t_stop = 400.0 * period;
  opts.dt_max = period / 40.0;
  opts.record_every = 2;
  opts.record_signals = {"v(vi)", "v(src)", "v(rect.vo)"};
  const auto res = run_transient(ckt, opts);

  const double w0 = opts.t_stop - 50.0 * period;
  const double w1 = opts.t_stop;
  // Input current through Rs: (v(src) - v(vi)) / Rs.
  const double mean_vv = res.mean_product_between("v(vi)", "v(vi)", w0, w1);
  const double mean_sv = res.mean_product_between("v(src)", "v(vi)", w0, w1);
  const double p_in = (mean_sv - mean_vv) / source_resistance;

  InputImpedanceResult out;
  out.input_rms = res.rms_between("v(vi)", w0, w1);
  out.average_power = p_in;
  out.resistance = p_in > 0.0 ? out.input_rms * out.input_rms / p_in : 1e12;
  out.output_voltage = res.mean_between("v(rect.vo)", w0, w1);
  return out;
}

}  // namespace ironic::pm
