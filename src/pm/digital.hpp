// Static-CMOS gate macros and the two-phase non-overlapping clock
// generator that produces the demodulator's phi1/phi2 on silicon
// (Fig. 9 shows the phases; this is the cell that makes them).
#pragma once

#include <string>

#include "src/spice/circuit.hpp"

namespace ironic::pm {

struct GateSizing {
  double w_over_l_n = 10.0;  // NMOS strength
  double p_ratio = 2.4;      // PMOS widening for the weaker hole mobility
  double load_capacitance = 20e-15;  // output load [F]
};

// Static-CMOS inverter; returns the output node.
spice::NodeId build_inverter(spice::Circuit& circuit, const std::string& prefix,
                             spice::NodeId in, spice::NodeId vdd,
                             const GateSizing& sizing = {});

// Two-input NAND (series NMOS, parallel PMOS); returns the output node.
spice::NodeId build_nand(spice::Circuit& circuit, const std::string& prefix,
                         spice::NodeId a, spice::NodeId b, spice::NodeId vdd,
                         const GateSizing& sizing = {});

// Two-input NOR (parallel NMOS, series PMOS); returns the output node.
spice::NodeId build_nor(spice::Circuit& circuit, const std::string& prefix,
                        spice::NodeId a, spice::NodeId b, spice::NodeId vdd,
                        const GateSizing& sizing = {});

struct NonOverlapHandles {
  spice::NodeId phi1;
  spice::NodeId phi2;
  std::string phi1_name;
  std::string phi2_name;
};

// Classic cross-coupled-NAND non-overlap generator: from a single clock,
// produce phi1 (in phase) and phi2 (anti-phase) whose high intervals
// never overlap; the RC delay elements set the guard gap (~2.2 R C).
NonOverlapHandles build_nonoverlap_generator(spice::Circuit& circuit,
                                             const std::string& prefix,
                                             spice::NodeId clk, spice::NodeId vdd,
                                             double delay_r = 100e3,
                                             double delay_c = 1e-12);

}  // namespace ironic::pm
