#include "src/pm/demodulator.hpp"

#include <stdexcept>

#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/pm/digital.hpp"
#include "src/spice/devices_passive.hpp"
#include "src/spice/devices_sources.hpp"
#include "src/spice/waveform.hpp"

namespace ironic::pm {

using namespace spice;

NodeId build_cmos_inverter(Circuit& circuit, const std::string& prefix, NodeId input,
                           NodeId vdd, double w_over_l_n) {
  const NodeId out = circuit.node(prefix + ".out");
  MosParams nmos;
  nmos.type = MosType::kNmos;
  nmos.w = w_over_l_n * nmos.l;
  nmos.bulk_diodes = false;
  MosParams pmos;
  pmos.type = MosType::kPmos;
  pmos.kp = 70e-6;  // weaker hole mobility
  pmos.w = 2.4 * w_over_l_n * pmos.l;
  pmos.bulk_diodes = false;
  circuit.add<Mosfet>(prefix + ".MN", out, input, kGround, kGround, nmos);
  circuit.add<Mosfet>(prefix + ".MP", out, input, vdd, vdd, pmos);
  // Output load keeps the node defined when both devices are nearly off.
  circuit.add<Capacitor>(prefix + ".Cl", out, kGround, 20e-15);
  circuit.add<Resistor>(prefix + ".Rl", out, kGround, 50e6);
  return out;
}

DemodulatorHandles build_demodulator(Circuit& circuit, const std::string& prefix,
                                     NodeId input, const DemodulatorOptions& options) {
  if (options.clock_frequency <= 0.0 || options.sample_capacitance <= 0.0) {
    throw std::invalid_argument("build_demodulator: invalid options");
  }
  const double period = 1.0 / options.clock_frequency;
  if (options.non_overlap >= period / 4.0) {
    throw std::invalid_argument("build_demodulator: non-overlap too large");
  }

  DemodulatorHandles h;
  h.input = input;
  h.options = options;
  h.sample = circuit.node(prefix + ".c2");
  const NodeId vdd = circuit.node(prefix + ".vdd");
  const NodeId comp = circuit.node(prefix + ".comp");

  // Logic rail for the comparator and inverters.
  circuit.add<VoltageSource>(prefix + ".Vdd", vdd, kGround,
                             Waveform::dc(options.supply));

  const double edge = 20e-9;
  if (options.gate_level_clock) {
    // Single master clock through the transistor-level generator; the
    // RC delay elements are sized so the guard gap matches the option.
    const NodeId clk = circuit.node(prefix + ".clk");
    circuit.add<VoltageSource>(
        prefix + ".Vclk", clk, kGround,
        Waveform::pulse(0.0, options.supply, options.clock_delay, edge, edge,
                        period / 2.0 - edge, period));
    const auto gen = build_nonoverlap_generator(circuit, prefix + ".gen", clk, vdd,
                                                100e3, options.non_overlap / 2.2 / 100e3);
    h.phi1 = gen.phi1;
    h.phi2 = gen.phi2;
  } else {
    // Two-phase non-overlapping clock from ideal pulse sources: phi1
    // occupies the first half of the period, phi2 the second, with a
    // guard gap on each edge.
    h.phi1 = circuit.node(prefix + ".phi1");
    h.phi2 = circuit.node(prefix + ".phi2");
    const double high1 = period / 2.0 - 2.0 * options.non_overlap;
    circuit.add<VoltageSource>(
        prefix + ".Vphi1", h.phi1, kGround,
        Waveform::pulse(0.0, options.supply, options.clock_delay + options.non_overlap,
                        edge, edge, high1, period));
    circuit.add<VoltageSource>(
        prefix + ".Vphi2", h.phi2, kGround,
        Waveform::pulse(0.0, options.supply,
                        options.clock_delay + period / 2.0 + options.non_overlap, edge,
                        edge, high1, period));
  }

  // Sampling path: D6 -> M10 (phi1-keyed) -> C2, with a bleeder that
  // stands in for the paper's controlled discharge of the diode string.
  DiodeParams dp;
  dp.saturation_current = options.diode_is;
  const NodeId after_diode = circuit.internal_node(prefix + ".d6");
  circuit.add<Diode>(prefix + ".D6", input, after_diode, dp);
  SwitchParams sample_sw;
  sample_sw.r_on = 50.0;
  sample_sw.r_off = 1e9;
  sample_sw.v_on = 0.7 * options.supply;
  sample_sw.v_off = 0.3 * options.supply;
  circuit.add<SmoothSwitch>(prefix + ".M10", after_diode, h.sample, h.phi1, kGround,
                            sample_sw);
  circuit.add<Capacitor>(prefix + ".C2", h.sample, kGround, options.sample_capacitance);
  circuit.add<Resistor>(prefix + ".Rbleed", after_diode, kGround, 1e6);

  // phi2: discharge C2.
  SwitchParams discharge_sw = sample_sw;
  discharge_sw.r_on = 200.0;
  circuit.add<SmoothSwitch>(prefix + ".Mdis", h.sample, kGround, h.phi2, kGround,
                            discharge_sw);

  // Comparator + I3/I4 inverter pair (real CMOS stages).
  const NodeId ref = circuit.node(prefix + ".ref");
  circuit.add<VoltageSource>(prefix + ".Vref", ref, kGround,
                             Waveform::dc(options.threshold));
  OpAmpParams cp;
  cp.gain = 2e3;
  cp.v_out_min = 0.0;
  cp.v_out_max = options.supply;
  circuit.add<OpAmp>(prefix + ".CMP", comp, h.sample, ref, cp);
  const NodeId i3 = build_cmos_inverter(circuit, prefix + ".I3", comp, vdd);
  const NodeId i4 = build_cmos_inverter(circuit, prefix + ".I4", i3, vdd);

  // phi1-clocked hold: the decision is valid while C2 holds the sampled
  // peak (i.e. during phi1); phi2 discharges C2, so latching then would
  // capture the cleared comparator. Holding on phi1 makes Vdem a clean
  // staircase through the phi2 half of each bit.
  h.output = circuit.node(prefix + ".vdem");
  h.output_name = prefix + ".vdem";
  h.sample_name = prefix + ".c2";
  SwitchParams hold_sw = sample_sw;
  hold_sw.r_on = 1e3;
  circuit.add<SmoothSwitch>(prefix + ".Mhold", i4, h.output, h.phi1, kGround, hold_sw);
  circuit.add<Capacitor>(prefix + ".Chold", h.output, kGround, 10e-12);
  circuit.add<Resistor>(prefix + ".Rhold", h.output, kGround, 100e6);
  return h;
}

std::vector<bool> decode_demodulator_output(const TransientResult& result,
                                            const DemodulatorHandles& handles,
                                            double t_first_bit, std::size_t n_bits) {
  const double period = 1.0 / handles.options.clock_frequency;
  const double threshold = handles.options.supply / 2.0;
  const std::string signal = "v(" + handles.output_name + ")";
  std::vector<bool> bits;
  bits.reserve(n_bits);
  for (std::size_t i = 0; i < n_bits; ++i) {
    // The hold capacitor is refreshed during phi2 (second half of the
    // cell); read just before the next cell starts.
    const double t = t_first_bit + (static_cast<double>(i) + 0.98) * period;
    const double vdem = result.value_at(signal, t);
    bits.push_back(vdem > threshold);

    if constexpr (obs::kEnabled) {
      auto& recorder = obs::TraceRecorder::instance();
      if (recorder.enabled()) {
        // Edge timing: when Vdem actually crossed the logic threshold
        // inside this bit cell, relative to the ideal cell start.
        double t_edge = 0.0;
        const bool edge_found = result.first_crossing(
            signal, threshold, t_first_bit + static_cast<double>(i) * period,
            /*rising=*/bits.back(), t_edge);
        std::vector<std::pair<std::string, std::string>> args = {
            {"bit", bits.back() ? "1" : "0"}, {"vdem_v", std::to_string(vdem)}};
        if (edge_found && t_edge < t) {
          const double offset =
              t_edge - (t_first_bit + static_cast<double>(i) * period);
          args.emplace_back("edge_offset_us", std::to_string(offset * 1e6));
        }
        recorder.sim_instant("demod.bit", "pm", t, std::move(args));
      }
    }
  }
  if constexpr (obs::kEnabled) {
    obs::MetricsRegistry::instance().counter("pm.demod.bits_decoded").add(n_bits);
  }
  return bits;
}

}  // namespace ironic::pm
