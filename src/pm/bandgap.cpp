#include "src/pm/bandgap.hpp"

#include <cmath>
#include <stdexcept>

namespace ironic::pm {

BandgapReference::BandgapReference(BandgapSpec spec) : spec_(spec) {
  if (spec_.nominal_voltage <= 0.0 || spec_.min_supply <= 0.0) {
    throw std::invalid_argument("BandgapReference: invalid spec");
  }
}

double BandgapReference::voltage(double temperature, double supply) const {
  if (supply < spec_.min_supply) {
    // Collapsed: output follows the starved supply through the core.
    return spec_.nominal_voltage * std::max(supply, 0.0) / spec_.min_supply * 0.5;
  }
  const double dt = temperature - spec_.t_nominal;
  const double bow = -spec_.curvature * dt * dt;
  const double line = spec_.line_sensitivity * (supply - spec_.v_supply_nominal);
  return spec_.nominal_voltage + bow + line;
}

double BandgapReference::tempco_ppm(double t_lo, double t_hi) const {
  if (t_hi <= t_lo) throw std::invalid_argument("tempco_ppm: bad range");
  const double v_lo = voltage(t_lo, spec_.v_supply_nominal);
  const double v_hi = voltage(t_hi, spec_.v_supply_nominal);
  const double v_mid = voltage(0.5 * (t_lo + t_hi), spec_.v_supply_nominal);
  return std::abs(v_hi - v_lo) / (v_mid * (t_hi - t_lo)) * 1e6;
}

BandgapReference we_reference() {
  BandgapSpec spec;
  spec.nominal_voltage = 1.2;
  return BandgapReference(spec);
}

BandgapReference re_reference() {
  BandgapSpec spec;
  spec.nominal_voltage = 0.55;
  spec.curvature = 5e-6;
  spec.min_supply = 0.9;  // sub-1V operation is the point of Banba's core
  return BandgapReference(spec);
}

double cell_bias_voltage(double temperature, double supply) {
  return we_reference().voltage(temperature, supply) -
         re_reference().voltage(temperature, supply);
}

}  // namespace ironic::pm
