#include "src/pm/por.hpp"

#include <stdexcept>

#include "src/spice/devices_nonlinear.hpp"
#include "src/spice/devices_passive.hpp"
#include "src/spice/devices_sources.hpp"
#include "src/spice/waveform.hpp"

namespace ironic::pm {

PorModel::PorModel(PorSpec spec) : spec_(spec) {
  if (spec_.assert_threshold >= spec_.release_threshold || spec_.delay < 0.0) {
    throw std::invalid_argument("PorModel: need assert < release and delay >= 0");
  }
}

bool PorModel::release_time(const spice::TransientResult& trace,
                            const std::string& rail_signal, double& t_out) const {
  const auto& time = trace.time();
  const auto rail = trace.signal(rail_signal);
  double above_since = -1.0;
  for (std::size_t i = 0; i < time.size(); ++i) {
    if (rail[i] >= spec_.release_threshold) {
      if (above_since < 0.0) above_since = time[i];
      if (time[i] - above_since >= spec_.delay) {
        t_out = time[i];
        return true;
      }
    } else {
      above_since = -1.0;
    }
  }
  return false;
}

bool PorModel::brownout_after_release(const spice::TransientResult& trace,
                                      const std::string& rail_signal) const {
  double t_release = 0.0;
  if (!release_time(trace, rail_signal, t_release)) return false;
  const auto& time = trace.time();
  const auto rail = trace.signal(rail_signal);
  for (std::size_t i = 0; i < time.size(); ++i) {
    if (time[i] > t_release && rail[i] < spec_.assert_threshold) return true;
  }
  return false;
}

PorHandles build_por(spice::Circuit& circuit, const std::string& prefix,
                     spice::NodeId rail, const PorSpec& spec) {
  using namespace spice;
  if (spec.assert_threshold >= spec.release_threshold) {
    throw std::invalid_argument("build_por: need assert < release");
  }
  PorHandles h;
  h.rail = rail;
  h.reset_n = circuit.node(prefix + ".reset_n");
  h.reset_n_name = prefix + ".reset_n";
  const NodeId ref = circuit.node(prefix + ".ref");
  const NodeId cmp = circuit.node(prefix + ".cmp");
  const NodeId fb = circuit.node(prefix + ".fb");

  // Reference from the sub-1V bandgap (available before the main rail).
  circuit.add<VoltageSource>(prefix + ".Vref", ref, kGround, Waveform::dc(0.55));

  // Rail divider with comparator-driven hysteresis: the feedback
  // resistor lifts the tap once reset_n goes high, moving the effective
  // threshold from `release` down to `assert`.
  const double r_top = 300e3;
  // Divider sized so rail = release_threshold puts the tap at the ref.
  const double r_bot = r_top * 0.55 / (spec.release_threshold - 0.55);
  circuit.add<Resistor>(prefix + ".Rt", rail, fb, r_top);
  circuit.add<Resistor>(prefix + ".Rb", fb, kGround, r_bot);
  const double r_hyst =
      r_top * 0.55 / (spec.release_threshold - spec.assert_threshold);
  circuit.add<Resistor>(prefix + ".Rh", h.reset_n, fb, r_hyst);

  OpAmpParams cp;
  cp.gain = 2e3;
  cp.v_out_min = 0.0;
  cp.v_out_max = 1.8;
  circuit.add<OpAmp>(prefix + ".CMP", cmp, fb, ref, cp);

  // Qualification delay: RC into the output flag.
  const double r_delay = 100e3;
  const double c_delay = spec.delay / (r_delay * 2.2);  // ~10-90 % rise
  circuit.add<Resistor>(prefix + ".Rd", cmp, h.reset_n, r_delay);
  circuit.add<Capacitor>(prefix + ".Cd", h.reset_n, kGround,
                         std::max(c_delay, 1e-12));
  return h;
}

}  // namespace ironic::pm
