// Clocked ASK amplitude demodulator (paper Fig. 9/10, Sec. IV-B).
//
// Device-level reproduction of the paper's sampling scheme:
//   - phase phi1: sampling switch M10 (plus series diode, the paper's
//     D6-D8 string) charges C2 to the carrier amplitude; inverters I3/I4
//     read the stored level,
//   - phase phi2: M10 is forced off (the paper uses C1 to null its Vgs;
//     here the switch gate is keyed by the phase directly) and C2 is
//     discharged, ready for the next bit.
// A comparator with an explicit reference replaces the bare inverter
// threshold of the paper's silicon (whose levels were set by their coil
// amplitudes); two real CMOS inverter stages (I3/I4) then square and
// buffer the decision, and a phi2-clocked hold capacitor makes Vdem a
// clean staircase as in Fig. 11.
#pragma once

#include <string>
#include <vector>

#include "src/spice/circuit.hpp"
#include "src/spice/devices_nonlinear.hpp"
#include "src/spice/trace.hpp"

namespace ironic::pm {

struct DemodulatorOptions {
  double clock_frequency = 100e3;  // one sample per downlink bit
  double clock_delay = 0.0;        // aligns phi1 with the bit cells [s]
  double non_overlap = 100e-9;     // phi1/phi2 guard gap [s]
  double sample_capacitance = 50e-12;  // C2
  double threshold = 1.4;          // comparator reference [V]
  double supply = 1.8;             // logic rail for I3/I4 [V]
  double diode_is = 2e-12;
  // false: phi1/phi2 come from two ideal pulse sources (fast, default).
  // true: a single clock drives the transistor-level cross-coupled-NAND
  // non-overlap generator (src/pm/digital.hpp) — the full silicon path.
  bool gate_level_clock = false;
};

struct DemodulatorHandles {
  spice::NodeId input;    // carrier node being monitored (Vi)
  spice::NodeId sample;   // C2 top plate
  spice::NodeId output;   // Vdem (held logic level)
  spice::NodeId phi1;     // sampling phase (exposed for probing)
  spice::NodeId phi2;
  std::string output_name;  // node name of Vdem ("<prefix>.vdem")
  std::string sample_name;  // node name of the C2 plate ("<prefix>.c2")
  DemodulatorOptions options;
};

// Build the demodulator watching `input`. The two-phase non-overlapping
// clock is generated internally from the options.
DemodulatorHandles build_demodulator(spice::Circuit& circuit, const std::string& prefix,
                                     spice::NodeId input,
                                     const DemodulatorOptions& options = {});

// Decode the held output: sample v(output) just before each phi2 phase
// ends, for `n_bits` bits starting at `t_first_bit` (one bit per clock).
std::vector<bool> decode_demodulator_output(const spice::TransientResult& result,
                                            const DemodulatorHandles& handles,
                                            double t_first_bit, std::size_t n_bits);

// A minimal CMOS inverter macro (used for I3/I4; also handy on its own).
// Returns the output node. `w_over_l_n` sizes the NMOS; the PMOS is made
// ~2.4x wider to balance the weaker hole mobility.
spice::NodeId build_cmos_inverter(spice::Circuit& circuit, const std::string& prefix,
                                  spice::NodeId input, spice::NodeId vdd,
                                  double w_over_l_n = 10.0);

}  // namespace ironic::pm
