#include "src/pm/digital.hpp"

#include "src/spice/devices_nonlinear.hpp"
#include "src/spice/devices_passive.hpp"

namespace ironic::pm {

using namespace spice;

namespace {

MosParams nmos_params(const GateSizing& sizing) {
  MosParams p;
  p.type = MosType::kNmos;
  p.w = sizing.w_over_l_n * p.l;
  p.bulk_diodes = false;
  return p;
}

MosParams pmos_params(const GateSizing& sizing, double series_factor = 1.0) {
  MosParams p;
  p.type = MosType::kPmos;
  p.kp = 70e-6;
  p.w = sizing.p_ratio * sizing.w_over_l_n * series_factor * p.l;
  p.bulk_diodes = false;
  return p;
}

void add_output_load(Circuit& circuit, const std::string& prefix, NodeId out,
                     const GateSizing& sizing) {
  circuit.add<Capacitor>(prefix + ".Cl", out, kGround, sizing.load_capacitance);
  circuit.add<Resistor>(prefix + ".Rl", out, kGround, 50e6);
}

}  // namespace

NodeId build_inverter(Circuit& circuit, const std::string& prefix, NodeId in,
                      NodeId vdd, const GateSizing& sizing) {
  const NodeId out = circuit.node(prefix + ".out");
  circuit.add<Mosfet>(prefix + ".MN", out, in, kGround, kGround, nmos_params(sizing));
  circuit.add<Mosfet>(prefix + ".MP", out, in, vdd, vdd, pmos_params(sizing));
  add_output_load(circuit, prefix, out, sizing);
  return out;
}

NodeId build_nand(Circuit& circuit, const std::string& prefix, NodeId a, NodeId b,
                  NodeId vdd, const GateSizing& sizing) {
  const NodeId out = circuit.node(prefix + ".out");
  const NodeId mid = circuit.internal_node(prefix + ".stack");
  // Series NMOS pull-down (double width to keep the stack strength).
  MosParams n = nmos_params(sizing);
  n.w *= 2.0;
  circuit.add<Mosfet>(prefix + ".MNa", out, a, mid, kGround, n);
  circuit.add<Mosfet>(prefix + ".MNb", mid, b, kGround, kGround, n);
  // Parallel PMOS pull-up.
  circuit.add<Mosfet>(prefix + ".MPa", out, a, vdd, vdd, pmos_params(sizing));
  circuit.add<Mosfet>(prefix + ".MPb", out, b, vdd, vdd, pmos_params(sizing));
  add_output_load(circuit, prefix, out, sizing);
  return out;
}

NodeId build_nor(Circuit& circuit, const std::string& prefix, NodeId a, NodeId b,
                 NodeId vdd, const GateSizing& sizing) {
  const NodeId out = circuit.node(prefix + ".out");
  const NodeId mid = circuit.internal_node(prefix + ".stack");
  // Parallel NMOS pull-down.
  circuit.add<Mosfet>(prefix + ".MNa", out, a, kGround, kGround, nmos_params(sizing));
  circuit.add<Mosfet>(prefix + ".MNb", out, b, kGround, kGround, nmos_params(sizing));
  // Series PMOS pull-up (double width for the stack).
  circuit.add<Mosfet>(prefix + ".MPa", mid, a, vdd, vdd, pmos_params(sizing, 2.0));
  circuit.add<Mosfet>(prefix + ".MPb", out, b, mid, vdd, pmos_params(sizing, 2.0));
  add_output_load(circuit, prefix, out, sizing);
  return out;
}

NonOverlapHandles build_nonoverlap_generator(Circuit& circuit,
                                             const std::string& prefix, NodeId clk,
                                             NodeId vdd, double delay_r,
                                             double delay_c) {
  // clkb = INV(clk); cross-coupled NANDs with RC-delayed feedback taken
  // from the NAND outputs (the phase complements):
  //   x = NAND(clk,  yd)   phi1 = INV(x)   xd = RC(x)
  //   y = NAND(clkb, xd)   phi2 = INV(y)   yd = RC(y)
  // phi1 = clk AND yd can only rise once y (= NOT phi2) has been high
  // through the RC delay, and symmetrically for phi2: the high phases
  // never overlap and the guard gap is ~the RC delay.
  const NodeId clkb = build_inverter(circuit, prefix + ".I0", clk, vdd);
  const NodeId xd = circuit.node(prefix + ".xd");
  const NodeId yd = circuit.node(prefix + ".yd");

  const NodeId x = build_nand(circuit, prefix + ".NA", clk, yd, vdd);
  const NodeId phi1 = build_inverter(circuit, prefix + ".I1", x, vdd);
  circuit.add<Resistor>(prefix + ".Rdx", x, xd, delay_r);
  circuit.add<Capacitor>(prefix + ".Cdx", xd, kGround, delay_c);

  const NodeId y = build_nand(circuit, prefix + ".NB", clkb, xd, vdd);
  const NodeId phi2 = build_inverter(circuit, prefix + ".I2", y, vdd);
  circuit.add<Resistor>(prefix + ".Rdy", y, yd, delay_r);
  circuit.add<Capacitor>(prefix + ".Cdy", yd, kGround, delay_c);

  NonOverlapHandles h;
  h.phi1 = phi1;
  h.phi2 = phi2;
  h.phi1_name = prefix + ".I1.out";
  h.phi2_name = prefix + ".I2.out";
  return h;
}

}  // namespace ironic::pm
