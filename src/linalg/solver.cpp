#include "src/linalg/solver.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/linalg/sparse.hpp"

namespace ironic::linalg {
namespace {

double magnitude(double v) { return std::abs(v); }
double magnitude(const Complex& v) { return std::abs(v); }

// Dense partial-pivot LU behind the solver interface. The factorization
// and solve loops are the same, in the same order, as LuFactorization
// (lu.cpp) and solve_complex (complex_matrix.cpp), so results are
// bit-for-bit what the engines produced before the refactor. On top of
// that: a values-identical factor skip — re-factoring the exact matrix
// just factored is a no-op (NaNs never compare equal, so a poisoned
// assembly always reaches the pivot check).
template <typename T>
class DenseSolver final : public LinearSolverT<T> {
 public:
  explicit DenseSolver(std::size_t n)
      : n_(n), a_(n * n, T{}), lu_(n * n, T{}), perm_(n) {}

  const char* name() const override { return "dense"; }
  SolverKind kind() const override { return SolverKind::kDense; }
  std::size_t size() const override { return n_; }

  void begin_assembly() override { std::fill(a_.begin(), a_.end(), T{}); }

  void add(int row, int col, T value) override {
    if (row < 0 || col < 0 || static_cast<std::size_t>(row) >= n_ ||
        static_cast<std::size_t>(col) >= n_) {
      throw std::out_of_range("DenseSolver::add: index out of range");
    }
    a_[static_cast<std::size_t>(row) * n_ + static_cast<std::size_t>(col)] += value;
  }

  void factor(double pivot_tol) override {
    if (n_ == 0) {
      factored_ = true;
      return;
    }
    if (factored_ && a_ == last_factored_) {
      ++stats_.factor_skips;
      return;
    }
    factored_ = false;
    lu_ = a_;
    for (std::size_t i = 0; i < n_; ++i) perm_[i] = i;
    for (std::size_t k = 0; k < n_; ++k) {
      // Partial pivoting: largest |entry| in column k at/below row k.
      std::size_t pivot_row = k;
      double pivot_mag = magnitude(lu_[k * n_ + k]);
      for (std::size_t r = k + 1; r < n_; ++r) {
        const double mag = magnitude(lu_[r * n_ + k]);
        if (mag > pivot_mag) {
          pivot_mag = mag;
          pivot_row = r;
        }
      }
      // Negated comparison so a NaN pivot (poisoned stamp upstream) is
      // rejected here instead of silently propagating through the solve.
      if (!(pivot_mag >= pivot_tol)) {
        throw SingularMatrixError("LU pivot " + std::to_string(k) + " below tolerance (" +
                                  std::to_string(pivot_mag) + ") — floating node or " +
                                  "inconsistent circuit?");
      }
      if (pivot_row != k) {
        std::swap(perm_[k], perm_[pivot_row]);
        T* rk = lu_.data() + k * n_;
        T* rp = lu_.data() + pivot_row * n_;
        for (std::size_t c = 0; c < n_; ++c) std::swap(rk[c], rp[c]);
      }
      const T inv_pivot = T{1.0} / lu_[k * n_ + k];
      for (std::size_t r = k + 1; r < n_; ++r) {
        const T factor = lu_[r * n_ + k] * inv_pivot;
        lu_[r * n_ + k] = factor;
        if (factor == T{}) continue;
        T* rr = lu_.data() + r * n_;
        const T* rk = lu_.data() + k * n_;
        for (std::size_t c = k + 1; c < n_; ++c) rr[c] -= factor * rk[c];
      }
    }
    ++stats_.factorizations;
    last_factored_ = a_;
    factored_ = true;
    stats_.nnz = n_ * n_;
    stats_.factor_nnz = n_ * n_;
  }

  void solve_in_place(std::span<T> b) override {
    if (b.size() != n_) {
      throw std::invalid_argument("DenseSolver::solve_in_place: size mismatch");
    }
    ++stats_.solves;
    if (n_ == 0) return;
    if (!factored_) {
      throw std::logic_error("DenseSolver::solve_in_place called before factor()");
    }
    y_.resize(n_);
    for (std::size_t i = 0; i < n_; ++i) y_[i] = b[perm_[i]];
    // Forward substitution (L has implicit unit diagonal).
    for (std::size_t r = 1; r < n_; ++r) {
      const T* row = lu_.data() + r * n_;
      T sum = y_[r];
      for (std::size_t c = 0; c < r; ++c) sum -= row[c] * y_[c];
      y_[r] = sum;
    }
    // Back substitution.
    for (std::size_t ri = n_; ri-- > 0;) {
      const T* row = lu_.data() + ri * n_;
      T sum = y_[ri];
      for (std::size_t c = ri + 1; c < n_; ++c) sum -= row[c] * y_[c];
      y_[ri] = sum / row[ri];
    }
    for (std::size_t i = 0; i < n_; ++i) b[i] = y_[i];
  }

  double diagonal_ratio() const override {
    double max_d = 0.0;
    double min_d = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < n_; ++i) {
      const double d = magnitude(lu_[i * n_ + i]);
      max_d = std::max(max_d, d);
      min_d = std::min(min_d, d);
    }
    return (min_d == 0.0) ? std::numeric_limits<double>::infinity() : max_d / min_d;
  }

  void invalidate_structure() override {
    factored_ = false;
    last_factored_.clear();
  }

  const SolverStats& stats() const override { return stats_; }

 private:
  std::size_t n_;
  std::vector<T> a_;
  std::vector<T> lu_;
  std::vector<std::size_t> perm_;
  std::vector<T> y_;
  std::vector<T> last_factored_;
  bool factored_ = false;
  SolverStats stats_;
};

}  // namespace

const char* solver_kind_name(SolverKind kind) {
  switch (kind) {
    case SolverKind::kAuto: return "auto";
    case SolverKind::kDense: return "dense";
    case SolverKind::kSparse: return "sparse";
  }
  return "?";
}

bool parse_solver_kind(std::string_view text, SolverKind& out) {
  if (text == "auto") {
    out = SolverKind::kAuto;
  } else if (text == "dense") {
    out = SolverKind::kDense;
  } else if (text == "sparse") {
    out = SolverKind::kSparse;
  } else {
    return false;
  }
  return true;
}

SolverKind resolve_solver_kind(SolverKind requested, std::size_t n) {
  if (requested != SolverKind::kAuto) return requested;
  return n >= kSparseAutoThreshold ? SolverKind::kSparse : SolverKind::kDense;
}

std::unique_ptr<LinearSolver> make_solver(SolverKind kind, std::size_t n) {
  if (resolve_solver_kind(kind, n) == SolverKind::kSparse) {
    return std::make_unique<SparseSolver<double>>(n);
  }
  return std::make_unique<DenseSolver<double>>(n);
}

std::unique_ptr<ComplexLinearSolver> make_complex_solver(SolverKind kind, std::size_t n) {
  if (resolve_solver_kind(kind, n) == SolverKind::kSparse) {
    return std::make_unique<SparseSolver<Complex>>(n);
  }
  return std::make_unique<DenseSolver<Complex>>(n);
}

}  // namespace ironic::linalg
