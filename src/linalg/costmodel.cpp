#include "src/linalg/costmodel.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <utility>

namespace ironic::linalg {
namespace {

std::int64_t pack(int row, int col) {
  return (static_cast<std::int64_t>(row) << 32) |
         static_cast<std::uint32_t>(col);
}

struct LEntry {
  int row;
  double value;
};

}  // namespace

FactorPrediction predict_sparse_factor(std::size_t n,
                                       std::span<const MatrixEntry> entries,
                                       double pivot_tol) {
  FactorPrediction out;
  out.n = n;
  if (n == 0) return out;

  // --- pattern merge: keyed triplets in stamp order, sorted, summed ------
  // The key-only comparator and the (unstable) std::sort mirror
  // SparseSolver::merge_pattern on the identical input sequence, so the
  // summation order of duplicate stamps — and hence every downstream
  // pivot decision — is bit-identical to the solver's first assembly.
  std::vector<std::pair<std::int64_t, double>> keyed;
  keyed.reserve(entries.size());
  for (const auto& e : entries) keyed.emplace_back(pack(e.row, e.col), e.value);
  std::sort(keyed.begin(), keyed.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  std::vector<int> row_ptr(n + 1, 0);
  std::vector<int> cols;
  std::vector<double> values;
  cols.reserve(keyed.size());
  values.reserve(keyed.size());
  std::size_t i = 0;
  while (i < keyed.size()) {
    const std::int64_t key = keyed[i].first;
    double sum = keyed[i].second;
    for (++i; i < keyed.size() && keyed[i].first == key; ++i) sum += keyed[i].second;
    cols.push_back(static_cast<int>(static_cast<std::uint32_t>(key)));
    values.push_back(sum);
    ++row_ptr[static_cast<std::size_t>(key >> 32) + 1];
  }
  for (std::size_t r = 0; r < n; ++r) row_ptr[r + 1] += row_ptr[r];
  out.pattern_nnz = cols.size();

  // --- CSC view (rows ascending per column, CSR traversal order) ---------
  const std::size_t nnz = cols.size();
  std::vector<int> csc_ptr(n + 1, 0);
  for (const int c : cols) ++csc_ptr[static_cast<std::size_t>(c) + 1];
  for (std::size_t c = 0; c < n; ++c) csc_ptr[c + 1] += csc_ptr[c];
  std::vector<int> csc_rows(nnz);
  std::vector<int> csc_slots(nnz);
  std::vector<int> next(csc_ptr.begin(), csc_ptr.end() - 1);
  for (std::size_t r = 0; r < n; ++r) {
    for (int p = row_ptr[r]; p < row_ptr[r + 1]; ++p) {
      const int c = cols[static_cast<std::size_t>(p)];
      const int q = next[static_cast<std::size_t>(c)]++;
      csc_rows[static_cast<std::size_t>(q)] = static_cast<int>(r);
      csc_slots[static_cast<std::size_t>(q)] = p;
    }
  }

  // --- column pre-order: ascending count, index-stable ties --------------
  std::vector<int> col_order(n);
  for (std::size_t j = 0; j < n; ++j) col_order[j] = static_cast<int>(j);
  std::sort(col_order.begin(), col_order.end(), [&](int a, int b) {
    const int ca = csc_ptr[static_cast<std::size_t>(a) + 1] - csc_ptr[static_cast<std::size_t>(a)];
    const int cb = csc_ptr[static_cast<std::size_t>(b) + 1] - csc_ptr[static_cast<std::size_t>(b)];
    if (ca != cb) return ca < cb;
    return a < b;
  });

  // --- left-looking elimination, counting instead of storing U -----------
  std::vector<std::vector<LEntry>> lcols(n);
  std::vector<int> pivot_row(n, -1);
  std::vector<int> row_pos(n, -1);
  std::vector<double> work(n, 0.0);
  std::vector<char> mark(n, 0);
  std::vector<int> touched;
  std::size_t factor_nnz = n;
  std::size_t total_l = 0;
  std::size_t total_u = 0;

  for (std::size_t jj = 0; jj < n; ++jj) {
    const int j = col_order[jj];
    for (int p = csc_ptr[static_cast<std::size_t>(j)];
         p < csc_ptr[static_cast<std::size_t>(j) + 1]; ++p) {
      const int r = csc_rows[static_cast<std::size_t>(p)];
      mark[static_cast<std::size_t>(r)] = 1;
      touched.push_back(r);
      work[static_cast<std::size_t>(r)] =
          values[static_cast<std::size_t>(csc_slots[static_cast<std::size_t>(p)])];
    }
    std::size_t ucol_size = 0;
    for (std::size_t kk = 0; kk < jj; ++kk) {
      const int pr = pivot_row[kk];
      if (!mark[static_cast<std::size_t>(pr)]) continue;
      const double ukj = work[static_cast<std::size_t>(pr)];
      ++ucol_size;
      for (const auto& e : lcols[kk]) {
        if (!mark[static_cast<std::size_t>(e.row)]) {
          mark[static_cast<std::size_t>(e.row)] = 1;
          touched.push_back(e.row);
        }
        work[static_cast<std::size_t>(e.row)] -= e.value * ukj;
      }
      out.factor_flops += 2.0 * static_cast<double>(lcols[kk].size());
    }
    int best = -1;
    double best_mag = -1.0;
    bool poisoned = false;
    for (const int r : touched) {
      if (row_pos[static_cast<std::size_t>(r)] >= 0) continue;
      const double mag = std::abs(work[static_cast<std::size_t>(r)]);
      if (std::isnan(mag)) poisoned = true;
      if (mag > best_mag) {
        best_mag = mag;
        best = r;
      }
    }
    if (poisoned || best < 0 || !(best_mag >= pivot_tol)) {
      out.singular = true;
      out.singular_column = jj;
      break;
    }
    pivot_row[jj] = best;
    row_pos[static_cast<std::size_t>(best)] = static_cast<int>(jj);
    const double piv = work[static_cast<std::size_t>(best)];
    auto& lcol = lcols[jj];
    for (const int r : touched) {
      if (row_pos[static_cast<std::size_t>(r)] >= 0) continue;
      lcol.push_back({r, work[static_cast<std::size_t>(r)] / piv});
    }
    out.factor_flops += static_cast<double>(lcol.size());
    factor_nnz += ucol_size + lcol.size();
    total_l += lcol.size();
    total_u += ucol_size;
    for (const int r : touched) {
      work[static_cast<std::size_t>(r)] = 0.0;
      mark[static_cast<std::size_t>(r)] = 0;
    }
    touched.clear();
  }
  out.factor_nnz = factor_nnz;
  out.solve_flops =
      2.0 * static_cast<double>(total_l + total_u) + static_cast<double>(n);
  return out;
}

SolverCostModel choose_solver(const FactorPrediction& prediction) {
  SolverCostModel model;
  const double n = static_cast<double>(prediction.n);
  // Dense partial-pivot LU: (2/3)n^3 elimination + 2n^2 substitution.
  model.dense_cost = (2.0 / 3.0) * n * n * n + 2.0 * n * n;
  model.sparse_cost =
      kSparseEntryCost * (prediction.factor_flops + prediction.solve_flops) +
      kSparseBaseCost;
  // A singular prediction means the replay could not finish (the real
  // solve escalates through gmin/source stepping); fall back to dense,
  // whose cost estimate needs no structure.
  model.recommendation =
      (!prediction.singular && model.sparse_cost < model.dense_cost)
          ? SolverKind::kSparse
          : SolverKind::kDense;
  return model;
}

}  // namespace ironic::linalg
