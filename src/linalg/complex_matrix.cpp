#include "src/linalg/complex_matrix.hpp"

#include <cmath>
#include <stdexcept>

#include "src/linalg/lu.hpp"

namespace ironic::linalg {

CMatrix::CMatrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, Complex{0.0, 0.0}) {}

void CMatrix::fill(Complex value) {
  for (auto& x : data_) x = value;
}

CVector CMatrix::multiply(std::span<const Complex> x) const {
  if (x.size() != cols_) throw std::invalid_argument("CMatrix::multiply: size mismatch");
  CVector y(rows_, Complex{0.0, 0.0});
  for (std::size_t r = 0; r < rows_; ++r) {
    const Complex* a = row(r);
    Complex sum{0.0, 0.0};
    for (std::size_t c = 0; c < cols_; ++c) sum += a[c] * x[c];
    y[r] = sum;
  }
  return y;
}

CVector solve_complex(const CMatrix& a, std::span<const Complex> b) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("solve_complex: matrix must be square");
  }
  if (b.size() != a.rows()) throw std::invalid_argument("solve_complex: size mismatch");
  const std::size_t n = a.rows();
  CMatrix lu = a;
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;

  for (std::size_t k = 0; k < n; ++k) {
    std::size_t pivot_row = k;
    double pivot_mag = std::abs(lu(k, k));
    for (std::size_t r = k + 1; r < n; ++r) {
      const double mag = std::abs(lu(r, k));
      if (mag > pivot_mag) {
        pivot_mag = mag;
        pivot_row = r;
      }
    }
    if (pivot_mag < 1e-30) {
      throw SingularMatrixError("solve_complex: pivot " + std::to_string(k) +
                                " below tolerance");
    }
    if (pivot_row != k) {
      std::swap(perm[k], perm[pivot_row]);
      Complex* rk = lu.row(k);
      Complex* rp = lu.row(pivot_row);
      for (std::size_t c = 0; c < n; ++c) std::swap(rk[c], rp[c]);
    }
    const Complex inv_pivot = 1.0 / lu(k, k);
    for (std::size_t r = k + 1; r < n; ++r) {
      const Complex factor = lu(r, k) * inv_pivot;
      lu(r, k) = factor;
      if (factor == Complex{0.0, 0.0}) continue;
      Complex* rr = lu.row(r);
      const Complex* rk = lu.row(k);
      for (std::size_t c = k + 1; c < n; ++c) rr[c] -= factor * rk[c];
    }
  }

  CVector y(n);
  for (std::size_t i = 0; i < n; ++i) y[i] = b[perm[i]];
  for (std::size_t r = 1; r < n; ++r) {
    const Complex* row = lu.row(r);
    Complex sum = y[r];
    for (std::size_t c = 0; c < r; ++c) sum -= row[c] * y[c];
    y[r] = sum;
  }
  for (std::size_t ri = n; ri-- > 0;) {
    const Complex* row = lu.row(ri);
    Complex sum = y[ri];
    for (std::size_t c = ri + 1; c < n; ++c) sum -= row[c] * y[c];
    y[ri] = sum / row[ri];
  }
  return y;
}

}  // namespace ironic::linalg
