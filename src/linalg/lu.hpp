// LU factorization with partial pivoting, the linear-solve kernel behind
// every Newton iteration of the circuit engine.
#pragma once

#include <cstddef>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/linalg/matrix.hpp"

namespace ironic::linalg {

// Factorization state reusable across solves with the same matrix.
class LuFactorization {
 public:
  // Factor A in place (a copy is stored). Throws SingularMatrixError if a
  // pivot below `pivot_tol` is encountered.
  explicit LuFactorization(const Matrix& a, double pivot_tol = 1e-30);

  std::size_t size() const { return lu_.rows(); }

  // Solve A x = b.
  Vector solve(std::span<const double> b) const;
  // In-place variant used by the Newton loop to avoid reallocations.
  void solve_in_place(std::span<double> b) const;

  // Growth-based estimate of how badly conditioned the factorization is:
  // max |U_ii| / min |U_ii|. Cheap and adequate for detecting the
  // near-singular matrices produced by floating circuit nodes.
  double diagonal_ratio() const;

 private:
  Matrix lu_;
  std::vector<std::size_t> perm_;
};

struct SingularMatrixError : std::runtime_error {
  explicit SingularMatrixError(const std::string& what) : std::runtime_error(what) {}
};

// One-shot convenience: solve A x = b.
Vector solve(const Matrix& a, std::span<const double> b);

}  // namespace ironic::linalg
