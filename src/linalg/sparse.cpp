#include "src/linalg/sparse.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>
#include <utility>

namespace ironic::linalg {
namespace {

// Cached-pivot acceptance during numeric-only refactorization: the pivot
// chosen by the last full factorization must keep at least this fraction
// of its column's magnitude, or the solver re-pivots from scratch.
constexpr double kRefactorPivotSlack = 1e-3;

double magnitude(double v) { return std::abs(v); }
double magnitude(const Complex& v) { return std::abs(v); }

}  // namespace

template <typename T>
SparseSolver<T>::SparseSolver(std::size_t n) : n_(n) {
  row_ptr_.assign(n_ + 1, 0);
  work_.assign(n_, T{});
  mark_.assign(n_, 0);
}

template <typename T>
int SparseSolver<T>::find_slot(int row, int col) const {
  if (!pattern_valid_) return -1;
  const auto lo = cols_.begin() + row_ptr_[static_cast<std::size_t>(row)];
  const auto hi = cols_.begin() + row_ptr_[static_cast<std::size_t>(row) + 1];
  const auto it = std::lower_bound(lo, hi, col);
  if (it == hi || *it != col) return -1;
  return static_cast<int>(it - cols_.begin());
}

template <typename T>
void SparseSolver<T>::begin_assembly() {
  assembling_ = true;
  cursor_ = 0;
  extra_.clear();
  new_rc_.clear();
  new_slot_.clear();
  fast_ = seq_valid_;
  recording_ = !seq_valid_;
  had_pattern_ = pattern_valid_;
  if (pattern_valid_) std::fill(values_.begin(), values_.end(), T{});
}

template <typename T>
void SparseSolver<T>::add(int row, int col, T value) {
  if (row < 0 || col < 0 || static_cast<std::size_t>(row) >= n_ ||
      static_cast<std::size_t>(col) >= n_) {
    throw std::out_of_range("SparseSolver::add: index out of range");
  }
  if (!assembling_) begin_assembly();
  const std::int64_t key = pack(row, col);
  if (fast_) {
    if (cursor_ < seq_rc_.size() && seq_rc_[cursor_] == key) {
      values_[static_cast<std::size_t>(seq_slot_[cursor_])] += value;
      ++cursor_;
      return;
    }
    // The stamp order diverged from the recorded sequence. Keep the
    // matched prefix and re-record the remainder through the slow path.
    fast_ = false;
    recording_ = true;
    new_rc_.assign(seq_rc_.begin(), seq_rc_.begin() + static_cast<std::ptrdiff_t>(cursor_));
    new_slot_.assign(seq_slot_.begin(),
                     seq_slot_.begin() + static_cast<std::ptrdiff_t>(cursor_));
  }
  const int slot = find_slot(row, col);
  if (slot >= 0) {
    values_[static_cast<std::size_t>(slot)] += value;
    new_rc_.push_back(key);
    new_slot_.push_back(slot);
  } else {
    extra_.push_back({row, col, value});
    new_rc_.push_back(key);
    new_slot_.push_back(-1);  // resolved after the pattern merge
  }
}

template <typename T>
void SparseSolver<T>::merge_pattern() {
  // Keep every existing entry — structural zeros included, so the pattern
  // only ever grows and cached slots stay meaningful — and merge in the
  // overflow triplets.
  std::vector<std::pair<std::int64_t, T>> entries;
  entries.reserve(cols_.size() + extra_.size());
  if (pattern_valid_) {
    for (std::size_t r = 0; r < n_; ++r) {
      for (int p = row_ptr_[r]; p < row_ptr_[r + 1]; ++p) {
        entries.emplace_back(pack(static_cast<int>(r), cols_[static_cast<std::size_t>(p)]),
                             values_[static_cast<std::size_t>(p)]);
      }
    }
  }
  for (const auto& t : extra_) entries.emplace_back(pack(t.row, t.col), t.value);
  extra_.clear();
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  row_ptr_.assign(n_ + 1, 0);
  cols_.clear();
  values_.clear();
  cols_.reserve(entries.size());
  values_.reserve(entries.size());
  std::size_t i = 0;
  while (i < entries.size()) {
    const std::int64_t key = entries[i].first;
    T sum = entries[i].second;
    for (++i; i < entries.size() && entries[i].first == key; ++i) sum += entries[i].second;
    cols_.push_back(static_cast<int>(static_cast<std::uint32_t>(key)));
    values_.push_back(sum);
    ++row_ptr_[static_cast<std::size_t>(key >> 32) + 1];
  }
  for (std::size_t r = 0; r < n_; ++r) row_ptr_[r + 1] += row_ptr_[r];
  pattern_valid_ = true;
}

template <typename T>
void SparseSolver<T>::finalize_assembly() {
  if (!assembling_) return;
  assembling_ = false;
  const bool rebuilt = !pattern_valid_ || !extra_.empty();
  if (rebuilt) {
    merge_pattern();
    csc_valid_ = false;
    symbolic_valid_ = false;
    factored_ = false;
    last_factored_.clear();
    ++stats_.pattern_builds;
  } else if (had_pattern_) {
    ++stats_.pattern_reuses;
  }
  if (recording_) {
    seq_rc_ = std::move(new_rc_);
    if (rebuilt) {
      // Recorded slots referenced the pre-merge pattern; re-resolve them.
      seq_slot_.resize(seq_rc_.size());
      for (std::size_t i = 0; i < seq_rc_.size(); ++i) {
        const int row = static_cast<int>(seq_rc_[i] >> 32);
        const int col = static_cast<int>(static_cast<std::uint32_t>(seq_rc_[i]));
        seq_slot_[i] = find_slot(row, col);
      }
    } else {
      seq_slot_ = std::move(new_slot_);
    }
    seq_valid_ = true;
  }
  fast_ = false;
  recording_ = false;
  stats_.nnz = cols_.size();
}

template <typename T>
void SparseSolver<T>::build_csc() {
  const std::size_t nnz = cols_.size();
  csc_ptr_.assign(n_ + 1, 0);
  for (const int c : cols_) ++csc_ptr_[static_cast<std::size_t>(c) + 1];
  for (std::size_t c = 0; c < n_; ++c) csc_ptr_[c + 1] += csc_ptr_[c];
  csc_rows_.resize(nnz);
  csc_slots_.resize(nnz);
  std::vector<int> next(csc_ptr_.begin(), csc_ptr_.end() - 1);
  for (std::size_t r = 0; r < n_; ++r) {
    for (int p = row_ptr_[r]; p < row_ptr_[r + 1]; ++p) {
      const int c = cols_[static_cast<std::size_t>(p)];
      const int q = next[static_cast<std::size_t>(c)]++;
      csc_rows_[static_cast<std::size_t>(q)] = static_cast<int>(r);
      csc_slots_[static_cast<std::size_t>(q)] = p;
    }
  }
  csc_valid_ = true;
}

template <typename T>
void SparseSolver<T>::build_col_order() {
  col_order_.resize(n_);
  for (std::size_t j = 0; j < n_; ++j) col_order_[j] = static_cast<int>(j);
  // Ascending column count, index-stable ties: a cheap static Markowitz
  // flavor — eliminating thin columns first keeps fill-in low on the
  // arrow-shaped patterns voltage sources and coupling branches produce.
  std::sort(col_order_.begin(), col_order_.end(), [this](int a, int b) {
    const int ca = csc_ptr_[static_cast<std::size_t>(a) + 1] - csc_ptr_[static_cast<std::size_t>(a)];
    const int cb = csc_ptr_[static_cast<std::size_t>(b) + 1] - csc_ptr_[static_cast<std::size_t>(b)];
    if (ca != cb) return ca < cb;
    return a < b;
  });
}

template <typename T>
void SparseSolver<T>::clear_column_workspace() {
  for (const int r : touched_) {
    work_[static_cast<std::size_t>(r)] = T{};
    mark_[static_cast<std::size_t>(r)] = 0;
  }
  touched_.clear();
}

template <typename T>
void SparseSolver<T>::full_factor(double pivot_tol) {
  symbolic_valid_ = false;
  if (!csc_valid_) build_csc();
  build_col_order();
  lcols_.assign(n_, {});
  ucols_.assign(n_, {});
  pivot_row_.assign(n_, -1);
  row_pos_.assign(n_, -1);
  upiv_.assign(n_, T{});
  clear_column_workspace();
  std::size_t factor_nnz = n_;

  for (std::size_t jj = 0; jj < n_; ++jj) {
    const int j = col_order_[jj];
    // Scatter column j of A into the dense accumulator.
    for (int p = csc_ptr_[static_cast<std::size_t>(j)];
         p < csc_ptr_[static_cast<std::size_t>(j) + 1]; ++p) {
      const int r = csc_rows_[static_cast<std::size_t>(p)];
      mark_[static_cast<std::size_t>(r)] = 1;
      touched_.push_back(r);
      work_[static_cast<std::size_t>(r)] = values_[static_cast<std::size_t>(csc_slots_[static_cast<std::size_t>(p)])];
    }
    // Eliminate with every earlier pivot whose row appears structurally.
    // The scan is O(jj) but each hit does real work; at MNA sizes the
    // scan is noise next to the dense-kernel O(n^3) it replaces.
    auto& ucol = ucols_[jj];
    for (std::size_t kk = 0; kk < jj; ++kk) {
      const int pr = pivot_row_[kk];
      if (!mark_[static_cast<std::size_t>(pr)]) continue;
      const T ukj = work_[static_cast<std::size_t>(pr)];
      ucol.push_back({static_cast<int>(kk), ukj});
      for (const auto& e : lcols_[kk]) {
        if (!mark_[static_cast<std::size_t>(e.row)]) {
          mark_[static_cast<std::size_t>(e.row)] = 1;
          touched_.push_back(e.row);
        }
        work_[static_cast<std::size_t>(e.row)] -= e.value * ukj;
      }
    }
    // Partial pivot among the not-yet-pivoted structural rows. A NaN
    // anywhere in the candidates poisons the column: reject it (negated
    // comparison below), mirroring the dense backend's NaN-aware check.
    int best = -1;
    double best_mag = -1.0;
    bool poisoned = false;
    for (const int r : touched_) {
      if (row_pos_[static_cast<std::size_t>(r)] >= 0) continue;
      const double mag = magnitude(work_[static_cast<std::size_t>(r)]);
      if (std::isnan(mag)) poisoned = true;
      if (mag > best_mag) {
        best_mag = mag;
        best = r;
      }
    }
    if (poisoned || best < 0 || !(best_mag >= pivot_tol)) {
      const double reported = poisoned ? std::numeric_limits<double>::quiet_NaN()
                                       : (best < 0 ? 0.0 : best_mag);
      clear_column_workspace();
      throw SingularMatrixError("LU pivot " + std::to_string(jj) + " below tolerance (" +
                                std::to_string(reported) + ") — floating node or " +
                                "inconsistent circuit?");
    }
    pivot_row_[jj] = best;
    row_pos_[static_cast<std::size_t>(best)] = static_cast<int>(jj);
    const T piv = work_[static_cast<std::size_t>(best)];
    upiv_[jj] = piv;
    auto& lcol = lcols_[jj];
    for (const int r : touched_) {
      if (row_pos_[static_cast<std::size_t>(r)] >= 0) continue;
      lcol.push_back({r, work_[static_cast<std::size_t>(r)] / piv});
    }
    factor_nnz += ucol.size() + lcol.size();
    clear_column_workspace();
  }
  stats_.factor_nnz = factor_nnz;
  symbolic_valid_ = true;
}

template <typename T>
bool SparseSolver<T>::refactor_numeric(double pivot_tol) {
  // Recompute the numbers along the cached elimination structure: same
  // pivot order, same L/U patterns, no structural work. Fails (returns
  // false) when a cached pivot degrades, and the caller falls back to a
  // full factorization.
  clear_column_workspace();
  for (std::size_t jj = 0; jj < n_; ++jj) {
    const int j = col_order_[jj];
    for (int p = csc_ptr_[static_cast<std::size_t>(j)];
         p < csc_ptr_[static_cast<std::size_t>(j) + 1]; ++p) {
      const int r = csc_rows_[static_cast<std::size_t>(p)];
      mark_[static_cast<std::size_t>(r)] = 1;
      touched_.push_back(r);
      work_[static_cast<std::size_t>(r)] = values_[static_cast<std::size_t>(csc_slots_[static_cast<std::size_t>(p)])];
    }
    auto& ucol = ucols_[jj];
    for (auto& ue : ucol) {
      const T ukj = work_[static_cast<std::size_t>(pivot_row_[static_cast<std::size_t>(ue.k)])];
      ue.value = ukj;
      for (const auto& e : lcols_[static_cast<std::size_t>(ue.k)]) {
        if (!mark_[static_cast<std::size_t>(e.row)]) {
          mark_[static_cast<std::size_t>(e.row)] = 1;
          touched_.push_back(e.row);
        }
        work_[static_cast<std::size_t>(e.row)] -= e.value * ukj;
      }
    }
    const T piv = work_[static_cast<std::size_t>(pivot_row_[jj])];
    const double piv_mag = magnitude(piv);
    // Largest not-yet-eliminated magnitude in the column, for the
    // stability check (NaN candidates fall to the tolerance test).
    double col_max = 0.0;
    for (const int r : touched_) {
      if (row_pos_[static_cast<std::size_t>(r)] < static_cast<int>(jj)) continue;
      const double mag = magnitude(work_[static_cast<std::size_t>(r)]);
      if (mag > col_max) col_max = mag;
    }
    if (!(piv_mag >= pivot_tol) || !(piv_mag >= kRefactorPivotSlack * col_max)) {
      clear_column_workspace();
      return false;
    }
    upiv_[jj] = piv;
    for (auto& le : lcols_[jj]) {
      le.value = work_[static_cast<std::size_t>(le.row)] / piv;
    }
    clear_column_workspace();
  }
  return true;
}

template <typename T>
void SparseSolver<T>::factor(double pivot_tol) {
  finalize_assembly();
  if (n_ == 0) {
    factored_ = true;
    return;
  }
  if (factored_ && values_ == last_factored_) {
    // Bit-identical to the factored matrix (linear circuits at a fixed
    // step hit this on the second Newton iteration and beyond): the
    // cached L/U is exact, skip the numeric work entirely.
    ++stats_.factor_skips;
    return;
  }
  if (symbolic_valid_ && refactor_numeric(pivot_tol)) {
    ++stats_.factorizations;
    ++stats_.refactorizations;
  } else {
    full_factor(pivot_tol);  // throws SingularMatrixError on failure
    ++stats_.factorizations;
  }
  last_factored_ = values_;
  factored_ = true;
}

template <typename T>
void SparseSolver<T>::solve_in_place(std::span<T> b) {
  if (b.size() != n_) {
    throw std::invalid_argument("SparseSolver::solve_in_place: size mismatch");
  }
  ++stats_.solves;
  if (n_ == 0) return;
  if (!factored_) {
    throw std::logic_error("SparseSolver::solve_in_place called before factor()");
  }
  fwd_.resize(n_);
  // y = L^-1 P b (unit-diagonal L), elimination order.
  for (std::size_t kk = 0; kk < n_; ++kk) {
    fwd_[kk] = b[static_cast<std::size_t>(pivot_row_[kk])];
  }
  for (std::size_t kk = 0; kk < n_; ++kk) {
    const T yk = fwd_[kk];
    if (yk == T{}) continue;
    for (const auto& e : lcols_[kk]) {
      fwd_[static_cast<std::size_t>(row_pos_[static_cast<std::size_t>(e.row)])] -= e.value * yk;
    }
  }
  // Column-oriented back substitution over U, right to left.
  for (std::size_t jj = n_; jj-- > 0;) {
    const T zj = fwd_[jj] / upiv_[jj];
    fwd_[jj] = zj;
    if (zj == T{}) continue;
    for (const auto& ue : ucols_[jj]) {
      fwd_[static_cast<std::size_t>(ue.k)] -= ue.value * zj;
    }
  }
  for (std::size_t jj = 0; jj < n_; ++jj) {
    b[static_cast<std::size_t>(col_order_[jj])] = fwd_[jj];
  }
}

template <typename T>
double SparseSolver<T>::diagonal_ratio() const {
  double max_d = 0.0;
  double min_d = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < n_; ++i) {
    const double d = magnitude(upiv_[i]);
    max_d = std::max(max_d, d);
    min_d = std::min(min_d, d);
  }
  return (min_d == 0.0) ? std::numeric_limits<double>::infinity() : max_d / min_d;
}

template <typename T>
void SparseSolver<T>::invalidate_structure() {
  row_ptr_.assign(n_ + 1, 0);
  cols_.clear();
  values_.clear();
  pattern_valid_ = false;
  seq_rc_.clear();
  seq_slot_.clear();
  seq_valid_ = false;
  assembling_ = false;
  extra_.clear();
  csc_valid_ = false;
  symbolic_valid_ = false;
  factored_ = false;
  last_factored_.clear();
}

template class SparseSolver<double>;
template class SparseSolver<Complex>;

}  // namespace ironic::linalg
