// Complex dense matrix + LU, the kernel of AC (phasor) analysis.
#pragma once

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

namespace ironic::linalg {

using Complex = std::complex<double>;
using CVector = std::vector<Complex>;

class CMatrix {
 public:
  CMatrix() = default;
  CMatrix(std::size_t rows, std::size_t cols);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  Complex& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  Complex operator()(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  Complex* row(std::size_t r) { return data_.data() + r * cols_; }
  const Complex* row(std::size_t r) const { return data_.data() + r * cols_; }

  void fill(Complex value);
  CVector multiply(std::span<const Complex> x) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<Complex> data_;
};

// Solve A x = b with partial-pivot LU. Throws SingularMatrixError (see
// lu.hpp) when a pivot vanishes.
CVector solve_complex(const CMatrix& a, std::span<const Complex> b);

}  // namespace ironic::linalg
