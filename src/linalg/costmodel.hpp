// Static factorization cost model for the dense/sparse backend choice
// (DESIGN.md §13). The symbolic fill predictor replays the SparseSolver
// assembly (triplet merge in stamp order) and left-looking column LU —
// same column pre-order, same partial-pivot rule — on a caller-supplied
// numeric snapshot of the matrix, so the predicted factor nnz matches
// SparseSolver::stats().factor_nnz exactly for the same values.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "src/linalg/solver.hpp"

namespace ironic::linalg {

// One stamped contribution, in stamp-call order. Duplicates are summed
// during the pattern merge exactly as SparseSolver does.
struct MatrixEntry {
  int row = 0;
  int col = 0;
  double value = 0.0;
};

struct FactorPrediction {
  std::size_t n = 0;
  std::size_t pattern_nnz = 0;  // structural nonzeros of A after merge
  std::size_t factor_nnz = 0;   // nonzeros of L+U incl. fill
  double factor_flops = 0.0;    // multiply-add + divide count of one factorization
  double solve_flops = 0.0;     // one forward+back substitution
  bool singular = false;        // a pivot fell below tolerance
  std::size_t singular_column = 0;  // elimination position that failed (when singular)
};

// Replay the sparse factorization on `entries` and count its work.
// `pivot_tol` mirrors LinearSolverT::kDefaultPivotTol.
FactorPrediction predict_sparse_factor(
    std::size_t n, std::span<const MatrixEntry> entries,
    double pivot_tol = LinearSolverT<double>::kDefaultPivotTol);

// Abstract-work comparison between the two backends. Units are "dense
// inner-loop flops": the sparse side is scaled by a per-entry overhead
// factor (indirection, touched-list maintenance) plus a fixed base cost
// (pattern/CSC rebuild amortized over a run), both calibrated against
// the measured crossover on this tree's example netlists (the ~12-unknown
// rectifier plant stays dense, the 122-unknown tissue ladder goes sparse,
// consistent with the 4.3x sparse speedup measured in bench_engine_perf).
struct SolverCostModel {
  double dense_cost = 0.0;
  double sparse_cost = 0.0;
  SolverKind recommendation = SolverKind::kDense;
};

// Per-entry overhead of the sparse kernels relative to the dense loop.
constexpr double kSparseEntryCost = 8.0;
// Fixed per-factorization overhead of the sparse bookkeeping (pattern
// merge, CSC view, touched-list churn). Calibrated so the crossover
// lands near n ~ 22 on MNA-shaped patterns — below the historical
// kSparseAutoThreshold of 32, matching the measurement that every
// sub-32-unknown example engages the dense backend faster.
constexpr double kSparseBaseCost = 2000.0;

SolverCostModel choose_solver(const FactorPrediction& prediction);

}  // namespace ironic::linalg
