// Sparse MNA backend: CSR assembly with a call-sequence slot cache and a
// left-looking partial-pivot LU with symbolic caching (DESIGN.md §11).
//
// Assembly. Devices call add(r, c, v) in whatever order their stamps
// produce. The first assembly records that call sequence; subsequent
// assemblies replay it with a cursor, so the steady state is one compare
// plus one indexed accumulate per stamp — no hashing, no searches. When
// the order diverges (a MOSFET swapping source/drain roles between
// operating regions reorders its stamp calls), the matched prefix is
// kept, the rest falls back to a binary search per entry, and the
// sequence is re-recorded — a speed blip, never a correctness issue.
// Entries the pattern has never seen land in an overflow triplet list and
// are merged at factor() time (capacitors stamp nothing at DC, so a DC
// solve followed by a transient grows the pattern once).
//
// Factorization. Left-looking column LU with a dense accumulator, partial
// pivoting, and a static column pre-order by ascending column count (a
// cheap Markowitz flavor that keeps fill low on MNA matrices). Structure
// decisions are symbolic — an entry that is numerically zero this
// iteration still occupies its slot — so the elimination structure (pivot
// order, L/U patterns) is cached and later factorizations only redo the
// numbers along it. If a cached pivot degrades (falls below tolerance or
// loses too much ground to its column), the solver silently falls back to
// a fresh full factorization before reporting SingularMatrixError.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "src/linalg/solver.hpp"

namespace ironic::linalg {

template <typename T>
class SparseSolver final : public LinearSolverT<T> {
 public:
  explicit SparseSolver(std::size_t n);

  const char* name() const override { return "sparse"; }
  SolverKind kind() const override { return SolverKind::kSparse; }
  std::size_t size() const override { return n_; }

  void begin_assembly() override;
  void add(int row, int col, T value) override;
  using LinearSolverT<T>::factor;  // the argless default-tolerance overload
  void factor(double pivot_tol) override;
  void solve_in_place(std::span<T> b) override;
  double diagonal_ratio() const override;
  void invalidate_structure() override;
  const SolverStats& stats() const override { return stats_; }

  // Structural nonzeros of the cached pattern (test hook).
  std::size_t pattern_nnz() const { return cols_.size(); }

 private:
  static std::int64_t pack(int row, int col) {
    return (static_cast<std::int64_t>(row) << 32) |
           static_cast<std::int64_t>(static_cast<std::uint32_t>(col));
  }

  int find_slot(int row, int col) const;
  void finalize_assembly();
  void merge_pattern();
  void build_csc();
  void build_col_order();
  void full_factor(double pivot_tol);
  bool refactor_numeric(double pivot_tol);
  void clear_column_workspace();

  std::size_t n_ = 0;

  // --- assembled matrix (CSR; columns sorted within each row) -------------
  std::vector<int> row_ptr_;  // n_ + 1
  std::vector<int> cols_;     // nnz
  std::vector<T> values_;     // nnz, current assembly
  bool pattern_valid_ = false;

  // --- call-sequence slot cache -------------------------------------------
  std::vector<std::int64_t> seq_rc_;   // packed (row, col) per recorded call
  std::vector<std::int32_t> seq_slot_; // slot into values_ per recorded call
  bool seq_valid_ = false;
  // Per-assembly state.
  bool assembling_ = false;
  bool fast_ = false;       // cursor replay still aligned with seq_rc_
  bool recording_ = false;  // re-recording the sequence this assembly
  bool had_pattern_ = false;
  std::size_t cursor_ = 0;
  std::vector<std::int64_t> new_rc_;
  std::vector<std::int32_t> new_slot_;
  struct Triplet {
    int row;
    int col;
    T value;
  };
  std::vector<Triplet> extra_;  // entries outside the current pattern

  // --- CSC view of the pattern (column access for the factorization) -----
  std::vector<int> csc_ptr_, csc_rows_, csc_slots_;
  bool csc_valid_ = false;

  // --- cached factorization -----------------------------------------------
  struct LEntry {
    int row;  // original row id
    T value;
  };
  struct UEntry {
    int k;  // elimination step of the pivot this entry multiplies
    T value;
  };
  std::vector<std::vector<LEntry>> lcols_;
  std::vector<std::vector<UEntry>> ucols_;
  std::vector<int> pivot_row_;  // elimination step -> original row
  std::vector<int> row_pos_;    // original row -> elimination step
  std::vector<int> col_order_;  // elimination step -> original column
  std::vector<T> upiv_;         // U diagonal, elimination order
  bool symbolic_valid_ = false;
  bool factored_ = false;
  std::vector<T> last_factored_;  // values_ snapshot behind the factor skip

  // --- scratch -------------------------------------------------------------
  std::vector<T> work_;
  std::vector<unsigned char> mark_;
  std::vector<int> touched_;
  std::vector<T> fwd_;

  SolverStats stats_;
};

extern template class SparseSolver<double>;
extern template class SparseSolver<Complex>;

}  // namespace ironic::linalg
