#include "src/linalg/matrix.hpp"

#include <cmath>
#include <stdexcept>

namespace ironic::linalg {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

void Matrix::fill(double value) {
  for (auto& x : data_) x = value;
}

void Matrix::resize(std::size_t rows, std::size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.assign(rows * cols, 0.0);
}

Vector Matrix::multiply(std::span<const double> x) const {
  if (x.size() != cols_) throw std::invalid_argument("Matrix::multiply: size mismatch");
  Vector y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* a = row(r);
    double sum = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) sum += a[c] * x[c];
    y[r] = sum;
  }
  return y;
}

Matrix Matrix::multiply(const Matrix& other) const {
  if (cols_ != other.rows_) throw std::invalid_argument("Matrix::multiply: shape mismatch");
  Matrix out(rows_, other.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(r, k);
      if (a == 0.0) continue;
      const double* b = other.row(k);
      double* o = out.row(r);
      for (std::size_t c = 0; c < other.cols_; ++c) o[c] += a * b[c];
    }
  }
  return out;
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  return out;
}

double Matrix::max_abs() const {
  double best = 0.0;
  for (double x : data_) best = std::max(best, std::abs(x));
  return best;
}

void axpy(double a, std::span<const double> x, std::span<double> y) {
  if (x.size() != y.size()) throw std::invalid_argument("axpy: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += a * x[i];
}

double norm2(std::span<const double> x) {
  double sum = 0.0;
  for (double v : x) sum += v * v;
  return std::sqrt(sum);
}

double norm_inf(std::span<const double> x) {
  double best = 0.0;
  for (double v : x) best = std::max(best, std::abs(v));
  return best;
}

double dot(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) throw std::invalid_argument("dot: size mismatch");
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

}  // namespace ironic::linalg
