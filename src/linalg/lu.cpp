#include "src/linalg/lu.hpp"

#include <cmath>
#include <limits>
#include <string>

namespace ironic::linalg {

LuFactorization::LuFactorization(const Matrix& a, double pivot_tol) : lu_(a) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("LuFactorization: matrix must be square");
  }
  const std::size_t n = lu_.rows();
  perm_.resize(n);
  for (std::size_t i = 0; i < n; ++i) perm_[i] = i;

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting: pick the largest |entry| in column k at/below row k.
    std::size_t pivot_row = k;
    double pivot_mag = std::abs(lu_(k, k));
    for (std::size_t r = k + 1; r < n; ++r) {
      const double mag = std::abs(lu_(r, k));
      if (mag > pivot_mag) {
        pivot_mag = mag;
        pivot_row = r;
      }
    }
    // Negated comparison so a NaN pivot (poisoned stamp upstream) is
    // rejected here instead of silently propagating through the solve.
    if (!(pivot_mag >= pivot_tol)) {
      throw SingularMatrixError("LU pivot " + std::to_string(k) + " below tolerance (" +
                                std::to_string(pivot_mag) + ") — floating node or " +
                                "inconsistent circuit?");
    }
    if (pivot_row != k) {
      std::swap(perm_[k], perm_[pivot_row]);
      double* rk = lu_.row(k);
      double* rp = lu_.row(pivot_row);
      for (std::size_t c = 0; c < n; ++c) std::swap(rk[c], rp[c]);
    }
    const double inv_pivot = 1.0 / lu_(k, k);
    for (std::size_t r = k + 1; r < n; ++r) {
      const double factor = lu_(r, k) * inv_pivot;
      lu_(r, k) = factor;
      if (factor == 0.0) continue;
      double* rr = lu_.row(r);
      const double* rk = lu_.row(k);
      for (std::size_t c = k + 1; c < n; ++c) rr[c] -= factor * rk[c];
    }
  }
}

Vector LuFactorization::solve(std::span<const double> b) const {
  Vector x(b.begin(), b.end());
  solve_in_place(x);
  return x;
}

void LuFactorization::solve_in_place(std::span<double> b) const {
  const std::size_t n = lu_.rows();
  if (b.size() != n) throw std::invalid_argument("LuFactorization::solve: size mismatch");

  // Apply permutation: y = P b.
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) y[i] = b[perm_[i]];

  // Forward substitution (L has implicit unit diagonal).
  for (std::size_t r = 1; r < n; ++r) {
    const double* row = lu_.row(r);
    double sum = y[r];
    for (std::size_t c = 0; c < r; ++c) sum -= row[c] * y[c];
    y[r] = sum;
  }
  // Back substitution.
  for (std::size_t ri = n; ri-- > 0;) {
    const double* row = lu_.row(ri);
    double sum = y[ri];
    for (std::size_t c = ri + 1; c < n; ++c) sum -= row[c] * y[c];
    y[ri] = sum / row[ri];
  }
  for (std::size_t i = 0; i < n; ++i) b[i] = y[i];
}

double LuFactorization::diagonal_ratio() const {
  const std::size_t n = lu_.rows();
  double max_d = 0.0;
  double min_d = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < n; ++i) {
    const double d = std::abs(lu_(i, i));
    max_d = std::max(max_d, d);
    min_d = std::min(min_d, d);
  }
  return (min_d == 0.0) ? std::numeric_limits<double>::infinity() : max_d / min_d;
}

Vector solve(const Matrix& a, std::span<const double> b) {
  return LuFactorization(a).solve(b);
}

}  // namespace ironic::linalg
