// Dense row-major matrix.
//
// The MNA engines assemble through the pluggable solver layer
// (src/linalg/solver.hpp) and only use dense storage below the sparse
// auto-threshold, where it is both simpler and faster. This type remains
// the general-purpose dense matrix for everything else (filters, field
// solvers, tests).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace ironic::linalg {

using Vector = std::vector<double>;

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols);
  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double operator()(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  // Raw row access (contiguous) for the LU inner loops.
  double* row(std::size_t r) { return data_.data() + r * cols_; }
  const double* row(std::size_t r) const { return data_.data() + r * cols_; }

  void fill(double value);
  void resize(std::size_t rows, std::size_t cols);

  Vector multiply(std::span<const double> x) const;  // y = A x
  Matrix multiply(const Matrix& other) const;        // C = A B
  Matrix transposed() const;

  // Max-abs norm of the matrix entries.
  double max_abs() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

// y = a x + y
void axpy(double a, std::span<const double> x, std::span<double> y);
// Euclidean norm.
double norm2(std::span<const double> x);
// Max-abs norm.
double norm_inf(std::span<const double> x);
// Dot product.
double dot(std::span<const double> a, std::span<const double> b);

}  // namespace ironic::linalg
