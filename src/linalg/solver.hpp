// Pluggable linear-solver layer behind the MNA engines (DESIGN.md §11).
//
// The circuit engines assemble A x = rhs through this interface instead
// of a concrete matrix type: an assembly pass (`begin_assembly` + `add`)
// followed by `factor` + `solve_in_place` per Newton iteration. Two
// backends implement it:
//
//   dense   The historical dense partial-pivot LU (src/linalg/lu.cpp
//           semantics, bit-for-bit), plus a values-identical factor skip:
//           re-factoring the exact same matrix is a no-op.
//   sparse  CSR storage with a cached call-sequence slot map for O(1)
//           re-stamping, symbolic-pattern caching, and numeric-only
//           refactorization (src/linalg/sparse.hpp).
//
// `SolverKind::kAuto` picks dense below kSparseAutoThreshold unknowns and
// sparse at/above it — implant-scale netlists are overwhelmingly sparse,
// but tiny systems fit in cache and the dense kernel wins there.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string_view>

#include "src/linalg/complex_matrix.hpp"
#include "src/linalg/lu.hpp"

namespace ironic::linalg {

enum class SolverKind { kAuto, kDense, kSparse };

// "auto", "dense", "sparse".
const char* solver_kind_name(SolverKind kind);
// Parse the names above; returns false (out untouched) on anything else.
bool parse_solver_kind(std::string_view text, SolverKind& out);

// Counters a backend maintains across its lifetime. Callers that want
// per-run numbers snapshot stats() before and after and subtract.
struct SolverStats {
  std::uint64_t factorizations = 0;   // numeric factorizations performed
  std::uint64_t refactorizations = 0; // ... of which reused cached symbolic structure
  std::uint64_t factor_skips = 0;     // factor() calls with bit-identical values
  std::uint64_t solves = 0;           // triangular solve_in_place calls
  std::uint64_t pattern_builds = 0;   // sparsity-pattern (re)constructions
  std::uint64_t pattern_reuses = 0;   // assemblies that fit the cached pattern
  std::size_t nnz = 0;                // structural nonzeros of A (n*n for dense)
  std::size_t factor_nnz = 0;         // nonzeros of L+U incl. fill (n*n for dense)
};

// One linear system A x = b of fixed size n, reusable across solves.
// Assembly protocol per Newton iteration:
//
//   solver.begin_assembly();          // zero A, arm the slot cache
//   solver.add(r, c, v); ...          // accumulate stamps (any order)
//   solver.factor();                  // throws SingularMatrixError
//   solver.solve_in_place(b);         // b := A^-1 b
//
// add() ignores nothing: callers filter ground (negative) indices first,
// as the Device stamping helpers already do.
template <typename T>
class LinearSolverT {
 public:
  static constexpr double kDefaultPivotTol = 1e-30;

  virtual ~LinearSolverT() = default;

  virtual const char* name() const = 0;
  virtual SolverKind kind() const = 0;
  virtual std::size_t size() const = 0;

  virtual void begin_assembly() = 0;
  virtual void add(int row, int col, T value) = 0;

  // Factor the assembled matrix. Throws SingularMatrixError when a pivot
  // falls below `pivot_tol` (NaN-aware: poisoned stamps are rejected here
  // rather than propagated through the solve).
  virtual void factor(double pivot_tol) = 0;
  void factor() { factor(kDefaultPivotTol); }

  virtual void solve_in_place(std::span<T> b) = 0;

  // Conditioning estimate of the last factorization: max|U_ii|/min|U_ii|,
  // identical semantics across backends (see LuFactorization).
  virtual double diagonal_ratio() const = 0;

  // Drop every cached structure (pattern, slot sequence, symbolic
  // factorization). Correctness never requires this — unseen entries are
  // merged automatically — but it returns the solver to a cold state
  // after a topology change when the caller prefers a rebuilt pattern
  // over a grown one.
  virtual void invalidate_structure() = 0;

  virtual const SolverStats& stats() const = 0;
};

using LinearSolver = LinearSolverT<double>;
using ComplexLinearSolver = LinearSolverT<Complex>;

// kAuto resolution threshold: systems with n >= this many unknowns go to
// the sparse backend (MNA matrices at that size are a few % dense).
// This is the *fallback* for circuits nobody has analyzed: the static
// sparsity pass (src/spice/analysis) predicts the actual fill and flop
// count and installs a cost-model-driven hint via Circuit::set_solver_hint,
// which refines kAuto before this threshold is consulted (see
// src/linalg/costmodel.hpp).
constexpr std::size_t kSparseAutoThreshold = 32;

// Resolve kAuto by system size; kDense/kSparse pass through.
SolverKind resolve_solver_kind(SolverKind requested, std::size_t n);

// Factories. kAuto is resolved with resolve_solver_kind(n).
std::unique_ptr<LinearSolver> make_solver(SolverKind kind, std::size_t n);
std::unique_ptr<ComplexLinearSolver> make_complex_solver(SolverKind kind, std::size_t n);

}  // namespace ironic::linalg
