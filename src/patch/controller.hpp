// Patch controller: the microcontroller firmware state machine that runs
// the remote-powering sessions (paper Sec. III-A: the whole system —
// amplifier, modulator, demodulator — is driven over bluetooth from a
// laptop or smartphone).
#pragma once

#include <string>
#include <vector>

#include "src/patch/battery.hpp"
#include "src/patch/power_model.hpp"

namespace ironic::patch {

enum class PatchEvent {
  kBtConnect,
  kBtDisconnect,
  kStartPowering,
  kStopPowering,
  kSendDownlink,   // transmit a command frame (ASK)
  kReceiveUplink,  // read back sensor data (LSK)
  kBurstDone,      // downlink/uplink burst finished
};

struct LogEntry {
  double time = 0.0;
  PatchState state = PatchState::kIdle;
  double battery_soc = 1.0;
};

// Graceful-degradation ladder (mirrors the paper's battery tiers: ~10 h
// idle, ~3.5 h bluetooth-connected, ~1.5 h transmitting power). As the
// battery drains, the patch sheds its most expensive functions in order:
// bluetooth back-haul first, then measurement cadence, then everything.
enum class DegradationLevel {
  kNominal = 0,       // full service
  kShedBackhaul = 1,  // bluetooth dropped; data buffered on the patch
  kReducedRate = 2,   // measurement cadence cut, robust low-rate link
  kSafeIdle = 3,      // no sessions; MCU housekeeping only
};

const char* to_string(DegradationLevel level);

// State-of-charge thresholds that ENTER each level, with hysteresis on
// the way back up (a recharge must clear threshold + hysteresis before
// the patch resumes the shed function).
struct DegradationPolicy {
  double shed_backhaul_soc = 0.50;
  double reduced_rate_soc = 0.25;
  double safe_idle_soc = 0.10;
  double hysteresis = 0.05;

  DegradationLevel level_for(double soc, DegradationLevel current) const;
};

// Deterministic FSM with battery bookkeeping. Invalid transitions throw;
// time advances explicitly through `advance`.
class PatchController {
 public:
  PatchController(PatchPowerSpec power = {}, BatterySpec battery = {});

  PatchState state() const { return state_; }
  double time() const { return time_; }
  const LiIonBattery& battery() const { return battery_; }
  const std::vector<LogEntry>& log() const { return log_; }

  // Whether `event` is legal in the current state.
  bool can_handle(PatchEvent event) const;
  // Apply an event (throws std::logic_error when illegal).
  void handle(PatchEvent event);
  // Spend `dt` seconds in the current state, draining the battery.
  void advance(double dt);
  // True once the battery is empty; all powering stops.
  bool shut_down() const;

  // Seconds of runtime left at the present state's current draw.
  double remaining_runtime() const;

  // --- graceful degradation ------------------------------------------------
  // Off until a policy is installed (a plain controller behaves exactly
  // as before). Once set, the level is re-evaluated after every
  // advance(): entering kShedBackhaul force-drops the bluetooth link;
  // entering kSafeIdle aborts any powering burst back to idle.
  // can_handle() refuses to re-acquire shed functions while the level
  // forbids them.
  void set_degradation_policy(DegradationPolicy policy);
  const DegradationPolicy& degradation_policy() const { return degradation_policy_; }
  DegradationLevel degradation_level() const { return degradation_level_; }

  // Fault injection point: lose `fraction` of the battery's effective
  // capacity instantly (a brownout dip), then re-evaluate the ladder so
  // a deep dip sheds functions on the spot. Throws on fraction outside
  // [0, 1].
  void inject_brownout(double fraction);

 private:
  void push_log();
  void update_degradation();

  PatchPowerSpec power_;
  LiIonBattery battery_;
  PatchState state_ = PatchState::kIdle;
  bool bt_connected_ = false;
  double time_ = 0.0;
  DegradationPolicy degradation_policy_;
  bool degradation_enabled_ = false;
  DegradationLevel degradation_level_ = DegradationLevel::kNominal;
  std::vector<LogEntry> log_;
};

const char* to_string(PatchState state);

}  // namespace ironic::patch
