// Patch controller: the microcontroller firmware state machine that runs
// the remote-powering sessions (paper Sec. III-A: the whole system —
// amplifier, modulator, demodulator — is driven over bluetooth from a
// laptop or smartphone).
#pragma once

#include <string>
#include <vector>

#include "src/patch/battery.hpp"
#include "src/patch/power_model.hpp"

namespace ironic::patch {

enum class PatchEvent {
  kBtConnect,
  kBtDisconnect,
  kStartPowering,
  kStopPowering,
  kSendDownlink,   // transmit a command frame (ASK)
  kReceiveUplink,  // read back sensor data (LSK)
  kBurstDone,      // downlink/uplink burst finished
};

struct LogEntry {
  double time = 0.0;
  PatchState state = PatchState::kIdle;
  double battery_soc = 1.0;
};

// Deterministic FSM with battery bookkeeping. Invalid transitions throw;
// time advances explicitly through `advance`.
class PatchController {
 public:
  PatchController(PatchPowerSpec power = {}, BatterySpec battery = {});

  PatchState state() const { return state_; }
  double time() const { return time_; }
  const LiIonBattery& battery() const { return battery_; }
  const std::vector<LogEntry>& log() const { return log_; }

  // Whether `event` is legal in the current state.
  bool can_handle(PatchEvent event) const;
  // Apply an event (throws std::logic_error when illegal).
  void handle(PatchEvent event);
  // Spend `dt` seconds in the current state, draining the battery.
  void advance(double dt);
  // True once the battery is empty; all powering stops.
  bool shut_down() const;

  // Seconds of runtime left at the present state's current draw.
  double remaining_runtime() const;

 private:
  void push_log();

  PatchPowerSpec power_;
  LiIonBattery battery_;
  PatchState state_ = PatchState::kIdle;
  bool bt_connected_ = false;
  double time_ = 0.0;
  std::vector<LogEntry> log_;
};

const char* to_string(PatchState state);

}  // namespace ironic::patch
