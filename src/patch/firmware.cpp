#include "src/patch/firmware.hpp"

#include <stdexcept>

namespace ironic::patch {

namespace {

// Durations for the command phases (seconds).
constexpr double kChargeUp = 1.0;     // implant charge + settle (Fig. 11: << 1 ms;
                                      // margin for alignment in practice)
constexpr double kMeasureTime = 0.2;  // high-power measurement window
constexpr double kFrameDownlink = 64.0 / 100e3;
constexpr double kFrameUplink = 128.0 / 66.6e3;

}  // namespace

PatchFirmware::PatchFirmware(PatchController& controller, MeasureCallback measure)
    : controller_(controller), measure_(std::move(measure)) {
  if (!measure_) throw std::invalid_argument("PatchFirmware: null measure callback");
}

comms::Response PatchFirmware::handle(const comms::Request& request) {
  comms::Response response;
  response.sequence = request.sequence;
  if (controller_.shut_down()) {
    response.ok = false;
    return response;
  }
  switch (request.command) {
    case comms::Command::kPing:
      response.ok = true;
      return response;
    case comms::Command::kMeasure:
      return measure_command();
    case comms::Command::kReadStatus:
      return status_command();
    case comms::Command::kSetMode:
      // Mode changes ride a normal downlink frame.
      if (request.payload.size() != 1 || request.payload[0] > 2) {
        response.ok = false;
        return response;
      }
      response.ok = true;
      return response;
  }
  response.ok = false;
  return response;
}

comms::Response PatchFirmware::measure_command() {
  comms::Response response;
  // Power the implant, command it, wait out the measurement, read back.
  const bool was_powering = controller_.state() == PatchState::kPowering;
  if (!was_powering) {
    if (!controller_.can_handle(PatchEvent::kStartPowering)) {
      response.ok = false;
      return response;
    }
    controller_.handle(PatchEvent::kStartPowering);
    controller_.advance(kChargeUp);
    busy_time_ += kChargeUp;
  }
  controller_.handle(PatchEvent::kSendDownlink);
  controller_.advance(kFrameDownlink);
  controller_.handle(PatchEvent::kBurstDone);
  controller_.advance(kMeasureTime);
  const std::uint32_t code = measure_();
  controller_.handle(PatchEvent::kReceiveUplink);
  controller_.advance(kFrameUplink);
  controller_.handle(PatchEvent::kBurstDone);
  busy_time_ += kFrameDownlink + kMeasureTime + kFrameUplink;
  if (!was_powering) {
    controller_.handle(PatchEvent::kStopPowering);
  }
  response.ok = true;
  response.payload = {static_cast<std::uint8_t>((code >> 8) & 0x3F),
                      static_cast<std::uint8_t>(code & 0xFF)};
  return response;
}

comms::Response PatchFirmware::status_command() const {
  comms::Response response;
  response.ok = true;
  const auto soc_pct =
      static_cast<std::uint8_t>(controller_.battery().state_of_charge() * 100.0);
  response.payload = {soc_pct, static_cast<std::uint8_t>(controller_.state())};
  return response;
}

}  // namespace ironic::patch
