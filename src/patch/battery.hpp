// Li-ion battery model for the IronIC patch (paper Sec. I & III-B).
//
// The paper cites modern Li-ion properties — energy density up to
// 0.2 Wh/g and a nearly constant voltage until 75-80 % depth of
// discharge — and reports patch run times of 10 h idle, 3.5 h
// bluetooth-connected, and 1.5 h continuously powering. This model
// provides the voltage-vs-state-of-charge curve and coulomb counting
// those numbers are grounded in.
#pragma once

namespace ironic::patch {

struct BatterySpec {
  double capacity_mah = 240.0;   // patch-scale LiPo cell
  double nominal_voltage = 3.7;  // [V]
  double full_voltage = 4.2;     // [V]
  double knee_voltage = 3.6;     // voltage at the flat-region end [V]
  double cutoff_voltage = 3.0;   // system brown-out [V]
  double flat_region_end = 0.78; // depth-of-discharge where droop starts
  double mass_grams = 5.0;       // for the energy-density check
  // Cycle aging: remaining capacity fraction lost per equivalent full
  // cycle (0.04 % / cycle ~ 80 % health after 500 cycles).
  double fade_per_cycle = 4.4e-4;

  double capacity_coulombs() const { return capacity_mah * 3.6; }
  double energy_wh() const { return capacity_mah * 1e-3 * nominal_voltage; }
  double energy_density_wh_per_g() const { return energy_wh() / mass_grams; }
};

class LiIonBattery {
 public:
  explicit LiIonBattery(BatterySpec spec = {});

  const BatterySpec& spec() const { return spec_; }
  // Remaining charge fraction in [0, 1].
  double state_of_charge() const { return soc_; }
  double depth_of_discharge() const { return 1.0 - soc_; }
  // Terminal voltage at the present state of charge (open circuit).
  double voltage() const;
  // True when the voltage has fallen to the cutoff.
  bool depleted() const;

  // Draw `current` amps for `dt` seconds; returns the charge actually
  // delivered [C] (less than asked once the cell empties).
  double draw(double current, double dt);
  // Recharge to full (of the *present*, aged capacity).
  void recharge();

  // Run time at a constant current from the present state [s].
  double time_to_empty(double current) const;

  // --- aging ---------------------------------------------------------------
  // Present usable capacity [C] after cycle fade.
  double effective_capacity_coulombs() const;
  // Health fraction in (0, 1]: effective / nameplate capacity.
  double health() const;
  // Equivalent full cycles accumulated so far.
  double cycles() const { return cycles_; }

 private:
  BatterySpec spec_;
  double soc_ = 1.0;
  double cycles_ = 0.0;
};

}  // namespace ironic::patch
