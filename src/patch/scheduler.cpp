#include "src/patch/scheduler.hpp"

#include <stdexcept>

namespace ironic::patch {

double session_charge(const PatchPowerSpec& power, const SessionPlan& plan) {
  if (plan.downlink_rate <= 0.0 || plan.uplink_rate <= 0.0) {
    throw std::invalid_argument("session_charge: rates must be > 0");
  }
  double q = 0.0;
  q += state_current(power, PatchState::kConnected) * plan.connect_time;
  q += state_current(power, PatchState::kPowering) *
       (plan.charge_time + plan.measure_time);
  q += state_current(power, PatchState::kDownlink) *
       (plan.downlink_bits / plan.downlink_rate);
  q += state_current(power, PatchState::kUplink) * (plan.uplink_bits / plan.uplink_rate);
  return q;
}

int sessions_per_charge(const PatchPowerSpec& power, const BatterySpec& battery,
                        const SessionPlan& plan, double idle_between) {
  if (idle_between < 0.0) {
    throw std::invalid_argument("sessions_per_charge: idle time must be >= 0");
  }
  const double per_session = session_charge(power, plan) +
                             state_current(power, PatchState::kIdle) * idle_between;
  if (per_session <= 0.0) return 0;
  return static_cast<int>(battery.capacity_coulombs() / per_session);
}

double end_of_day_soc(const PatchPowerSpec& power, const BatterySpec& battery,
                      const SessionPlan& plan, int sessions_per_day,
                      double awake_hours) {
  if (sessions_per_day < 0 || awake_hours <= 0.0) {
    throw std::invalid_argument("end_of_day_soc: invalid schedule");
  }
  const double session_time = plan.duration() * sessions_per_day;
  const double idle_time = awake_hours * 3600.0 - session_time;
  if (idle_time < 0.0) return -1.0;  // sessions do not even fit in the day
  const double used = session_charge(power, plan) * sessions_per_day +
                      state_current(power, PatchState::kIdle) * idle_time;
  return 1.0 - used / battery.capacity_coulombs();
}

MissionSummary max_daily_sessions(const PatchPowerSpec& power,
                                  const BatterySpec& battery, const SessionPlan& plan,
                                  double awake_hours, double reserve_soc) {
  MissionSummary best;
  for (int n = 0;; ++n) {
    const double soc = end_of_day_soc(power, battery, plan, n, awake_hours);
    if (soc < reserve_soc) break;
    best.sessions_per_day = n;
    best.end_soc = soc;
    best.feasible = true;
  }
  return best;
}

}  // namespace ironic::patch
