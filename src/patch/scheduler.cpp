#include "src/patch/scheduler.hpp"

#include <algorithm>
#include <stdexcept>

namespace ironic::patch {

double session_charge(const PatchPowerSpec& power, const SessionPlan& plan) {
  if (plan.downlink_rate <= 0.0 || plan.uplink_rate <= 0.0) {
    throw std::invalid_argument("session_charge: rates must be > 0");
  }
  double q = 0.0;
  q += state_current(power, PatchState::kConnected) * plan.connect_time;
  q += state_current(power, PatchState::kPowering) *
       (plan.charge_time + plan.measure_time);
  q += state_current(power, PatchState::kDownlink) *
       (plan.downlink_bits / plan.downlink_rate);
  q += state_current(power, PatchState::kUplink) * (plan.uplink_bits / plan.uplink_rate);
  return q;
}

int sessions_per_charge(const PatchPowerSpec& power, const BatterySpec& battery,
                        const SessionPlan& plan, double idle_between) {
  if (idle_between < 0.0) {
    throw std::invalid_argument("sessions_per_charge: idle time must be >= 0");
  }
  const double per_session = session_charge(power, plan) +
                             state_current(power, PatchState::kIdle) * idle_between;
  if (per_session <= 0.0) return 0;
  return static_cast<int>(battery.capacity_coulombs() / per_session);
}

double end_of_day_soc(const PatchPowerSpec& power, const BatterySpec& battery,
                      const SessionPlan& plan, int sessions_per_day,
                      double awake_hours) {
  if (sessions_per_day < 0 || awake_hours <= 0.0) {
    throw std::invalid_argument("end_of_day_soc: invalid schedule");
  }
  const double session_time = plan.duration() * sessions_per_day;
  const double idle_time = awake_hours * 3600.0 - session_time;
  if (idle_time < 0.0) return -1.0;  // sessions do not even fit in the day
  const double used = session_charge(power, plan) * sessions_per_day +
                      state_current(power, PatchState::kIdle) * idle_time;
  return 1.0 - used / battery.capacity_coulombs();
}

MissionSummary max_daily_sessions(const PatchPowerSpec& power,
                                  const BatterySpec& battery, const SessionPlan& plan,
                                  double awake_hours, double reserve_soc) {
  MissionSummary best;
  for (int n = 0;; ++n) {
    const double soc = end_of_day_soc(power, battery, plan, n, awake_hours);
    if (soc < reserve_soc) break;
    best.sessions_per_day = n;
    best.end_soc = soc;
    best.feasible = true;
  }
  return best;
}

SessionPlan degraded_plan(const SessionPlan& base, DegradationLevel level) {
  SessionPlan plan = base;
  if (level >= DegradationLevel::kShedBackhaul) {
    plan.connect_time = 0.0;  // no bluetooth back-haul; buffer locally
  }
  if (level >= DegradationLevel::kReducedRate) {
    // Robust quarter-rate links: cheaper per bit to get right, longer on
    // air — the cadence stretch (rate_backoff) is what saves the charge.
    plan.downlink_rate = base.downlink_rate / 4.0;
    plan.uplink_rate = base.uplink_rate / 4.0;
  }
  return plan;
}

DegradedMissionSummary simulate_degrading_mission(const PatchPowerSpec& power,
                                                  const BatterySpec& battery,
                                                  const DegradedMissionOptions& options) {
  if (options.measurement_interval <= 0.0 || options.horizon <= 0.0 ||
      options.sample_interval <= 0.0 || options.rate_backoff < 1.0) {
    throw std::invalid_argument("simulate_degrading_mission: invalid options");
  }
  PatchController controller(power, battery);
  controller.set_degradation_policy(options.policy);
  DegradedMissionSummary summary;

  std::vector<BrownoutEvent> brownouts = options.brownouts;
  std::sort(brownouts.begin(), brownouts.end(),
            [](const BrownoutEvent& a, const BrownoutEvent& b) {
              return a.time < b.time;
            });
  std::size_t next_brownout = 0;

  const auto sample = [&] {
    summary.timeline.push_back({controller.time(),
                                controller.battery().state_of_charge(),
                                controller.degradation_level()});
  };
  const auto apply_brownouts = [&] {
    while (next_brownout < brownouts.size() &&
           brownouts[next_brownout].time <= controller.time() &&
           !controller.shut_down()) {
      controller.inject_brownout(brownouts[next_brownout].fraction);
      ++summary.brownouts_applied;
      ++next_brownout;
    }
  };
  // Spend `dt` seconds in the current state, attributing the time to the
  // degradation level in effect as it passes.
  const auto spend = [&](double dt) {
    double remaining = dt;
    while (remaining > 0.0 && !controller.shut_down()) {
      const double chunk = std::min(remaining, options.sample_interval);
      summary.time_in_level[static_cast<int>(controller.degradation_level())] += chunk;
      controller.advance(chunk);
      apply_brownouts();
      remaining -= chunk;
      sample();
    }
    return remaining <= 0.0;
  };

  apply_brownouts();
  sample();
  double next_measurement = 0.0;
  while (controller.time() < options.horizon && !controller.shut_down()) {
    if (controller.time() + 1e-9 >= next_measurement) {
      const DegradationLevel level = controller.degradation_level();
      const double cadence =
          options.measurement_interval *
          (level >= DegradationLevel::kReducedRate ? options.rate_backoff : 1.0);
      if (level >= DegradationLevel::kSafeIdle) {
        ++summary.measurements_shed;
        next_measurement = controller.time() + cadence;
      } else {
        const SessionPlan plan = degraded_plan(options.plan, level);
        // Route the session through the FSM; a mid-session shed (level
        // escalation inside advance) aborts the remainder.
        if (plan.connect_time > 0.0 && controller.can_handle(PatchEvent::kBtConnect)) {
          controller.handle(PatchEvent::kBtConnect);
          spend(plan.connect_time);
        }
        bool completed = false;
        if (controller.can_handle(PatchEvent::kStartPowering)) {
          controller.handle(PatchEvent::kStartPowering);
          spend(plan.charge_time + plan.measure_time);
          if (controller.can_handle(PatchEvent::kSendDownlink)) {
            controller.handle(PatchEvent::kSendDownlink);
            spend(plan.downlink_bits / plan.downlink_rate);
            if (controller.can_handle(PatchEvent::kBurstDone)) {
              controller.handle(PatchEvent::kBurstDone);
              if (controller.can_handle(PatchEvent::kReceiveUplink)) {
                controller.handle(PatchEvent::kReceiveUplink);
                spend(plan.uplink_bits / plan.uplink_rate);
                if (controller.can_handle(PatchEvent::kBurstDone)) {
                  controller.handle(PatchEvent::kBurstDone);
                  completed = true;
                }
              }
            }
          }
          if (controller.can_handle(PatchEvent::kStopPowering)) {
            controller.handle(PatchEvent::kStopPowering);
          }
        }
        if (controller.can_handle(PatchEvent::kBtDisconnect)) {
          controller.handle(PatchEvent::kBtDisconnect);
        }
        if (completed) {
          ++summary.measurements;
        } else {
          ++summary.measurements_shed;
        }
        next_measurement = controller.time() + cadence;
      }
    }
    const double idle_until = std::min(next_measurement, options.horizon);
    if (idle_until > controller.time()) {
      spend(idle_until - controller.time());
    }
  }
  if (controller.shut_down()) summary.shutdown_time = controller.time();
  return summary;
}

}  // namespace ironic::patch
