#include "src/patch/controller.hpp"

#include <stdexcept>
#include <string>

#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"

namespace ironic::patch {

const char* to_string(PatchState state) {
  switch (state) {
    case PatchState::kIdle: return "idle";
    case PatchState::kConnected: return "connected";
    case PatchState::kPowering: return "powering";
    case PatchState::kDownlink: return "downlink";
    case PatchState::kUplink: return "uplink";
  }
  return "?";
}

const char* to_string(DegradationLevel level) {
  switch (level) {
    case DegradationLevel::kNominal: return "nominal";
    case DegradationLevel::kShedBackhaul: return "shed-backhaul";
    case DegradationLevel::kReducedRate: return "reduced-rate";
    case DegradationLevel::kSafeIdle: return "safe-idle";
  }
  return "?";
}

DegradationLevel DegradationPolicy::level_for(double soc,
                                              DegradationLevel current) const {
  const auto threshold = [this](DegradationLevel level) {
    switch (level) {
      case DegradationLevel::kShedBackhaul: return shed_backhaul_soc;
      case DegradationLevel::kReducedRate: return reduced_rate_soc;
      case DegradationLevel::kSafeIdle: return safe_idle_soc;
      case DegradationLevel::kNominal: break;
    }
    return 1.0;
  };
  // Escalate to the deepest level whose threshold the SoC has crossed.
  DegradationLevel target = DegradationLevel::kNominal;
  for (const auto level : {DegradationLevel::kShedBackhaul,
                           DegradationLevel::kReducedRate,
                           DegradationLevel::kSafeIdle}) {
    if (soc <= threshold(level)) target = level;
  }
  if (target >= current) return target;
  // De-escalate one rung at a time, each requiring threshold + hysteresis
  // headroom, so a recharge does not flap the shed functions.
  DegradationLevel level = current;
  while (level > target &&
         soc >= threshold(level) + hysteresis) {
    level = static_cast<DegradationLevel>(static_cast<int>(level) - 1);
  }
  return level;
}

PatchController::PatchController(PatchPowerSpec power, BatterySpec battery)
    : power_(power), battery_(battery) {
  push_log();
}

void PatchController::set_degradation_policy(DegradationPolicy policy) {
  degradation_policy_ = policy;
  degradation_enabled_ = true;
  update_degradation();
}

void PatchController::update_degradation() {
  if (!degradation_enabled_) return;
  const DegradationLevel next =
      degradation_policy_.level_for(battery_.state_of_charge(), degradation_level_);
  if (next == degradation_level_) return;
  const bool escalating = next > degradation_level_;
  degradation_level_ = next;
  if (escalating) {
    // Shed in order: back-haul first, then any active powering burst.
    if (next >= DegradationLevel::kShedBackhaul && bt_connected_) {
      bt_connected_ = false;
      if (state_ == PatchState::kConnected) state_ = PatchState::kIdle;
    }
    if (next >= DegradationLevel::kSafeIdle && state_ != PatchState::kIdle) {
      state_ = PatchState::kIdle;
    }
    push_log();
  }
  if constexpr (obs::kEnabled) {
    auto& registry = obs::MetricsRegistry::instance();
    registry.gauge("patch.degradation_level").set(static_cast<double>(next));
    if (escalating) registry.counter("patch.degradation.sheds").add();
    auto& recorder = obs::TraceRecorder::instance();
    if (recorder.enabled()) {
      recorder.sim_instant("patch.degradation", "patch", time_,
                           {{"level", to_string(next)}});
    }
  }
}

void PatchController::inject_brownout(double fraction) {
  if (fraction < 0.0 || fraction > 1.0) {
    throw std::invalid_argument(
        "PatchController::inject_brownout: fraction must be in [0, 1]");
  }
  battery_.draw(fraction * battery_.effective_capacity_coulombs(), 1.0);
  if (shut_down() && state_ != PatchState::kIdle) {
    state_ = PatchState::kIdle;
    bt_connected_ = false;
  }
  update_degradation();
  push_log();
  if constexpr (obs::kEnabled) {
    obs::MetricsRegistry::instance().counter("patch.brownouts").add();
  }
}

bool PatchController::can_handle(PatchEvent event) const {
  if (shut_down()) return false;
  // Degradation gating: a shed function cannot be re-acquired while the
  // level forbids it.
  if (degradation_level_ >= DegradationLevel::kShedBackhaul &&
      event == PatchEvent::kBtConnect) {
    return false;
  }
  if (degradation_level_ >= DegradationLevel::kSafeIdle &&
      (event == PatchEvent::kStartPowering || event == PatchEvent::kSendDownlink ||
       event == PatchEvent::kReceiveUplink)) {
    return false;
  }
  switch (event) {
    case PatchEvent::kBtConnect:
      return !bt_connected_;
    case PatchEvent::kBtDisconnect:
      return bt_connected_;
    case PatchEvent::kStartPowering:
      return state_ == PatchState::kIdle || state_ == PatchState::kConnected;
    case PatchEvent::kStopPowering:
      return state_ == PatchState::kPowering;
    case PatchEvent::kSendDownlink:
    case PatchEvent::kReceiveUplink:
      return state_ == PatchState::kPowering;
    case PatchEvent::kBurstDone:
      return state_ == PatchState::kDownlink || state_ == PatchState::kUplink;
  }
  return false;
}

void PatchController::handle(PatchEvent event) {
  if (!can_handle(event)) {
    throw std::logic_error(std::string("PatchController: illegal event in state ") +
                           to_string(state_));
  }
  switch (event) {
    case PatchEvent::kBtConnect:
      bt_connected_ = true;
      if (state_ == PatchState::kIdle) state_ = PatchState::kConnected;
      break;
    case PatchEvent::kBtDisconnect:
      bt_connected_ = false;
      if (state_ == PatchState::kConnected) state_ = PatchState::kIdle;
      break;
    case PatchEvent::kStartPowering:
      state_ = PatchState::kPowering;
      break;
    case PatchEvent::kStopPowering:
      state_ = bt_connected_ ? PatchState::kConnected : PatchState::kIdle;
      break;
    case PatchEvent::kSendDownlink:
      state_ = PatchState::kDownlink;
      break;
    case PatchEvent::kReceiveUplink:
      state_ = PatchState::kUplink;
      break;
    case PatchEvent::kBurstDone:
      state_ = PatchState::kPowering;
      break;
  }
  push_log();
  if constexpr (obs::kEnabled) {
    obs::MetricsRegistry::instance().counter("patch.controller.events").add();
    auto& recorder = obs::TraceRecorder::instance();
    if (recorder.enabled()) {
      recorder.sim_instant("patch.event", "patch", time_,
                           {{"state", to_string(state_)}});
    }
  }
}

void PatchController::advance(double dt) {
  if (dt < 0.0) throw std::invalid_argument("PatchController::advance: dt must be >= 0");
  const double current = state_current(power_, state_);
  battery_.draw(current, dt);
  time_ += dt;
  if (shut_down() && state_ != PatchState::kIdle) {
    state_ = PatchState::kIdle;
    bt_connected_ = false;
  }
  update_degradation();
  push_log();

  // Battery-draw sampling for the scheduler/mission telemetry.
  if constexpr (obs::kEnabled) {
    auto& registry = obs::MetricsRegistry::instance();
    registry.counter("patch.battery.draw_samples").add();
    registry.gauge("patch.battery.soc").set(battery_.state_of_charge());
    registry.gauge("patch.battery.draw_a").set(current);
    auto& recorder = obs::TraceRecorder::instance();
    if (recorder.enabled()) {
      recorder.counter_event("patch.battery.soc", battery_.state_of_charge());
      recorder.sim_span(to_string(state_), "patch", time_ - dt, time_,
                        {{"draw_a", std::to_string(current)},
                         {"soc", std::to_string(battery_.state_of_charge())}});
    }
  }
}

bool PatchController::shut_down() const { return battery_.depleted(); }

double PatchController::remaining_runtime() const {
  return battery_.time_to_empty(state_current(power_, state_));
}

void PatchController::push_log() {
  log_.push_back({time_, state_, battery_.state_of_charge()});
}

}  // namespace ironic::patch
