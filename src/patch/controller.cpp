#include "src/patch/controller.hpp"

#include <stdexcept>
#include <string>

#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"

namespace ironic::patch {

const char* to_string(PatchState state) {
  switch (state) {
    case PatchState::kIdle: return "idle";
    case PatchState::kConnected: return "connected";
    case PatchState::kPowering: return "powering";
    case PatchState::kDownlink: return "downlink";
    case PatchState::kUplink: return "uplink";
  }
  return "?";
}

PatchController::PatchController(PatchPowerSpec power, BatterySpec battery)
    : power_(power), battery_(battery) {
  push_log();
}

bool PatchController::can_handle(PatchEvent event) const {
  if (shut_down()) return false;
  switch (event) {
    case PatchEvent::kBtConnect:
      return !bt_connected_;
    case PatchEvent::kBtDisconnect:
      return bt_connected_;
    case PatchEvent::kStartPowering:
      return state_ == PatchState::kIdle || state_ == PatchState::kConnected;
    case PatchEvent::kStopPowering:
      return state_ == PatchState::kPowering;
    case PatchEvent::kSendDownlink:
    case PatchEvent::kReceiveUplink:
      return state_ == PatchState::kPowering;
    case PatchEvent::kBurstDone:
      return state_ == PatchState::kDownlink || state_ == PatchState::kUplink;
  }
  return false;
}

void PatchController::handle(PatchEvent event) {
  if (!can_handle(event)) {
    throw std::logic_error(std::string("PatchController: illegal event in state ") +
                           to_string(state_));
  }
  switch (event) {
    case PatchEvent::kBtConnect:
      bt_connected_ = true;
      if (state_ == PatchState::kIdle) state_ = PatchState::kConnected;
      break;
    case PatchEvent::kBtDisconnect:
      bt_connected_ = false;
      if (state_ == PatchState::kConnected) state_ = PatchState::kIdle;
      break;
    case PatchEvent::kStartPowering:
      state_ = PatchState::kPowering;
      break;
    case PatchEvent::kStopPowering:
      state_ = bt_connected_ ? PatchState::kConnected : PatchState::kIdle;
      break;
    case PatchEvent::kSendDownlink:
      state_ = PatchState::kDownlink;
      break;
    case PatchEvent::kReceiveUplink:
      state_ = PatchState::kUplink;
      break;
    case PatchEvent::kBurstDone:
      state_ = PatchState::kPowering;
      break;
  }
  push_log();
  if constexpr (obs::kEnabled) {
    obs::MetricsRegistry::instance().counter("patch.controller.events").add();
    auto& recorder = obs::TraceRecorder::instance();
    if (recorder.enabled()) {
      recorder.sim_instant("patch.event", "patch", time_,
                           {{"state", to_string(state_)}});
    }
  }
}

void PatchController::advance(double dt) {
  if (dt < 0.0) throw std::invalid_argument("PatchController::advance: dt must be >= 0");
  const double current = state_current(power_, state_);
  battery_.draw(current, dt);
  time_ += dt;
  if (shut_down() && state_ != PatchState::kIdle) {
    state_ = PatchState::kIdle;
    bt_connected_ = false;
  }
  push_log();

  // Battery-draw sampling for the scheduler/mission telemetry.
  if constexpr (obs::kEnabled) {
    auto& registry = obs::MetricsRegistry::instance();
    registry.counter("patch.battery.draw_samples").add();
    registry.gauge("patch.battery.soc").set(battery_.state_of_charge());
    registry.gauge("patch.battery.draw_a").set(current);
    auto& recorder = obs::TraceRecorder::instance();
    if (recorder.enabled()) {
      recorder.counter_event("patch.battery.soc", battery_.state_of_charge());
      recorder.sim_span(to_string(state_), "patch", time_ - dt, time_,
                        {{"draw_a", std::to_string(current)},
                         {"soc", std::to_string(battery_.state_of_charge())}});
    }
  }
}

bool PatchController::shut_down() const { return battery_.depleted(); }

double PatchController::remaining_runtime() const {
  return battery_.time_to_empty(state_current(power_, state_));
}

void PatchController::push_log() {
  log_.push_back({time_, state_, battery_.state_of_charge()});
}

}  // namespace ironic::patch
