// Component-level power ledger of the IronIC patch.
//
// The patch comprises the MCU, the bluetooth module, the class-E PA and
// its drive chain (paper Fig. 6). The component currents below are
// calibrated so a 240 mAh cell reproduces the paper's three measured
// run times: ~10 h idle (BT disconnected, PA off), ~3.5 h connected to a
// remote device, and ~1.5 h continuously transmitting power.
#pragma once

namespace ironic::patch {

enum class PatchState {
  kIdle,        // MCU housekeeping, BT disconnected, PA off
  kConnected,   // BT link up with laptop/smartphone
  kPowering,    // PA transmitting power (BT disconnected)
  kDownlink,    // powering + ASK modulating
  kUplink,      // powering + LSK threshold detection on R9
};

struct PatchPowerSpec {
  double mcu_active = 8e-3;        // [A]
  double mcu_sleep = 0.5e-3;
  double bt_listening = 15e-3;     // page/inquiry scanning while idle
  double bt_connected = 60e-3;     // active bluetooth link (2012-era module)
  double pa_transmitting = 135e-3; // class-E + driver chain at full power
  double adc_sense = 2e-3;         // R9 sense digitization during uplink
};

// Battery current drawn in a state [A].
double state_current(const PatchPowerSpec& spec, PatchState state);

// Run time of a battery with `capacity_mah` in a constant state [s].
double state_run_time(const PatchPowerSpec& spec, PatchState state,
                      double capacity_mah);

// Average current of a duty-cycled mission profile: fraction of time in
// each state (fractions must sum to ~1).
struct DutyProfile {
  double idle = 1.0;
  double connected = 0.0;
  double powering = 0.0;
  double downlink = 0.0;
  double uplink = 0.0;
};

double average_current(const PatchPowerSpec& spec, const DutyProfile& profile);

}  // namespace ironic::patch
