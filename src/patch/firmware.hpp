// Patch firmware: binds the transaction protocol to the controller FSM
// and the implant's measurement chain — the code path behind the paper's
// "the whole system ... can be driven by a remote device, such as a
// laptop or a smartphone".
#pragma once

#include <functional>

#include "src/comms/protocol.hpp"
#include "src/patch/controller.hpp"

namespace ironic::patch {

// What the implant does when asked to measure: returns the 14-bit code.
using MeasureCallback = std::function<std::uint32_t()>;

class PatchFirmware {
 public:
  PatchFirmware(PatchController& controller, MeasureCallback measure);

  // Serve one command arriving over bluetooth. Runs the controller
  // through the needed powering/communication states, charging the
  // battery ledger with realistic durations.
  comms::Response handle(const comms::Request& request);

  // Wall-clock spent servicing commands so far [s].
  double busy_time() const { return busy_time_; }

 private:
  comms::Response measure_command();
  comms::Response status_command() const;

  PatchController& controller_;
  MeasureCallback measure_;
  double busy_time_ = 0.0;
};

}  // namespace ironic::patch
