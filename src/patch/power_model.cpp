#include "src/patch/power_model.hpp"

#include <cmath>
#include <stdexcept>

namespace ironic::patch {

double state_current(const PatchPowerSpec& spec, PatchState state) {
  switch (state) {
    case PatchState::kIdle:
      return spec.mcu_active + spec.bt_listening;
    case PatchState::kConnected:
      return spec.mcu_active + spec.bt_connected;
    case PatchState::kPowering:
      return spec.mcu_active + spec.bt_listening + spec.pa_transmitting;
    case PatchState::kDownlink:
      return spec.mcu_active + spec.bt_listening + spec.pa_transmitting;
    case PatchState::kUplink:
      return spec.mcu_active + spec.bt_listening + spec.pa_transmitting +
             spec.adc_sense;
  }
  return 0.0;
}

double state_run_time(const PatchPowerSpec& spec, PatchState state,
                      double capacity_mah) {
  if (capacity_mah <= 0.0) {
    throw std::invalid_argument("state_run_time: capacity must be > 0");
  }
  return capacity_mah * 3.6 / state_current(spec, state);
}

double average_current(const PatchPowerSpec& spec, const DutyProfile& profile) {
  const double total = profile.idle + profile.connected + profile.powering +
                       profile.downlink + profile.uplink;
  if (total <= 0.0 || std::abs(total - 1.0) > 1e-6) {
    throw std::invalid_argument("average_current: fractions must sum to 1");
  }
  return profile.idle * state_current(spec, PatchState::kIdle) +
         profile.connected * state_current(spec, PatchState::kConnected) +
         profile.powering * state_current(spec, PatchState::kPowering) +
         profile.downlink * state_current(spec, PatchState::kDownlink) +
         profile.uplink * state_current(spec, PatchState::kUplink);
}

}  // namespace ironic::patch
