// Mission planning for the patch: how many measurement sessions fit in a
// battery charge, and what daily routine keeps a continuous-monitoring
// patient covered (the paper's intro scenarios: diabetic glycemia checks
// and athlete lactate tracking).
#pragma once

#include <vector>

#include "src/patch/battery.hpp"
#include "src/patch/controller.hpp"
#include "src/patch/power_model.hpp"

namespace ironic::patch {

// One telemetry session: power the implant, command a measurement, read
// the data back.
struct SessionPlan {
  double connect_time = 10.0;    // bluetooth setup [s]
  double charge_time = 2.0;      // implant charge-up + settle [s]
  double measure_time = 5.0;     // sensor in high-power mode (patch powering)
  double downlink_bits = 64.0;   // command frame
  double uplink_bits = 128.0;    // data frames
  double downlink_rate = 100e3;  // [bit/s]
  double uplink_rate = 66.6e3;   // [bit/s]

  double duration() const {
    return connect_time + charge_time + measure_time +
           downlink_bits / downlink_rate + uplink_bits / uplink_rate;
  }
};

// Charge consumed by one session [C].
double session_charge(const PatchPowerSpec& power, const SessionPlan& plan);

// Sessions a full battery supports, with `idle_between` seconds of idle
// drain between consecutive sessions.
int sessions_per_charge(const PatchPowerSpec& power, const BatterySpec& battery,
                        const SessionPlan& plan, double idle_between);

// Daily schedule feasibility: `sessions_per_day` sessions spread over
// `awake_hours`, patch recharged overnight. Returns the end-of-day state
// of charge (negative if the battery cannot finish the day).
double end_of_day_soc(const PatchPowerSpec& power, const BatterySpec& battery,
                      const SessionPlan& plan, int sessions_per_day,
                      double awake_hours);

struct MissionSummary {
  int sessions_per_day = 0;
  double end_soc = 0.0;
  bool feasible = false;
};

// Largest number of evenly spaced daily sessions that still ends the day
// above `reserve_soc`.
MissionSummary max_daily_sessions(const PatchPowerSpec& power,
                                  const BatterySpec& battery, const SessionPlan& plan,
                                  double awake_hours, double reserve_soc = 0.2);

// --- graceful degradation ---------------------------------------------------

// The session plan actually run at a degradation level: kShedBackhaul
// drops the bluetooth setup (data buffered on the patch), kReducedRate
// additionally falls back to quarter-rate robust links, kSafeIdle runs
// no sessions at all (callers must not schedule one).
SessionPlan degraded_plan(const SessionPlan& base, DegradationLevel level);

// An injected battery brownout: at `time` the cell instantly loses
// `fraction` of its effective capacity (see
// PatchController::inject_brownout).
struct BrownoutEvent {
  double time = 0.0;
  double fraction = 0.0;
};

struct DegradedMissionOptions {
  SessionPlan plan;
  DegradationPolicy policy;
  double measurement_interval = 300.0;  // nominal cadence [s]
  double rate_backoff = 4.0;            // cadence stretch at kReducedRate
  double horizon = 12.0 * 3600.0;       // [s]
  double sample_interval = 60.0;        // telemetry granularity [s]
  // Brownouts to inject, applied in time order as the mission passes
  // their timestamps (fault-campaign hook; empty = none).
  std::vector<BrownoutEvent> brownouts;
};

struct DegradationSample {
  double time = 0.0;
  double soc = 1.0;
  DegradationLevel level = DegradationLevel::kNominal;
};

struct DegradedMissionSummary {
  int measurements = 0;                // sessions completed
  int measurements_shed = 0;           // cadence slots skipped by the ladder
  int brownouts_applied = 0;           // injected BrownoutEvents that fired
  double time_in_level[4] = {0, 0, 0, 0};
  double shutdown_time = -1.0;         // battery empty; -1 = survived horizon
  std::vector<DegradationSample> timeline;
};

// Run the mission through a PatchController with the degradation policy
// installed: measurements fire on the (level-stretched) cadence, each
// session's events route through the FSM, and the ladder sheds bluetooth
// -> cadence -> everything as the battery drains. Deterministic — no
// randomness anywhere.
DegradedMissionSummary simulate_degrading_mission(const PatchPowerSpec& power,
                                                  const BatterySpec& battery,
                                                  const DegradedMissionOptions& options);

}  // namespace ironic::patch
