#include "src/patch/battery.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ironic::patch {

LiIonBattery::LiIonBattery(BatterySpec spec) : spec_(spec) {
  if (spec_.capacity_mah <= 0.0 || spec_.nominal_voltage <= 0.0 ||
      spec_.flat_region_end <= 0.0 || spec_.flat_region_end >= 1.0) {
    throw std::invalid_argument("LiIonBattery: invalid spec");
  }
}

double LiIonBattery::voltage() const {
  const double dod = depth_of_discharge();
  if (dod <= spec_.flat_region_end) {
    // Nearly constant voltage region: linear full -> knee.
    const double t = dod / spec_.flat_region_end;
    return spec_.full_voltage + (spec_.knee_voltage - spec_.full_voltage) * t;
  }
  // Droop region: knee -> cutoff as the cell empties.
  const double t = (dod - spec_.flat_region_end) / (1.0 - spec_.flat_region_end);
  return spec_.knee_voltage + (spec_.cutoff_voltage - spec_.knee_voltage) * t;
}

bool LiIonBattery::depleted() const { return soc_ <= 1e-9; }

double LiIonBattery::draw(double current, double dt) {
  if (current < 0.0 || dt < 0.0) {
    throw std::invalid_argument("LiIonBattery::draw: current and dt must be >= 0");
  }
  const double capacity = effective_capacity_coulombs();
  const double requested = current * dt;
  const double available = soc_ * capacity;
  const double delivered = std::min(requested, available);
  soc_ = std::max(0.0, soc_ - delivered / capacity);
  // Throughput-based cycle counting: one equivalent full cycle per
  // nameplate capacity of charge moved.
  cycles_ += delivered / spec_.capacity_coulombs();
  return delivered;
}

void LiIonBattery::recharge() { soc_ = 1.0; }

double LiIonBattery::time_to_empty(double current) const {
  if (current <= 0.0) {
    throw std::invalid_argument("LiIonBattery::time_to_empty: current must be > 0");
  }
  return soc_ * effective_capacity_coulombs() / current;
}

double LiIonBattery::effective_capacity_coulombs() const {
  return spec_.capacity_coulombs() * health();
}

double LiIonBattery::health() const {
  return std::max(0.05, 1.0 - spec_.fade_per_cycle * cycles_);
}

}  // namespace ironic::patch
