#include "src/link/magnetoelectric.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

namespace ironic::link {

namespace {

// Resonant-detector processing gain of the backscatter receiver: the
// synchronous chip integrator recovers this much snr over the raw
// energy-per-bit budget. Tuned so the nominal operating point (snr 8
// from the campaign's sensitivity convention) leaves a ~2e-4 chip error
// floor — healthy, but with room for faults to matter.
constexpr double kDetectorGain = 16.0;

double me_tissue(const LinkCondition& condition) {
  return condition.tissue_thickness.has_value() ? *condition.tissue_thickness
                                                : 0.0;
}

}  // namespace

MagnetoelectricPwm::MagnetoelectricPwm(magnetics::MeTransducerSpec spec)
    : transducer_(spec) {}

LinkCondition MagnetoelectricPwm::nominal_condition() const {
  LinkCondition condition;
  condition.distance = transducer_.spec().depth_nominal_m;
  condition.lateral_offset = 0.0;
  return condition;
}

double MagnetoelectricPwm::nominal_power() const {
  return transducer_.spec().p_nominal_w;
}

double MagnetoelectricPwm::power_delivered(const LinkCondition& condition) {
  return transducer_.power_at(condition.distance, condition.lateral_offset,
                              me_tissue(condition));
}

double MagnetoelectricPwm::efficiency(const LinkCondition& condition) {
  return transducer_.efficiency_at(condition.distance,
                                   condition.lateral_offset,
                                   me_tissue(condition));
}

double MagnetoelectricPwm::bit_error_rate(double power, double sensitivity,
                                          double rate) const {
  // Non-coherent OOK chip detection: the per-bit snr budget is spread
  // over chips_per_bit PWM chips, recovered in part by the resonant
  // detector gain; chip error = 0.5 exp(-snr_chip / 2).
  const double snr_bit = std::max(0.0, power / sensitivity) *
                         (kMagnetoelectricNominal.rate_bps / rate);
  const double snr_chip =
      snr_bit * kDetectorGain / static_cast<double>(codec_.chips_per_bit);
  return 0.5 * std::exp(-0.5 * snr_chip);
}

double MagnetoelectricPwm::drive_amplitude(double power) const {
  // No closed-loop TX boost on the wearable field coil: the rectified
  // laminate output simply tracks the field, floored where the
  // cold-start charge pump gives up.
  const double compensation = std::clamp(
      std::sqrt(std::max(0.0, power) / transducer_.spec().p_nominal_w), 0.5,
      1.0);
  return kMagnetoelectricNominal.drive_v * compensation;
}

comms::Channel MagnetoelectricPwm::wrap_uplink(comms::Channel inner) const {
  return [codec = codec_, inner = std::move(inner)](const comms::Bits& bits) {
    return codec.decode(inner(codec.encode(bits)));
  };
}

}  // namespace ironic::link
