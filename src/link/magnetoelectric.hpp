// Backend #2: magnetoelectric power transfer with PWM backscatter
// uplink (arXiv 2412.02499), behind the same LinkPhy interface as the
// paper's inductive stack.
//
// Fault-kind mapping (the FaultInjector speaks geometry, each backend
// maps it onto its own physics):
//   kCouplingStep  -> implant depth step (the TX coil's near-field
//                     dipole falloff, cubic in depth)
//   kMisalignment  -> field-lobe misalignment (Gaussian lateral factor)
//   kTissueDrift   -> slab attenuation — percent-level at the ~MHz
//                     acoustic resonance, the ME robustness story
//   kOvervoltage / kLdoDropout / comms kinds -> unchanged semantics
//
// Sensitivities differ from the inductive backend on purpose: depth
// steps hurt more (cubic falloff from a 20 mm operating point), tissue
// barely registers, and the downlink runs 25x slower (the field
// carrier is the laminate's acoustic resonance, not 5 MHz).
#pragma once

#include "src/comms/pwm.hpp"
#include "src/link/phy.hpp"
#include "src/magnetics/me_transducer.hpp"

namespace ironic::link {

// rate: OOK field keying at the ~1 MHz resonance supports ~4 kbit/s of
// robust downlink; cadence relaxes to 0.5 s (the ME sensor duty-cycles
// harder on its smaller power budget); drive: the rectified laminate
// output at the nominal 20 mm depth.
inline constexpr NominalProfile kMagnetoelectricNominal{
    /*rate_bps=*/4e3, /*drive_v=*/3.2, /*load_ohms=*/150.0,
    /*cadence_s=*/0.5, /*carrier_hz=*/1e6};

class MagnetoelectricPwm final : public LinkPhy {
 public:
  explicit MagnetoelectricPwm(magnetics::MeTransducerSpec spec = {});

  const char* name() const override { return "me"; }
  const NominalProfile& nominal() const override {
    return kMagnetoelectricNominal;
  }
  LinkCondition nominal_condition() const override;
  double nominal_power() const override;

  double power_delivered(const LinkCondition& condition) override;
  double efficiency(const LinkCondition& condition) override;
  double bit_error_rate(double power, double sensitivity,
                        double rate) const override;
  double drive_amplitude(double power) const override;

  // PWM duty-cycle chips on the uplink: the codec rides outside the
  // fault-wrapped channel, so burst faults corrupt chips and the
  // majority threshold absorbs isolated flips.
  comms::Channel wrap_uplink(comms::Channel inner) const override;

  const char* downlink_modulation() const override { return "OOK field"; }
  const char* uplink_modulation() const override { return "PWM backscatter"; }

  const magnetics::MeTransducer& transducer() const { return transducer_; }
  const comms::PwmCodec& codec() const { return codec_; }

 private:
  magnetics::MeTransducer transducer_;
  comms::PwmCodec codec_;
};

}  // namespace ironic::link
