#include "src/link/inductive.hpp"

#include <algorithm>
#include <cmath>

#include "src/magnetics/tissue.hpp"

namespace ironic::link {

InductiveAskLsk::InductiveAskLsk() : link_(magnetics::LinkConfig{}) {
  drive_ = link_.drive_for_power(15e-3, kInductiveNominal.load_ohms);
  p_nominal_ =
      link_.analyze(drive_, kInductiveNominal.load_ohms).power_delivered;
}

LinkCondition InductiveAskLsk::nominal_condition() const {
  LinkCondition condition;
  condition.distance = magnetics::LinkConfig{}.distance;
  condition.lateral_offset = 0.0;
  return condition;
}

void InductiveAskLsk::apply(const LinkCondition& condition) {
  link_.set_distance(condition.distance);
  link_.set_lateral_offset(condition.lateral_offset);
  if (condition.tissue_thickness.has_value()) {
    link_.set_tissue(magnetics::TissueSlab(magnetics::sirloin_properties(),
                                           *condition.tissue_thickness));
  } else {
    link_.set_tissue(std::nullopt);
  }
}

double InductiveAskLsk::power_delivered(const LinkCondition& condition) {
  apply(condition);
  return link_.analyze(drive_, kInductiveNominal.load_ohms).power_delivered;
}

double InductiveAskLsk::efficiency(const LinkCondition& condition) {
  apply(condition);
  return link_.analyze(drive_, kInductiveNominal.load_ohms).efficiency;
}

double InductiveAskLsk::bit_error_rate(double power, double sensitivity,
                                       double rate) const {
  const double snr =
      std::max(0.0, power / sensitivity) * (kInductiveNominal.rate_bps / rate);
  return 0.5 * std::erfc(std::sqrt(snr));
}

double InductiveAskLsk::drive_amplitude(double power) const {
  // The patch partially compensates a weakened link (floor at 0.6 of
  // nominal — it cannot boost indefinitely).
  const double compensation =
      std::clamp(std::sqrt(std::max(0.0, power) / p_nominal_), 0.6, 1.0);
  return kInductiveNominal.drive_v * compensation;
}

}  // namespace ironic::link
