#include "src/link/phy.hpp"

#include <stdexcept>

#include "src/link/inductive.hpp"
#include "src/link/magnetoelectric.hpp"

namespace ironic::link {
namespace {

struct BackendEntry {
  const char* name;
  const NominalProfile* profile;
  std::unique_ptr<LinkPhy> (*make)();
  const char* summary;
};

constexpr BackendEntry kBackends[] = {
    {"inductive", &kInductiveNominal,
     []() -> std::unique_ptr<LinkPhy> {
       return std::make_unique<InductiveAskLsk>();
     },
     "5 MHz inductive pair, ASK down / LSK backscatter up (the paper)"},
    {"me", &kMagnetoelectricNominal,
     []() -> std::unique_ptr<LinkPhy> {
       return std::make_unique<MagnetoelectricPwm>();
     },
     "magnetoelectric laminate, OOK field down / PWM backscatter up"},
};

[[noreturn]] void throw_unknown(const std::string& name) {
  std::string known;
  for (const auto& entry : kBackends) {
    if (!known.empty()) known += ", ";
    known += entry.name;
  }
  throw std::invalid_argument("link: unknown backend '" + name + "' (want " +
                              known + ")");
}

}  // namespace

std::vector<std::string> backend_names() {
  std::vector<std::string> names;
  for (const auto& entry : kBackends) names.emplace_back(entry.name);
  return names;
}

bool is_backend(const std::string& name) {
  for (const auto& entry : kBackends) {
    if (name == entry.name) return true;
  }
  return false;
}

std::string backend_summary() {
  std::string out;
  for (const auto& entry : kBackends) {
    std::string row = entry.name;
    if (row.size() < 12) row.append(12 - row.size(), ' ');
    out += "  " + row + entry.summary + "\n";
  }
  return out;
}

std::unique_ptr<LinkPhy> make_backend(const std::string& name) {
  for (const auto& entry : kBackends) {
    if (name == entry.name) return entry.make();
  }
  throw_unknown(name);
}

const NominalProfile& nominal_profile(const std::string& name) {
  for (const auto& entry : kBackends) {
    if (name == entry.name) return *entry.profile;
  }
  throw_unknown(name);
}

}  // namespace ironic::link
