// Backend #1: the paper's 5 MHz inductive link with ASK downlink and
// LSK backscatter uplink, wrapped behind LinkPhy.
//
// Refactor-neutrality contract: this backend must reproduce the
// pre-LinkPhy fault::LinkBudget bit-for-bit — same drive_for_power /
// analyze call order in the constructor, same geometry application
// order per power query, same libm expression shapes in the BER and
// compensation laws. Every campaign and fleet fingerprint pinned before
// the refactor (tests/link_neutrality_test.cpp, the linkphy CI stage)
// rides on this file; change it only with those pins in hand.
#pragma once

#include "src/link/phy.hpp"
#include "src/magnetics/link.hpp"

namespace ironic::link {

// The nominal operating point of the inductive stack — the former
// fault::kNominalRate / kNominalDrive / kLoadOhms / kCadence constants,
// now owned by the backend so its BER model can never disagree.
inline constexpr NominalProfile kInductiveNominal{
    /*rate_bps=*/100e3, /*drive_v=*/3.5, /*load_ohms=*/150.0,
    /*cadence_s=*/0.25, /*carrier_hz=*/5e6};

class InductiveAskLsk final : public LinkPhy {
 public:
  // Tunes the stock patch/implant coil pair for the paper's 15 mW
  // delivered-power point (exactly what LinkBudget's constructor did).
  InductiveAskLsk();

  const char* name() const override { return "inductive"; }
  const NominalProfile& nominal() const override { return kInductiveNominal; }
  LinkCondition nominal_condition() const override;
  double nominal_power() const override { return p_nominal_; }

  double power_delivered(const LinkCondition& condition) override;
  double efficiency(const LinkCondition& condition) override;
  double bit_error_rate(double power, double sensitivity,
                        double rate) const override;
  double drive_amplitude(double power) const override;

  const char* downlink_modulation() const override { return "ASK"; }
  const char* uplink_modulation() const override { return "LSK"; }

  // The tuned transmit drive [V] (exposed for link_tuning and tests).
  double tx_drive() const { return drive_; }

 private:
  // Applies `condition` to the link geometry in the canonical order
  // (distance, lateral offset, tissue) — the order the fingerprints pin.
  void apply(const LinkCondition& condition);

  magnetics::InductiveLink link_;
  double drive_ = 0.0;
  double p_nominal_ = 0.0;
};

}  // namespace ironic::link
