// LinkPhy: the pluggable physical layer behind the fault/fleet stack.
//
// The paper's remote-powering chain is one physical layer — a 5 MHz
// inductive link with ASK downlink and LSK backscatter uplink — and that
// assumption used to be baked into src/fault/plant.hpp (LinkBudget held
// a magnetics::InductiveLink by value; the nominal rate/drive/load/
// cadence were free constants). LinkPhy factors the physical layer out:
// a backend models power transfer vs. distance/alignment/tissue, the
// modulation wrappers for each direction, and the BER the session's
// rate ladder plays against. Everything above it — FaultInjector,
// campaigns, FleetService cohorts, the runners — dispatches through
// this interface, so rival stacks (the magnetoelectric transducer with
// PWM backscatter of arXiv 2412.02499, and any future backend) run
// under the *same* session/fault/campaign/fleet machinery and their
// resilience and energy numbers are directly comparable.
//
// Contract for backend authors (pinned by tests/link_test.cpp):
//   * power_delivered(c) is monotonically non-increasing in c.distance
//     and in c.lateral_offset from the nominal condition outward;
//   * efficiency(c) is in [0, 1];
//   * bit_error_rate(p, s, rate) is monotonically non-decreasing in
//     `rate` at fixed power (energy per bit shrinks) and lands in
//     [0, 0.5];
//   * power_delivered(nominal_condition()) == nominal_power();
//   * the wrap_* hooks must be deterministic pass-through codecs: any
//     randomness belongs to the caller's channel, never the backend
//     (thread-count invariance of every campaign depends on it).
//
// Determinism: a backend must not keep hidden mutable state across
// power_delivered calls beyond the geometry it was just given — two
// backends constructed with the same spec must produce bit-identical
// trajectories when driven with the same call sequence.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/comms/protocol.hpp"

namespace ironic::link {

// The nominal operating point a backend is tuned for. Hoisted from the
// free constants of src/fault/plant.hpp so a backend's BER model and
// its nominal numbers can never silently disagree.
struct NominalProfile {
  double rate_bps = 100e3;   // downlink bit rate at the nominal point
  double drive_v = 3.5;      // rectifier input amplitude at nominal [V]
  double load_ohms = 150.0;  // rectifier input impedance scale
  double cadence_s = 0.25;   // [s] between measurements
  double carrier_hz = 5e6;   // power/data carrier
};

// Instantaneous link geometry, the injector-perturbed quantities every
// backend maps onto its own physics (coil separation for the inductive
// link, implant depth for the ME transducer, ...).
struct LinkCondition {
  double distance = 0.0;        // [m] transmitter-to-implant separation
  double lateral_offset = 0.0;  // [m] misalignment in the coil/field plane
  // Tissue slab thickness [m]; nullopt = the backend's configured medium.
  std::optional<double> tissue_thickness;
};

class LinkPhy {
 public:
  virtual ~LinkPhy() = default;

  // Registry name ("inductive", "me", ...), stable across releases: it
  // keys --link on the runners, cohort profiles, and link.* telemetry.
  virtual const char* name() const = 0;

  virtual const NominalProfile& nominal() const = 0;

  // The unperturbed geometry (what the FaultInjector's base values are).
  virtual LinkCondition nominal_condition() const = 0;

  // Power delivered into the nominal load at the nominal condition [W].
  virtual double nominal_power() const = 0;

  // Power transfer at `condition` into the nominal load [W].
  virtual double power_delivered(const LinkCondition& condition) = 0;

  // Delivered / drawn at `condition`, in [0, 1].
  virtual double efficiency(const LinkCondition& condition) = 0;

  // Physical BER at `rate` given delivered power and the receiver
  // sensitivity: snr scales with power and inversely with bit rate, so
  // the session's rate ladder buys back margin a fault took away.
  virtual double bit_error_rate(double power, double sensitivity,
                                double rate) const = 0;

  // Implant drive amplitude for the delivered power [V] — the backend's
  // compensation law (how hard the patch can fight a weakened link).
  // Overvoltage faults scale the result outside, in fault::LinkBudget.
  virtual double drive_amplitude(double power) const = 0;

  // Modulation hooks: wrap the (already fault-wrapped) bit channel in
  // the backend's line codec for each direction. The default is the
  // transparent pass-through of the native ASK/LSK chain; the ME
  // backend encodes the uplink as PWM duty-cycle chips.
  virtual comms::Channel wrap_downlink(comms::Channel inner) const {
    return inner;
  }
  virtual comms::Channel wrap_uplink(comms::Channel inner) const {
    return inner;
  }

  // Human-readable modulation labels for reports and examples.
  virtual const char* downlink_modulation() const = 0;
  virtual const char* uplink_modulation() const = 0;
};

// --- backend registry -------------------------------------------------------

// Registered backend names, in registration order ({"inductive", "me"}).
std::vector<std::string> backend_names();
bool is_backend(const std::string& name);

// One line per backend for --help and --list style output.
std::string backend_summary();

// Construct the named backend. Throws std::invalid_argument on an
// unknown name.
std::unique_ptr<LinkPhy> make_backend(const std::string& name);

// The named backend's nominal profile without paying for construction
// (backends may solve their physics in the constructor). Throws
// std::invalid_argument on an unknown name.
const NominalProfile& nominal_profile(const std::string& name);

}  // namespace ironic::link
