// Fixed-size thread pool with per-worker work-stealing deques.
//
// Each worker owns a deque: it pushes and pops at the back (LIFO, keeps
// caches warm for recursively decomposed work) while idle workers steal
// from the front (FIFO, takes the oldest — and for divide-and-conquer the
// largest — pending chunk). External submissions are distributed
// round-robin; submissions from inside a worker go to that worker's own
// deque. Threads waiting in TaskGroup::wait() help drain the pool instead
// of blocking, so nested waits cannot deadlock even on a pool of one.
//
// Determinism contract: the pool schedules *execution*, never *results*.
// Callers index output slots by task id and draw randomness from
// util::Rng streams keyed by task id (see util::Rng::split), so a sweep's
// output is bit-identical for any thread count, including serial.
//
// Observability (metrics registry, recorded only when obs is compiled
// in): exec.pool.threads, exec.pool.queue_depth (gauges);
// exec.pool.tasks_submitted, exec.pool.tasks_run, exec.pool.steals,
// exec.pool.tasks_skipped, exec.pool.busy_ns (counters).
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/exec/cancellation.hpp"

namespace ironic::exec {

class ThreadPool {
 public:
  using Task = std::function<void()>;

  // threads == 0 → std::thread::hardware_concurrency() (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  // Runs every task already submitted, then joins the workers.
  ~ThreadPool();

  std::size_t size() const { return workers_.size(); }

  // Fire-and-forget; prefer TaskGroup for anything that needs completion,
  // exceptions, or cancellation. A task that throws out of submit() is
  // caught and logged (the pool must survive).
  void submit(Task task);

  // Pop one pending task and run it on the calling thread. Returns false
  // when every deque is empty. This is the "helping" primitive behind
  // TaskGroup::wait().
  bool try_run_one();

  // Aggregate counters since construction (also mirrored into the metrics
  // registry; kept here so tests do not depend on obs being compiled in).
  struct Stats {
    std::uint64_t submitted = 0;
    std::uint64_t run = 0;
    std::uint64_t steals = 0;
  };
  Stats stats() const;

 private:
  struct Worker {
    std::mutex mutex;
    std::deque<Task> queue;
  };

  void worker_main(std::size_t index);
  bool pop_task(std::size_t home, Task& out, bool count_steal);
  void execute(Task& task);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  std::mutex wake_mutex_;  // guards queued_ and stop_ for the cv protocol
  std::condition_variable wake_cv_;
  std::size_t queued_ = 0;
  bool stop_ = false;

  std::atomic<std::size_t> next_worker_{0};
  std::atomic<std::uint64_t> n_submitted_{0};
  std::atomic<std::uint64_t> n_run_{0};
  std::atomic<std::uint64_t> n_steals_{0};
};

// A set of tasks on one pool, waited on together. Multi-exception
// semantics (pinned by ThreadPoolSimultaneousThrowers): when several
// tasks throw concurrently, exactly the *first* captured exception is
// rethrown from wait(); every other throwing task is still fully
// accounted (the group never deadlocks, pending_ reaches zero) and
// counted in errors(). The first failure cancels the group's remaining
// queued tasks. wait() *helps*: the caller runs pending pool tasks while
// the group drains, so a worker thread may safely create and wait on a
// nested group.
class TaskGroup {
 public:
  // `token` (optional) chains an outer cancellation scope into the group.
  explicit TaskGroup(ThreadPool& pool, CancellationToken token = {});
  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;
  // Blocks until every task has finished or been skipped; exceptions are
  // swallowed here (call wait() yourself to observe them).
  ~TaskGroup();

  // Schedule `fn`. If the group token trips while the task is still
  // queued, the closure is never invoked.
  void run(std::function<void()> fn);
  // Same, but the task also gets a per-task deadline `timeout` from now;
  // the closure receives its token to poll. A task skipped because its
  // own deadline expired records TaskCancelled as the group error.
  void run_with_timeout(std::function<void(const CancellationToken&)> fn,
                        std::chrono::nanoseconds timeout);

  // Cooperatively cancel every task not yet started.
  void cancel() { source_.cancel(); }
  bool cancelled() const { return source_.cancelled() || external_.cancelled(); }
  // The group's own cancel scope, for tasks that poll mid-run. (An outer
  // token passed at construction is honoured when tasks are dequeued;
  // long-running closures that must react to it mid-run should capture it
  // themselves.)
  CancellationToken token() const { return token_; }

  // Total tasks that threw since construction (cumulative across waits —
  // wait() rethrows only the first exception, this counts them all).
  std::size_t errors() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return errors_;
  }

  // Wait for all tasks, helping the pool meanwhile. Rethrows the first
  // task exception; if tasks were skipped due to cancellation and no task
  // threw, throws TaskCancelled.
  void wait();

 private:
  void schedule(std::function<void(const CancellationToken&)> fn,
                CancellationToken task_token, bool deadline_is_error);

  ThreadPool& pool_;
  CancellationSource source_;
  CancellationToken token_;     // source_'s token
  CancellationToken external_;  // caller-supplied outer scope

  mutable std::mutex mutex_;
  std::condition_variable done_cv_;
  std::size_t pending_ = 0;
  std::size_t skipped_ = 0;
  std::size_t errors_ = 0;  // cumulative; never reset by wait()
  std::exception_ptr first_error_;
};

// Options for parallel_for. grain == 0 picks ~4 chunks per worker, the
// latency/overhead sweet spot for uniform work; set grain explicitly for
// very uneven per-item cost (small grain) or very cheap items (large).
struct ParallelForOptions {
  std::size_t grain = 0;
  CancellationToken token{};
  // Optional progress hook for long fan-outs (fleet soaks): invoked once
  // per completed chunk with the cumulative completed-item count and the
  // total. Called from whichever worker finished the chunk, so the call
  // order across workers is unspecified and `completed` values may
  // arrive out of order — use it for monitoring/telemetry only, never
  // for results (the determinism contract covers results, not callback
  // interleaving). Must be thread-safe.
  std::function<void(std::size_t completed, std::size_t total)> progress{};
};

// Apply fn(i) for i in [begin, end). fn must be safe to invoke
// concurrently from multiple threads for distinct i; iteration-to-thread
// assignment is unspecified but results must not depend on it (write to
// slot i, draw from stream i). Runs inline when the range is one grain or
// the pool has a single worker — the code path difference is scheduling
// only, never values.
template <typename Fn>
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end, Fn&& fn,
                  const ParallelForOptions& opts = {}) {
  if (end <= begin) return;
  const std::size_t n = end - begin;
  std::size_t grain = opts.grain;
  if (grain == 0) grain = std::max<std::size_t>(1, n / (4 * pool.size()));

  if (n <= grain || pool.size() <= 1) {
    for (std::size_t i = begin; i < end; ++i) {
      if ((i - begin) % grain == 0) opts.token.throw_if_cancelled();
      fn(i);
      const std::size_t done = i - begin + 1;
      if (opts.progress && (done % grain == 0 || done == n)) {
        opts.progress(done, n);
      }
    }
    return;
  }

  TaskGroup group(pool, opts.token);
  std::atomic<std::size_t> completed{0};
  for (std::size_t lo = begin; lo < end; lo += grain) {
    const std::size_t hi = std::min(end, lo + grain);
    group.run([&fn, &opts, &completed, lo, hi, n] {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
      if (opts.progress) {
        const std::size_t done =
            completed.fetch_add(hi - lo, std::memory_order_relaxed) +
            (hi - lo);
        opts.progress(done, n);
      }
    });
  }
  group.wait();
}

}  // namespace ironic::exec
