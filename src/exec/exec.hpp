// Umbrella header for the parallel execution subsystem (ironic_exec):
// work-stealing ThreadPool, TaskGroup, cooperative cancellation,
// parallel_for, and the declarative Sweep engine. See DESIGN.md §9 for
// the determinism contract and scheduling policy.
#pragma once

#include "src/exec/cancellation.hpp"
#include "src/exec/sweep.hpp"
#include "src/exec/thread_pool.hpp"
