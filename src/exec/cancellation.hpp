// Cooperative cancellation for the parallel execution subsystem.
//
// A CancellationSource owns the cancel flag; CancellationTokens are cheap
// copyable views of it, optionally tightened with a deadline. Cancellation
// is strictly cooperative: a running task keeps running until it polls
// `cancelled()` / `throw_if_cancelled()`, while tasks still queued when
// their token trips are skipped by the TaskGroup wrapper without ever
// invoking the closure.
#pragma once

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <string>

namespace ironic::exec {

// Thrown by throw_if_cancelled() and by TaskGroup::wait() when work was
// skipped because of cancellation or an expired deadline.
struct TaskCancelled : std::runtime_error {
  TaskCancelled() : std::runtime_error("exec: task cancelled") {}
  explicit TaskCancelled(const std::string& what) : std::runtime_error(what) {}
};

class CancellationToken {
 public:
  // Default token: never cancelled, no deadline.
  CancellationToken() = default;

  bool cancelled() const {
    if (flag_ && flag_->load(std::memory_order_relaxed)) return true;
    return has_deadline_ && std::chrono::steady_clock::now() >= deadline_;
  }
  void throw_if_cancelled() const {
    if (cancelled()) throw TaskCancelled();
  }

  // Derived token sharing the same cancel flag but additionally cancelled
  // once `timeout` elapses (measured from now). An existing earlier
  // deadline is kept.
  CancellationToken with_timeout(std::chrono::nanoseconds timeout) const {
    return with_deadline(std::chrono::steady_clock::now() + timeout);
  }
  CancellationToken with_deadline(
      std::chrono::steady_clock::time_point deadline) const {
    CancellationToken token = *this;
    if (!token.has_deadline_ || deadline < token.deadline_) {
      token.deadline_ = deadline;
      token.has_deadline_ = true;
    }
    return token;
  }

  // True when the shared flag itself was raised (as opposed to a deadline
  // expiring); used to tell "the group was cancelled" apart from "this
  // one task timed out".
  bool flag_raised() const {
    return flag_ && flag_->load(std::memory_order_relaxed);
  }

 private:
  friend class CancellationSource;
  std::shared_ptr<const std::atomic<bool>> flag_;
  std::chrono::steady_clock::time_point deadline_{};
  bool has_deadline_ = false;
};

class CancellationSource {
 public:
  CancellationSource() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void cancel() { flag_->store(true, std::memory_order_relaxed); }
  bool cancelled() const { return flag_->load(std::memory_order_relaxed); }

  CancellationToken token() const {
    CancellationToken t;
    t.flag_ = flag_;
    return t;
  }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

}  // namespace ironic::exec
