// Declarative parameter sweeps over the thread pool.
//
// A Sweep is a named cartesian product of axes (linear / log / explicit
// list grids, or seeded Monte Carlo draws). run() fans the row closure
// out over a ThreadPool with parallel_for, hands every point its own
// util::Rng stream (stream i for point i, via the xoshiro256++ jump), and
// assembles the returned cells into a util::Table in point order — so the
// table, its CSV rendering, and any statistics derived from it are
// bit-identical for every thread count, serial included.
//
// Point order is row-major with the LAST axis fastest, matching the
// nested-loop reading order of the bench tables this replaces.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "src/exec/thread_pool.hpp"
#include "src/util/rng.hpp"
#include "src/util/table.hpp"

namespace ironic::exec {

class Axis {
 public:
  // n evenly spaced values over [lo, hi] (endpoints included; n >= 1).
  static Axis linear(std::string name, double lo, double hi, std::size_t n);
  // n log-spaced values over [lo, hi] (lo, hi > 0).
  static Axis log_space(std::string name, double lo, double hi, std::size_t n);
  // Explicit values, kept in the given order.
  static Axis list(std::string name, std::vector<double> values);
  // n seeded uniform draws in [lo, hi) — materialized here, so the grid
  // itself never depends on execution order.
  static Axis monte_carlo_uniform(std::string name, std::size_t n, double lo,
                                  double hi, std::uint64_t seed);
  // n seeded normal draws (mean, sigma).
  static Axis monte_carlo_normal(std::string name, std::size_t n, double mean,
                                 double sigma, std::uint64_t seed);

  const std::string& name() const { return name_; }
  const std::vector<double>& values() const { return values_; }
  std::size_t size() const { return values_.size(); }

 private:
  Axis(std::string name, std::vector<double> values);

  std::string name_;
  std::vector<double> values_;
};

class Sweep;

// One grid point handed to the row closure: the axis values plus a
// dedicated deterministic RNG stream.
class SweepPoint {
 public:
  SweepPoint(const Sweep& sweep, std::size_t index, util::Rng& rng)
      : sweep_(&sweep), index_(index), rng_(&rng) {}

  std::size_t index() const { return index_; }
  // Value of the named axis at this point; throws std::out_of_range for
  // an unknown axis name.
  double value(std::string_view axis) const;
  double operator[](std::string_view axis) const { return value(axis); }
  // Stream `index()` of the sweep's RNG family: bit-identical draws no
  // matter which worker runs the point.
  util::Rng& rng() const { return *rng_; }

 private:
  const Sweep* sweep_;
  std::size_t index_;
  util::Rng* rng_;
};

using SweepRowFn = std::function<std::vector<std::string>(const SweepPoint&)>;

struct SweepOptions {
  // 1 → serial on the calling thread; 0 → hardware concurrency; n → a
  // pool of n workers. Ignored when `pool` is set.
  std::size_t threads = 1;
  // Points per task; 0 → parallel_for's auto grain.
  std::size_t grain = 1;
  // Seed of the per-point RNG stream family.
  std::uint64_t seed = 0x5eed0123456789abull;
  CancellationToken token{};
  // Run on an existing pool instead of creating one.
  ThreadPool* pool = nullptr;
};

struct SweepResult {
  std::string name;
  util::Table table;
  std::size_t points = 0;
  double wall_seconds = 0.0;
};

class Sweep {
 public:
  explicit Sweep(std::string name) : name_(std::move(name)) {}

  Sweep& axis(Axis a);
  const std::string& name() const { return name_; }
  const std::vector<Axis>& axes() const { return axes_; }
  // Product of the axis sizes (1 for an axis-less sweep: a single point).
  std::size_t size() const;
  // Per-axis values at a row-major point index (last axis fastest).
  std::vector<double> values_at(std::size_t index) const;

  // Evaluate `row` at every point and collect the cells into a table
  // under `columns`. Throws TaskCancelled if opts.token trips mid-sweep;
  // a row closure's exception is rethrown (first one wins).
  SweepResult run(std::vector<std::string> columns, const SweepRowFn& row,
                  const SweepOptions& opts = {}) const;

 private:
  friend class SweepPoint;

  std::string name_;
  std::vector<Axis> axes_;
};

}  // namespace ironic::exec
