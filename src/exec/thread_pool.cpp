#include "src/exec/thread_pool.hpp"

#include <chrono>
#include <string>

#include "src/obs/metrics.hpp"
#include "src/util/log.hpp"

namespace ironic::exec {

namespace {

// Cached handles into the metrics registry for the pool's hot paths
// (same pattern as spice::EngineMetrics). The registry zeroes in place on
// reset(), so these references never dangle.
struct PoolMetrics {
  obs::Gauge& threads;
  obs::Gauge& queue_depth;
  obs::Counter& tasks_submitted;
  obs::Counter& tasks_run;
  obs::Counter& steals;
  obs::Counter& tasks_skipped;
  obs::Counter& busy_ns;

  static PoolMetrics& get() {
    static PoolMetrics m = [] {
      auto& r = obs::MetricsRegistry::instance();
      return PoolMetrics{
          r.gauge("exec.pool.threads"),
          r.gauge("exec.pool.queue_depth"),
          r.counter("exec.pool.tasks_submitted"),
          r.counter("exec.pool.tasks_run"),
          r.counter("exec.pool.steals"),
          r.counter("exec.pool.tasks_skipped"),
          r.counter("exec.pool.busy_ns"),
      };
    }();
    return m;
  }
};

// Which pool (if any) owns the current thread, and the worker index
// within it; lets submit() keep worker-local work on the local deque.
thread_local const ThreadPool* tls_pool = nullptr;
thread_local std::size_t tls_worker = 0;

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    threads_.emplace_back([this, i] { worker_main(i); });
  }
  if constexpr (obs::kEnabled) {
    PoolMetrics::get().threads.set(static_cast<double>(threads));
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(wake_mutex_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::submit(Task task) {
  n_submitted_.fetch_add(1, std::memory_order_relaxed);
  if constexpr (obs::kEnabled) {
    PoolMetrics::get().tasks_submitted.add();
    PoolMetrics::get().queue_depth.add(1.0);
  }
  // Worker-local submissions stay on the submitting worker's deque
  // (LIFO); external ones are spread round-robin.
  std::size_t target;
  if (tls_pool == this) {
    target = tls_worker;
  } else {
    target = next_worker_.fetch_add(1, std::memory_order_relaxed) % workers_.size();
  }
  {
    const std::lock_guard<std::mutex> lock(workers_[target]->mutex);
    workers_[target]->queue.push_back(std::move(task));
  }
  {
    const std::lock_guard<std::mutex> lock(wake_mutex_);
    ++queued_;
  }
  wake_cv_.notify_one();
}

bool ThreadPool::pop_task(std::size_t home, Task& out, bool count_steal) {
  // Own deque first, newest task (back).
  {
    Worker& own = *workers_[home];
    const std::lock_guard<std::mutex> lock(own.mutex);
    if (!own.queue.empty()) {
      out = std::move(own.queue.back());
      own.queue.pop_back();
      const std::lock_guard<std::mutex> wl(wake_mutex_);
      --queued_;
      return true;
    }
  }
  // Steal: oldest task (front) from the first non-empty victim.
  for (std::size_t k = 1; k < workers_.size(); ++k) {
    Worker& victim = *workers_[(home + k) % workers_.size()];
    const std::lock_guard<std::mutex> lock(victim.mutex);
    if (!victim.queue.empty()) {
      out = std::move(victim.queue.front());
      victim.queue.pop_front();
      if (count_steal) {
        n_steals_.fetch_add(1, std::memory_order_relaxed);
        if constexpr (obs::kEnabled) PoolMetrics::get().steals.add();
      }
      const std::lock_guard<std::mutex> wl(wake_mutex_);
      --queued_;
      return true;
    }
  }
  return false;
}

void ThreadPool::execute(Task& task) {
  n_run_.fetch_add(1, std::memory_order_relaxed);
  if constexpr (obs::kEnabled) {
    PoolMetrics::get().tasks_run.add();
    PoolMetrics::get().queue_depth.add(-1.0);
  }
  const auto start = std::chrono::steady_clock::now();
  try {
    task();
  } catch (const std::exception& e) {
    // Only reachable for bare submit() tasks; TaskGroup wraps its tasks
    // and captures exceptions for the waiter.
    util::Log::error(std::string("exec: uncaught task exception: ") + e.what());
  } catch (...) {
    util::Log::error("exec: uncaught task exception (non-std type)");
  }
  if constexpr (obs::kEnabled) {
    const auto elapsed = std::chrono::steady_clock::now() - start;
    PoolMetrics::get().busy_ns.add(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()));
  }
}

void ThreadPool::worker_main(std::size_t index) {
  tls_pool = this;
  tls_worker = index;
  // Pin this worker's metric shard slot and trace tid before the first
  // task, so no hot-path recording pays the one-time ordinal assignment.
  const obs::ThreadRegistration obs_registration;
  for (;;) {
    Task task;
    if (pop_task(index, task, /*count_steal=*/true)) {
      execute(task);
      continue;
    }
    std::unique_lock<std::mutex> lock(wake_mutex_);
    wake_cv_.wait(lock, [this] { return stop_ || queued_ > 0; });
    if (stop_ && queued_ == 0) return;
  }
}

bool ThreadPool::try_run_one() {
  const std::size_t home = tls_pool == this ? tls_worker : 0;
  Task task;
  // Helping from an external thread is not a steal in the scheduling
  // sense; only worker-to-worker transfers count.
  if (!pop_task(home, task, /*count_steal=*/tls_pool == this)) return false;
  execute(task);
  return true;
}

ThreadPool::Stats ThreadPool::stats() const {
  return Stats{n_submitted_.load(std::memory_order_relaxed),
               n_run_.load(std::memory_order_relaxed),
               n_steals_.load(std::memory_order_relaxed)};
}

// ---------------------------------------------------------------- TaskGroup

TaskGroup::TaskGroup(ThreadPool& pool, CancellationToken token)
    : pool_(pool), token_(source_.token()), external_(std::move(token)) {}

TaskGroup::~TaskGroup() {
  try {
    wait();
  } catch (...) {
    // Destructor must not throw; call wait() explicitly to observe errors.
  }
}

void TaskGroup::run(std::function<void()> fn) {
  schedule([fn = std::move(fn)](const CancellationToken&) { fn(); }, token_,
           /*deadline_is_error=*/false);
}

void TaskGroup::run_with_timeout(std::function<void(const CancellationToken&)> fn,
                                 std::chrono::nanoseconds timeout) {
  schedule(std::move(fn), token_.with_timeout(timeout),
           /*deadline_is_error=*/true);
}

void TaskGroup::schedule(std::function<void(const CancellationToken&)> fn,
                         CancellationToken task_token, bool deadline_is_error) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++pending_;
  }
  pool_.submit([this, fn = std::move(fn), task_token, deadline_is_error] {
    const bool group_cancelled =
        source_.cancelled() || external_.cancelled();
    const bool task_expired = !group_cancelled && task_token.cancelled();
    if (group_cancelled || task_expired) {
      if constexpr (obs::kEnabled) {
        obs::MetricsRegistry::instance().counter("exec.pool.tasks_skipped").add();
      }
      const std::lock_guard<std::mutex> lock(mutex_);
      ++skipped_;
      if (task_expired && deadline_is_error && !first_error_) {
        first_error_ = std::make_exception_ptr(
            TaskCancelled("exec: task deadline expired before it was scheduled"));
      }
    } else {
      try {
        fn(task_token);
      } catch (...) {
        {
          const std::lock_guard<std::mutex> lock(mutex_);
          ++errors_;
          if (!first_error_) first_error_ = std::current_exception();
        }
        // First failure cancels the group's remaining queued tasks.
        source_.cancel();
      }
    }
    // Notify while still holding the mutex: once it is released a waiter
    // may observe pending_ == 0, return from wait(), and destroy the
    // group — so the condvar must not be touched after the unlock.
    const std::lock_guard<std::mutex> lock(mutex_);
    if (--pending_ == 0) done_cv_.notify_all();
  });
}

void TaskGroup::wait() {
  for (;;) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (pending_ == 0) break;
    }
    // Help: run pool tasks (ours or anyone's) instead of blocking; when
    // the pool is drained but our tasks still run elsewhere, block
    // briefly and re-check.
    if (!pool_.try_run_one()) {
      std::unique_lock<std::mutex> lock(mutex_);
      done_cv_.wait_for(lock, std::chrono::milliseconds(1),
                        [this] { return pending_ == 0; });
    }
  }
  std::exception_ptr error;
  std::size_t skipped = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    error = first_error_;
    first_error_ = nullptr;
    skipped = skipped_;
    skipped_ = 0;
  }
  if (error) std::rethrow_exception(error);
  if (skipped > 0) {
    throw TaskCancelled("exec: " + std::to_string(skipped) +
                        " task(s) skipped by cancellation");
  }
}

}  // namespace ironic::exec
