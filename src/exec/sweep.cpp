#include "src/exec/sweep.hpp"

#include <chrono>
#include <cmath>
#include <stdexcept>

#include "src/obs/metrics.hpp"
#include "src/obs/profiler.hpp"
#include "src/obs/trace.hpp"

#include <atomic>

namespace ironic::exec {

Axis::Axis(std::string name, std::vector<double> values)
    : name_(std::move(name)), values_(std::move(values)) {
  if (name_.empty()) throw std::invalid_argument("Axis: empty name");
  if (values_.empty()) throw std::invalid_argument("Axis: no values");
}

Axis Axis::linear(std::string name, double lo, double hi, std::size_t n) {
  if (n == 0) throw std::invalid_argument("Axis::linear: n >= 1");
  std::vector<double> values(n);
  for (std::size_t i = 0; i < n; ++i) {
    values[i] = n == 1 ? lo
                       : lo + (hi - lo) * static_cast<double>(i) /
                                 static_cast<double>(n - 1);
  }
  return Axis(std::move(name), std::move(values));
}

Axis Axis::log_space(std::string name, double lo, double hi, std::size_t n) {
  if (n == 0) throw std::invalid_argument("Axis::log_space: n >= 1");
  if (lo <= 0.0 || hi <= 0.0) {
    throw std::invalid_argument("Axis::log_space: endpoints must be > 0");
  }
  std::vector<double> values(n);
  const double llo = std::log(lo);
  const double lhi = std::log(hi);
  for (std::size_t i = 0; i < n; ++i) {
    values[i] = n == 1 ? lo
                       : std::exp(llo + (lhi - llo) * static_cast<double>(i) /
                                            static_cast<double>(n - 1));
  }
  return Axis(std::move(name), std::move(values));
}

Axis Axis::list(std::string name, std::vector<double> values) {
  return Axis(std::move(name), std::move(values));
}

Axis Axis::monte_carlo_uniform(std::string name, std::size_t n, double lo,
                               double hi, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> values(n);
  for (auto& v : values) v = rng.uniform(lo, hi);
  return Axis(std::move(name), std::move(values));
}

Axis Axis::monte_carlo_normal(std::string name, std::size_t n, double mean,
                              double sigma, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> values(n);
  for (auto& v : values) v = rng.normal(mean, sigma);
  return Axis(std::move(name), std::move(values));
}

double SweepPoint::value(std::string_view axis) const {
  const auto& axes = sweep_->axes();
  // Decode the row-major index on demand; axis counts are tiny.
  std::size_t stride = 1;
  for (std::size_t a = axes.size(); a-- > 0;) {
    if (axes[a].name() == axis) {
      return axes[a].values()[(index_ / stride) % axes[a].size()];
    }
    stride *= axes[a].size();
  }
  throw std::out_of_range("SweepPoint: unknown axis '" + std::string(axis) + "'");
}

Sweep& Sweep::axis(Axis a) {
  for (const auto& existing : axes_) {
    if (existing.name() == a.name()) {
      throw std::invalid_argument("Sweep: duplicate axis '" + a.name() + "'");
    }
  }
  axes_.push_back(std::move(a));
  return *this;
}

std::size_t Sweep::size() const {
  std::size_t n = 1;
  for (const auto& a : axes_) n *= a.size();
  return n;
}

std::vector<double> Sweep::values_at(std::size_t index) const {
  if (index >= size()) throw std::out_of_range("Sweep::values_at: index");
  std::vector<double> values(axes_.size());
  std::size_t rest = index;
  for (std::size_t a = axes_.size(); a-- > 0;) {
    values[a] = axes_[a].values()[rest % axes_[a].size()];
    rest /= axes_[a].size();
  }
  return values;
}

SweepResult Sweep::run(std::vector<std::string> columns, const SweepRowFn& row,
                       const SweepOptions& opts) const {
  const std::size_t n = size();
  const auto wall_start = std::chrono::steady_clock::now();

  // Stream i for point i — the determinism contract. Streams are carved
  // out serially here (one 2^128 jump each), before any task runs.
  std::vector<util::Rng> streams = util::Rng(opts.seed).split(n);
  std::vector<std::vector<std::string>> rows(n);

  obs::Histogram* point_seconds = nullptr;
  obs::Counter* points_run = nullptr;
  if constexpr (obs::kEnabled) {
    auto& r = obs::MetricsRegistry::instance();
    point_seconds = &r.histogram("exec.sweep.point_seconds");
    points_run = &r.counter("exec.sweep.points_run");
  }

  // One flow per point ties the dispatch (flow 's' on this thread, below)
  // to the execution span (flow 'f' on whichever pool worker runs it), so
  // the trace viewer draws arrows across thread tracks. Ids come from a
  // process-wide base so concurrent sweeps never share a flow.
  static std::atomic<std::uint64_t> flow_base{1};
  const std::uint64_t flow0 = flow_base.fetch_add(n, std::memory_order_relaxed);
  auto& recorder = obs::TraceRecorder::instance();
  if (recorder.enabled()) {
    for (std::size_t i = 0; i < n; ++i) {
      recorder.flow_begin("sweep." + name_, "exec", flow0 + i);
    }
  }

  const auto eval_point = [&](std::size_t i) {
    PROF_ZONE("exec.sweep_point");
    obs::Span span("sweep." + name_, "exec");
    span.arg("point", std::to_string(i));
    if (recorder.enabled()) {
      recorder.flow_end("sweep." + name_, "exec", flow0 + i);
    }
    const auto start = std::chrono::steady_clock::now();
    const SweepPoint point(*this, i, streams[i]);
    rows[i] = row(point);
    if constexpr (obs::kEnabled) {
      points_run->add();
      point_seconds->observe(
          std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
              .count());
    }
  };

  if (opts.pool != nullptr) {
    parallel_for(*opts.pool, 0, n, eval_point,
                 ParallelForOptions{opts.grain, opts.token});
  } else if (opts.threads == 1) {
    for (std::size_t i = 0; i < n; ++i) {
      opts.token.throw_if_cancelled();
      eval_point(i);
    }
  } else {
    ThreadPool pool(opts.threads);
    parallel_for(pool, 0, n, eval_point,
                 ParallelForOptions{opts.grain, opts.token});
  }

  SweepResult result{name_, util::Table(std::move(columns)), n, 0.0};
  for (auto& cells : rows) result.table.add_row(std::move(cells));
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start)
          .count();
  if constexpr (obs::kEnabled) {
    obs::MetricsRegistry::instance()
        .histogram("exec.sweep.wall_seconds")
        .observe(result.wall_seconds);
  }
  return result;
}

}  // namespace ironic::exec
