// Fleet-scale session service: N independent patient sessions — each
// the full spice + magnetics + comms + fault pipeline with its own
// SimClock and RNG lanes — sharded across the exec work-stealing pool.
//
// The scaling lever is checkpoint sharing: one charge-up transient is
// captured per distinct ChargeUpSpec (CheckpointCache) and every
// session forks the immutable blob copy-on-write instead of
// re-simulating the ~270 us charge-up. The hard contract: every
// session's deterministic results are bit-identical to running that
// session solo with the same seed, for any thread count and whether or
// not the checkpoint was shared — slot-indexed results, per-session
// hashed RNG streams, and a deterministic capture make that structural.
//
// Observability: each session records into a scoped registry parented
// on its cohort's registry; after the run the service aggregates each
// cohort's children and publishes cohort.fleet.<cohort>.* gauges plus
// the fleet.* roll-ups into the root registry, and streams fleet.session
// / fleet progress events through TelemetrySink when it is open.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/exec/thread_pool.hpp"
#include "src/fleet/checkpoint.hpp"
#include "src/fleet/session.hpp"
#include "src/fleet/supervisor.hpp"

namespace ironic::fleet {

struct FleetConfig {
  std::size_t sessions = 8;
  std::size_t threads = 1;  // pool size for run_fleet (0 = hardware)
  std::uint64_t seed = 0xf1ee70001ull;
  int exchanges = 4;  // per session; overridden when soak_seconds > 0
  // Simulated per-session horizon [s]: > 0 runs ceil(soak / kCadence)
  // exchanges. Simulated time, not wall time, so a soak is exactly as
  // deterministic as a fixed exchange count.
  double soak_seconds = 0.0;
  // false = every session captures its own charge-up (the solo path,
  // fleet-wide). Results are bit-identical either way; only wall clock
  // moves. The A/B lever behind BENCH_fleet_soak's fork-speedup row.
  bool share_checkpoint = true;
  bool analysis_hints = false;
  fault::ChargeUpSpec charge;
  // Session i belongs to cohorts[i % cohorts.size()].
  std::vector<CohortProfile> cohorts = default_cohorts();
  // Emit a fleet progress telemetry event every this many completed
  // sessions (0 = about 32 events across the run).
  std::size_t progress_every = 0;
  // Supervision: containment is unconditional (a throwing session is
  // always recorded, never a fleet abort); this shapes retries,
  // watchdog deadlines, chaos injection, and the crash-durable journal.
  SupervisorPolicy supervise;
};

// ceil(soak_seconds / kCadence) when soaking, else config.exchanges.
int effective_exchanges(const FleetConfig& config);

struct CohortSummary {
  std::string name;
  std::size_t sessions = 0;
  long long exchanges = 0;
  long long completed = 0;
  long long lost = 0;
  long long retries = 0;
  long long recovered = 0;
  long long restarts = 0;
  // Lost-measurement rate: lost / exchanges across the cohort.
  double lost_rate = 0.0;
  // Exact percentiles (sorted samples, linear interpolation — not
  // histogram-bucket estimates) of per-session mean recovery time
  // [s/recovered exchange] over the cohort's sessions that recovered at
  // least one exchange. 0 when no session recovered anything.
  double recovery_p50_s = 0.0;
  double recovery_p95_s = 0.0;
  double recovery_p99_s = 0.0;
  double mean_recovery_s = 0.0;
  // Supervision roll-up: sessions that ended unhealthy / were
  // quarantined, and failed / cohort-sessions.
  long long failed = 0;
  long long quarantined = 0;
  double failure_rate = 0.0;
};

struct FleetResult {
  std::vector<SessionResult> sessions;  // index order, slot-indexed
  std::vector<SessionHealth> health;    // index order, slot-indexed
  std::vector<CohortSummary> cohorts;   // config order
  // FNV-1a over every session's health fingerprint in index order:
  // fingerprint_session for healthy sessions, failure_fingerprint for
  // failed ones. For an all-healthy run this is exactly the historical
  // fingerprint, and it is invariant to thread count, checkpoint
  // sharing, and kill/resume.
  std::uint64_t fingerprint = 0;
  // Supervision roll-ups.
  long long failed = 0;       // sessions whose terminal outcome is unhealthy
  long long retried = 0;      // sessions that consumed >= 1 retry
  long long quarantined = 0;  // failed sessions that exhausted retries
  long long resumed = 0;      // sessions replayed from the journal
  std::map<std::string, long long> failures_by_code;  // code -> sessions
  // Fleet-wide recovery percentiles (same sample definition as the
  // cohort summaries, across all sessions).
  double recovery_p50_s = 0.0;
  double recovery_p95_s = 0.0;
  double recovery_p99_s = 0.0;
  long long total_exchanges = 0;
  long long lost_measurements = 0;
  double lost_rate = 0.0;
  // Wall-clock accounting, excluded from the fingerprint.
  double wall_seconds = 0.0;
  std::size_t charge_captures = 0;        // 1 when shared, N when not
  double charge_capture_seconds = 0.0;    // total wall spent charging up
  std::size_t checkpoint_forks = 0;       // sessions that ran from the blob
  double session_wall_mean_s = 0.0;       // mean session body wall clock
};

// Exact percentile (p in [0, 100]) of a sorted sample set by linear
// interpolation; 0 on an empty set. Shared with the runner's reporting.
double exact_percentile(const std::vector<double>& sorted, double p);

// Long-lived service: owns the worker pool and the checkpoint cache, so
// successive runs (a soak driver, a growing fleet) reuse both.
class FleetService {
 public:
  explicit FleetService(std::size_t threads = 1);

  FleetResult run(const FleetConfig& config);

  const CheckpointCache& checkpoints() const { return cache_; }
  std::size_t threads() const { return pool_.size(); }

 private:
  exec::ThreadPool pool_;
  CheckpointCache cache_;
};

// One-shot convenience: a service sized config.threads, run once.
FleetResult run_fleet(const FleetConfig& config);

// The parity reference: session `index` of `config`, run alone with a
// private charge-up and no shared state. fingerprint_session of the
// result must equal the fleet's session `index` — the contract CI pins.
SessionResult run_solo_session(const FleetConfig& config, std::uint64_t index);

}  // namespace ironic::fleet
