// One patient session: the full spice + magnetics + comms + fault
// pipeline (the campaign's link scenario with the rectifier transient
// plant) run against a per-session stochastic fault schedule, with its
// own SimClock and private RNG lanes.
//
// Determinism contract (the fleet's hard guarantee): every value in
// SessionResult that feeds fingerprint_session is a pure function of
// (seed, index, exchanges, cohort, charge) — independent of thread
// count, of sibling sessions, and of whether the charged checkpoint was
// forked from a shared blob or captured by the session itself
// (capture_charged_checkpoint is deterministic, so the forked blob is
// bit-identical to a private capture). `run solo == run in fleet`,
// bitwise, is enforced by tests and CI on this property.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/fault/plant.hpp"
#include "src/fault/schedule.hpp"
#include "src/fleet/failure.hpp"
#include "src/obs/metrics.hpp"
#include "src/spice/engine.hpp"

namespace ironic::fleet {

// A patient cohort: how hostile this group's environment is (event
// rates feed the stochastic schedule generator), how hard its patch
// firmware fights back (retry budget, timeout, rate ladder), and which
// physical layer / sensing workload its implants run.
struct CohortProfile {
  std::string name = "nominal";
  // Mean stochastic events per schedule horizon, by family.
  double comms_fault_rate = 1.0;  // kBitFlip / kBurstError, each
  double link_fault_rate = 0.3;   // kCouplingStep / kMisalignment / kTissueDrift
  double rail_fault_rate = 0.3;   // kOvervoltage / kLdoDropout, each
  double mean_fault_duration = 0.5;  // [s] exponential
  // Session-layer firmware knobs.
  int max_attempts = 12;
  double exchange_timeout = 10.0;  // [s]
  std::vector<double> rate_ladder = {100e3, 50e3, 25e3, 12.5e3};
  // LinkPhy backend this cohort's implants are powered by (see
  // link::backend_names()); sets the session cadence and — for
  // non-inductive backends — the charge-up amplitude/carrier.
  std::string link = "inductive";
  // Sensing front end per measurement. kLactateSpice runs the rectifier
  // transient plant (and forks the shared charge-up checkpoint); kBioZ
  // runs the stateless Fricke tissue ladder and needs no charge-up.
  fault::Workload workload = fault::Workload::kLactateSpice;
};

// The stock fleet mix: nominal wearers, a noisy-link cohort (dense
// comms faults — urban RF, loose patch), and a deep-implant cohort
// (weak coupling, long-lived link and rail faults, slower ladder).
std::vector<CohortProfile> default_cohorts();

// Everything that determines a session's results (see the contract
// above): identity, horizon, cohort, and the charge-up operating point.
struct SessionSpec {
  std::uint64_t seed = 0;
  std::uint64_t index = 0;  // fleet-wide session index; keys the RNG lanes
  int exchanges = 4;
  CohortProfile cohort;
  fault::ChargeUpSpec charge;
  bool analysis_hints = false;
};

struct SessionResult {
  std::uint64_t index = 0;
  std::string cohort;
  // Deterministic outcome fields (all of these feed the fingerprint).
  int exchanges = 0;
  int completed = 0;
  int lost = 0;
  int retries = 0;
  int recovered = 0;
  double recover_seconds = 0.0;
  double backoff_seconds = 0.0;
  int rate_fallbacks = 0;
  int rate_recoveries = 0;
  int restarts = 0;
  int checkpoints = 0;
  int ldo_violations = 0;
  double final_rate = 0.0;
  double sim_time = 0.0;
  std::array<std::uint64_t, fault::kFaultKindCount> faults_injected{};
  std::vector<std::uint16_t> adc_codes;
  // Wall-clock accounting, excluded from the fingerprint.
  bool forked = false;               // ran from a shared checkpoint
  double wall_seconds = 0.0;         // session body (charge-up excluded)
  double charge_wall_seconds = 0.0;  // private charge-up cost (0 if forked)
};

// FNV-1a over the deterministic fields in declaration order; equal
// fingerprints mean bit-identical sessions.
std::uint64_t fingerprint_session(const SessionResult& result);

// The per-session stochastic schedule, drawn from the session's
// schedule RNG lane (exposed for plan-validation and tests).
fault::FaultSchedule make_session_schedule(const SessionSpec& spec);

// Run one session to completion. `charged` is the shared charged-up
// operating point the plant forks copy-on-write; pass nullptr and the
// session captures its own (the solo path — bit-identical results by
// the contract above, just slower). `scoped` (optional) receives the
// session's fleet.session.* metrics for cohort aggregation.
//
// `controls` is the supervision surface: the watchdog token is polled
// at the top of every exchange (a tripped deadline throws
// exec::TaskCancelled, which the supervisor records as `deadline`
// instead of letting the attempt hang its pool worker), and the chaos
// action — when the supervisor doomed this attempt — throws
// SessionFailure{kChaos} or stalls at the planned exchange. Controls
// never touch the session's RNG lanes or SimClock, so any attempt that
// runs to completion is bit-identical to an uncontrolled run.
SessionResult run_patient_session(
    const SessionSpec& spec,
    std::shared_ptr<const spice::TransientCheckpoint> charged,
    obs::MetricsRegistry* scoped, const SessionControls& controls = {});

}  // namespace ironic::fleet
