#include "src/fleet/session.hpp"

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>
#include <utility>

#include "src/comms/protocol.hpp"
#include "src/fault/bioz.hpp"
#include "src/fault/injector.hpp"
#include "src/fault/session.hpp"
#include "src/link/phy.hpp"
#include "src/pm/regulator.hpp"
#include "src/util/fingerprint.hpp"
#include "src/util/rng.hpp"

namespace ironic::fleet {
namespace {

// RNG lane order within a session's split (fixed: reordering would
// change every fleet fingerprint).
enum Lane : std::size_t { kLaneSchedule = 0, kLaneInjector, kLaneChannel, kLaneSession, kLaneCount };

std::vector<util::Rng> session_lanes(const SessionSpec& spec) {
  // hashed_stream is O(1) per session (stream() would cost `index`
  // jumps — quadratic across a fleet); split() then hands the session
  // provably non-overlapping lanes for schedule/injector/channel/backoff.
  return util::Rng::hashed_stream(spec.seed, spec.index).split(kLaneCount);
}

fault::SessionOptions session_options(const CohortProfile& cohort) {
  fault::SessionOptions options;
  options.max_attempts = cohort.max_attempts;
  options.exchange_timeout = cohort.exchange_timeout;
  options.rate_ladder = cohort.rate_ladder;
  return options;
}

// The chaos action for a doomed attempt, fired at its planned exchange.
// kThrow raises the classified failure; kStall spins wall-clock (no
// SimClock, no RNG) until the watchdog token trips — reported as a
// deadline, the runaway-session path — or the stall cap elapses, after
// which the session resumes and completes normally.
void apply_chaos(const SessionControls& controls) {
  if (controls.action == ChaosAction::kThrow) {
    throw SessionFailure(FailureCode::kChaos,
                         "chaos: injected failure at exchange " +
                             std::to_string(controls.at_exchange));
  }
  const auto t0 = std::chrono::steady_clock::now();
  for (;;) {
    if (controls.token.cancelled()) {
      throw exec::TaskCancelled(
          "fleet: session stalled past its watchdog deadline");
    }
    const std::chrono::duration<double> stalled =
        std::chrono::steady_clock::now() - t0;
    if (stalled.count() >= controls.stall_seconds) return;
    std::this_thread::sleep_for(std::chrono::microseconds(500));
  }
}

}  // namespace

std::vector<CohortProfile> default_cohorts() {
  CohortProfile nominal;
  nominal.name = "nominal";

  CohortProfile noisy;
  noisy.name = "noisy_link";
  noisy.comms_fault_rate = 3.0;
  noisy.mean_fault_duration = 0.8;
  noisy.max_attempts = 16;

  CohortProfile deep;
  deep.name = "deep_implant";
  deep.comms_fault_rate = 1.5;
  deep.link_fault_rate = 1.2;
  deep.rail_fault_rate = 0.8;
  deep.mean_fault_duration = 1.2;
  deep.max_attempts = 16;
  deep.exchange_timeout = 20.0;
  deep.rate_ladder = {100e3, 50e3, 25e3, 12.5e3, 6.25e3};

  return {nominal, noisy, deep};
}

fault::FaultSchedule make_session_schedule(const SessionSpec& spec) {
  auto lanes = session_lanes(spec);
  fault::StochasticScheduleConfig config;
  // Horizon tracks the cohort backend's exchange cadence (0.25 s for
  // the inductive link — bit-identical to the pre-LinkPhy fleets).
  config.horizon =
      link::nominal_profile(spec.cohort.link).cadence_s * spec.exchanges + 1.0;
  config.mean_duration = spec.cohort.mean_fault_duration;
  using fault::FaultKind;
  auto rate = [&config](FaultKind kind, double events) {
    config.events_per_kind[static_cast<int>(kind)] = events;
  };
  rate(FaultKind::kCouplingStep, spec.cohort.link_fault_rate);
  rate(FaultKind::kMisalignment, spec.cohort.link_fault_rate);
  rate(FaultKind::kTissueDrift, spec.cohort.link_fault_rate);
  rate(FaultKind::kBitFlip, spec.cohort.comms_fault_rate);
  rate(FaultKind::kBurstError, spec.cohort.comms_fault_rate);
  rate(FaultKind::kOvervoltage, spec.cohort.rail_fault_rate);
  rate(FaultKind::kLdoDropout, spec.cohort.rail_fault_rate);
  // No battery in the link pipeline: a brownout event would tally
  // nowhere and only confuse the per-kind counts.
  rate(FaultKind::kBrownout, 0.0);
  return fault::FaultSchedule::stochastic(lanes[kLaneSchedule], config);
}

SessionResult run_patient_session(
    const SessionSpec& spec,
    std::shared_ptr<const spice::TransientCheckpoint> charged,
    obs::MetricsRegistry* scoped, const SessionControls& controls) {
  SessionResult result;
  result.index = spec.index;
  result.cohort = spec.cohort.name;

  // Only the rectifier transient plant carries analog state between
  // measurements; the other workloads never touch the charge-up blob.
  const bool spice_plant =
      spec.cohort.workload == fault::Workload::kLactateSpice;

  // Solo path: no shared blob, so this session pays its own charge-up.
  // capture_charged_checkpoint is deterministic, so the private blob is
  // bit-identical to the fleet's shared one — forking changes wall
  // clock, never results.
  if (spice_plant && charged == nullptr) {
    const auto t0 = std::chrono::steady_clock::now();
    charged = std::make_shared<const spice::TransientCheckpoint>(
        fault::capture_charged_checkpoint(spec.charge));
    result.charge_wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
  } else if (spice_plant) {
    result.forked = true;
  }
  const auto body_t0 = std::chrono::steady_clock::now();

  const fault::FaultSchedule schedule = make_session_schedule(spec);
  auto lanes = session_lanes(spec);

  fault::SimClock clock;
  fault::FaultInjector injector(&schedule, &clock, lanes[kLaneInjector]);
  util::Rng channel_rng = lanes[kLaneChannel];
  fault::LinkBudget budget(spec.cohort.link);
  const double sensitivity = budget.p_nominal / 8.0;  // snr 8 when nominal
  const double cadence = budget.nominal().cadence_s;

  fault::RectifierPlant plant;
  plant.carrier_hz = budget.nominal().carrier_hz;
  plant.analysis_hints = spec.analysis_hints;
  if (spice_plant) plant.fork_from(charged, spec.charge.amplitude);
  fault::BioZPlant bioz;
  bioz.analysis_hints = spec.analysis_hints;
  const pm::LdoModel ldo;

  const auto make_factory =
      [&](fault::LinkDirection direction) -> fault::ChannelFactory {
    return [&, direction](double rate) -> comms::Channel {
      comms::Channel physical = [&, rate](const comms::Bits& bits) {
        const double ber = budget.bit_error_rate(budget.power_now(injector),
                                                 sensitivity, rate);
        comms::Bits out = bits;
        for (std::size_t i = 0; i < out.size(); ++i) {
          if (channel_rng.bernoulli(ber)) out[i] = !out[i];
        }
        return out;
      };
      // Fault wrapper inside, backend modulation outside — same layering
      // as the campaign runner, so cohort sessions and campaign
      // scenarios see identical channel symbol streams.
      comms::Channel faulted = injector.wrap(std::move(physical), direction);
      return direction == fault::LinkDirection::kUplink
                 ? budget.phy->wrap_uplink(std::move(faulted))
                 : budget.phy->wrap_downlink(std::move(faulted));
    };
  };

  const auto handler = [&](const comms::Request& request) -> comms::Response {
    comms::Response response;
    response.ok = true;
    if (request.command == comms::Command::kMeasure) {
      fault::tally_active(injector, schedule, clock.now());
      const double power = budget.power_now(injector);
      const double amplitude = budget.drive_amplitude(power, injector);
      double vo = 0.0;    // what the ADC digitizes
      double rail = 0.0;  // what the LDO regulates
      switch (spec.cohort.workload) {
        case fault::Workload::kLactateSpice:
          vo = plant.measure(amplitude);
          rail = vo;
          break;
        case fault::Workload::kLactateBehavioural:
          vo = std::clamp(amplitude - 0.75, 0.0, 3.0);
          rail = vo;
          break;
        case fault::Workload::kBioZ:
          // The sense tap is a tissue voltage, not the supply: the rail
          // the LDO sees is the behavioural rectifier output.
          vo = bioz.measure(amplitude,
                            fault::bioz_tissue_scale(injector.tissue_thickness()));
          rail = std::clamp(amplitude - 0.75, 0.0, 3.0);
          break;
      }
      if (!ldo.in_regulation(rail * injector.rail_scale())) {
        ++result.ldo_violations;
      }
      const std::uint16_t code = fault::adc_code(vo);
      response.payload = {static_cast<std::uint8_t>(code >> 8),
                          static_cast<std::uint8_t>(code & 0xff)};
    }
    return response;
  };

  fault::Session session(make_factory(fault::LinkDirection::kDownlink),
                         make_factory(fault::LinkDirection::kUplink), handler,
                         &clock, lanes[kLaneSession],
                         session_options(spec.cohort));

  obs::Histogram* latency = nullptr;
  if constexpr (obs::kEnabled) {
    if (scoped != nullptr) {
      latency = &scoped->histogram("fleet.session.exchange_latency_s");
    }
  }

  for (int i = 0; i < spec.exchanges; ++i) {
    // Watchdog: cooperative cancellation between exchanges, so a
    // runaway session surfaces as a `deadline` failure instead of
    // holding its pool worker hostage.
    controls.token.throw_if_cancelled();
    if (controls.action != ChaosAction::kNone && i == controls.at_exchange) {
      apply_chaos(controls);
    }
    const auto outcome = session.exchange(comms::Command::kMeasure);
    ++result.exchanges;
    if (latency != nullptr) latency->observe(outcome.elapsed);
    if (outcome.ok && outcome.response->payload.size() >= 2) {
      ++result.completed;
      result.adc_codes.push_back(static_cast<std::uint16_t>(
          (outcome.response->payload[0] << 8) | outcome.response->payload[1]));
    } else {
      ++result.lost;
    }
    clock.advance(cadence);
  }

  const auto& stats = session.stats();
  result.retries = stats.retries;
  result.recovered = stats.recovered;
  result.recover_seconds = stats.recover_seconds;
  result.backoff_seconds = stats.backoff_seconds;
  result.rate_fallbacks = stats.rate_fallbacks;
  result.rate_recoveries = stats.rate_recoveries;
  result.restarts = plant.restarts;
  // The bio-impedance plant is stateless; its committed work is the
  // measurement count, reported in the same column.
  result.checkpoints = spec.cohort.workload == fault::Workload::kBioZ
                           ? bioz.measurements
                           : plant.checkpoints;
  result.final_rate = session.current_rate();
  result.sim_time = clock.now();
  for (int k = 0; k < fault::kFaultKindCount; ++k) {
    result.faults_injected[static_cast<std::size_t>(k)] =
        injector.injected(static_cast<fault::FaultKind>(k));
  }
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - body_t0)
          .count();

  if constexpr (obs::kEnabled) {
    if (scoped != nullptr) {
      scoped->counter("fleet.session.retries")
          .add(static_cast<std::uint64_t>(result.retries));
      scoped->counter("fleet.session.lost")
          .add(static_cast<std::uint64_t>(result.lost));
      scoped->counter("fleet.session.restarts")
          .add(static_cast<std::uint64_t>(result.restarts));
      scoped->gauge("fleet.session.recover_s").set(result.recover_seconds);
      scoped->gauge("fleet.session.final_rate_bps").set(result.final_rate);
    }
  }
  return result;
}

std::uint64_t fingerprint_session(const SessionResult& result) {
  util::Fingerprint fp;
  fp.feed_i(static_cast<long long>(result.index));
  fp.feed_i(result.exchanges);
  fp.feed_i(result.completed);
  fp.feed_i(result.lost);
  fp.feed_i(result.retries);
  fp.feed_i(result.recovered);
  fp.feed(result.recover_seconds);
  fp.feed(result.backoff_seconds);
  fp.feed_i(result.rate_fallbacks);
  fp.feed_i(result.rate_recoveries);
  fp.feed_i(result.restarts);
  fp.feed_i(result.checkpoints);
  fp.feed_i(result.ldo_violations);
  fp.feed(result.final_rate);
  fp.feed(result.sim_time);
  for (const auto count : result.faults_injected) fp.feed(count);
  for (const auto code : result.adc_codes) {
    fp.feed(static_cast<std::uint64_t>(code));
  }
  return fp.value();
}

}  // namespace ironic::fleet
