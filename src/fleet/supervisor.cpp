#include "src/fleet/supervisor.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <utility>

#include "src/obs/json.hpp"
#include "src/util/fingerprint.hpp"

namespace ironic::fleet {
namespace {

constexpr const char* kCodeNames[kFailureCodeCount] = {
    "ok",         "solver-singular", "newton-nonconverge", "comms-exhausted",
    "validation", "deadline",        "chaos",              "unknown"};

bool message_contains(const std::exception& error, const char* needle) {
  return std::string(error.what()).find(needle) != std::string::npos;
}

std::string hex64(std::uint64_t value) {
  std::ostringstream os;
  os << "0x" << std::hex << std::setw(16) << std::setfill('0') << value;
  return os.str();
}

std::uint64_t parse_hex64(const std::string& text) {
  return std::strtoull(text.c_str(), nullptr, 0);
}

}  // namespace

const char* failure_code_name(FailureCode code) {
  const auto i = static_cast<int>(code);
  if (i < 0 || i >= kFailureCodeCount) return "unknown";
  return kCodeNames[i];
}

FailureCode failure_code_from_name(const std::string& name) {
  for (int i = 0; i < kFailureCodeCount; ++i) {
    if (name == kCodeNames[i]) return static_cast<FailureCode>(i);
  }
  return FailureCode::kUnknown;
}

FailureCode classify_failure(const std::exception& error) {
  if (const auto* failure = dynamic_cast<const SessionFailure*>(&error)) {
    return failure->code;
  }
  if (dynamic_cast<const exec::TaskCancelled*>(&error) != nullptr) {
    return FailureCode::kDeadline;
  }
  if (dynamic_cast<const std::invalid_argument*>(&error) != nullptr) {
    return FailureCode::kValidation;
  }
  // Engine/solver errors carry no type of their own; sniff the known
  // messages (pinned by FleetSupervisor.ClassifiesKnownFailureMessages).
  if (message_contains(error, "singular")) return FailureCode::kSolverSingular;
  if (message_contains(error, "converge") ||
      message_contains(error, "Newton")) {
    return FailureCode::kNewtonNonconverge;
  }
  if (message_contains(error, "exhaust") ||
      message_contains(error, "transactor")) {
    return FailureCode::kCommsExhausted;
  }
  return FailureCode::kUnknown;
}

ChaosPlan chaos_plan(const ChaosSpec& chaos, std::uint64_t seed,
                     std::uint64_t index, int exchanges) {
  ChaosPlan plan;
  if (!chaos.enabled()) return plan;
  // A private hashed stream keyed off (seed ^ salt, index): chaos draws
  // never touch the session's schedule/injector/channel/backoff lanes,
  // so a session that chaos spares is bit-identical to a no-chaos run.
  util::Rng rng = util::Rng::hashed_stream(seed ^ chaos.salt, index);
  const double doom = rng.uniform();
  const double where = rng.uniform();  // always drawn: plan shape is fixed
  if (doom < chaos.throw_rate) {
    plan.action = ChaosAction::kThrow;
  } else if (doom < chaos.throw_rate + chaos.stall_rate) {
    plan.action = ChaosAction::kStall;
  } else {
    return plan;
  }
  plan.fail_attempts = std::max(1, chaos.fail_attempts);
  plan.at_exchange = std::min(
      exchanges - 1, static_cast<int>(where * static_cast<double>(exchanges)));
  plan.stall_seconds = chaos.stall_seconds;
  return plan;
}

std::uint64_t failure_fingerprint(const SessionHealth& health) {
  util::Fingerprint fp;
  fp.feed_i(static_cast<long long>(health.index));
  fp.feed(static_cast<std::uint64_t>(
      0xfa11ed5e5510full));  // domain-separates failures from results
  fp.feed_i(static_cast<int>(health.code));
  fp.feed_i(health.quarantined ? 1 : 0);
  return fp.value();
}

SupervisedSession run_supervised_session(
    const SessionSpec& spec,
    std::shared_ptr<const spice::TransientCheckpoint> charged,
    obs::MetricsRegistry* scoped, const SupervisorPolicy& policy) {
  SupervisedSession out;
  out.health.index = spec.index;
  out.health.cohort = spec.cohort.name;

  const ChaosPlan plan =
      chaos_plan(policy.chaos, spec.seed, spec.index, spec.exchanges);
  const int max_attempts = 1 + std::max(0, policy.max_retries);
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    out.health.attempts = attempt + 1;
    SessionControls controls;
    if (policy.session_deadline_s > 0.0) {
      controls.token = exec::CancellationToken{}.with_timeout(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::duration<double>(policy.session_deadline_s)));
    }
    if (plan.action != ChaosAction::kNone && attempt < plan.fail_attempts) {
      controls.action = plan.action;
      controls.at_exchange = plan.at_exchange;
      controls.stall_seconds = plan.stall_seconds;
    }
    try {
      // Each attempt rebuilds the session from (seed, index) alone —
      // fresh RNG lanes, fresh SimClock, fresh plant fork — so a retry
      // that succeeds is bit-identical to a clean first-attempt run.
      out.result = run_patient_session(spec, charged, scoped, controls);
      out.health.ok = true;
      out.health.code = FailureCode::kNone;
      out.health.message.clear();
      out.health.fingerprint = fingerprint_session(out.result);
      return out;
    } catch (const std::exception& error) {
      out.health.ok = false;
      out.health.code = classify_failure(error);
      out.health.message = error.what();
    }
  }
  // Every granted attempt failed: quarantine. The result slot stays
  // zeroed apart from identity, so aggregates never see phantom data.
  out.health.quarantined = policy.max_retries > 0;
  out.health.fingerprint = failure_fingerprint(out.health);
  out.result = SessionResult{};
  out.result.index = spec.index;
  out.result.cohort = spec.cohort.name;
  return out;
}

// ---------------------------------------------------------------- RunJournal

RunJournal::State RunJournal::load(const std::string& path) {
  State state;
  std::ifstream in(path);
  if (!in) return state;  // missing journal: nothing completed, no error
  std::string line;
  bool saw_header = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    obs::json::Value row;
    try {
      row = obs::json::Value::parse(line);
    } catch (const std::exception&) {
      continue;  // torn line (killed mid-write): those sessions re-run
    }
    if (!row.is_object() || !row.contains("event")) continue;
    const std::string& event = row.at("event").as_string();
    try {
      if (event == "begin") {
        state.seed = parse_hex64(row.at("seed").as_string());
        state.sessions = static_cast<std::size_t>(row.at("sessions").as_double());
        state.exchanges = static_cast<int>(row.at("exchanges").as_double());
        saw_header = true;
      } else if (event == "session") {
        Entry entry;
        auto& h = entry.health;
        h.index = static_cast<std::uint64_t>(row.at("session").as_double());
        h.cohort = row.at("cohort").as_string();
        h.ok = row.at("ok").as_bool();
        h.quarantined = row.at("quarantined").as_bool();
        h.code = failure_code_from_name(row.at("code").as_string());
        h.attempts = static_cast<int>(row.at("attempts").as_double());
        h.fingerprint = parse_hex64(row.at("fingerprint").as_string());
        if (row.contains("message")) h.message = row.at("message").as_string();
        h.resumed = true;
        auto& s = entry.summary;
        s.index = h.index;
        s.cohort = h.cohort;
        s.exchanges = static_cast<int>(row.at("exchanges").as_double());
        s.completed = static_cast<int>(row.at("completed").as_double());
        s.lost = static_cast<int>(row.at("lost").as_double());
        s.retries = static_cast<int>(row.at("retries").as_double());
        s.recovered = static_cast<int>(row.at("recovered").as_double());
        s.recover_seconds = row.at("recover_seconds").as_double();
        s.restarts = static_cast<int>(row.at("restarts").as_double());
        // Last record wins: a journal replayed through several resumes
        // may carry duplicates; the outcomes are deterministic, so any
        // copy is as good as another.
        state.completed[h.index] = std::move(entry);
      }
    } catch (const std::exception& e) {
      state.error = std::string("journal: malformed record: ") + e.what();
      return state;
    }
  }
  state.valid = saw_header;
  if (!saw_header) state.error = "journal: no begin header";
  return state;
}

bool RunJournal::open(const std::string& path, bool append) {
  if (append) {
    // A producer killed mid-write can leave a torn final line with no
    // newline; appending straight after it would fuse two records into
    // one forever-corrupt line. Terminate the torn line first — load()
    // already skips it as unparseable.
    std::ifstream in(path, std::ios::binary);
    if (in) {
      in.seekg(0, std::ios::end);
      if (in.tellg() > 0) {
        in.seekg(-1, std::ios::end);
        char last = '\n';
        in.get(last);
        if (last != '\n') {
          std::ofstream fix(path, std::ios::binary | std::ios::app);
          fix << '\n';
        }
      }
    }
  }
  sink_.set_durable(true);  // journal lines outrank the obs kill switch
  return sink_.open(path, append);
}

void RunJournal::begin(std::size_t sessions, std::uint64_t seed,
                       int exchanges) {
  obs::json::Value::Object fields;
  fields["sessions"] = static_cast<std::uint64_t>(sessions);
  fields["seed"] = hex64(seed);
  fields["exchanges"] = exchanges;
  sink_.emit_event("fleet.journal", "begin", std::move(fields));
}

void RunJournal::record(const SessionHealth& health,
                        const SessionResult& result) {
  obs::json::Value::Object fields;
  fields["session"] = static_cast<std::uint64_t>(health.index);
  fields["cohort"] = health.cohort;
  fields["ok"] = health.ok;
  fields["quarantined"] = health.quarantined;
  fields["code"] = std::string(failure_code_name(health.code));
  fields["attempts"] = health.attempts;
  fields["fingerprint"] = hex64(health.fingerprint);
  if (!health.message.empty()) fields["message"] = health.message;
  fields["exchanges"] = result.exchanges;
  fields["completed"] = result.completed;
  fields["lost"] = result.lost;
  fields["retries"] = result.retries;
  fields["recovered"] = result.recovered;
  fields["recover_seconds"] = result.recover_seconds;
  fields["restarts"] = result.restarts;
  sink_.emit_event("fleet.journal", "session", std::move(fields));
}

}  // namespace ironic::fleet
