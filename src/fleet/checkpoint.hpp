// Shared charged-up operating points for the fleet service.
//
// Capturing the ~270 us charge-up transient is the dominant per-session
// cost (~27k solver steps against ~1k per measurement segment), and
// every session with the same ChargeUpSpec charges up to the bit-same
// operating point. The cache runs that transient once per distinct spec
// and hands every session a shared_ptr to one immutable checkpoint;
// plants fork it copy-on-write (fault::RectifierPlant::fork_from), so a
// thousand sessions cost one capture plus a thousand pointer copies.
#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "src/fault/plant.hpp"
#include "src/spice/engine.hpp"

namespace ironic::fleet {

class CheckpointCache {
 public:
  // The charged checkpoint for `spec`, capturing it on first use. The
  // returned blob is immutable and shared: sessions must only read it
  // (the plant's fork contract). Thread-safe; a concurrent miss on the
  // same spec waits for the one capture instead of duplicating it.
  std::shared_ptr<const spice::TransientCheckpoint> charged(
      const fault::ChargeUpSpec& spec = {});

  struct Stats {
    std::size_t captures = 0;       // charge-up transients actually run
    std::size_t hits = 0;           // requests served from the cache
    double capture_seconds = 0.0;   // wall-clock spent capturing
  };
  Stats stats() const;

 private:
  mutable std::mutex mutex_;
  std::vector<std::pair<fault::ChargeUpSpec,
                        std::shared_ptr<const spice::TransientCheckpoint>>>
      entries_;
  Stats stats_;
};

}  // namespace ironic::fleet
