#include "src/fleet/fleet.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <string>

#include "src/link/phy.hpp"
#include "src/obs/json.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/telemetry.hpp"
#include "src/util/fingerprint.hpp"

namespace ironic::fleet {
namespace {

// The charge-up operating point for one cohort: the fleet-wide spec,
// with the amplitude/carrier retargeted to the cohort backend's nominal
// drive when it is not the inductive default. CheckpointCache dedupes
// by value, so same-backend cohorts still share one blob.
fault::ChargeUpSpec charge_for(const FleetConfig& config,
                               const CohortProfile& cohort) {
  fault::ChargeUpSpec charge = config.charge;
  if (cohort.link != "inductive") {
    const link::NominalProfile& profile = link::nominal_profile(cohort.link);
    charge.amplitude = profile.drive_v;
    charge.carrier_hz = profile.carrier_hz;
  }
  return charge;
}

SessionSpec make_spec(const FleetConfig& config, std::uint64_t index) {
  SessionSpec spec;
  spec.seed = config.seed;
  spec.index = index;
  spec.exchanges = effective_exchanges(config);
  spec.cohort = config.cohorts[index % config.cohorts.size()];
  spec.charge = charge_for(config, spec.cohort);
  spec.analysis_hints = config.analysis_hints;
  return spec;
}

void validate(const FleetConfig& config) {
  if (config.sessions < 1) {
    throw std::invalid_argument("fleet: sessions must be >= 1");
  }
  if (config.cohorts.empty()) {
    throw std::invalid_argument("fleet: at least one cohort profile");
  }
  if (effective_exchanges(config) < 1) {
    throw std::invalid_argument("fleet: exchanges must be >= 1");
  }
  for (const auto& cohort : config.cohorts) {
    if (!link::is_backend(cohort.link)) {
      throw std::invalid_argument("fleet: cohort '" + cohort.name +
                                  "': unknown link backend '" + cohort.link +
                                  "'");
    }
  }
}

}  // namespace

int effective_exchanges(const FleetConfig& config) {
  if (config.soak_seconds > 0.0) {
    return std::max(
        1, static_cast<int>(std::ceil(config.soak_seconds / fault::kCadence)));
  }
  return config.exchanges;
}

double exact_percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double clamped = std::clamp(p, 0.0, 100.0);
  const double pos = clamped / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

FleetService::FleetService(std::size_t threads) : pool_(threads) {}

FleetResult FleetService::run(const FleetConfig& config) {
  validate(config);
  const auto t0 = std::chrono::steady_clock::now();
  const auto cache_before = cache_.stats();
  const std::size_t n_cohorts = config.cohorts.size();

  FleetResult result;
  result.sessions.resize(config.sessions);
  result.health.resize(config.sessions);

  // Crash-durable journal: when resuming, replay the previous run's
  // terminal outcomes and append to the same file; otherwise start a
  // fresh journal with a header pinning the run identity. Outcomes are
  // deterministic, so a replayed entry stands in for a re-run exactly.
  RunJournal journal;
  RunJournal::State journal_state;
  const SupervisorPolicy& policy = config.supervise;
  if (!policy.journal_path.empty()) {
    bool append = false;
    if (policy.resume) {
      journal_state = RunJournal::load(policy.journal_path);
      if (!journal_state.error.empty()) {
        throw std::invalid_argument("fleet: resume: " + journal_state.error);
      }
      if (journal_state.valid) {
        if (journal_state.seed != config.seed ||
            journal_state.sessions != config.sessions ||
            journal_state.exchanges != effective_exchanges(config)) {
          throw std::invalid_argument(
              "fleet: resume: journal header does not match this run "
              "(seed/sessions/exchanges)");
        }
        append = true;
      }
    }
    if (!journal.open(policy.journal_path, append)) {
      throw std::invalid_argument("fleet: cannot open journal: " +
                                  policy.journal_path);
    }
    if (!append) {
      journal.begin(config.sessions, config.seed, effective_exchanges(config));
    }
  }

  // One capture per distinct spec, shared by every session in the
  // cohorts that need it (the bio-impedance workload is stateless and
  // skips charge-up entirely). cache_.charged dedupes by spec value, so
  // same-backend cohorts resolve to the same blob. When sharing is off
  // each session pays its own charge-up inside run_patient_session —
  // same results, different wall clock.
  std::vector<std::shared_ptr<const spice::TransientCheckpoint>> blobs(
      n_cohorts);
  if (config.share_checkpoint) {
    for (std::size_t c = 0; c < n_cohorts; ++c) {
      if (config.cohorts[c].workload == fault::Workload::kLactateSpice) {
        blobs[c] = cache_.charged(charge_for(config, config.cohorts[c]));
      }
    }
  }

  // Registries forked up front on this thread: session i records into
  // session_regs[i] only (slot-indexed like the results), parented on
  // its cohort's registry so each cohort aggregates its own children.
  auto& root = obs::MetricsRegistry::instance();
  std::vector<std::shared_ptr<obs::MetricsRegistry>> cohort_regs;
  std::vector<std::shared_ptr<obs::MetricsRegistry>> session_regs;
  if constexpr (obs::kEnabled) {
    cohort_regs.reserve(n_cohorts);
    for (const auto& cohort : config.cohorts) {
      cohort_regs.push_back(root.scoped({{"cohort", cohort.name}}));
    }
    session_regs.reserve(config.sessions);
    for (std::size_t i = 0; i < config.sessions; ++i) {
      session_regs.push_back(
          cohort_regs[i % n_cohorts]->scoped({{"session", std::to_string(i)}}));
    }
  }

  auto& sink = obs::TelemetrySink::instance();
  const bool stream = obs::kEnabled && sink.is_open();
  std::size_t every = config.progress_every;
  if (every == 0) every = std::max<std::size_t>(1, config.sessions / 32);

  exec::ParallelForOptions options;
  options.grain = 1;
  if (stream) {
    options.progress = [&sink, every](std::size_t done, std::size_t total) {
      if (done % every == 0 || done == total) {
        sink.emit_event(
            "fleet", "progress",
            {{"done", obs::json::Value(static_cast<std::uint64_t>(done))},
             {"total", obs::json::Value(static_cast<std::uint64_t>(total))}});
      }
    };
  }
  exec::parallel_for(
      pool_, 0, config.sessions,
      [&](std::size_t i) {
        // Resume: a journaled terminal outcome replaces the re-run.
        const auto done = journal_state.completed.find(i);
        if (done != journal_state.completed.end()) {
          result.sessions[i] = done->second.summary;
          result.health[i] = done->second.health;
          return;
        }
        const SessionSpec spec = make_spec(config, i);
        obs::MetricsRegistry* scoped =
            session_regs.empty() ? nullptr : session_regs[i].get();
        // Containment is unconditional: a throwing session comes back
        // as a recorded SessionHealth, never an unwound parallel_for.
        SupervisedSession sup =
            run_supervised_session(spec, blobs[i % n_cohorts], scoped, policy);
        if (journal.is_open()) journal.record(sup.health, sup.result);
        result.sessions[i] = std::move(sup.result);
        result.health[i] = std::move(sup.health);
        if (stream) {
          const auto& s = result.sessions[i];
          const auto& h = result.health[i];
          sink.emit_event(
              "fleet.session", "complete",
              {{"session", obs::json::Value(static_cast<std::uint64_t>(i))},
               {"cohort", obs::json::Value(s.cohort)},
               {"ok", obs::json::Value(h.ok)},
               {"code", obs::json::Value(
                            std::string(failure_code_name(h.code)))},
               {"completed",
                obs::json::Value(static_cast<std::uint64_t>(s.completed))},
               {"lost", obs::json::Value(static_cast<std::uint64_t>(s.lost))},
               {"retries",
                obs::json::Value(static_cast<std::uint64_t>(s.retries))},
               {"recover_s", obs::json::Value(s.recover_seconds)}});
        }
      },
      options);

  // Fold the slot-indexed sessions into cohort summaries and the fleet
  // roll-up. Samples are sorted before the percentile walk, so the
  // statistics (like the fingerprint) never depend on completion order.
  result.cohorts.resize(n_cohorts);
  std::vector<std::vector<double>> cohort_samples(n_cohorts);
  std::vector<double> all_samples;
  util::Fingerprint fp;
  double wall_sum = 0.0;
  std::size_t fresh_sessions = 0;  // ran this invocation (not replayed)
  std::size_t fresh_private = 0;   // healthy fresh sessions, own charge-up
  for (std::size_t i = 0; i < result.sessions.size(); ++i) {
    const auto& s = result.sessions[i];
    const auto& h = result.health[i];
    auto& cohort = result.cohorts[i % n_cohorts];
    ++cohort.sessions;
    cohort.exchanges += s.exchanges;
    cohort.completed += s.completed;
    cohort.lost += s.lost;
    cohort.retries += s.retries;
    cohort.recovered += s.recovered;
    cohort.restarts += s.restarts;
    if (s.recovered > 0) {
      const double sample = s.recover_seconds / s.recovered;
      cohort_samples[i % n_cohorts].push_back(sample);
      all_samples.push_back(sample);
    }
    if (!h.ok) {
      ++cohort.failed;
      ++result.failed;
      ++result.failures_by_code[failure_code_name(h.code)];
      if (h.quarantined) {
        ++cohort.quarantined;
        ++result.quarantined;
      }
    }
    if (h.attempts > 1) ++result.retried;
    if (h.resumed) {
      // Replayed outcomes cost no wall clock this run; their summary
      // fields fold into the aggregates above, nothing else.
      ++result.resumed;
    } else {
      ++fresh_sessions;
      if (s.forked) ++result.checkpoint_forks;
      // Only the spice-plant workload ever captures privately; stateless
      // workloads run un-forked without a charge-up to book.
      if (h.ok && !s.forked &&
          config.cohorts[i % n_cohorts].workload ==
              fault::Workload::kLactateSpice) {
        ++fresh_private;
      }
      result.charge_capture_seconds += s.charge_wall_seconds;
      wall_sum += s.wall_seconds;
    }
    result.total_exchanges += s.exchanges;
    result.lost_measurements += s.lost;
    // fingerprint_session for healthy sessions, failure_fingerprint for
    // failed ones — equal to the historical fingerprint when all heal.
    fp.feed(h.fingerprint);
  }
  for (std::size_t c = 0; c < n_cohorts; ++c) {
    auto& cohort = result.cohorts[c];
    cohort.name = config.cohorts[c].name;
    cohort.lost_rate =
        cohort.exchanges > 0
            ? static_cast<double>(cohort.lost) / static_cast<double>(cohort.exchanges)
            : 0.0;
    cohort.failure_rate =
        cohort.sessions > 0
            ? static_cast<double>(cohort.failed) /
                  static_cast<double>(cohort.sessions)
            : 0.0;
    auto& samples = cohort_samples[c];
    std::sort(samples.begin(), samples.end());
    cohort.recovery_p50_s = exact_percentile(samples, 50.0);
    cohort.recovery_p95_s = exact_percentile(samples, 95.0);
    cohort.recovery_p99_s = exact_percentile(samples, 99.0);
    if (!samples.empty()) {
      double sum = 0.0;
      for (const double sample : samples) sum += sample;
      cohort.mean_recovery_s = sum / static_cast<double>(samples.size());
    }
  }
  std::sort(all_samples.begin(), all_samples.end());
  result.recovery_p50_s = exact_percentile(all_samples, 50.0);
  result.recovery_p95_s = exact_percentile(all_samples, 95.0);
  result.recovery_p99_s = exact_percentile(all_samples, 99.0);
  result.lost_rate = result.total_exchanges > 0
                         ? static_cast<double>(result.lost_measurements) /
                               static_cast<double>(result.total_exchanges)
                         : 0.0;
  result.fingerprint = fp.value();
  result.session_wall_mean_s =
      fresh_sessions > 0 ? wall_sum / static_cast<double>(fresh_sessions)
                         : 0.0;

  // Solo-path captures were booked per session above; add the cache's
  // share (0 extra when this spec was already cached by a prior run).
  // Only healthy fresh sessions book a private capture: failed slots are
  // zeroed and resumed slots cost nothing this run.
  const auto cache_after = cache_.stats();
  result.charge_captures =
      (cache_after.captures - cache_before.captures) + fresh_private;
  result.charge_capture_seconds +=
      cache_after.capture_seconds - cache_before.capture_seconds;
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  if constexpr (obs::kEnabled) {
    root.counter("fleet.runs").add();
    root.gauge("fleet.sessions").set(static_cast<double>(config.sessions));
    root.gauge("fleet.threads").set(static_cast<double>(pool_.size()));
    root.gauge("fleet.total_exchanges")
        .set(static_cast<double>(result.total_exchanges));
    root.gauge("fleet.lost_measurements")
        .set(static_cast<double>(result.lost_measurements));
    root.gauge("fleet.lost_rate").set(result.lost_rate);
    root.gauge("fleet.recovery_p50_s").set(result.recovery_p50_s);
    root.gauge("fleet.recovery_p95_s").set(result.recovery_p95_s);
    root.gauge("fleet.recovery_p99_s").set(result.recovery_p99_s);
    root.gauge("fleet.charge_captures")
        .set(static_cast<double>(result.charge_captures));
    root.gauge("fleet.charge_capture_seconds")
        .set(result.charge_capture_seconds);
    root.gauge("fleet.checkpoint_forks")
        .set(static_cast<double>(result.checkpoint_forks));
    root.gauge("fleet.wall_seconds").set(result.wall_seconds);
    root.gauge("fleet.session_wall_mean_s").set(result.session_wall_mean_s);
    // Supervision roll-ups: always published (zero on a clean run) so
    // trace_validate --require can pin them either way.
    root.gauge("fleet.failed").set(static_cast<double>(result.failed));
    root.gauge("fleet.retried").set(static_cast<double>(result.retried));
    root.gauge("fleet.quarantined")
        .set(static_cast<double>(result.quarantined));
    root.gauge("fleet.resumed").set(static_cast<double>(result.resumed));
    for (const auto& [code, count] : result.failures_by_code) {
      root.gauge("fleet.failures." + code).set(static_cast<double>(count));
    }
    for (const auto& cohort : result.cohorts) {
      root.gauge("cohort.fleet." + cohort.name + ".failed")
          .set(static_cast<double>(cohort.failed));
      root.gauge("cohort.fleet." + cohort.name + ".failure_rate")
          .set(cohort.failure_rate);
    }
    if (result.wall_seconds > 0.0) {
      root.gauge("fleet.sessions_per_second")
          .set(static_cast<double>(config.sessions) / result.wall_seconds);
    }
    // Per-cohort aggregates land in the root registry so one run report
    // (and trace_validate --require) pins every cohort's statistics.
    for (std::size_t c = 0; c < n_cohorts; ++c) {
      cohort_regs[c]->publish_cohorts("cohort.fleet." + config.cohorts[c].name,
                                      root);
    }
    if (stream) {
      sink.emit_event(
          "fleet", "complete",
          {{"sessions",
            obs::json::Value(static_cast<std::uint64_t>(config.sessions))},
           {"failed",
            obs::json::Value(static_cast<std::uint64_t>(result.failed))},
           {"quarantined",
            obs::json::Value(static_cast<std::uint64_t>(result.quarantined))},
           {"resumed",
            obs::json::Value(static_cast<std::uint64_t>(result.resumed))},
           {"lost_rate", obs::json::Value(result.lost_rate)},
           {"recovery_p95_s", obs::json::Value(result.recovery_p95_s)},
           {"fingerprint", obs::json::Value(result.fingerprint)}});
    }
  }
  return result;
}

FleetResult run_fleet(const FleetConfig& config) {
  FleetService service(config.threads);
  return service.run(config);
}

SessionResult run_solo_session(const FleetConfig& config, std::uint64_t index) {
  validate(config);
  return run_patient_session(make_spec(config, index), nullptr, nullptr);
}

}  // namespace ironic::fleet
