// Structured session-failure taxonomy for the fleet supervision layer.
//
// A fleet run must survive any single session: a session that throws is
// contained, classified into one of the stable codes below, retried or
// quarantined by the supervisor, and recorded as a SessionHealth entry —
// never an aborted fleet. The codes are a wire format (they land in the
// run journal, BENCH_fleet_soak.json, and CI pins), so renaming one is a
// breaking change.
//
// ChaosSpec lives here too: a deterministic, seeded way to make a subset
// of sessions throw or stall, used by tests and the CI chaos stage to
// prove containment, watchdog deadlines, retry determinism, and
// kill-and-resume parity against real failure paths.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "src/exec/cancellation.hpp"
#include "src/util/rng.hpp"

namespace ironic::fleet {

// Stable failure codes. kNone is the healthy sentinel; every other code
// maps 1:1 onto a wire string via failure_code_name.
enum class FailureCode {
  kNone = 0,
  kSolverSingular,     // "solver-singular"    matrix went singular
  kNewtonNonconverge,  // "newton-nonconverge" Newton loop gave up
  kCommsExhausted,     // "comms-exhausted"    link retry budget spent
  kValidation,         // "validation"         bad spec / config input
  kDeadline,           // "deadline"           watchdog deadline expired
  kChaos,              // "chaos"              injected by ChaosSpec
  kUnknown,            // "unknown"            unclassified exception
};
inline constexpr int kFailureCodeCount = 8;

const char* failure_code_name(FailureCode code);
// Inverse of failure_code_name; kUnknown for an unrecognized string.
FailureCode failure_code_from_name(const std::string& name);

// Thrown by session code that already knows its classification (chaos
// injection, spec validation); foreign exceptions are classified by
// message instead (classify_failure).
struct SessionFailure : std::runtime_error {
  SessionFailure(FailureCode code, const std::string& what)
      : std::runtime_error(what), code(code) {}
  FailureCode code;
};

// Map an in-flight exception to a stable code: SessionFailure carries
// its own code, exec::TaskCancelled means the watchdog deadline fired,
// std::invalid_argument is a validation error, and engine
// std::runtime_errors are sniffed for the solver's known failure
// messages ("singular", "converge", "exhaust"). Everything else is
// kUnknown — contained and recorded, just not attributed.
FailureCode classify_failure(const std::exception& error);

// Deterministic fault injection for the supervision layer itself. The
// doomed subset is a pure function of (seed, index) drawn from a private
// hashed RNG stream — never the session's own lanes — so healthy
// sessions are bit-identical with chaos on or off, any thread count.
struct ChaosSpec {
  double throw_rate = 0.0;  // P(session throws SessionFailure{kChaos})
  double stall_rate = 0.0;  // P(session stalls until watchdog/stall cap)
  // Attempts (initial try + retries) that fail before the session runs
  // clean: 1 proves the retry path recovers, > max_retries proves
  // quarantine.
  int fail_attempts = 1;
  // Wall-clock cap for a stall whose watchdog never fires, so a chaos
  // run without deadlines still terminates.
  double stall_seconds = 30.0;
  // Mixed into the fleet seed for the chaos stream, so chaos draws are
  // decoupled from every session RNG lane.
  std::uint64_t salt = 0xc4a05f00dull;

  bool enabled() const { return throw_rate > 0.0 || stall_rate > 0.0; }
};

// What chaos has decided for one session attempt.
enum class ChaosAction { kNone, kThrow, kStall };

struct ChaosPlan {
  ChaosAction action = ChaosAction::kNone;
  int fail_attempts = 0;  // attempts doomed before the session runs clean
  int at_exchange = 0;    // exchange index where the action triggers
  double stall_seconds = 0.0;
};

// The deterministic chaos decision for session (seed, index) over an
// `exchanges`-long horizon.
ChaosPlan chaos_plan(const ChaosSpec& chaos, std::uint64_t seed,
                     std::uint64_t index, int exchanges);

// Per-attempt control surface threaded into run_patient_session: the
// watchdog token polled between exchanges, plus the chaos action (if
// any) for this attempt. Default-constructed controls are inert — the
// pre-supervision call sites behave exactly as before.
struct SessionControls {
  exec::CancellationToken token{};
  ChaosAction action = ChaosAction::kNone;
  int at_exchange = 0;
  double stall_seconds = 0.0;
};

}  // namespace ironic::fleet
