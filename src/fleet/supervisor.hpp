// Fleet supervision: per-session error containment, watchdog deadlines,
// deterministic retry/quarantine, and the crash-durable run journal.
//
// The supervisor wraps run_patient_session so one throwing session
// (singular matrix, Newton give-up, injected chaos, watchdog expiry)
// becomes a recorded SessionHealth entry instead of an unwound
// parallel_for and an aborted fleet. Failed sessions are re-run up to
// policy.max_retries times with their exact original (seed, index) —
// the RNG lanes are rebuilt from scratch each attempt, so a retry that
// succeeds is bit-identical to a clean solo run of that seed — and
// persistent failures are quarantined.
//
// The RunJournal is an append-only JSONL file (one line per terminal
// session outcome, written through a private TelemetrySink so producers
// never block on disk) that makes a fleet run crash-durable: after a
// mid-run kill, `fleet_runner --journal J --resume` replays the
// journaled outcomes, re-runs only the missing sessions, and produces a
// fleet fingerprint identical to an uninterrupted run.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "src/fleet/failure.hpp"
#include "src/fleet/session.hpp"
#include "src/obs/telemetry.hpp"

namespace ironic::fleet {

// Supervision knobs, carried on FleetConfig. Containment itself is
// unconditional — these only shape what happens after a failure.
struct SupervisorPolicy {
  // Re-runs granted to a failed session before it is quarantined.
  int max_retries = 2;
  // Per-attempt wall-clock watchdog (0 = none). The deadline token is
  // polled between exchanges, so a runaway attempt reports `deadline`
  // instead of hanging its pool worker forever.
  double session_deadline_s = 0.0;
  ChaosSpec chaos;
  std::string journal_path;  // "" = no journal
  bool resume = false;       // replay journal_path before running
};

// One session's terminal outcome as the supervisor saw it. The
// fingerprint is fingerprint_session(result) for healthy sessions and a
// deterministic failure marker (index + code + quarantine bit) for
// failed ones, so the fleet fingerprint stays a pure function of
// (config, chaos) — and therefore survives kill/resume bit-identically.
struct SessionHealth {
  std::uint64_t index = 0;
  std::string cohort;
  bool ok = true;
  bool quarantined = false;  // failed every granted attempt
  bool resumed = false;      // replayed from a journal, not re-run
  FailureCode code = FailureCode::kNone;
  std::string message;
  int attempts = 1;  // 1 + retries consumed
  std::uint64_t fingerprint = 0;
};

// The deterministic marker a failed session contributes to the fleet
// fingerprint in place of fingerprint_session.
std::uint64_t failure_fingerprint(const SessionHealth& health);

struct SupervisedSession {
  SessionResult result;  // zeroed (index/cohort only) when !health.ok
  SessionHealth health;
};

// Run one session under the policy: watchdog deadline per attempt,
// chaos injection per the spec, containment + classification of any
// exception, retry with the original seed, quarantine on exhaustion.
SupervisedSession run_supervised_session(
    const SessionSpec& spec,
    std::shared_ptr<const spice::TransientCheckpoint> charged,
    obs::MetricsRegistry* scoped, const SupervisorPolicy& policy);

// Append-only JSONL run journal. Every line is a self-contained JSON
// object on stream "fleet.journal": one "begin" header (config
// identity) plus one "session" line per terminal outcome carrying the
// health entry, the session fingerprint, and the deterministic summary
// fields the fleet aggregates need (completed/lost/retries/...).
class RunJournal {
 public:
  struct Entry {
    SessionHealth health;
    SessionResult summary;  // aggregate fields only; adc_codes not journaled
  };
  struct State {
    bool valid = false;      // header parsed and well-formed
    std::string error;       // why valid == false (missing file is not
                             // an error: valid=false + empty error)
    std::uint64_t seed = 0;
    std::size_t sessions = 0;
    int exchanges = 0;
    std::map<std::uint64_t, Entry> completed;  // terminal outcomes seen
  };

  // Parse an existing journal. A torn final line (producer killed
  // mid-write) is tolerated and ignored; the sessions it would have
  // recorded are simply re-run on resume.
  static State load(const std::string& path);

  ~RunJournal() { close(); }

  // Open the journal for writing; append instead of truncating when
  // resuming. Returns false when the path cannot be opened (the runner
  // maps that to exit code 2).
  bool open(const std::string& path, bool append);
  bool is_open() const { return sink_.is_open(); }

  // The header line. Written once per fresh journal; a resumed journal
  // keeps its original header.
  void begin(std::size_t sessions, std::uint64_t seed, int exchanges);

  // One terminal session outcome. Non-blocking (ring + drainer); the
  // drainer flushes per batch, and close() drains whatever is queued.
  void record(const SessionHealth& health, const SessionResult& result);

  // Drain, flush, and close the stream. Called on every fleet_runner
  // exit path — including the abnormal ones — so an error exit never
  // strands enqueued lines.
  void close() { sink_.close(); }

 private:
  obs::TelemetrySink sink_;  // private sink: journal lines never mix
                             // with the process-wide telemetry stream
};

}  // namespace ironic::fleet
