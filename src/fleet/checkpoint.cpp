#include "src/fleet/checkpoint.hpp"

#include <chrono>

namespace ironic::fleet {

std::shared_ptr<const spice::TransientCheckpoint> CheckpointCache::charged(
    const fault::ChargeUpSpec& spec) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [cached_spec, blob] : entries_) {
    if (cached_spec == spec) {
      ++stats_.hits;
      return blob;
    }
  }
  const auto t0 = std::chrono::steady_clock::now();
  auto blob = std::make_shared<const spice::TransientCheckpoint>(
      fault::capture_charged_checkpoint(spec));
  stats_.capture_seconds +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  ++stats_.captures;
  entries_.emplace_back(spec, blob);
  return blob;
}

CheckpointCache::Stats CheckpointCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace ironic::fleet
