#include "src/obs/report.hpp"

#include <cstdlib>
#include <ctime>
#include <filesystem>
#include <fstream>

#include "src/obs/json.hpp"
#include "src/obs/profiler.hpp"
#include "src/obs/trace.hpp"
#include "src/util/log.hpp"

#ifndef IRONIC_GIT_SHA
#define IRONIC_GIT_SHA "unknown"
#endif

namespace ironic::obs {

namespace {

std::string env_or(const char* name, const std::string& fallback) {
  // Read once, in the RunReport constructor at the top of main(), before
  // any worker threads exist — nothing mutates the environment after.
  const char* v = std::getenv(name);  // NOLINT(concurrency-mt-unsafe)
  return v != nullptr && *v != '\0' ? std::string(v) : fallback;
}

}  // namespace

const char* build_git_sha() { return IRONIC_GIT_SHA; }

RunReport::RunReport(std::string name)
    : name_(std::move(name)), start_(std::chrono::steady_clock::now()) {
  install_log_bridge();
  const std::string trace = env_or("IRONIC_TRACE", "");
  if (!trace.empty() && trace != "0") {
    trace_path_ = trace == "1" ? name_ + ".trace.json" : trace;
    auto& recorder = TraceRecorder::instance();
    if (!recorder.enabled()) {
      recorder.enable();
      trace_enabled_here_ = true;
    }
  }
}

RunReport::~RunReport() { write(); }

void RunReport::metric(const std::string& key, double value) {
  extra_metrics_[key] = value;
}

void RunReport::note(const std::string& key, std::string value) {
  notes_[key] = std::move(value);
}

double RunReport::elapsed_seconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
      .count();
}

std::string RunReport::report_path() const {
  if (env_or("IRONIC_REPORT", "1") == "0") return "";
  const std::string dir = env_or("IRONIC_REPORT_DIR", "");
  const std::string file = "BENCH_" + name_ + ".json";
  return dir.empty() ? file : dir + "/" + file;
}

bool RunReport::write() {
  if (written_) return true;
  written_ = true;
  bool ok = true;

  if (!trace_path_.empty()) {
    ok &= TraceRecorder::instance().write_chrome_trace_file(trace_path_);
    if (trace_enabled_here_) TraceRecorder::instance().disable();
  }

  const std::string metrics_path = env_or("IRONIC_METRICS", "");
  if (!metrics_path.empty()) {
    std::ofstream os(metrics_path);
    if (os) {
      MetricsRegistry::instance().write_jsonl(os);
    } else {
      util::Log::warn("RunReport: cannot open metrics file " + metrics_path);
      ok = false;
    }
  }

  const std::string path = report_path();
  if (path.empty()) return ok;
  {
    // IRONIC_REPORT_DIR may not exist yet; create it rather than fail.
    std::error_code ec;
    const auto parent = std::filesystem::path(path).parent_path();
    if (!parent.empty()) std::filesystem::create_directories(parent, ec);
  }

  json::Value::Object root;
  root["schema"] = "ironic.run_report/1";
  root["name"] = name_;
  root["git_sha"] = build_git_sha();
  root["timestamp_unix"] = static_cast<double>(std::time(nullptr));
  root["wall_seconds"] = elapsed_seconds();
  root["obs_compiled_in"] = kEnabled;
  if (!trace_path_.empty()) root["trace_file"] = trace_path_;

  json::Value::Object extras;
  for (const auto& [k, v] : extra_metrics_) extras[k] = v;
  root["extras"] = std::move(extras);

  json::Value::Object notes;
  for (const auto& [k, v] : notes_) notes[k] = v;
  root["notes"] = std::move(notes);

  // Fold the profiler zone totals in as prof.<zone>.* gauges first, so
  // the metrics snapshot below (and trace_validate --require pins)
  // always see the per-zone breakdown; then attach the flame-style
  // "profile" array for human/tooling consumption.
  const auto zones = profiler_snapshot();
  profiler_mirror_to_registry(MetricsRegistry::instance());
  json::Value::Array profile;
  for (const auto& zone : zones) {
    json::Value::Object row;
    row["zone"] = zone.name;
    row["calls"] = static_cast<double>(zone.calls);
    row["inclusive_ns"] = static_cast<double>(zone.inclusive_ns);
    row["exclusive_ns"] = static_cast<double>(zone.exclusive_ns);
    row["threads"] = static_cast<double>(zone.threads);
    profile.emplace_back(std::move(row));
  }
  root["profile"] = std::move(profile);

  json::Value::Array metrics;
  for (const auto& s : MetricsRegistry::instance().snapshot()) {
    json::Value::Object m;
    m["name"] = s.name;
    m["type"] = s.type;
    m["value"] = s.value;
    if (!s.labels.empty()) m["labels"] = s.labels;
    if (s.type == "histogram") {
      m["count"] = static_cast<double>(s.count);
      m["min"] = s.min;
      m["max"] = s.max;
      m["p50"] = s.p50;
      m["p95"] = s.p95;
      m["p99"] = s.p99;
    }
    metrics.emplace_back(std::move(m));
  }
  root["metrics"] = std::move(metrics);

  std::ofstream os(path);
  if (!os) {
    util::Log::warn("RunReport: cannot open report file " + path);
    return false;
  }
  os << json::Value(std::move(root)).dump(2) << "\n";
  return ok && os.good();
}

}  // namespace ironic::obs
