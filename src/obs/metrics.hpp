// Process-wide metrics registry: counters, gauges, and fixed-bucket
// histograms with atomic updates, so the (future) multi-threaded solver
// sweeps can record into the same registry the single-threaded engine
// uses today. Registration takes a mutex; recording into an already
// obtained metric is lock-free.
//
// Compile-time gate: IRONIC_OBS_ENABLED (default 1, see CMake option of
// the same name). When 0, `ironic::obs::kEnabled` is false and the
// instrumented call sites in spice/core/comms/patch compile away; the
// registry itself stays available so code linking against it still
// builds.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#ifndef IRONIC_OBS_ENABLED
#define IRONIC_OBS_ENABLED 1
#endif

namespace ironic::obs {

// Compile-time observability switch; instrumentation sites test this with
// `if constexpr` so a disabled build carries zero overhead.
inline constexpr bool kEnabled = IRONIC_OBS_ENABLED != 0;

// Monotonic event count. `add` is a relaxed atomic increment.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

// Last-written instantaneous value.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  // Atomic increment (CAS loop) — `set(value() + d)` from worker threads
  // is a lost-update race; this is the safe read-modify-write.
  void add(double d);
  // Keep the larger of the current and the offered value (CAS loop).
  void set_max(double v);
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Fixed-boundary histogram: `bounds` are the inclusive upper edges of the
// buckets; one overflow bucket catches everything above the last edge.
// Observation is one relaxed atomic increment plus CAS-maintained
// sum/min/max.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const;
  double min() const;
  double max() const;
  // Percentile estimate (p in [0, 100]) by linear interpolation inside
  // the containing bucket; exact at observed min/max.
  double percentile(double p) const;

  const std::vector<double>& bounds() const { return bounds_; }
  std::vector<std::uint64_t> bucket_counts() const;
  // Zero all buckets and statistics (not atomic as a whole: a concurrent
  // observe may land in either the old or new epoch, never torn).
  void reset();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;
};

// A flat snapshot row, used for the JSONL dump and the run reports.
struct MetricSample {
  std::string name;
  std::string type;  // "counter" | "gauge" | "histogram"
  double value = 0.0;  // counter/gauge value; histogram mean
  // Histogram extras (count == 0 for the scalar kinds).
  std::uint64_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
};

class MetricsRegistry {
 public:
  // The process-wide registry used by all instrumentation.
  static MetricsRegistry& instance();

  // Find-or-create. References stay valid for the registry's lifetime.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  // `bounds` is used only on first creation; pass {} for the default
  // geometric ladder (1, 2, 5 per decade across 1e-9..1e9).
  Histogram& histogram(const std::string& name, std::vector<double> bounds = {});

  std::vector<MetricSample> snapshot() const;
  // One JSON object per line: {"name":..., "type":..., "value":...}.
  void write_jsonl(std::ostream& os) const;

  // Zero every registered metric IN PLACE. References handed out by
  // earlier lookups stay valid (the engine and thread pool cache handles
  // for their hot paths, so entries must never be deleted while workers
  // may still be recording).
  void reset();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

// Default histogram bucket edges: 1-2-5 ladder spanning 1e-9 .. 1e9.
std::vector<double> default_histogram_bounds();

}  // namespace ironic::obs
