// Process-wide metrics registry: counters, gauges, and fixed-bucket
// histograms, sharded per thread so recording under the exec
// work-stealing pool is a relaxed store into a thread-private cache line
// with no cross-core CAS traffic. Shards are merged on snapshot.
// Registration takes a mutex; recording into an already obtained metric
// is lock-free.
//
// Registries can be forked per scenario/session with labels
// (`registry.scoped({{"scenario", "ask_burst"}})`) and aggregated back
// into cohort views (count/sum/min/max/p50/p95/p99 across sessions) —
// the aggregation substrate the fleet subsystem consumes.
//
// Compile-time gate: IRONIC_OBS_ENABLED (default 1, see CMake option of
// the same name). When 0, `ironic::obs::kEnabled` is false and the
// instrumented call sites in spice/core/comms/patch compile away; the
// registry itself stays available so code linking against it still
// builds. A separate *runtime* kill switch (`set_runtime_enabled(false)`)
// turns every recording call into an early return — bench_obs_overhead
// uses it as the in-process proxy for a compiled-out build.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#ifndef IRONIC_OBS_ENABLED
#define IRONIC_OBS_ENABLED 1
#endif

namespace ironic::obs {

// Compile-time observability switch; instrumentation sites test this with
// `if constexpr` so a disabled build carries zero overhead.
inline constexpr bool kEnabled = IRONIC_OBS_ENABLED != 0;

// Per-thread shard count (power of two). Threads hash onto slots by a
// monotonically assigned ordinal, so the first kMetricShards threads get
// private slots; beyond that, slots are shared but stay correct (every
// shard update is atomic). 16 slots x 64 B = 1 KiB per scalar metric.
inline constexpr std::size_t kMetricShards = 16;

namespace detail {

// Runtime kill switch (see set_runtime_enabled below). Relaxed: recording
// sites may observe a toggle late; that is fine for a diagnostics switch.
inline std::atomic<bool> g_runtime_enabled{true};
inline bool runtime_on() {
  return g_runtime_enabled.load(std::memory_order_relaxed);
}

// Stable per-thread ordinal, assigned on first use (main thread usually
// gets 0). Never recycled: ordinals identify threads in traces.
std::size_t assign_thread_ordinal();
inline std::size_t thread_ordinal() {
  thread_local const std::size_t ordinal = assign_thread_ordinal();
  return ordinal;
}
inline std::size_t shard_slot() {
  return thread_ordinal() & (kMetricShards - 1);
}

// One cache line per shard so two hot threads never false-share.
struct alignas(64) ShardU64 {
  std::atomic<std::uint64_t> v{0};
};
struct alignas(64) ShardF64 {
  std::atomic<double> v{0.0};
};

}  // namespace detail

// Runtime recording switch: when off, Counter::add / Gauge::set / add /
// set_max / Histogram::observe return immediately without touching their
// storage. Reads (value(), snapshot()) are unaffected. Defaults to on.
inline bool runtime_enabled() { return detail::runtime_on(); }
void set_runtime_enabled(bool on);

// 1-based stable ordinal for the calling thread; the trace recorder uses
// it as the Chrome-trace tid so spans from different pool workers land on
// separate tracks.
std::size_t thread_index();

// Thread-registration hook for long-lived workers (exec pool threads):
// constructing one pins the thread's metric shard slot and trace tid up
// front, so the first recording on the hot path does not pay the
// one-time ordinal assignment.
class ThreadRegistration {
 public:
  ThreadRegistration() { (void)thread_index(); }
  ThreadRegistration(const ThreadRegistration&) = delete;
  ThreadRegistration& operator=(const ThreadRegistration&) = delete;
};

// Monotonic event count. `add` is a relaxed atomic increment into the
// calling thread's shard; `value` sums the shards.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    if (!detail::runtime_on()) return;
    cells_[detail::shard_slot()].v.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const auto& cell : cells_) {
      total += cell.v.load(std::memory_order_relaxed);
    }
    return total;
  }
  void reset() {
    for (auto& cell : cells_) cell.v.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<detail::ShardU64, kMetricShards> cells_;
};

// Last-written instantaneous value plus sharded deltas: `set` stores the
// base, `add` accumulates into the calling thread's shard, `value` is
// base + the shard sum. A `set` concurrent with `add`s is a benign race
// (the add may land before or after the rebase), same contract as the
// CAS-based predecessor.
class Gauge {
 public:
  void set(double v);
  // Lock-free increment; per-shard, so concurrent adds from pool workers
  // do not contend on one cache line.
  void add(double d);
  // Keep the larger of the current combined value and the offered one.
  void set_max(double v);
  double value() const {
    double total = base_.load(std::memory_order_relaxed);
    for (const auto& cell : cells_) {
      total += cell.v.load(std::memory_order_relaxed);
    }
    return total;
  }
  void reset() { set(0.0); }

 private:
  std::atomic<double> base_{0.0};
  std::array<detail::ShardF64, kMetricShards> cells_;
};

// Fixed-boundary histogram: `bounds` are the inclusive upper edges of the
// buckets; one overflow bucket catches everything above the last edge.
// Observation updates the calling thread's lazily allocated shard
// (bucket increment plus CAS-maintained sum/min/max, all thread-private
// when ordinals do not collide).
//
// Snapshot coherence contract: merge-style readers (count/sum/min/max/
// percentile/bucket_counts/merged) are seqlock-protected against
// reset(): a reader never observes a half-zeroed histogram — it sees the
// state either entirely before or entirely after a concurrent reset.
// Individual observe() calls are NOT transactional: a reader overlapping
// an in-flight observe may see its bucket increment before its
// count/sum update (bounded by the number of in-flight observers).
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;
  ~Histogram();

  void observe(double v);

  // A coherent merged view across shards (see the class contract).
  struct Merged {
    std::vector<std::uint64_t> buckets;
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;  // 0 when empty
    double max = 0.0;  // 0 when empty
  };
  Merged merged() const;

  std::uint64_t count() const { return merged().count; }
  double sum() const { return merged().sum; }
  double mean() const;
  double min() const { return merged().min; }
  double max() const { return merged().max; }
  // Percentile estimate (p in [0, 100]) by linear interpolation inside
  // the containing bucket; exact at observed min/max (p0 returns the
  // observed minimum, p100 the observed maximum).
  double percentile(double p) const;

  const std::vector<double>& bounds() const { return bounds_; }
  std::vector<std::uint64_t> bucket_counts() const { return merged().buckets; }
  // Zero all shards. Guarded by the seqlock epoch: concurrent snapshots
  // retry instead of reading a torn (half-zeroed) state. Concurrent
  // resets serialize on an internal mutex.
  void reset();

 private:
  struct Shard;
  Shard& shard();

  std::vector<double> bounds_;
  std::array<std::atomic<Shard*>, kMetricShards> shards_{};
  // Seqlock epoch: odd while a reset is zeroing shards; readers retry
  // until they bracket a stable even epoch (mutable: the const read
  // side re-checks it with a dummy RMW, see merged()).
  mutable std::atomic<std::uint64_t> epoch_{0};
  std::mutex reset_mutex_;
};

// A flat snapshot row, used for the JSONL dump and the run reports.
struct MetricSample {
  std::string name;
  std::string type;  // "counter" | "gauge" | "histogram"
  std::string labels;  // "k=v,k=v" from the owning registry ("" = root)
  double value = 0.0;  // counter/gauge value; histogram mean
  // Histogram extras (count == 0 for the scalar kinds).
  std::uint64_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

// One metric aggregated across every live scoped child of a registry:
// the per-cohort view (count/sum/min/max/p50/p95/p99 over sessions).
// For histograms the child buckets are merged, so percentiles are as
// exact as a single histogram's; for counters/gauges the per-session
// scalar values form the sample set and percentiles are exact.
struct CohortAggregate {
  std::string name;
  std::string type;  // "counter" | "gauge" | "histogram"
  std::uint64_t sessions = 0;  // scoped registries reporting this metric
  std::uint64_t count = 0;     // histogram: total observations; else == sessions
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

class MetricsRegistry {
 public:
  // Label set attached to a registry, rendered as "k=v,k=v" in dumps.
  using Labels = std::vector<std::pair<std::string, std::string>>;

  // The process-wide root registry used by all instrumentation.
  static MetricsRegistry& instance();

  // Standalone registries are allowed (benches, scoped sessions);
  // `scoped` is the usual way to create one.
  MetricsRegistry() = default;
  explicit MetricsRegistry(Labels labels) : labels_(std::move(labels)) {}
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  const Labels& labels() const { return labels_; }
  std::string label_string() const;

  // Fork a child registry carrying this registry's labels plus `extra`.
  // The child is independent storage (its metrics do not feed the
  // parent's); the parent keeps a weak reference so aggregate_cohorts()
  // can fold live children into cohort views. Children may outlive the
  // parent's interest and expire naturally.
  std::shared_ptr<MetricsRegistry> scoped(Labels extra);

  // Aggregate every metric across the live scoped children (expired
  // children are pruned). Ordered by metric name.
  std::vector<CohortAggregate> aggregate_cohorts() const;
  // Fold aggregate_cohorts() into this registry as gauges named
  // `<prefix>.<metric>.<stat>` (stat in sessions/count/sum/min/max/mean/
  // p50/p95/p99), so run reports and trace_validate --require can pin
  // the cohort views.
  void publish_cohorts(const std::string& prefix);
  // Same, but the gauges land in `into` — the fleet layer aggregates an
  // intermediate per-cohort registry's children and publishes the result
  // into the root registry, so every cohort's stats appear in one run
  // report without the intermediate registries feeding each other.
  void publish_cohorts(const std::string& prefix, MetricsRegistry& into) const;

  // Find-or-create. References stay valid for the registry's lifetime.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  // `bounds` is used only on first creation; pass {} for the default
  // geometric ladder (1, 2, 5 per decade across 1e-9..1e9).
  Histogram& histogram(const std::string& name, std::vector<double> bounds = {});

  std::vector<MetricSample> snapshot() const;
  // One JSON object per line: {"name":..., "type":..., "value":...}.
  void write_jsonl(std::ostream& os) const;

  // Zero every registered metric IN PLACE. References handed out by
  // earlier lookups stay valid (the engine and thread pool cache handles
  // for their hot paths, so entries must never be deleted while workers
  // may still be recording).
  void reset();

 private:
  Labels labels_;
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  mutable std::mutex children_mutex_;
  mutable std::vector<std::weak_ptr<MetricsRegistry>> children_;
};

// Default histogram bucket edges: 1-2-5 ladder spanning 1e-9 .. 1e9.
std::vector<double> default_histogram_bounds();

}  // namespace ironic::obs
