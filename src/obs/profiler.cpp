#include "src/obs/profiler.hpp"

#include <algorithm>
#include <map>

namespace ironic::obs {

#if IRONIC_OBS_ENABLED

namespace detail {
namespace {

struct ProfilerState {
  std::mutex mutex;
  // Leaked on purpose: pool threads may die while their totals are
  // still wanted in the end-of-run report.
  std::vector<ThreadProfile*> profiles;
  std::vector<std::string> zone_names;
  std::map<std::string, std::uint32_t> zone_index;
  std::uint64_t ticks0 = 0;
  std::chrono::steady_clock::time_point t0;
};

ProfilerState& state() {
  // Heap-allocated and never freed so worker threads can't race static
  // destruction at exit.
  static ProfilerState* s = [] {
    auto* fresh = new ProfilerState();
    fresh->ticks0 = prof_now_ticks();
    fresh->t0 = std::chrono::steady_clock::now();
    return fresh;
  }();
  return *s;
}

double ns_per_tick() {
  auto& s = state();
  const std::uint64_t dticks = prof_now_ticks() - s.ticks0;
  const auto dns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                       std::chrono::steady_clock::now() - s.t0)
                       .count();
  if (dticks == 0 || dns <= 0) return 1.0;
  return static_cast<double>(dns) / static_cast<double>(dticks);
}

}  // namespace

ThreadProfile& prepare_zone(std::uint32_t index) {
  thread_local ThreadProfile* profile = [] {
    auto* fresh = new ThreadProfile();
    auto& s = state();
    const std::lock_guard<std::mutex> lock(s.mutex);
    s.profiles.push_back(fresh);
    return fresh;
  }();
  // Only the owner grows the deque, so the unlocked size check in the
  // ZoneScope fast path is safe; the lock orders growth against a
  // concurrent snapshot.
  if (index >= profile->zones.size()) {
    const std::lock_guard<std::mutex> lock(profile->mutex);
    while (profile->zones.size() <= index) profile->zones.emplace_back();
  }
  t_profile = profile;
  return *profile;
}

}  // namespace detail

ZoneId register_zone(const char* name) {
  auto& s = detail::state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  const auto it = s.zone_index.find(name);
  if (it != s.zone_index.end()) return ZoneId{it->second};
  const auto index = static_cast<std::uint32_t>(s.zone_names.size());
  s.zone_names.emplace_back(name);
  s.zone_index.emplace(name, index);
  return ZoneId{index};
}

void ZoneScope::finish() {
  auto& profile = *profile_;
  const detail::ThreadProfile::Frame frame = profile.stack.back();
  profile.stack.pop_back();
  const std::uint64_t end = detail::prof_now_ticks();
  const std::uint64_t dur = end >= frame.start ? end - frame.start : 0;
  // frame.child accumulates children in full units (each sampled child
  // adds dur * its scale, compensating its own decimation), so the raw
  // frame duration compares against it directly; scaling the clamped
  // difference keeps exclusive <= inclusive per frame by construction.
  const std::uint64_t excl = dur >= frame.child ? dur - frame.child : 0;
  if (!profile.stack.empty()) {
    profile.stack.back().child += dur * frame.scale;
  }
  auto& z = profile.zones[frame.zone];
  z.inclusive.store(
      z.inclusive.load(std::memory_order_relaxed) + dur * frame.scale,
      std::memory_order_relaxed);
  z.exclusive.store(
      z.exclusive.load(std::memory_order_relaxed) + excl * frame.scale,
      std::memory_order_relaxed);
}

std::vector<ZoneReport> profiler_snapshot() {
  auto& s = detail::state();
  const double ratio = detail::ns_per_tick();
  std::vector<std::string> names;
  std::vector<detail::ThreadProfile*> profiles;
  {
    const std::lock_guard<std::mutex> lock(s.mutex);
    names = s.zone_names;
    profiles = s.profiles;
  }
  std::vector<ZoneReport> out(names.size());
  for (std::size_t i = 0; i < names.size(); ++i) out[i].name = names[i];
  for (auto* profile : profiles) {
    const std::lock_guard<std::mutex> lock(profile->mutex);
    const std::size_t n = std::min(profile->zones.size(), names.size());
    for (std::size_t i = 0; i < n; ++i) {
      const auto& z = profile->zones[i];
      const std::uint64_t calls = z.calls.load(std::memory_order_relaxed);
      if (calls == 0) continue;
      out[i].calls += calls;
      out[i].inclusive_ns += static_cast<std::uint64_t>(
          static_cast<double>(z.inclusive.load(std::memory_order_relaxed)) *
          ratio);
      out[i].exclusive_ns += static_cast<std::uint64_t>(
          static_cast<double>(z.exclusive.load(std::memory_order_relaxed)) *
          ratio);
      out[i].threads += 1;
    }
  }
  out.erase(std::remove_if(out.begin(), out.end(),
                           [](const ZoneReport& r) { return r.calls == 0; }),
            out.end());
  std::sort(out.begin(), out.end(), [](const ZoneReport& a,
                                       const ZoneReport& b) {
    return a.inclusive_ns != b.inclusive_ns ? a.inclusive_ns > b.inclusive_ns
                                            : a.name < b.name;
  });
  return out;
}

void profiler_reset() {
  auto& s = detail::state();
  std::vector<detail::ThreadProfile*> profiles;
  {
    const std::lock_guard<std::mutex> lock(s.mutex);
    profiles = s.profiles;
  }
  for (auto* profile : profiles) {
    const std::lock_guard<std::mutex> lock(profile->mutex);
    for (auto& z : profile->zones) {
      z.calls.store(0, std::memory_order_relaxed);
      z.inclusive.store(0, std::memory_order_relaxed);
      z.exclusive.store(0, std::memory_order_relaxed);
      // exact/countdown are owner-thread-only and deliberately left
      // alone: a hot zone stays in its sampled regime across resets.
    }
  }
}

void profiler_mirror_to_registry(MetricsRegistry& registry) {
  for (const auto& zone : profiler_snapshot()) {
    const std::string base = "prof." + zone.name;
    registry.gauge(base + ".calls").set(static_cast<double>(zone.calls));
    registry.gauge(base + ".inclusive_ns")
        .set(static_cast<double>(zone.inclusive_ns));
    registry.gauge(base + ".exclusive_ns")
        .set(static_cast<double>(zone.exclusive_ns));
  }
}

#else  // !IRONIC_OBS_ENABLED

std::vector<ZoneReport> profiler_snapshot() { return {}; }
void profiler_reset() {}
void profiler_mirror_to_registry(MetricsRegistry&) {}

#endif  // IRONIC_OBS_ENABLED

}  // namespace ironic::obs
