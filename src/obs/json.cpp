#include "src/obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <sstream>

namespace ironic::obs::json {

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string number(double v) {
  if (!std::isfinite(v)) return "null";
  // Integral values within the exactly-representable range print without
  // an exponent so counters stay readable in the emitted artifacts.
  if (v == std::floor(v) && std::abs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  std::ostringstream os;
  os.precision(std::numeric_limits<double>::max_digits10);
  os << v;
  return os.str();
}

const Value& Value::at(const std::string& key) const {
  const Object& o = as_object();
  const auto it = o.find(key);
  if (it == o.end()) throw JsonError("json: missing key '" + key + "'");
  return it->second;
}

bool Value::contains(const std::string& key) const {
  return is_object() && as_object().count(key) > 0;
}

const Value& Value::at(std::size_t index) const {
  const Array& a = as_array();
  if (index >= a.size()) throw JsonError("json: array index out of range");
  return a[index];
}

std::size_t Value::size() const {
  if (is_array()) return as_array().size();
  if (is_object()) return as_object().size();
  throw JsonError("json: size() on non-container");
}

namespace {

void dump_to(const Value& v, std::string& out, int indent, int depth);

void newline_indent(std::string& out, int indent, int depth) {
  if (indent < 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent * depth), ' ');
}

void dump_to(const Value& v, std::string& out, int indent, int depth) {
  if (v.is_null()) {
    out += "null";
  } else if (v.is_bool()) {
    out += v.as_bool() ? "true" : "false";
  } else if (v.is_number()) {
    out += number(v.as_double());
  } else if (v.is_string()) {
    out += '"';
    out += escape(v.as_string());
    out += '"';
  } else if (v.is_array()) {
    const auto& a = v.as_array();
    if (a.empty()) {
      out += "[]";
      return;
    }
    out += '[';
    bool first = true;
    for (const auto& e : a) {
      if (!first) out += ',';
      first = false;
      newline_indent(out, indent, depth + 1);
      dump_to(e, out, indent, depth + 1);
    }
    newline_indent(out, indent, depth);
    out += ']';
  } else {
    const auto& o = v.as_object();
    if (o.empty()) {
      out += "{}";
      return;
    }
    out += '{';
    bool first = true;
    for (const auto& [k, e] : o) {
      if (!first) out += ',';
      first = false;
      newline_indent(out, indent, depth + 1);
      out += '"';
      out += escape(k);
      out += "\":";
      if (indent >= 0) out += ' ';
      dump_to(e, out, indent, depth + 1);
    }
    newline_indent(out, indent, depth);
    out += '}';
  }
}

// Recursive-descent parser over a string_view cursor.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw JsonError("json: " + why + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume(char c) {
    if (pos_ < text_.size() && peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Value parse_value() {
    if (++depth_ > 256) fail("nesting too deep");
    const char c = peek();
    Value out;
    switch (c) {
      case '{': out = parse_object(); break;
      case '[': out = parse_array(); break;
      case '"': out = Value(parse_string()); break;
      case 't':
        if (!literal("true")) fail("bad literal");
        out = Value(true);
        break;
      case 'f':
        if (!literal("false")) fail("bad literal");
        out = Value(false);
        break;
      case 'n':
        if (!literal("null")) fail("bad literal");
        out = Value(nullptr);
        break;
      default: out = parse_number(); break;
    }
    --depth_;
    return out;
  }

  Value parse_object() {
    expect('{');
    Value::Object obj;
    if (consume('}')) return Value(std::move(obj));
    while (true) {
      if (peek() != '"') fail("expected object key");
      std::string key = parse_string();
      expect(':');
      obj[std::move(key)] = parse_value();
      if (consume('}')) break;
      expect(',');
    }
    return Value(std::move(obj));
  }

  Value parse_array() {
    expect('[');
    Value::Array arr;
    if (consume(']')) return Value(std::move(arr));
    while (true) {
      arr.push_back(parse_value());
      if (consume(']')) break;
      expect(',');
    }
    return Value(std::move(arr));
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') break;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': out += parse_unicode_escape(); break;
        default: fail("bad escape");
      }
    }
    return out;
  }

  std::string parse_unicode_escape() {
    const auto hex4 = [&]() -> unsigned {
      if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
      unsigned value = 0;
      for (int i = 0; i < 4; ++i) {
        const char h = text_[pos_++];
        value <<= 4;
        if (h >= '0' && h <= '9') value |= static_cast<unsigned>(h - '0');
        else if (h >= 'a' && h <= 'f') value |= static_cast<unsigned>(h - 'a' + 10);
        else if (h >= 'A' && h <= 'F') value |= static_cast<unsigned>(h - 'A' + 10);
        else fail("bad \\u escape");
      }
      return value;
    };
    unsigned cp = hex4();
    if (cp >= 0xD800 && cp <= 0xDBFF) {  // surrogate pair
      if (pos_ + 2 > text_.size() || text_[pos_] != '\\' || text_[pos_ + 1] != 'u') {
        fail("unpaired surrogate");
      }
      pos_ += 2;
      const unsigned lo = hex4();
      if (lo < 0xDC00 || lo > 0xDFFF) fail("bad low surrogate");
      cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
    }
    // Encode the code point as UTF-8.
    std::string out;
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
    return out;
  }

  Value parse_number() {
    skip_ws();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == token.c_str() || *end != '\0') {
      pos_ = start;
      fail("malformed number");
    }
    return Value(v);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

std::string Value::dump(int indent) const {
  std::string out;
  dump_to(*this, out, indent, 0);
  return out;
}

Value Value::parse(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace ironic::obs::json
